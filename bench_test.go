// Benchmark harness for the paper's evaluation.
//
// The poster has a single exhibit — Figure 1 — plus the design knobs §2.2
// describes (window size, partitioner, propagation). One benchmark family
// regenerates each:
//
//	BenchmarkFigure1/<app>/<policy>   every bar of Figure 1 (small scale;
//	                                  run cmd/figure1 for the paper scale)
//	BenchmarkAblationWindow/w=<n>     A1: window-size sensitivity (RGP+LAS)
//	BenchmarkAblationPartitioner/...  A2: partitioner quality on app TDGs
//	BenchmarkAblationSockets/...      A3: socket-count scaling
//	BenchmarkAblationPropagation/...  A4: RGP+LAS vs repartitioning RGP
//
// Each simulation bench reports the simulated makespan as "sim-ms/run" —
// that metric, not wall-clock ns/op, is the figure's y-axis input.
package numadag_test

import (
	"context"
	"fmt"
	"testing"

	"numadag"
	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/partition"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

// runSim executes one configuration per iteration and reports simulated
// time. It runs through a snapshot-cached core.Runner, the sweep execution
// path: the workload's TDG is built once and installed into every
// iteration's pooled runtime (bit-identical to rebuilding — the workload
// determinism contract), so allocs/op tracks the true steady-state per-run
// cost of a Figure-1 cell rather than one-off graph construction.
func runSim(b *testing.B, cfg core.Config) {
	b.Helper()
	b.ReportAllocs()
	runner := core.NewRunner(0)
	var last float64
	for i := 0; i < b.N; i++ {
		cfg.Runtime.Seed = uint64(i + 1)
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = float64(res.Stats.Makespan) / 1e6
	}
	b.ReportMetric(last, "sim-ms/run")
}

// BenchmarkFigure1 regenerates every bar of Figure 1 at small scale: eight
// apps x four policies (LAS is the baseline the speedups divide by).
func BenchmarkFigure1(b *testing.B) {
	for _, app := range apps.Names() {
		for _, pol := range []string{"LAS", "DFIFO", "RGP+LAS", "EP"} {
			b.Run(fmt.Sprintf("%s/%s", app, pol), func(b *testing.B) {
				runSim(b, core.DefaultConfig(app, pol, apps.Small))
			})
		}
	}
}

// BenchmarkAblationWindow sweeps the RGP+LAS window size (A1).
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{64, 256, 1024, 2048, 8192} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			cfg := core.DefaultConfig("jacobi", "RGP+LAS", apps.Small)
			cfg.Runtime.WindowSize = w
			runSim(b, cfg)
		})
	}
}

// BenchmarkAblationPartitioner measures partitioner quality (edge cut, as
// "cut-bytes") on real app TDGs under the pipeline ablations (A2). This is
// a pure partitioner benchmark: wall-clock ns/op is the partitioning cost.
func BenchmarkAblationPartitioner(b *testing.B) {
	for _, appName := range []string{"jacobi", "qr", "cg"} {
		app, err := apps.ByName(appName, apps.Small)
		if err != nil {
			b.Fatal(err)
		}
		m := numadag.NewMachine(machine.BullionS16(), numadag.NewEngine())
		r := rt.NewRuntime(m, benchPolicy{}, rt.Options{})
		app.Build(r)
		pg := partition.FromDAG(r.Graph())
		variants := []struct {
			name string
			mut  func(*partition.Options)
		}{
			{"full", func(*partition.Options) {}},
			{"random-match", func(o *partition.Options) { o.Matching = partition.RandomMatching }},
			{"no-refine", func(o *partition.Options) { o.NoRefine = true }},
			{"random-init", func(o *partition.Options) { o.Initial = partition.RandomInit }},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%s", appName, v.name), func(b *testing.B) {
				var cut int64
				for i := 0; i < b.N; i++ {
					opt := partition.DefaultOptions(8)
					opt.Seed = uint64(i + 1)
					v.mut(&opt)
					_, st, err := partition.Partition(pg, opt)
					if err != nil {
						b.Fatal(err)
					}
					cut = st.EdgeCut
				}
				b.ReportMetric(float64(cut), "cut-bytes")
			})
		}
	}
}

// BenchmarkAblationSockets scales the machine from 2 to 8 sockets (A3).
func BenchmarkAblationSockets(b *testing.B) {
	for _, m := range []machine.Config{
		machine.TwoSocketXeon(),
		machine.FourSocket(),
		machine.BullionS16(),
	} {
		for _, pol := range []string{"LAS", "RGP+LAS"} {
			b.Run(fmt.Sprintf("%s/%s", m.Name, pol), func(b *testing.B) {
				cfg := core.DefaultConfig("nstream", pol, apps.Small)
				cfg.Machine = m
				runSim(b, cfg)
			})
		}
	}
}

// BenchmarkAblationPropagation compares the two RGP propagation modes (A4).
func BenchmarkAblationPropagation(b *testing.B) {
	for _, pol := range []string{"LAS", "RGP+LAS", "RGP"} {
		b.Run(pol, func(b *testing.B) {
			runSim(b, core.DefaultConfig("gauss-seidel", pol, apps.Small))
		})
	}
}

// BenchmarkMultiSeedSweep measures a replicated experiment grid — the
// paper-scale sweep pattern (one workload x policy cell averaged over many
// seeds). With the TDG cache each workload's task graph is generated once
// per (workload, machine) and installed into every replicate; /nocache runs
// the identical grid with the cache disabled, so the delta between the two
// is the redundant graph-construction cost the cache removes.
func BenchmarkMultiSeedSweep(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tdgCache int
	}{{"cached", 0}, {"nocache", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := rt.DefaultOptions()
				opts.Seed = uint64(i + 1)
				e := &core.Experiment{
					Apps:     []string{"jacobi", "qr"},
					Policies: []string{"LAS"},
					Scale:    apps.Small,
					Runtime:  opts,
					Seeds:    8,
					TDGCache: mode.tdgCache,
				}
				if err := e.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionerScaling measures the multilevel partitioner's
// wall-clock cost on growing grids (infrastructure, not a paper figure).
func BenchmarkPartitionerScaling(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		g := partition.NewGraph(n * n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := i*n + j
				g.SetVertexWeight(v, 1)
				if i+1 < n {
					g.AddEdge(v, (i+1)*n+j, 64)
				}
				if j+1 < n {
					g.AddEdge(v, i*n+j+1, 64)
				}
			}
		}
		b.Run(fmt.Sprintf("grid%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := partition.DefaultOptions(8)
				opt.Seed = uint64(i + 1)
				if _, _, err := partition.Partition(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDagpart measures the stand-alone partitioner flow cmd/dagpart
// performs — workload TDG -> symmetrized graph -> k-way partition and
// bullion static mapping — on a partitioner-heavy app and a synthetic
// layered DAG. allocs/op tracks the per-call overhead that remains outside
// the refiner's reused scratch (subgraph extraction and coarsening).
func BenchmarkDagpart(b *testing.B) {
	for _, spec := range []string{"qr", "random-layered?layers=24&width=96"} {
		w, err := workload.New(spec, apps.Small)
		if err != nil {
			b.Fatal(err)
		}
		m := numadag.NewMachine(machine.BullionS16(), numadag.NewEngine())
		r := rt.NewRuntime(m, benchPolicy{}, rt.Options{})
		if err := w.Build(r); err != nil {
			b.Fatal(err)
		}
		pg := partition.FromDAG(r.Graph())
		for _, mode := range []string{"kway", "map"} {
			b.Run(fmt.Sprintf("%s/%s", spec, mode), func(b *testing.B) {
				b.ReportAllocs()
				arch := partition.NewUniformArch(8)
				var cut int64
				for i := 0; i < b.N; i++ {
					opt := partition.DefaultOptions(8)
					opt.Seed = uint64(i + 1)
					var st partition.Stats
					var err error
					if mode == "map" {
						_, st, err = partition.MapOnto(pg, arch, opt)
					} else {
						_, st, err = partition.Partition(pg, opt)
					}
					if err != nil {
						b.Fatal(err)
					}
					cut = st.EdgeCut
				}
				b.ReportMetric(float64(cut), "cut-bytes")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures host-side simulation speed in
// tasks/second (infrastructure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := core.DefaultConfig("jacobi", "LAS", apps.Small)
	runner := core.NewRunner(0)
	var tasks int
	for i := 0; i < b.N; i++ {
		cfg.Runtime.Seed = uint64(i + 1)
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tasks = res.Tasks
	}
	b.ReportMetric(float64(tasks), "tasks/run")
}

type benchPolicy struct{}

func (benchPolicy) Name() string                         { return "bench" }
func (benchPolicy) PickSocket(*rt.Runtime, *rt.Task) int { return 0 }
