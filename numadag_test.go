package numadag_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"numadag"
)

func TestFacadeQuickstartWorkflow(t *testing.T) {
	cfg := numadag.DefaultConfig("jacobi", "RGP+LAS", numadag.ScaleTiny)
	res, err := numadag.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Makespan <= 0 {
		t.Fatal("zero makespan through facade")
	}
	if res.Stats.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestFacadeCustomApp(t *testing.T) {
	eng := numadag.NewEngine()
	m := numadag.NewMachine(numadag.TwoSocketXeon(), eng)
	pol, err := numadag.NewPolicy("LAS")
	if err != nil {
		t.Fatal(err)
	}
	r := numadag.NewRuntime(m, pol, numadag.DefaultRuntimeOptions())
	a := r.Mem().Alloc("a", 64<<10, numadag.Deferred, 0)
	b := r.Mem().Alloc("b", 64<<10, numadag.Deferred, 0)
	r.Submit(numadag.TaskSpec{Label: "produce", Flops: 1000,
		Accesses: []numadag.Access{{Region: a, Mode: numadag.Out}},
		EPSocket: numadag.NoEPHint})
	r.Submit(numadag.TaskSpec{Label: "transform", Flops: 2000,
		Accesses: []numadag.Access{{Region: a, Mode: numadag.In}, {Region: b, Mode: numadag.Out}},
		EPSocket: numadag.NoEPHint})
	res := r.Run()
	if res.TasksRun != 2 {
		t.Fatalf("ran %d tasks", res.TasksRun)
	}
}

func TestFacadePartitioner(t *testing.T) {
	g := numadag.NewPGraph(6)
	for v := 0; v < 6; v++ {
		g.SetVertexWeight(v, 1)
	}
	// Two triangles joined by one edge.
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(3, 4, 10)
	g.AddEdge(4, 5, 10)
	g.AddEdge(3, 5, 10)
	g.AddEdge(2, 3, 1)
	part, st, err := numadag.Partition(g, numadag.DefaultPartitionOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeCut != 1 {
		t.Fatalf("cut = %d, want 1", st.EdgeCut)
	}
	if part[0] != part[1] || part[3] != part[4] || part[0] == part[3] {
		t.Fatalf("triangles split: %v", part)
	}
}

func TestFacadeNames(t *testing.T) {
	if len(numadag.AppNames()) != 8 {
		t.Fatalf("apps: %v", numadag.AppNames())
	}
	if len(numadag.PolicyNames()) != 4 {
		t.Fatalf("policies: %v", numadag.PolicyNames())
	}
}

func TestFacadeTraceRecorder(t *testing.T) {
	eng := numadag.NewEngine()
	m := numadag.NewMachine(numadag.TwoSocketXeon(), eng)
	pol, _ := numadag.NewPolicy("DFIFO")
	rec := numadag.NewTraceRecorder()
	opts := numadag.DefaultRuntimeOptions()
	opts.Observer = rec
	r := numadag.NewRuntime(m, pol, opts)
	reg := r.Mem().Alloc("x", 4096, numadag.Deferred, 0)
	r.Submit(numadag.TaskSpec{Label: "t", Flops: 100,
		Accesses: []numadag.Access{{Region: reg, Mode: numadag.Out}},
		EPSocket: numadag.NoEPHint})
	r.Run()
	if rec.Len() != 1 {
		t.Fatalf("trace recorded %d events", rec.Len())
	}
}

// TestFacadeExperimentWorkflow exercises the composable experiment API end
// to end through the facade: register a custom policy, declare a grid over
// it and a built-in baseline, stream cells to JSONL, aggregate a speedup
// table.
func TestFacadeExperimentWorkflow(t *testing.T) {
	err := numadag.RegisterPolicy("facade-test-pol",
		func(spec numadag.PolicySpec) (numadag.Policy, error) {
			if err := spec.Only(); err != nil {
				return nil, err
			}
			p, err := numadag.NewPolicy("DFIFO")
			if err != nil {
				return nil, err
			}
			return p, nil
		})
	// The registry is process-global: a repeated in-process test run
	// (go test -count=2) legitimately finds the name already taken.
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	found := false
	for _, n := range numadag.RegisteredPolicies() {
		if n == "facade-test-pol" {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredPolicies() = %v", numadag.RegisteredPolicies())
	}
	e := &numadag.Experiment{
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS", "facade-test-pol"},
		Scale:    numadag.ScaleTiny,
		Seeds:    2,
	}
	var jsonl strings.Builder
	table := numadag.NewTableSink(numadag.TableOptions{
		Norm:     numadag.NormSpeedup,
		Baseline: func(c numadag.Cell) bool { return c.Policy == "LAS" },
	})
	if err := e.Run(context.Background(), table, numadag.NewJSONLSink(&jsonl)); err != nil {
		t.Fatal(err)
	}
	if v := table.Table().Get("jacobi", "facade-test-pol"); math.IsNaN(v) || v <= 0 {
		t.Fatalf("speedup cell = %v", v)
	}
	if got := strings.Count(jsonl.String(), "\n"); got != 4 {
		t.Fatalf("JSONL streamed %d lines, want 4", got)
	}
	if want := numadag.DeriveSeed(numadag.DefaultRuntimeOptions().Seed, 1); !strings.Contains(jsonl.String(), fmt.Sprintf(`"seed":%d`, want)) {
		t.Fatalf("JSONL missing derived seed %d:\n%s", want, jsonl.String())
	}
}
