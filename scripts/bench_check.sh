#!/bin/sh
# Compares a fresh BENCH_sim.json against a committed baseline and fails on
# allocs/op regressions: any benchmark whose allocs/op grew by more than 2%
# (or became non-zero when the baseline pins 0 — the simulator and refiner
# zero-allocation contracts) fails the check. ns/op is reported for context
# but never gates: wall-clock numbers are too machine-dependent for CI,
# allocation counts are not. ns/op drift beyond BENCH_NSOP_DRIFT_PCT percent
# (default 25, 0 disables) is printed as a warning so large wall-clock swings
# are visible in the nightly log without flaking the build.
#
# Usage: scripts/bench_check.sh candidate.json baseline.json
set -e
candidate="${1:?usage: bench_check.sh candidate.json baseline.json}"
baseline="${2:?usage: bench_check.sh candidate.json baseline.json}"
drift="${BENCH_NSOP_DRIFT_PCT:-25}"

extract() {
  # name allocs_per_op, one per line; benchmarks without allocs are skipped.
  # The GOMAXPROCS suffix is stripped (bench_sim.sh strips it when writing
  # too) so baselines generated on one core count compare against runs on
  # another.
  tr ',' '\n' < "$1" | tr -d ' "{}[]' | awk -F: '
    $1 == "name"          { name = $2; sub(/-[0-9]+$/, "", name) }
    $1 == "allocs_per_op" { if (name != "") print name, $2; name = "" }
  '
}

extract_nsop() {
  # name ns_per_op, one per line (ns_per_op directly follows name in the
  # emitted JSON).
  tr ',' '\n' < "$1" | tr -d ' "{}[]' | awk -F: '
    $1 == "name"      { name = $2; sub(/-[0-9]+$/, "", name) }
    $1 == "ns_per_op" { if (name != "") print name, $2; name = "" }
  '
}

extract "$baseline" > /tmp/bench_base.$$
extract "$candidate" > /tmp/bench_cand.$$

# Warn-only wall-clock drift report.
if [ "$drift" != "0" ]; then
  extract_nsop "$baseline" > /tmp/bench_base_ns.$$
  extract_nsop "$candidate" > /tmp/bench_cand_ns.$$
  while read -r name ns; do
    base=$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_base_ns.$$)
    [ -z "$base" ] && continue
    awk -v n="$name" -v a="$ns" -v b="$base" -v d="$drift" 'BEGIN {
      if (b > 0 && (a > b * (1 + d / 100) || a < b * (1 - d / 100)))
        printf "warning: ns/op drift: %s %s -> %s (> %s%%, not gating)\n", n, b, a, d
    }'
  done < /tmp/bench_cand_ns.$$
  rm -f /tmp/bench_base_ns.$$ /tmp/bench_cand_ns.$$
fi

# Parallel flush engine report (warn-only, like all ns/op numbers): the
# par=8 / par=1 ratio of the fleet-scale cluster benchmark is the parallel
# engine's headline speedup on this host. Single-core runners legitimately
# report ~1.0x (no cores to overlap prepares on), so this informs the
# nightly log rather than gating.
extract_nsop "$candidate" | awk '
  $1 == "BenchmarkClusterTickFleet/par=1" { seq = $2 }
  $1 == "BenchmarkClusterTickFleet/par=8" { par = $2 }
  END {
    if (seq > 0 && par > 0)
      printf "parallel flush: BenchmarkClusterTickFleet par=1 %s ns/op, par=8 %s ns/op (%.2fx)\n",
        seq, par, seq / par
  }'

status=0
while read -r name allocs; do
  base=$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_base.$$)
  if [ -z "$base" ]; then
    echo "new benchmark (no baseline): $name allocs/op=$allocs"
    continue
  fi
  bad=$(awk -v a="$allocs" -v b="$base" 'BEGIN {
    if (b == 0) print (a > 0) ? 1 : 0
    else        print (a > b * 1.02) ? 1 : 0
  }')
  if [ "$bad" = "1" ]; then
    echo "ALLOCS REGRESSION: $name allocs/op $base -> $allocs" >&2
    status=1
  fi
done < /tmp/bench_cand.$$

missing=$(awk 'NR == FNR { seen[$1] = 1; next } !($1 in seen) { print $1 }' \
  /tmp/bench_cand.$$ /tmp/bench_base.$$)
if [ -n "$missing" ]; then
  echo "benchmarks missing from candidate run:" >&2
  echo "$missing" >&2
  status=1
fi

rm -f /tmp/bench_base.$$ /tmp/bench_cand.$$
if [ "$status" = "0" ]; then
  echo "bench-check: no allocs/op regressions against $baseline"
fi
exit $status
