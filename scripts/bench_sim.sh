#!/bin/sh
# Runs the simulator benchmark families and emits BENCH_sim.json, one object
# per benchmark with ns/op, allocs/op and (where reported) sim-ms/run — the
# perf trajectory tracked across PRs.
#
# Usage: scripts/bench_sim.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_sim.json}"

{
  # 25 iterations so each cell's one-time TDG build+snapshot (amortized by
  # the runner cache) stops dominating allocs/op: the number tracked across
  # PRs is the steady-state per-run cost.
  go test -run '^$' -bench 'BenchmarkFigure1|BenchmarkAblationSockets|BenchmarkMultiSeedSweep' -benchmem -benchtime 25x .
  go test -run '^$' -bench 'BenchmarkReallocate|BenchmarkFlowChurn|BenchmarkTimerChurn' -benchmem ./internal/sim/
  go test -run '^$' -bench 'BenchmarkInducedSubgraph' -benchmem ./internal/graph/
  go test -run '^$' -bench 'BenchmarkSnapshotInstall' -benchmem ./internal/rt/
  go test -run '^$' -bench 'BenchmarkRGPPrepare' -benchmem ./internal/policy/
  go test -run '^$' -bench 'BenchmarkClusterTick|BenchmarkDispatch' -benchmem ./internal/cluster/
} | awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
  name = $1; nsop = ""; allocs = ""; simms = ""
  sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix: names must be machine-independent
  for (i = 2; i <= NF; i++) {
    if ($(i) == "ns/op")      nsop   = $(i - 1)
    if ($(i) == "allocs/op")  allocs = $(i - 1)
    if ($(i) == "sim-ms/run") simms  = $(i - 1)
  }
  if (nsop == "") next
  if (!first) printf ",\n"
  first = 0
  printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  if (simms != "")  printf ", \"sim_ms_per_run\": %s", simms
  printf "}"
}
END { print "\n]" }
' > "$out"
echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
