// Servicemode: run the cluster simulator in online multi-tenant mode and
// compare the two dispatchers' tail latencies under the same arrival
// stream.
//
//	go run ./examples/servicemode
//
// Two tenants share an eight-machine fleet: an interactive tenant
// submitting small independent-task jobs at a diurnally modulated rate, and
// a batch tenant submitting fork-join DAGs at a steady Poisson rate. Every
// job runs the RGP+LAS policy on its machine; the dispatchers differ only
// in placement. Slowdowns are normalized against the IdealDC fluid model
// (aggregate fleet capacity, egalitarian sharing), so a slowdown of k means
// the job took k times its capacity-only lower bound.
//
// The second run also demonstrates observability: a Tracer records every
// task, transfer, flow and job as a Chrome trace (servicemode.json, load in
// Perfetto), and a ClusterMonitor captures the same live snapshot the
// dcsim -http endpoint serves. Tracing never perturbs the simulation — both
// runs see the identical arrival stream and schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"numadag"
)

func main() {
	tenants := []numadag.ClusterTenant{
		{Name: "interactive", Specs: []string{"noop?tasks=4&flops=4096"},
			Process: "diurnal", Rate: 4000, Amplitude: 0.6, Period: 200 * numadag.Time(1e6)},
		{Name: "batch", Specs: []string{"forkjoin?depth=3&fanout=2"},
			Process: "poisson", Rate: 1000},
	}

	for _, disp := range []string{"kchoices?d=2", "idle"} {
		cfg := numadag.ClusterConfig{
			Machines:   8,
			Machine:    numadag.TwoSocketXeon(),
			Policy:     "RGP+LAS",
			Runtime:    numadag.DefaultRuntimeOptions(),
			Scale:      numadag.ScaleTiny,
			Tenants:    tenants,
			Jobs:       600,
			Seed:       1,
			Dispatcher: disp,
		}
		var mon *numadag.ClusterMonitor
		if disp == "idle" {
			// Trace the second run end to end and capture the live-monitor
			// snapshot. To watch a run in progress instead, serve
			// mon.Handler() on a listener (that is all dcsim -http does).
			cfg.Trace = numadag.NewTracer()
			mon = numadag.NewClusterMonitor(cfg.Trace)
			cfg.Monitor = mon
		}
		res, err := numadag.RunCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dispatcher %s — %s\n", disp, res.Stats.Summary())
		if err := res.Stats.SummaryTable().Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if cfg.Trace != nil {
			if err := cfg.Trace.WriteFile("servicemode.json"); err != nil {
				log.Fatal(err)
			}
			snap := mon.Snapshot()
			fmt.Printf("traced run: %d spans -> servicemode.json (load in Perfetto); final monitor snapshot: %d jobs done, utilization %.2f\n\n",
				cfg.Trace.Spans(), snap.JobsDone, snap.Utilization)
		}
	}
	fmt.Println("command-line driver with the same knobs: go run ./cmd/dcsim -h")
}
