// Customworkload: register a new task-graph generator against the public
// workload registry and sweep it — by spec string — through the paper's
// policies, exactly like a built-in benchmark.
//
// The example generator, "wavefront", builds the classic 2D wavefront
// dependence pattern (each tile waits on its north and west neighbors —
// dynamic programming, Smith-Waterman, LU-style sweeps). Once registered,
// "wavefront?n=24" is a first-class workload spec: Run, Experiment grids
// and the CLIs all resolve it, the experiment's TDG cache builds it once
// per machine no matter how many seeds race over it, and every run goes
// through the audited path.
//
//	go run ./examples/customworkload
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"numadag"
)

func init() {
	numadag.MustRegisterWorkload("wavefront",
		"2D wavefront over an n x n tile grid [n, tile, flops]",
		func(s numadag.WorkloadSpec, scale numadag.Scale, seed uint64) (numadag.Workload, error) {
			if err := s.Only("n", "tile", "flops"); err != nil {
				return numadag.Workload{}, err
			}
			// Scale-aware default, overridable by n=.
			def := map[numadag.Scale]int{numadag.ScaleTiny: 6, numadag.ScaleSmall: 16, numadag.ScalePaper: 48}[scale]
			n, err := s.Int("n", def)
			if err != nil {
				return numadag.Workload{}, err
			}
			tile, err := s.Bytes("tile", 64<<10)
			if err != nil {
				return numadag.Workload{}, err
			}
			flops, err := s.Float("flops", 32*1024)
			if err != nil {
				return numadag.Workload{}, err
			}
			if n < 2 || tile <= 0 || flops <= 0 {
				return numadag.Workload{}, fmt.Errorf("wavefront: invalid parameters (n=%d tile=%d flops=%g)", n, tile, flops)
			}
			build := func(r *numadag.Runtime) error {
				cells := make([][]*numadag.Region, n)
				for i := range cells {
					cells[i] = make([]*numadag.Region, n)
					for j := range cells[i] {
						cells[i][j] = r.Mem().Alloc(fmt.Sprintf("c[%d][%d]", i, j), tile, numadag.Deferred, 0)
					}
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						acc := []numadag.Access{{Region: cells[i][j], Mode: numadag.Out}}
						if i > 0 {
							acc = append(acc, numadag.Access{Region: cells[i-1][j], Mode: numadag.In})
						}
						if j > 0 {
							acc = append(acc, numadag.Access{Region: cells[i][j-1], Mode: numadag.In})
						}
						r.Submit(numadag.TaskSpec{
							Label:    fmt.Sprintf("wf(%d,%d)", i, j),
							Flops:    flops,
							Accesses: acc,
							EPSocket: numadag.NoEPHint,
						})
					}
				}
				return nil
			}
			return numadag.Workload{Build: build}, nil
		})
}

func main() {
	fmt.Println("custom workload \"wavefront\" vs a built-in and a synthetic, 3 seeds each")
	fmt.Println("(each workload's TDG is built once and shared across all its cells)")
	fmt.Println()

	e := &numadag.Experiment{
		Name: "customworkload",
		Apps: []string{
			"wavefront?n=20",
			"jacobi",
			"random-layered?layers=12&width=24&seed=9",
		},
		Policies: []string{"LAS", "DFIFO", "RGP+LAS"},
		Scale:    numadag.ScaleSmall,
		Seeds:    3,
	}
	table := numadag.NewTableSink(numadag.TableOptions{
		Title:    "makespan speedup over LAS",
		Norm:     numadag.NormSpeedup,
		Baseline: func(c numadag.Cell) bool { return c.Policy == "LAS" },
		Geomean:  true,
	})
	if err := e.Run(context.Background(), table); err != nil {
		log.Fatal(err)
	}
	if err := table.Table().Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
