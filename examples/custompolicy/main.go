// Custompolicy: implement a new scheduling policy against the public Policy
// interface and race it against the built-in ones.
//
// The example policy, "widest-first", places each ready task on the socket
// with the shortest queue, breaking ties toward the socket holding most of
// the task's data — a simple blend of load balancing and locality that sits
// between DFIFO and LAS.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"numadag"
)

// shortestQueue is the custom policy. It is deterministic: ties break by
// residency bytes, then socket index.
type shortestQueue struct{}

// Name implements numadag.Policy.
func (shortestQueue) Name() string { return "ShortestQueue" }

// PickSocket implements numadag.Policy.
func (shortestQueue) PickSocket(r *numadag.Runtime, t *numadag.Task) int {
	res := r.ResidencyBytes(t)
	best, bestLen, bestBytes := 0, int(^uint(0)>>1), int64(-1)
	for s := 0; s < r.Machine().Sockets(); s++ {
		l := r.QueueLen(s)
		switch {
		case l < bestLen:
			best, bestLen, bestBytes = s, l, res[s]
		case l == bestLen && res[s] > bestBytes:
			best, bestBytes = s, res[s]
		}
	}
	return best
}

func main() {
	const app = "cg"
	run := func(pol numadag.Policy) numadag.Result {
		eng := numadag.NewEngine()
		m := numadag.NewMachine(numadag.BullionS16(), eng)
		r := numadag.NewRuntime(m, pol, numadag.DefaultRuntimeOptions())
		a, err := numadag.AppByName(app, numadag.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		a.Build(r)
		return r.Run()
	}

	las, err := numadag.NewPolicy("LAS")
	if err != nil {
		log.Fatal(err)
	}
	rgp, err := numadag.NewPolicy("RGP+LAS")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %q, custom policy vs built-ins\n\n", app)
	for _, p := range []numadag.Policy{shortestQueue{}, las, rgp} {
		res := run(p)
		fmt.Printf("%-14s makespan %12v  remote %5.1f%%  imbalance %.2f\n",
			p.Name(), res.Makespan, 100*res.RemoteRatio(), res.LoadImbalance)
	}
}
