// Custompolicy: implement a new scheduling policy against the public Policy
// interface, register it by name, and race it against the built-ins over a
// declarative experiment grid.
//
// The example policy, "widest-first", places each ready task on the socket
// with the shortest queue, breaking ties toward the socket holding most of
// the task's data — a simple blend of load balancing and locality that sits
// between DFIFO and LAS. Once registered, "ShortestQueue" is a first-class
// policy name: experiments, sweeps and rgpsim can all refer to it, and every
// run of it goes through the audited run path.
//
//	go run ./examples/custompolicy
package main

import (
	"context"
	"fmt"
	"log"

	"numadag"
)

// shortestQueue is the custom policy. It is deterministic: ties break by
// residency bytes, then socket index.
type shortestQueue struct{}

// Name implements numadag.Policy.
func (shortestQueue) Name() string { return "ShortestQueue" }

// PickSocket implements numadag.Policy.
func (shortestQueue) PickSocket(r *numadag.Runtime, t *numadag.Task) int {
	res := r.ResidencyBytes(t)
	best, bestLen, bestBytes := 0, int(^uint(0)>>1), int64(-1)
	for s := 0; s < r.Machine().Sockets(); s++ {
		l := r.QueueLen(s)
		switch {
		case l < bestLen:
			best, bestLen, bestBytes = s, l, res[s]
		case l == bestLen && res[s] > bestBytes:
			best, bestBytes = s, res[s]
		}
	}
	return best
}

func main() {
	if err := numadag.RegisterPolicy("ShortestQueue",
		func(numadag.PolicySpec) (numadag.Policy, error) { return shortestQueue{}, nil }); err != nil {
		log.Fatal(err)
	}

	const app = "cg"
	e := &numadag.Experiment{
		Name:     "custompolicy",
		Apps:     []string{app},
		Policies: []string{"ShortestQueue", "LAS", "RGP+LAS"},
		Scale:    numadag.ScaleSmall,
	}
	fmt.Printf("benchmark %q, custom policy vs built-ins\n\n", app)
	report := numadag.SinkFunc(func(res numadag.CellResult) error {
		_, err := fmt.Printf("%-14s makespan %12v  remote %5.1f%%  imbalance %.2f\n",
			res.Cell.Policy, res.Stats.Makespan, 100*res.Stats.RemoteRatio(), res.Stats.LoadImbalance)
		return err
	})
	if err := e.Run(context.Background(), report); err != nil {
		log.Fatal(err)
	}
}
