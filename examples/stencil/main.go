// Stencil: build a custom task-based application — a 2D heat-diffusion
// stencil — directly against the runtime API, and watch how data placement
// evolves under locality-aware scheduling vs runtime graph partitioning.
//
// This is the "write your own app" path: allocate regions, submit tasks
// with in/out accesses, and let the runtime derive the dependency graph.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"numadag"
)

const (
	nb    = 12        // 12x12 tile grid
	tile  = 128 << 10 // 128 KiB per tile
	steps = 8
)

// buildHeat submits init tasks plus `steps` ping-pong sweeps of a 5-point
// stencil and returns the runtime, ready to Run.
func buildHeat(r *numadag.Runtime) {
	alloc := func(name string) [][]*numadag.Region {
		g := make([][]*numadag.Region, nb)
		for i := range g {
			g[i] = make([]*numadag.Region, nb)
			for j := range g[i] {
				g[i][j] = r.Mem().Alloc(fmt.Sprintf("%s[%d][%d]", name, i, j), tile, numadag.Deferred, 0)
			}
		}
		return g
	}
	src, dst := alloc("cur"), alloc("next")
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			r.Submit(numadag.TaskSpec{
				Label:    fmt.Sprintf("init(%d,%d)", i, j),
				Flops:    float64(tile / 8),
				Accesses: []numadag.Access{{Region: src[i][j], Mode: numadag.Out}},
				EPSocket: numadag.NoEPHint,
			})
		}
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				acc := []numadag.Access{
					{Region: dst[i][j], Mode: numadag.Out},
					{Region: src[i][j], Mode: numadag.In},
				}
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ni, nj := i+d[0], j+d[1]
					if ni >= 0 && ni < nb && nj >= 0 && nj < nb {
						acc = append(acc, numadag.Access{Region: src[ni][nj], Mode: numadag.In})
					}
				}
				r.Submit(numadag.TaskSpec{
					Label:    fmt.Sprintf("heat(%d,%d,%d)", s, i, j),
					Flops:    4 * float64(tile/8),
					Accesses: acc,
					EPSocket: numadag.NoEPHint,
				})
			}
		}
		src, dst = dst, src
	}
}

func main() {
	fmt.Printf("2D heat diffusion, %dx%d tiles of %d KiB, %d steps\n\n", nb, nb, tile>>10, steps)
	for _, polName := range []string{"LAS", "RGP+LAS"} {
		pol, err := numadag.NewPolicy(polName)
		if err != nil {
			log.Fatal(err)
		}
		eng := numadag.NewEngine()
		m := numadag.NewMachine(numadag.BullionS16(), eng)
		r := numadag.NewRuntime(m, pol, numadag.DefaultRuntimeOptions())
		buildHeat(r)
		res := r.Run()
		fmt.Printf("%-8s makespan %12v   remote traffic %5.1f%%   TDG cut %8d bytes\n",
			polName, res.Makespan, 100*res.RemoteRatio(), res.CutBytes)

		// Where did the tiles end up? Count tiles per socket.
		perSocket := make([]int, m.Sockets())
		for _, reg := range r.Mem().Regions() {
			by := reg.BytesOnSocket(m.Sockets())
			best, bestB := 0, int64(-1)
			for s, b := range by {
				if b > bestB {
					best, bestB = s, b
				}
			}
			perSocket[best]++
		}
		fmt.Printf("         tiles homed per socket: %v\n\n", perSocket)
	}
	fmt.Println("RGP+LAS should show less remote traffic and a smaller TDG cut:")
	fmt.Println("the partitioner groups neighboring tiles' tasks on the same socket.")
}
