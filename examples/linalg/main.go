// Linalg: run the symmetric matrix inversion benchmark (the three-sweep
// Cholesky inversion DAG) under the expert-programmer policy, record an
// execution trace, and emit both a Chrome trace file and a terminal Gantt
// chart of the factorization pipeline.
//
//	go run ./examples/linalg
//	# then open syminv_trace.json in chrome://tracing or ui.perfetto.dev
package main

import (
	"fmt"
	"log"
	"os"

	"numadag"
)

func main() {
	pol, err := numadag.NewPolicy("EP")
	if err != nil {
		log.Fatal(err)
	}
	rec := numadag.NewTraceRecorder()

	eng := numadag.NewEngine()
	m := numadag.NewMachine(numadag.BullionS16(), eng)
	opts := numadag.DefaultRuntimeOptions()
	opts.Observer = rec
	r := numadag.NewRuntime(m, pol, opts)

	// Build via the app registry (same generator the evaluation uses).
	app, err := numadag.AppByName("syminv", numadag.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	app.Build(r)

	res := r.Run()
	fmt.Printf("symmetric matrix inversion under EP: %s\n\n", res.Summary())

	if err := rec.WriteGantt(os.Stdout, m.Cores(), 100); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("syminv_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace written to syminv_trace.json (open in chrome://tracing)")
}
