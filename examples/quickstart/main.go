// Quickstart: run one of the paper's benchmarks under the paper's policies
// and print each policy's makespan and speedup over the LAS baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"numadag"
)

func main() {
	const app = "jacobi"
	fmt.Printf("benchmark %q on the simulated bullion S16 (8 sockets x 4 cores)\n\n", app)

	baselineCfg := numadag.DefaultConfig(app, "LAS", numadag.ScaleSmall)
	baseline, err := numadag.Run(baselineCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %14v  (baseline)  %s\n", "LAS", baseline.Stats.Makespan, baseline.Stats.Summary())

	for _, pol := range []string{"DFIFO", "EP", "RGP+LAS"} {
		cfg := numadag.DefaultConfig(app, pol, numadag.ScaleSmall)
		res, err := numadag.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(baseline.Stats.Makespan) / float64(res.Stats.Makespan)
		fmt.Printf("%-8s %14v  (%.2fx)     %s\n", pol, res.Stats.Makespan, speedup, res.Stats.Summary())
	}

	fmt.Println("\nfull Figure-1 reproduction: go run ./cmd/figure1")
}
