// Package numadag is a simulation framework for studying NUMA-aware
// scheduling of task dependency graphs, reproducing "Graph partitioning
// applied to DAG scheduling to reduce NUMA effects" (Sánchez Barrera et al.,
// PPoPP 2018).
//
// The package is a facade over the internal packages; it exposes everything
// a user needs to
//
//   - run the paper's benchmarks under its scheduling policies (Run,
//     Figure1),
//   - declare whole evaluation grids — workloads x policies x machines x
//     runtime variants x seeds — and execute them on a shared worker pool
//     with streaming result sinks (Experiment, TableSink, JSONL/CSV sinks),
//   - register custom scheduling policies by name so experiments and
//     commands can refer to them like built-ins (RegisterPolicy, the
//     Policy interface),
//   - register custom task-graph generators the same way (RegisterWorkload,
//     NewWorkload) and resolve workload specs — benchmarks, parameterized
//     synthetic DAGs, imported files — anywhere an app name is accepted,
//   - build custom task-based applications on the simulated runtime
//     (NewEngine/NewMachine/NewRuntime, TaskSpec, Access), and
//   - use the multilevel graph partitioner directly (Partition, MapOnto).
//
// Quick start — one run:
//
//	cfg := numadag.DefaultConfig("jacobi", "RGP+LAS", numadag.ScaleSmall)
//	res, err := numadag.Run(cfg)
//	fmt.Println(res.Stats.Summary())
//
// Quick start — a custom policy raced over a grid:
//
//	numadag.RegisterPolicy("Mine", func(spec numadag.PolicySpec) (numadag.Policy, error) {
//		return minePolicy{}, nil
//	})
//	e := &numadag.Experiment{
//		Apps:     []string{"jacobi", "nstream"},
//		Policies: []string{"LAS", "Mine", "RGP+LAS?matching=random"},
//		Scale:    numadag.ScaleSmall,
//		Seeds:    3,
//	}
//	table := numadag.NewTableSink(numadag.TableOptions{
//		Norm:     numadag.NormSpeedup,
//		Baseline: func(c numadag.Cell) bool { return c.Policy == "LAS" },
//		Geomean:  true,
//	})
//	if err := e.Run(context.Background(), table, numadag.NewJSONLSink(os.Stdout)); err != nil {
//		log.Fatal(err)
//	}
//	table.Table().Write(os.Stdout)
//
// Quick start — sharded, resumable sweeps:
//
// An Experiment's grid can be split into deterministic shards, run
// anywhere, checkpointed to crash-safe journals, and merged back into
// outputs byte-identical to an unsharded run. The journal/shard wire
// format is versioned (ShardWireVersion — see shard.Record's compatibility
// rule: readers reject unknown versions and released versions stay
// decodable forever), and every record round-trips bit-exactly, which is
// what makes the byte-identity guarantee possible.
//
//	sp, _ := numadag.ParseShardSpec("0/3") // this process owns cells 0, 3, 6, ...
//	h, _ := numadag.ShardHeaderFor(e, sp)
//	j, _ := numadag.OpenShardJournal(numadag.ShardJournalPath("out", sp), h, resume)
//	defer j.Close()
//	cs := numadag.NewCheckpointSink(j, table) // journals fresh cells, replays journaled ones
//	e.Skip = func(c numadag.Cell) bool { return sp.Skip(c) || cs.Skip(c) }
//	err := e.Run(ctx, cs) // errors.Is(err, numadag.ErrSweepInterrupted) => resumable stop
//	...
//	numadag.MergeShardDir("out", table2, numadag.NewJSONLSink(f)) // all shards -> canonical stream
//
// Sinks advertise optional capabilities by interface: a CheckpointableSink
// can snapshot and restore its aggregation state, a MergeableSink can
// absorb another shard's partial (TableSink implements both; Histogram
// checkpoints via MarshalBinary and merges via Merge). Plain sinks keep
// working everywhere unchanged — capabilities are discovered by type
// assertion. For fleets without a shared filesystem, a ShardCoordinator
// hands shards to workers over HTTP with lease-based reassignment
// (JoinShardFleet is the worker loop); cmd/sweep and cmd/figure1 expose
// all of this as -shard/-resume/-out/-merge/-serve/-join/-maxcells.
//
// Quick start — service mode (online multi-tenant cluster):
//
//	res, err := numadag.RunCluster(numadag.ClusterConfig{
//		Machines: 8,
//		Machine:  numadag.TwoSocketXeon(),
//		Policy:   "RGP+LAS",
//		Runtime:  numadag.DefaultRuntimeOptions(),
//		Scale:    numadag.ScaleTiny,
//		Tenants: []numadag.ClusterTenant{
//			{Name: "web", Specs: []string{"noop?tasks=4"}, Process: "poisson", Rate: 4000},
//			{Name: "hpc", Specs: []string{"forkjoin?depth=5"}, Process: "diurnal",
//				Rate: 500, Amplitude: 0.6, Period: 200 * numadag.Time(1e6)},
//		},
//		Jobs: 1000, Seed: 1, Dispatcher: "kchoices?d=2",
//	})
//	res.Stats.SummaryTable().Write(os.Stdout) // p50/p95/p99 slowdown vs IdealDC, per tenant
//
// Arrivals, dispatch and scheduling all derive from the one seed, so a
// fixed-seed service run is bit-identical across repeats; cmd/dcsim is the
// command-line driver.
//
// Quick start — tracing and the live monitor:
//
// A Tracer records the whole stack — task spans per core, memory transfers,
// fluid flows per link, per-link bandwidth-utilization counters, and in
// service mode job spans, dispatch decisions and queue depths — as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Tracing observes without perturbing: a fixed-seed run
// is bit-identical with or without it.
//
//	tr := numadag.NewTracer()
//	cfg := numadag.DefaultConfig("jacobi", "RGP+LAS", numadag.ScaleSmall)
//	cfg.Trace = tr
//	if _, err := numadag.Run(cfg); err != nil {
//		log.Fatal(err)
//	}
//	tr.WriteFile("jacobi.json")        // open in Perfetto
//	tr.WriteGantt(os.Stdout, 0, 100)   // text timeline: cores + links
//
// The same Tracer slot exists on Experiment, Figure1Options and
// ClusterConfig (cmd/figure1 -trace, cmd/dcsim -trace). For long
// service-mode runs, a ClusterMonitor serves live progress over HTTP —
// /status returns jobs in flight and per-tenant p50/p95/p99 slowdown as
// JSON, /trace downloads the trace so far (cmd/dcsim -http :8080):
//
//	mon := numadag.NewClusterMonitor(tr)
//	ccfg.Trace, ccfg.Monitor = tr, mon
//	ln, _ := net.Listen("tcp", ":8080")
//	go http.Serve(ln, mon.Handler())
//	res, err := numadag.RunCluster(ccfg)
//
// Quick start — workload specs:
//
// Wherever a benchmark name is accepted (Config.App, Experiment.Apps,
// cmd/rgpsim -app, cmd/dagpart -app, cmd/dagen -spec), a full workload
// registry spec works: "name?key=value&key=value". The registered
// generators are the eight paper benchmarks (parameterizable:
// "jacobi?nb=32&tile=1M&iters=4"), the synthetic families
// "random-layered?layers=24&width=96&cv=0.4" and "forkjoin?depth=10&fanout=4",
// and "file?path=graph.json" for DAGs in cmd/dagpart's JSON format. Two
// keys are reserved on every workload: scale=tiny|small|paper overrides the
// contextual scale and seed=N drives the generator's own randomness —
// distinct from the runtime seed, so an N-replicate sweep reuses one graph.
// Custom generators register like policies:
//
//	numadag.MustRegisterWorkload("chain", "linear pipeline [n]",
//		func(s numadag.WorkloadSpec, scale numadag.Scale, seed uint64) (numadag.Workload, error) {
//			n, err := s.Int("n", 64)
//			if err != nil {
//				return numadag.Workload{}, err
//			}
//			return numadag.Workload{Build: func(r *numadag.Runtime) error {
//				var prev *numadag.Region
//				for i := 0; i < n; i++ {
//					reg := r.Mem().Alloc(fmt.Sprintf("d%d", i), 64<<10, numadag.Deferred, 0)
//					acc := []numadag.Access{{Region: reg, Mode: numadag.Out}}
//					if prev != nil {
//						acc = append(acc, numadag.Access{Region: prev, Mode: numadag.In})
//					}
//					r.Submit(numadag.TaskSpec{Label: fmt.Sprintf("t%d", i), Flops: 1e4,
//						Accesses: acc, EPSocket: numadag.NoEPHint})
//					prev = reg
//				}
//				return nil
//			}}, nil
//		})
//	res, _ := numadag.Run(numadag.DefaultConfig("chain?n=128", "RGP+LAS", numadag.ScaleSmall))
//
// Experiments memoize each workload's built task graph in a bounded
// per-experiment cache (one build per workload x machine, shared across
// policies, variants and replicate seeds); builders must therefore be pure
// functions of (spec, scale, seed, machine) — set Workload.NoCache to opt
// out. cmd/dagen lists, describes, generates and exports workloads.
//
// Policy names are registry specs: "name?key=value" parameterizes a
// registered family (e.g. the RGP partitioner ablations). Replicate seeds
// always derive from the base seed via DeriveSeed — seed + 1000*replicate —
// and every cell of an Experiment runs through the audited Run path.
package numadag

import (
	"context"
	"io"
	"time"

	"numadag/internal/apps"
	"numadag/internal/cluster"
	"numadag/internal/core"
	"numadag/internal/graph"
	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/metrics"
	"numadag/internal/partition"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/shard"
	"numadag/internal/sim"
	"numadag/internal/trace"
	"numadag/internal/workload"
)

// Simulation substrate.
type (
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Time is simulated nanoseconds.
	Time = sim.Time
	// Machine is an instantiated NUMA machine.
	Machine = machine.Machine
	// MachineConfig describes a NUMA topology.
	MachineConfig = machine.Config
)

// NewEngine creates a fresh simulation engine.
func NewEngine() *Engine { return sim.NewEngine() }

// NewMachine instantiates a machine config over an engine.
func NewMachine(cfg MachineConfig, eng *Engine) *Machine { return machine.New(cfg, eng) }

// Machine presets.
var (
	// BullionS16 is the paper's evaluation machine (8 sockets x 4 cores).
	BullionS16 = machine.BullionS16
	// TwoSocketXeon is a common 2-socket node.
	TwoSocketXeon = machine.TwoSocketXeon
	// FourSocket is a glueless 4-socket node.
	FourSocket = machine.FourSocket
	// UniformMachine has no NUMA effects (control configuration).
	UniformMachine = machine.Uniform
)

// Runtime layer.
type (
	// Runtime is the task-based runtime (the Nanos++ stand-in).
	Runtime = rt.Runtime
	// RuntimeOptions tunes window size, stealing and seeds.
	RuntimeOptions = rt.Options
	// TaskSpec describes a task at submission.
	TaskSpec = rt.TaskSpec
	// Task is a submitted task instance.
	Task = rt.Task
	// Access is one region dependence of a task.
	Access = rt.Access
	// AccessMode is In, Out or InOut.
	AccessMode = rt.AccessMode
	// Policy decides where ready tasks run.
	Policy = rt.Policy
	// Result is a run's statistics.
	Result = rt.Result
	// Region is a NUMA-homed allocation.
	Region = memory.Region
	// Placement selects how region pages are homed.
	Placement = memory.Placement
)

// Access modes and placements.
const (
	In    = rt.In
	Out   = rt.Out
	InOut = rt.InOut

	Deferred   = memory.Deferred
	FirstTouch = memory.FirstTouch
	Interleave = memory.Interleave
	HomePlaced = memory.Home

	// NoEPHint marks a task without an expert-programmer placement.
	NoEPHint = rt.NoEPHint
	// AnySocket lets the runtime place a task cyclically over cores.
	AnySocket = rt.AnySocket
	// DeferPlacement parks a task in the temporary queue.
	DeferPlacement = rt.DeferPlacement
)

// NewRuntime creates a runtime over a machine with the given policy.
func NewRuntime(m *Machine, pol Policy, opts RuntimeOptions) *Runtime {
	return rt.NewRuntime(m, pol, opts)
}

// DefaultRuntimeOptions returns the evaluation's runtime settings.
func DefaultRuntimeOptions() RuntimeOptions { return rt.DefaultOptions() }

// Experiments.
type (
	// Config describes one simulation run (app x policy x machine).
	Config = core.Config
	// RunResult couples a config with its statistics.
	RunResult = core.RunResult
	// Figure1Options tunes the Figure-1 reproduction.
	Figure1Options = core.Figure1Options
	// Table is a named-rows/columns result table.
	Table = metrics.Table
	// Scale selects a problem-size preset.
	Scale = apps.Scale

	// Experiment declares an evaluation grid (apps x policies x machines x
	// variants x seeds) executed on a shared worker pool with every cell
	// audited.
	Experiment = core.Experiment
	// ExperimentVariant is one runtime-option mutation axis value.
	ExperimentVariant = core.Variant
	// Cell identifies one run of an experiment grid.
	Cell = core.Cell
	// CellResult couples a cell with its config and statistics.
	CellResult = core.CellResult
	// Sink consumes streaming cell results in deterministic order.
	Sink = core.Sink
	// SinkFunc adapts a function to the Sink interface.
	SinkFunc = core.SinkFunc
	// TableSink aggregates cell results into a Table.
	TableSink = core.TableSink
	// TableOptions declares a TableSink's axes and normalization.
	TableOptions = core.TableOptions
	// Norm selects a TableSink value transformation.
	Norm = core.Norm
	// CheckpointableSink is the optional Sink capability of snapshotting
	// and restoring aggregation state (resumable sweeps).
	CheckpointableSink = core.CheckpointableSink
	// MergeableSink is the optional Sink capability of absorbing another
	// sink's partial aggregation (sharded sweeps).
	MergeableSink = core.MergeableSink
	// PolicySpec is a parsed policy registry spec (name + parameters).
	PolicySpec = policy.Spec
	// PolicyFactory builds a policy instance from a parsed spec.
	PolicyFactory = policy.Factory
)

// Table normalizations.
const (
	NormRaw     = core.NormRaw
	NormSpeedup = core.NormSpeedup
	NormRatio   = core.NormRatio
	NormBest    = core.NormBest
)

// RegisterPolicy adds a custom policy factory to the registry; the name is
// then usable in Config.Policy, Experiment.Policies and NewPolicy specs.
func RegisterPolicy(name string, f PolicyFactory) error { return policy.Register(name, f) }

// MustRegisterPolicy is RegisterPolicy, panicking on error.
func MustRegisterPolicy(name string, f PolicyFactory) { policy.MustRegister(name, f) }

// ParsePolicySpec parses "name?key=value&..." into a PolicySpec.
func ParsePolicySpec(s string) (PolicySpec, error) { return policy.ParseSpec(s) }

// RegisteredPolicies lists every registered policy name, sorted.
func RegisteredPolicies() []string { return policy.Names() }

// DeriveSeed is the evaluation-wide replicate-seed formula:
// base + 1000*replicate.
func DeriveSeed(base uint64, replicate int) uint64 { return core.DeriveSeed(base, replicate) }

// NewTableSink creates a streaming table aggregator.
func NewTableSink(opt TableOptions) *TableSink { return core.NewTableSink(opt) }

// NewJSONLSink streams one JSON object per cell result to w.
func NewJSONLSink(w io.Writer) Sink { return core.NewJSONLSink(w) }

// NewCSVSink streams one CSV row per cell result to w.
func NewCSVSink(w io.Writer) Sink { return core.NewCSVSink(w) }

// Sharded, resumable sweeps (see the sharding quick start above).
type (
	// ShardSpec selects one deterministic shard (index/count) of a grid.
	ShardSpec = shard.Spec
	// ShardHeader binds a journal/shard stream to one experiment grid.
	ShardHeader = shard.Header
	// ShardJournal is a crash-safe, per-line-flushed record of completed
	// cells; it doubles as a shard's merge-ready output file.
	ShardJournal = shard.Journal
	// CheckpointSink journals fresh cell results and replays journaled
	// ones, so resumed runs deliver the full canonical stream downstream.
	CheckpointSink = shard.CheckpointSink
	// ShardStream is one parsed journal/shard stream.
	ShardStream = shard.Stream
	// ShardCoordinator distributes shards to workers over HTTP with
	// lease-based reassignment on worker loss.
	ShardCoordinator = shard.Coordinator
)

// ShardWireVersion is the version of the cell-result wire format shared by
// checkpoint journals, shard outputs and the coordinator protocol.
const ShardWireVersion = shard.WireVersion

// ErrSweepInterrupted is returned (wrapped) by Experiment.Run when a
// CheckpointSink's MaxFresh quota stops a run; the journal is valid and
// the sweep resumable.
var ErrSweepInterrupted = shard.ErrInterrupted

// ParseShardSpec parses "index/count" (0-based), e.g. "0/3".
func ParseShardSpec(s string) (ShardSpec, error) { return shard.ParseSpec(s) }

// ShardHeaderFor fingerprints one shard of an experiment's canonical grid.
func ShardHeaderFor(e *Experiment, sp ShardSpec) (ShardHeader, error) {
	return shard.HeaderFor(e, sp)
}

// ShardJournalPath names shard sp's journal file under dir.
func ShardJournalPath(dir string, sp ShardSpec) string { return shard.JournalPath(dir, sp) }

// OpenShardJournal creates (or, with resume, reopens and truncates to the
// last intact record of) the journal at path for the grid h describes.
func OpenShardJournal(path string, h ShardHeader, resume bool) (*ShardJournal, error) {
	return shard.OpenJournal(path, h, resume)
}

// NewCheckpointSink wraps the inner sinks behind journal j; pass it as the
// experiment's sink and wire Experiment.Skip to its Skip method.
func NewCheckpointSink(j *ShardJournal, inner ...Sink) *CheckpointSink {
	return shard.NewCheckpointSink(j, inner...)
}

// MergeShards recombines shard streams into the canonical cell order and
// feeds the sinks — byte-identical to an unsharded run's outputs.
func MergeShards(streams []ShardStream, sinks ...Sink) (ShardHeader, error) {
	return shard.Merge(streams, sinks...)
}

// MergeShardDir merges every shard journal found in dir.
func MergeShardDir(dir string, sinks ...Sink) (ShardHeader, error) {
	return shard.MergeDir(dir, sinks...)
}

// ReadShardStream parses a journal/shard stream's bytes (tolerating a torn
// final line).
func ReadShardStream(data []byte) (ShardStream, error) { return shard.ReadStream(data) }

// NewShardCoordinator creates a coordinator handing count shards to
// workers under the given heartbeat lease (0 means 30s); serve its
// Handler() and collect completed journals with WriteDir.
func NewShardCoordinator(count int, lease time.Duration) (*ShardCoordinator, error) {
	return shard.NewCoordinator(count, lease)
}

// JoinShardFleet is the worker loop: it claims shards from the coordinator
// at baseURL until the grid is done, heartbeating while run computes each
// shard's wire stream (write it with a shard.Writer over ShardHeaderFor).
func JoinShardFleet(ctx context.Context, baseURL string, run func(ShardSpec) ([]byte, error)) error {
	return shard.Work(ctx, baseURL, run)
}

// Problem scales.
const (
	ScaleTiny  = apps.Tiny
	ScaleSmall = apps.Small
	ScalePaper = apps.Paper
)

// DefaultConfig returns the evaluation settings for one run.
func DefaultConfig(app, policy string, scale Scale) Config {
	return core.DefaultConfig(app, policy, scale)
}

// Run executes one configuration.
func Run(cfg Config) (RunResult, error) { return core.Run(cfg) }

// Figure1 reproduces the paper's Figure 1 (speedups over LAS); optional
// extra sinks receive every cell result alongside the table aggregation.
func Figure1(opt Figure1Options, extra ...Sink) (*Table, error) { return core.Figure1(opt, extra...) }

// DefaultFigure1Options returns the paper-faithful Figure-1 settings.
func DefaultFigure1Options() Figure1Options { return core.DefaultFigure1Options() }

// App is a named benchmark task-graph generator.
type App = apps.App

// AppNames lists the eight benchmarks.
func AppNames() []string { return apps.Names() }

// AppByName instantiates a benchmark generator at the given scale; call its
// Build method on a Runtime to submit the task graph.
func AppByName(name string, s Scale) (App, error) { return apps.ByName(name, s) }

// Apps instantiates all eight benchmarks at the given scale.
func Apps(s Scale) []App { return apps.All(s) }

// Workloads.
type (
	// Workload is a named, seeded task-graph builder resolved from a
	// registry spec; its Build submits the graph and allocates its regions.
	Workload = workload.Workload
	// WorkloadSpec is a parsed workload registry spec (name + parameters).
	WorkloadSpec = workload.Spec
	// WorkloadFactory builds a Workload from a parsed spec, contextual
	// scale and generator seed.
	WorkloadFactory = workload.Factory
)

// RegisterWorkload adds a custom task-graph generator to the registry with
// a one-line doc string; the name is then usable in Config.App,
// Experiment.Apps and every command's workload flags, including
// parameterized forms "name?key=value".
func RegisterWorkload(name, doc string, f WorkloadFactory) error {
	return workload.Register(name, doc, f)
}

// MustRegisterWorkload is RegisterWorkload, panicking on error.
func MustRegisterWorkload(name, doc string, f WorkloadFactory) {
	workload.MustRegister(name, doc, f)
}

// NewWorkload resolves a workload spec ("jacobi", "forkjoin?depth=10",
// "file?path=g.json") at the given contextual scale. The reserved
// parameters scale= and seed= are handled here for every generator.
func NewWorkload(spec string, s Scale) (Workload, error) { return workload.New(spec, s) }

// WorkloadNames lists every registered workload name, sorted.
func WorkloadNames() []string { return workload.Names() }

// WorkloadDoc returns a registered workload's one-line documentation.
func WorkloadDoc(name string) (string, error) { return workload.Doc(name) }

// ParseWorkloadSpec parses "name?key=value&..." into a WorkloadSpec.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) { return workload.ParseSpec(s) }

// PolicyNames lists the Figure-1 scheduling configurations.
func PolicyNames() []string { return append([]string(nil), core.PolicyNames...) }

// NewPolicy instantiates a policy from a registry spec — a built-in name
// (DFIFO, LAS, EP, RGP+LAS, RGP, Random, OSMigrate, HEFT), a registered
// custom name, or a parameterized form like "RGP+LAS?matching=random".
func NewPolicy(spec string) (Policy, error) { return core.NewPolicy(spec) }

// Graph partitioning (the SCOTCH substitute), exposed for direct use.
type (
	// PGraph is the partitioner's undirected weighted graph.
	PGraph = partition.Graph
	// PartitionOptions tunes the multilevel pipeline.
	PartitionOptions = partition.Options
	// Arch is a target architecture for static mapping.
	Arch = partition.Arch
	// DAG is the task-dependency-graph structure.
	DAG = graph.DAG
	// NodeID indexes a DAG node.
	NodeID = graph.NodeID
)

// NewPGraph returns an empty partitioner graph with n vertices.
func NewPGraph(n int) *PGraph { return partition.NewGraph(n) }

// NewDAG returns an empty task dependency graph.
func NewDAG() *DAG { return graph.New() }

// FromDAG symmetrizes a DAG for partitioning.
func FromDAG(d *DAG) *PGraph { return partition.FromDAG(d) }

// DefaultPartitionOptions returns the RGP policies' partitioner settings.
func DefaultPartitionOptions(parts int) PartitionOptions {
	return partition.DefaultOptions(parts)
}

// Partition computes a k-way partition of g.
func Partition(g *PGraph, opt PartitionOptions) ([]int32, partition.Stats, error) {
	return partition.Partition(g, opt)
}

// MapOnto statically maps g onto a NUMA architecture (dual recursive
// bipartitioning).
func MapOnto(g *PGraph, arch *Arch, opt PartitionOptions) ([]int32, partition.Stats, error) {
	return partition.MapOnto(g, arch, opt)
}

// Tracing.
type (
	// TraceRecorder collects task execution spans (implements the
	// runtime's Observer).
	TraceRecorder = trace.Recorder
	// Tracer merges task, transfer, fluid-flow, link-utilization and
	// cluster-dispatch events from any number of machines into one Chrome
	// trace-event timeline (Perfetto-loadable). See the tracing quick start
	// in the package documentation.
	Tracer = trace.Tracer
)

// NewTraceRecorder returns an empty trace recorder; pass it in
// RuntimeOptions.Observer.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewTracer returns an empty multi-source tracer. Set it as Config.Trace,
// Experiment.Trace, Figure1Options.Trace or ClusterConfig.Trace; after the
// run, WriteFile emits Chrome trace JSON and WriteGantt a text timeline.
// Tracing observes without perturbing: a fixed-seed run is bit-identical
// with or without it.
func NewTracer() *Tracer { return trace.NewTracer() }

// Service mode: online multi-tenant cluster simulation (cmd/dcsim).
type (
	// ClusterConfig describes one service-mode run: a fleet of identical
	// NUMA machines on one shared clock, tenants with open-loop arrival
	// processes, a dispatcher, and the per-job scheduling policy.
	ClusterConfig = cluster.Config
	// ClusterTenant declares one tenant's workload mix and arrival process
	// (poisson, diurnal or trace).
	ClusterTenant = cluster.Tenant
	// ClusterJob is one job of the arrival stream with its full service
	// timeline (submit/start/end, machine, slowdown, per-run statistics).
	ClusterJob = cluster.Job
	// ClusterResult is a completed service-mode run.
	ClusterResult = cluster.Result
	// ClusterStats aggregates streaming response/slowdown distributions,
	// per-tenant fairness and the utilization timeline.
	ClusterStats = cluster.Stats
	// Dispatcher places arriving jobs on fleet machines.
	Dispatcher = cluster.Dispatcher
	// ClusterObserver receives job lifecycle callbacks (submit, dispatch
	// with sampled candidates, start, complete) from a service-mode run.
	ClusterObserver = cluster.Observer
	// ClusterMonitor publishes live service-mode state over HTTP (/status
	// JSON with per-tenant tail quantiles, /trace Chrome-trace snapshot)
	// via lock-free snapshots refreshed from the simulation goroutine.
	ClusterMonitor = cluster.Monitor
	// Histogram is a merge-deterministic streaming quantile sketch with
	// bounded relative error (used for the tail-latency metrics).
	Histogram = metrics.Histogram
)

// NewClusterMonitor returns a live monitor for a service-mode run; tr may
// be nil to serve /status only. Set it as ClusterConfig.Monitor and serve
// Handler() on a listener of your choice.
func NewClusterMonitor(tr *Tracer) *ClusterMonitor { return cluster.NewMonitor(tr) }

// RunCluster executes one service-mode simulation; per-job results stream
// through the same sinks batch experiments use (the job's tenant is the
// cell Variant, its arrival index the cell Index). A fixed seed makes the
// run bit-identical across repeats and across ClusterConfig.Procs.
func RunCluster(cfg ClusterConfig, sinks ...Sink) (*ClusterResult, error) {
	return cluster.Run(cfg, sinks...)
}

// ClusterArrivals generates the first n jobs of the configured tenants'
// merged arrival stream — useful for inspecting a scenario without running
// it.
func ClusterArrivals(tenants []ClusterTenant, seed uint64, n int) ([]ClusterJob, error) {
	return cluster.Arrivals(tenants, seed, n)
}

// NewDispatcher parses a dispatcher spec ("kchoices?d=2", "idle").
func NewDispatcher(spec string) (Dispatcher, error) { return cluster.NewDispatcher(spec) }

// NewHistogram returns an empty streaming quantile sketch with the given
// relative accuracy (0 < eps < 1).
func NewHistogram(eps float64) *Histogram { return metrics.NewHistogram(eps) }
