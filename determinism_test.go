// Determinism / equivalence suite for the simulator hot path.
//
// Every app x policy combination — plus a pinned set of synthetic workload
// specs — runs at ScaleSmall for three seeds and the triple (Makespan,
// Engine.Steps, Net.TotalBytes) is checked against a golden file. The
// makespan and byte totals pin down the *simulated physics* — any change to
// the fluid-network allocation or event ordering that alters them is a
// behaviour change, not an optimisation. The step count pins down the event
// structure itself, so even a silent re-ordering of same-instant events
// shows up. For the synthetic generators the goldens additionally pin the
// generator's seeding: a drift in their RNG consumption shows up as a
// different graph and therefore different totals.
//
// Regenerate the goldens (only when a behaviour change is intended) with:
//
//	go test -run TestDeterminismGolden -update-golden
package numadag_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"numadag"
	"numadag/internal/apps"
	"numadag/internal/cluster"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
	"numadag/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/determinism.json")

// goldenParallelism reads NUMADAG_PAR: the engine flush parallelism every
// golden cell runs at. The goldens were recorded sequentially and the
// parallel flush determinism contract (package sim) promises bit-identical
// results at every level, so CI matrixes this env over {1, 8} against the
// same golden file — a diff at any value is a broken merge, not a new
// baseline.
func goldenParallelism(t testing.TB) int {
	v := os.Getenv("NUMADAG_PAR")
	if v == "" {
		return 1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad NUMADAG_PAR=%q", v)
	}
	return n
}

// goldenEntry is one (app, policy, seed) cell of the golden table. Cluster
// cells additionally pin the completion stream digest; single-run cells
// leave it zero (omitted from the JSON, keeping their serialized form
// unchanged).
type goldenEntry struct {
	Makespan       int64   `json:"makespan_ns"`
	Steps          uint64  `json:"engine_steps"`
	TotalBytes     float64 `json:"total_bytes"`
	CompletionHash uint64  `json:"completion_hash,omitempty"`
}

const goldenPath = "testdata/determinism.json"

// determinismPolicies are the scheduling configurations pinned by the suite:
// the four Figure-1 policies plus the repartitioning RGP variant.
var determinismPolicies = []string{"LAS", "DFIFO", "RGP+LAS", "EP", "RGP"}

// determinismSynthetics pins the synthetic workload generators' seeding:
// one spec per generator family, sized well under the app benchmarks so the
// added cells stay cheap.
var determinismSynthetics = []string{
	"random-layered?layers=10&width=24&fan=2&seed=7",
	"forkjoin?depth=5&fanout=3&seed=7",
	"file?path=testdata/dags/diamond.json",
	// Partitioner-stressing cells: sized past the 2048-task window so RGP
	// policies run deep multilevel FM passes (many coarsening levels, full
	// refinement at each). These pin the partitioner's move sequences
	// independently of the eight paper apps, whose windows are smaller.
	"random-layered?layers=24&width=96&cv=0.4&seed=11",
	"forkjoin?depth=9&fanout=2&seed=11",
}

func runCell(t testing.TB, spec, polName string, seed uint64) goldenEntry {
	w, err := workload.New(spec, apps.Small)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(polName)
	if err != nil {
		t.Fatal(err)
	}
	eng := numadag.NewEngine()
	if par := goldenParallelism(t); par > 1 {
		eng.SetParallelism(par)
		defer eng.SetParallelism(1)
	}
	m := numadag.NewMachine(machine.BullionS16(), eng)
	opts := rt.DefaultOptions()
	opts.Seed = seed
	r := rt.NewRuntime(m, pol, opts)
	if err := w.Build(r); err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	return goldenEntry{
		Makespan:   int64(res.Makespan),
		Steps:      eng.Steps(),
		TotalBytes: m.Net().TotalBytes,
	}
}

func cellKey(app, pol string, seed uint64) string {
	return fmt.Sprintf("%s/%s/seed%d", app, pol, seed)
}

// clusterGoldenConfig is the pinned service-mode scenario: a four-machine
// fleet, three tenants covering all arrival processes, heterogeneous job
// shapes including zero-task jobs, audited. Small enough to stay cheap,
// busy enough that dispatch order, queueing and same-instant bursts all
// influence the completion stream.
func clusterGoldenConfig(dispatcher string, seed uint64) cluster.Config {
	return cluster.Config{
		Machines: 4,
		Machine:  machine.TwoSocketXeon(),
		Policy:   "LAS",
		Runtime:  rt.DefaultOptions(),
		Scale:    apps.Tiny,
		Tenants: []cluster.Tenant{
			{Name: "batch", Specs: []string{"forkjoin?depth=2&fanout=2", "random-layered?layers=3&width=4"},
				Process: "poisson", Rate: 2000},
			{Name: "interactive", Specs: []string{"noop?tasks=4&flops=4096"}, Process: "diurnal",
				Rate: 3000, Amplitude: 0.5, Period: 200 * sim.Millisecond},
			{Name: "cron", Specs: []string{"noop?tasks=0"}, Process: "trace",
				Trace: []sim.Time{0, 0, sim.Millisecond}},
		},
		Jobs:       60,
		Seed:       seed,
		Dispatcher: dispatcher,
		Audit:      true,
	}
}

func runClusterCell(t testing.TB, dispatcher string, seed uint64) goldenEntry {
	cfg := clusterGoldenConfig(dispatcher, seed)
	cfg.Parallelism = goldenParallelism(t)
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return goldenEntry{
		Makespan:       int64(res.Makespan),
		Steps:          res.Steps,
		TotalBytes:     res.TotalBytes,
		CompletionHash: res.CompletionHash(),
	}
}

func TestDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	got := make(map[string]goldenEntry)
	for _, app := range append(apps.Names(), determinismSynthetics...) {
		for _, pol := range determinismPolicies {
			for seed := uint64(1); seed <= 3; seed++ {
				got[cellKey(app, pol, seed)] = runCell(t, app, pol, seed)
			}
		}
	}
	// Service-mode cells: the completion-stream digest pins arrival
	// generation, dispatch decisions and shared-clock interleaving for both
	// dispatcher families.
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		for seed := uint64(1); seed <= 3; seed++ {
			got[cellKey("cluster", disp, seed)] = runClusterCell(t, disp, seed)
		}
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, run produced %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from run", k)
			continue
		}
		if g != w {
			t.Errorf("%s: got {makespan %d, steps %d, bytes %.0f}, want {makespan %d, steps %d, bytes %.0f}",
				k, g.Makespan, g.Steps, g.TotalBytes, w.Makespan, w.Steps, w.TotalBytes)
		}
	}
}

// TestDeterminismRepeatable double-runs a representative subset in-process and
// demands bit-identical results — catches nondeterminism that a golden file
// (generated once) cannot, e.g. map-iteration order leaking into allocation.
func TestDeterminismRepeatable(t *testing.T) {
	for _, app := range []string{"jacobi", "qr", "nstream", "random-layered?layers=8&width=16&seed=5"} {
		for _, pol := range []string{"LAS", "RGP+LAS"} {
			a := runCell(t, app, pol, 7)
			b := runCell(t, app, pol, 7)
			if a != b {
				t.Errorf("%s/%s: two identical runs diverged: %+v vs %+v", app, pol, a, b)
			}
		}
	}
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		a := runClusterCell(t, disp, 7)
		b := runClusterCell(t, disp, 7)
		if a != b {
			t.Errorf("cluster/%s: two identical runs diverged: %+v vs %+v", disp, a, b)
		}
	}
}
