// Traced-determinism suite: tracing must observe, never perturb.
//
// TestTracerNonPerturbing is the cheap always-on check — representative
// single-machine and cluster cells run with and without a Tracer attached
// and must produce identical physics (makespan, engine steps, bytes moved,
// completion hash). TestDeterminismGoldenTraced re-runs the *entire*
// determinism golden sweep with a tracer attached to every cell and demands
// the same goldens as the untraced suite; it is expensive, so CI runs it as
// its own step gated on NUMADAG_TRACED_GOLDEN=1. Trace output itself must
// also be deterministic: TestClusterTraceDeterministic renders a traced
// service-mode run twice and compares bytes.
package numadag_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"numadag"
	"numadag/internal/apps"
	"numadag/internal/cluster"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/trace"
	"numadag/internal/workload"
)

// runCellTraced is runCell with a fresh Tracer attached — each cell gets its
// own tracer so traced machines (which carry undetachable hooks) never leak
// state between cells.
func runCellTraced(t testing.TB, spec, polName string, seed uint64) goldenEntry {
	w, err := workload.New(spec, apps.Small)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(polName)
	if err != nil {
		t.Fatal(err)
	}
	eng := numadag.NewEngine()
	m := numadag.NewMachine(machine.BullionS16(), eng)
	opts := rt.DefaultOptions()
	opts.Seed = seed
	opts.Observer = trace.NewTracer().AttachMachine(m, 0, spec)
	r := rt.NewRuntime(m, pol, opts)
	if err := w.Build(r); err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	return goldenEntry{
		Makespan:   int64(res.Makespan),
		Steps:      eng.Steps(),
		TotalBytes: m.Net().TotalBytes,
	}
}

func runClusterCellTraced(t testing.TB, dispatcher string, seed uint64) goldenEntry {
	cfg := clusterGoldenConfig(dispatcher, seed)
	cfg.Trace = trace.NewTracer()
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return goldenEntry{
		Makespan:       int64(res.Makespan),
		Steps:          res.Steps,
		TotalBytes:     res.TotalBytes,
		CompletionHash: res.CompletionHash(),
	}
}

// TestTracerNonPerturbing spot-checks the observe-don't-perturb contract on
// representative cells: a steal-heavy random policy, the repartitioning RGP
// path, and both cluster dispatchers (arrivals, queueing, zero-task jobs).
func TestTracerNonPerturbing(t *testing.T) {
	for _, app := range []string{"jacobi", "nstream"} {
		for _, pol := range []string{"LAS", "RGP+LAS"} {
			plain := runCell(t, app, pol, 7)
			traced := runCellTraced(t, app, pol, 7)
			if plain != traced {
				t.Errorf("%s/%s: tracing perturbed the run: %+v vs %+v", app, pol, plain, traced)
			}
		}
	}
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		plain := runClusterCell(t, disp, 7)
		traced := runClusterCellTraced(t, disp, 7)
		if plain != traced {
			t.Errorf("cluster/%s: tracing perturbed the run: %+v vs %+v", disp, plain, traced)
		}
	}
}

// TestDeterminismGoldenTraced runs the full golden sweep with a tracer on
// every cell and checks against the same golden file as the untraced suite —
// if tracing shifts a single event anywhere in the grid, a golden diverges.
// Gated behind NUMADAG_TRACED_GOLDEN=1 (a dedicated CI step) because it
// duplicates the whole sweep.
func TestDeterminismGoldenTraced(t *testing.T) {
	if os.Getenv("NUMADAG_TRACED_GOLDEN") != "1" {
		t.Skip("set NUMADAG_TRACED_GOLDEN=1 to run the traced golden sweep")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	check := func(key string, got goldenEntry) {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: not in golden file", key)
			return
		}
		if got != w {
			t.Errorf("%s: traced run diverged from untraced golden: got %+v, want %+v", key, got, w)
		}
	}
	for _, app := range append(apps.Names(), determinismSynthetics...) {
		for _, pol := range determinismPolicies {
			for seed := uint64(1); seed <= 3; seed++ {
				check(cellKey(app, pol, seed), runCellTraced(t, app, pol, seed))
			}
		}
	}
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		for seed := uint64(1); seed <= 3; seed++ {
			check(cellKey("cluster", disp, seed), runClusterCellTraced(t, disp, seed))
		}
	}
}

// TestClusterTraceDeterministic renders the traced golden cluster scenario
// twice and demands byte-identical, JSON-valid Chrome traces — the
// fixed-seed trace output contract end to end (arrivals, dispatch instants,
// job spans, per-machine counters).
func TestClusterTraceDeterministic(t *testing.T) {
	render := func() []byte {
		cfg := clusterGoldenConfig("kchoices?d=2", 3)
		cfg.Trace = trace.NewTracer()
		if _, err := cluster.Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical traced cluster runs produced different trace bytes")
	}
	if !json.Valid(a) {
		t.Fatal("cluster trace is not valid JSON")
	}
}
