// Sharded-sweep equivalence suite: the cmd/sweep sharding/resume/merge
// modes must reproduce an unsharded run byte for byte.
//
// TestShardedSweepCLI builds the real sweep binary and drives it through
// the three distribution stories — 3-shard fan-out + merge, interrupt +
// resume (-maxcells as the deterministic kill), and coordinator/worker over
// HTTP (-serve/-join) — comparing every JSONL/CSV/table output against one
// unsharded reference run. Env-gated (NUMADAG_SHARDED=1) because it builds
// a binary and runs the grid several times; CI runs it as its own blocking
// step (`make test-sharded`).
package numadag_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// sweepArgs is the fixed grid every invocation in this suite sweeps:
// A1-window, one app, tiny scale, 2 seeds = 10 cells over 5 variants.
var sweepArgs = []string{"-exp", "window", "-apps", "jacobi", "-scale", "tiny", "-seeds", "2"}

func buildSweep(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweep")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sweep")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build sweep: %v\n%s", err, out)
	}
	return bin
}

// runSweep runs the binary with the suite's grid plus extra flags and
// returns stdout (the rendered table in full-stream modes).
func runSweep(t *testing.T, bin string, extra ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, append(append([]string{}, sweepArgs...), extra...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sweep %v: %v\n%s", extra, err, stderr.Bytes())
	}
	return stdout.Bytes()
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestShardedSweepCLI(t *testing.T) {
	if os.Getenv("NUMADAG_SHARDED") == "" {
		t.Skip("set NUMADAG_SHARDED=1 (or run `make test-sharded`) to run the sharded CLI suite")
	}
	bin := buildSweep(t)
	work := t.TempDir()
	path := func(name string) string { return filepath.Join(work, name) }

	// The unsharded reference outputs.
	wantTable := runSweep(t, bin, "-jsonl", path("ref.jsonl"), "-csv", path("ref.csv"))
	wantJSONL := readFile(t, path("ref.jsonl"))
	wantCSV := readFile(t, path("ref.csv"))

	t.Run("shard-merge", func(t *testing.T) {
		dir := path("shards")
		for i := 0; i < 3; i++ {
			runSweep(t, bin, "-shard", fmt.Sprintf("%d/3", i), "-out", dir)
		}
		gotTable := runSweep(t, bin, "-merge", dir, "-jsonl", path("m.jsonl"), "-csv", path("m.csv"))
		if !bytes.Equal(readFile(t, path("m.jsonl")), wantJSONL) {
			t.Error("merged JSONL differs from unsharded run")
		}
		if !bytes.Equal(readFile(t, path("m.csv")), wantCSV) {
			t.Error("merged CSV differs from unsharded run")
		}
		if !bytes.Equal(gotTable, wantTable) {
			t.Errorf("merged table differs from unsharded run:\n%s---\n%s", gotTable, wantTable)
		}
	})

	t.Run("interrupt-resume", func(t *testing.T) {
		dir := path("ckpt")
		// First run stops (resumably) after 4 of the 10 cells.
		cmd := exec.Command(bin, append(append([]string{}, sweepArgs...),
			"-out", dir, "-maxcells", "4")...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("interrupted run failed: %v\n%s", err, stderr.Bytes())
		}
		if !strings.Contains(stderr.String(), "4 cells run") {
			t.Fatalf("interrupted run did not report its cell count:\n%s", stderr.Bytes())
		}
		// The resumed run executes only the remaining 6 and reproduces the
		// reference outputs exactly.
		cmd = exec.Command(bin, append(append([]string{}, sweepArgs...),
			"-out", dir, "-resume", "-jsonl", path("r.jsonl"), "-csv", path("r.csv"))...)
		var stdout bytes.Buffer
		stderr.Reset()
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("resumed run failed: %v\n%s", err, stderr.Bytes())
		}
		if !strings.Contains(stderr.String(), "6 cells run, 4 resumed") {
			t.Errorf("resume re-ran the wrong cells:\n%s", stderr.Bytes())
		}
		if !bytes.Equal(readFile(t, path("r.jsonl")), wantJSONL) {
			t.Error("resumed JSONL differs from uninterrupted run")
		}
		if !bytes.Equal(readFile(t, path("r.csv")), wantCSV) {
			t.Error("resumed CSV differs from uninterrupted run")
		}
		if !bytes.Equal(stdout.Bytes(), wantTable) {
			t.Errorf("resumed table differs from uninterrupted run:\n%s---\n%s", stdout.Bytes(), wantTable)
		}
	})

	t.Run("serve-join", func(t *testing.T) {
		dir := path("fleet")
		serve := exec.Command(bin, append(append([]string{}, sweepArgs...),
			"-serve", "127.0.0.1:0", "-shards", "2", "-out", dir)...)
		serveErr, err := serve.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := serve.Start(); err != nil {
			t.Fatal(err)
		}
		defer serve.Process.Kill()

		// The coordinator prints its bound address; workers join it.
		var url string
		sc := bufio.NewScanner(serveErr)
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "on http://"); ok {
				url = "http://" + strings.Fields(rest)[0]
				break
			}
		}
		if url == "" {
			t.Fatalf("coordinator never printed its address (scan error %v)", sc.Err())
		}
		go func() {
			// Drain the rest of stderr so the coordinator never blocks on it.
			for sc.Scan() {
			}
		}()

		workers := make(chan error, 2)
		for i := 0; i < 2; i++ {
			go func() {
				out, err := exec.Command(bin, append(append([]string{}, sweepArgs...),
					"-join", url)...).CombinedOutput()
				if err != nil {
					err = fmt.Errorf("worker: %v\n%s", err, out)
				}
				workers <- err
			}()
		}
		for i := 0; i < 2; i++ {
			if err := <-workers; err != nil {
				t.Fatal(err)
			}
		}
		if err := serve.Wait(); err != nil {
			t.Fatalf("coordinator exit: %v", err)
		}
		gotTable := runSweep(t, bin, "-merge", dir, "-jsonl", path("f.jsonl"))
		if !bytes.Equal(readFile(t, path("f.jsonl")), wantJSONL) {
			t.Error("fleet-merged JSONL differs from unsharded run")
		}
		if !bytes.Equal(gotTable, wantTable) {
			t.Errorf("fleet-merged table differs from unsharded run:\n%s---\n%s", gotTable, wantTable)
		}
	})
}
