GO ?= go

.PHONY: build test test-short test-race test-race-fleet test-allocs test-traced test-golden-par test-sharded bench bench-sim bench-json bench-check fuzz-smoke vet fmt-check ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The experiment worker pool shares TDG snapshots across cells; the race
# detector guards that read-only sharing. CI runs this as its own parallel
# job (the `race` job in .github/workflows/ci.yml) so it does not serialize
# behind the plain test step.
test-race:
	$(GO) test -race ./...

# Race-detector stress for the parallel flush engine at fleet scale: a
# 128-machine cluster with 8 flush workers, so the prepare/merge handoff
# sees real contention (128 independent components going dirty in
# overlapping instants). Also runs inside `test-race` via ./...; this named
# step keeps the parallel engine's race coverage visible and gating even if
# the full-suite run is ever trimmed.
test-race-fleet:
	$(GO) test -race -run 'TestFleet128Parallel' -count=1 ./internal/cluster

# Blocking allocation-contract gate: deterministic testing.AllocsPerRun
# tests (not benchmarks) asserting steady-state allocation bounds for the
# hot paths — the simulator's flow churn and water-filling, the
# partitioner's fmRefine and DAG symmetrization, induced-subgraph
# extraction with a warmed scratch, snapshot Install into pooled runtime
# arenas, a full nil-observer simulated run (the tracing hooks must cost
# nothing when no Observer is configured), the RGP window-partitioning
# pass, a full audited cell through the pooled machine/engine pair, and the
# cluster dispatcher's placement step. A named, blocking CI step (`allocs`
# in ci.yml); a regression fails the build, not just the nightly bench
# trend.
test-allocs:
	$(GO) test -run 'SteadyStateAllocs' -count=1 \
		./internal/sim ./internal/partition ./internal/graph ./internal/rt ./internal/policy \
		./internal/core ./internal/cluster

# Traced-determinism gate: the full determinism golden sweep with a Tracer
# attached to every cell must reproduce the untraced goldens byte for byte
# (tracing observes, never perturbs). Env-gated because it duplicates the
# whole sweep; CI runs it as its own blocking step after `allocs`.
test-traced:
	NUMADAG_TRACED_GOLDEN=1 $(GO) test -run 'TestDeterminismGoldenTraced' -count=1 .

# Sharded-sweep equivalence gate: builds the real cmd/sweep binary and
# drives its distribution modes end to end — 3-shard fan-out + -merge,
# -maxcells interrupt + -resume, and -serve/-join over HTTP — demanding
# JSONL/CSV/table outputs byte-identical to an unsharded run. Env-gated
# because it builds a binary and runs the grid several times; CI runs it as
# its own blocking step (`sharded sweeps` in ci.yml).
test-sharded:
	NUMADAG_SHARDED=1 $(GO) test -run 'TestShardedSweepCLI' -count=1 .

# Parallel-flush determinism gate: the full golden sweep with the engine's
# worker pool on (NUMADAG_PAR=8) must reproduce the sequentially-recorded
# goldens byte for byte — the parallel flush determinism contract (package
# sim). CI matrixes the golden job over NUMADAG_PAR={1,8}; this target is
# the local equivalent of the par=8 leg.
test-golden-par:
	NUMADAG_PAR=8 $(GO) test -run 'TestDeterminismGolden$$' -count=1 .

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Mirrors the blocking steps of .github/workflows/ci.yml (the race and
# golden-par jobs run in parallel there; fuzz-smoke is non-blocking and
# nightly.yml tracks the benchmark trajectory).
ci: fmt-check build vet test test-race test-race-fleet test-allocs test-traced test-sharded test-golden-par

# Full benchmark families (paper figures + ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Simulator hot-path families only: the Figure-1 runs, the multi-seed sweep
# (TDG-cache) family, plus the sim micro-benchmarks whose allocs/op pin the
# zero-allocation contract.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure1|BenchmarkAblationSockets|BenchmarkMultiSeedSweep' -benchmem .
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim/

# Machine-readable perf trajectory: writes BENCH_sim.json. Regenerate (and
# commit) in perf-relevant PRs; the nightly workflow diffs a fresh run
# against the committed file.
bench-json:
	./scripts/bench_sim.sh

# Re-runs the benchmark families and fails on allocs/op regressions against
# the committed BENCH_sim.json — what .github/workflows/nightly.yml runs on
# schedule.
bench-check:
	./scripts/bench_sim.sh BENCH_sim.new.json
	./scripts/bench_check.sh BENCH_sim.new.json BENCH_sim.json
	rm -f BENCH_sim.new.json

# Short coverage-guided fuzz of the FM refiner (gain-bucket vs heap
# reference), the fluid network's full-vs-incremental reallocation contract
# (batched CSR/worklist fill vs the eager naive ladder), and the cluster's
# arrival/dispatch loop (bursty same-instant arrivals, zero-length jobs and
# tenant-skewed rates must never stall or reorder the shared clock). The
# seed corpora also run in plain `make test`; CI uploads any new crashers as
# workflow artifacts.
fuzz-smoke:
	$(GO) test -fuzz=FuzzFMRefine -fuzztime=15s ./internal/partition
	$(GO) test -fuzz=FuzzReallocate -fuzztime=15s ./internal/sim
	$(GO) test -fuzz=FuzzArrivals -fuzztime=15s ./internal/cluster

# BENCH_sim.json is tracked (the perf trajectory across PRs) and must
# survive a clean.
clean:
	rm -f BENCH_sim.new.json *.test *.out *.prof
