GO ?= go

.PHONY: build test test-short test-race bench bench-sim bench-json fuzz-smoke vet fmt-check ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The experiment worker pool shares TDG snapshots across cells; the race
# detector guards that read-only sharing.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Mirrors .github/workflows/ci.yml.
ci: fmt-check build vet test test-race

# Full benchmark families (paper figures + ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Simulator hot-path families only: the Figure-1 runs, the multi-seed sweep
# (TDG-cache) family, plus the sim micro-benchmarks whose allocs/op pin the
# zero-allocation contract.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure1|BenchmarkAblationSockets|BenchmarkMultiSeedSweep' -benchmem .
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim/

# Machine-readable perf trajectory: writes BENCH_sim.json.
bench-json:
	./scripts/bench_sim.sh

# Short coverage-guided fuzz of the FM refiner's invariants and its
# heap-equivalence contract (the seed corpus also runs in plain `make test`).
fuzz-smoke:
	$(GO) test -fuzz=FuzzFMRefine -fuzztime=15s ./internal/partition

clean:
	rm -f BENCH_sim.json *.test *.out *.prof
