module numadag

go 1.22
