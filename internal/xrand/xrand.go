// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic decision in the simulator.
//
// All randomness in numadag flows through a seeded *Rand so that a given
// (seed, configuration) pair reproduces the exact same partitions, schedules
// and makespans. The generator is splitmix64 (Steele et al.), which is
// statistically solid for the simulator's needs and has a one-word state
// that is trivial to fork deterministically.
package xrand

// Rand is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; fork one per goroutine with Fork if needed. The simulator
// itself is single-threaded per run, so a single Rand per run suffices.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current state. The derived
// stream is decorrelated from the parent by an extra mixing step, and the
// parent advances by one step, so repeated Fork calls yield distinct children.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64() ^ 0xd1b54a32d192ed03}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Reseed resets the generator to the stream New(seed) would produce,
// letting pooled owners reuse one Rand across runs.
func (r *Rand) Reseed(seed uint64) { r.state = seed }
