package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformityCoarse(t *testing.T) {
	r := New(99)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: count %d, want within 10%% of %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkDecorrelated(t *testing.T) {
	parent := New(1234)
	child := parent.Fork()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("fork produced %d collisions with parent stream", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a, b := New(77).Fork(), New(77).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify against the identity computed via 32-bit limbs done
		// a second, independent way: ((x*y) mod 2^64) must equal lo.
		if lo != x*y {
			return false
		}
		// hi*2^64 + lo == x*y over the integers; check a weaker
		// congruence that still pins hi: compare against float when safe.
		if x < 1<<32 && y < 1<<32 {
			return hi == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
