package machine

import (
	"testing"

	"numadag/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{BullionS16(), TwoSocketXeon(), FourSocket(), Uniform(4, 4)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestBullionTopology(t *testing.T) {
	cfg := BullionS16()
	if cfg.Sockets != 8 || cfg.CoresPerSocket != 4 {
		t.Fatalf("bullion S16 is 8x4, got %dx%d", cfg.Sockets, cfg.CoresPerSocket)
	}
	m := New(cfg, sim.NewEngine())
	if m.Hops(0, 0) != 0 {
		t.Error("self distance not 0")
	}
	if m.Hops(0, 1) != 1 {
		t.Error("same-module distance not 1")
	}
	if m.Hops(0, 2) != 2 || m.Hops(1, 7) != 2 {
		t.Error("cross-module distance not 2")
	}
	if m.Hops(6, 7) != 1 {
		t.Error("last module pair distance not 1")
	}
}

func TestValidationErrors(t *testing.T) {
	base := TwoSocketXeon()
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero sockets", func(c *Config) { c.Sockets = 0 }},
		{"zero cores", func(c *Config) { c.CoresPerSocket = 0 }},
		{"negative latency", func(c *Config) { c.LocalLatency = -1 }},
		{"zero bandwidth", func(c *Config) { c.MemBandwidth = 0 }},
		{"zero link", func(c *Config) { c.LinkBandwidth = 0 }},
		{"zero flops", func(c *Config) { c.CoreFlops = 0 }},
		{"zero mlp", func(c *Config) { c.MemParallelism = 0 }},
		{"bad matrix size", func(c *Config) { c.Distance = [][]int{{0}} }},
		{"nonzero diagonal", func(c *Config) {
			c.Distance = [][]int{{1, 1}, {1, 0}}
		}},
		{"asymmetric", func(c *Config) {
			c.Distance = [][]int{{0, 1}, {2, 0}}
		}},
	}
	for _, mu := range mutations {
		cfg := base
		mu.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", mu.name)
		}
	}
}

func TestSocketCoreMapping(t *testing.T) {
	m := New(BullionS16(), sim.NewEngine())
	if m.Cores() != 32 {
		t.Fatalf("cores = %d, want 32", m.Cores())
	}
	for core := 0; core < m.Cores(); core++ {
		s := m.SocketOf(core)
		lo, hi := m.CoresOf(s)
		if core < lo || core >= hi {
			t.Fatalf("core %d mapped to socket %d with range [%d,%d)", core, s, lo, hi)
		}
	}
	if s := m.SocketOf(0); s != 0 {
		t.Errorf("core 0 on socket %d", s)
	}
	if s := m.SocketOf(31); s != 7 {
		t.Errorf("core 31 on socket %d", s)
	}
}

func TestLatencyMonotoneInHops(t *testing.T) {
	m := New(BullionS16(), sim.NewEngine())
	l0 := m.Latency(0, 0)
	l1 := m.Latency(0, 1)
	l2 := m.Latency(0, 2)
	if !(l0 < l1 && l1 < l2) {
		t.Fatalf("latency not monotone: local %v, 1-hop %v, 2-hop %v", l0, l1, l2)
	}
	if l0 != 90 {
		t.Errorf("local latency = %v, want 90", l0)
	}
}

func TestPathLocalVsRemote(t *testing.T) {
	m := New(BullionS16(), sim.NewEngine())
	if got := len(m.Path(3, 3)); got != 1 {
		t.Errorf("local path crosses %d resources, want 1 (the controller)", got)
	}
	if got := len(m.Path(3, 5)); got != 2 {
		t.Errorf("remote path crosses %d resources, want 2 (mc + home port)", got)
	}
}

func TestTransferLocalFasterThanRemote(t *testing.T) {
	run := func(home, exec int) sim.Time {
		eng := sim.NewEngine()
		m := New(BullionS16(), eng)
		var done sim.Time
		m.Transfer(home, exec, 1<<20, func() { done = eng.Now() })
		eng.Run()
		return done
	}
	local := run(0, 0)
	remote1 := run(1, 0) // same module
	remote2 := run(2, 0) // cross module
	if !(local < remote1 && remote1 < remote2) {
		t.Fatalf("transfer times not ordered: local %v, 1-hop %v, 2-hop %v", local, remote1, remote2)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	eng := sim.NewEngine()
	m := New(TwoSocketXeon(), eng)
	done := false
	m.Transfer(0, 1, 0, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-byte transfer never completed")
	}
	if eng.Now() != 0 {
		t.Fatalf("zero-byte transfer advanced clock to %v", eng.Now())
	}
}

func TestTransferNegativePanics(t *testing.T) {
	eng := sim.NewEngine()
	m := New(TwoSocketXeon(), eng)
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	m.Transfer(0, 0, -5, nil)
}

func TestRemoteContentionOnLink(t *testing.T) {
	// A single 2-hop transfer runs at the core's concurrency limit
	// (10 * 64B / 160ns = 4 B/ns). Eight of them want 32 B/ns through
	// socket 2's 12 B/ns port, so each drops to 1.5 B/ns: the drain takes
	// ~2.7x as long as a solo transfer.
	run := func(flows int) sim.Time {
		eng := sim.NewEngine()
		m := New(BullionS16(), eng)
		for i := 0; i < flows; i++ {
			m.Transfer(2, 0, 8<<20, nil)
		}
		return eng.Run()
	}
	single, eight := run(1), run(8)
	if eight <= single {
		t.Fatalf("contended link not slower: single %v, eight %v", single, eight)
	}
	ratio := float64(eight) / float64(single)
	if ratio < 2.4 || ratio > 3.0 {
		t.Errorf("contention ratio %.3f, want ~2.67", ratio)
	}
}

func TestCoreBandwidthNUMAGap(t *testing.T) {
	m := New(BullionS16(), sim.NewEngine())
	local := m.CoreBandwidth(0, 0)
	hop2 := m.CoreBandwidth(0, 2)
	if gap := local / hop2; gap < 1.4 || gap > 2.2 {
		t.Errorf("local/2-hop core bandwidth gap %.2f, want ~1.8", gap)
	}
}

func TestLocalControllerSaturation(t *testing.T) {
	// 4 local cores at ~7.1 B/ns want 28.4 through a 30 B/ns controller:
	// no contention. 8 want 56.9: the controller caps them at 3.75 each.
	run := func(flows int) sim.Time {
		eng := sim.NewEngine()
		m := New(BullionS16(), eng)
		for i := 0; i < flows; i++ {
			m.Transfer(0, 0, 8<<20, nil)
		}
		return eng.Run()
	}
	four, eight := run(4), run(8)
	ratio := float64(eight) / float64(four)
	if ratio < 1.5 || ratio > 2.2 {
		t.Errorf("controller saturation ratio %.3f, want ~1.9", ratio)
	}
}

func TestLocalControllersIndependent(t *testing.T) {
	// Local transfers on different sockets must not contend.
	eng := sim.NewEngine()
	m := New(BullionS16(), eng)
	var t0, t1 sim.Time
	m.Transfer(0, 0, 16<<20, func() { t0 = eng.Now() })
	m.Transfer(1, 1, 16<<20, func() { t1 = eng.Now() })
	eng.Run()

	eng2 := sim.NewEngine()
	m2 := New(BullionS16(), eng2)
	var solo sim.Time
	m2.Transfer(0, 0, 16<<20, func() { solo = eng2.Now() })
	eng2.Run()

	if t0 != solo || t1 != solo {
		t.Fatalf("independent sockets contended: %v/%v vs solo %v", t0, t1, solo)
	}
}

func TestComputeTime(t *testing.T) {
	m := New(BullionS16(), sim.NewEngine())
	if got := m.ComputeTime(8000); got != 1000 {
		t.Errorf("8000 flops at 8 GF/s = %v, want 1000ns", got)
	}
	if got := m.ComputeTime(0); got != 0 {
		t.Errorf("0 flops = %v, want 0", got)
	}
	if got := m.ComputeTime(-5); got != 0 {
		t.Errorf("negative flops = %v, want 0", got)
	}
}

func TestUniformMachineHasNoNUMAGap(t *testing.T) {
	run := func(home, exec int) sim.Time {
		eng := sim.NewEngine()
		m := New(Uniform(4, 4), eng)
		m.Transfer(home, exec, 1<<20, nil)
		return eng.Run()
	}
	if local, remote := run(0, 0), run(1, 0); local != remote {
		t.Fatalf("uniform machine has NUMA gap: local %v vs remote %v", local, remote)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{}, sim.NewEngine())
}
