// Package machine models the NUMA hardware the simulation runs on: sockets,
// cores, per-socket memory controllers and the inter-socket interconnect.
//
// The model is deliberately at the granularity the paper's techniques care
// about: a core belongs to a socket; a memory page has a home socket;
// touching remote memory pays (a) extra latency proportional to the hop
// distance and (b) bandwidth shared on the home socket's memory controller
// and on the interconnect links along the way. Cache hierarchies are folded
// into the per-byte cost constants — the scheduling policies under study act
// at page/socket granularity, not cache-line granularity.
package machine

import (
	"fmt"

	"numadag/internal/sim"
)

// Config describes a NUMA machine. All bandwidths are bytes per nanosecond
// (numerically GB/s); latencies are nanoseconds.
type Config struct {
	Name           string
	Sockets        int
	CoresPerSocket int

	// Distance is the NUMA hop matrix: Distance[i][j] is the number of
	// interconnect hops from socket i to socket j (0 on the diagonal).
	// If nil, a flat all-ones (off-diagonal) matrix is used.
	Distance [][]int

	// LocalLatency is the DRAM access latency within a socket.
	// HopLatency is added per interconnect hop.
	LocalLatency sim.Time
	HopLatency   sim.Time

	// MemBandwidth is the per-socket memory-controller bandwidth.
	// LinkBandwidth is the per-socket interconnect port bandwidth
	// (all remote traffic in or out of a socket crosses its port).
	MemBandwidth  float64
	LinkBandwidth float64

	// CoreFlops is the per-core compute throughput in FLOP per nanosecond
	// (numerically GFLOP/s). Task compute work in FLOPs divides by this.
	CoreFlops float64

	// MemParallelism models how many outstanding cache-line requests a core
	// sustains (MLP): the per-line latency cost divides by it.
	MemParallelism float64
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return fmt.Errorf("machine: %d sockets", c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("machine: %d cores per socket", c.CoresPerSocket)
	case c.LocalLatency < 0 || c.HopLatency < 0:
		return fmt.Errorf("machine: negative latency")
	case c.MemBandwidth <= 0 || c.LinkBandwidth <= 0:
		return fmt.Errorf("machine: non-positive bandwidth")
	case c.CoreFlops <= 0:
		return fmt.Errorf("machine: non-positive core flops")
	case c.MemParallelism <= 0:
		return fmt.Errorf("machine: non-positive memory parallelism")
	}
	if c.Distance != nil {
		if len(c.Distance) != c.Sockets {
			return fmt.Errorf("machine: distance matrix has %d rows for %d sockets", len(c.Distance), c.Sockets)
		}
		for i, row := range c.Distance {
			if len(row) != c.Sockets {
				return fmt.Errorf("machine: distance row %d has %d entries", i, len(row))
			}
			if row[i] != 0 {
				return fmt.Errorf("machine: distance[%d][%d] = %d, want 0", i, i, row[i])
			}
			for j, d := range row {
				if d < 0 {
					return fmt.Errorf("machine: negative distance[%d][%d]", i, j)
				}
				if c.Distance[j][i] != d {
					return fmt.Errorf("machine: asymmetric distance between %d and %d", i, j)
				}
			}
		}
	}
	return nil
}

// TotalCores returns Sockets * CoresPerSocket.
func (c *Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// BullionS16 returns the paper's evaluation machine: an Atos Bull bullion
// S16 configured with 8 sockets and 4 cores per socket. The S16 glues
// 2-socket modules through the Bull Coherence Switch, so sockets in the same
// module are one hop apart and sockets in different modules are two hops
// (through the BCS). Constants follow published figures for Xeon E7 v2-class
// parts: ~90 ns local DRAM, ~+115 ns per hop, ~ 30 GB/s per-socket stream
// bandwidth and QPI-class ~12 GB/s interconnect ports.
func BullionS16() Config {
	const sockets = 8
	dist := make([][]int, sockets)
	for i := range dist {
		dist[i] = make([]int, sockets)
		for j := range dist[i] {
			switch {
			case i == j:
				dist[i][j] = 0
			case i/2 == j/2: // same 2-socket module
				dist[i][j] = 1
			default: // across the BCS
				dist[i][j] = 2
			}
		}
	}
	return Config{
		Name:           "bullion-s16-8x4",
		Sockets:        sockets,
		CoresPerSocket: 4,
		Distance:       dist,
		LocalLatency:   90,
		HopLatency:     35, // effective, after prefetch: penalty is mostly bandwidth
		MemBandwidth:   30.0,
		LinkBandwidth:  12.0,
		CoreFlops:      8.0, // ~2.5 GHz with modest SIMD, per core
		MemParallelism: 10,
	}
}

// TwoSocketXeon returns a common 2-socket node for scaling ablations.
func TwoSocketXeon() Config {
	return Config{
		Name:           "xeon-2x8",
		Sockets:        2,
		CoresPerSocket: 8,
		LocalLatency:   85,
		HopLatency:     50,
		MemBandwidth:   40.0,
		LinkBandwidth:  16.0,
		CoreFlops:      8.0,
		MemParallelism: 10,
	}
}

// FourSocket returns a 4-socket glueless node (fully connected, one hop).
func FourSocket() Config {
	return Config{
		Name:           "foursocket-4x4",
		Sockets:        4,
		CoresPerSocket: 4,
		LocalLatency:   90,
		HopLatency:     70,
		MemBandwidth:   34.0,
		LinkBandwidth:  14.0,
		CoreFlops:      8.0,
		MemParallelism: 10,
	}
}

// Uniform returns a machine with no NUMA effects at all: zero hop latency
// and effectively infinite controllers and links, so a transfer's duration
// depends only on the core's own concurrency limit, never on placement.
// It is the control configuration: every placement policy must converge on
// it (TestUniformMachineEqualizesPolicies relies on this).
// ByName returns a preset topology by its CLI name — the shared vocabulary
// of every command's -machine flag.
func ByName(name string) (Config, error) {
	switch name {
	case "bullion":
		return BullionS16(), nil
	case "2socket":
		return TwoSocketXeon(), nil
	case "4socket":
		return FourSocket(), nil
	case "uniform":
		return Uniform(8, 4), nil
	default:
		return Config{}, fmt.Errorf("machine: unknown machine %q (bullion, 2socket, 4socket, uniform)", name)
	}
}

func Uniform(sockets, coresPerSocket int) Config {
	return Config{
		Name:           fmt.Sprintf("uniform-%dx%d", sockets, coresPerSocket),
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		LocalLatency:   90,
		HopLatency:     0,
		MemBandwidth:   1 << 20, // uncontended
		LinkBandwidth:  1 << 20, // uncontended
		CoreFlops:      8.0,
		MemParallelism: 10,
	}
}

// Machine is a Config instantiated over a simulation engine: it owns the
// contended resources (memory controllers and interconnect ports) and
// answers latency/path queries for the runtime.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	net   *sim.Net
	mcs   []*sim.Resource // one memory controller per socket
	ports []*sim.Resource // one interconnect port per socket
	// paths[home][exec] is the precomputed contended-resource path of a
	// transfer from memory homed on socket home to a core on socket exec.
	// Transfers are the simulator's hottest call site; sharing immutable
	// path slices keeps them allocation-free.
	paths [][][]*sim.Resource
}

// New instantiates the config over eng. It panics on an invalid config
// (construction happens once, at experiment setup; failing loudly there is
// the correct behaviour).
func New(cfg Config, eng *sim.Engine) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{cfg: cfg, eng: eng, net: sim.NewNet(eng)}
	for s := 0; s < cfg.Sockets; s++ {
		m.mcs = append(m.mcs, m.net.NewResource(fmt.Sprintf("mc%d", s), cfg.MemBandwidth))
		m.ports = append(m.ports, m.net.NewResource(fmt.Sprintf("port%d", s), cfg.LinkBandwidth))
	}
	m.paths = make([][][]*sim.Resource, cfg.Sockets)
	for home := 0; home < cfg.Sockets; home++ {
		m.paths[home] = make([][]*sim.Resource, cfg.Sockets)
		for exec := 0; exec < cfg.Sockets; exec++ {
			if home == exec {
				m.paths[home][exec] = []*sim.Resource{m.mcs[home]}
			} else {
				m.paths[home][exec] = []*sim.Resource{m.mcs[home], m.ports[home]}
			}
		}
	}
	return m
}

// Reset rewinds the machine for a fresh run: the engine's clock and event
// arena go back to zero (keeping the Net's registered flush hook) and the
// fluid network drops all flows and utilization integrals. The precomputed
// resource paths and the Config are untouched, so a pooled machine is
// observationally identical to a newly constructed one — this is what lets
// core recycle the machine/engine pair alongside the runtime pool.
func (m *Machine) Reset() {
	m.eng.Reset()
	m.net.Reset()
}

// Config returns the machine description.
func (m *Machine) Config() Config { return m.cfg }

// Engine returns the driving simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Net returns the fluid-flow network (exposed for statistics).
func (m *Machine) Net() *sim.Net { return m.net }

// ComponentID returns the engine flush-component id of the machine's fluid
// network. Each machine owns exactly one Net, and every Resource it contends
// on (controllers, ports) is created through that Net and shared with no
// other machine — so the machine is one independent component of the
// engine's parallel end-of-instant flush, and its id orders the
// deterministic merge (ascending in machine-construction order on a shared
// engine). See the parallel flush determinism contract in package sim.
func (m *Machine) ComponentID() int { return m.net.ComponentID() }

// Resources returns every contended resource the machine owns — its
// per-socket memory controllers followed by its interconnect ports. The
// slice is freshly allocated; the Resources themselves are the machine's
// live ones. Exposed so fleet-level code can assert component disjointness
// (no Resource reachable from two machines).
func (m *Machine) Resources() []*sim.Resource {
	out := make([]*sim.Resource, 0, len(m.mcs)+len(m.ports))
	out = append(out, m.mcs...)
	out = append(out, m.ports...)
	return out
}

// Controllers returns the per-socket memory-controller resources, indexed
// by socket. The slice is the machine's own and must not be mutated.
func (m *Machine) Controllers() []*sim.Resource { return m.mcs }

// Ports returns the per-socket interconnect-port resources, indexed by
// socket. The slice is the machine's own and must not be mutated.
func (m *Machine) Ports() []*sim.Resource { return m.ports }

// Sockets returns the socket count.
func (m *Machine) Sockets() int { return m.cfg.Sockets }

// Cores returns the total core count.
func (m *Machine) Cores() int { return m.cfg.TotalCores() }

// SocketOf maps a core index to its socket.
func (m *Machine) SocketOf(core int) int { return core / m.cfg.CoresPerSocket }

// CoresOf returns the core index range [lo, hi) belonging to socket s.
func (m *Machine) CoresOf(s int) (lo, hi int) {
	return s * m.cfg.CoresPerSocket, (s + 1) * m.cfg.CoresPerSocket
}

// Hops returns the interconnect hop count between two sockets.
func (m *Machine) Hops(from, to int) int {
	if from == to {
		return 0
	}
	if m.cfg.Distance != nil {
		return m.cfg.Distance[from][to]
	}
	return 1
}

// Latency returns the DRAM access latency from a core on socket `from`
// to memory homed on socket `to`.
func (m *Machine) Latency(from, to int) sim.Time {
	return m.cfg.LocalLatency + sim.Time(m.Hops(from, to))*m.cfg.HopLatency
}

// Path returns the contended resources a transfer from memory homed on
// socket `home` to a core on socket `exec` crosses: the home memory
// controller always, plus the home socket's interconnect port if remote —
// the port is where a socket's memory is served to the rest of the machine,
// and saturating it is the dominant NUMA collapse mode on glued systems
// like the bullion (every socket's port drowns when placement scatters).
// The returned slice is shared and must not be mutated.
func (m *Machine) Path(home, exec int) []*sim.Resource {
	return m.paths[home][exec]
}

// CoreBandwidth returns the bandwidth a single core can sustain against
// memory homed on socket `home` when running on socket `exec`, before any
// sharing: the classic concurrency limit MLP * linesize / latency. This is
// what makes remote traffic slow even on an idle interconnect — the longer
// round trip drains the core's outstanding-miss window.
func (m *Machine) CoreBandwidth(exec, home int) float64 {
	return m.cfg.MemParallelism * 64.0 / float64(m.Latency(exec, home))
}

// Transfer starts a fluid flow of the given byte volume from memory homed on
// socket home to a core on socket exec and calls done when the last byte
// lands. The flow's rate is capped by the core's concurrency-limited
// bandwidth (see CoreBandwidth) and further shared max-min fairly on the
// home memory controller and the interconnect ports. bytes == 0 completes
// after zero simulated time.
func (m *Machine) Transfer(home, exec int, bytes int64, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("machine: negative transfer of %d bytes", bytes))
	}
	if bytes == 0 {
		m.eng.After(0, done)
		return
	}
	m.net.StartFlowCapped(float64(bytes), m.Path(home, exec), m.CoreBandwidth(exec, home), done)
}

// ControllerUtilization returns each socket memory controller's average
// utilization over the run so far.
func (m *Machine) ControllerUtilization() []float64 {
	out := make([]float64, m.cfg.Sockets)
	for s, mc := range m.mcs {
		out[s] = mc.Utilization(m.eng.Now())
	}
	return out
}

// PortTraffic fills out (len Sockets) with each socket port's carried
// bytes progressed to the current time. Paired samples bound a window:
// (carried(t1) - carried(t0)) / (LinkBandwidth * (t1 - t0)) is the port's
// utilization over [t0, t1] — how a shared-clock cluster job measures its
// own interconnect pressure without resetting the machine.
func (m *Machine) PortTraffic(out []float64) {
	now := m.eng.Now()
	for s, p := range m.ports {
		out[s] = p.Carried(now)
	}
}

// PortUtilization returns each socket interconnect port's average
// utilization over the run so far — the saturation signal behind DFIFO's
// collapse on scattered placements.
func (m *Machine) PortUtilization() []float64 {
	out := make([]float64, m.cfg.Sockets)
	for s, p := range m.ports {
		out[s] = p.Utilization(m.eng.Now())
	}
	return out
}

// ComputeTime converts task FLOPs to core time.
func (m *Machine) ComputeTime(flops float64) sim.Time {
	if flops <= 0 {
		return 0
	}
	return sim.Time(flops / m.cfg.CoreFlops)
}
