package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleFlowUsesFullCapacity(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("mc0", 10) // 10 bytes/ns
	var doneAt Time
	n.StartFlow(1000, []*Resource{r}, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 100 {
		t.Fatalf("1000 bytes at 10 B/ns finished at %v, want 100", doneAt)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("mc0", 10)
	var d1, d2 Time
	n.StartFlow(1000, []*Resource{r}, func() { d1 = e.Now() })
	n.StartFlow(1000, []*Resource{r}, func() { d2 = e.Now() })
	e.Run()
	// Both share 10 B/ns -> 5 each -> 200ns.
	if d1 != 200 || d2 != 200 {
		t.Fatalf("shared flows finished at %v and %v, want 200", d1, d2)
	}
}

func TestFlowSpeedsUpWhenCompetitorFinishes(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("mc0", 10)
	var dShort, dLong Time
	n.StartFlow(500, []*Resource{r}, func() { dShort = e.Now() })
	n.StartFlow(1500, []*Resource{r}, func() { dLong = e.Now() })
	e.Run()
	// Phase 1: both at 5 B/ns until short is done at t=100 (500 bytes).
	// Long has 1500-500=1000 left, then runs at 10 B/ns: +100ns -> t=200.
	if dShort != 100 {
		t.Fatalf("short flow finished at %v, want 100", dShort)
	}
	if dLong != 200 {
		t.Fatalf("long flow finished at %v, want 200", dLong)
	}
}

func TestMaxMinFairnessAcrossTwoResources(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	// Classic max-min example: flow A uses r1 only, flows B and C use r1+r2,
	// r1 cap 12, r2 cap 4. B and C bottlenecked on r2 at 2 each; A gets the
	// rest of r1 = 8.
	r1 := n.NewResource("r1", 12)
	r2 := n.NewResource("r2", 4)
	fA := n.StartFlow(1e9, []*Resource{r1}, nil)
	fB := n.StartFlow(1e9, []*Resource{r1, r2}, nil)
	fC := n.StartFlow(1e9, []*Resource{r1, r2}, nil)
	if got := fB.Rate(); math.Abs(got-2) > 1e-9 {
		t.Errorf("flow B rate = %v, want 2", got)
	}
	if got := fC.Rate(); math.Abs(got-2) > 1e-9 {
		t.Errorf("flow C rate = %v, want 2", got)
	}
	if got := fA.Rate(); math.Abs(got-8) > 1e-9 {
		t.Errorf("flow A rate = %v, want 8", got)
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 1)
	done := false
	n.StartFlow(0, []*Resource{r}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
	if e.Now() != 0 {
		t.Fatalf("zero-byte flow advanced clock to %v", e.Now())
	}
}

func TestEmptyPathFlowCompletesImmediately(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	done := false
	n.StartFlow(100, nil, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("empty-path flow never completed")
	}
}

func TestNegativeVolumePanics(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative volume did not panic")
		}
	}()
	n.StartFlow(-1, []*Resource{r}, nil)
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	n.NewResource("bad", 0)
}

func TestResourceAccounting(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 5)
	n.StartFlow(100, []*Resource{r}, nil)
	n.StartFlow(100, []*Resource{r}, nil)
	if r.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d, want 2", r.ActiveFlows())
	}
	e.Run()
	if r.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after drain, want 0", r.ActiveFlows())
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("net still tracks %d flows", n.ActiveFlows())
	}
	if n.TotalBytes != 200 {
		t.Fatalf("TotalBytes = %v, want 200", n.TotalBytes)
	}
}

func TestStaggeredArrivalConservesWork(t *testing.T) {
	// Start a second flow midway through the first; total completion time
	// must equal total bytes / capacity regardless of interleaving because
	// the resource is never idle.
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 8)
	var last Time
	n.StartFlow(800, []*Resource{r}, func() { last = e.Now() })
	e.At(50, func() {
		n.StartFlow(400, []*Resource{r}, func() {
			if e.Now() > last {
				last = e.Now()
			}
		})
	})
	e.Run()
	if want := Time(150); last != want { // 1200 bytes / 8 B/ns
		t.Fatalf("drain completed at %v, want %v", last, want)
	}
}

func TestFlowRemainingProgresses(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	f := n.StartFlow(1000, []*Resource{r}, nil)
	e.At(50, func() {
		rem := f.Remaining()
		if math.Abs(rem-500) > 1 {
			t.Errorf("Remaining at t=50 is %v, want ~500", rem)
		}
	})
	e.Run()
	if f.Remaining() != 0 {
		t.Fatalf("Remaining after completion = %v", f.Remaining())
	}
	if f.Volume() != 1000 {
		t.Fatalf("Volume = %v, want 1000", f.Volume())
	}
}

// Property: with a single shared resource, N flows of equal volume all finish
// at N*volume/capacity, regardless of N and volume.
func TestPropertyEqualFlowsFinishTogether(t *testing.T) {
	f := func(nFlows uint8, volKB uint16) bool {
		nf := int(nFlows%16) + 1
		vol := float64(int(volKB%64)+1) * 1024
		e := NewEngine()
		n := NewNet(e)
		r := n.NewResource("r", 16)
		var finish []Time
		for i := 0; i < nf; i++ {
			n.StartFlow(vol, []*Resource{r}, func() { finish = append(finish, e.Now()) })
		}
		e.Run()
		if len(finish) != nf {
			return false
		}
		want := float64(nf) * vol / 16
		for _, ft := range finish {
			if math.Abs(float64(ft)-want) > 2+want*1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: work conservation — the drain time of any set of same-resource
// flows equals total volume / capacity (ceil rounding slack allowed).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(vols [7]uint16) bool {
		e := NewEngine()
		n := NewNet(e)
		r := n.NewResource("r", 4)
		total := 0.0
		for _, v := range vols {
			b := float64(v%8192) + 1
			total += b
			n.StartFlow(b, []*Resource{r}, nil)
		}
		end := e.Run()
		want := total / 4
		return math.Abs(float64(end)-want) <= float64(len(vols))+want*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCappedFlowBelowResourceCapacity(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	f := n.StartFlowCapped(1000, []*Resource{r}, 2, nil)
	if f.Rate() != 2 {
		t.Fatalf("capped flow rate = %v, want 2", f.Rate())
	}
	end := e.Run()
	if end != 500 {
		t.Fatalf("capped flow finished at %v, want 500", end)
	}
}

func TestCapUnusedShareRedistributed(t *testing.T) {
	// One capped flow (cap 2) plus one uncapped on a 10-capacity resource:
	// fair share would be 5 each, but the capped flow leaves 3 on the table
	// which the other flow picks up (rate 8).
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	capped := n.StartFlowCapped(1e6, []*Resource{r}, 2, nil)
	free := n.StartFlow(1e6, []*Resource{r}, nil)
	if capped.Rate() != 2 {
		t.Errorf("capped rate = %v, want 2", capped.Rate())
	}
	if math.Abs(free.Rate()-8) > 1e-9 {
		t.Errorf("uncapped rate = %v, want 8", free.Rate())
	}
}

func TestCapAboveShareIsInert(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	a := n.StartFlowCapped(1e6, []*Resource{r}, 100, nil)
	b := n.StartFlowCapped(1e6, []*Resource{r}, 100, nil)
	if math.Abs(a.Rate()-5) > 1e-9 || math.Abs(b.Rate()-5) > 1e-9 {
		t.Fatalf("rates %v, %v; want 5, 5", a.Rate(), b.Rate())
	}
}

func TestNonPositiveCapPanics(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero cap did not panic")
		}
	}()
	n.StartFlowCapped(10, []*Resource{r}, 0, nil)
}

func TestTimerStopPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(100, func() { fired = true })
	e.At(50, func() { tm.Stop() })
	end := e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if end != 50 {
		t.Fatalf("cancelled event stretched run to %v, want 50", end)
	}
}

func TestStaleCompletionEventsDoNotStretchRun(t *testing.T) {
	// Regression test: completion events superseded by reallocation must not
	// inflate Engine.Run's final time.
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 4)
	total := 0.0
	for _, b := range []float64{5278, 1256, 4904, 141, 3730, 4881, 2494} {
		total += b
		n.StartFlow(b, []*Resource{r}, nil)
	}
	end := e.Run()
	want := total / 4
	if math.Abs(float64(end)-want) > 8 {
		t.Fatalf("drain at %v, want ~%v", end, want)
	}
}

// Regression for the completion-delay guard: a starved flow (rate 0 after a
// reallocation where caps consumed the whole bottleneck) must produce no
// event at all — the historical code divided remaining/rate first, yielding
// +Inf, and relied on an undefined float->int conversion before the dt<1
// clamp.
func TestCompletionDelayGuards(t *testing.T) {
	if _, ok := completionDelay(1000, 0); ok {
		t.Error("zero rate must not schedule a completion")
	}
	if _, ok := completionDelay(1000, -1); ok {
		t.Error("negative rate must not schedule a completion")
	}
	if dt, ok := completionDelay(1000, math.Inf(1)); !ok || dt != 0 {
		t.Errorf("infinite rate: got (%v, %v), want (0, true)", dt, ok)
	}
	if _, ok := completionDelay(1e300, 1e-300); ok {
		t.Error("overflowing delay must not convert to a negative Time")
	}
	if dt, ok := completionDelay(1000, 4); !ok || dt != 250 {
		t.Errorf("plain delay: got (%v, %v), want (250, true)", dt, ok)
	}
	if dt, ok := completionDelay(0, 4); !ok || dt != 0 {
		t.Errorf("drained flow: got (%v, %v), want (0, true)", dt, ok)
	}
}

// A starved flow must neither busy-wait the event queue nor be lost: once
// the capacity-consuming flow finishes, the starved flow is re-rated and
// completes at the work-conserving time.
func TestStarvedFlowRecoversAfterReallocation(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	f := n.StartFlow(1000, []*Resource{r}, nil)
	n.flush() // apply the deferred reallocation before poking its result
	// Force the starved corner directly (float rounding can produce it in
	// big runs but not on demand): pretend water-filling gave f nothing.
	f.rate = 0
	f.starved = true
	n.pending.Stop()
	n.pending = Timer{}
	var doneAt Time
	e.At(100, func() {
		n.StartFlow(500, []*Resource{r}, func() { doneAt = e.Now() })
	})
	end := e.Run()
	if doneAt == 0 {
		t.Fatal("competitor flow never finished")
	}
	if f.Remaining() != 0 || !f.finished {
		t.Fatalf("starved flow never recovered: remaining %v", f.Remaining())
	}
	// t=100: both flows share 10 B/ns. All 1500 bytes drain by t=250.
	if end < 200 || end > 260 {
		t.Fatalf("drain at %v, want ~250", end)
	}
}

// The Flow free list must recycle structs without corrupting still-active
// flows or double-freeing.
func TestFlowRecyclingKeepsAccounting(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 100)
	total := 0.0
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			b := float64(100 + 10*i)
			total += b
			n.StartFlow(b, []*Resource{r}, nil)
		}
		e.Run()
		if n.ActiveFlows() != 0 {
			t.Fatalf("round %d: %d flows leaked", round, n.ActiveFlows())
		}
	}
	if math.Abs(n.TotalBytes-total) > 1e-6 {
		t.Fatalf("TotalBytes = %v, want %v", n.TotalBytes, total)
	}
	if r.ActiveFlows() != 0 {
		t.Fatalf("resource flow count leaked: %d", r.ActiveFlows())
	}
}
