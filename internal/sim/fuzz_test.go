package sim

import "testing"

// FuzzReallocate drives the production fluid network (deferred, batched,
// CSR/worklist water-filling) and the eager naive reference through the
// same generated flow-churn script (via buildChurnCase, shared with the
// fixed equivalence suite) and asserts bit-exact lockstep equality of
// clock, step count, completion times, rates, remaining bytes, deadlines
// and starvation — see realloc_equiv_test.go for the comparison contract.
//
// The seed corpus in testdata/fuzz/FuzzReallocate pins the churn shapes
// that matter: bursts of same-instant starts and finishes (the batching
// stress), single-link bottlenecks with capped and starved flows, disjoint
// components whose caps straddle each other's fair shares (the float-
// ordering trap that rules out per-component fills), and completion waves
// where many flows finish at one nanosecond. Corpus entries run as plain
// unit tests in normal `go test` invocations; `make fuzz-smoke` runs a
// short coverage-guided session on top.
func FuzzReallocate(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(48), uint64(6))  // machine-shaped fan-out bursts
	f.Add(uint64(2), uint64(1), uint64(80), uint64(3))  // single-link bottleneck, caps + starvation
	f.Add(uint64(3), uint64(2), uint64(64), uint64(4))  // disjoint components, straddling caps
	f.Add(uint64(4), uint64(3), uint64(72), uint64(2))  // merging/splitting random paths
	f.Add(uint64(5), uint64(4), uint64(90), uint64(7))  // same-instant completion waves
	f.Add(uint64(11), uint64(0), uint64(95), uint64(8)) // max-burst machine shape
	f.Fuzz(func(t *testing.T, seed, style, nOps, burst uint64) {
		caps, ops := buildChurnCase(seed, style, nOps, burst)
		runEquivalence(t, caps, ops)
	})
}
