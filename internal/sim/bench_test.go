package sim

import (
	"testing"
)

// BenchmarkReallocate measures one from-scratch max-min water-filling pass
// over a contended 8-socket-like network (16 resources, 32 capped flows
// crossing one or two resources each — the machine.Transfer shape).
func BenchmarkReallocate(b *testing.B) {
	e := NewEngine()
	n := NewNet(e)
	rs := make([]*Resource, 16)
	for i := range rs {
		rs[i] = n.NewResource("r", 30)
	}
	paths := make([][]*Resource, 32)
	for i := range paths {
		if i%2 == 0 {
			paths[i] = []*Resource{rs[i%16]}
		} else {
			paths[i] = []*Resource{rs[i%16], rs[(i+1)%16]}
		}
	}
	for i := 0; i < 32; i++ {
		n.StartFlowCapped(1e12, paths[i], 0.64, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.reallocate()
	}
}

// BenchmarkReallocateBatched measures a batched same-instant churn burst on
// the same network shape: 8 flows start at one timestamp (a task fanning out
// transfers) and the deferred flush pays for one redistribution instead of
// eight.
func BenchmarkReallocateBatched(b *testing.B) {
	e := NewEngine()
	n := NewNet(e)
	rs := make([]*Resource, 16)
	for i := range rs {
		rs[i] = n.NewResource("r", 30)
	}
	paths := make([][]*Resource, 32)
	for i := range paths {
		if i%2 == 0 {
			paths[i] = []*Resource{rs[i%16]}
		} else {
			paths[i] = []*Resource{rs[i%16], rs[(i+1)%16]}
		}
	}
	for i := 0; i < 32; i++ {
		n.StartFlowCapped(1e12, paths[i], 0.64, nil)
	}
	n.flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			n.StartFlowCapped(1e9, paths[(i+j)%32], 0.64, nil)
		}
		n.flush() // one redistribution for the whole burst
		for j := 0; j < 8; j++ {
			e.Step() // drain the 8 completions (each reflushes)
		}
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkFlowChurn measures the steady-state start/finish cycle: a working
// set of ~32 flows over 8 resources with completions and reallocations
// interleaved. The allocs/op of this benchmark is the package's zero-
// allocation contract — event slots, Flow structs and scratch buffers are
// all recycled, so steady state allocates nothing.
func BenchmarkFlowChurn(b *testing.B) {
	e := NewEngine()
	n := NewNet(e)
	rs := make([]*Resource, 8)
	paths := make([][]*Resource, 8)
	for i := range rs {
		rs[i] = n.NewResource("mc", 30)
		paths[i] = []*Resource{rs[i]}
	}
	// Prime the working set and the free lists before measuring.
	for i := 0; i < 64; i++ {
		n.StartFlow(4096, paths[i%8], nil)
		if n.ActiveFlows() > 32 {
			e.Step()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.StartFlow(4096, paths[i%8], nil)
		for n.ActiveFlows() > 32 {
			e.Step()
		}
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkTimerChurn measures schedule/cancel traffic on the indexed event
// heap — the pattern the fluid network's completion event generates.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Keep a rolling window of pending timers.
	var pending [64]Timer
	for i := range pending {
		pending[i] = e.At(Time(i+1)<<20, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(pending)
		pending[slot].Stop()
		pending[slot] = e.At(e.Now()+Time(1+i%1024), fn)
		if i%16 == 0 {
			e.Step()
		}
	}
}

// TestFlowChurnSteadyStateAllocs pins the zero-allocation contract in the
// regular test suite, so a regression fails `go test` rather than only
// showing up in benchmark numbers.
func TestFlowChurnSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	rs := make([]*Resource, 8)
	paths := make([][]*Resource, 8)
	for i := range rs {
		rs[i] = n.NewResource("mc", 30)
		paths[i] = []*Resource{rs[i]}
	}
	for i := 0; i < 64; i++ {
		n.StartFlow(4096, paths[i%8], nil)
		if n.ActiveFlows() > 32 {
			e.Step()
		}
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		n.StartFlow(4096, paths[i%8], nil)
		for n.ActiveFlows() > 32 {
			e.Step()
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state flow churn allocates %v objects per op, want 0", avg)
	}
}
