package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourceUtilizationSingleFlow(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	n.StartFlow(1000, []*Resource{r}, nil)
	e.Run() // drains at t=100
	// The resource ran at full rate for the whole run: utilization 1.0.
	if u := r.Utilization(e.Now()); math.Abs(u-1.0) > 0.02 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
	if c := r.Carried(e.Now()); math.Abs(c-1000) > 1 {
		t.Fatalf("carried = %v, want 1000", c)
	}
}

func TestResourceUtilizationHalfIdle(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	n.StartFlow(1000, []*Resource{r}, nil) // busy [0,100]
	e.At(200, func() {})                   // extend the run to t=200
	e.Run()
	if u := r.Utilization(200); math.Abs(u-0.5) > 0.02 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestResourceUtilizationCappedFlow(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	n.StartFlowCapped(500, []*Resource{r}, 5, nil) // rate 5 for 100ns
	e.Run()
	if u := r.Utilization(e.Now()); math.Abs(u-0.5) > 0.02 {
		t.Fatalf("capped utilization = %v, want ~0.5", u)
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	r := n.NewResource("r", 10)
	if r.Utilization(0) != 0 {
		t.Fatal("utilization at t=0 not 0")
	}
	_ = e
}

// Property: carried bytes equal completed volume for any one-resource
// workload (conservation through the accounting path).
func TestPropertyCarriedMatchesVolume(t *testing.T) {
	f := func(vols [5]uint16, caps [5]uint8) bool {
		e := NewEngine()
		n := NewNet(e)
		r := n.NewResource("r", 8)
		total := 0.0
		for i, v := range vols {
			b := float64(v%4096) + 1
			total += b
			cap := float64(caps[i]%7) + 1
			n.StartFlowCapped(b, []*Resource{r}, cap, nil)
		}
		e.Run()
		return math.Abs(r.Carried(e.Now())-total) < total*1e-6+float64(len(vols))*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestManyStaggeredFlowsDeterministic(t *testing.T) {
	run := func() Time {
		e := NewEngine()
		n := NewNet(e)
		r1 := n.NewResource("a", 6)
		r2 := n.NewResource("b", 4)
		for i := 0; i < 50; i++ {
			i := i
			e.At(Time(i*13), func() {
				path := []*Resource{r1}
				if i%3 == 0 {
					path = []*Resource{r1, r2}
				}
				n.StartFlowCapped(float64(500+i*37), path, float64(1+i%5), nil)
			})
		}
		return e.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic drain: %v vs %v", a, b)
	}
}
