package sim

import (
	"fmt"
	"math"
)

// Resource is a shared capacity, in bytes per nanosecond (numerically equal
// to GB/s), over which fluid flows compete: a socket's memory controller or
// an inter-socket link. Resources are created through Net.NewResource so the
// network can index them densely.
type Resource struct {
	id       int
	name     string
	capacity float64 // bytes/ns
	flows    int     // active flows crossing this resource (bookkeeping)

	// Utilization accounting: byte-time integral of allocated rate.
	carried    float64 // total bytes carried so far
	rate       float64 // currently allocated rate (sum over flows)
	lastUpdate Time
}

// Carried returns the total bytes the resource has transported so far,
// progressed to the given time.
func (r *Resource) Carried(now Time) float64 {
	return r.carried + r.rate*float64(now-r.lastUpdate)
}

// Utilization returns the average fraction of capacity used over [0, now].
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return r.Carried(now) / (r.capacity * float64(now))
}

// settle folds the running rate into the carried integral at time now.
func (r *Resource) settle(now Time, newRate float64) {
	r.carried += r.rate * float64(now-r.lastUpdate)
	r.rate = newRate
	r.lastUpdate = now
}

// Name returns the diagnostic name given at creation.
func (r *Resource) Name() string { return r.name }

// Rate returns the aggregate allocated rate in bytes/ns — the sum of the
// fair shares of every active flow crossing the resource, as of the last
// reallocation. Unlike Flow.Rate it never forces a flush: it is meant for
// samplers that run as engine flushers registered after the Net's own (so
// they read settled post-fill values) and must not perturb the network.
func (r *Resource) Rate() float64 { return r.rate }

// Capacity returns the resource capacity in bytes per nanosecond.
func (r *Resource) Capacity() float64 { return r.capacity }

// ActiveFlows returns the number of flows currently crossing the resource.
func (r *Resource) ActiveFlows() int { return r.flows }

// Flow is an in-flight transfer of a byte volume across a path of resources.
//
// Flow structs are recycled: the *Flow returned by StartFlow is valid for
// inspection while the flow is active and remains readable after completion,
// but only until the next StartFlow call on the same Net — at that point the
// struct may be reused for the new flow. Callers that need post-completion
// data should copy it out in the done callback.
type Flow struct {
	id         int
	volume     float64 // total bytes of the transfer
	remaining  float64 // bytes left to move
	rate       float64 // bytes/ns, current max-min allocation
	maxRate    float64 // per-flow rate cap (source concurrency limit)
	path       []*Resource
	mask       uint64 // bitset over path resource IDs; valid when !wide
	wide       bool   // some path resource has id >= 64: fall back to scans
	lastUpdate Time
	done       func()
	net        *Net
	finished   bool

	// Reallocation / completion-tracking state, owned by Net.
	frozen   bool   // scratch flag for the water-filling loop
	idx      int    // position in Net.active
	deadline Time   // completion event time as of the last reallocation
	dseq     uint64 // tiebreaker mirroring engine event seq order
	starved  bool   // rate is 0 (or non-finite volume math): no deadline
}

// ID returns the flow's network-unique id. Ids are assigned in start order
// and never reused within a run, so they identify a flow even after its
// struct is recycled.
func (f *Flow) ID() int { return f.id }

// Path returns the contended resources the flow crosses. The slice is the
// caller-supplied path, shared and read-only; it is valid while the flow is
// active (it is dropped at completion, after the end hook runs).
func (f *Flow) Path() []*Resource { return f.path }

// Volume returns the total byte volume of the transfer.
func (f *Flow) Volume() float64 { return f.volume }

// Remaining returns the bytes not yet transferred, progressed to the current
// simulated time.
func (f *Flow) Remaining() float64 {
	if f.finished {
		return 0
	}
	f.net.flush() // deferred reallocation: refresh the rate before reading
	elapsed := float64(f.net.eng.Now() - f.lastUpdate)
	rem := f.remaining - elapsed*f.rate
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the current fair-share rate in bytes/ns.
func (f *Flow) Rate() float64 {
	if !f.finished {
		f.net.flush() // deferred reallocation: refresh before reading
	}
	return f.rate
}

// crosses reports whether the flow's path includes r — a bitset test when
// every path resource has an ID below 64 (always true for the machines the
// paper evaluates: 2 resources per socket), a linear scan otherwise.
func (f *Flow) crosses(r *Resource) bool {
	if !f.wide {
		if r.id >= 64 {
			return false
		}
		return f.mask&(1<<uint(r.id)) != 0
	}
	for _, rr := range f.path {
		if rr == r {
			return true
		}
	}
	return false
}

// Net is a fluid-flow network bound to an Engine. All methods must be called
// from the engine goroutine (the simulator is single-threaded by design).
//
// # Incremental reallocation
//
// Starting or finishing a flow invalidates rates, but the recompute is
// deferred: churn marks the network dirty and parks the completion event on
// a far-future placeholder, and the engine runs the Net's flush hook once,
// just before the clock leaves the current instant. That batches
// same-instant churn — a task fanning out transfers to several home
// sockets, or a wave of flows finishing at one timestamp, pays for one
// redistribution instead of one per event. Deferral is observationally
// exact: intermediate same-instant rates would exist for zero simulated
// time, remaining-byte accounting is progressed eagerly per event, the
// flush reassigns deadlines at the same instant an eager recompute would
// have, and the completion event keeps the tie rank the eager design gave
// it — its scheduling seq is claimed at the churn point and the flush only
// moves the placeholder to the real deadline (see noteChurn and
// TestSameInstantTieOrderMatchesEager). Rates become observable only
// between instants, or through Flow.Rate/Remaining, which force the flush.
//
// The fill itself stays a whole-network water-filling pass, restructured so
// its cost tracks the flows that actually cross contended resources
// (per-resource crossing lists and shrinking worklists replace the historic
// all-resources x all-flows scans) while executing bit-for-bit the float
// operations of the naive ladder — the determinism goldens pin simulated
// physics down to the nanosecond, so the optimised fill must be exactly
// equivalent, and the equivalence suite and FuzzReallocate hold it to the
// test-only reference implementation.
//
// A further restriction — water-filling only the connected component of
// resources the changed flow crosses, leaving other components' rates
// untouched — is deliberately NOT done, although the path bitsets make it
// cheap: with per-flow rate caps the historical global ladder freezes
// cap-bound flows in rounds driven by the global minimum share, so another
// component's share can split one component's cap-freeze batch and change
// the order residual capacities are subtracted in. Per-component fills
// reorder those subtractions, and float subtraction is not associative:
// rates drift by ulps, ceil'd deadlines by nanoseconds, and whole schedules
// follow (6 of the 195 determinism goldens moved when it was tried). The
// component fill would be bit-exact only against a per-component reference,
// not against the recorded history.
type Net struct {
	eng       *Engine
	resources []*Resource
	active    []*Flow // in-flight flows, ascending id (deterministic order)
	freeFlows []*Flow // recycled Flow structs
	nextFlow  int

	// Scratch buffers reused by the water-filling passes. residual,
	// unfrozen and sums have len == len(resources). csrStart/csrFlows hold
	// the per-resource crossing lists in CSR layout; liveRes and liveFlows
	// are the shrinking round worklists.
	residual  []float64
	unfrozen  []int
	sums      []float64
	csrStart  []int32 // len == len(resources)+1; bucket r is [csrStart[r], csrStart[r+1])
	csrCur    []int32 // fill cursors, len == len(resources)
	csrFlows  []*Flow // flattened buckets, ascending flow id within each
	liveRes   []int32 // resource ids with unfrozen flows, ascending
	liveFlows []*Flow // unfrozen flows, ascending id

	// Deferred-reallocation state. batch controls same-instant coalescing:
	// when false every churn event flushes immediately (one redistribution
	// per start/finish, the historical behaviour); the equivalence tests
	// use it to pin batching against eager recomputation. flushing guards
	// against reentry: Flow.Rate/Remaining force a flush, and nothing stops
	// user code (an accounting hook, a sampler) from calling them while a
	// fill is already running — mid-flush the rates being read are the ones
	// the fill is about to settle, so the reentrant call must be a no-op,
	// not a second fill over half-updated scratch state.
	dirty    bool
	batch    bool
	flushing bool

	// comp is this Net's engine component id (AddComponentFlusher): the Net
	// is one independent unit of the parallel end-of-instant flush. direct
	// is the staging buffer for forced flushes (Flow.Rate/Remaining,
	// reallocate), which prepare and apply inline on the caller's
	// goroutine; engine-driven flushes use the engine's per-component
	// buffer instead.
	comp   int
	direct Stage

	// fill runs one water-filling pass at the given instant, settling the
	// resource integrals. Production uses (*Net).waterfill; the equivalence
	// suite swaps in the naive reference ladder.
	fill func(Time)

	// Single earliest-completion event; completeFn is allocated once so
	// rescheduling never creates a new closure.
	pending    Timer
	completeFn func()
	dcounter   uint64 // deadline assignment counter (see Flow.dseq)

	// TotalBytes accumulates the volume completed through the network,
	// a convenient global traffic counter for statistics.
	TotalBytes float64

	// Flow lifecycle hooks (SetFlowHooks). Both are nil on the hot path:
	// observability is opt-in and the nil checks keep the untraced network
	// allocation-free and branch-cheap.
	onFlowStart func(*Flow)
	onFlowEnd   func(*Flow)
}

// NewNet creates an empty flow network driven by eng. The Net registers as
// one component of the engine's end-of-instant flush: its resources are
// created through it and shared with no other Net, so its reallocation pass
// is independent of every other component's and may run on a flush worker.
func NewNet(eng *Engine) *Net {
	n := &Net{eng: eng, batch: true}
	n.completeFn = n.onComplete
	n.fill = n.waterfill
	n.comp = eng.AddComponentFlusher(n.flushStage)
	return n
}

// ComponentID returns the Net's engine flush-component id (ascending in
// Net-creation order on the shared engine).
func (n *Net) ComponentID() int { return n.comp }

// NewResource registers a shared resource with the given capacity in
// bytes per nanosecond (== GB/s). Capacity must be positive.
func (n *Net) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with non-positive capacity %v", name, capacity))
	}
	r := &Resource{id: len(n.resources), name: name, capacity: capacity}
	n.resources = append(n.resources, r)
	n.residual = append(n.residual, 0)
	n.unfrozen = append(n.unfrozen, 0)
	n.sums = append(n.sums, 0)
	n.csrCur = append(n.csrCur, 0)
	return r
}

// SetFlowHooks installs flow lifecycle callbacks: onStart fires when a flow
// enters the active set (before its first rate is assigned — rates of the
// new instant settle at the end-of-instant flush), onEnd when its last byte
// lands, before the completion callback and before the struct is recycled.
// Hooks observe only: they must not start flows, schedule events or mutate
// the network, and they see the *Flow handle subject to the recycling
// contract (copy what outlives the callback). Zero-byte and empty-path
// flows complete immediately and never reach the hooks. Hooks survive
// Reset, like the engine's registered flushers.
func (n *Net) SetFlowHooks(onStart, onEnd func(*Flow)) {
	n.onFlowStart, n.onFlowEnd = onStart, onEnd
}

// StartFlow begins moving bytes across path and calls done (if non-nil) when
// the last byte arrives. A flow with an empty path or zero bytes completes
// after zero simulated time (via an immediate event, preserving event order).
// The returned flow can be inspected but not cancelled; flows always run to
// completion. See Flow for the handle-recycling contract.
func (n *Net) StartFlow(bytes float64, path []*Resource, done func()) *Flow {
	return n.StartFlowCapped(bytes, path, math.Inf(1), done)
}

// StartFlowCapped is StartFlow with an additional per-flow rate ceiling in
// bytes/ns. The cap models a source that cannot saturate the path on its own
// — e.g. a single core whose outstanding-miss window limits its achievable
// memory bandwidth. A non-positive cap panics.
func (n *Net) StartFlowCapped(bytes float64, path []*Resource, maxRate float64, done func()) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative flow volume %v", bytes))
	}
	if maxRate <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow rate cap %v", maxRate))
	}
	if bytes == 0 || len(path) == 0 {
		// Immediate completion; never enters the active set or the pool.
		n.nextFlow++
		f := &Flow{
			id:         n.nextFlow,
			volume:     bytes,
			maxRate:    maxRate,
			path:       path,
			lastUpdate: n.eng.Now(),
			net:        n,
			finished:   true,
		}
		n.TotalBytes += bytes
		if done != nil {
			n.eng.After(0, done)
		} else {
			n.eng.After(0, noop)
		}
		return f
	}
	n.nextFlow++
	var f *Flow
	if k := len(n.freeFlows); k > 0 {
		f = n.freeFlows[k-1]
		n.freeFlows = n.freeFlows[:k-1]
	} else {
		f = &Flow{}
	}
	*f = Flow{
		id:         n.nextFlow,
		volume:     bytes,
		remaining:  bytes,
		maxRate:    maxRate,
		path:       path,
		lastUpdate: n.eng.Now(),
		done:       done,
		net:        n,
	}
	for _, r := range f.path {
		if r.id >= 64 {
			f.wide = true
			break
		}
		f.mask |= 1 << uint(r.id)
	}
	n.progressAll()
	f.idx = len(n.active)
	n.active = append(n.active, f) // ids are monotonic: append keeps order
	for _, r := range f.path {
		r.flows++
	}
	n.noteChurn()
	if n.onFlowStart != nil {
		n.onFlowStart(f)
	}
	if !n.batch {
		n.flush()
	}
	return f
}

// noop keeps zero-work flows on the event queue (their completion still
// occupies one engine step, preserving event ordering) without allocating a
// closure per flow.
func noop() {}

// ActiveFlows returns the number of in-flight flows.
func (n *Net) ActiveFlows() int { return len(n.active) }

// progressAll advances every active flow's remaining volume to the current
// time using its rate since the last update.
func (n *Net) progressAll() {
	now := n.eng.Now()
	for _, f := range n.active {
		elapsed := float64(now - f.lastUpdate)
		if elapsed > 0 {
			f.remaining -= elapsed * f.rate
			if f.remaining < 1e-9 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// freezeFlow fixes a flow's rate and removes its demand from the residual
// capacities. Part of the water-filling loop in reallocate.
func (n *Net) freezeFlow(f *Flow, rate float64) {
	f.rate = rate
	f.frozen = true
	for _, rr := range f.path {
		n.residual[rr.id] -= rate
		if n.residual[rr.id] < 0 {
			n.residual[rr.id] = 0
		}
		n.unfrozen[rr.id]--
	}
}

// sentinelTime parks the completion-event placeholder beyond any reachable
// deadline; the end-of-instant flush always reschedules or stops it before
// the clock could get there.
const sentinelTime = Time(math.MaxInt64)

// noteChurn records that a flow just started or finished: rates are stale
// and must be recomputed before the current instant ends. The armed
// completion event is replaced by a far-future placeholder, so it can never
// fire on stale deadlines — and, crucially, the placeholder claims the
// completion event's scheduling seq here, at the churn point, exactly where
// the historical eager recompute re-armed its timer. The flush only moves
// the placeholder to the real deadline (Engine.Reschedule keeps the seq),
// so a tie between the completion and an event scheduled later in the same
// instant resolves exactly as it did under one-recompute-per-churn.
func (n *Net) noteChurn() {
	n.pending.Stop()
	n.pending = n.eng.At(sentinelTime, n.completeFn)
	if !n.dirty {
		n.dirty = true
		n.eng.RequestComponentFlush(n.comp)
	}
}

// flushStage is the prepare phase of the deferred reallocation: one
// water-filling pass over the network, fresh completion deadlines, and the
// completion-event re-arm staged into st. It is the Net's component-flusher
// hook and may run on a flush worker concurrently with other Nets'
// prepares: it touches only this Net's state (resources included — they are
// created through the Net and shared with no other) and records its event
// mutations into st for the engine's id-ordered apply phase. A no-op when
// no churn is pending, so forced flushes (Flow.Rate, the engine's
// end-of-instant hook, RunUntil's horizon check) are free on a clean
// network; a no-op as well when a flush is already running on this Net (see
// Net.flushing).
func (n *Net) flushStage(st *Stage) {
	if !n.dirty || n.flushing {
		return
	}
	n.flushing = true
	n.dirty = false
	now := n.eng.Now()
	if len(n.active) == 0 {
		for _, r := range n.resources {
			r.settle(now, 0)
		}
		st.Stop(n.pending)
		n.pending = Timer{}
		n.flushing = false
		return
	}
	n.fill(now)
	// Assign fresh completion deadlines in flow-ID order — mirroring the
	// (time, seq) order per-flow timers would have been scheduled in — and
	// arm the single completion event for the earliest one. The pass covers
	// every active flow, not only those whose rate changed: the historical
	// ladder recomputed every deadline from the current instant, and the
	// ceil-rounding of remaining/rate depends on that instant, so skipping
	// a flow here could drift its deadline a nanosecond from the reference.
	for _, f := range n.active {
		dt, ok := completionDelay(f.remaining, f.rate)
		n.dcounter++
		f.dseq = n.dcounter
		f.starved = !ok
		if ok {
			f.deadline = now + dt
		}
	}
	// Move the placeholder claimed by the last churn to the real deadline,
	// keeping its seq (see noteChurn). Staged as reschedule-or-insert: the
	// fallback At (defensive — noteChurn always arms a placeholder while
	// dirty) delivers its fresh Timer back into n.pending at apply time.
	best := n.earliestDue()
	if best == nil {
		st.Stop(n.pending)
		n.pending = Timer{}
		n.flushing = false
		return
	}
	st.RescheduleOrAt(n.pending, best.deadline, n.completeFn, &n.pending)
	n.flushing = false
}

// flush forces the deferred reallocation inline, on the caller's goroutine:
// prepare into the Net's direct staging buffer, then apply immediately.
// Equivalent to the engine-driven path because nothing engine-visible runs
// between a staged op's recording point and the end of flushStage. Called
// by Flow.Rate/Remaining and the unbatched (batch=false) churn path.
func (n *Net) flush() {
	n.flushStage(&n.direct)
	n.eng.applyStage(&n.direct)
}

// waterfill computes the max-min fair rate for every active flow
// (water-filling with per-flow caps) and settles the resource integrals.
//
// Water-filling: repeatedly find the binding constraint — either the
// bottleneck resource (smallest per-unfrozen-flow fair share) or an unfrozen
// flow whose own cap is below that share — freeze the affected flows,
// subtract their consumption from every resource they cross, repeat.
//
// The pass is bit-for-bit equivalent to the naive ladder (kept as the
// test-only referenceWaterfill): identical float operations in identical
// order. What changed is the scan structure, which the profile said was the
// hot spot, not the arithmetic:
//
//   - Per-resource crossing lists in CSR layout (rebuilt per flush in two
//     passes over the active flows, so every bucket is in ascending flow-id
//     order) replace the all-flows scan + crosses() test when a bottleneck
//     resource freezes its flows.
//   - A shrinking worklist of unfrozen flows (stable-filtered, so ascending
//     id order is preserved) replaces the all-flows scan of the cap-freeze
//     round.
//   - A shrinking worklist of resources with unfrozen flows replaces the
//     all-resources scans of the share minimum and the freeze pass.
//
// Everything runs on per-Net scratch buffers: no allocation, no map
// iteration, no sorting. Flows are visited in ascending ID order and
// resources in ascending id order, which both makes runs bit-reproducible
// and matches the order completion timers were historically scheduled in.
func (n *Net) waterfill(now Time) {
	residual, unfrozen := n.residual, n.unfrozen
	if len(n.csrStart) != len(n.resources)+1 {
		n.csrStart = make([]int32, len(n.resources)+1)
	}
	start, cur := n.csrStart, n.csrCur
	for i, r := range n.resources {
		residual[i] = r.capacity
		unfrozen[i] = 0
		start[i+1] = 0
	}
	for _, f := range n.active {
		for _, r := range f.path {
			start[r.id+1]++
		}
	}
	for i := 1; i < len(start); i++ {
		start[i] += start[i-1]
	}
	total := int(start[len(start)-1])
	if cap(n.csrFlows) < total {
		n.csrFlows = make([]*Flow, total)
	}
	csr := n.csrFlows[:total]
	copy(cur, start[:len(cur)])
	lf := n.liveFlows[:0]
	for _, f := range n.active {
		f.frozen = false
		lf = append(lf, f)
		for _, r := range f.path {
			unfrozen[r.id]++
			csr[cur[r.id]] = f
			cur[r.id]++
		}
	}
	lr := n.liveRes[:0]
	for id := range n.resources {
		if unfrozen[id] > 0 {
			lr = append(lr, int32(id))
		}
	}
	left := len(n.active)
	for left > 0 {
		// Bottleneck-resource share, over resources that still carry
		// unfrozen flows (compacted in place; a resource whose flows all
		// froze can never regain one within this fill).
		share := math.Inf(1)
		k := 0
		for _, id := range lr {
			if unfrozen[id] == 0 {
				continue
			}
			lr[k] = id
			k++
			if s := residual[id] / float64(unfrozen[id]); s < share {
				share = s
			}
		}
		lr = lr[:k]
		// A flow whose cap is at or below the share binds first. The
		// worklist is compacted in the same stable pass, preserving the
		// ascending-id visit order of the naive ladder.
		capBound := false
		k = 0
		for _, f := range lf {
			if f.frozen {
				continue
			}
			if f.maxRate <= share {
				n.freezeFlow(f, f.maxRate)
				left--
				capBound = true
				continue
			}
			lf[k] = f
			k++
		}
		lf = lf[:k]
		if capBound {
			continue // resource shares changed; recompute
		}
		if math.IsInf(share, 1) {
			// Remaining flows cross no contended resource; cannot happen
			// because every flow has a non-empty path, but guard anyway.
			for _, f := range lf {
				if !f.frozen {
					f.rate = f.maxRate
					f.frozen = true
					left--
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck resource,
		// walking the resource's own crossing list instead of scanning all
		// active flows.
		progressed := false
		for _, id := range lr {
			if unfrozen[id] == 0 {
				continue
			}
			if residual[id]/float64(unfrozen[id]) > share*(1+1e-12) {
				continue
			}
			for _, f := range csr[start[id]:start[id+1]] {
				if f.frozen {
					continue
				}
				n.freezeFlow(f, share)
				left--
				progressed = true
			}
		}
		if !progressed {
			panic("sim: max-min water-filling made no progress")
		}
	}
	n.liveFlows, n.liveRes = lf[:0], lr[:0] // keep growth; drop stale refs logically
	// Settle per-resource rate integrals with the fresh allocation.
	sums := n.sums
	for i := range sums {
		sums[i] = 0
	}
	for _, f := range n.active {
		for _, res := range f.path {
			sums[res.id] += f.rate
		}
	}
	for _, res := range n.resources {
		res.settle(now, sums[res.id])
	}
}

// reallocate forces an immediate from-scratch recompute regardless of
// pending churn. Benchmarks use it to measure one full fill.
func (n *Net) reallocate() {
	n.noteChurn()
	n.flush()
}

// completionDelay returns the event delay for a flow with the given
// remaining volume and rate. ok is false when the flow is starved (rate 0 —
// it will be re-examined at the next reallocation) so the caller never
// divides into +Inf and never converts a non-finite float to Time.
func completionDelay(remaining, rate float64) (dt Time, ok bool) {
	if rate <= 0 {
		return 0, false
	}
	if math.IsInf(rate, 1) {
		return 0, true
	}
	d := math.Ceil(remaining / rate)
	if d >= math.MaxInt64 {
		// Degenerate rate underflow; clamp rather than overflow Time.
		return 0, false
	}
	return Time(d), true
}

// earliestDue returns the active flow with the smallest (deadline, dseq) —
// the flow whose dedicated timer would fire next under a one-event-per-flow
// design. Starved flows have no deadline and are skipped. Both armCompletion
// and onComplete must select by this exact rule, or the armed event would
// belong to a different flow than the one processed when it fires.
func (n *Net) earliestDue() *Flow {
	var best *Flow
	for _, f := range n.active {
		if f.starved {
			continue
		}
		if best == nil || f.deadline < best.deadline ||
			(f.deadline == best.deadline && f.dseq < best.dseq) {
			best = f
		}
	}
	return best
}

// armCompletion (re)schedules the Net's single completion event for the
// earliest flow deadline, if any flow has one.
func (n *Net) armCompletion() {
	best := n.earliestDue()
	n.pending.Stop()
	if best == nil {
		n.pending = Timer{}
		return
	}
	n.pending = n.eng.At(best.deadline, n.completeFn)
}

// onComplete fires when the earliest flow deadline arrives. It processes
// exactly the flow that deadline belongs to — the same flow whose dedicated
// timer would have fired under a one-event-per-flow design — finishing it,
// or, when ceil rounding made the event marginally early, pushing that
// flow's deadline out by the residue (at least 1ns) and re-arming.
func (n *Net) onComplete() {
	n.pending = Timer{}
	n.progressAll()
	now := n.eng.Now()
	due := n.earliestDue()
	if due == nil {
		return
	}
	if due.remaining > 1e-6 {
		dt, ok := completionDelay(due.remaining, due.rate)
		if !ok {
			due.starved = true // re-examined at the next reallocation
		} else {
			if dt < 1 {
				dt = 1
			}
			n.dcounter++
			due.deadline = now + dt
			due.dseq = n.dcounter
		}
		n.armCompletion()
		return
	}
	n.finish(due)
}

// finish completes f: removes it from the active set, marks its component
// for reallocation (flushed immediately when batching is off, or at the end
// of the instant — which also re-arms the completion event), runs the
// callback, and recycles the struct.
func (n *Net) finish(f *Flow) {
	f.finished = true
	f.remaining = 0
	n.removeActive(f)
	for _, r := range f.path {
		r.flows--
	}
	n.TotalBytes += f.volume
	n.noteChurn()
	if !n.batch {
		n.flush()
	}
	if n.onFlowEnd != nil {
		n.onFlowEnd(f)
	}
	done := f.done
	f.done = nil
	f.path = nil
	if done != nil {
		done()
	}
	n.freeFlows = append(n.freeFlows, f)
}

// Reset returns the network to its initial state — no active flows, zeroed
// resource integrals and traffic counters — while keeping the registered
// resources, the recycled-Flow pool and every grown scratch buffer. It must
// be paired with a reset of the driving engine (the parked completion
// placeholder is abandoned here; the engine reset invalidates it wholesale).
// Machine.Reset is the intended caller.
func (n *Net) Reset() {
	for _, f := range n.active {
		f.finished = true
		f.done = nil
		f.path = nil
		n.freeFlows = append(n.freeFlows, f)
	}
	n.active = n.active[:0]
	for _, r := range n.resources {
		r.flows = 0
		r.carried = 0
		r.rate = 0
		r.lastUpdate = 0
	}
	n.nextFlow = 0
	n.dirty = false
	n.flushing = false
	for i := range n.direct.ops {
		n.direct.ops[i] = stagedOp{}
	}
	n.direct.ops = n.direct.ops[:0]
	n.pending = Timer{}
	n.dcounter = 0
	n.TotalBytes = 0
}

// removeActive deletes f from the dense active slice, preserving the
// ascending-ID order. Active counts are small (bounded by in-flight
// transfers, at most a few per core), so the shift is cheaper than any
// order-breaking trick plus re-sort.
func (n *Net) removeActive(f *Flow) {
	i := f.idx
	copy(n.active[i:], n.active[i+1:])
	n.active = n.active[:len(n.active)-1]
	for ; i < len(n.active); i++ {
		n.active[i].idx = i
	}
}
