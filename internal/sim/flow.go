package sim

import (
	"fmt"
	"math"
)

// Resource is a shared capacity, in bytes per nanosecond (numerically equal
// to GB/s), over which fluid flows compete: a socket's memory controller or
// an inter-socket link. Resources are created through Net.NewResource so the
// network can index them densely.
type Resource struct {
	id       int
	name     string
	capacity float64 // bytes/ns
	flows    int     // active flows crossing this resource (bookkeeping)

	// Utilization accounting: byte-time integral of allocated rate.
	carried    float64 // total bytes carried so far
	rate       float64 // currently allocated rate (sum over flows)
	lastUpdate Time
}

// Carried returns the total bytes the resource has transported so far,
// progressed to the given time.
func (r *Resource) Carried(now Time) float64 {
	return r.carried + r.rate*float64(now-r.lastUpdate)
}

// Utilization returns the average fraction of capacity used over [0, now].
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return r.Carried(now) / (r.capacity * float64(now))
}

// settle folds the running rate into the carried integral at time now.
func (r *Resource) settle(now Time, newRate float64) {
	r.carried += r.rate * float64(now-r.lastUpdate)
	r.rate = newRate
	r.lastUpdate = now
}

// Name returns the diagnostic name given at creation.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes per nanosecond.
func (r *Resource) Capacity() float64 { return r.capacity }

// ActiveFlows returns the number of flows currently crossing the resource.
func (r *Resource) ActiveFlows() int { return r.flows }

// Flow is an in-flight transfer of a byte volume across a path of resources.
type Flow struct {
	id         int
	volume     float64 // total bytes of the transfer
	remaining  float64 // bytes left to move
	rate       float64 // bytes/ns, current max-min allocation
	maxRate    float64 // per-flow rate cap (source concurrency limit)
	path       []*Resource
	lastUpdate Time
	pending    *Timer // current completion event; stopped on reallocation
	done       func()
	net        *Net
	finished   bool
}

// Volume returns the total byte volume of the transfer.
func (f *Flow) Volume() float64 { return f.volume }

// Remaining returns the bytes not yet transferred, progressed to the current
// simulated time.
func (f *Flow) Remaining() float64 {
	if f.finished {
		return 0
	}
	elapsed := float64(f.net.eng.Now() - f.lastUpdate)
	rem := f.remaining - elapsed*f.rate
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the current fair-share rate in bytes/ns.
func (f *Flow) Rate() float64 { return f.rate }

// Net is a fluid-flow network bound to an Engine. All methods must be called
// from the engine goroutine (the simulator is single-threaded by design).
type Net struct {
	eng       *Engine
	resources []*Resource
	flows     map[int]*Flow
	nextFlow  int
	// TotalBytes accumulates the volume completed through the network,
	// a convenient global traffic counter for statistics.
	TotalBytes float64
}

// NewNet creates an empty flow network driven by eng.
func NewNet(eng *Engine) *Net {
	return &Net{eng: eng, flows: make(map[int]*Flow)}
}

// NewResource registers a shared resource with the given capacity in
// bytes per nanosecond (== GB/s). Capacity must be positive.
func (n *Net) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with non-positive capacity %v", name, capacity))
	}
	r := &Resource{id: len(n.resources), name: name, capacity: capacity}
	n.resources = append(n.resources, r)
	return r
}

// StartFlow begins moving bytes across path and calls done (if non-nil) when
// the last byte arrives. A flow with an empty path or zero bytes completes
// after zero simulated time (via an immediate event, preserving event order).
// The returned flow can be inspected but not cancelled; flows always run to
// completion.
func (n *Net) StartFlow(bytes float64, path []*Resource, done func()) *Flow {
	return n.StartFlowCapped(bytes, path, math.Inf(1), done)
}

// StartFlowCapped is StartFlow with an additional per-flow rate ceiling in
// bytes/ns. The cap models a source that cannot saturate the path on its own
// — e.g. a single core whose outstanding-miss window limits its achievable
// memory bandwidth. A non-positive cap panics.
func (n *Net) StartFlowCapped(bytes float64, path []*Resource, maxRate float64, done func()) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative flow volume %v", bytes))
	}
	if maxRate <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow rate cap %v", maxRate))
	}
	n.nextFlow++
	f := &Flow{
		id:         n.nextFlow,
		volume:     bytes,
		remaining:  bytes,
		maxRate:    maxRate,
		path:       path,
		lastUpdate: n.eng.Now(),
		done:       done,
		net:        n,
	}
	if bytes == 0 || len(path) == 0 {
		f.finished = true
		n.TotalBytes += bytes
		n.eng.After(0, func() {
			if f.done != nil {
				f.done()
			}
		})
		return f
	}
	n.progressAll()
	n.flows[f.id] = f
	for _, r := range f.path {
		r.flows++
	}
	n.reallocate()
	return f
}

// ActiveFlows returns the number of in-flight flows.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// progressAll advances every active flow's remaining volume to the current
// time using its rate since the last update.
func (n *Net) progressAll() {
	now := n.eng.Now()
	for _, f := range n.flows {
		elapsed := float64(now - f.lastUpdate)
		if elapsed > 0 {
			f.remaining -= elapsed * f.rate
			if f.remaining < 1e-9 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// reallocate computes the max-min fair rate for every active flow
// (water-filling with per-flow caps) and reschedules completion events.
//
// Water-filling: repeatedly find the binding constraint — either the
// bottleneck resource (smallest per-unfrozen-flow fair share) or an unfrozen
// flow whose own cap is below that share — freeze the affected flows,
// subtract their consumption from every resource they cross, repeat.
func (n *Net) reallocate() {
	if len(n.flows) == 0 {
		for _, r := range n.resources {
			r.settle(n.eng.Now(), 0)
		}
		return
	}
	residual := make([]float64, len(n.resources))
	unfrozen := make([]int, len(n.resources))
	for _, r := range n.resources {
		residual[r.id] = r.capacity
		unfrozen[r.id] = 0
	}
	// Deterministic iteration order: flow ids are monotonically assigned.
	ids := make([]int, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sortInts(ids)
	frozen := make(map[int]bool, len(n.flows))
	for _, id := range ids {
		for _, r := range n.flows[id].path {
			unfrozen[r.id]++
		}
	}
	freeze := func(f *Flow, rate float64) {
		f.rate = rate
		frozen[f.id] = true
		for _, rr := range f.path {
			residual[rr.id] -= rate
			if residual[rr.id] < 0 {
				residual[rr.id] = 0
			}
			unfrozen[rr.id]--
		}
	}
	for len(frozen) < len(ids) {
		// Bottleneck-resource share.
		share := math.Inf(1)
		for _, r := range n.resources {
			if unfrozen[r.id] == 0 {
				continue
			}
			if s := residual[r.id] / float64(unfrozen[r.id]); s < share {
				share = s
			}
		}
		// A flow whose cap is at or below the share binds first.
		capBound := false
		for _, id := range ids {
			f := n.flows[id]
			if !frozen[id] && f.maxRate <= share {
				freeze(f, f.maxRate)
				capBound = true
			}
		}
		if capBound {
			continue // resource shares changed; recompute
		}
		if math.IsInf(share, 1) {
			// Remaining flows cross no contended resource; cannot happen
			// because every flow has a non-empty path, but guard anyway.
			for _, id := range ids {
				if !frozen[id] {
					n.flows[id].rate = n.flows[id].maxRate
					frozen[id] = true
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck resource.
		progressed := false
		for _, r := range n.resources {
			if unfrozen[r.id] == 0 {
				continue
			}
			if residual[r.id]/float64(unfrozen[r.id]) > share*(1+1e-12) {
				continue
			}
			for _, id := range ids {
				f := n.flows[id]
				if frozen[id] || !crosses(f, r) {
					continue
				}
				freeze(f, share)
				progressed = true
			}
		}
		if !progressed {
			panic("sim: max-min water-filling made no progress")
		}
	}
	// Settle per-resource rate integrals with the fresh allocation.
	now := n.eng.Now()
	sums := make([]float64, len(n.resources))
	for _, id := range ids {
		f := n.flows[id]
		for _, res := range f.path {
			sums[res.id] += f.rate
		}
	}
	for _, res := range n.resources {
		res.settle(now, sums[res.id])
	}
	// Reschedule completions, cancelling superseded events so they neither
	// fire nor inflate the run's final time.
	for _, id := range ids {
		f := n.flows[id]
		f.pending.Stop()
		var dt Time
		if f.rate <= 0 || math.IsInf(f.rate, 1) {
			dt = 0
		} else {
			dt = Time(math.Ceil(f.remaining / f.rate))
		}
		f.pending = n.eng.After(dt, func() { n.maybeFinish(f) })
	}
}

// maybeFinish completes f when its completion event fires.
func (n *Net) maybeFinish(f *Flow) {
	if f.finished {
		return
	}
	n.progressAll()
	if f.remaining > 1e-6 {
		// Rounding of Time(ceil(...)) can fire marginally early after a
		// reallocation; reschedule for the residue.
		dt := Time(math.Ceil(f.remaining / f.rate))
		if dt < 1 {
			dt = 1
		}
		f.pending = n.eng.After(dt, func() { n.maybeFinish(f) })
		return
	}
	f.finished = true
	f.remaining = 0
	delete(n.flows, f.id)
	for _, r := range f.path {
		r.flows--
	}
	n.TotalBytes += f.volume
	n.reallocate()
	if f.done != nil {
		f.done()
	}
}

func crosses(f *Flow, r *Resource) bool {
	for _, rr := range f.path {
		if rr == r {
			return true
		}
	}
	return false
}

// sortInts is a tiny insertion sort; flow counts are small (≤ cores) so this
// beats pulling in package sort on the hot path.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
