package sim

import (
	"fmt"
	"math"
)

// Resource is a shared capacity, in bytes per nanosecond (numerically equal
// to GB/s), over which fluid flows compete: a socket's memory controller or
// an inter-socket link. Resources are created through Net.NewResource so the
// network can index them densely.
type Resource struct {
	id       int
	name     string
	capacity float64 // bytes/ns
	flows    int     // active flows crossing this resource (bookkeeping)

	// Utilization accounting: byte-time integral of allocated rate.
	carried    float64 // total bytes carried so far
	rate       float64 // currently allocated rate (sum over flows)
	lastUpdate Time
}

// Carried returns the total bytes the resource has transported so far,
// progressed to the given time.
func (r *Resource) Carried(now Time) float64 {
	return r.carried + r.rate*float64(now-r.lastUpdate)
}

// Utilization returns the average fraction of capacity used over [0, now].
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return r.Carried(now) / (r.capacity * float64(now))
}

// settle folds the running rate into the carried integral at time now.
func (r *Resource) settle(now Time, newRate float64) {
	r.carried += r.rate * float64(now-r.lastUpdate)
	r.rate = newRate
	r.lastUpdate = now
}

// Name returns the diagnostic name given at creation.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes per nanosecond.
func (r *Resource) Capacity() float64 { return r.capacity }

// ActiveFlows returns the number of flows currently crossing the resource.
func (r *Resource) ActiveFlows() int { return r.flows }

// Flow is an in-flight transfer of a byte volume across a path of resources.
//
// Flow structs are recycled: the *Flow returned by StartFlow is valid for
// inspection while the flow is active and remains readable after completion,
// but only until the next StartFlow call on the same Net — at that point the
// struct may be reused for the new flow. Callers that need post-completion
// data should copy it out in the done callback.
type Flow struct {
	id         int
	volume     float64 // total bytes of the transfer
	remaining  float64 // bytes left to move
	rate       float64 // bytes/ns, current max-min allocation
	maxRate    float64 // per-flow rate cap (source concurrency limit)
	path       []*Resource
	mask       uint64 // bitset over path resource IDs; valid when !wide
	wide       bool   // some path resource has id >= 64: fall back to scans
	lastUpdate Time
	done       func()
	net        *Net
	finished   bool

	// Reallocation / completion-tracking state, owned by Net.
	frozen   bool   // scratch flag for the water-filling loop
	idx      int    // position in Net.active
	deadline Time   // completion event time as of the last reallocation
	dseq     uint64 // tiebreaker mirroring engine event seq order
	starved  bool   // rate is 0 (or non-finite volume math): no deadline
}

// Volume returns the total byte volume of the transfer.
func (f *Flow) Volume() float64 { return f.volume }

// Remaining returns the bytes not yet transferred, progressed to the current
// simulated time.
func (f *Flow) Remaining() float64 {
	if f.finished {
		return 0
	}
	elapsed := float64(f.net.eng.Now() - f.lastUpdate)
	rem := f.remaining - elapsed*f.rate
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the current fair-share rate in bytes/ns.
func (f *Flow) Rate() float64 { return f.rate }

// crosses reports whether the flow's path includes r — a bitset test when
// every path resource has an ID below 64 (always true for the machines the
// paper evaluates: 2 resources per socket), a linear scan otherwise.
func (f *Flow) crosses(r *Resource) bool {
	if !f.wide {
		if r.id >= 64 {
			return false
		}
		return f.mask&(1<<uint(r.id)) != 0
	}
	for _, rr := range f.path {
		if rr == r {
			return true
		}
	}
	return false
}

// Net is a fluid-flow network bound to an Engine. All methods must be called
// from the engine goroutine (the simulator is single-threaded by design).
type Net struct {
	eng       *Engine
	resources []*Resource
	active    []*Flow // in-flight flows, ascending id (deterministic order)
	freeFlows []*Flow // recycled Flow structs
	nextFlow  int

	// Scratch buffers reused by reallocate, len == len(resources).
	residual []float64
	unfrozen []int
	sums     []float64

	// Single earliest-completion event; completeFn is allocated once so
	// rescheduling never creates a new closure.
	pending    Timer
	completeFn func()
	dcounter   uint64 // deadline assignment counter (see Flow.dseq)

	// TotalBytes accumulates the volume completed through the network,
	// a convenient global traffic counter for statistics.
	TotalBytes float64
}

// NewNet creates an empty flow network driven by eng.
func NewNet(eng *Engine) *Net {
	n := &Net{eng: eng}
	n.completeFn = n.onComplete
	return n
}

// NewResource registers a shared resource with the given capacity in
// bytes per nanosecond (== GB/s). Capacity must be positive.
func (n *Net) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with non-positive capacity %v", name, capacity))
	}
	r := &Resource{id: len(n.resources), name: name, capacity: capacity}
	n.resources = append(n.resources, r)
	n.residual = append(n.residual, 0)
	n.unfrozen = append(n.unfrozen, 0)
	n.sums = append(n.sums, 0)
	return r
}

// StartFlow begins moving bytes across path and calls done (if non-nil) when
// the last byte arrives. A flow with an empty path or zero bytes completes
// after zero simulated time (via an immediate event, preserving event order).
// The returned flow can be inspected but not cancelled; flows always run to
// completion. See Flow for the handle-recycling contract.
func (n *Net) StartFlow(bytes float64, path []*Resource, done func()) *Flow {
	return n.StartFlowCapped(bytes, path, math.Inf(1), done)
}

// StartFlowCapped is StartFlow with an additional per-flow rate ceiling in
// bytes/ns. The cap models a source that cannot saturate the path on its own
// — e.g. a single core whose outstanding-miss window limits its achievable
// memory bandwidth. A non-positive cap panics.
func (n *Net) StartFlowCapped(bytes float64, path []*Resource, maxRate float64, done func()) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative flow volume %v", bytes))
	}
	if maxRate <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow rate cap %v", maxRate))
	}
	if bytes == 0 || len(path) == 0 {
		// Immediate completion; never enters the active set or the pool.
		n.nextFlow++
		f := &Flow{
			id:         n.nextFlow,
			volume:     bytes,
			maxRate:    maxRate,
			path:       path,
			lastUpdate: n.eng.Now(),
			net:        n,
			finished:   true,
		}
		n.TotalBytes += bytes
		if done != nil {
			n.eng.After(0, done)
		} else {
			n.eng.After(0, noop)
		}
		return f
	}
	n.nextFlow++
	var f *Flow
	if k := len(n.freeFlows); k > 0 {
		f = n.freeFlows[k-1]
		n.freeFlows = n.freeFlows[:k-1]
	} else {
		f = &Flow{}
	}
	*f = Flow{
		id:         n.nextFlow,
		volume:     bytes,
		remaining:  bytes,
		maxRate:    maxRate,
		path:       path,
		lastUpdate: n.eng.Now(),
		done:       done,
		net:        n,
	}
	for _, r := range f.path {
		if r.id >= 64 {
			f.wide = true
			break
		}
		f.mask |= 1 << uint(r.id)
	}
	n.progressAll()
	f.idx = len(n.active)
	n.active = append(n.active, f) // ids are monotonic: append keeps order
	for _, r := range f.path {
		r.flows++
	}
	n.reallocate()
	return f
}

// noop keeps zero-work flows on the event queue (their completion still
// occupies one engine step, preserving event ordering) without allocating a
// closure per flow.
func noop() {}

// ActiveFlows returns the number of in-flight flows.
func (n *Net) ActiveFlows() int { return len(n.active) }

// progressAll advances every active flow's remaining volume to the current
// time using its rate since the last update.
func (n *Net) progressAll() {
	now := n.eng.Now()
	for _, f := range n.active {
		elapsed := float64(now - f.lastUpdate)
		if elapsed > 0 {
			f.remaining -= elapsed * f.rate
			if f.remaining < 1e-9 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// freezeFlow fixes a flow's rate and removes its demand from the residual
// capacities. Part of the water-filling loop in reallocate.
func (n *Net) freezeFlow(f *Flow, rate float64) {
	f.rate = rate
	f.frozen = true
	for _, rr := range f.path {
		n.residual[rr.id] -= rate
		if n.residual[rr.id] < 0 {
			n.residual[rr.id] = 0
		}
		n.unfrozen[rr.id]--
	}
}

// reallocate computes the max-min fair rate for every active flow
// (water-filling with per-flow caps) and reschedules the single completion
// event.
//
// Water-filling: repeatedly find the binding constraint — either the
// bottleneck resource (smallest per-unfrozen-flow fair share) or an unfrozen
// flow whose own cap is below that share — freeze the affected flows,
// subtract their consumption from every resource they cross, repeat.
//
// Everything here runs on per-Net scratch buffers and dense slices: no
// allocation, no map iteration, no sorting. Flows are visited in ascending
// ID order (the order of n.active), which both makes runs bit-reproducible
// and matches the order completion timers were historically scheduled in.
func (n *Net) reallocate() {
	now := n.eng.Now()
	if len(n.active) == 0 {
		for _, r := range n.resources {
			r.settle(now, 0)
		}
		n.pending.Stop()
		n.pending = Timer{}
		return
	}
	residual, unfrozen := n.residual, n.unfrozen
	for i, r := range n.resources {
		residual[i] = r.capacity
		unfrozen[i] = 0
	}
	for _, f := range n.active {
		f.frozen = false
		for _, r := range f.path {
			unfrozen[r.id]++
		}
	}
	left := len(n.active)
	for left > 0 {
		// Bottleneck-resource share.
		share := math.Inf(1)
		for id := range n.resources {
			if unfrozen[id] == 0 {
				continue
			}
			if s := residual[id] / float64(unfrozen[id]); s < share {
				share = s
			}
		}
		// A flow whose cap is at or below the share binds first.
		capBound := false
		for _, f := range n.active {
			if !f.frozen && f.maxRate <= share {
				n.freezeFlow(f, f.maxRate)
				left--
				capBound = true
			}
		}
		if capBound {
			continue // resource shares changed; recompute
		}
		if math.IsInf(share, 1) {
			// Remaining flows cross no contended resource; cannot happen
			// because every flow has a non-empty path, but guard anyway.
			for _, f := range n.active {
				if !f.frozen {
					f.rate = f.maxRate
					f.frozen = true
					left--
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck resource.
		progressed := false
		for _, r := range n.resources {
			if unfrozen[r.id] == 0 {
				continue
			}
			if residual[r.id]/float64(unfrozen[r.id]) > share*(1+1e-12) {
				continue
			}
			for _, f := range n.active {
				if f.frozen || !f.crosses(r) {
					continue
				}
				n.freezeFlow(f, share)
				left--
				progressed = true
			}
		}
		if !progressed {
			panic("sim: max-min water-filling made no progress")
		}
	}
	// Settle per-resource rate integrals with the fresh allocation.
	sums := n.sums
	for i := range sums {
		sums[i] = 0
	}
	for _, f := range n.active {
		for _, res := range f.path {
			sums[res.id] += f.rate
		}
	}
	for _, res := range n.resources {
		res.settle(now, sums[res.id])
	}
	// Assign fresh completion deadlines in flow-ID order — mirroring the
	// (time, seq) order per-flow timers would have been scheduled in — and
	// arm the single completion event for the earliest one.
	for _, f := range n.active {
		dt, ok := completionDelay(f.remaining, f.rate)
		n.dcounter++
		f.dseq = n.dcounter
		f.starved = !ok
		if ok {
			f.deadline = now + dt
		}
	}
	n.armCompletion()
}

// completionDelay returns the event delay for a flow with the given
// remaining volume and rate. ok is false when the flow is starved (rate 0 —
// it will be re-examined at the next reallocation) so the caller never
// divides into +Inf and never converts a non-finite float to Time.
func completionDelay(remaining, rate float64) (dt Time, ok bool) {
	if rate <= 0 {
		return 0, false
	}
	if math.IsInf(rate, 1) {
		return 0, true
	}
	d := math.Ceil(remaining / rate)
	if d >= math.MaxInt64 {
		// Degenerate rate underflow; clamp rather than overflow Time.
		return 0, false
	}
	return Time(d), true
}

// earliestDue returns the active flow with the smallest (deadline, dseq) —
// the flow whose dedicated timer would fire next under a one-event-per-flow
// design. Starved flows have no deadline and are skipped. Both armCompletion
// and onComplete must select by this exact rule, or the armed event would
// belong to a different flow than the one processed when it fires.
func (n *Net) earliestDue() *Flow {
	var best *Flow
	for _, f := range n.active {
		if f.starved {
			continue
		}
		if best == nil || f.deadline < best.deadline ||
			(f.deadline == best.deadline && f.dseq < best.dseq) {
			best = f
		}
	}
	return best
}

// armCompletion (re)schedules the Net's single completion event for the
// earliest flow deadline, if any flow has one.
func (n *Net) armCompletion() {
	best := n.earliestDue()
	n.pending.Stop()
	if best == nil {
		n.pending = Timer{}
		return
	}
	n.pending = n.eng.At(best.deadline, n.completeFn)
}

// onComplete fires when the earliest flow deadline arrives. It processes
// exactly the flow that deadline belongs to — the same flow whose dedicated
// timer would have fired under a one-event-per-flow design — finishing it,
// or, when ceil rounding made the event marginally early, pushing that
// flow's deadline out by the residue (at least 1ns) and re-arming.
func (n *Net) onComplete() {
	n.pending = Timer{}
	n.progressAll()
	now := n.eng.Now()
	due := n.earliestDue()
	if due == nil {
		return
	}
	if due.remaining > 1e-6 {
		dt, ok := completionDelay(due.remaining, due.rate)
		if !ok {
			due.starved = true // re-examined at the next reallocation
		} else {
			if dt < 1 {
				dt = 1
			}
			n.dcounter++
			due.deadline = now + dt
			due.dseq = n.dcounter
		}
		n.armCompletion()
		return
	}
	n.finish(due)
}

// finish completes f: removes it from the active set, reallocates the
// remaining flows (which re-arms the completion event), runs the callback,
// and recycles the struct.
func (n *Net) finish(f *Flow) {
	f.finished = true
	f.remaining = 0
	n.removeActive(f)
	for _, r := range f.path {
		r.flows--
	}
	n.TotalBytes += f.volume
	n.reallocate()
	done := f.done
	f.done = nil
	f.path = nil
	if done != nil {
		done()
	}
	n.freeFlows = append(n.freeFlows, f)
}

// removeActive deletes f from the dense active slice, preserving the
// ascending-ID order. Active counts are small (bounded by in-flight
// transfers, at most a few per core), so the shift is cheaper than any
// order-breaking trick plus re-sort.
func (n *Net) removeActive(f *Flow) {
	i := f.idx
	copy(n.active[i:], n.active[i+1:])
	n.active = n.active[:len(n.active)-1]
	for ; i < len(n.active); i++ {
		n.active[i].idx = i
	}
}
