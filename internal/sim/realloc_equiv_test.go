package sim

import (
	"fmt"
	"math"
	"testing"

	"numadag/internal/xrand"
)

// Full-vs-incremental reallocation equivalence harness.
//
// A production Net (deferred, batched, CSR/worklist water-filling) and a
// reference Net (eager per-event recompute through the naive seed ladder,
// see realloc_reference_test.go) are driven through an identical flow-churn
// script on two engines, stopped at every churn instant, and compared
// bit-for-bit: simulated clock, executed steps, queued events, every
// completion time, and the rate / remaining-bytes / deadline / starvation
// state of every in-flight flow. Nothing is allowed to drift by even an
// ulp — the determinism goldens pin physics to the nanosecond, and a
// one-ulp rate difference becomes a one-nanosecond ceil difference becomes
// a different schedule.

// churnOp is one scripted StartFlowCapped call.
type churnOp struct {
	at   Time
	vol  float64
	path []int // resource indices
	maxR float64
}

// scriptRun drives one Net through a churn script.
type scriptRun struct {
	eng    *Engine
	net    *Net
	flows  []*Flow
	doneAt []Time  // completion instant per op, -1 while in flight
	order  []int32 // callback interleaving: op i start = i<<1, done = i<<1|1
}

func startScript(mk func(*Engine) *Net, caps []float64, ops []churnOp) *scriptRun {
	eng := NewEngine()
	net := mk(eng)
	rs := make([]*Resource, len(caps))
	for i, c := range caps {
		rs[i] = net.NewResource(fmt.Sprintf("r%d", i), c)
	}
	sr := &scriptRun{eng: eng, net: net}
	sr.flows = make([]*Flow, len(ops))
	sr.doneAt = make([]Time, len(ops))
	for i := range sr.doneAt {
		sr.doneAt[i] = -1
	}
	for i, op := range ops {
		i, op := i, op
		path := make([]*Resource, len(op.path))
		for j, id := range op.path {
			path[j] = rs[id]
		}
		eng.At(op.at, func() {
			sr.order = append(sr.order, int32(i)<<1)
			sr.flows[i] = net.StartFlowCapped(op.vol, path, op.maxR, func() {
				sr.doneAt[i] = eng.Now()
				sr.order = append(sr.order, int32(i)<<1|1)
			})
		})
	}
	return sr
}

// compareState asserts bit-exact equality of the two runs' observable and
// completion-relevant state. Called between instants, where both nets are
// flushed.
func compareState(t *testing.T, tag string, a, b *scriptRun) {
	t.Helper()
	if a.eng.Now() != b.eng.Now() {
		t.Fatalf("%s: clock diverged: production %v, reference %v", tag, a.eng.Now(), b.eng.Now())
	}
	if a.eng.Steps() != b.eng.Steps() {
		t.Fatalf("%s: executed steps diverged: production %d, reference %d", tag, a.eng.Steps(), b.eng.Steps())
	}
	if a.eng.Pending() != b.eng.Pending() {
		t.Fatalf("%s: pending events diverged: production %d, reference %d", tag, a.eng.Pending(), b.eng.Pending())
	}
	if math.Float64bits(a.net.TotalBytes) != math.Float64bits(b.net.TotalBytes) {
		t.Fatalf("%s: TotalBytes diverged: production %v, reference %v", tag, a.net.TotalBytes, b.net.TotalBytes)
	}
	if len(a.order) != len(b.order) {
		t.Fatalf("%s: callback count diverged: production %d, reference %d", tag, len(a.order), len(b.order))
	}
	for i := range a.order {
		if a.order[i] != b.order[i] {
			t.Fatalf("%s: callback interleaving diverged at %d: production op %d/%d, reference op %d/%d",
				tag, i, a.order[i]>>1, a.order[i]&1, b.order[i]>>1, b.order[i]&1)
		}
	}
	for i := range a.doneAt {
		if a.doneAt[i] != b.doneAt[i] {
			t.Fatalf("%s: flow %d completion diverged: production %v, reference %v", tag, i, a.doneAt[i], b.doneAt[i])
		}
		if a.doneAt[i] >= 0 || a.flows[i] == nil {
			continue // finished (handle may be recycled) or not yet started
		}
		fa, fb := a.flows[i], b.flows[i]
		if fa.finished != fb.finished {
			t.Fatalf("%s: flow %d finished flag diverged", tag, i)
		}
		if fa.finished {
			continue
		}
		if math.Float64bits(fa.rate) != math.Float64bits(fb.rate) {
			t.Fatalf("%s: flow %d rate diverged: production %x (%v), reference %x (%v)",
				tag, i, math.Float64bits(fa.rate), fa.rate, math.Float64bits(fb.rate), fb.rate)
		}
		if math.Float64bits(fa.remaining) != math.Float64bits(fb.remaining) {
			t.Fatalf("%s: flow %d remaining diverged: production %v, reference %v", tag, i, fa.remaining, fb.remaining)
		}
		if fa.starved != fb.starved {
			t.Fatalf("%s: flow %d starvation diverged: production %v, reference %v", tag, i, fa.starved, fb.starved)
		}
		if !fa.starved && fa.deadline != fb.deadline {
			t.Fatalf("%s: flow %d deadline diverged: production %v, reference %v", tag, i, fa.deadline, fb.deadline)
		}
	}
}

// runEquivalence executes the script on a production and a reference net in
// lockstep, comparing at every churn instant and after the drain.
func runEquivalence(t *testing.T, caps []float64, ops []churnOp) {
	t.Helper()
	prod := startScript(NewNet, caps, ops)
	ref := startScript(newReferenceNet, caps, ops)
	var last Time = -1
	for _, op := range ops {
		if op.at == last {
			continue // one checkpoint per instant
		}
		last = op.at
		prod.eng.RunUntil(op.at)
		ref.eng.RunUntil(op.at)
		compareState(t, fmt.Sprintf("t=%v", op.at), prod, ref)
	}
	prod.eng.Run()
	ref.eng.Run()
	compareState(t, "drained", prod, ref)
	if prod.eng.Pending() != 0 || prod.net.ActiveFlows() != 0 {
		t.Fatalf("production net did not drain: %d events, %d flows", prod.eng.Pending(), prod.net.ActiveFlows())
	}
	for i, d := range prod.doneAt {
		if d < 0 {
			t.Fatalf("flow %d never completed", i)
		}
	}
}

// Machine-model constants: the bullion's per-socket controller and port
// bandwidths and the three core-concurrency caps (local, 1-hop, 2-hop).
var (
	machineCaps = func() []float64 {
		caps := make([]float64, 16)
		for s := 0; s < 8; s++ {
			caps[2*s] = 30.0   // memory controller
			caps[2*s+1] = 12.0 // interconnect port
		}
		return caps
	}()
	coreBW = []float64{640.0 / 90, 640.0 / 125, 640.0 / 160}
)

// buildChurnCase generates a deterministic churn script. style selects the
// network/traffic shape; burst controls how many flows share one start
// instant (the same-instant batching stress).
func buildChurnCase(seed, style, nOpsRaw, burstRaw uint64) ([]float64, []churnOp) {
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	nOps := int(nOpsRaw%96) + 4
	burst := int(burstRaw%8) + 1
	var caps []float64
	var ops []churnOp
	now := Time(0)
	pick := func(ids ...int) []int { return ids }
	switch style % 5 {
	case 0:
		// Machine-shaped: per-socket {mc, port} components, capped local and
		// remote transfers — the exact shape rt.fanOutTransfers produces.
		caps = machineCaps
		for len(ops) < nOps {
			now += Time(rng.Intn(2000)) // 0 keeps whole bursts at one instant
			for j := 0; j < burst && len(ops) < nOps; j++ {
				home := rng.Intn(8)
				op := churnOp{at: now, vol: float64(rng.Intn(1 << 20)), maxR: coreBW[rng.Intn(3)]}
				if rng.Intn(3) == 0 {
					op.path = pick(2*home, 2*home+1) // remote: mc + port
				} else {
					op.path = pick(2 * home) // local: mc only
				}
				ops = append(ops, op)
			}
		}
	case 1:
		// Single-link bottleneck: every flow crosses resource 0, most also a
		// private second resource; starvation-prone tiny capacity.
		caps = []float64{1.0 + rng.Float64()}
		for i := 0; i < 6; i++ {
			caps = append(caps, 4.0+8.0*rng.Float64())
		}
		for len(ops) < nOps {
			now += Time(rng.Intn(5000))
			for j := 0; j < burst && len(ops) < nOps; j++ {
				op := churnOp{at: now, vol: float64(1 + rng.Intn(1<<16)), maxR: math.Inf(1)}
				if rng.Intn(4) > 0 {
					op.maxR = 0.25 + 4*rng.Float64()
				}
				if r := rng.Intn(len(caps)); r > 0 {
					op.path = pick(0, r)
				} else {
					op.path = pick(0)
				}
				ops = append(ops, op)
			}
		}
	case 2:
		// Disjoint components with caps straddling each other's fair shares:
		// the float-ordering trap that makes per-component fills diverge from
		// the global ladder; the production fill must take the global rounds.
		caps = []float64{30, 12, 30, 12, 7, 3}
		straddle := []float64{640.0 / 90, 640.0 / 125, 4.0, 2.5, 1.0, 0.6}
		for len(ops) < nOps {
			now += Time(rng.Intn(1500))
			for j := 0; j < burst && len(ops) < nOps; j++ {
				comp := rng.Intn(3)
				op := churnOp{at: now, vol: float64(1 + rng.Intn(1<<18)), maxR: straddle[rng.Intn(len(straddle))]}
				if rng.Intn(2) == 0 {
					op.path = pick(2 * comp)
				} else {
					op.path = pick(2*comp, 2*comp+1)
				}
				ops = append(ops, op)
			}
		}
	case 3:
		// Random overlapping paths: components merge and split as flows come
		// and go; mixes capped, uncapped and zero-byte flows.
		nr := 3 + rng.Intn(10)
		for i := 0; i < nr; i++ {
			caps = append(caps, 0.5+31.5*rng.Float64())
		}
		for len(ops) < nOps {
			now += Time(rng.Intn(3000))
			for j := 0; j < burst && len(ops) < nOps; j++ {
				op := churnOp{at: now, vol: float64(rng.Intn(1 << 19)), maxR: math.Inf(1)}
				if rng.Intn(3) > 0 {
					op.maxR = 0.1 + 16*rng.Float64()
				}
				k := 1 + rng.Intn(3)
				seen := map[int]bool{}
				for len(op.path) < k {
					r := rng.Intn(nr)
					if !seen[r] {
						seen[r] = true
						op.path = append(op.path, r)
					}
				}
				ops = append(ops, op)
			}
		}
	default:
		// Completion-wave stress: equal volumes on shared resources, so many
		// flows finish at the same nanosecond and the finish side of batching
		// is exercised as hard as the start side.
		caps = []float64{16, 16, 8}
		for len(ops) < nOps {
			now += Time(rng.Intn(800))
			vol := float64(1024 * (1 + rng.Intn(64)))
			for j := 0; j < burst && len(ops) < nOps; j++ {
				op := churnOp{at: now, vol: vol, maxR: math.Inf(1)}
				op.path = pick(rng.Intn(3))
				ops = append(ops, op)
			}
		}
	}
	return caps, ops
}

// TestReallocateEquivalenceScripted pins hand-written corners: same-instant
// fan-out bursts, the staggered-arrival shape, cap-straddling disjoint
// components, and a zero-byte / empty-path mix.
func TestReallocateEquivalenceScripted(t *testing.T) {
	mc, port := 0, 1
	t.Run("fanout-burst", func(t *testing.T) {
		// One task's read phase: four transfers at one instant, two sockets.
		runEquivalence(t, machineCaps, []churnOp{
			{at: 0, vol: 1 << 20, path: []int{2 * 0}, maxR: coreBW[0]},
			{at: 0, vol: 3 << 18, path: []int{2 * 1, 2*1 + 1}, maxR: coreBW[1]},
			{at: 0, vol: 5 << 16, path: []int{2 * 1, 2*1 + 1}, maxR: coreBW[2]},
			{at: 0, vol: 9 << 14, path: []int{2 * 0}, maxR: coreBW[0]},
			{at: 977, vol: 1 << 19, path: []int{2 * 0}, maxR: coreBW[0]},
			{at: 977, vol: 1 << 19, path: []int{2 * 2}, maxR: coreBW[0]},
		})
	})
	t.Run("staggered", func(t *testing.T) {
		runEquivalence(t, []float64{8}, []churnOp{
			{at: 0, vol: 800, path: []int{mc}, maxR: math.Inf(1)},
			{at: 50, vol: 400, path: []int{mc}, maxR: math.Inf(1)},
			{at: 50, vol: 400, path: []int{mc}, maxR: 3},
		})
	})
	t.Run("cap-straddle-components", func(t *testing.T) {
		// Two disjoint components; component B's share (4.0) splits component
		// A's cap-freeze batch between rounds. The global ladder handles both
		// identically in production and reference by construction.
		runEquivalence(t, []float64{30, 12}, []churnOp{
			{at: 0, vol: 1 << 18, path: []int{mc}, maxR: 640.0 / 90},
			{at: 0, vol: 1 << 18, path: []int{mc}, maxR: 640.0 / 160},
			{at: 0, vol: 1 << 16, path: []int{port}, maxR: 4.0},
			{at: 0, vol: 1 << 16, path: []int{port}, maxR: 4.0},
			{at: 0, vol: 1 << 16, path: []int{port}, maxR: 4.0},
			{at: 311, vol: 1 << 15, path: []int{mc}, maxR: math.Inf(1)},
		})
	})
	t.Run("zero-work", func(t *testing.T) {
		runEquivalence(t, []float64{4}, []churnOp{
			{at: 0, vol: 0, path: []int{mc}, maxR: math.Inf(1)},
			{at: 0, vol: 4096, path: []int{mc}, maxR: math.Inf(1)},
			{at: 0, vol: 100, path: nil, maxR: 1},
			{at: 1024, vol: 0, path: nil, maxR: math.Inf(1)},
		})
	})
}

// TestSameInstantTieOrderMatchesEager pins the tie rank of the deferred
// completion event: a user event scheduled *after* a StartFlow in the same
// instant, landing exactly on the flow's completion deadline, must still
// run after the flow's done callback — the order the eager per-churn
// recompute produced, preserved by noteChurn claiming the completion
// event's seq at churn time and the flush only rescheduling it
// (Engine.Reschedule keeps the seq).
func TestSameInstantTieOrderMatchesEager(t *testing.T) {
	run := func(mk func(*Engine) *Net) []string {
		var log []string
		e := NewEngine()
		n := mk(e)
		r := n.NewResource("r", 10)
		e.At(0, func() {
			// 1000 bytes at 10 B/ns: deadline exactly t=100.
			n.StartFlow(1000, []*Resource{r}, func() { log = append(log, "flow-done") })
			e.At(100, func() { log = append(log, "user-event") })
		})
		e.Run()
		return log
	}
	prod := run(NewNet)
	ref := run(newReferenceNet)
	if len(prod) != 2 || len(ref) != 2 {
		t.Fatalf("expected two callbacks each: production %v, reference %v", prod, ref)
	}
	for i := range prod {
		if prod[i] != ref[i] {
			t.Fatalf("same-instant tie order diverged: production %v, reference %v", prod, ref)
		}
	}
	if prod[0] != "flow-done" {
		t.Fatalf("completion lost its tie rank: order %v, want flow-done first", prod)
	}
}

// TestReallocateEquivalenceRandom sweeps the generator across seeds and all
// styles; the fuzz target FuzzReallocate explores the same space
// coverage-guided.
func TestReallocateEquivalenceRandom(t *testing.T) {
	for style := uint64(0); style < 5; style++ {
		for seed := uint64(1); seed <= 6; seed++ {
			caps, ops := buildChurnCase(seed, style, 64+seed*13, seed)
			t.Run(fmt.Sprintf("style%d/seed%d", style, seed), func(t *testing.T) {
				runEquivalence(t, caps, ops)
			})
		}
	}
}
