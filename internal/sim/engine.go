// Package sim implements the deterministic discrete-event core that stands in
// for the paper's physical machine.
//
// Two layers live here:
//
//   - Engine: an event-heap simulator with integer-nanosecond time. Events
//     scheduled for the same instant fire in scheduling order, which makes
//     every run bit-reproducible.
//   - Net: a fluid-flow network on top of Engine. A Flow is a volume of bytes
//     crossing a set of shared Resources (memory controllers, inter-socket
//     links); the rate of every active flow is the max-min fair allocation
//     over those resources, recomputed whenever a flow starts or finishes.
//
// The fluid model is the standard substitute for cycle-level memory-system
// simulation when the quantities of interest are bandwidth contention and
// completion times rather than per-request behaviour; it is what lets an
// 8-socket bullion S16 run inside a unit test.
//
// # Hot-path design
//
// Both layers are engineered for allocation-free steady-state operation —
// the reallocation loop is >half the CPU of every paper-scale sweep, so the
// structures are dense and recycled rather than pointer-built per call:
//
//   - The event queue is an indexed binary heap of slot IDs over a value
//     arena ([]event). Slots are recycled through a free list, Timer handles
//     are (slot, generation) values so Stop after reuse is a safe no-op, and
//     Stop removes the slot from the heap immediately — the heap never holds
//     cancelled events, so Pending is len(heap) and Step never skips.
//   - Net keeps active flows in a dense slice ordered by ascending flow ID
//     (the deterministic iteration order), reuses per-resource scratch
//     buffers across reallocate calls, and answers "does flow f cross
//     resource r" with a bitset when the network has at most 64 resources.
//   - Finished Flow structs are recycled through a free list; a *Flow handle
//     is valid for inspection until the next StartFlow call on the same Net
//     after the flow completes.
//   - Instead of one completion timer per flow (cancelled and rescheduled on
//     every reallocation), the Net keeps a single earliest-completion event.
//     Per-flow deadlines are tracked as plain (Time, sequence) fields; when
//     the event fires, the due flow with the earliest (deadline, sequence)
//     finishes, reallocation recomputes deadlines, and the one event is
//     rescheduled. Completion order is identical to the per-flow-timer
//     design because the engine fires same-instant events in scheduling
//     order and deadlines are assigned in that same order.
//   - Reallocation itself is deferred and batched: flow churn marks the Net
//     dirty and the engine runs registered flush hooks (AddFlusher /
//     RequestFlush) once per instant, just before the clock advances — so a
//     task fanning out transfers, or a wave of same-nanosecond completions,
//     pays for one max-min redistribution instead of one per event. The
//     water-filling pass walks per-resource crossing lists (CSR) and
//     shrinking worklists instead of rescanning all resources x all flows
//     per round, executing bit-for-bit the float operations of the naive
//     ladder it replaced (kept as a test-only reference and enforced by the
//     equivalence suite and FuzzReallocate).
//
// # Determinism contract
//
// For a fixed event schedule, Engine.Run visits events in (time, scheduling
// seq) order and Engine.Steps counts only live events — two identical
// configurations produce bit-identical (Makespan, Steps, TotalBytes)
// triples. The top-level determinism suite (determinism_test.go) golden-
// checks that triple for every app x policy x seed; any change to this
// package that moves those goldens is a behaviour change, not an
// optimisation.
package sim

import (
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, for readable configuration code.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time as seconds with millisecond precision for small
// values and full nanoseconds otherwise.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one arena slot. A slot is live while pos >= 0; gen increments on
// every release so stale Timer handles can never touch a recycled slot.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among same-instant events
	fn  func()
	gen uint32
	pos int32 // index in Engine.heap, -1 when free
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    Time
	slots  []event // value arena; heap entries index into it
	free   []int32 // recycled slot IDs
	heap   []int32 // binary heap of live slot IDs, ordered by (at, seq)
	seq    uint64
	nSteps uint64

	// End-of-instant flush hooks. A subsystem that batches same-instant
	// work (the fluid network coalescing flow churn into one reallocation)
	// registers a flusher once and calls RequestFlush when it has deferred
	// work; the engine runs the flushers before the clock advances past the
	// current instant and before reporting the queue drained. Flushers run
	// in registration order, keeping runs deterministic.
	flushers  []func()
	needFlush bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Timer is a value handle to a scheduled event that can be cancelled before
// it fires. The zero Timer is inert. Cancelled events are removed from the
// queue immediately, so stale timers neither stretch a run's final time nor
// occupy heap space.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Stop cancels the event if it has not fired yet. Stopping an already-fired
// or already-stopped timer (or the zero Timer) is a no-op.
func (t Timer) Stop() {
	if t.e == nil {
		return
	}
	s := &t.e.slots[t.slot]
	if s.gen != t.gen || s.pos < 0 {
		return // already fired, stopped, or slot recycled
	}
	t.e.removeAt(int(s.pos))
}

// less orders live slots by (at, seq).
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	id := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(id, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.slots[e.heap[i]].pos = int32(i)
		i = parent
	}
	e.heap[i] = id
	e.slots[id].pos = int32(i)
}

// siftDown reports whether the element at i moved down.
func (e *Engine) siftDown(i int) bool {
	id := e.heap[i]
	start := i
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && e.less(e.heap[r], e.heap[l]) {
			child = r
		}
		if !e.less(e.heap[child], id) {
			break
		}
		e.heap[i] = e.heap[child]
		e.slots[e.heap[i]].pos = int32(i)
		i = child
	}
	e.heap[i] = id
	e.slots[id].pos = int32(i)
	return i > start
}

// removeAt unlinks the slot at heap position i and releases it to the free
// list.
func (e *Engine) removeAt(i int) {
	id := e.heap[i]
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.slots[e.heap[i]].pos = int32(i)
	}
	e.heap = e.heap[:last]
	if i != last && i < len(e.heap) {
		// The moved entry may need to travel either direction.
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	s := &e.slots[id]
	s.fn = nil // release the closure for GC
	s.pos = -1
	s.gen++
	e.free = append(e.free, id)
}

// At schedules fn to run at absolute time t and returns a cancellation
// handle. Scheduling in the past panics: it is always a simulator bug, never
// a recoverable condition.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e.seq++
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, event{pos: -1})
		id = int32(len(e.slots) - 1)
	}
	s := &e.slots[id]
	s.at, s.seq, s.fn = t, e.seq, fn
	s.pos = int32(len(e.heap))
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	return Timer{e: e, slot: id, gen: s.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Reschedule moves a still-pending event to a new absolute time, keeping
// its scheduling seq — and with it the event's rank among same-instant
// ties. It reports whether the timer was live; a fired, stopped or zero
// timer is left untouched. The fluid network uses this to claim its
// completion event's position in the tie order at churn time while fixing
// the actual deadline later, at the end-of-instant flush.
func (e *Engine) Reschedule(t Timer, at Time) bool {
	if t.e == nil {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", at, e.now))
	}
	s := &e.slots[t.slot]
	if s.gen != t.gen || s.pos < 0 {
		return false // already fired, stopped, or slot recycled
	}
	s.at = at
	if !e.siftDown(int(s.pos)) {
		e.siftUp(int(s.pos))
	}
	return true
}

// AddFlusher registers an end-of-instant hook. See Engine.flushers.
func (e *Engine) AddFlusher(fn func()) {
	if fn == nil {
		panic("sim: registering nil flusher")
	}
	e.flushers = append(e.flushers, fn)
}

// RequestFlush asks the engine to run the registered flushers before the
// clock next advances (or before the queue is reported drained). Idempotent
// within an instant; flushers that have nothing deferred must tolerate being
// called anyway.
func (e *Engine) RequestFlush() { e.needFlush = true }

// runFlush runs the registered flushers if a flush was requested, reporting
// whether it did. Flushers may schedule new events, including events at the
// current instant, and may request a further flush (the caller loops).
func (e *Engine) runFlush() bool {
	if !e.needFlush {
		return false
	}
	e.needFlush = false
	for _, fn := range e.flushers {
		fn()
	}
	return true
}

// Step executes the next event, advancing the clock to its timestamp. It
// reports whether an event was executed. (Cancelled events are removed at
// Stop time, so every queued event is live.) Before the clock advances past
// the current instant — and before reporting the queue drained — any
// requested end-of-instant flush runs; flushed work may queue same-instant
// events, which are then executed first.
func (e *Engine) Step() bool {
	for len(e.heap) == 0 || e.slots[e.heap[0]].at > e.now {
		if !e.runFlush() {
			break
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	id := e.heap[0]
	s := &e.slots[id]
	e.now = s.at
	e.nSteps++
	fn := s.fn
	e.removeAt(0)
	fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to min(deadline, last event time). It
// reports whether the queue drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		if len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
			e.Step()
			continue
		}
		// The horizon (or the queue) is exhausted; deferred work may still
		// queue events within it.
		if !e.runFlush() {
			break
		}
	}
	if e.now < deadline && len(e.heap) > 0 {
		e.now = deadline
	}
	return len(e.heap) == 0
}

// Pending returns the number of queued events. Stopped timers leave the
// queue immediately, so this is a live count, in O(1).
func (e *Engine) Pending() int { return len(e.heap) }

// Reset rewinds the engine to time zero with an empty queue while keeping
// its grown arena capacity and — crucially — its registered flushers, so a
// pooled engine/machine pair can serve a fresh run without re-wiring the
// Net's end-of-instant hook. Every slot generation is bumped, so Timer
// handles from the previous run can never touch the recycled slots; a
// stale Stop or Reschedule is a no-op exactly as if the event had fired.
func (e *Engine) Reset() {
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.slots {
		s := &e.slots[i]
		s.fn = nil
		s.pos = -1
		s.gen++
		e.free = append(e.free, int32(i))
	}
	e.now = 0
	e.seq = 0
	e.nSteps = 0
	e.needFlush = false
}
