// Package sim implements the deterministic discrete-event core that stands in
// for the paper's physical machine.
//
// Two layers live here:
//
//   - Engine: an event-heap simulator with integer-nanosecond time. Events
//     scheduled for the same instant fire in scheduling order, which makes
//     every run bit-reproducible.
//   - Net: a fluid-flow network on top of Engine. A Flow is a volume of bytes
//     crossing a set of shared Resources (memory controllers, inter-socket
//     links); the rate of every active flow is the max-min fair allocation
//     over those resources, recomputed whenever a flow starts or finishes.
//
// The fluid model is the standard substitute for cycle-level memory-system
// simulation when the quantities of interest are bandwidth contention and
// completion times rather than per-request behaviour; it is what lets an
// 8-socket bullion S16 run inside a unit test.
//
// # Hot-path design
//
// Both layers are engineered for allocation-free steady-state operation —
// the reallocation loop is >half the CPU of every paper-scale sweep, so the
// structures are dense and recycled rather than pointer-built per call:
//
//   - The event queue is an indexed binary heap of slot IDs over a value
//     arena ([]event). Slots are recycled through a free list, Timer handles
//     are (slot, generation) values so Stop after reuse is a safe no-op, and
//     Stop removes the slot from the heap immediately — the heap never holds
//     cancelled events, so Pending is len(heap) and Step never skips.
//   - Net keeps active flows in a dense slice ordered by ascending flow ID
//     (the deterministic iteration order), reuses per-resource scratch
//     buffers across reallocate calls, and answers "does flow f cross
//     resource r" with a bitset when the network has at most 64 resources.
//   - Finished Flow structs are recycled through a free list; a *Flow handle
//     is valid for inspection until the next StartFlow call on the same Net
//     after the flow completes.
//   - Instead of one completion timer per flow (cancelled and rescheduled on
//     every reallocation), the Net keeps a single earliest-completion event.
//     Per-flow deadlines are tracked as plain (Time, sequence) fields; when
//     the event fires, the due flow with the earliest (deadline, sequence)
//     finishes, reallocation recomputes deadlines, and the one event is
//     rescheduled. Completion order is identical to the per-flow-timer
//     design because the engine fires same-instant events in scheduling
//     order and deadlines are assigned in that same order.
//   - Reallocation itself is deferred and batched: flow churn marks the Net
//     dirty and the engine runs registered flush hooks (AddFlusher /
//     RequestFlush) once per instant, just before the clock advances — so a
//     task fanning out transfers, or a wave of same-nanosecond completions,
//     pays for one max-min redistribution instead of one per event. The
//     water-filling pass walks per-resource crossing lists (CSR) and
//     shrinking worklists instead of rescanning all resources x all flows
//     per round, executing bit-for-bit the float operations of the naive
//     ladder it replaced (kept as a test-only reference and enforced by the
//     equivalence suite and FuzzReallocate).
//
// # Determinism contract
//
// For a fixed event schedule, Engine.Run visits events in (time, scheduling
// seq) order and Engine.Steps counts only live events — two identical
// configurations produce bit-identical (Makespan, Steps, TotalBytes)
// triples. The top-level determinism suite (determinism_test.go) golden-
// checks that triple for every app x policy x seed; any change to this
// package that moves those goldens is a behaviour change, not an
// optimisation.
//
// # Parallel flush determinism contract
//
// The end-of-instant flush is the one phase the engine may execute on more
// than one OS thread. SetParallelism(n) gives the engine a pool of n-1
// worker goroutines (plus the engine goroutine itself) that run the
// *prepare* phase of registered component flushers concurrently; everything
// else — event execution, ordinary flushers, and the *apply* phase below —
// stays on the engine goroutine. Results are bit-identical at every
// parallelism level because of three structural rules:
//
//   - Components are independent. A component flusher (AddComponentFlusher)
//     owns a disjoint state partition: in this package, one Net and the
//     Resources created through it. Nets never share Resources — each
//     machine's fluid network is its own component — so two prepares can
//     never observe each other's writes, and their relative execution order
//     cannot matter. Prepares must not touch the engine (clock, heap,
//     slots); the engine hands each one a Stage instead.
//
//   - Event insertions and reschedules are staged, then merged in component
//     id order. A prepare records its queue mutations (Stop, At,
//     RescheduleOrAt) into its component's Stage buffer. After the barrier —
//     all prepares of the batch joined — the engine applies the staged ops
//     in ascending component id, which is registration order, which is
//     exactly the order a sequential engine would have run the flushers in.
//     Scheduling seq numbers are therefore assigned identically, so the
//     heap (and every same-instant tie it will ever break) ends up
//     bit-identical to the sequential run.
//
//   - Ordinary flushers are barriers. A flusher registered with AddFlusher
//     (the tracer's per-link samplers, which read many components) splits
//     the component batches: every component flusher registered before it
//     is prepared, merged and applied first, then the ordinary flusher runs
//     inline on the engine goroutine. Registration order is thus preserved
//     across the two kinds.
//
// Same-instant events on independent machines ride the same barrier: the
// work they defer (flow churn marking their Nets dirty) is what the batch
// executes, one prepare per dirty component, while the events themselves
// keep firing in (time, seq) order on the engine goroutine. Only dirty
// components are visited — a flush triggered by one machine no longer pays
// a call per registered machine — which is also why RequestComponentFlush
// exists alongside the coarse RequestFlush.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, for readable configuration code.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time as seconds with millisecond precision for small
// values and full nanoseconds otherwise.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one arena slot. A slot is live while pos >= 0; gen increments on
// every release so stale Timer handles can never touch a recycled slot.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among same-instant events
	fn  func()
	gen uint32
	pos int32 // index in Engine.heap, -1 when free
}

// flushEntry is one registered end-of-instant hook, in registration order:
// an ordinary flusher (fn != nil, comp == -1) or a component flusher
// (comp >= 0, indexing Engine.comps).
type flushEntry struct {
	fn   func()
	comp int32
}

// flushComp is the per-component flush state: the concurrent prepare hook,
// its staged event buffer, and the dirty bit RequestComponentFlush sets.
type flushComp struct {
	prepare func(*Stage)
	stage   Stage
	dirty   bool
}

// minParallelFlush is the smallest dirty-component batch worth fanning out
// to the worker pool; below it the pool handoff costs more than the fills
// it would overlap. Any value is determinism-neutral (prepares are
// order-independent and the merge is id-ordered either way).
const minParallelFlush = 2

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    Time
	slots  []event // value arena; heap entries index into it
	free   []int32 // recycled slot IDs
	heap   []int32 // binary heap of live slot IDs, ordered by (at, seq)
	seq    uint64
	nSteps uint64

	// End-of-instant flush hooks. A subsystem that batches same-instant
	// work (the fluid network coalescing flow churn into one reallocation)
	// registers a flusher once and calls RequestFlush (or, for component
	// flushers, RequestComponentFlush) when it has deferred work; the
	// engine runs the flushers before the clock advances past the current
	// instant and before reporting the queue drained. Flushers run in
	// registration order — component prepares may overlap on the worker
	// pool, but their staged effects merge in id (== registration) order —
	// keeping runs deterministic. See the package doc's parallel flush
	// determinism contract.
	flushers  []flushEntry
	comps     []flushComp
	needFlush bool

	// Worker pool for the parallel flush phase (SetParallelism). workCh is
	// nil when the engine is sequential; runQueue/runNext/runWG carry one
	// batch of dirty component ids to the workers. Reset keeps the pool, so
	// a pooled engine keeps its parallelism across runs exactly as it keeps
	// its registered flushers.
	par      int
	nworkers int
	workCh   chan struct{}
	runQueue []int32
	runNext  atomic.Int32
	runWG    sync.WaitGroup
}

// stagedOp kinds. See Stage.
const (
	opStop = iota + 1
	opAt
	opRescheduleOrAt
)

// stagedOp is one recorded event-queue mutation awaiting the merge phase.
type stagedOp struct {
	kind  uint8
	timer Timer
	at    Time
	fn    func()
	out   *Timer
}

// Stage is the staged event buffer handed to a component flusher's prepare
// phase. Prepares run off the engine goroutine when a flush batch is
// parallel, so instead of touching the event heap they record insertions,
// reschedules and cancellations here; the engine applies every component's
// buffer on its own goroutine, in ascending component id order, producing a
// heap bit-identical to a sequential flush. Buffers are per-component and
// reused across flushes (no steady-state allocation).
type Stage struct {
	ops []stagedOp
}

// Stop stages a Timer cancellation.
func (s *Stage) Stop(t Timer) {
	s.ops = append(s.ops, stagedOp{kind: opStop, timer: t})
}

// At stages a new event at absolute time at. If out is non-nil it receives
// the created Timer when the stage is applied (on the engine goroutine,
// before any later component's ops).
func (s *Stage) At(at Time, fn func(), out *Timer) {
	s.ops = append(s.ops, stagedOp{kind: opAt, at: at, fn: fn, out: out})
}

// RescheduleOrAt stages "move timer t to at, keeping its seq; if t is no
// longer live, schedule fn at at instead and deliver the fresh Timer to
// out" — the arm-the-completion-event idiom of Net.flush, staged.
func (s *Stage) RescheduleOrAt(t Timer, at Time, fn func(), out *Timer) {
	s.ops = append(s.ops, stagedOp{kind: opRescheduleOrAt, timer: t, at: at, fn: fn, out: out})
}

// applyStage drains a component's staged ops into the live event queue, in
// recording order. Runs on the engine goroutine only.
func (e *Engine) applyStage(s *Stage) {
	ops := s.ops
	s.ops = s.ops[:0]
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opStop:
			op.timer.Stop()
		case opAt:
			tm := e.At(op.at, op.fn)
			if op.out != nil {
				*op.out = tm
			}
		case opRescheduleOrAt:
			if !e.Reschedule(op.timer, op.at) {
				tm := e.At(op.at, op.fn)
				if op.out != nil {
					*op.out = tm
				}
			}
		}
		op.fn, op.out = nil, nil // release for GC; the buffer is recycled
	}
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Timer is a value handle to a scheduled event that can be cancelled before
// it fires. The zero Timer is inert. Cancelled events are removed from the
// queue immediately, so stale timers neither stretch a run's final time nor
// occupy heap space.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Stop cancels the event if it has not fired yet. Stopping an already-fired
// or already-stopped timer (or the zero Timer) is a no-op.
func (t Timer) Stop() {
	if t.e == nil {
		return
	}
	s := &t.e.slots[t.slot]
	if s.gen != t.gen || s.pos < 0 {
		return // already fired, stopped, or slot recycled
	}
	t.e.removeAt(int(s.pos))
}

// less orders live slots by (at, seq).
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	id := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(id, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.slots[e.heap[i]].pos = int32(i)
		i = parent
	}
	e.heap[i] = id
	e.slots[id].pos = int32(i)
}

// siftDown reports whether the element at i moved down.
func (e *Engine) siftDown(i int) bool {
	id := e.heap[i]
	start := i
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && e.less(e.heap[r], e.heap[l]) {
			child = r
		}
		if !e.less(e.heap[child], id) {
			break
		}
		e.heap[i] = e.heap[child]
		e.slots[e.heap[i]].pos = int32(i)
		i = child
	}
	e.heap[i] = id
	e.slots[id].pos = int32(i)
	return i > start
}

// removeAt unlinks the slot at heap position i and releases it to the free
// list.
func (e *Engine) removeAt(i int) {
	id := e.heap[i]
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.slots[e.heap[i]].pos = int32(i)
	}
	e.heap = e.heap[:last]
	if i != last && i < len(e.heap) {
		// The moved entry may need to travel either direction.
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	s := &e.slots[id]
	s.fn = nil // release the closure for GC
	s.pos = -1
	s.gen++
	e.free = append(e.free, id)
}

// At schedules fn to run at absolute time t and returns a cancellation
// handle. Scheduling in the past panics: it is always a simulator bug, never
// a recoverable condition.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e.seq++
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, event{pos: -1})
		id = int32(len(e.slots) - 1)
	}
	s := &e.slots[id]
	s.at, s.seq, s.fn = t, e.seq, fn
	s.pos = int32(len(e.heap))
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	return Timer{e: e, slot: id, gen: s.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Reschedule moves a still-pending event to a new absolute time, keeping
// its scheduling seq — and with it the event's rank among same-instant
// ties. It reports whether the timer was live; a fired, stopped or zero
// timer is left untouched. The fluid network uses this to claim its
// completion event's position in the tie order at churn time while fixing
// the actual deadline later, at the end-of-instant flush.
func (e *Engine) Reschedule(t Timer, at Time) bool {
	if t.e == nil {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", at, e.now))
	}
	s := &e.slots[t.slot]
	if s.gen != t.gen || s.pos < 0 {
		return false // already fired, stopped, or slot recycled
	}
	s.at = at
	if !e.siftDown(int(s.pos)) {
		e.siftUp(int(s.pos))
	}
	return true
}

// AddFlusher registers an ordinary end-of-instant hook, run inline on the
// engine goroutine. An ordinary flusher acts as a barrier between component
// batches: it may read any component's settled state (the tracer's
// per-link samplers do). See Engine.flushers.
func (e *Engine) AddFlusher(fn func()) {
	if fn == nil {
		panic("sim: registering nil flusher")
	}
	e.flushers = append(e.flushers, flushEntry{fn: fn, comp: -1})
}

// AddComponentFlusher registers a component flusher and returns its
// component id. The prepare hook owns a disjoint state partition (see the
// parallel flush determinism contract in the package doc): it may run on a
// worker goroutine concurrently with other components' prepares, must not
// touch the engine, and records its event-queue mutations into the Stage it
// is handed. Ids ascend in registration order; the engine applies staged
// ops in id order after each batch.
func (e *Engine) AddComponentFlusher(prepare func(*Stage)) int {
	if prepare == nil {
		panic("sim: registering nil component flusher")
	}
	id := len(e.comps)
	e.comps = append(e.comps, flushComp{prepare: prepare})
	e.flushers = append(e.flushers, flushEntry{comp: int32(id)})
	return id
}

// RequestFlush asks the engine to run the registered flushers before the
// clock next advances (or before the queue is reported drained). Idempotent
// within an instant; flushers that have nothing deferred must tolerate being
// called anyway. Component flushers are NOT marked dirty by this coarse
// request — a component with deferred work calls RequestComponentFlush.
func (e *Engine) RequestFlush() { e.needFlush = true }

// RequestComponentFlush marks one component dirty and asks for an
// end-of-instant flush. Only dirty components are prepared in the flush —
// at fleet scale one machine's churn no longer pays a call per registered
// machine.
func (e *Engine) RequestComponentFlush(id int) {
	e.comps[id].dirty = true
	e.needFlush = true
}

// runFlush runs the registered flushers if a flush was requested, reporting
// whether it did. Flushers may schedule new events, including events at the
// current instant, and may request a further flush (the caller loops).
// Dirty component flushers are batched: consecutive ones (in registration
// order) prepare concurrently on the worker pool, then their staged ops are
// applied in id order; an ordinary flusher is a barrier that closes the
// current batch before running inline.
func (e *Engine) runFlush() bool {
	if !e.needFlush {
		return false
	}
	e.needFlush = false
	batch := e.runQueue[:0]
	for _, entry := range e.flushers {
		if entry.comp >= 0 {
			c := &e.comps[entry.comp]
			if c.dirty {
				c.dirty = false
				batch = append(batch, entry.comp)
			}
			continue
		}
		batch = e.flushBatch(batch)
		entry.fn()
	}
	batch = e.flushBatch(batch)
	e.runQueue = batch // keep grown capacity
	return true
}

// flushBatch prepares the batched dirty components — concurrently when the
// pool is enabled and the batch is big enough — then applies their staged
// ops in ascending component id order on the engine goroutine. Returns the
// emptied batch slice for reuse.
func (e *Engine) flushBatch(batch []int32) []int32 {
	if len(batch) == 0 {
		return batch
	}
	if e.nworkers > 0 && len(batch) >= minParallelFlush {
		// Wake no more workers than there are components beyond the one the
		// engine goroutine takes itself — waking the full pool for a batch
		// of two is pure handoff overhead.
		wake := e.nworkers
		if m := len(batch) - 1; m < wake {
			wake = m
		}
		e.runQueue = batch
		e.runNext.Store(0)
		e.runWG.Add(wake)
		for i := 0; i < wake; i++ {
			e.workCh <- struct{}{}
		}
		e.drainPrepares() // the engine goroutine participates
		e.runWG.Wait()
	} else {
		for _, id := range batch {
			c := &e.comps[id]
			c.prepare(&c.stage)
		}
	}
	for _, id := range batch {
		e.applyStage(&e.comps[id].stage)
	}
	return batch[:0]
}

// drainPrepares claims components off the current batch until it is empty.
// Runs on workers and on the engine goroutine; claims are atomic, and the
// WaitGroup join in flushBatch publishes every prepare's writes (the staged
// ops) to the engine goroutine before the apply phase reads them.
func (e *Engine) drainPrepares() {
	n := int32(len(e.runQueue))
	for {
		i := e.runNext.Add(1) - 1
		if i >= n {
			return
		}
		id := e.runQueue[i]
		c := &e.comps[id]
		c.prepare(&c.stage)
	}
}

// flushWorker is one pool goroutine: each token on ch is one flush batch to
// help drain. Closing ch retires the worker.
func (e *Engine) flushWorker(ch chan struct{}) {
	for range ch {
		e.drainPrepares()
		e.runWG.Done()
	}
}

// SetParallelism sets the number of OS threads the end-of-instant flush may
// use: n-1 pool workers plus the engine goroutine itself. n <= 1 (the
// default) is fully sequential. Results are bit-identical at every level —
// see the parallel flush determinism contract. The pool persists across
// Reset, so a pooled engine keeps its parallelism between runs; call
// SetParallelism(1) to retire the workers before abandoning an engine.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if n == e.par && (e.par > 1 || e.workCh == nil) {
		return
	}
	if e.workCh != nil {
		close(e.workCh) // retire the old pool
		e.workCh = nil
	}
	e.par = n
	e.nworkers = n - 1
	if e.nworkers > 0 {
		e.workCh = make(chan struct{})
		for i := 0; i < e.nworkers; i++ {
			go e.flushWorker(e.workCh)
		}
	}
}

// Parallelism returns the configured flush parallelism (>= 1).
func (e *Engine) Parallelism() int {
	if e.par < 1 {
		return 1
	}
	return e.par
}

// Step executes the next event, advancing the clock to its timestamp. It
// reports whether an event was executed. (Cancelled events are removed at
// Stop time, so every queued event is live.) Before the clock advances past
// the current instant — and before reporting the queue drained — any
// requested end-of-instant flush runs; flushed work may queue same-instant
// events, which are then executed first.
func (e *Engine) Step() bool {
	for len(e.heap) == 0 || e.slots[e.heap[0]].at > e.now {
		if !e.runFlush() {
			break
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	id := e.heap[0]
	s := &e.slots[id]
	e.now = s.at
	e.nSteps++
	fn := s.fn
	e.removeAt(0)
	fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to min(deadline, last event time). It
// reports whether the queue drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		if len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
			e.Step()
			continue
		}
		// The horizon (or the queue) is exhausted; deferred work may still
		// queue events within it.
		if !e.runFlush() {
			break
		}
	}
	if e.now < deadline && len(e.heap) > 0 {
		e.now = deadline
	}
	return len(e.heap) == 0
}

// Pending returns the number of queued events. Stopped timers leave the
// queue immediately, so this is a live count, in O(1).
func (e *Engine) Pending() int { return len(e.heap) }

// Reset rewinds the engine to time zero with an empty queue while keeping
// its grown arena capacity and — crucially — its registered flushers, so a
// pooled engine/machine pair can serve a fresh run without re-wiring the
// Net's end-of-instant hook. Every slot generation is bumped, so Timer
// handles from the previous run can never touch the recycled slots; a
// stale Stop or Reschedule is a no-op exactly as if the event had fired.
func (e *Engine) Reset() {
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.slots {
		s := &e.slots[i]
		s.fn = nil
		s.pos = -1
		s.gen++
		e.free = append(e.free, int32(i))
	}
	e.now = 0
	e.seq = 0
	e.nSteps = 0
	e.needFlush = false
	for i := range e.comps {
		c := &e.comps[i]
		c.dirty = false
		for j := range c.stage.ops {
			c.stage.ops[j] = stagedOp{}
		}
		c.stage.ops = c.stage.ops[:0]
	}
	e.runQueue = e.runQueue[:0]
}
