// Package sim implements the deterministic discrete-event core that stands in
// for the paper's physical machine.
//
// Two layers live here:
//
//   - Engine: a classic event-heap simulator with integer-nanosecond time.
//     Events scheduled for the same instant fire in scheduling order, which
//     makes every run bit-reproducible.
//   - Net: a fluid-flow network on top of Engine. A Flow is a volume of bytes
//     crossing a set of shared Resources (memory controllers, inter-socket
//     links); the rate of every active flow is the max-min fair allocation
//     over those resources, recomputed whenever a flow starts or finishes.
//
// The fluid model is the standard substitute for cycle-level memory-system
// simulation when the quantities of interest are bandwidth contention and
// completion times rather than per-request behaviour; it is what lets an
// 8-socket bullion S16 run inside a unit test.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, for readable configuration code.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time as seconds with millisecond precision for small
// values and full nanoseconds otherwise.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among same-instant events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	nSteps uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. Cancelled events are skipped without advancing the clock, so stale
// timers never stretch a run's final time.
type Timer struct {
	ev *event
}

// Stop cancels the event if it has not fired yet. Stopping an already-fired
// or already-stopped timer is a no-op.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
		t.ev = nil
	}
}

// At schedules fn to run at absolute time t and returns a cancellation
// handle. Scheduling in the past panics: it is always a simulator bug, never
// a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the next live event, advancing the clock to its timestamp.
// Cancelled events are discarded without touching the clock. It reports
// whether a live event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		e.nSteps++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to min(deadline, last event time). It
// reports whether the queue drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && e.Pending() > 0 {
		e.now = deadline
	}
	return e.Pending() == 0
}

// Pending returns the number of live (non-cancelled) queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}
