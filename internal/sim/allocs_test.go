package sim

import (
	"testing"
)

// Allocation-contract tests for the simulator hot path, run as blocking
// deterministic tests (testing.AllocsPerRun, not benchmarks) by
// `make test-allocs` and the CI allocs gate. Together with
// TestFlowChurnSteadyStateAllocs (bench_test.go) they assert that steady-
// state operation — including the deferred/batched reallocation path —
// allocates nothing: event slots, Flow structs, CSR crossing lists and
// worklists are all recycled.

// TestBatchedFanoutSteadyStateAllocs pins the batching path: bursts of
// same-instant starts over multiple sockets' resource pairs, flushed once
// per instant by the engine hook, then drained through batched completion
// waves.
func TestBatchedFanoutSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	caps := make([]*Resource, 16)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = n.NewResource("mc", 30)
		} else {
			caps[i] = n.NewResource("port", 12)
		}
	}
	paths := make([][]*Resource, 8)
	for s := range paths {
		if s%2 == 0 {
			paths[s] = []*Resource{caps[2*s]}
		} else {
			paths[s] = []*Resource{caps[2*s], caps[2*s+1]}
		}
	}
	burst := func(i int) {
		// 8 same-instant starts across 4 components: one deferred flush.
		for j := 0; j < 8; j++ {
			n.StartFlowCapped(4096+float64(j), paths[(i+j)%8], 640.0/90, nil)
		}
		for n.ActiveFlows() > 24 {
			e.Step()
		}
	}
	for i := 0; i < 32; i++ {
		burst(i) // warm flow pool, event arena, CSR and worklist scratch
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		burst(i)
		i++
	})
	if avg != 0 {
		t.Fatalf("batched fan-out churn allocates %v objects per op, want 0", avg)
	}
}

// TestReallocateFullSteadyStateAllocs pins the from-scratch fill itself: a
// warmed net recomputing every rate must not allocate.
func TestReallocateFullSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	n := NewNet(e)
	rs := make([]*Resource, 16)
	for i := range rs {
		rs[i] = n.NewResource("r", 30)
	}
	for i := 0; i < 32; i++ {
		path := []*Resource{rs[i%16], rs[(i+5)%16]}
		n.StartFlowCapped(1e12, path, 0.64, nil)
	}
	n.reallocate() // warm scratch
	avg := testing.AllocsPerRun(200, func() {
		n.reallocate()
	})
	if avg != 0 {
		t.Fatalf("full reallocation allocates %v objects per op, want 0", avg)
	}
}
