package sim

import (
	"testing"
)

// flowScenario drives a churn-heavy schedule — staggered capped flows over
// shared resources, a same-instant burst, a zero-byte flow — and returns
// the observables the determinism goldens pin.
func flowScenario(eng *Engine, n *Net, rs []*Resource) (final Time, steps uint64, bytes float64, util []float64) {
	done := 0
	cb := func() { done++ }
	n.StartFlowCapped(1000, rs[:1], 2.5, cb)
	eng.After(10, func() {
		n.StartFlowCapped(4000, rs, 8, cb)
		n.StartFlowCapped(300, rs[1:], 1, cb)
	})
	eng.After(10, func() { n.StartFlow(0, nil, cb) })
	eng.After(250, func() { n.StartFlow(2500, rs[:1], cb) })
	final = eng.Run()
	if done != 5 {
		panic("flowScenario: not all flows completed")
	}
	util = make([]float64, len(rs))
	for i, r := range rs {
		util[i] = r.Utilization(final)
	}
	return final, eng.Steps(), n.TotalBytes, util
}

// TestResetEquivalence pins the pooling contract: an engine/net pair that
// ran a full scenario and was Reset produces bit-identical observables to a
// freshly constructed pair — clock, step count, byte totals and resource
// utilization integrals all restart from zero.
func TestResetEquivalence(t *testing.T) {
	fresh := NewEngine()
	fn := NewNet(fresh)
	frs := []*Resource{fn.NewResource("a", 10), fn.NewResource("b", 4)}
	wantFinal, wantSteps, wantBytes, wantUtil := flowScenario(fresh, fn, frs)

	eng := NewEngine()
	n := NewNet(eng)
	rs := []*Resource{n.NewResource("a", 10), n.NewResource("b", 4)}
	for round := 0; round < 3; round++ {
		final, steps, bytes, util := flowScenario(eng, n, rs)
		if final != wantFinal || steps != wantSteps || bytes != wantBytes {
			t.Fatalf("round %d: (final, steps, bytes) = (%v, %d, %v), fresh run gave (%v, %d, %v)",
				round, final, steps, bytes, wantFinal, wantSteps, wantBytes)
		}
		for i := range util {
			if util[i] != wantUtil[i] {
				t.Fatalf("round %d: resource %d utilization %v != fresh %v", round, i, util[i], wantUtil[i])
			}
		}
		eng.Reset()
		n.Reset()
		if eng.Now() != 0 || eng.Steps() != 0 || eng.Pending() != 0 {
			t.Fatal("engine not rewound")
		}
		if n.ActiveFlows() != 0 || n.TotalBytes != 0 {
			t.Fatal("net not rewound")
		}
		for _, r := range rs {
			if r.Utilization(1000) != 0 || r.ActiveFlows() != 0 {
				t.Fatal("resource integrals not rewound")
			}
		}
	}
}

// TestResetInvalidatesTimers pins the handle-safety half of Reset: Timer
// values captured before a Reset must be inert afterwards — Stop and
// Reschedule on them are no-ops even though their slots were recycled for
// new events.
func TestResetInvalidatesTimers(t *testing.T) {
	eng := NewEngine()
	var stale []Timer
	for i := 0; i < 4; i++ {
		stale = append(stale, eng.After(Time(100+i), func() {}))
	}
	eng.Run()
	stale = append(stale, eng.After(500, func() {})) // never fired
	eng.Reset()

	fired := 0
	for i := 0; i < 8; i++ {
		eng.After(Time(10+i), func() { fired++ })
	}
	for _, s := range stale {
		s.Stop()
		if eng.Reschedule(s, 5000) {
			t.Fatal("stale timer reported live after Reset")
		}
	}
	if eng.Pending() != 8 {
		t.Fatalf("stale handles disturbed the queue: %d pending, want 8", eng.Pending())
	}
	eng.Run()
	if fired != 8 {
		t.Fatalf("%d events fired, want 8", fired)
	}
}

// TestResetMidFlight pins Reset against a half-run schedule: abandoned
// events and in-flight flows must vanish without firing, and the next run
// on the same pair must match a fresh one.
func TestResetMidFlight(t *testing.T) {
	eng := NewEngine()
	n := NewNet(eng)
	rs := []*Resource{n.NewResource("a", 10), n.NewResource("b", 4)}
	leaked := false
	n.StartFlowCapped(1e6, rs, 8, func() { leaked = true })
	eng.After(50, func() { leaked = true })
	eng.RunUntil(20)

	eng.Reset()
	n.Reset()
	final, steps, bytes, _ := flowScenario(eng, n, rs)

	fresh := NewEngine()
	fn := NewNet(fresh)
	frs := []*Resource{fn.NewResource("a", 10), fn.NewResource("b", 4)}
	wantFinal, wantSteps, wantBytes, _ := flowScenario(fresh, fn, frs)
	if leaked {
		t.Fatal("abandoned event or flow callback fired after Reset")
	}
	if final != wantFinal || steps != wantSteps || bytes != wantBytes {
		t.Fatalf("post-reset run (%v, %d, %v) != fresh run (%v, %d, %v)",
			final, steps, bytes, wantFinal, wantSteps, wantBytes)
	}
}
