package sim

import (
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.After(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("now = %v, want 99", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	drained := e.RunUntil(25)
	if drained {
		t.Fatal("RunUntil(25) reported drained with events pending")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock %v after RunUntil(25)", e.Now())
	}
	if !e.RunUntil(1000) {
		t.Fatal("queue should drain by 1000")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.Pending() != 0 {
		t.Fatal("Pending non-zero on fresh engine")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds = %v, want 2.0", s)
	}
}

// Exercise the indexed heap against a brute-force model: random schedule /
// stop / step interleavings must fire exactly the never-stopped events, in
// (time, scheduling-order) order, with Pending always exact.
func TestIndexedHeapAgainstModel(t *testing.T) {
	// Deterministic xorshift so failures reproduce.
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int(rnd % uint64(n))
	}
	type modelEv struct {
		at      Time
		id      int
		stopped bool
	}
	e := NewEngine()
	var model []modelEv
	var fired []int
	timers := map[int]Timer{}
	nextID := 0
	for op := 0; op < 5000; op++ {
		switch next(4) {
		case 0, 1: // schedule
			at := e.Now() + Time(next(50))
			id := nextID
			nextID++
			timers[id] = e.At(at, func() { fired = append(fired, id) })
			model = append(model, modelEv{at: at, id: id})
		case 2: // stop a random known timer (possibly already fired)
			if nextID == 0 {
				continue
			}
			id := next(nextID)
			timers[id].Stop()
			for i := range model {
				if model[i].id == id {
					model[i].stopped = true
				}
			}
		case 3:
			e.Step()
		}
		// Pending must equal the model's live, unfired count.
		live := 0
		for _, m := range model {
			alreadyFired := false
			for _, f := range fired {
				if f == m.id {
					alreadyFired = true
					break
				}
			}
			if !m.stopped && !alreadyFired {
				live++
			}
		}
		if e.Pending() != live {
			t.Fatalf("op %d: Pending = %d, model says %d", op, e.Pending(), live)
		}
	}
	e.Run()
	// Expected firing order: every never-stopped event, stable-sorted by
	// time (insertion order breaks ties, which is scheduling order). An
	// event both fired and later "stopped" keeps its fired slot — Stop
	// after firing is a no-op — so partition by what actually fired.
	firedSet := map[int]bool{}
	for _, id := range fired {
		firedSet[id] = true
	}
	live := make([]modelEv, 0, len(model))
	for _, m := range model {
		if firedSet[m.id] {
			live = append(live, m)
		}
	}
	// Insertion sort, stable, by time only.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].at < live[j-1].at; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	if len(live) != len(fired) {
		t.Fatalf("fired %d events, model expects %d", len(fired), len(live))
	}
	for i := range fired {
		if fired[i] != live[i].id {
			t.Fatalf("firing order diverged at %d: got %d, want %d", i, fired[i], live[i].id)
		}
	}
}

// Slot recycling must keep a Timer handle from a previous occupant inert.
func TestTimerGenerationSafety(t *testing.T) {
	e := NewEngine()
	fired := 0
	t1 := e.At(10, func() { fired++ })
	e.Run() // t1 fires; its slot returns to the free list
	t2 := e.At(20, func() { fired++ })
	t1.Stop() // stale handle into the recycled slot: must be a no-op
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want 2 (stale Stop cancelled a live event?)", fired)
	}
	t2.Stop() // after firing: no-op
	var zero Timer
	zero.Stop() // zero value: no-op
}

func TestRunUntilWithStoppedEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	mk := func(at Time) Timer { return e.At(at, func() { fired = append(fired, at) }) }
	mk(10)
	tm := mk(20)
	mk(30)
	tm.Stop()
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after stop, want 2", e.Pending())
	}
	if e.RunUntil(25) {
		t.Fatal("queue reported drained with event at 30 pending")
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want [10]", fired)
	}
	if !e.RunUntil(100) {
		t.Fatal("queue should drain")
	}
}

func TestDeterministicStepCount(t *testing.T) {
	run := func() uint64 {
		e := NewEngine()
		for i := 0; i < 100; i++ {
			d := Time(i * 7 % 13)
			e.At(d, func() { e.After(3, func() {}) })
		}
		e.Run()
		return e.Steps()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("step counts differ across identical runs: %d vs %d", a, b)
	}
}
