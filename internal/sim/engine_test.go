package sim

import (
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.After(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("now = %v, want 99", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	drained := e.RunUntil(25)
	if drained {
		t.Fatal("RunUntil(25) reported drained with events pending")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock %v after RunUntil(25)", e.Now())
	}
	if !e.RunUntil(1000) {
		t.Fatal("queue should drain by 1000")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.Pending() != 0 {
		t.Fatal("Pending non-zero on fresh engine")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds = %v, want 2.0", s)
	}
}

func TestDeterministicStepCount(t *testing.T) {
	run := func() uint64 {
		e := NewEngine()
		for i := 0; i < 100; i++ {
			d := Time(i * 7 % 13)
			e.At(d, func() { e.After(3, func() {}) })
		}
		e.Run()
		return e.Steps()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("step counts differ across identical runs: %d vs %d", a, b)
	}
}
