package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestFlushReentrancy pins the Flow.Rate/Remaining force-flush guard: user
// code running inside the fill (an accounting hook, a sampler called from a
// rate callback) may read Flow.Rate or Flow.Remaining, and that reentrant
// read must NOT run a second fill over the half-updated scratch state — it
// must see exactly the rates the in-progress fill assigns. Before the
// flushing guard this recursed into flushStage with dirty already cleared
// (benign by luck); with component flushers staging engine ops the second
// entry would double-record the completion reschedule.
func TestFlushReentrancy(t *testing.T) {
	run := func(reenter bool) (fills int, makespan Time, bytes float64, mid []float64) {
		eng := NewEngine()
		n := NewNet(eng)
		r := n.NewResource("mc", 10)
		var probe *Flow
		base := n.fill
		n.fill = func(now Time) {
			fills++
			base(now)
			if reenter && probe != nil && !probe.finished {
				// Reentrant reads mid-flush: the guard must make the forced
				// flush a no-op, returning the rate this very fill assigned.
				mid = append(mid, probe.Rate(), probe.Remaining())
			}
		}
		probe = n.StartFlow(1000, []*Resource{r}, nil)
		n.StartFlow(500, []*Resource{r}, nil)
		makespan = eng.Run()
		bytes = n.TotalBytes
		return
	}

	fills, makespan, bytes, mid := run(true)
	refFills, refMakespan, refBytes, _ := run(false)
	if fills != refFills {
		t.Errorf("reentrant Rate/Remaining changed fill count: %d vs %d", fills, refFills)
	}
	if makespan != refMakespan || bytes != refBytes {
		t.Errorf("reentrant reads perturbed the run: (%v, %.0f) vs (%v, %.0f)",
			makespan, bytes, refMakespan, refBytes)
	}
	// Two flows share a 10 B/ns resource: the first fill assigns 5 B/ns and
	// the mid-flush read must see exactly that, with the full volume intact.
	if len(mid) == 0 {
		t.Fatal("reentrant probe never ran")
	}
	if mid[0] != 5 || mid[1] != 1000 {
		t.Errorf("mid-flush probe read (rate %v, remaining %v), want (5, 1000)", mid[0], mid[1])
	}
}

// TestFlushReentrantFlushIsNoop hits the guard directly: a forced flush
// issued while a flush is running on the same Net must neither recurse nor
// re-arm anything.
func TestFlushReentrantFlushIsNoop(t *testing.T) {
	eng := NewEngine()
	n := NewNet(eng)
	r := n.NewResource("mc", 4)
	depth := 0
	base := n.fill
	n.fill = func(now Time) {
		depth++
		if depth > 1 {
			t.Fatal("fill re-entered")
		}
		base(now)
		n.flush() // must be a no-op: flushing is set, dirty cleared
		depth--
	}
	n.StartFlow(100, []*Resource{r}, nil)
	if got := eng.Run(); got != 25 {
		t.Errorf("makespan %v, want 25ns (100 bytes at 4 B/ns)", got)
	}
}

// parallelScenario drives K independent Nets on one engine through
// overlapping same-instant churn — bursts of flow starts across every net at
// identical timestamps, chained follow-up flows in completion callbacks —
// and returns a full event log: every completion with its net, flow id,
// timestamp and the engine step count at that moment. The log captures the
// entire observable event stream, so two runs with equal logs (plus equal
// final clocks, step counts and byte totals) executed identically.
func parallelScenario(par int) (log []string, makespan Time, steps uint64, bytes float64) {
	const nets = 6
	eng := NewEngine()
	eng.SetParallelism(par)
	defer eng.SetParallelism(1)
	var ns [nets]*Net
	var res [nets][]*Resource
	for i := 0; i < nets; i++ {
		n := NewNet(eng)
		ns[i] = n
		res[i] = []*Resource{
			n.NewResource(fmt.Sprintf("mc%d", i), float64(4+i)),
			n.NewResource(fmt.Sprintf("port%d", i), 2.5),
		}
	}
	record := func(net, id int) {
		log = append(log, fmt.Sprintf("net%d flow%d at %d step %d", net, id, eng.Now(), eng.Steps()))
	}
	// Same-instant bursts across all nets: every net goes dirty in the same
	// flush, exercising batches of size `nets` under the worker pool.
	for round := 0; round < 4; round++ {
		at := Time(round) * 300
		for i := 0; i < nets; i++ {
			i := i
			vol := float64(600 + 70*i + 13*round)
			eng.At(at, func() {
				n := ns[i]
				var f *Flow
				f = n.StartFlowCapped(vol, res[i], 3.0, func() {
					record(i, f.ID())
					// Chained follow-up keeps churn flowing through later
					// instants, staggered so completions interleave.
					if f.Volume() > 500 {
						var g *Flow
						g = n.StartFlow(f.Volume()/2, res[i][:1], func() { record(i, g.ID()) })
					}
				})
				// Cross-path contention within the net.
				var h *Flow
				h = n.StartFlow(vol/3, res[i][1:], func() { record(i, h.ID()) })
			})
		}
	}
	makespan = eng.Run()
	steps = eng.Steps()
	for i := 0; i < nets; i++ {
		bytes += ns[i].TotalBytes
	}
	return
}

// TestParallelFlushEquivalence runs the multi-Net scenario at parallelism
// 1, 2 and 8 and demands the full event streams — not just summary triples
// — be identical: same completions, same order, same timestamps, same step
// counts at each completion. This is the sim-level half of the parallel
// flush determinism contract; the top-level golden sweep (NUMADAG_PAR) is
// the system-level half.
func TestParallelFlushEquivalence(t *testing.T) {
	refLog, refMakespan, refSteps, refBytes := parallelScenario(1)
	if len(refLog) == 0 {
		t.Fatal("scenario produced no completions")
	}
	for _, par := range []int{2, 8} {
		log, makespan, steps, bytes := parallelScenario(par)
		if makespan != refMakespan || steps != refSteps || bytes != refBytes {
			t.Errorf("par=%d: (makespan %v, steps %d, bytes %v) != sequential (%v, %d, %v)",
				par, makespan, steps, bytes, refMakespan, refSteps, refBytes)
		}
		if len(log) != len(refLog) {
			t.Fatalf("par=%d: %d events vs %d sequential", par, len(log), len(refLog))
		}
		for i := range log {
			if log[i] != refLog[i] {
				t.Errorf("par=%d: event %d diverged:\n  got  %s\n  want %s", par, i, log[i], refLog[i])
			}
		}
	}
}

// TestStageOps pins the staged event buffer's semantics directly: At
// delivers its Timer through out, Stop cancels, RescheduleOrAt keeps a live
// timer's seq (preserving same-instant rank) and falls back to a fresh
// insert when the timer is dead.
func TestStageOps(t *testing.T) {
	eng := NewEngine()
	var fired []string
	mark := func(s string) func() { return func() { fired = append(fired, s) } }

	// Claim seq order: a before b.
	a := eng.At(100, mark("a"))
	eng.At(100, mark("b"))

	var st Stage
	var tm Timer
	st.At(50, mark("new"), &tm)
	// Reschedule a to 100 (same instant as b): keeping its earlier seq, it
	// must still fire before b.
	st.RescheduleOrAt(a, 100, mark("a2"), nil)
	eng.applyStage(&st)
	if tm.e == nil {
		t.Fatal("staged At did not deliver its Timer")
	}
	if len(st.ops) != 0 {
		t.Fatalf("applyStage left %d ops", len(st.ops))
	}

	// Stop the staged-in event through its delivered Timer, via a stage.
	st.Stop(tm)
	eng.applyStage(&st)

	// Dead-timer fallback: stop c, then RescheduleOrAt must insert fresh.
	c := eng.At(200, mark("c"))
	c.Stop()
	var repl Timer
	st.RescheduleOrAt(c, 150, mark("c-replacement"), &repl)
	eng.applyStage(&st)
	if repl.e == nil {
		t.Fatal("RescheduleOrAt fallback did not deliver its Timer")
	}

	eng.Run()
	want := []string{"a", "b", "c-replacement"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Errorf("fired %v, want %v", fired, want)
	}
}

// TestSetParallelismLifecycle exercises pool transitions — grow, shrink,
// retire, regrow, with runs between — and checks the workers actually
// retire (no goroutine leak) after SetParallelism(1).
func TestSetParallelismLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := NewEngine()
	for _, par := range []int{4, 1, 2, 8, 1} {
		eng.SetParallelism(par)
		if got := eng.Parallelism(); got != par {
			t.Fatalf("Parallelism() = %d, want %d", got, par)
		}
		n1, n2 := NewNet(eng), NewNet(eng)
		r1 := n1.NewResource("a", 5)
		r2 := n2.NewResource("b", 5)
		n1.StartFlow(100, []*Resource{r1}, nil)
		n2.StartFlow(100, []*Resource{r2}, nil)
		eng.Run()
		eng.Reset() // keeps the pool and the registered flushers
	}
	// Workers exit asynchronously after the close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after retire", before, after)
	}
}

// TestResetKeepsParallelism pins the pooled-engine contract: Reset clears
// component dirty bits and staged ops but keeps the worker pool, exactly as
// it keeps registered flushers — a recycled engine/machine pair retains its
// parallelism across runs.
func TestResetKeepsParallelism(t *testing.T) {
	eng := NewEngine()
	eng.SetParallelism(4)
	defer eng.SetParallelism(1)
	n := NewNet(eng)
	r := n.NewResource("mc", 5)
	n.StartFlow(50, []*Resource{r}, nil)
	eng.Run()
	eng.Reset()
	if got := eng.Parallelism(); got != 4 {
		t.Errorf("Reset dropped parallelism: %d, want 4", got)
	}
	// The recycled engine must still run correctly, including the pool.
	n2 := NewNet(eng)
	r2 := n2.NewResource("mc2", 5)
	done := 0
	n.StartFlow(100, []*Resource{r}, func() { done++ })
	n2.StartFlow(100, []*Resource{r2}, func() { done++ })
	eng.Run()
	if done != 2 {
		t.Errorf("post-Reset run completed %d flows, want 2", done)
	}
}
