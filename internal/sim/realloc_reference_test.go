package sim

import "math"

// This file keeps the naive water-filling ladder — the seed implementation
// reallocate() used before the deferred/batched flush and the CSR/worklist
// scan structure — as a test-only reference, in the same spirit as the
// partition package's heap-based refiner reference. The production fill
// must execute bit-for-bit the same float operations: the determinism
// goldens pin simulated physics to the nanosecond, so "equivalent" here
// means identical rates, identical deadlines, identical event order, not
// "close". The equivalence suite and FuzzReallocate drive a production net
// and a reference net through the same flow churn and compare them
// exactly.
//
// The reference differs from production in two deliberate ways:
//
//   - referenceWaterfill scans every resource and every active flow each
//     round (O(R x F) crosses() tests) instead of using the CSR crossing
//     lists and shrinking worklists.
//   - newReferenceNet disables same-instant batching: every StartFlow and
//     every completion redistributes immediately, the historical one
//     recompute per churn event.

// newReferenceNet returns a Net that reallocates eagerly on every churn
// event through the naive ladder.
func newReferenceNet(eng *Engine) *Net {
	n := NewNet(eng)
	n.batch = false
	n.fill = n.referenceWaterfill
	return n
}

// referenceWaterfill is the seed max-min fill: all-resources share scans,
// all-flows cap scans, and crosses() tests against every active flow for
// every bottleneck resource.
func (n *Net) referenceWaterfill(now Time) {
	residual, unfrozen := n.residual, n.unfrozen
	for i, r := range n.resources {
		residual[i] = r.capacity
		unfrozen[i] = 0
	}
	for _, f := range n.active {
		f.frozen = false
		for _, r := range f.path {
			unfrozen[r.id]++
		}
	}
	left := len(n.active)
	for left > 0 {
		// Bottleneck-resource share.
		share := math.Inf(1)
		for id := range n.resources {
			if unfrozen[id] == 0 {
				continue
			}
			if s := residual[id] / float64(unfrozen[id]); s < share {
				share = s
			}
		}
		// A flow whose cap is at or below the share binds first.
		capBound := false
		for _, f := range n.active {
			if !f.frozen && f.maxRate <= share {
				n.freezeFlow(f, f.maxRate)
				left--
				capBound = true
			}
		}
		if capBound {
			continue // resource shares changed; recompute
		}
		if math.IsInf(share, 1) {
			for _, f := range n.active {
				if !f.frozen {
					f.rate = f.maxRate
					f.frozen = true
					left--
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck resource.
		progressed := false
		for _, r := range n.resources {
			if unfrozen[r.id] == 0 {
				continue
			}
			if residual[r.id]/float64(unfrozen[r.id]) > share*(1+1e-12) {
				continue
			}
			for _, f := range n.active {
				if f.frozen || !f.crosses(r) {
					continue
				}
				n.freezeFlow(f, share)
				left--
				progressed = true
			}
		}
		if !progressed {
			panic("sim: reference water-filling made no progress")
		}
	}
	sums := n.sums
	for i := range sums {
		sums[i] = 0
	}
	for _, f := range n.active {
		for _, res := range f.path {
			sums[res.id] += f.rate
		}
	}
	for _, res := range n.resources {
		res.settle(now, sums[res.id])
	}
}
