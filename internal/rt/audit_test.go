package rt

import (
	"testing"

	"numadag/internal/memory"
)

func TestAuditCleanRunPasses(t *testing.T) {
	r := newTestRT(t, cyclic{}, Options{Seed: 3, Steal: true, StealThreshold: 1})
	regs := make([]*memory.Region, 8)
	for i := range regs {
		regs[i] = r.Mem().Alloc("r", 32<<10, memory.Deferred, 0)
	}
	for i := 0; i < 60; i++ {
		r.Submit(TaskSpec{Label: "t", Flops: float64(500 * (i%5 + 1)),
			Accesses: []Access{
				{Region: regs[i%8], Mode: InOut},
				{Region: regs[(i+3)%8], Mode: In},
			}, EPSocket: NoEPHint})
	}
	r.Run()
	if err := r.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditBeforeRunFails(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 10,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	if err := r.AuditSchedule(); err == nil {
		t.Fatal("audit passed before the run")
	}
}

func TestAuditWithBarriers(t *testing.T) {
	r := newTestRT(t, cyclic{}, Options{})
	for e := 0; e < 3; e++ {
		for i := 0; i < 5; i++ {
			reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
			r.Submit(TaskSpec{Label: "t", Flops: 500,
				Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
		}
		r.Barrier()
	}
	r.Run()
	if err := r.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
}

func TestPortUtilizationTracked(t *testing.T) {
	// A remote-heavy run must show port pressure; a local one must not.
	remote := newTestRT(t, pinned(1), Options{Steal: false})
	data := remote.Mem().Alloc("d", 16<<20, memory.Home, 0)
	for i := 0; i < 8; i++ {
		out := remote.Mem().Alloc("o", 64, memory.Deferred, 0)
		remote.Submit(TaskSpec{Label: "t", Flops: 100,
			Accesses: []Access{{Region: data, Mode: In}, {Region: out, Mode: Out}},
			EPSocket: NoEPHint})
	}
	res := remote.Run()
	if res.MaxPortUtilization <= 0 {
		t.Fatalf("remote run shows no port utilization: %+v", res.MaxPortUtilization)
	}

	local := newTestRT(t, pinned(0), Options{Steal: false})
	dataL := local.Mem().Alloc("d", 16<<20, memory.Home, 0)
	for i := 0; i < 8; i++ {
		out := local.Mem().Alloc("o", 64, memory.Deferred, 0)
		local.Submit(TaskSpec{Label: "t", Flops: 100,
			Accesses: []Access{{Region: dataL, Mode: In}, {Region: out, Mode: Out}},
			EPSocket: NoEPHint})
	}
	resL := local.Run()
	if resL.MaxPortUtilization != 0 {
		t.Fatalf("local run crossed ports: %v", resL.MaxPortUtilization)
	}
}
