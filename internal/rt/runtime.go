package rt

import (
	"fmt"

	"numadag/internal/graph"
	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/sim"
	"numadag/internal/xrand"
)

// Options configures a Runtime.
type Options struct {
	// WindowSize caps the tasks per submission window (the paper's window
	// size limit). Zero means a single unbounded window.
	WindowSize int
	// Seed drives every random decision (tie-breaks, stealing victims).
	Seed uint64
	// Steal enables the idle-core cross-socket work-stealing fallback.
	// Stealing within a socket (between a socket's core queues) is always
	// allowed — it has no NUMA cost.
	Steal bool
	// StealThreshold is the minimum backlog per victim core (queued tasks
	// divided by the victim socket's cores) before an idle remote core may
	// steal. A positive threshold keeps stealing a pressure-relief valve
	// instead of a locality shredder: a victim that will drain its queue
	// within a couple of task lengths is left alone.
	StealThreshold int
	// PartitionCostPerTask is the simulated time charged per window task
	// when a policy partitions a window (RGP's SCOTCH invocation). The
	// runtime multiplies it by the window's task count.
	PartitionCostPerTask sim.Time
	// Observer optionally receives task lifecycle events (tracing).
	Observer Observer
}

// DefaultOptions returns the runtime settings used across the evaluation:
// window of 2048 tasks, cross-socket stealing as a pressure valve (victim
// queue of at least one task per victim core), 200ns of partitioning cost
// per task (SCOTCH partitions ~10k-node graphs in a few milliseconds).
func DefaultOptions() Options {
	return Options{
		WindowSize:           2048,
		Seed:                 1,
		Steal:                true,
		StealThreshold:       2,
		PartitionCostPerTask: 200,
	}
}

// regionTrack holds per-region dependence bookkeeping (OmpSs semantics).
type regionTrack struct {
	lastWriter *Task
	readers    []*Task // readers since the last write
}

// Runtime executes submitted tasks over a simulated machine under a Policy.
type Runtime struct {
	mach *machine.Machine
	mem  *memory.Manager
	pol  Policy
	opts Options
	rng  *xrand.Rand

	tdg    *graph.DAG
	tasks  []*Task
	tracks map[int]*regionTrack // by region ID

	// Queues.
	sockQ  [][]*Task // per-socket FIFO
	coreQ  [][]*Task // per-core FIFO (cyclic placement)
	tempQ  []*Task   // temporary queue (deferred placement)
	rrNext int       // cyclic core counter

	coreBusy []bool
	coreTask []*Task

	running    bool
	ranAlready bool
	remaining  int  // tasks not yet done
	stealVeto  bool // policy forbids cross-socket stealing

	// Window bookkeeping: windows close on count (WindowSize) or at an
	// explicit Barrier.
	curWindow   int
	windowCount int

	// Hot-path scratch, reused across calls (the runtime is single-threaded
	// on the engine goroutine): per-home byte totals for read/write phases
	// and the sorted victim list for cross-socket stealing.
	scratchHome []int64
	victims     []stealVictim
	// barrierTask, when non-nil, is the synchronization task every
	// subsequently submitted task must depend on (taskwait semantics).
	barrierTask *Task
	barriers    int
	// barrierIDs records the sync tasks Barrier submitted, in order, so a
	// Snapshot can replay the window state machine exactly.
	barrierIDs []graph.NodeID
	// installed marks a runtime whose task graph came from a Snapshot;
	// further Submit/Barrier calls are rejected because the dependence
	// trackers were never populated.
	installed bool

	stats Result
}

// NewRuntime creates a runtime over the machine, with its own memory
// manager.
func NewRuntime(m *machine.Machine, pol Policy, opts Options) *Runtime {
	if pol == nil {
		panic("rt: nil policy")
	}
	if opts.WindowSize < 0 || opts.PartitionCostPerTask < 0 {
		panic("rt: negative option")
	}
	r := &Runtime{
		mach:   m,
		mem:    memory.NewManager(m.Sockets()),
		pol:    pol,
		opts:   opts,
		rng:    xrand.New(opts.Seed),
		tdg:    graph.New(),
		tracks: make(map[int]*regionTrack),
		sockQ:  make([][]*Task, m.Sockets()),
		coreQ:  make([][]*Task, m.Cores()),
	}
	r.coreBusy = make([]bool, m.Cores())
	r.coreTask = make([]*Task, m.Cores())
	r.scratchHome = make([]int64, m.Sockets())
	r.victims = make([]stealVictim, 0, m.Sockets())
	r.stats.BusyTime = make([]sim.Time, m.Cores())
	r.stats.SocketTasks = make([]int, m.Sockets())
	if v, ok := pol.(StealVeto); ok && v.VetoSteal() {
		r.stealVeto = true
	}
	return r
}

// Machine returns the simulated machine.
func (r *Runtime) Machine() *machine.Machine { return r.mach }

// Mem returns the memory manager applications allocate regions from.
func (r *Runtime) Mem() *memory.Manager { return r.mem }

// Rand returns the runtime's seeded generator (policies share it so a run
// remains a single deterministic stream).
func (r *Runtime) Rand() *xrand.Rand { return r.rng }

// Graph returns the task dependency graph built so far. Node IDs equal task
// IDs.
func (r *Runtime) Graph() *graph.DAG { return r.tdg }

// Tasks returns all submitted tasks in submission order.
func (r *Runtime) Tasks() []*Task { return r.tasks }

// Task returns the task with the given ID.
func (r *Runtime) Task(id graph.NodeID) *Task { return r.tasks[id] }

// Now returns the current simulated time.
func (r *Runtime) Now() sim.Time { return r.mach.Engine().Now() }

// Options returns the runtime's options.
func (r *Runtime) Options() Options { return r.opts }

// nextWindowSlot returns the window for the task being submitted and
// advances the count-based window state.
func (r *Runtime) nextWindowSlot() int {
	w := r.curWindow
	r.windowCount++
	if r.opts.WindowSize > 0 && r.windowCount >= r.opts.WindowSize {
		r.curWindow++
		r.windowCount = 0
	}
	return w
}

// Barrier inserts a synchronization point, as an OmpSs taskwait would:
// every task submitted afterwards depends (transitively, through a zero-work
// sync task) on every task submitted before, and the current submission
// window closes — the paper's runtime partitions the accumulated subgraph
// "once the execution goes through a barrier point" (§2.2). Calling Barrier
// with no tasks submitted since the last one is a no-op.
func (r *Runtime) Barrier() {
	if r.running {
		panic("rt: Barrier during Run")
	}
	if r.installed {
		panic("rt: Barrier after Install")
	}
	if len(r.tasks) == 0 || r.tasks[len(r.tasks)-1] == r.barrierTask {
		return // nothing submitted since the last barrier
	}
	// Close the current window so the sync task opens a fresh one.
	if r.windowCount > 0 {
		r.curWindow++
		r.windowCount = 0
	}
	r.barriers++
	sync := r.Submit(TaskSpec{Label: fmt.Sprintf("barrier#%d", r.barriers), EPSocket: NoEPHint})
	// Wire every current leaf (except the sync task itself) into the sync
	// task; non-leaves reach it transitively through their successors.
	for _, t := range r.tasks {
		if t == sync {
			continue
		}
		if len(t.succs) == 0 && !r.tdg.HasEdge(t.ID, sync.ID) {
			t.succs = append(t.succs, sync)
			sync.nDeps++
			r.tdg.AddEdge(t.ID, sync.ID, 1)
		}
	}
	r.barrierTask = sync
	r.barrierIDs = append(r.barrierIDs, sync.ID)
	// The sync task consumed one slot of the fresh window; give user tasks
	// the full window after the barrier.
	r.windowCount = 0
	sync.Window = r.curWindow
}

// Barriers returns the number of barriers inserted.
func (r *Runtime) Barriers() int { return r.barriers }

// Windows returns the number of submission windows.
func (r *Runtime) Windows() int {
	if len(r.tasks) == 0 {
		return 0
	}
	return r.tasks[len(r.tasks)-1].Window + 1
}

// WindowTasks returns the tasks of window w in submission order.
func (r *Runtime) WindowTasks(w int) []*Task {
	var out []*Task
	for _, t := range r.tasks {
		if t.Window == w {
			out = append(out, t)
		} else if t.Window > w {
			break
		}
	}
	return out
}

// Submit registers a task, deriving its dependences from region accesses:
// a read depends on the region's last writer (RAW); a write depends on the
// last writer (WAW) and on every reader since (WAR). RAW and WAW edges are
// weighted with the region's bytes (the data the dependency represents);
// WAR edges carry weight 1 (pure ordering). Submit must be called before
// Run; the TDG is then complete, and the window mechanism reproduces the
// paper's partial-knowledge partitioning.
func (r *Runtime) Submit(spec TaskSpec) *Task {
	if r.running {
		panic("rt: Submit during Run")
	}
	if r.installed {
		panic("rt: Submit after Install")
	}
	if spec.EPSocket != NoEPHint && (spec.EPSocket < 0 || spec.EPSocket >= r.mach.Sockets()) {
		panic(fmt.Sprintf("rt: EP socket %d out of range", spec.EPSocket))
	}
	if spec.Flops < 0 {
		panic("rt: negative flops")
	}
	id := r.tdg.AddNode(spec.Label, int64(spec.Flops))
	t := &Task{
		ID:       id,
		Label:    spec.Label,
		Flops:    spec.Flops,
		Accesses: spec.Accesses,
		EPSocket: spec.EPSocket,
		Window:   r.nextWindowSlot(),
		Socket:   -1,
		Core:     -1,
		pickedBy: AnySocket,
	}
	r.tasks = append(r.tasks, t)
	// Taskwait semantics: everything after a barrier depends on it.
	if r.barrierTask != nil && r.barrierTask != t {
		b := r.barrierTask
		b.succs = append(b.succs, t)
		t.nDeps++
		r.tdg.AddEdge(b.ID, t.ID, 1)
	}

	addDep := func(from *Task, w int64) {
		if from == t {
			return // e.g. in+out on the same region within one task
		}
		if !r.tdg.HasEdge(from.ID, t.ID) {
			from.succs = append(from.succs, t)
			t.nDeps++
		}
		r.tdg.AddEdge(from.ID, t.ID, w)
	}
	for _, a := range spec.Accesses {
		if a.Region == nil {
			panic("rt: access with nil region")
		}
		tr := r.tracks[a.Region.ID()]
		if tr == nil {
			tr = &regionTrack{}
			r.tracks[a.Region.ID()] = tr
		}
		if a.Mode.Reads() {
			if tr.lastWriter != nil {
				addDep(tr.lastWriter, a.Region.Bytes()) // RAW: real data
			}
		}
		if a.Mode.Writes() {
			if tr.lastWriter != nil {
				addDep(tr.lastWriter, 1) // WAW: ordering only
			}
			for _, rd := range tr.readers {
				addDep(rd, 1) // WAR: ordering only
			}
		}
	}
	// Update trackers after dependence edges are drawn.
	for _, a := range spec.Accesses {
		tr := r.tracks[a.Region.ID()]
		if a.Mode.Writes() {
			tr.lastWriter = t
			tr.readers = tr.readers[:0]
		}
		if a.Mode.Reads() && a.Mode == In {
			tr.readers = append(tr.readers, t)
		}
	}
	return t
}

// ResidencyBytes returns, per socket, the allocated bytes of the task's
// accessed regions — the weights LAS uses to pick a socket.
func (r *Runtime) ResidencyBytes(t *Task) []int64 {
	out := make([]int64, r.mach.Sockets())
	for _, a := range t.Accesses {
		for s, b := range a.Region.BytesOnSocket(r.mach.Sockets()) {
			out[s] += b
		}
	}
	return out
}

// QueueLen returns the number of tasks queued on a socket (socket queue
// plus the core queues of its cores).
func (r *Runtime) QueueLen(socket int) int {
	n := len(r.sockQ[socket])
	lo, hi := r.mach.CoresOf(socket)
	for c := lo; c < hi; c++ {
		n += len(r.coreQ[c])
	}
	return n
}

// At schedules fn at simulated time now+d (exposed for policies charging
// partitioning cost).
func (r *Runtime) At(d sim.Time, fn func()) { r.mach.Engine().After(d, fn) }

// ReleaseDeferred re-offers every task in the temporary queue to the
// policy. Policies call it when a pending partition completes.
func (r *Runtime) ReleaseDeferred() {
	pending := r.tempQ
	r.tempQ = nil
	for _, t := range pending {
		t.state = stateReady
		r.place(t)
	}
}

// DeferredCount returns the tasks currently parked in the temporary queue.
func (r *Runtime) DeferredCount() int { return len(r.tempQ) }

// Run executes all submitted tasks to completion and returns the result.
// It can only be called once.
func (r *Runtime) Run() Result {
	if r.ranAlready {
		panic("rt: Run called twice")
	}
	r.ranAlready = true
	r.running = true
	r.remaining = len(r.tasks)
	if p, ok := r.pol.(Preparer); ok {
		p.Prepare(r)
	}
	// Make all dependency-free tasks ready at t=0, in submission order.
	for _, t := range r.tasks {
		if t.nDeps == 0 {
			r.makeReady(t)
		}
	}
	end := r.mach.Engine().Run()
	if r.remaining != 0 {
		panic(fmt.Sprintf("rt: %d tasks never ran (dependency deadlock?)", r.remaining))
	}
	r.running = false
	r.stats.Makespan = end
	r.stats.TasksRun = len(r.tasks)
	r.finishStats()
	return r.stats
}

func (r *Runtime) makeReady(t *Task) {
	t.state = stateReady
	t.ReadyAt = r.Now()
	r.place(t)
}

// place asks the policy for a placement and enqueues the task.
func (r *Runtime) place(t *Task) {
	pick := r.pol.PickSocket(r, t)
	switch {
	case pick == DeferPlacement:
		t.state = stateDeferred
		r.tempQ = append(r.tempQ, t)
		r.stats.Deferred++
		return
	case pick == AnySocket:
		t.pickedBy = AnySocket
		core := r.rrNext % r.mach.Cores()
		r.rrNext++
		t.state = stateQueued
		r.coreQ[core] = append(r.coreQ[core], t)
		if !r.coreBusy[core] {
			r.dispatch(core)
		} else if r.opts.Steal {
			r.wakeIdleCore()
		}
		return
	case pick >= 0 && pick < r.mach.Sockets():
		t.pickedBy = pick
		t.state = stateQueued
		r.sockQ[pick] = append(r.sockQ[pick], t)
		lo, hi := r.mach.CoresOf(pick)
		for c := lo; c < hi; c++ {
			if !r.coreBusy[c] {
				r.dispatch(c)
				return
			}
		}
		if r.opts.Steal {
			r.wakeIdleCore()
		}
		return
	default:
		panic(fmt.Sprintf("rt: policy %s picked socket %d of %d", r.pol.Name(), pick, r.mach.Sockets()))
	}
}

// wakeIdleCore nudges one idle core (if any) to look for work — needed when
// work lands on a socket whose cores are all busy but other sockets idle.
func (r *Runtime) wakeIdleCore() {
	for c := 0; c < r.mach.Cores(); c++ {
		if !r.coreBusy[c] {
			r.dispatch(c)
			return
		}
	}
}

// dispatch lets an idle core pick its next task: own core queue, then its
// socket's queue, then stealing (nearest socket first).
func (r *Runtime) dispatch(core int) {
	if r.coreBusy[core] {
		return
	}
	t := r.pickWork(core)
	if t == nil {
		return
	}
	r.execute(core, t)
}

// stealVictim pairs a candidate victim socket with its hop distance.
type stealVictim struct{ s, d int }

func (r *Runtime) pickWork(core int) *Task {
	if q := r.coreQ[core]; len(q) > 0 {
		t := q[0]
		r.coreQ[core] = q[1:]
		return t
	}
	s := r.mach.SocketOf(core)
	if q := r.sockQ[s]; len(q) > 0 {
		t := q[0]
		r.sockQ[s] = q[1:]
		return t
	}
	// Intra-socket steal from sibling core queues: no NUMA cost, always on.
	lo, hi := r.mach.CoresOf(s)
	for c := lo; c < hi; c++ {
		if c == core {
			continue
		}
		if q := r.coreQ[c]; len(q) > 0 {
			t := q[len(q)-1]
			r.coreQ[c] = q[:len(q)-1]
			return t
		}
	}
	if !r.opts.Steal || r.stealVeto {
		return nil
	}
	// Cross-socket steal: visit victims nearest-first (then lowest index),
	// and only rob sockets whose backlog exceeds the threshold — queues a
	// victim will drain shortly are left alone, protecting locality.
	victims := r.victims[:0]
	for v := 0; v < r.mach.Sockets(); v++ {
		if v != s {
			victims = append(victims, stealVictim{s: v, d: r.mach.Hops(s, v)})
		}
	}
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && (victims[j].d < victims[j-1].d ||
			(victims[j].d == victims[j-1].d && victims[j].s < victims[j-1].s)); j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
	minBacklog := r.opts.StealThreshold * r.mach.Config().CoresPerSocket
	for _, v := range victims {
		if r.QueueLen(v.s) < minBacklog {
			continue
		}
		if q := r.sockQ[v.s]; len(q) > 0 {
			t := q[len(q)-1] // steal the youngest: oldest stays local
			r.sockQ[v.s] = q[:len(q)-1]
			t.Stolen = true
			r.stats.Steals++
			return t
		}
		vlo, vhi := r.mach.CoresOf(v.s)
		for c := vlo; c < vhi; c++ {
			if q := r.coreQ[c]; len(q) > 0 {
				t := q[len(q)-1]
				r.coreQ[c] = q[:len(q)-1]
				t.Stolen = true
				r.stats.Steals++
				return t
			}
		}
	}
	return nil
}

// execute runs a task on a core: read phase (fetch inputs), compute phase,
// write phase (store outputs), then completion.
func (r *Runtime) execute(core int, t *Task) {
	socket := r.mach.SocketOf(core)
	r.coreBusy[core] = true
	r.coreTask[core] = t
	t.state = stateRunning
	t.Core = core
	t.Socket = socket
	t.StartAt = r.Now()
	r.stats.SocketTasks[socket]++
	if r.opts.Observer != nil {
		r.opts.Observer.TaskStart(t)
	}

	r.readPhase(core, t, func() {
		r.mach.Engine().After(r.mach.ComputeTime(t.Flops), func() {
			r.writePhase(core, t, func() {
				r.complete(core, t)
			})
		})
	})
}

// readPhase fetches every input byte from its home socket, concurrently.
// Unallocated input pages are first-touched on the executing socket (the
// reader allocates, as Linux would).
func (r *Runtime) readPhase(core int, t *Task, done func()) {
	socket := r.mach.SocketOf(core)
	perHome := r.scratchHome
	for i := range perHome {
		perHome[i] = 0
	}
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue
		}
		if !a.Region.Allocated() {
			a.Region.Touch(socket)
		}
		for s, b := range a.Region.BytesOnSocket(r.mach.Sockets()) {
			perHome[s] += b
		}
	}
	r.fanOutTransfers(socket, perHome, done)
}

// writePhase stores outputs to their home sockets. Unallocated output pages
// are first-touched locally — this is deferred allocation paying off: a
// task's output lands on the socket it ran on.
func (r *Runtime) writePhase(core int, t *Task, done func()) {
	socket := r.mach.SocketOf(core)
	perHome := r.scratchHome
	for i := range perHome {
		perHome[i] = 0
	}
	for _, a := range t.Accesses {
		if !a.Mode.Writes() {
			continue
		}
		if !a.Region.Allocated() {
			a.Region.Touch(socket)
		}
		for s, b := range a.Region.BytesOnSocket(r.mach.Sockets()) {
			perHome[s] += b
		}
	}
	r.fanOutTransfers(socket, perHome, done)
}

// fanOutTransfers launches one transfer per non-empty home socket and calls
// done when all land. Zero total bytes completes immediately (synchronously,
// keeping zero-work tasks cheap for the event queue).
func (r *Runtime) fanOutTransfers(execSocket int, perHome []int64, done func()) {
	pendingTransfers := 0
	for _, b := range perHome {
		if b > 0 {
			pendingTransfers++
		}
	}
	if pendingTransfers == 0 {
		done()
		return
	}
	for home, b := range perHome {
		if b == 0 {
			continue
		}
		hops := r.mach.Hops(execSocket, home)
		if hops == 0 {
			r.stats.LocalBytes += b
		} else {
			r.stats.RemoteBytes += b
			r.stats.RemoteByteHops += int64(hops) * b
		}
		r.mach.Transfer(home, execSocket, b, func() {
			pendingTransfers--
			if pendingTransfers == 0 {
				done()
			}
		})
	}
}

// complete finalizes a task: wake dependents, free the core, dispatch.
func (r *Runtime) complete(core int, t *Task) {
	t.state = stateDone
	t.EndAt = r.Now()
	r.stats.BusyTime[core] += t.EndAt - t.StartAt
	r.coreBusy[core] = false
	r.coreTask[core] = nil
	r.remaining--
	if r.opts.Observer != nil {
		r.opts.Observer.TaskEnd(t)
	}
	if h, ok := r.pol.(TaskDoneHook); ok {
		h.TaskDone(r, t)
	}
	for _, succ := range t.succs {
		succ.nDeps--
		if succ.nDeps == 0 && succ.state == stateBlocked {
			r.makeReady(succ)
		}
	}
	r.dispatch(core)
}
