package rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"numadag/internal/graph"
	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/sim"
	"numadag/internal/xrand"
)

// Options configures a Runtime.
type Options struct {
	// WindowSize caps the tasks per submission window (the paper's window
	// size limit). Zero means a single unbounded window.
	WindowSize int
	// Seed drives every random decision (tie-breaks, stealing victims).
	Seed uint64
	// Steal enables the idle-core cross-socket work-stealing fallback.
	// Stealing within a socket (between a socket's core queues) is always
	// allowed — it has no NUMA cost.
	Steal bool
	// StealThreshold is the minimum backlog per victim core (queued tasks
	// divided by the victim socket's cores) before an idle remote core may
	// steal. A positive threshold keeps stealing a pressure-relief valve
	// instead of a locality shredder: a victim that will drain its queue
	// within a couple of task lengths is left alone.
	StealThreshold int
	// PartitionCostPerTask is the simulated time charged per window task
	// when a policy partitions a window (RGP's SCOTCH invocation). The
	// runtime multiplies it by the window's task count.
	PartitionCostPerTask sim.Time
	// Observer optionally receives task lifecycle events (tracing).
	Observer Observer
}

// DefaultOptions returns the runtime settings used across the evaluation:
// window of 2048 tasks, cross-socket stealing as a pressure valve (victim
// queue of at least one task per victim core), 200ns of partitioning cost
// per task (SCOTCH partitions ~10k-node graphs in a few milliseconds).
func DefaultOptions() Options {
	return Options{
		WindowSize:           2048,
		Seed:                 1,
		Steal:                true,
		StealThreshold:       2,
		PartitionCostPerTask: 200,
	}
}

// regionTrack holds per-region dependence bookkeeping (OmpSs semantics).
type regionTrack struct {
	lastWriter *Task
	readers    []*Task // readers since the last write
}

// Runtime executes submitted tasks over a simulated machine under a Policy.
type Runtime struct {
	mach *machine.Machine
	mem  *memory.Manager
	pol  Policy
	opts Options
	rng  *xrand.Rand

	tdg    *graph.DAG
	tasks  []*Task
	tracks map[int]*regionTrack // by region ID

	// Queues.
	sockQ []taskDeque // per-socket FIFO (back end feeds stealing)
	coreQ []taskDeque // per-core FIFO (cyclic placement)
	tempQ []*Task     // temporary queue (deferred placement)
	// tempSpare is the retired tempQ buffer ReleaseDeferred swaps in, so
	// draining the temporary queue recycles capacity instead of dropping it.
	tempSpare []*Task
	rrNext    int // cyclic core counter

	coreBusy []bool
	coreTask []*Task

	running    bool
	ranAlready bool
	released   bool
	remaining  int  // tasks not yet done
	stealVeto  bool // policy forbids cross-socket stealing

	// Optional Observer extensions, type-asserted once at NewRuntime so the
	// hot path tests one nil field instead of a dynamic assertion per event.
	obsXfer  TransferObserver
	obsSteal StealObserver

	// Async-completion state (Start). onDone non-nil marks a runtime whose
	// caller drives the engine externally — the cluster simulator, where many
	// runtimes share one clock; startAt anchors its Makespan, which is a
	// duration from job start rather than from the engine epoch, and asyncRun
	// tells finishStats to window port utilization over [startAt, now] using
	// the portBase traffic baseline sampled at Start (the machine's integrals
	// are cumulative across the jobs that shared it).
	onDone   func(Result)
	startAt  sim.Time
	asyncRun bool
	portBase []float64
	portNow  []float64

	// Window bookkeeping: windows close on count (WindowSize) or at an
	// explicit Barrier.
	curWindow   int
	windowCount int

	// Hot-path scratch, reused across calls (the runtime is single-threaded
	// on the engine goroutine): per-home byte totals for read/write phases,
	// per-socket residency for ResidencyBytesScratch, and the sorted victim
	// list for cross-socket stealing.
	scratchHome []int64
	resScratch  []int64
	victims     []stealVictim
	// coreConts holds each core's persistent phase continuations: the
	// execute -> read -> compute -> write -> complete chain used to allocate
	// three closures per task; with one task per core at a time, per-core
	// prebuilt continuations reading coreTask[core] are equivalent and
	// allocation-free. The closures capture the Runtime pointer, which pool
	// reuse keeps stable.
	coreConts []coreCont
	// Arena backing for Install and audit, recycled through the runtime pool:
	// one slab of Task structs, one of task pointers, one for all successor
	// lists, one for all access lists.
	taskArena  []Task
	succSlab   []*Task
	accSlab    []Access
	regScratch []*memory.Region
	auditCore  [][]*Task
	// barrierTask, when non-nil, is the synchronization task every
	// subsequently submitted task must depend on (taskwait semantics).
	barrierTask *Task
	barriers    int
	// barrierIDs records the sync tasks Barrier submitted, in order, so a
	// Snapshot can replay the window state machine exactly.
	barrierIDs []graph.NodeID
	// installed marks a runtime whose task graph came from a Snapshot;
	// further Submit/Barrier calls are rejected because the dependence
	// trackers were never populated.
	installed bool

	stats Result
}

// runtimePool recycles released runtimes so a sweep's replicates reuse one
// runtime's grow-only state (queues, arenas, region pool, continuations)
// instead of re-growing it per cell.
var runtimePool sync.Pool

// NewRuntime creates a runtime over the machine, with its own memory
// manager. It draws on the pool of Released runtimes when one is available.
func NewRuntime(m *machine.Machine, pol Policy, opts Options) *Runtime {
	if pol == nil {
		panic("rt: nil policy")
	}
	if opts.WindowSize < 0 || opts.PartitionCostPerTask < 0 {
		panic("rt: negative option")
	}
	r, _ := runtimePool.Get().(*Runtime)
	if r == nil {
		r = &Runtime{}
	}
	mem := r.mem
	if mem == nil || mem.Sockets() != m.Sockets() || mem.PageSize() != memory.DefaultPageSize {
		mem = memory.NewManager(m.Sockets())
	} else {
		mem.Reset()
	}
	rng := r.rng
	if rng == nil {
		rng = xrand.New(opts.Seed)
	} else {
		rng.Reseed(opts.Seed)
	}
	*r = Runtime{
		mach:        m,
		mem:         mem,
		pol:         pol,
		opts:        opts,
		rng:         rng,
		tdg:         graph.New(),
		tasks:       r.tasks[:0],
		sockQ:       resetDeques(r.sockQ, m.Sockets()),
		coreQ:       resetDeques(r.coreQ, m.Cores()),
		tempQ:       r.tempQ[:0],
		tempSpare:   r.tempSpare[:0],
		coreBusy:    resetSlice(r.coreBusy, m.Cores()),
		coreTask:    resetSlice(r.coreTask, m.Cores()),
		scratchHome: resetSlice(r.scratchHome, m.Sockets()),
		resScratch:  resetSlice(r.resScratch, m.Sockets()),
		victims:     r.victims[:0],
		portBase:    r.portBase[:0],
		portNow:     r.portNow[:0],
		barrierIDs:  r.barrierIDs[:0],
		coreConts:   r.coreConts,
		taskArena:   r.taskArena,
		succSlab:    r.succSlab,
		accSlab:     r.accSlab,
		regScratch:  r.regScratch,
		auditCore:   r.auditCore,
	}
	// The per-run stats slices escape through the returned Result and must
	// stay fresh; everything above is internal and safely recycled.
	r.stats.BusyTime = make([]sim.Time, m.Cores())
	r.stats.SocketTasks = make([]int, m.Sockets())
	r.buildConts(m.Cores())
	if v, ok := pol.(StealVeto); ok && v.VetoSteal() {
		r.stealVeto = true
	}
	if o := opts.Observer; o != nil {
		r.obsXfer, _ = o.(TransferObserver)
		r.obsSteal, _ = o.(StealObserver)
	}
	return r
}

// resetQueues resizes a queue-of-queues to n empty queues, keeping every
// inner backing array.
func resetQueues(qs [][]*Task, n int) [][]*Task {
	if cap(qs) < n {
		return make([][]*Task, n)
	}
	qs = qs[:n]
	for i := range qs {
		qs[i] = qs[i][:0]
	}
	return qs
}

// taskDeque is a reusable double-ended task queue: FIFO dispatch pops the
// front, work stealing robs the back. Popped front slots are reclaimed by
// compacting in place rather than re-slicing the head away, so a pooled
// runtime's queues stop allocating once grown to a run's high-water mark.
type taskDeque struct {
	buf  []*Task
	head int
}

func (q *taskDeque) len() int { return len(q.buf) - q.head }

func (q *taskDeque) pushBack(t *Task) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, t)
}

func (q *taskDeque) popFront() *Task {
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

func (q *taskDeque) popBack() *Task {
	t := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

// resetDeques resizes a deque list to n empty deques, keeping every backing
// array.
func resetDeques(qs []taskDeque, n int) []taskDeque {
	if cap(qs) < n {
		return make([]taskDeque, n)
	}
	qs = qs[:n]
	for i := range qs {
		qs[i].buf = qs[i].buf[:0]
		qs[i].head = 0
	}
	return qs
}

// resetSlice resizes s to n zeroed elements, reusing its backing array.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Release returns the runtime's grow-only state to the package pool for
// reuse by future NewRuntime calls. The caller must own the runtime
// exclusively and retain no references to its tasks or regions afterwards —
// in particular Release must not be used when an Observer was configured,
// since observers typically hold *Task beyond the run. The per-run Result
// (and its slices) remains valid. Release is a no-op on a second call.
func (r *Runtime) Release() {
	if r.running {
		panic("rt: Release during Run")
	}
	if r.released {
		return
	}
	r.released = true
	releases.Add(1)
	runtimePool.Put(r)
}

// releases counts completed Release calls process-wide; tests use it to
// assert the Release-vs-Observer contract (a runner must not recycle a
// runtime whose tasks an observer may still hold).
var releases atomic.Uint64

// Releases returns the number of runtimes released to the pool since
// process start. It only ever grows; tests diff it across an operation.
func Releases() uint64 { return releases.Load() }

// Machine returns the simulated machine.
func (r *Runtime) Machine() *machine.Machine { return r.mach }

// Mem returns the memory manager applications allocate regions from.
func (r *Runtime) Mem() *memory.Manager { return r.mem }

// Rand returns the runtime's seeded generator (policies share it so a run
// remains a single deterministic stream).
func (r *Runtime) Rand() *xrand.Rand { return r.rng }

// Graph returns the task dependency graph built so far. Node IDs equal task
// IDs.
func (r *Runtime) Graph() *graph.DAG { return r.tdg }

// Tasks returns all submitted tasks in submission order.
func (r *Runtime) Tasks() []*Task { return r.tasks }

// Task returns the task with the given ID.
func (r *Runtime) Task(id graph.NodeID) *Task { return r.tasks[id] }

// Now returns the current simulated time.
func (r *Runtime) Now() sim.Time { return r.mach.Engine().Now() }

// Options returns the runtime's options.
func (r *Runtime) Options() Options { return r.opts }

// nextWindowSlot returns the window for the task being submitted and
// advances the count-based window state.
func (r *Runtime) nextWindowSlot() int {
	w := r.curWindow
	r.windowCount++
	if r.opts.WindowSize > 0 && r.windowCount >= r.opts.WindowSize {
		r.curWindow++
		r.windowCount = 0
	}
	return w
}

// Barrier inserts a synchronization point, as an OmpSs taskwait would:
// every task submitted afterwards depends (transitively, through a zero-work
// sync task) on every task submitted before, and the current submission
// window closes — the paper's runtime partitions the accumulated subgraph
// "once the execution goes through a barrier point" (§2.2). Calling Barrier
// with no tasks submitted since the last one is a no-op.
func (r *Runtime) Barrier() {
	if r.running {
		panic("rt: Barrier during Run")
	}
	if r.installed {
		panic("rt: Barrier after Install")
	}
	if len(r.tasks) == 0 || r.tasks[len(r.tasks)-1] == r.barrierTask {
		return // nothing submitted since the last barrier
	}
	// Close the current window so the sync task opens a fresh one.
	if r.windowCount > 0 {
		r.curWindow++
		r.windowCount = 0
	}
	r.barriers++
	sync := r.Submit(TaskSpec{Label: fmt.Sprintf("barrier#%d", r.barriers), EPSocket: NoEPHint})
	// Wire every current leaf (except the sync task itself) into the sync
	// task; non-leaves reach it transitively through their successors.
	for _, t := range r.tasks {
		if t == sync {
			continue
		}
		if len(t.succs) == 0 && !r.tdg.HasEdge(t.ID, sync.ID) {
			t.succs = append(t.succs, sync)
			sync.nDeps++
			r.tdg.AddEdge(t.ID, sync.ID, 1)
		}
	}
	r.barrierTask = sync
	r.barrierIDs = append(r.barrierIDs, sync.ID)
	// The sync task consumed one slot of the fresh window; give user tasks
	// the full window after the barrier.
	r.windowCount = 0
	sync.Window = r.curWindow
}

// Barriers returns the number of barriers inserted.
func (r *Runtime) Barriers() int { return r.barriers }

// Windows returns the number of submission windows.
func (r *Runtime) Windows() int {
	if len(r.tasks) == 0 {
		return 0
	}
	return r.tasks[len(r.tasks)-1].Window + 1
}

// WindowRange returns the half-open submission-index range [lo, hi) of
// window w's tasks. Window values are non-decreasing in submission order
// (both the count-based state machine and Barrier only ever advance the
// window), so each window is one contiguous run of r.Tasks().
func (r *Runtime) WindowRange(w int) (lo, hi int) {
	lo = sort.Search(len(r.tasks), func(i int) bool { return r.tasks[i].Window >= w })
	hi = sort.Search(len(r.tasks), func(i int) bool { return r.tasks[i].Window > w })
	return lo, hi
}

// WindowTasks returns the tasks of window w in submission order. The result
// is a sub-slice of the runtime's own task list; callers must not mutate it.
func (r *Runtime) WindowTasks(w int) []*Task {
	lo, hi := r.WindowRange(w)
	return r.tasks[lo:hi]
}

// Submit registers a task, deriving its dependences from region accesses:
// a read depends on the region's last writer (RAW); a write depends on the
// last writer (WAW) and on every reader since (WAR). RAW and WAW edges are
// weighted with the region's bytes (the data the dependency represents);
// WAR edges carry weight 1 (pure ordering). Submit must be called before
// Run; the TDG is then complete, and the window mechanism reproduces the
// paper's partial-knowledge partitioning.
func (r *Runtime) Submit(spec TaskSpec) *Task {
	if r.running {
		panic("rt: Submit during Run")
	}
	if r.installed {
		panic("rt: Submit after Install")
	}
	if spec.EPSocket != NoEPHint && (spec.EPSocket < 0 || spec.EPSocket >= r.mach.Sockets()) {
		panic(fmt.Sprintf("rt: EP socket %d out of range", spec.EPSocket))
	}
	if spec.Flops < 0 {
		panic("rt: negative flops")
	}
	if r.tracks == nil {
		r.tracks = make(map[int]*regionTrack)
	}
	id := r.tdg.AddNode(spec.Label, int64(spec.Flops))
	t := &Task{
		ID:       id,
		Label:    spec.Label,
		Flops:    spec.Flops,
		Accesses: spec.Accesses,
		EPSocket: spec.EPSocket,
		Window:   r.nextWindowSlot(),
		Socket:   -1,
		Core:     -1,
		pickedBy: AnySocket,
	}
	r.tasks = append(r.tasks, t)
	// Taskwait semantics: everything after a barrier depends on it.
	if r.barrierTask != nil && r.barrierTask != t {
		b := r.barrierTask
		b.succs = append(b.succs, t)
		t.nDeps++
		r.tdg.AddEdge(b.ID, t.ID, 1)
	}

	addDep := func(from *Task, w int64) {
		if from == t {
			return // e.g. in+out on the same region within one task
		}
		if !r.tdg.HasEdge(from.ID, t.ID) {
			from.succs = append(from.succs, t)
			t.nDeps++
		}
		r.tdg.AddEdge(from.ID, t.ID, w)
	}
	for _, a := range spec.Accesses {
		if a.Region == nil {
			panic("rt: access with nil region")
		}
		tr := r.tracks[a.Region.ID()]
		if tr == nil {
			tr = &regionTrack{}
			r.tracks[a.Region.ID()] = tr
		}
		if a.Mode.Reads() {
			if tr.lastWriter != nil {
				addDep(tr.lastWriter, a.Region.Bytes()) // RAW: real data
			}
		}
		if a.Mode.Writes() {
			if tr.lastWriter != nil {
				addDep(tr.lastWriter, 1) // WAW: ordering only
			}
			for _, rd := range tr.readers {
				addDep(rd, 1) // WAR: ordering only
			}
		}
	}
	// Update trackers after dependence edges are drawn.
	for _, a := range spec.Accesses {
		tr := r.tracks[a.Region.ID()]
		if a.Mode.Writes() {
			tr.lastWriter = t
			tr.readers = tr.readers[:0]
		}
		if a.Mode.Reads() && a.Mode == In {
			tr.readers = append(tr.readers, t)
		}
	}
	return t
}

// ResidencyBytes returns, per socket, the allocated bytes of the task's
// accessed regions — the weights LAS uses to pick a socket.
func (r *Runtime) ResidencyBytes(t *Task) []int64 {
	out := make([]int64, r.mach.Sockets())
	for _, a := range t.Accesses {
		a.Region.AddBytesOnSocket(out)
	}
	return out
}

// ResidencyBytesScratch is ResidencyBytes into a runtime-owned scratch
// slice, valid only until the next call — the allocation-free form policies
// use when querying residency once per task.
func (r *Runtime) ResidencyBytesScratch(t *Task) []int64 {
	out := r.resScratch
	for i := range out {
		out[i] = 0
	}
	for _, a := range t.Accesses {
		a.Region.AddBytesOnSocket(out)
	}
	return out
}

// QueueLen returns the number of tasks queued on a socket (socket queue
// plus the core queues of its cores).
func (r *Runtime) QueueLen(socket int) int {
	n := r.sockQ[socket].len()
	lo, hi := r.mach.CoresOf(socket)
	for c := lo; c < hi; c++ {
		n += r.coreQ[c].len()
	}
	return n
}

// At schedules fn at simulated time now+d (exposed for policies charging
// partitioning cost).
func (r *Runtime) At(d sim.Time, fn func()) { r.mach.Engine().After(d, fn) }

// ReleaseDeferred re-offers every task in the temporary queue to the
// policy. Policies call it when a pending partition completes.
func (r *Runtime) ReleaseDeferred() {
	pending := r.tempQ
	r.tempQ = r.tempSpare[:0]
	r.tempSpare = pending[:0]
	for _, t := range pending {
		t.state = stateReady
		r.place(t)
	}
}

// DeferredCount returns the tasks currently parked in the temporary queue.
func (r *Runtime) DeferredCount() int { return len(r.tempQ) }

// Run executes all submitted tasks to completion and returns the result.
// It can only be called once.
func (r *Runtime) Run() Result {
	if r.ranAlready {
		panic("rt: Run called twice")
	}
	r.ranAlready = true
	r.running = true
	r.remaining = len(r.tasks)
	if p, ok := r.pol.(Preparer); ok {
		p.Prepare(r)
	}
	// Make all dependency-free tasks ready at t=0, in submission order.
	for _, t := range r.tasks {
		if t.nDeps == 0 {
			r.makeReady(t)
		}
	}
	end := r.mach.Engine().Run()
	if r.remaining != 0 {
		panic(fmt.Sprintf("rt: %d tasks never ran (dependency deadlock?)", r.remaining))
	}
	r.running = false
	r.stats.Makespan = end
	r.stats.TasksRun = len(r.tasks)
	r.finishStats()
	return r.stats
}

// Start begins executing all submitted tasks without driving the engine:
// the ready frontier is scheduled and done(result) fires from within the
// engine's event stream when the last task completes. It is the
// shared-clock counterpart of Run — a cluster simulation starts many
// runtimes (one per in-flight job, each on its own machine) against one
// engine and pumps that engine itself. The prologue is identical to Run's;
// only the drain differs: Run pumps the engine and returns the result,
// Start leaves pumping to the caller and delivers the result through done.
//
// A runtime with zero tasks completes immediately: done fires
// synchronously, before Start returns. Like Run, Start can only be called
// once; the runtime must not Submit afterwards.
func (r *Runtime) Start(done func(Result)) {
	if r.ranAlready {
		panic("rt: Start on a runtime that already ran")
	}
	if done == nil {
		panic("rt: Start with nil completion callback")
	}
	r.ranAlready = true
	r.running = true
	r.onDone = done
	r.asyncRun = true
	r.startAt = r.Now()
	r.portBase = resetSlice(r.portBase, r.mach.Sockets())
	r.mach.PortTraffic(r.portBase)
	r.remaining = len(r.tasks)
	if p, ok := r.pol.(Preparer); ok {
		p.Prepare(r)
	}
	if r.remaining == 0 {
		r.finishAsync()
		return
	}
	// Make all dependency-free tasks ready at the current instant, in
	// submission order.
	for _, t := range r.tasks {
		if t.nDeps == 0 {
			r.makeReady(t)
		}
	}
}

// finishAsync finalizes a Start'ed run and delivers the result. running is
// cleared before the callback so the receiver may immediately Release the
// runtime or start a successor job on the same machine.
func (r *Runtime) finishAsync() {
	r.running = false
	r.stats.Makespan = r.Now() - r.startAt
	r.stats.TasksRun = len(r.tasks)
	r.finishStats()
	done := r.onDone
	r.onDone = nil
	done(r.stats)
}

func (r *Runtime) makeReady(t *Task) {
	t.state = stateReady
	t.ReadyAt = r.Now()
	r.place(t)
}

// place asks the policy for a placement and enqueues the task.
func (r *Runtime) place(t *Task) {
	pick := r.pol.PickSocket(r, t)
	switch {
	case pick == DeferPlacement:
		t.state = stateDeferred
		r.tempQ = append(r.tempQ, t)
		r.stats.Deferred++
		return
	case pick == AnySocket:
		t.pickedBy = AnySocket
		core := r.rrNext % r.mach.Cores()
		r.rrNext++
		t.state = stateQueued
		r.coreQ[core].pushBack(t)
		if !r.coreBusy[core] {
			r.dispatch(core)
		} else if r.opts.Steal {
			r.wakeIdleCore()
		}
		return
	case pick >= 0 && pick < r.mach.Sockets():
		t.pickedBy = pick
		t.state = stateQueued
		r.sockQ[pick].pushBack(t)
		lo, hi := r.mach.CoresOf(pick)
		for c := lo; c < hi; c++ {
			if !r.coreBusy[c] {
				r.dispatch(c)
				return
			}
		}
		if r.opts.Steal {
			r.wakeIdleCore()
		}
		return
	default:
		panic(fmt.Sprintf("rt: policy %s picked socket %d of %d", r.pol.Name(), pick, r.mach.Sockets()))
	}
}

// wakeIdleCore nudges one idle core (if any) to look for work — needed when
// work lands on a socket whose cores are all busy but other sockets idle.
func (r *Runtime) wakeIdleCore() {
	for c := 0; c < r.mach.Cores(); c++ {
		if !r.coreBusy[c] {
			r.dispatch(c)
			return
		}
	}
}

// dispatch lets an idle core pick its next task: own core queue, then its
// socket's queue, then stealing (nearest socket first).
func (r *Runtime) dispatch(core int) {
	if r.coreBusy[core] {
		return
	}
	t := r.pickWork(core)
	if t == nil {
		return
	}
	r.execute(core, t)
}

// stealVictim pairs a candidate victim socket with its hop distance.
type stealVictim struct{ s, d int }

func (r *Runtime) pickWork(core int) *Task {
	if q := &r.coreQ[core]; q.len() > 0 {
		return q.popFront()
	}
	s := r.mach.SocketOf(core)
	if q := &r.sockQ[s]; q.len() > 0 {
		return q.popFront()
	}
	// Intra-socket steal from sibling core queues: no NUMA cost, always on.
	lo, hi := r.mach.CoresOf(s)
	for c := lo; c < hi; c++ {
		if c == core {
			continue
		}
		if q := &r.coreQ[c]; q.len() > 0 {
			return q.popBack()
		}
	}
	if !r.opts.Steal || r.stealVeto {
		return nil
	}
	// Cross-socket steal: visit victims nearest-first (then lowest index),
	// and only rob sockets whose backlog exceeds the threshold — queues a
	// victim will drain shortly are left alone, protecting locality.
	victims := r.victims[:0]
	for v := 0; v < r.mach.Sockets(); v++ {
		if v != s {
			victims = append(victims, stealVictim{s: v, d: r.mach.Hops(s, v)})
		}
	}
	r.victims = victims
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && (victims[j].d < victims[j-1].d ||
			(victims[j].d == victims[j-1].d && victims[j].s < victims[j-1].s)); j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
	minBacklog := r.opts.StealThreshold * r.mach.Config().CoresPerSocket
	for _, v := range victims {
		if r.QueueLen(v.s) < minBacklog {
			continue
		}
		if q := &r.sockQ[v.s]; q.len() > 0 {
			t := q.popBack() // steal the youngest: oldest stays local
			t.Stolen = true
			r.stats.Steals++
			if r.obsSteal != nil {
				r.obsSteal.TaskStolen(t, v.s, s)
			}
			return t
		}
		vlo, vhi := r.mach.CoresOf(v.s)
		for c := vlo; c < vhi; c++ {
			if q := &r.coreQ[c]; q.len() > 0 {
				t := q.popBack()
				t.Stolen = true
				r.stats.Steals++
				if r.obsSteal != nil {
					r.obsSteal.TaskStolen(t, v.s, s)
				}
				return t
			}
		}
	}
	return nil
}

// coreCont is one core's persistent execution state machine: the phase
// continuations of the read -> compute -> write -> complete chain, built
// once per core, plus the in-flight transfer countdown of the current
// phase. A core runs one task at a time, so per-task closures are
// unnecessary — each continuation finds its task in coreTask[core].
type coreCont struct {
	pending int    // transfers still in flight for the current phase
	done    func() // continuation once the current phase's transfers land

	afterRead    func() // schedules the compute phase
	afterCompute func() // runs the write phase
	afterWrite   func() // completes the task
	onTransfer   func() // counts one transfer down, firing done at zero
}

// buildConts sizes coreConts for the machine and builds the continuations
// of any core that lacks them. The closures capture the Runtime pointer
// itself (stable across pool reuse), never a task.
func (r *Runtime) buildConts(cores int) {
	if cap(r.coreConts) < cores {
		cc := make([]coreCont, cores)
		copy(cc, r.coreConts)
		r.coreConts = cc
	} else {
		r.coreConts = r.coreConts[:cores]
	}
	for c := range r.coreConts {
		if r.coreConts[c].afterRead != nil {
			r.coreConts[c].pending = 0
			r.coreConts[c].done = nil
			continue
		}
		c := c
		r.coreConts[c].afterRead = func() {
			t := r.coreTask[c]
			r.mach.Engine().After(r.mach.ComputeTime(t.Flops), r.coreConts[c].afterCompute)
		}
		r.coreConts[c].afterCompute = func() {
			r.writePhase(c, r.coreTask[c], r.coreConts[c].afterWrite)
		}
		r.coreConts[c].afterWrite = func() {
			r.complete(c, r.coreTask[c])
		}
		r.coreConts[c].onTransfer = func() {
			cc := &r.coreConts[c]
			cc.pending--
			if cc.pending == 0 {
				cc.done()
			}
		}
	}
}

// execute runs a task on a core: read phase (fetch inputs), compute phase,
// write phase (store outputs), then completion.
func (r *Runtime) execute(core int, t *Task) {
	socket := r.mach.SocketOf(core)
	r.coreBusy[core] = true
	r.coreTask[core] = t
	t.state = stateRunning
	t.Core = core
	t.Socket = socket
	t.StartAt = r.Now()
	r.stats.SocketTasks[socket]++
	if r.opts.Observer != nil {
		r.opts.Observer.TaskStart(t)
	}

	r.readPhase(core, t, r.coreConts[core].afterRead)
}

// readPhase fetches every input byte from its home socket, concurrently.
// Unallocated input pages are first-touched on the executing socket (the
// reader allocates, as Linux would).
func (r *Runtime) readPhase(core int, t *Task, done func()) {
	socket := r.mach.SocketOf(core)
	perHome := r.scratchHome
	for i := range perHome {
		perHome[i] = 0
	}
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue
		}
		if !a.Region.Allocated() {
			a.Region.Touch(socket)
		}
		a.Region.AddBytesOnSocket(perHome)
	}
	r.fanOutTransfers(core, socket, perHome, done)
}

// writePhase stores outputs to their home sockets. Unallocated output pages
// are first-touched locally — this is deferred allocation paying off: a
// task's output lands on the socket it ran on.
func (r *Runtime) writePhase(core int, t *Task, done func()) {
	socket := r.mach.SocketOf(core)
	perHome := r.scratchHome
	for i := range perHome {
		perHome[i] = 0
	}
	for _, a := range t.Accesses {
		if !a.Mode.Writes() {
			continue
		}
		if !a.Region.Allocated() {
			a.Region.Touch(socket)
		}
		a.Region.AddBytesOnSocket(perHome)
	}
	r.fanOutTransfers(core, socket, perHome, done)
}

// fanOutTransfers launches one transfer per non-empty home socket and calls
// done when all land. Zero total bytes completes immediately (synchronously,
// keeping zero-work tasks cheap for the event queue). The countdown lives in
// the core's coreCont — a core has at most one phase in flight, so its
// prebuilt onTransfer continuation replaces a per-transfer closure.
func (r *Runtime) fanOutTransfers(core, execSocket int, perHome []int64, done func()) {
	cc := &r.coreConts[core]
	pendingTransfers := 0
	for _, b := range perHome {
		if b > 0 {
			pendingTransfers++
		}
	}
	if pendingTransfers == 0 {
		done()
		return
	}
	cc.pending = pendingTransfers
	cc.done = done
	for home, b := range perHome {
		if b == 0 {
			continue
		}
		hops := r.mach.Hops(execSocket, home)
		if hops == 0 {
			r.stats.LocalBytes += b
		} else {
			r.stats.RemoteBytes += b
			r.stats.RemoteByteHops += int64(hops) * b
		}
		onLand := cc.onTransfer
		if r.obsXfer != nil {
			// Wrap the landing continuation so TransferEnd fires at the exact
			// completion instant, before the phase countdown. The closure
			// allocates, but only on the traced path — untraced runs keep the
			// prebuilt per-core continuation.
			t, home, b := r.coreTask[core], home, b
			r.obsXfer.TransferStart(t, home, execSocket, b)
			onLand = func() {
				r.obsXfer.TransferEnd(t, home, execSocket, b)
				cc.onTransfer()
			}
		}
		r.mach.Transfer(home, execSocket, b, onLand)
	}
}

// complete finalizes a task: wake dependents, free the core, dispatch.
func (r *Runtime) complete(core int, t *Task) {
	t.state = stateDone
	t.EndAt = r.Now()
	r.stats.BusyTime[core] += t.EndAt - t.StartAt
	r.coreBusy[core] = false
	r.coreTask[core] = nil
	r.remaining--
	if r.opts.Observer != nil {
		r.opts.Observer.TaskEnd(t)
	}
	if h, ok := r.pol.(TaskDoneHook); ok {
		h.TaskDone(r, t)
	}
	for _, succ := range t.succs {
		succ.nDeps--
		if succ.nDeps == 0 && succ.state == stateBlocked {
			r.makeReady(succ)
		}
	}
	r.dispatch(core)
	if r.remaining == 0 && r.onDone != nil {
		r.finishAsync()
	}
}
