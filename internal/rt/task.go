// Package rt implements the task-based runtime system the paper's policies
// plug into — the role Nanos++ plays on the real machine.
//
// Applications submit tasks with region accesses (in/out/inout). The runtime
// derives the task dependency graph exactly as OmpSs does (RAW, WAR and WAW
// over regions), splits the submission stream into windows, and executes the
// graph over the simulated machine: per-socket ready queues, cyclic per-core
// queues for socket-unaware policies, an optional work-stealing fallback,
// and the temporary queue that holds ready tasks while a window's partition
// is still being computed (§2.2 of the paper).
//
// Scheduling decisions are delegated to a Policy; the runtime owns
// everything else. All execution is simulated and deterministic.
//
// # Arena recycling
//
// Runtimes are pooled: Release returns a runtime's grow-only state — task
// and region arenas, successor/access slabs, queues, per-core continuation
// closures, scratch — to a package pool NewRuntime draws from, so a sweep's
// replicates stop allocating once the first run has grown everything to the
// workload's high-water mark. Snapshot.Install carves all per-task storage
// out of those arenas (one slab of Task structs, one backing every
// successor list, one backing every access list) and fully overwrites each
// slot, so recycling cannot leak state between runs. The two Result slices
// and anything an Observer may retain escape the run and are therefore
// always freshly allocated; Release is only legal when no Observer was
// configured and the caller retains no *Task or *Region.
//
// Recycling never trades away determinism: a pooled runtime re-runs a
// configuration bit-identically to a fresh one (queue order, RNG stream,
// event schedule), which the determinism goldens in the root package pin.
package rt

import (
	"fmt"

	"numadag/internal/graph"
	"numadag/internal/memory"
	"numadag/internal/sim"
)

// AccessMode declares how a task uses a region, mirroring OmpSs/OpenMP
// depend clauses.
type AccessMode int

const (
	// In is a read dependence.
	In AccessMode = iota
	// Out is a write dependence (the task fully overwrites the region).
	Out
	// InOut reads and writes the region.
	InOut
)

// String implements fmt.Stringer.
func (m AccessMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Reads reports whether the mode reads the region.
func (m AccessMode) Reads() bool { return m == In || m == InOut }

// Writes reports whether the mode writes the region.
func (m AccessMode) Writes() bool { return m == Out || m == InOut }

// Access is one region dependence of a task.
type Access struct {
	Region *memory.Region
	Mode   AccessMode
}

// TaskSpec describes a task at submission time.
type TaskSpec struct {
	// Label names the task for traces and DOT dumps (e.g. "gemm(2,3)").
	Label string
	// Flops is the task's compute work in floating-point operations (or an
	// equivalent abstract work unit; the machine's CoreFlops converts it to
	// time).
	Flops float64
	// Accesses lists the task's region dependences.
	Accesses []Access
	// EPSocket is the expert programmer's placement (the hardcoded schedule
	// of the paper's EP configuration); NoEPHint if the app provides none.
	EPSocket int
}

// NoEPHint marks the absence of an expert placement hint.
const NoEPHint = -1

// taskState tracks a task through its lifecycle.
type taskState int8

const (
	stateBlocked  taskState = iota // waiting on dependences
	stateReady                     // dependences met, not yet queued/placed
	stateDeferred                  // in the temporary queue (partition pending)
	stateQueued                    // in a ready queue
	stateRunning
	stateDone
)

// Task is a submitted task instance. Fields other than the identification
// ones are managed by the runtime; policies may read them but must not
// write.
type Task struct {
	ID       graph.NodeID
	Label    string
	Flops    float64
	Accesses []Access
	EPSocket int

	// Window is the submission window index the task belongs to.
	Window int

	// Socket and Core record placement once the task starts; -1 before.
	Socket int
	Core   int

	// Stolen reports the task ran on a different socket than the one the
	// policy picked (work-stealing fallback).
	Stolen bool

	// Timeline (simulated).
	ReadyAt sim.Time
	StartAt sim.Time
	EndAt   sim.Time

	state    taskState
	nDeps    int // unresolved predecessors
	succs    []*Task
	pickedBy int // socket chosen by the policy (before stealing), -1 for cyclic
}

// State helpers used by tests and policies.

// Done reports whether the task has finished executing.
func (t *Task) Done() bool { return t.state == stateDone }

// Running reports whether the task is currently executing.
func (t *Task) Running() bool { return t.state == stateRunning }

// NumSuccs returns the number of distinct dependent tasks.
func (t *Task) NumSuccs() int { return len(t.succs) }

// PendingDeps returns the number of unresolved predecessors.
func (t *Task) PendingDeps() int { return t.nDeps }

// InputBytes sums the sizes of the regions the task reads.
func (t *Task) InputBytes() int64 {
	var n int64
	for _, a := range t.Accesses {
		if a.Mode.Reads() {
			n += a.Region.Bytes()
		}
	}
	return n
}

// OutputBytes sums the sizes of the regions the task writes.
func (t *Task) OutputBytes() int64 {
	var n int64
	for _, a := range t.Accesses {
		if a.Mode.Writes() {
			n += a.Region.Bytes()
		}
	}
	return n
}
