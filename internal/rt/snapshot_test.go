package rt

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/sim"
)

// buildMixed submits a small but structurally rich task graph: deferred,
// interleaved and home-placed regions, RAW/WAR/WAW chains, EP hints, and
// (optionally) barriers.
func buildMixed(r *Runtime, barriers bool) {
	a := r.Mem().Alloc("a", 64<<10, memory.Deferred, 0)
	b := r.Mem().Alloc("b", 32<<10, memory.Interleave, 0)
	c := r.Mem().Alloc("c", 16<<10, memory.Home, 1)
	for i := 0; i < 6; i++ {
		r.Submit(TaskSpec{
			Label:    fmt.Sprintf("init%d", i),
			Flops:    2000,
			Accesses: []Access{{Region: a, Mode: Out}},
			EPSocket: i % 2,
		})
	}
	if barriers {
		r.Barrier()
	}
	for i := 0; i < 8; i++ {
		acc := []Access{{Region: a, Mode: In}, {Region: b, Mode: InOut}}
		if i%3 == 0 {
			acc = append(acc, Access{Region: c, Mode: Out})
		}
		r.Submit(TaskSpec{
			Label:    fmt.Sprintf("work%d", i),
			Flops:    4000 + float64(i)*100,
			Accesses: acc,
			EPSocket: NoEPHint,
		})
	}
	if barriers {
		r.Barrier()
		r.Submit(TaskSpec{
			Label:    "final",
			Flops:    1000,
			Accesses: []Access{{Region: c, Mode: In}},
			EPSocket: NoEPHint,
		})
	}
}

func newSnapRT(pol Policy, opts Options) *Runtime {
	return NewRuntime(machine.New(machine.TwoSocketXeon(), sim.NewEngine()), pol, opts)
}

// TestSnapshotInstallEquivalence demands that a snapshot installed into a
// fresh runtime is indistinguishable from rebuilding through Submit: same
// windows, dependence counts, successor order, and a bit-identical run.
func TestSnapshotInstallEquivalence(t *testing.T) {
	for _, barriers := range []bool{false, true} {
		for _, ws := range []int{0, 3, 5, 2048} {
			name := fmt.Sprintf("barriers=%v/ws=%d", barriers, ws)
			opts := Options{WindowSize: ws, Seed: 7, Steal: true, StealThreshold: 2}

			direct := newSnapRT(cyclic{}, opts)
			buildMixed(direct, barriers)

			proto := newSnapRT(pinned(0), Options{}) // options don't matter for capture
			buildMixed(proto, barriers)
			snap, err := Snap(proto)
			if err != nil {
				t.Fatalf("%s: Snap: %v", name, err)
			}
			installed := newSnapRT(cyclic{}, opts)
			snap.Install(installed)

			if len(direct.tasks) != len(installed.tasks) {
				t.Fatalf("%s: task count %d vs %d", name, len(direct.tasks), len(installed.tasks))
			}
			for i := range direct.tasks {
				d, in := direct.tasks[i], installed.tasks[i]
				if d.Label != in.Label || d.Flops != in.Flops || d.EPSocket != in.EPSocket ||
					d.Window != in.Window || d.nDeps != in.nDeps || len(d.succs) != len(in.succs) {
					t.Fatalf("%s: task %d differs: direct {%s f=%v ep=%d w=%d deps=%d succs=%d} installed {%s f=%v ep=%d w=%d deps=%d succs=%d}",
						name, i, d.Label, d.Flops, d.EPSocket, d.Window, d.nDeps, len(d.succs),
						in.Label, in.Flops, in.EPSocket, in.Window, in.nDeps, len(in.succs))
				}
				for j := range d.succs {
					if d.succs[j].ID != in.succs[j].ID {
						t.Fatalf("%s: task %d succ %d: %d vs %d", name, i, j, d.succs[j].ID, in.succs[j].ID)
					}
				}
				if len(d.Accesses) != len(in.Accesses) {
					t.Fatalf("%s: task %d access count differs", name, i)
				}
				for j := range d.Accesses {
					da, ia := d.Accesses[j], in.Accesses[j]
					if da.Mode != ia.Mode || da.Region.ID() != ia.Region.ID() ||
						da.Region.Bytes() != ia.Region.Bytes() || da.Region.Placement() != ia.Region.Placement() {
						t.Fatalf("%s: task %d access %d differs", name, i, j)
					}
				}
			}
			if direct.barriers != installed.barriers {
				t.Fatalf("%s: barriers %d vs %d", name, direct.barriers, installed.barriers)
			}

			dRes := direct.Run()
			iRes := installed.Run()
			if !reflect.DeepEqual(dRes, iRes) {
				t.Fatalf("%s: run results diverge:\ndirect:    %+v\ninstalled: %+v", name, dRes, iRes)
			}
			dSteps := direct.mach.Engine().Steps()
			iSteps := installed.mach.Engine().Steps()
			if dSteps != iSteps {
				t.Fatalf("%s: engine steps %d vs %d", name, dSteps, iSteps)
			}
		}
	}
}

// TestSnapshotSharedAcrossRuns installs one snapshot into several runtimes
// and checks they all reproduce the direct run (the Experiment cache's
// access pattern, minus concurrency — the race detector covers that via the
// core tests).
func TestSnapshotSharedAcrossRuns(t *testing.T) {
	proto := newSnapRT(pinned(0), Options{})
	buildMixed(proto, false)
	snap, err := Snap(proto)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{WindowSize: 4, Seed: 3, Steal: true, StealThreshold: 1}
	direct := newSnapRT(cyclic{}, opts)
	buildMixed(direct, false)
	want := direct.Run()
	for i := 0; i < 3; i++ {
		r := newSnapRT(cyclic{}, opts)
		snap.Install(r)
		if got := r.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("install %d diverged: %+v vs %+v", i, got, want)
		}
	}
}

// TestSnapshotConcurrentInstall installs one snapshot into independent
// runtimes from many goroutines at once — the experiment worker pool's
// access pattern. All runtimes share the captured *graph.DAG read-only;
// under -race this pins the contract that Install and Run never write
// through it (and that the runtime pool hands concurrent callers disjoint
// runtimes).
func TestSnapshotConcurrentInstall(t *testing.T) {
	proto := newSnapRT(pinned(0), Options{})
	buildMixed(proto, true)
	snap, err := Snap(proto)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{WindowSize: 4, Seed: 9, Steal: true, StealThreshold: 1}
	direct := newSnapRT(cyclic{}, opts)
	buildMixed(direct, true)
	want := direct.Run()

	const workers = 8
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				r := newSnapRT(cyclic{}, opts)
				snap.Install(r)
				results[w] = r.Run()
				r.Release()
			}
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("worker %d diverged: %+v vs %+v", w, got, want)
		}
	}
}

func TestSnapshotGuards(t *testing.T) {
	proto := newSnapRT(pinned(0), Options{})
	buildMixed(proto, false)
	snap, err := Snap(proto)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tasks() == 0 || snap.Graph().Len() != snap.Tasks() {
		t.Fatalf("snapshot shape: %d tasks, %d graph nodes", snap.Tasks(), snap.Graph().Len())
	}

	// Submit after Install must panic: the dependence trackers were never
	// populated, so silent acceptance would drop edges.
	r := newSnapRT(pinned(0), Options{})
	snap.Install(r)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Submit after Install did not panic")
			}
		}()
		r.Submit(TaskSpec{Label: "late"})
	}()

	// Install into a non-fresh runtime must panic.
	dirty := newSnapRT(pinned(0), Options{})
	dirty.Submit(TaskSpec{Label: "x"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Install into non-fresh runtime did not panic")
			}
		}()
		snap.Install(dirty)
	}()

	// Snap after Run must fail.
	ran := newSnapRT(pinned(0), Options{})
	buildMixed(ran, false)
	ran.Run()
	if _, err := Snap(ran); err == nil {
		t.Error("Snap after Run did not fail")
	}

	// Regions from a foreign memory manager are rejected.
	foreign := newSnapRT(pinned(0), Options{})
	other := memory.NewManager(2)
	reg := other.Alloc("foreign", 4096, memory.Deferred, 0)
	foreign.Submit(TaskSpec{Label: "f", Accesses: []Access{{Region: reg, Mode: Out}}})
	if _, err := Snap(foreign); err == nil {
		t.Error("Snap with foreign region did not fail")
	}
}
