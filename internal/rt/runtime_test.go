package rt

import (
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/sim"
)

// pinned places every task on a fixed socket.
type pinned int

func (pinned) Name() string                     { return "pinned" }
func (p pinned) PickSocket(*Runtime, *Task) int { return int(p) }

// cyclic mimics DFIFO without importing the policy package.
type cyclic struct{}

func (cyclic) Name() string                   { return "cyclic" }
func (cyclic) PickSocket(*Runtime, *Task) int { return AnySocket }

func newTestRT(t *testing.T, pol Policy, opts Options) *Runtime {
	t.Helper()
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	return NewRuntime(m, pol, opts)
}

func TestSingleTaskRuns(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 1<<16, memory.Deferred, 0)
	tk := r.Submit(TaskSpec{
		Label:    "t0",
		Flops:    8000,
		Accesses: []Access{{Region: reg, Mode: Out}},
		EPSocket: NoEPHint,
	})
	res := r.Run()
	if !tk.Done() {
		t.Fatal("task did not complete")
	}
	if res.TasksRun != 1 {
		t.Fatalf("TasksRun = %d", res.TasksRun)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if tk.Socket != 0 {
		t.Fatalf("task ran on socket %d, want 0", tk.Socket)
	}
	// Deferred output must have been first-touched on socket 0.
	if got := reg.BytesOnSocket(2)[0]; got != 1<<16 {
		t.Fatalf("output homed wrong: %v", reg.BytesOnSocket(2))
	}
}

func TestRAWDependencyOrdersExecution(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
	producer := r.Submit(TaskSpec{Label: "w", Flops: 1000,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	consumer := r.Submit(TaskSpec{Label: "r", Flops: 1000,
		Accesses: []Access{{Region: reg, Mode: In}}, EPSocket: NoEPHint})
	r.Run()
	if consumer.StartAt < producer.EndAt {
		t.Fatalf("consumer started %v before producer ended %v", consumer.StartAt, producer.EndAt)
	}
	if !r.Graph().HasEdge(producer.ID, consumer.ID) {
		t.Fatal("RAW edge missing")
	}
	if w := r.Graph().EdgeWeight(producer.ID, consumer.ID); w != 4096 {
		t.Fatalf("RAW edge weight = %d, want region bytes", w)
	}
}

func TestWARAndWAWDependencies(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
	w1 := r.Submit(TaskSpec{Label: "w1", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	rd := r.Submit(TaskSpec{Label: "r", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: In}}, EPSocket: NoEPHint})
	w2 := r.Submit(TaskSpec{Label: "w2", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	g := r.Graph()
	if !g.HasEdge(w1.ID, w2.ID) {
		t.Error("WAW edge missing")
	}
	if !g.HasEdge(rd.ID, w2.ID) {
		t.Error("WAR edge missing")
	}
	if w := g.EdgeWeight(rd.ID, w2.ID); w != 1 {
		t.Errorf("WAR edge weight = %d, want 1 (ordering only)", w)
	}
	r.Run()
	if w2.StartAt < rd.EndAt || w2.StartAt < w1.EndAt {
		t.Fatal("write-after ordering violated")
	}
}

func TestInOutChainsSerially(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("acc", 4096, memory.Deferred, 0)
	var tasks []*Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, r.Submit(TaskSpec{Label: "acc", Flops: 500,
			Accesses: []Access{{Region: reg, Mode: InOut}}, EPSocket: NoEPHint}))
	}
	r.Run()
	for i := 1; i < len(tasks); i++ {
		if tasks[i].StartAt < tasks[i-1].EndAt {
			t.Fatalf("inout chain overlapped at %d", i)
		}
	}
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	r := newTestRT(t, cyclic{}, Options{})
	// 16 independent compute-only tasks on a 16-core machine: makespan must
	// be ~ one task's compute time, not 16x.
	var tasks []*Task
	for i := 0; i < 16; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		tasks = append(tasks, r.Submit(TaskSpec{Label: "c", Flops: 80000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint}))
	}
	res := r.Run()
	soloCompute := r.Machine().ComputeTime(80000)
	if res.Makespan > soloCompute*3 {
		t.Fatalf("16 independent tasks took %v, solo compute is %v", res.Makespan, soloCompute)
	}
	cores := make(map[int]bool)
	for _, tk := range tasks {
		cores[tk.Core] = true
	}
	if len(cores) != 16 {
		t.Fatalf("cyclic policy used %d distinct cores, want 16", len(cores))
	}
}

func TestPinnedPolicySerializesOnSocket(t *testing.T) {
	opts := Options{}
	opts.Steal = false
	r := newTestRT(t, pinned(1), opts)
	for i := 0; i < 8; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "c", Flops: 8000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	res := r.Run()
	if res.SocketTasks[1] != 8 || res.SocketTasks[0] != 0 {
		t.Fatalf("socket task counts %v, want all on socket 1", res.SocketTasks)
	}
}

func TestStealingRescuesImbalance(t *testing.T) {
	// All tasks pinned to socket 0 with stealing on: socket 1 cores must
	// steal some of the 32 independent tasks.
	opts := Options{Steal: true}
	r := newTestRT(t, pinned(0), opts)
	for i := 0; i < 32; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "c", Flops: 800000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	res := r.Run()
	if res.Steals == 0 {
		t.Fatal("no steals despite gross imbalance")
	}
	if res.SocketTasks[1] == 0 {
		t.Fatal("socket 1 never worked")
	}
}

func TestNoStealKeepsPlacement(t *testing.T) {
	opts := Options{Steal: false}
	r := newTestRT(t, pinned(0), opts)
	for i := 0; i < 32; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "c", Flops: 800000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	res := r.Run()
	if res.Steals != 0 || res.SocketTasks[1] != 0 {
		t.Fatalf("stealing disabled but steals=%d, socket1=%d", res.Steals, res.SocketTasks[1])
	}
}

func TestLocalityMattersEndToEnd(t *testing.T) {
	// Data pre-homed on socket 0, four reader tasks: running the readers on
	// socket 0 (local) must beat running them on socket 1 (remote).
	run := func(execSocket int) sim.Time {
		r := newTestRT(t, pinned(execSocket), Options{Steal: false})
		reg := r.Mem().Alloc("data", 4<<20, memory.Home, 0)
		for i := 0; i < 4; i++ {
			out := r.Mem().Alloc("out", 64, memory.Deferred, 0)
			r.Submit(TaskSpec{Label: "consume", Flops: 1000,
				Accesses: []Access{{Region: reg, Mode: In}, {Region: out, Mode: Out}},
				EPSocket: NoEPHint})
		}
		return r.Run().Makespan
	}
	local, remote := run(0), run(1)
	if local >= remote {
		t.Fatalf("local run (%v) not faster than remote run (%v)", local, remote)
	}
}

func TestRemoteBytesAccounting(t *testing.T) {
	r := newTestRT(t, pinned(1), Options{Steal: false})
	reg := r.Mem().Alloc("data", 1<<20, memory.Home, 0)
	out := r.Mem().Alloc("out", 1<<20, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: In}, {Region: out, Mode: Out}},
		EPSocket: NoEPHint})
	res := r.Run()
	if res.RemoteBytes != 1<<20 {
		t.Fatalf("RemoteBytes = %d, want input megabyte", res.RemoteBytes)
	}
	// Output was deferred -> homed on socket 1 -> local write.
	if res.LocalBytes != 1<<20 {
		t.Fatalf("LocalBytes = %d, want output megabyte", res.LocalBytes)
	}
	if res.RemoteRatio() != 0.5 {
		t.Fatalf("RemoteRatio = %v", res.RemoteRatio())
	}
}

func TestWindowAssignment(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{WindowSize: 3})
	for i := 0; i < 8; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "t", Flops: 10,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	if r.Windows() != 3 {
		t.Fatalf("windows = %d, want 3", r.Windows())
	}
	if got := len(r.WindowTasks(0)); got != 3 {
		t.Fatalf("window 0 has %d tasks", got)
	}
	if got := len(r.WindowTasks(2)); got != 2 {
		t.Fatalf("window 2 has %d tasks", got)
	}
	for _, tk := range r.Tasks() {
		if want := int(tk.ID) / 3; tk.Window != want {
			t.Fatalf("task %d window %d, want %d", tk.ID, tk.Window, want)
		}
	}
}

// deferring defers the first window until released.
type deferring struct {
	released bool
}

func (*deferring) Name() string { return "deferring" }
func (d *deferring) PickSocket(r *Runtime, t *Task) int {
	if !d.released && t.Window == 0 {
		return DeferPlacement
	}
	return 0
}
func (d *deferring) Prepare(r *Runtime) {
	r.At(5000, func() {
		d.released = true
		r.ReleaseDeferred()
	})
}

func TestTemporaryQueueDefersExecution(t *testing.T) {
	r := newTestRT(t, &deferring{}, Options{WindowSize: 4})
	var tasks []*Task
	for i := 0; i < 4; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		tasks = append(tasks, r.Submit(TaskSpec{Label: "t", Flops: 10,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint}))
	}
	res := r.Run()
	if res.Deferred != 4 {
		t.Fatalf("Deferred = %d, want 4", res.Deferred)
	}
	for _, tk := range tasks {
		if tk.StartAt < 5000 {
			t.Fatalf("deferred task started at %v, before release", tk.StartAt)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() *Runtime {
		r := newTestRT(t, cyclic{}, Options{Seed: 42, Steal: true})
		regs := make([]*memory.Region, 6)
		for i := range regs {
			regs[i] = r.Mem().Alloc("r", 32<<10, memory.Deferred, 0)
		}
		for i := 0; i < 40; i++ {
			r.Submit(TaskSpec{Label: "t", Flops: float64(1000 * (i%7 + 1)),
				Accesses: []Access{
					{Region: regs[i%6], Mode: InOut},
					{Region: regs[(i+1)%6], Mode: In},
				}, EPSocket: NoEPHint})
		}
		return r
	}
	a := build().Run()
	b := build().Run()
	if a.Makespan != b.Makespan || a.RemoteBytes != b.RemoteBytes || a.Steals != b.Steals {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunTwicePanics(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	r.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	r.Run()
}

func TestSubmitValidation(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
	for i, f := range []func(){
		func() {
			r.Submit(TaskSpec{Flops: -1, Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
		},
		func() { r.Submit(TaskSpec{EPSocket: 5}) },
		func() { r.Submit(TaskSpec{Accesses: []Access{{Region: nil, Mode: Out}}, EPSocket: NoEPHint}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid spec accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestCutBytesStat(t *testing.T) {
	// Producer on socket 0, consumer on socket 1 (per-task pinning via a
	// tiny policy), with a 1 MiB RAW edge -> CutBytes must include it.
	r := newTestRT(t, &alternating{}, Options{Steal: false})
	reg := r.Mem().Alloc("x", 1<<20, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "w", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	r.Submit(TaskSpec{Label: "r", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: In}}, EPSocket: NoEPHint})
	res := r.Run()
	if res.CutBytes != 1<<20 {
		t.Fatalf("CutBytes = %d, want %d", res.CutBytes, 1<<20)
	}
}

// alternating pins task i to socket i%2.
type alternating struct{ n int }

func (*alternating) Name() string { return "alternating" }
func (a *alternating) PickSocket(r *Runtime, t *Task) int {
	s := a.n % r.Machine().Sockets()
	a.n++
	return s
}

func TestLoadImbalanceStat(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{Steal: false})
	reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 1e6,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	res := r.Run()
	// One busy core out of 16 -> max/mean = 16 -> imbalance 15.
	if res.LoadImbalance < 14 || res.LoadImbalance > 16 {
		t.Fatalf("LoadImbalance = %v, want ~15", res.LoadImbalance)
	}
}

func TestResultSummaryNonEmpty(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 100,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	res := r.Run()
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestDiamondGraphMakespan(t *testing.T) {
	// a -> {b, c} -> d with pure compute; on >= 2 cores the makespan is
	// a + max(b, c) + d.
	r := newTestRT(t, cyclic{}, Options{})
	ra := r.Mem().Alloc("a", 4096, memory.Deferred, 0)
	rb := r.Mem().Alloc("b", 4096, memory.Deferred, 0)
	rc := r.Mem().Alloc("c", 4096, memory.Deferred, 0)
	spec := func(label string, flops float64, acc []Access) *Task {
		return r.Submit(TaskSpec{Label: label, Flops: flops, Accesses: acc, EPSocket: NoEPHint})
	}
	spec("a", 80000, []Access{{Region: ra, Mode: Out}})
	spec("b", 160000, []Access{{Region: ra, Mode: In}, {Region: rb, Mode: Out}})
	spec("c", 80000, []Access{{Region: ra, Mode: In}, {Region: rc, Mode: Out}})
	d := spec("d", 80000, []Access{{Region: rb, Mode: In}, {Region: rc, Mode: In}})
	res := r.Run()
	if !d.Done() {
		t.Fatal("sink never ran")
	}
	compute := r.Machine().ComputeTime(80000 + 160000 + 80000)
	if res.Makespan < compute {
		t.Fatalf("makespan %v below critical-path compute %v", res.Makespan, compute)
	}
	// Memory traffic is tiny here; allow 2x slack.
	if res.Makespan > compute*2 {
		t.Fatalf("makespan %v far above critical path %v", res.Makespan, compute)
	}
}
