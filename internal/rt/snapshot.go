package rt

import (
	"fmt"

	"numadag/internal/graph"
	"numadag/internal/memory"
)

// Snapshot captures the complete submission phase of a runtime — regions,
// tasks, dependence edges and barrier structure — so an identical task graph
// can be installed into fresh runtimes without re-running the generator or
// re-deriving dependences. A multi-seed sweep builds each workload's TDG
// once and installs it into every replicate's runtime.
//
// The TDG itself is shared between the snapshot and every runtime it is
// installed into: the graph is read-only once submission ends, so concurrent
// runs can hold the same *graph.DAG. Tasks and regions are mutated during
// execution (placement, first-touch), so Install materializes fresh ones.
//
// Window indices are not captured; Install replays the window state machine
// against the target runtime's own WindowSize, so one snapshot serves every
// window-size variant of an experiment.
type Snapshot struct {
	tdg     *graph.DAG
	regions []regionSnap
	tasks   []taskSnap
}

type regionSnap struct {
	name      string
	bytes     int64
	placement memory.Placement
	home      int
}

type accessSnap struct {
	region int32
	mode   AccessMode
}

type taskSnap struct {
	label    string
	flops    float64
	ep       int
	barrier  bool
	accesses []accessSnap
}

// Snap captures the submission phase of r. It must be called after the task
// graph is fully built and before Run. The snapshot borrows r's dependency
// graph, so r must not submit further tasks afterwards (it is typically a
// throwaway prototype runtime discarded after the capture).
//
// Every region a task accesses must come from r's own memory manager
// (r.Mem().Alloc); a builder that allocates elsewhere cannot be snapshotted.
func Snap(r *Runtime) (*Snapshot, error) {
	if r.running || r.ranAlready {
		return nil, fmt.Errorf("rt: Snap on a runtime that already ran")
	}
	regions := r.mem.Regions()
	rs := make([]regionSnap, len(regions))
	for i, reg := range regions {
		home := 0
		if reg.Placement() == memory.Home {
			home = int(reg.HomeOfPage(0))
		}
		rs[i] = regionSnap{name: reg.Name(), bytes: reg.Bytes(), placement: reg.Placement(), home: home}
	}
	isBarrier := make(map[graph.NodeID]bool, len(r.barrierIDs))
	for _, id := range r.barrierIDs {
		isBarrier[id] = true
	}
	ts := make([]taskSnap, len(r.tasks))
	for i, t := range r.tasks {
		var acc []accessSnap
		if len(t.Accesses) > 0 {
			acc = make([]accessSnap, len(t.Accesses))
			for j, a := range t.Accesses {
				id := a.Region.ID()
				if id < 0 || id >= len(regions) || regions[id] != a.Region {
					return nil, fmt.Errorf("rt: Snap: task %q accesses a region not allocated from the runtime's memory manager", t.Label)
				}
				acc[j] = accessSnap{region: int32(id), mode: a.Mode}
			}
		}
		ts[i] = taskSnap{label: t.Label, flops: t.Flops, ep: t.EPSocket, barrier: isBarrier[t.ID], accesses: acc}
	}
	return &Snapshot{tdg: r.tdg, regions: rs, tasks: ts}, nil
}

// Tasks returns the number of captured tasks.
func (s *Snapshot) Tasks() int { return len(s.tasks) }

// TotalFlops returns the summed compute work of the captured tasks — the
// work volume the cluster simulator's IdealDC fluid model charges a job
// built from this snapshot.
func (s *Snapshot) TotalFlops() float64 {
	var sum float64
	for i := range s.tasks {
		sum += s.tasks[i].flops
	}
	return sum
}

// Graph returns the captured task dependency graph. It is shared with every
// runtime the snapshot is installed into and must not be mutated.
func (s *Snapshot) Graph() *graph.DAG { return s.tdg }

// Install materializes the snapshot into a fresh runtime: regions are
// re-allocated (in the original order, so IDs match), tasks are recreated
// with their dependence counts and successor lists taken from the shared
// graph, and window indices are recomputed for the runtime's WindowSize.
// The result is bit-identical to rebuilding the same task graph through
// Submit. The runtime must be freshly created; after Install it can only
// Run, not Submit.
func (s *Snapshot) Install(r *Runtime) {
	if r.running || r.ranAlready {
		panic("rt: Install into a runtime that already ran")
	}
	if len(r.tasks) != 0 || len(r.mem.Regions()) != 0 {
		panic("rt: Install into a non-fresh runtime")
	}
	if cap(r.regScratch) < len(s.regions) {
		r.regScratch = make([]*memory.Region, len(s.regions))
	}
	regs := r.regScratch[:len(s.regions)]
	for i, rp := range s.regions {
		regs[i] = r.mem.Alloc(rp.name, rp.bytes, rp.placement, rp.home)
	}
	n := len(s.tasks)
	// Tasks come out of the runtime's pooled arena: one slab of Task structs,
	// one of pointers, one backing every access list, one backing every
	// successor list. All are fully overwritten below, so recycling cannot
	// leak state between runs.
	if cap(r.taskArena) < n {
		r.taskArena = make([]Task, n)
	}
	arena := r.taskArena[:n]
	if cap(r.tasks) < n {
		r.tasks = make([]*Task, n)
	}
	tasks := r.tasks[:n]
	nAcc := 0
	for i := range s.tasks {
		nAcc += len(s.tasks[i].accesses)
	}
	if cap(r.accSlab) < nAcc {
		r.accSlab = make([]Access, nAcc)
	}
	accSlab, accOff := r.accSlab[:nAcc], 0
	if cap(r.succSlab) < s.tdg.Edges() {
		r.succSlab = make([]*Task, s.tdg.Edges())
	}
	succSlab, succOff := r.succSlab[:s.tdg.Edges()], 0
	// Window state machine, replayed exactly as Submit/Barrier drive it.
	ws := r.opts.WindowSize
	curWindow, windowCount := 0, 0
	nextSlot := func() int {
		w := curWindow
		windowCount++
		if ws > 0 && windowCount >= ws {
			curWindow++
			windowCount = 0
		}
		return w
	}
	for i := range s.tasks {
		tp := &s.tasks[i]
		t := &arena[i]
		var acc []Access
		if len(tp.accesses) > 0 {
			acc = accSlab[accOff : accOff+len(tp.accesses) : accOff+len(tp.accesses)]
			accOff += len(tp.accesses)
			for j, a := range tp.accesses {
				acc[j] = Access{Region: regs[a.region], Mode: a.mode}
			}
		}
		*t = Task{
			ID:       graph.NodeID(i),
			Label:    tp.label,
			Flops:    tp.flops,
			Accesses: acc,
			EPSocket: tp.ep,
			Socket:   -1,
			Core:     -1,
			pickedBy: AnySocket,
		}
		if tp.barrier {
			// Mirror Barrier: close a non-empty window, burn one slot for
			// the sync task, then hand user tasks a full fresh window.
			if windowCount > 0 {
				curWindow++
				windowCount = 0
			}
			nextSlot()
			windowCount = 0
			t.Window = curWindow
			r.barriers++
			r.barrierIDs = append(r.barrierIDs, t.ID)
			r.barrierTask = t
		} else {
			t.Window = nextSlot()
		}
		tasks[i] = t
	}
	for i := range tasks {
		id := graph.NodeID(i)
		tasks[i].nDeps = s.tdg.InDegree(id)
		if d := s.tdg.OutDegree(id); d > 0 {
			succ := succSlab[succOff : succOff : succOff+d]
			succOff += d
			s.tdg.Succs(id, func(to graph.NodeID, _ int64) { succ = append(succ, tasks[to]) })
			tasks[i].succs = succ
		}
	}
	r.tdg = s.tdg
	r.tasks = tasks
	r.curWindow = curWindow
	r.windowCount = windowCount
	r.installed = true
}
