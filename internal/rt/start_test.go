package rt

import (
	"math"
	"reflect"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/sim"
)

// sameResult compares two Results exactly except for the port-utilization
// summaries, which are allowed a few ulps: on a recycled machine the job's
// utilization is a windowed difference of cumulative traffic integrals, and
// float subtraction of a settled integral is not bit-identical to a fresh
// one. Everything the determinism goldens pin (times, counts, bytes) must
// be exact.
func sameResult(got, want Result) bool {
	const tol = 1e-12
	g, w := got, want
	if math.Abs(g.MeanPortUtilization-w.MeanPortUtilization) > tol ||
		math.Abs(g.MaxPortUtilization-w.MaxPortUtilization) > tol {
		return false
	}
	g.MeanPortUtilization, w.MeanPortUtilization = 0, 0
	g.MaxPortUtilization, w.MaxPortUtilization = 0, 0
	return reflect.DeepEqual(g, w)
}

// TestStartMatchesRun pins the async path's equivalence contract: Start +
// an externally pumped engine must produce the exact Result Run does —
// same prologue, same event schedule, same statistics — since the only
// difference is who pumps the engine.
func TestStartMatchesRun(t *testing.T) {
	opts := Options{WindowSize: 5, Seed: 11, Steal: true, StealThreshold: 2}

	runRT := newSnapRT(cyclic{}, opts)
	buildMixed(runRT, true)
	want := runRT.Run()

	startRT := newSnapRT(cyclic{}, opts)
	buildMixed(startRT, true)
	var got Result
	fired := 0
	startRT.Start(func(res Result) { fired++; got = res })
	startRT.Machine().Engine().Run()
	if fired != 1 {
		t.Fatalf("completion callback fired %d times, want 1", fired)
	}
	if !sameResult(got, want) {
		t.Fatalf("Start result differs from Run:\n got %+v\nwant %+v", got, want)
	}
	if err := startRT.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
}

// TestStartZeroTasks pins the degenerate case cluster fuzzing exercises:
// a job with no tasks completes synchronously, before Start returns, with
// a zero makespan.
func TestStartZeroTasks(t *testing.T) {
	r := newSnapRT(pinned(0), Options{})
	fired := false
	r.Start(func(res Result) {
		fired = true
		if res.Makespan != 0 || res.TasksRun != 0 {
			t.Errorf("zero-task result = %+v, want zero makespan and tasks", res)
		}
	})
	if !fired {
		t.Fatal("zero-task Start did not complete synchronously")
	}
}

// TestStartSharedEngine pins the cluster execution model: two machines on
// ONE engine, each running its own job via Start, with the second job
// starting mid-flight of the first. Each job's Result must be bit-identical
// to running it alone on a fresh machine — the machines share a clock but
// no resources, and Makespan is anchored at Start time, not the epoch.
func TestStartSharedEngine(t *testing.T) {
	opts := Options{WindowSize: 6, Seed: 3, Steal: true, StealThreshold: 2}
	solo := func(barriers bool) Result {
		r := newSnapRT(cyclic{}, opts)
		buildMixed(r, barriers)
		return r.Run()
	}
	wantA, wantB := solo(false), solo(true)

	eng := sim.NewEngine()
	mA := machine.New(machine.TwoSocketXeon(), eng)
	mB := machine.New(machine.TwoSocketXeon(), eng)
	rA := NewRuntime(mA, cyclic{}, opts)
	buildMixed(rA, false)
	var gotA, gotB Result
	doneA, doneB := false, false
	rA.Start(func(res Result) { gotA, doneA = res, true })
	// Let job A make progress, then launch job B at a nonzero epoch.
	eng.RunUntil(wantA.Makespan / 2)
	if doneA {
		t.Fatal("job A finished before its makespan midpoint")
	}
	rB := NewRuntime(mB, cyclic{}, opts)
	buildMixed(rB, true)
	startB := eng.Now()
	rB.Start(func(res Result) { gotB, doneB = res, true })
	eng.Run()
	if !doneA || !doneB {
		t.Fatalf("jobs incomplete: A=%v B=%v", doneA, doneB)
	}
	if !sameResult(gotA, wantA) {
		t.Fatalf("job A on shared engine differs from solo run:\n got %+v\nwant %+v", gotA, wantA)
	}
	if !sameResult(gotB, wantB) {
		t.Fatalf("job B (started at %v) differs from solo run:\n got %+v\nwant %+v", startB, gotB, wantB)
	}
	if err := rA.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
	if err := rB.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBackToBackOnPooledMachine drives the exact recycling loop the
// cluster's per-machine job queue runs: job finishes -> Release the runtime
// -> immediately Start the next job on the same machine (same engine, same
// Net, clock never rewound). Results must match solo runs.
func TestStartBackToBackOnPooledMachine(t *testing.T) {
	opts := Options{WindowSize: 6, Seed: 5, Steal: true, StealThreshold: 2}
	want := func() Result {
		r := newSnapRT(cyclic{}, opts)
		buildMixed(r, false)
		return r.Run()
	}()

	eng := sim.NewEngine()
	m := machine.New(machine.TwoSocketXeon(), eng)
	var results []Result
	var launch func()
	launch = func() {
		r := NewRuntime(m, cyclic{}, opts)
		buildMixed(r, false)
		r.Start(func(res Result) {
			results = append(results, res)
			r.Release()
			if len(results) < 3 {
				launch()
			}
		})
	}
	launch()
	eng.Run()
	if len(results) != 3 {
		t.Fatalf("%d jobs completed, want 3", len(results))
	}
	for i, got := range results {
		if !sameResult(got, want) {
			t.Fatalf("job %d on recycled machine differs from solo run:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
