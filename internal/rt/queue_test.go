package rt

import (
	"testing"

	"numadag/internal/memory"
)

func TestResidencyBytesSumsAccesses(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	a := r.Mem().Alloc("a", 64<<10, memory.Home, 0)
	b := r.Mem().Alloc("b", 32<<10, memory.Home, 1)
	c := r.Mem().Alloc("c", 16<<10, memory.Deferred, 0) // unallocated
	tk := r.Submit(TaskSpec{Label: "t", Flops: 1,
		Accesses: []Access{
			{Region: a, Mode: In},
			{Region: b, Mode: In},
			{Region: c, Mode: Out},
		}, EPSocket: NoEPHint})
	res := r.ResidencyBytes(tk)
	if res[0] != 64<<10 {
		t.Fatalf("socket 0 residency %d", res[0])
	}
	if res[1] != 32<<10 {
		t.Fatalf("socket 1 residency %d", res[1])
	}
	r.Run()
}

func TestQueueLenCountsSocketAndCoreQueues(t *testing.T) {
	// Use a never-dispatching setup: submit tasks but inspect before Run
	// via the policy callback. Easiest probe: the deferring policy leaves
	// tasks in the temp queue, which QueueLen must NOT count.
	d := &deferring{}
	r := newTestRT(t, d, Options{WindowSize: 4})
	for i := 0; i < 4; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "t", Flops: 10,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	// During Run, all four defer; QueueLen stays 0 until release.
	probed := false
	r.At(0, func() {
		if r.QueueLen(0) != 0 || r.DeferredCount() != 4 {
			t.Errorf("queues before release: qlen=%d deferred=%d", r.QueueLen(0), r.DeferredCount())
		}
		probed = true
	})
	r.Run()
	if !probed {
		t.Fatal("probe never ran")
	}
}

func TestIntraSocketStealAlwaysOn(t *testing.T) {
	// Cyclic placement fills per-core queues; with cross-socket stealing
	// disabled, sibling cores of the same socket must still drain each
	// other's queues (no idle core while its sibling has a backlog).
	r := newTestRT(t, cyclic{}, Options{Steal: false})
	// 4 tasks all land on cores 0..3 cyclically; then 12 more pile onto the
	// same cores. The other cores of socket 0 (if any) should help.
	for i := 0; i < 64; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "t", Flops: 100000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	res := r.Run()
	// Work-conservation proxy: imbalance stays small because cyclic spreads
	// and siblings steal.
	if res.LoadImbalance > 0.5 {
		t.Fatalf("imbalance %v despite sibling stealing", res.LoadImbalance)
	}
	if err := r.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
}

func TestPickedSocketRecordedBeforeSteal(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{Steal: true, StealThreshold: 1})
	for i := 0; i < 32; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(TaskSpec{Label: "t", Flops: 500000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	}
	res := r.Run()
	if res.Steals == 0 {
		t.Skip("no steals occurred with this timing")
	}
	stolen := 0
	for _, tk := range r.Tasks() {
		if tk.Stolen {
			stolen++
			if tk.Socket == 0 {
				t.Fatal("task marked stolen but ran on its picked socket")
			}
		}
	}
	if stolen != res.Steals {
		t.Fatalf("stolen flags %d != steals stat %d", stolen, res.Steals)
	}
}

func TestInputBytesOutputBytes(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	a := r.Mem().Alloc("a", 1000, memory.Deferred, 0)
	b := r.Mem().Alloc("b", 500, memory.Deferred, 0)
	tk := r.Submit(TaskSpec{Label: "t", Flops: 1,
		Accesses: []Access{
			{Region: a, Mode: In},
			{Region: b, Mode: InOut},
		}, EPSocket: NoEPHint})
	if got := tk.InputBytes(); got != 1500 {
		t.Fatalf("InputBytes = %d", got)
	}
	if got := tk.OutputBytes(); got != 500 {
		t.Fatalf("OutputBytes = %d", got)
	}
	if tk.NumSuccs() != 0 || tk.PendingDeps() != 0 {
		t.Fatal("fresh task has deps/succs")
	}
	r.Run()
}

func TestAccessModeHelpers(t *testing.T) {
	if !In.Reads() || In.Writes() {
		t.Fatal("In mode wrong")
	}
	if Out.Reads() || !Out.Writes() {
		t.Fatal("Out mode wrong")
	}
	if !InOut.Reads() || !InOut.Writes() {
		t.Fatal("InOut mode wrong")
	}
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Fatal("mode labels")
	}
	if AccessMode(9).String() == "" {
		t.Fatal("unknown mode label empty")
	}
}

func TestRuntimeOptionValidation(t *testing.T) {
	m := newTestRT(t, pinned(0), Options{}).Machine()
	for _, f := range []func(){
		func() { NewRuntime(m, nil, Options{}) },
		func() { NewRuntime(m, pinned(0), Options{WindowSize: -1}) },
		func() { NewRuntime(m, pinned(0), Options{PartitionCostPerTask: -1}) },
	} {
		func() {
			defer func() { _ = recover() }()
			f()
			t.Error("invalid runtime construction did not panic")
		}()
	}
}
