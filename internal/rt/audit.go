package rt

import (
	"fmt"

	"numadag/internal/graph"
)

// AuditSchedule verifies the executed schedule against the task graph's
// semantics after Run completes. It checks that
//
//  1. every task ran exactly once and has a coherent timeline,
//  2. every dependency edge was respected (predecessor finished before the
//     successor started),
//  3. no core ran two tasks at once, and
//  4. every task ran on the socket its core belongs to.
//
// It returns the first violation found, or nil. Tests and the example
// programs use it as an end-to-end correctness oracle for the runtime.
func (r *Runtime) AuditSchedule() error {
	if r.remaining != 0 {
		return fmt.Errorf("rt: audit before run completed (%d tasks pending)", r.remaining)
	}
	for _, t := range r.tasks {
		if t.state != stateDone {
			return fmt.Errorf("rt: task %s never completed", t.Label)
		}
		if t.EndAt < t.StartAt || t.StartAt < t.ReadyAt {
			return fmt.Errorf("rt: task %s has incoherent timeline ready=%v start=%v end=%v",
				t.Label, t.ReadyAt, t.StartAt, t.EndAt)
		}
		if t.Core < 0 || t.Core >= r.mach.Cores() {
			return fmt.Errorf("rt: task %s ran on core %d", t.Label, t.Core)
		}
		if r.mach.SocketOf(t.Core) != t.Socket {
			return fmt.Errorf("rt: task %s socket %d does not own core %d", t.Label, t.Socket, t.Core)
		}
	}
	// Dependencies: use the TDG, not the succs lists, so the audit is
	// independent of the runtime's internal bookkeeping.
	for _, t := range r.tasks {
		var err error
		r.tdg.Succs(t.ID, func(to graph.NodeID, _ int64) {
			succ := r.tasks[to]
			if err == nil && succ.StartAt < t.EndAt {
				err = fmt.Errorf("rt: dependency violated: %s (ends %v) -> %s (starts %v)",
					t.Label, t.EndAt, succ.Label, succ.StartAt)
			}
		})
		if err != nil {
			return err
		}
	}
	// Core exclusivity: sort each core's tasks by start and check overlap.
	// The per-core lists come from the runtime's pooled audit scratch.
	r.auditCore = resetQueues(r.auditCore, r.mach.Cores())
	perCore := r.auditCore
	for _, t := range r.tasks {
		perCore[t.Core] = append(perCore[t.Core], t)
	}
	for c, ts := range perCore {
		// Insertion sort by StartAt (per-core lists are modest).
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j].StartAt < ts[j-1].StartAt; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		for i := 1; i < len(ts); i++ {
			if ts[i].StartAt < ts[i-1].EndAt {
				return fmt.Errorf("rt: core %d ran %s and %s concurrently", c, ts[i-1].Label, ts[i].Label)
			}
		}
	}
	return nil
}
