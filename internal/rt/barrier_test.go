package rt

import (
	"testing"

	"numadag/internal/memory"
	"numadag/internal/sim"
)

func TestBarrierOrdersPhases(t *testing.T) {
	r := newTestRT(t, cyclic{}, Options{})
	var phase1, phase2 []*Task
	for i := 0; i < 4; i++ {
		reg := r.Mem().Alloc("a", 4096, memory.Deferred, 0)
		phase1 = append(phase1, r.Submit(TaskSpec{Label: "p1", Flops: 1000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint}))
	}
	r.Barrier()
	for i := 0; i < 4; i++ {
		reg := r.Mem().Alloc("b", 4096, memory.Deferred, 0)
		phase2 = append(phase2, r.Submit(TaskSpec{Label: "p2", Flops: 1000,
			Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint}))
	}
	r.Run()
	var maxP1End, minP2Start = sim.Time(0), sim.Time(1 << 62)
	for _, tk := range phase1 {
		if tk.EndAt > maxP1End {
			maxP1End = tk.EndAt
		}
	}
	for _, tk := range phase2 {
		if tk.StartAt < minP2Start {
			minP2Start = tk.StartAt
		}
	}
	if minP2Start < maxP1End {
		t.Fatalf("phase 2 started at %v before phase 1 finished at %v", minP2Start, maxP1End)
	}
	if r.Barriers() != 1 {
		t.Fatalf("Barriers = %d", r.Barriers())
	}
}

func TestBarrierClosesWindow(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{WindowSize: 100})
	reg := r.Mem().Alloc("a", 64, memory.Deferred, 0)
	t1 := r.Submit(TaskSpec{Label: "t1", Flops: 10,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	r.Barrier()
	t2 := r.Submit(TaskSpec{Label: "t2", Flops: 10,
		Accesses: []Access{{Region: reg, Mode: InOut}}, EPSocket: NoEPHint})
	if t1.Window == t2.Window {
		t.Fatalf("barrier did not close the window: both tasks in window %d", t1.Window)
	}
	r.Run()
}

func TestBarrierNoOpWhenEmpty(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	r.Barrier() // nothing submitted: must not create a sync task
	if len(r.Tasks()) != 0 {
		t.Fatal("empty barrier created tasks")
	}
	reg := r.Mem().Alloc("a", 64, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 10,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	r.Barrier()
	n := len(r.Tasks())
	r.Barrier() // double barrier: second is a no-op
	if len(r.Tasks()) != n {
		t.Fatal("double barrier created extra sync tasks")
	}
	r.Run()
}

func TestBarrierDuringRunPanics(t *testing.T) {
	r := newTestRT(t, pinned(0), Options{})
	reg := r.Mem().Alloc("a", 64, memory.Deferred, 0)
	r.Submit(TaskSpec{Label: "t", Flops: 10,
		Accesses: []Access{{Region: reg, Mode: Out}}, EPSocket: NoEPHint})
	r.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Barrier after Run did not panic")
		}
	}()
	// running flag is false after Run, but ranAlready Submit... Barrier
	// panics only during Run; simulate by toggling running via a task...
	// simplest: Barrier during execution is unreachable from outside, so
	// assert the Submit-after-Run path instead.
	r.running = true
	r.Barrier()
}

func TestMultipleBarrierEpochs(t *testing.T) {
	r := newTestRT(t, cyclic{}, Options{})
	reg := r.Mem().Alloc("a", 4096, memory.Deferred, 0)
	var epochs [][]*Task
	for e := 0; e < 3; e++ {
		var tasks []*Task
		for i := 0; i < 3; i++ {
			out := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
			tasks = append(tasks, r.Submit(TaskSpec{Label: "t", Flops: 500,
				Accesses: []Access{{Region: out, Mode: Out}, {Region: reg, Mode: In}},
				EPSocket: NoEPHint}))
		}
		epochs = append(epochs, tasks)
		r.Barrier()
	}
	r.Run()
	for e := 1; e < 3; e++ {
		var prevEnd, curStart sim.Time = 0, 1 << 62
		for _, tk := range epochs[e-1] {
			if tk.EndAt > prevEnd {
				prevEnd = tk.EndAt
			}
		}
		for _, tk := range epochs[e] {
			if tk.StartAt < curStart {
				curStart = tk.StartAt
			}
		}
		if curStart < prevEnd {
			t.Fatalf("epoch %d overlapped epoch %d", e, e-1)
		}
	}
	if r.Barriers() != 3 {
		t.Fatalf("Barriers = %d, want 3", r.Barriers())
	}
}
