package rt

// Placement constants a Policy may return from PickSocket besides a
// concrete socket index.
const (
	// AnySocket asks the runtime to place the task on the next CPU in
	// cyclic order, ignoring sockets entirely (the DFIFO behaviour).
	AnySocket = -1
	// DeferPlacement parks the task in the temporary queue; the runtime
	// re-offers it to the policy after the policy calls ReleaseDeferred
	// (used while a window partition is still being computed, §2.2).
	DeferPlacement = -2
)

// Policy decides where ready tasks run. Implementations must be
// deterministic given the runtime's seeded Rand. PickSocket is invoked every
// time a task becomes ready (and again for each re-offer of a deferred
// task); it returns a socket index, AnySocket or DeferPlacement.
type Policy interface {
	Name() string
	PickSocket(rt *Runtime, t *Task) int
}

// Preparer is implemented by policies that need a hook before execution
// starts (e.g. RGP partitions the first window here and charges its
// simulated cost).
type Preparer interface {
	Prepare(rt *Runtime)
}

// Observer receives execution lifecycle callbacks; trace sinks implement it.
type Observer interface {
	TaskStart(t *Task)
	TaskEnd(t *Task)
}

// TaskDoneHook is implemented by policies that react to completions — e.g.
// OS-style page-migration baselines that watch access patterns and move
// memory after the fact. The hook runs at the task's completion instant,
// before dependents are released.
type TaskDoneHook interface {
	TaskDone(r *Runtime, t *Task)
}

// StealVeto is implemented by policies whose placement is a hard contract:
// if VetoSteal returns true, the runtime never steals across sockets, no
// matter what Options.Steal says (intra-socket stealing stays on). The EP
// configuration uses this — an expert's hardcoded schedule is not advisory.
type StealVeto interface {
	VetoSteal() bool
}
