package rt

// Placement constants a Policy may return from PickSocket besides a
// concrete socket index.
const (
	// AnySocket asks the runtime to place the task on the next CPU in
	// cyclic order, ignoring sockets entirely (the DFIFO behaviour).
	AnySocket = -1
	// DeferPlacement parks the task in the temporary queue; the runtime
	// re-offers it to the policy after the policy calls ReleaseDeferred
	// (used while a window partition is still being computed, §2.2).
	DeferPlacement = -2
)

// Policy decides where ready tasks run. Implementations must be
// deterministic given the runtime's seeded Rand. PickSocket is invoked every
// time a task becomes ready (and again for each re-offer of a deferred
// task); it returns a socket index, AnySocket or DeferPlacement.
type Policy interface {
	Name() string
	PickSocket(rt *Runtime, t *Task) int
}

// Preparer is implemented by policies that need a hook before execution
// starts (e.g. RGP partitions the first window here and charges its
// simulated cost).
type Preparer interface {
	Prepare(rt *Runtime)
}

// Observer receives execution lifecycle callbacks; trace sinks implement it.
// An Observer may additionally implement TransferObserver and StealObserver;
// the runtime type-asserts once at construction and invokes the extended
// callbacks only when implemented, so the base interface stays small and
// existing observers keep working. Observers must treat every callback as
// read-only: they run inside the event loop and anything they change
// (placement, queues, RNG state) would perturb the simulation.
type Observer interface {
	TaskStart(t *Task)
	TaskEnd(t *Task)
}

// TransferObserver is an optional Observer extension receiving the data
// movement of each task phase: TransferStart fires when the runtime launches
// a transfer of bytes between memory homed on socket `home` and task t's
// executing socket `exec` (reads pull from home, writes push to it), and
// TransferEnd fires at the instant the last byte lands, before the phase
// continuation runs. Only non-empty transfers are reported; zero-byte
// phases complete without callbacks.
type TransferObserver interface {
	TransferStart(t *Task, home, exec int, bytes int64)
	TransferEnd(t *Task, home, exec int, bytes int64)
}

// StealObserver is an optional Observer extension notified when an idle
// core robs a task across sockets: victim is the socket the task was queued
// on, thief the socket of the stealing core. The callback runs at the steal
// instant, before the task starts executing (its Core/Socket fields are not
// yet assigned).
type StealObserver interface {
	TaskStolen(t *Task, victim, thief int)
}

// TaskDoneHook is implemented by policies that react to completions — e.g.
// OS-style page-migration baselines that watch access patterns and move
// memory after the fact. The hook runs at the task's completion instant,
// before dependents are released.
type TaskDoneHook interface {
	TaskDone(r *Runtime, t *Task)
}

// StealVeto is implemented by policies whose placement is a hard contract:
// if VetoSteal returns true, the runtime never steals across sockets, no
// matter what Options.Steal says (intra-socket stealing stays on). The EP
// configuration uses this — an expert's hardcoded schedule is not advisory.
type StealVeto interface {
	VetoSteal() bool
}
