package rt

import (
	"fmt"
	"strings"

	"numadag/internal/sim"
)

// Result aggregates a run's outcome and the statistics the evaluation
// reports.
type Result struct {
	// Makespan is the simulated completion time of the whole task graph.
	Makespan sim.Time
	// TasksRun counts executed tasks.
	TasksRun int
	// BusyTime is per-core occupied time.
	BusyTime []sim.Time
	// LocalBytes and RemoteBytes classify transferred traffic by whether
	// the home socket matched the executing socket. RemoteByteHops weights
	// remote bytes by hop distance (NUMA pressure metric).
	LocalBytes     int64
	RemoteBytes    int64
	RemoteByteHops int64
	// Steals counts tasks executed away from their picked socket.
	Steals int
	// Deferred counts tasks that passed through the temporary queue.
	Deferred int
	// SocketTasks counts tasks executed per socket.
	SocketTasks []int
	// CutBytes is the TDG edge weight crossing socket boundaries under the
	// final placement (the partitioning objective, measured post-hoc).
	CutBytes int64
	// LoadImbalance is max busy / mean busy across cores - 1.
	LoadImbalance float64
	// MeanPortUtilization and MaxPortUtilization summarize interconnect
	// pressure over the run: the saturation signal behind NUMA collapse.
	MeanPortUtilization float64
	MaxPortUtilization  float64
}

// RemoteRatio returns remote bytes / total bytes (0 when no traffic).
func (r *Result) RemoteRatio() float64 {
	total := r.LocalBytes + r.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(r.RemoteBytes) / float64(total)
}

// Summary renders a compact human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %v, %d tasks", r.Makespan, r.TasksRun)
	fmt.Fprintf(&b, ", remote %.1f%%", 100*r.RemoteRatio())
	fmt.Fprintf(&b, ", cut %d B", r.CutBytes)
	fmt.Fprintf(&b, ", imbalance %.2f", r.LoadImbalance)
	if r.Steals > 0 {
		fmt.Fprintf(&b, ", %d steals", r.Steals)
	}
	if r.Deferred > 0 {
		fmt.Fprintf(&b, ", %d deferred", r.Deferred)
	}
	return b.String()
}

// finishStats computes the derived statistics after the run drains.
func (r *Runtime) finishStats() {
	// Cut bytes: TDG edges whose endpoints ran on different sockets.
	for _, t := range r.tasks {
		for _, s := range t.succs {
			if t.Socket != s.Socket {
				r.stats.CutBytes += r.tdg.EdgeWeight(t.ID, s.ID)
			}
		}
	}
	var sum, max sim.Time
	for _, bt := range r.stats.BusyTime {
		sum += bt
		if bt > max {
			max = bt
		}
	}
	if len(r.stats.BusyTime) > 0 && sum > 0 {
		mean := float64(sum) / float64(len(r.stats.BusyTime))
		r.stats.LoadImbalance = float64(max)/mean - 1
	}
	if r.asyncRun {
		// Shared-clock job: the machine's traffic integrals span every job
		// that ran on it, so window the utilization over this job's own
		// [startAt, now] against the baseline Start sampled. For a job
		// starting at the epoch on a fresh machine this computes bit-exactly
		// what PortUtilization would.
		dur := float64(r.Now() - r.startAt)
		r.portNow = resetSlice(r.portNow, len(r.portBase))
		r.mach.PortTraffic(r.portNow)
		for s := range r.portBase {
			var u float64
			if dur > 0 {
				u = (r.portNow[s] - r.portBase[s]) / (r.mach.Config().LinkBandwidth * dur)
			}
			r.stats.MeanPortUtilization += u / float64(len(r.portBase))
			if u > r.stats.MaxPortUtilization {
				r.stats.MaxPortUtilization = u
			}
		}
		return
	}
	ports := r.mach.PortUtilization()
	for _, u := range ports {
		r.stats.MeanPortUtilization += u / float64(len(ports))
		if u > r.stats.MaxPortUtilization {
			r.stats.MaxPortUtilization = u
		}
	}
}
