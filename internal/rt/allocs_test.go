package rt

import (
	"fmt"
	"runtime/debug"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/sim"
)

// buildLayeredRT submits a layered task graph (width tasks per layer, each
// depending on its own region and its left neighbor's) — a mid-sized install
// workload for the arena benchmarks.
func buildLayeredRT(r *Runtime, layers, width int) {
	regs := make([]*memory.Region, width)
	for i := range regs {
		regs[i] = r.Mem().Alloc(fmt.Sprintf("r%d", i), 64<<10, memory.Deferred, 0)
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			acc := []Access{{Region: regs[i], Mode: InOut}}
			if i > 0 {
				acc = append(acc, Access{Region: regs[i-1], Mode: In})
			}
			r.Submit(TaskSpec{Label: "t", Flops: 1000, Accesses: acc, EPSocket: NoEPHint})
		}
	}
}

// TestInstallSteadyStateAllocs pins the snapshot-install arena contract:
// once a pooled runtime's slabs have grown to the graph's high-water mark,
// a NewRuntime+Install+Release cycle allocates only the per-run constant —
// the fresh TDG handle NewRuntime makes for the Submit path and the two
// Result slices that escape through Run's return value. Everything
// per-task (Task structs, pointer table, access and successor slabs,
// region objects) must come from the recycled arenas.
func TestInstallSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector")
	}
	proto := newSnapRT(pinned(0), Options{})
	buildLayeredRT(proto, 24, 16)
	snap, err := Snap(proto)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	opts := Options{WindowSize: 32, Seed: 3}
	cycle := func() {
		r := NewRuntime(m, pinned(0), opts)
		snap.Install(r)
		r.Release()
	}
	for i := 0; i < 5; i++ {
		cycle() // grow the pooled arenas to steady state
	}
	// The runtime pool is a sync.Pool; disable GC so a collection mid-measure
	// cannot drop the warmed runtime and charge a full re-grow to one run.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const limit = 8
	if avg := testing.AllocsPerRun(20, cycle); avg > limit {
		t.Fatalf("Install cycle allocates %.1f allocs/op in steady state, want <= %d", avg, limit)
	}
}

// TestRunNilObserverSteadyStateAllocs pins the untraced hot path through a
// full simulated run: with no Observer configured, the transfer/steal
// observer hooks must stay un-taken branches — the traced path wraps every
// cross-socket transfer completion in a fresh closure, and that wrapper
// must never be paid by plain runs. The layered graph on AnySocket with
// stealing exercises transfers (obsXfer nil-check) and steals (obsSteal
// nil-check); what remains per cycle is the per-run constant: the TDG
// handle and the escaping Result slices — measured 4 allocs/op. The bound
// leaves headroom over 4 but sits far below the dozens of transfer-wrapper
// closures one traced run of this graph pays, so a hook leaking onto the
// plain path trips it.
func TestRunNilObserverSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector")
	}
	proto := newSnapRT(pinned(0), Options{})
	buildLayeredRT(proto, 24, 16)
	snap, err := Snap(proto)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	opts := Options{WindowSize: 32, Seed: 3, Steal: true, StealThreshold: 2}
	cycle := func() {
		r := NewRuntime(m, cyclic{}, opts)
		snap.Install(r)
		res := r.Run()
		if res.TasksRun == 0 {
			t.Fatal("run executed no tasks")
		}
		r.Release()
		m.Reset()
	}
	for i := 0; i < 5; i++ {
		cycle() // grow the pooled arenas and the engine's event arena
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const limit = 16
	if avg := testing.AllocsPerRun(20, cycle); avg > limit {
		t.Fatalf("nil-observer run allocates %.1f allocs/op in steady state, want <= %d", avg, limit)
	}
}

// BenchmarkSnapshotInstall measures installing a captured task graph into a
// pooled runtime — the per-replicate cost of a multi-seed sweep cell before
// any simulation runs. allocs/op is the arena contract: ~constant, not
// O(tasks).
func BenchmarkSnapshotInstall(b *testing.B) {
	proto := newSnapRT(pinned(0), Options{})
	buildLayeredRT(proto, 64, 32)
	snap, err := Snap(proto)
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	opts := Options{WindowSize: 64, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRuntime(m, pinned(0), opts)
		snap.Install(r)
		r.Release()
	}
}
