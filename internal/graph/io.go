package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// DOT writes the graph in Graphviz DOT format. Node labels include the
// weight; an optional part assignment (nil allowed) colors nodes by part so
// partitions can be inspected visually.
func (g *DAG) DOT(w io.Writer, name string, part []int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled];\n", name)
	palette := []string{
		"#a6cee3", "#1f78b4", "#b2df8a", "#33a02c",
		"#fb9a99", "#e31a1c", "#fdbf6f", "#ff7f00",
		"#cab2d6", "#6a3d9a", "#ffff99", "#b15928",
	}
	for i := 0; i < g.Len(); i++ {
		color := "#dddddd"
		partNote := ""
		if part != nil && i < len(part) && part[i] >= 0 {
			color = palette[int(part[i])%len(palette)]
			partNote = fmt.Sprintf("\\np%d", part[i])
		}
		label := g.labels[i]
		if label == "" {
			label = fmt.Sprintf("n%d", i)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\nw=%d%s\", fillcolor=%q];\n",
			i, escapeDOT(label), g.nodeW[i], partNote, color)
	}
	for from := range g.succ {
		for _, h := range g.succ[from] {
			fmt.Fprintf(bw, "  n%d -> n%d [label=\"%d\"];\n", from, h.to, h.w)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// jsonGraph is the serialized form.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Label  string `json:"label,omitempty"`
	Weight int64  `json:"weight"`
}

type jsonEdge struct {
	From   int32 `json:"from"`
	To     int32 `json:"to"`
	Weight int64 `json:"weight"`
}

// MarshalJSON serializes the DAG.
func (g *DAG) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: make([]jsonNode, g.Len())}
	for i := 0; i < g.Len(); i++ {
		jg.Nodes[i] = jsonNode{Label: g.labels[i], Weight: g.nodeW[i]}
	}
	for _, e := range g.EdgeList() {
		jg.Edges = append(jg.Edges, jsonEdge{From: int32(e.From), To: int32(e.To), Weight: e.Weight})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON deserializes into the receiver, replacing its contents.
func (g *DAG) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = DAG{}
	for _, n := range jg.Nodes {
		if n.Weight < 0 {
			return fmt.Errorf("graph: negative node weight %d", n.Weight)
		}
		g.AddNode(n.Label, n.Weight)
	}
	for _, e := range jg.Edges {
		if e.From < 0 || int(e.From) >= g.Len() || e.To < 0 || int(e.To) >= g.Len() {
			return fmt.Errorf("graph: edge (%d,%d) out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: self-loop on %d", e.From)
		}
		if e.Weight < 0 {
			return fmt.Errorf("graph: negative edge weight %d", e.Weight)
		}
		g.AddEdge(NodeID(e.From), NodeID(e.To), e.Weight)
	}
	return nil
}
