package graph

import (
	"testing"

	"numadag/internal/xrand"
)

// Allocation-contract test for the window-pipeline hot path, run as a
// blocking deterministic test by `make test-allocs` alongside the sim and
// partition gates: with a warmed SubgraphScratch, extracting an induced
// subgraph — index stamping, slab carving, both fill passes — must not
// allocate.
func TestInducedSubgraphSteadyStateAllocs(t *testing.T) {
	r := xrand.New(3)
	const n = 1500
	g := randomDAG(r, n, 4*n)
	nodes := make([]NodeID, 0, n/2)
	for _, v := range r.Perm(n)[: n/2 : n/2] {
		nodes = append(nodes, NodeID(v))
	}
	sc := &SubgraphScratch{}
	g.InducedSubgraphInto(sc, nodes) // warm the scratch
	avg := testing.AllocsPerRun(20, func() {
		g.InducedSubgraphInto(sc, nodes)
	})
	if avg != 0 {
		t.Fatalf("InducedSubgraphInto allocates %v objects per op in steady state, want 0", avg)
	}
}
