package graph

import (
	"reflect"
	"testing"

	"numadag/internal/xrand"
)

// referenceInduced is the pre-scratch implementation of InducedSubgraph
// (map-based index, incremental AddNode/AddEdge construction), kept as the
// behavioral oracle: the slab-based path must reproduce it exactly,
// including adjacency order.
func referenceInduced(g *DAG, nodes []NodeID) (*DAG, []NodeID) {
	sub := NewWithCapacity(len(nodes))
	toSub := make(map[NodeID]NodeID, len(nodes))
	back := make([]NodeID, len(nodes))
	for i, id := range nodes {
		toSub[id] = NodeID(i)
		back[i] = id
		sub.AddNode(g.Label(id), g.NodeWeight(id))
	}
	for _, id := range nodes {
		g.Succs(id, func(to NodeID, w int64) {
			if t, ok := toSub[to]; ok {
				sub.AddEdge(toSub[id], t, w)
			}
		})
	}
	return sub, back
}

// adjacency flattens a DAG's succ and pred lists preserving order, so two
// DAGs can be compared for bit-identical iteration behavior.
func adjacency(g *DAG) (succ, pred [][]halfEdge) {
	succ = make([][]halfEdge, g.Len())
	pred = make([][]halfEdge, g.Len())
	for i := 0; i < g.Len(); i++ {
		id := NodeID(i)
		g.Succs(id, func(to NodeID, w int64) { succ[i] = append(succ[i], halfEdge{to: to, w: w}) })
		g.Preds(id, func(from NodeID, w int64) { pred[i] = append(pred[i], halfEdge{to: from, w: w}) })
	}
	return succ, pred
}

func requireSameDAG(t *testing.T, want, got *DAG) {
	t.Helper()
	if want.Len() != got.Len() || want.Edges() != got.Edges() {
		t.Fatalf("shape mismatch: want %d nodes/%d edges, got %d/%d",
			want.Len(), want.Edges(), got.Len(), got.Edges())
	}
	for i := 0; i < want.Len(); i++ {
		id := NodeID(i)
		if want.Label(id) != got.Label(id) || want.NodeWeight(id) != got.NodeWeight(id) {
			t.Fatalf("node %d: want (%q,%d), got (%q,%d)",
				i, want.Label(id), want.NodeWeight(id), got.Label(id), got.NodeWeight(id))
		}
	}
	ws, wp := adjacency(want)
	gs, gp := adjacency(got)
	if !reflect.DeepEqual(ws, gs) {
		t.Fatalf("succ adjacency mismatch:\nwant %v\ngot  %v", ws, gs)
	}
	if !reflect.DeepEqual(wp, gp) {
		t.Fatalf("pred adjacency mismatch:\nwant %v\ngot  %v", wp, gp)
	}
}

// The scratch-based extraction must be indistinguishable from the reference
// construction — same nodes, weights, labels, edges and adjacency iteration
// order — across random DAGs, random (shuffled, partial) node subsets, and
// scratch reuse across graphs of different sizes.
func TestInducedSubgraphIntoMatchesReference(t *testing.T) {
	r := xrand.New(42)
	sc := &SubgraphScratch{}
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(60) + 2
		g := randomDAG(r, n, r.Intn(4*n))
		// Random subset in random order.
		perm := r.Perm(n)
		k := r.Intn(n) + 1
		nodes := make([]NodeID, k)
		for i := 0; i < k; i++ {
			nodes[i] = NodeID(perm[i])
		}
		want, wantBack := referenceInduced(g, nodes)
		got, gotBack := g.InducedSubgraphInto(sc, nodes)
		if !reflect.DeepEqual(wantBack, gotBack) {
			t.Fatalf("trial %d: back mapping mismatch: want %v, got %v", trial, wantBack, gotBack)
		}
		requireSameDAG(t, want, got)
	}
}

// The exported InducedSubgraph wrapper returns an independently owned result:
// extracting another subgraph from the same DAG must not disturb it.
func TestInducedSubgraphIndependentOwnership(t *testing.T) {
	r := xrand.New(7)
	g := randomDAG(r, 40, 120)
	nodes := []NodeID{5, 1, 17, 30, 2, 9}
	sub1, back1 := g.InducedSubgraph(nodes)
	s1, p1 := adjacency(sub1)
	back1Copy := append([]NodeID(nil), back1...)

	// A second, different extraction (and one through a shared scratch).
	g.InducedSubgraph([]NodeID{0, 3, 4, 6, 7, 8, 10, 11})
	sc := &SubgraphScratch{}
	g.InducedSubgraphInto(sc, []NodeID{12, 13, 14})
	g.InducedSubgraphInto(sc, []NodeID{20, 21, 22, 23})

	s1b, p1b := adjacency(sub1)
	if !reflect.DeepEqual(s1, s1b) || !reflect.DeepEqual(p1, p1b) {
		t.Fatal("InducedSubgraph result mutated by a later extraction")
	}
	if !reflect.DeepEqual(back1, back1Copy) {
		t.Fatal("InducedSubgraph back mapping mutated by a later extraction")
	}
}

// Appending an edge to a DAG extracted via a scratch must not clobber a
// neighboring adjacency list carved from the same slab.
func TestInducedSubgraphIntoAppendSafety(t *testing.T) {
	g := NewWithCapacity(4)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	c := g.AddNode("c", 1)
	d := g.AddNode("d", 1)
	g.AddEdge(a, b, 10)
	g.AddEdge(c, d, 20)

	sc := &SubgraphScratch{}
	sub, _ := g.InducedSubgraphInto(sc, []NodeID{a, b, c, d})
	sub.AddEdge(0, 3, 99) // forces succ[0] to grow past its exact-cap carve
	if w := sub.EdgeWeight(2, 3); w != 20 {
		t.Fatalf("neighbor list clobbered: edge c->d weight = %d, want 20", w)
	}
	if w := sub.EdgeWeight(0, 3); w != 99 {
		t.Fatalf("appended edge lost: weight = %d, want 99", w)
	}
}

func TestInducedSubgraphIntoDuplicatePanics(t *testing.T) {
	g := NewWithCapacity(3)
	g.AddNode("a", 1)
	g.AddNode("b", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	g.InducedSubgraphInto(&SubgraphScratch{}, []NodeID{0, 1, 0})
}

// Epoch wrap: after the int32 stamp counter wraps, stale stamps must not be
// mistaken for current membership.
func TestSubgraphScratchEpochWrap(t *testing.T) {
	g := NewWithCapacity(4)
	for i := 0; i < 4; i++ {
		g.AddNode("", 1)
	}
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 2, 5)
	sc := &SubgraphScratch{}
	g.InducedSubgraphInto(sc, []NodeID{0, 1, 2, 3}) // stamps everything at epoch 1
	sc.epoch = -1                                   // next increment wraps to 0
	sub, _ := g.InducedSubgraphInto(sc, []NodeID{0, 1})
	if sub.Len() != 2 || sub.Edges() != 1 {
		t.Fatalf("after epoch wrap: got %d nodes/%d edges, want 2/1", sub.Len(), sub.Edges())
	}
	if w := sub.EdgeWeight(0, 1); w != 5 {
		t.Fatalf("after epoch wrap: edge weight %d, want 5", w)
	}
}

func BenchmarkInducedSubgraph(b *testing.B) {
	r := xrand.New(1)
	const n = 2048
	g := randomDAG(r, n, 4*n)
	nodes := make([]NodeID, 0, n/2)
	for _, v := range r.Perm(n)[: n/2 : n/2] {
		nodes = append(nodes, NodeID(v))
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.InducedSubgraph(nodes)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := &SubgraphScratch{}
		g.InducedSubgraphInto(sc, nodes) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.InducedSubgraphInto(sc, nodes)
		}
	})
}
