package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g, _ := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back DAG
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() || back.Edges() != g.Edges() {
		t.Fatalf("round trip lost structure: %d/%d vs %d/%d",
			back.Len(), back.Edges(), g.Len(), g.Edges())
	}
	for _, e := range g.EdgeList() {
		if back.EdgeWeight(e.From, e.To) != e.Weight {
			t.Fatalf("edge %v weight changed", e)
		}
	}
	for i := 0; i < g.Len(); i++ {
		id := NodeID(i)
		if back.NodeWeight(id) != g.NodeWeight(id) || back.Label(id) != g.Label(id) {
			t.Fatalf("node %d attributes changed", i)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"nodes":[{"weight":1}],"edges":[{"from":0,"to":5,"weight":1}]}`, // range
		`{"nodes":[{"weight":1}],"edges":[{"from":0,"to":0,"weight":1}]}`, // self-loop
		`{"nodes":[{"weight":-1}],"edges":[]}`,                            // negative node
		`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"weight":-2}]}`,
		`not json`,
	}
	for i, c := range cases {
		var g DAG
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	part := []int32{0, 0, 1, 1}
	if err := g.DOT(&buf, "test", part); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "p0", "p1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestDOTNilPartition(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.DOT(&buf, "plain", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "p0") {
		t.Error("nil partition produced part annotations")
	}
}

func TestDOTEscapesLabels(t *testing.T) {
	g := New()
	g.AddNode(`quote"inside`, 1)
	var buf bytes.Buffer
	if err := g.DOT(&buf, "esc", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `quote\"inside`) {
		t.Error("label not escaped")
	}
}
