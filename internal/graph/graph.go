// Package graph provides the weighted directed-acyclic-graph structure the
// runtime uses for task dependency graphs (TDGs), together with the
// algorithms the scheduler and partitioner need: topological orders, level
// assignment, connected components, induced subgraphs and transitive
// reduction. Node weights carry computational work; edge weights carry the
// bytes a dependency communicates, which is exactly the weighting §2.2 of
// the paper feeds to the partitioner.
//
// The hot extraction path is allocation-free in steady state: a
// SubgraphScratch owns an epoch-stamped dense node index (one int32 array
// the size of the source graph, invalidated by bumping an epoch counter
// instead of clearing) plus reusable CSR-style slabs that back every
// adjacency list of the extracted DAG. InducedSubgraphInto carves each
// list with exact capacity, so appending to one list (or to the source
// graph afterwards) can never clobber a neighbor's storage. The produced
// adjacency order is identical to incremental AddEdge construction —
// sorted by sub-graph ID — so window partitioning over extracted subgraphs
// stays bit-deterministic.
package graph

import (
	"fmt"
	"sort"
)

// NodeID indexes a node within its DAG. IDs are dense: 0..N-1 in insertion
// order.
type NodeID int32

// Edge is a directed, weighted dependency between two nodes.
type Edge struct {
	From, To NodeID
	Weight   int64 // bytes communicated over the dependency
}

// DAG is a mutable directed acyclic graph with weighted nodes and edges.
// Mutation never reorders existing IDs, so external arrays indexed by NodeID
// stay valid as the graph grows (the runtime relies on this while streaming
// tasks in).
//
// The DAG does not check acyclicity on every AddEdge (that would be
// quadratic for the runtime's streaming use); TopoOrder returns an error on
// cyclic input and Validate performs a full check.
type DAG struct {
	nodeW  []int64
	labels []string
	succ   [][]halfEdge // sorted by target id per node (kept sorted on insert)
	pred   [][]halfEdge
	nEdges int
}

type halfEdge struct {
	to NodeID
	w  int64
}

// New returns an empty DAG.
func New() *DAG { return &DAG{} }

// NewWithCapacity returns an empty DAG with room for n nodes.
func NewWithCapacity(n int) *DAG {
	return &DAG{
		nodeW:  make([]int64, 0, n),
		labels: make([]string, 0, n),
		succ:   make([][]halfEdge, 0, n),
		pred:   make([][]halfEdge, 0, n),
	}
}

// Len returns the number of nodes.
func (g *DAG) Len() int { return len(g.nodeW) }

// Edges returns the number of edges.
func (g *DAG) Edges() int { return g.nEdges }

// AddNode appends a node with the given label and weight, returning its ID.
func (g *DAG) AddNode(label string, weight int64) NodeID {
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative node weight %d", weight))
	}
	id := NodeID(len(g.nodeW))
	g.nodeW = append(g.nodeW, weight)
	g.labels = append(g.labels, label)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// NodeWeight returns the node's weight.
func (g *DAG) NodeWeight(id NodeID) int64 { return g.nodeW[id] }

// SetNodeWeight updates the node's weight.
func (g *DAG) SetNodeWeight(id NodeID, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative node weight %d", w))
	}
	g.nodeW[id] = w
}

// Label returns the node's label.
func (g *DAG) Label(id NodeID) string { return g.labels[id] }

// AddEdge inserts an edge from -> to with the given weight. Inserting a
// parallel edge accumulates its weight onto the existing edge (multiple
// dependencies between the same task pair represent more communicated
// bytes, not more edges). Self-loops panic: a task cannot depend on itself.
func (g *DAG) AddEdge(from, to NodeID, weight int64) {
	if from == to {
		panic(fmt.Sprintf("graph: self-loop on node %d", from))
	}
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %d", weight))
	}
	g.checkID(from)
	g.checkID(to)
	if i, ok := findHalf(g.succ[from], to); ok {
		g.succ[from][i].w += weight
		j, _ := findHalf(g.pred[to], from)
		g.pred[to][j].w += weight
		return
	}
	g.succ[from] = insertHalf(g.succ[from], halfEdge{to: to, w: weight})
	g.pred[to] = insertHalf(g.pred[to], halfEdge{to: from, w: weight})
	g.nEdges++
}

// HasEdge reports whether from -> to exists.
func (g *DAG) HasEdge(from, to NodeID) bool {
	g.checkID(from)
	g.checkID(to)
	_, ok := findHalf(g.succ[from], to)
	return ok
}

// EdgeWeight returns the weight of from -> to, or 0 if absent.
func (g *DAG) EdgeWeight(from, to NodeID) int64 {
	g.checkID(from)
	g.checkID(to)
	if i, ok := findHalf(g.succ[from], to); ok {
		return g.succ[from][i].w
	}
	return 0
}

// Succs calls fn for each successor of id in increasing ID order.
func (g *DAG) Succs(id NodeID, fn func(to NodeID, w int64)) {
	for _, h := range g.succ[id] {
		fn(h.to, h.w)
	}
}

// Preds calls fn for each predecessor of id in increasing ID order.
func (g *DAG) Preds(id NodeID, fn func(from NodeID, w int64)) {
	for _, h := range g.pred[id] {
		fn(h.to, h.w)
	}
}

// OutDegree returns the number of successors.
func (g *DAG) OutDegree(id NodeID) int { return len(g.succ[id]) }

// InDegree returns the number of predecessors.
func (g *DAG) InDegree(id NodeID) int { return len(g.pred[id]) }

// Roots returns the nodes with no predecessors, in ID order.
func (g *DAG) Roots() []NodeID {
	var out []NodeID
	for i := range g.pred {
		if len(g.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Leaves returns the nodes with no successors, in ID order.
func (g *DAG) Leaves() []NodeID {
	var out []NodeID
	for i := range g.succ {
		if len(g.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// EdgeList returns every edge, ordered by (From, To).
func (g *DAG) EdgeList() []Edge {
	out := make([]Edge, 0, g.nEdges)
	for from := range g.succ {
		for _, h := range g.succ[from] {
			out = append(out, Edge{From: NodeID(from), To: h.to, Weight: h.w})
		}
	}
	return out
}

// TotalNodeWeight sums all node weights.
func (g *DAG) TotalNodeWeight() int64 {
	var s int64
	for _, w := range g.nodeW {
		s += w
	}
	return s
}

// TotalEdgeWeight sums all edge weights.
func (g *DAG) TotalEdgeWeight() int64 {
	var s int64
	for _, succ := range g.succ {
		for _, h := range succ {
			s += h.w
		}
	}
	return s
}

// TopoOrder returns a topological order (Kahn's algorithm, smallest ID
// first among ready nodes, so the order is deterministic) or an error if the
// graph has a cycle.
func (g *DAG) TopoOrder() ([]NodeID, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := range indeg {
		indeg[i] = len(g.pred[i])
	}
	// Min-ordered ready set via a simple binary heap over NodeIDs.
	ready := &idHeap{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for ready.len() > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, h := range g.succ[id] {
			indeg[h.to]--
			if indeg[h.to] == 0 {
				ready.push(h.to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// Validate returns an error if the graph contains a cycle.
func (g *DAG) Validate() error {
	_, err := g.TopoOrder()
	return err
}

// Levels returns, for each node, the length of the longest path from any
// root to it (roots are level 0), plus the number of levels. This is the
// "depth" structure wavefront apps exhibit.
func (g *DAG) Levels() ([]int, int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	lvl := make([]int, g.Len())
	maxLvl := 0
	for _, id := range order {
		for _, h := range g.pred[id] {
			if l := lvl[h.to] + 1; l > lvl[id] {
				lvl[id] = l
			}
		}
		if lvl[id] > maxLvl {
			maxLvl = lvl[id]
		}
	}
	if g.Len() == 0 {
		return lvl, 0, nil
	}
	return lvl, maxLvl + 1, nil
}

// CriticalPathWeight returns the maximum, over all paths, of the sum of node
// weights along the path — the lower bound on makespan with infinite cores.
func (g *DAG) CriticalPathWeight() (int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]int64, g.Len())
	var best int64
	for _, id := range order {
		var start int64
		for _, h := range g.pred[id] {
			if finish[h.to] > start {
				start = finish[h.to]
			}
		}
		finish[id] = start + g.nodeW[id]
		if finish[id] > best {
			best = finish[id]
		}
	}
	return best, nil
}

// WeaklyConnectedComponents labels each node with a component number
// (0-based, in order of first appearance) and returns the labels and the
// component count.
func (g *DAG) WeaklyConnectedComponents() ([]int, int) {
	n := g.Len()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	stack := make([]NodeID, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], NodeID(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.succ[v] {
				if comp[h.to] == -1 {
					comp[h.to] = next
					stack = append(stack, h.to)
				}
			}
			for _, h := range g.pred[v] {
				if comp[h.to] == -1 {
					comp[h.to] = next
					stack = append(stack, h.to)
				}
			}
		}
		next++
	}
	return comp, next
}

// InducedSubgraph returns the subgraph on the given nodes (in the given
// order: subgraph ID i corresponds to nodes[i]) together with the mapping
// back to the original IDs. Edges with both endpoints inside are preserved.
// The result is independently owned; callers extracting many subgraphs on a
// hot path should use InducedSubgraphInto with a reused SubgraphScratch.
func (g *DAG) InducedSubgraph(nodes []NodeID) (*DAG, []NodeID) {
	return g.InducedSubgraphInto(nil, nodes)
}

// TransitiveReduction removes every edge (u,v) for which another path
// u -> ... -> v exists, keeping the DAG's reachability identical. Runs in
// O(V·E) worst case; intended for analysis and visualization of window-sized
// graphs, not for the streaming hot path.
func (g *DAG) TransitiveReduction() (removed int, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	pos := make([]int, g.Len())
	for i, id := range order {
		pos[id] = i
	}
	reach := make([]map[NodeID]bool, g.Len())
	// Process in reverse topological order so each node's reachable set is
	// available when its predecessors need it.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var drop []NodeID
		// Consider direct successors farthest-first (by topo position):
		// an edge is redundant iff the target is reachable via another
		// successor that precedes it topologically.
		succs := append([]halfEdge(nil), g.succ[id]...)
		sort.Slice(succs, func(a, b int) bool { return pos[succs[a].to] < pos[succs[b].to] })
		r := make(map[NodeID]bool)
		for _, h := range succs {
			if r[h.to] {
				drop = append(drop, h.to)
				continue
			}
			r[h.to] = true
			for v := range reach[h.to] {
				r[v] = true
			}
		}
		reach[id] = r
		for _, to := range drop {
			g.removeEdge(id, to)
			removed++
		}
	}
	return removed, nil
}

func (g *DAG) removeEdge(from, to NodeID) {
	if i, ok := findHalf(g.succ[from], to); ok {
		g.succ[from] = append(g.succ[from][:i], g.succ[from][i+1:]...)
		j, _ := findHalf(g.pred[to], from)
		g.pred[to] = append(g.pred[to][:j], g.pred[to][j+1:]...)
		g.nEdges--
	}
}

func (g *DAG) checkID(id NodeID) {
	if id < 0 || int(id) >= len(g.nodeW) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", id, len(g.nodeW)))
	}
}

func findHalf(hs []halfEdge, to NodeID) (int, bool) {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := (lo + hi) / 2
		if hs[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(hs) && hs[lo].to == to {
		return lo, true
	}
	return lo, false
}

func insertHalf(hs []halfEdge, h halfEdge) []halfEdge {
	i, _ := findHalf(hs, h.to)
	hs = append(hs, halfEdge{})
	copy(hs[i+1:], hs[i:])
	hs[i] = h
	return hs
}

// idHeap is a minimal binary min-heap of NodeIDs for deterministic Kahn.
type idHeap struct{ xs []NodeID }

func (h *idHeap) len() int { return len(h.xs) }

func (h *idHeap) push(id NodeID) {
	h.xs = append(h.xs, id)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.xs[p] <= h.xs[i] {
			break
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *idHeap) pop() NodeID {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.xs[l] < h.xs[small] {
			small = l
		}
		if r < last && h.xs[r] < h.xs[small] {
			small = r
		}
		if small == i {
			break
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
	return top
}
