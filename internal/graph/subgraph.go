package graph

import "fmt"

// SubgraphScratch holds the reusable state of InducedSubgraphInto: a dense
// original->subgraph index stamped with an epoch counter (so consecutive
// extractions skip clearing it), the back-mapping, and CSR-style halfEdge
// slabs the sub-DAG's adjacency lists are carved from. One scratch serves
// any number of extractions from any number of DAGs; every call overwrites
// the previous call's result. A scratch is single-goroutine state.
//
// The zero value is ready to use.
type SubgraphScratch struct {
	// idx[v] is v's subgraph ID, valid only when stamp[v] == epoch.
	idx   []int32
	stamp []int32
	epoch int32

	dag  DAG // the reused sub-DAG shell; its backing arrays grow monotonically
	back []NodeID
	deg  []int32 // per-subgraph-node degree scratch for slab sizing

	succSlab []halfEdge
	predSlab []halfEdge
}

// InducedSubgraphInto extracts the subgraph on the given nodes into sc's
// reusable backing and returns it together with the mapping back to the
// original IDs (subgraph ID i corresponds to nodes[i]). Edges with both
// endpoints inside are preserved; adjacency lists come out sorted by target
// ID, exactly as incremental AddEdge construction would produce them, so
// downstream consumers (symmetrization, tie-breaks) see identical state.
//
// The returned DAG and slice are owned by sc and valid only until its next
// use; they must not be retained across calls. A nil sc allocates a fresh
// scratch, making the result independently owned — that is what
// InducedSubgraph does.
func (g *DAG) InducedSubgraphInto(sc *SubgraphScratch, nodes []NodeID) (*DAG, []NodeID) {
	if sc == nil {
		sc = &SubgraphScratch{}
	}
	n := g.Len()
	if cap(sc.idx) < n {
		sc.idx = make([]int32, n)
		sc.stamp = make([]int32, n)
	}
	idx, stamp := sc.idx[:n], sc.stamp[:n]
	sc.epoch++
	if sc.epoch == 0 { // stamp wrapped: old stamps could alias, clear them
		for i := range stamp {
			stamp[i] = 0
		}
		sc.epoch = 1
	}
	e := sc.epoch
	for i, id := range nodes {
		g.checkID(id)
		if stamp[id] == e {
			panic(fmt.Sprintf("graph: duplicate node %d in induced subgraph", id))
		}
		idx[id] = int32(i)
		stamp[id] = e
	}

	ns := len(nodes)
	sub := &sc.dag
	sub.nodeW = grow(sub.nodeW, ns)
	sub.labels = grow(sub.labels, ns)
	sub.succ = grow(sub.succ, ns)
	sub.pred = grow(sub.pred, ns)
	sc.back = grow(sc.back, ns)
	sc.deg = grow(sc.deg, ns)

	// Counting pass: per-node in-subset out-degrees size the succ slab (the
	// pred slab mirrors it: every kept edge contributes one half to each).
	deg := sc.deg
	total := 0
	for i, v := range nodes {
		sc.back[i] = v
		sub.nodeW[i] = g.nodeW[v]
		sub.labels[i] = g.labels[v]
		d := 0
		for _, h := range g.succ[v] {
			if stamp[h.to] == e {
				d++
			}
		}
		deg[i] = int32(d)
		total += d
	}
	if cap(sc.succSlab) < total {
		sc.succSlab = make([]halfEdge, total)
		sc.predSlab = make([]halfEdge, total)
	}
	// Carve each list with exact capacity so a later append on the returned
	// DAG copies out of the slab instead of clobbering a neighbor list.
	off := 0
	for i := range nodes {
		d := int(deg[i])
		sub.succ[i] = sc.succSlab[off : off : off+d]
		off += d
	}

	// Fill passes, ordered so both adjacency lists come out sorted by
	// subgraph target ID without a sort: succ[j] entries are appended while
	// scanning subgraph nodes u in increasing ID (each u's in-subset
	// predecessors gain the edge u as target), and pred[i] symmetrically.
	predOff := 0
	for j, u := range nodes {
		cnt := 0
		for _, h := range g.pred[u] {
			if stamp[h.to] == e {
				i := idx[h.to]
				sub.succ[i] = append(sub.succ[i], halfEdge{to: NodeID(j), w: h.w})
				cnt++
			}
		}
		sub.pred[j] = sc.predSlab[predOff : predOff : predOff+cnt]
		predOff += cnt
	}
	for i, v := range nodes {
		for _, h := range g.succ[v] {
			if stamp[h.to] == e {
				j := idx[h.to]
				sub.pred[j] = append(sub.pred[j], halfEdge{to: NodeID(i), w: h.w})
			}
		}
	}
	sub.nEdges = total
	return sub, sc.back
}

// grow returns s resized to n, reusing its backing array when capacity
// allows and reallocating (without copying) otherwise.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
