package graph

import (
	"testing"
	"testing/quick"

	"numadag/internal/xrand"
)

// diamond builds a <- {b, c} <- d ... actually a->b, a->c, b->d, c->d.
func diamond(t *testing.T) (*DAG, [4]NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 2)
	c := g.AddNode("c", 3)
	d := g.AddNode("d", 4)
	g.AddEdge(a, b, 10)
	g.AddEdge(a, c, 20)
	g.AddEdge(b, d, 30)
	g.AddEdge(c, d, 40)
	return g, [4]NodeID{a, b, c, d}
}

func TestAddNodesAndEdges(t *testing.T) {
	g, ids := diamond(t)
	if g.Len() != 4 || g.Edges() != 4 {
		t.Fatalf("len=%d edges=%d, want 4/4", g.Len(), g.Edges())
	}
	if !g.HasEdge(ids[0], ids[1]) || g.HasEdge(ids[1], ids[0]) {
		t.Fatal("edge direction wrong")
	}
	if w := g.EdgeWeight(ids[2], ids[3]); w != 40 {
		t.Fatalf("edge weight = %d, want 40", w)
	}
	if w := g.EdgeWeight(ids[3], ids[0]); w != 0 {
		t.Fatalf("absent edge weight = %d, want 0", w)
	}
	if g.NodeWeight(ids[3]) != 4 || g.Label(ids[3]) != "d" {
		t.Fatal("node attributes lost")
	}
}

func TestParallelEdgeAccumulates(t *testing.T) {
	g := New()
	a, b := g.AddNode("a", 1), g.AddNode("b", 1)
	g.AddEdge(a, b, 5)
	g.AddEdge(a, b, 7)
	if g.Edges() != 1 {
		t.Fatalf("parallel edge created a second edge")
	}
	if w := g.EdgeWeight(a, b); w != 12 {
		t.Fatalf("accumulated weight = %d, want 12", w)
	}
	// Predecessor side must agree.
	g.Preds(b, func(from NodeID, w int64) {
		if from != a || w != 12 {
			t.Fatalf("pred edge = (%d, %d)", from, w)
		}
	})
}

func TestSelfLoopPanics(t *testing.T) {
	g := New()
	a := g.AddNode("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g.AddEdge(a, a, 1)
}

func TestNegativeWeightsPanic(t *testing.T) {
	g := New()
	a, b := g.AddNode("a", 1), g.AddNode("b", 1)
	for _, f := range []func(){
		func() { g.AddNode("bad", -1) },
		func() { g.AddEdge(a, b, -1) },
		func() { g.SetNodeWeight(a, -2) },
	} {
		func() {
			defer func() { _ = recover() }()
			f()
			t.Error("negative weight accepted")
		}()
	}
}

func TestDegreesRootsLeaves(t *testing.T) {
	g, ids := diamond(t)
	if g.InDegree(ids[0]) != 0 || g.OutDegree(ids[0]) != 2 {
		t.Fatal("root degrees wrong")
	}
	if g.InDegree(ids[3]) != 2 || g.OutDegree(ids[3]) != 0 {
		t.Fatal("leaf degrees wrong")
	}
	roots, leaves := g.Roots(), g.Leaves()
	if len(roots) != 1 || roots[0] != ids[0] {
		t.Fatalf("roots = %v", roots)
	}
	if len(leaves) != 1 || leaves[0] != ids[3] {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g, _ := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.EdgeList() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %v violates topo order %v", e, order)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a", 1), g.AddNode("b", 1), g.AddNode("c", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, a, 1) // cycle
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestLevels(t *testing.T) {
	g, ids := diamond(t)
	lvl, n, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("levels = %d, want 3", n)
	}
	want := map[NodeID]int{ids[0]: 0, ids[1]: 1, ids[2]: 1, ids[3]: 2}
	for id, l := range want {
		if lvl[id] != l {
			t.Errorf("level[%d] = %d, want %d", id, lvl[id], l)
		}
	}
}

func TestLevelsEmptyGraph(t *testing.T) {
	g := New()
	_, n, err := g.Levels()
	if err != nil || n != 0 {
		t.Fatalf("empty graph levels = %d, err %v", n, err)
	}
}

func TestCriticalPath(t *testing.T) {
	g, _ := diamond(t)
	// Longest weighted path: a(1) -> c(3) -> d(4) = 8.
	cp, err := g.CriticalPathWeight()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Fatalf("critical path = %d, want 8", cp)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New()
	a, b := g.AddNode("a", 1), g.AddNode("b", 1)
	c, d := g.AddNode("c", 1), g.AddNode("d", 1)
	_ = g.AddNode("lone", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(c, d, 1)
	comp, n := g.WeaklyConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[a] != comp[b] || comp[c] != comp[d] || comp[a] == comp[c] {
		t.Fatalf("component labels wrong: %v", comp)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, ids := diamond(t)
	sub, back := g.InducedSubgraph([]NodeID{ids[0], ids[1], ids[3]})
	if sub.Len() != 3 {
		t.Fatalf("subgraph len = %d", sub.Len())
	}
	// Edges inside: a->b, b->d. Edge via c is dropped.
	if sub.Edges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sub.Edges())
	}
	if back[0] != ids[0] || back[1] != ids[1] || back[2] != ids[3] {
		t.Fatalf("back mapping = %v", back)
	}
	if sub.EdgeWeight(0, 1) != 10 || sub.EdgeWeight(1, 2) != 30 {
		t.Fatal("subgraph edge weights wrong")
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	g, ids := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	g.InducedSubgraph([]NodeID{ids[0], ids[0]})
}

func TestTransitiveReduction(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a", 1), g.AddNode("b", 1), g.AddNode("c", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(a, c, 1) // redundant
	removed, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d edges, want 1", removed)
	}
	if g.HasEdge(a, c) {
		t.Fatal("redundant edge survived")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, c) {
		t.Fatal("necessary edge removed")
	}
}

func TestTransitiveReductionDiamondKeepsAll(t *testing.T) {
	g, _ := diamond(t)
	removed, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("diamond has no redundant edges, removed %d", removed)
	}
}

func TestTotalWeights(t *testing.T) {
	g, _ := diamond(t)
	if g.TotalNodeWeight() != 10 {
		t.Fatalf("TotalNodeWeight = %d", g.TotalNodeWeight())
	}
	if g.TotalEdgeWeight() != 100 {
		t.Fatalf("TotalEdgeWeight = %d", g.TotalEdgeWeight())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New()
	g.AddNode("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range id did not panic")
		}
	}()
	g.AddEdge(0, 5, 1)
}

// randomDAG builds a random DAG with edges only from lower to higher IDs
// (guaranteed acyclic).
func randomDAG(r *xrand.Rand, n, extraEdges int) *DAG {
	g := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddNode("", int64(r.Intn(100)+1))
	}
	for i := 0; i < extraEdges; i++ {
		a := r.Intn(n)
		b := r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		g.AddEdge(NodeID(a), NodeID(b), int64(r.Intn(1000)+1))
	}
	return g
}

// Property: topological order respects all edges on random DAGs.
func TestPropertyTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed uint64, n8 uint8, e8 uint8) bool {
		n := int(n8%60) + 2
		g := randomDAG(xrand.New(seed), n, int(e8))
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.EdgeList() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: transitive reduction preserves reachability.
func TestPropertyTransitiveReductionPreservesReachability(t *testing.T) {
	reach := func(g *DAG) map[[2]NodeID]bool {
		m := make(map[[2]NodeID]bool)
		for s := 0; s < g.Len(); s++ {
			seen := make([]bool, g.Len())
			stack := []NodeID{NodeID(s)}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				g.Succs(v, func(to NodeID, _ int64) {
					if !seen[to] {
						seen[to] = true
						stack = append(stack, to)
					}
				})
			}
			for v := 0; v < g.Len(); v++ {
				if seen[v] {
					m[[2]NodeID{NodeID(s), NodeID(v)}] = true
				}
			}
		}
		return m
	}
	f := func(seed uint64) bool {
		g := randomDAG(xrand.New(seed), 25, 80)
		before := reach(g)
		if _, err := g.TransitiveReduction(); err != nil {
			return false
		}
		after := reach(g)
		if len(before) != len(after) {
			return false
		}
		for k := range before {
			if !after[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: induced subgraph over all nodes is the same graph.
func TestPropertyInducedSubgraphIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomDAG(xrand.New(seed), 30, 60)
		all := make([]NodeID, g.Len())
		for i := range all {
			all[i] = NodeID(i)
		}
		sub, _ := g.InducedSubgraph(all)
		if sub.Len() != g.Len() || sub.Edges() != g.Edges() {
			return false
		}
		return sub.TotalEdgeWeight() == g.TotalEdgeWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddEdge(b *testing.B) {
	g := NewWithCapacity(b.N + 1)
	for i := 0; i <= b.N; i++ {
		g.AddNode("", 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 64)
	}
}

func BenchmarkTopoOrder10k(b *testing.B) {
	g := randomDAG(xrand.New(1), 10000, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
