package graph

import (
	"strings"
	"testing"
)

func TestProfileDiamond(t *testing.T) {
	g, _ := diamond(t)
	p, err := g.ComputeProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 4 || p.Edges != 4 || p.Levels != 3 {
		t.Fatalf("profile = %+v", p)
	}
	if p.MaxWidth != 2 {
		t.Fatalf("max width = %d, want 2 (b and c)", p.MaxWidth)
	}
	if p.TotalWork != 10 || p.CriticalWork != 8 {
		t.Fatalf("work = %d/%d, want 10/8", p.TotalWork, p.CriticalWork)
	}
	if ap := p.AvgParallelism(); ap != 1.25 {
		t.Fatalf("avg parallelism = %v, want 1.25", ap)
	}
	if !strings.Contains(p.String(), "4 nodes") {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestProfileChainVsFan(t *testing.T) {
	chain := New()
	prev := chain.AddNode("", 5)
	for i := 0; i < 9; i++ {
		n := chain.AddNode("", 5)
		chain.AddEdge(prev, n, 1)
		prev = n
	}
	pc, err := chain.ComputeProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pc.AvgParallelism() != 1.0 {
		t.Fatalf("chain parallelism = %v", pc.AvgParallelism())
	}
	if pc.MaxWidth != 1 || pc.Levels != 10 {
		t.Fatalf("chain profile = %+v", pc)
	}

	fan := New()
	root := fan.AddNode("", 5)
	for i := 0; i < 9; i++ {
		n := fan.AddNode("", 5)
		fan.AddEdge(root, n, 1)
	}
	pf, err := fan.ComputeProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pf.MaxWidth != 9 || pf.Levels != 2 {
		t.Fatalf("fan profile = %+v", pf)
	}
	if pf.AvgParallelism() != 5.0 {
		t.Fatalf("fan parallelism = %v, want 50/10", pf.AvgParallelism())
	}
}

func TestProfileCycleError(t *testing.T) {
	g := New()
	a, b := g.AddNode("", 1), g.AddNode("", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if _, err := g.ComputeProfile(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestProfileEmpty(t *testing.T) {
	p, err := New().ComputeProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 0 || p.AvgParallelism() != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
}
