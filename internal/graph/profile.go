package graph

import (
	"fmt"
)

// Profile summarizes a DAG's parallelism structure: how much concurrent
// work each dependence level exposes, and the bounds that matter for
// scheduling quality analysis (average parallelism, critical path).
type Profile struct {
	Nodes  int
	Edges  int
	Levels int
	// WidthByLevel is the node count per dependence level.
	WidthByLevel []int
	// MaxWidth is the widest level (peak exposable parallelism).
	MaxWidth int
	// TotalWork and CriticalWork are the node-weight sums of the whole
	// graph and of the heaviest path; their ratio is the average
	// parallelism an ideal machine could exploit.
	TotalWork    int64
	CriticalWork int64
}

// AvgParallelism returns TotalWork / CriticalWork (1.0 for a pure chain).
func (p Profile) AvgParallelism() float64 {
	if p.CriticalWork == 0 {
		return 0
	}
	return float64(p.TotalWork) / float64(p.CriticalWork)
}

// String renders a one-line summary.
func (p Profile) String() string {
	return fmt.Sprintf("%d nodes, %d edges, %d levels, max width %d, avg parallelism %.1f",
		p.Nodes, p.Edges, p.Levels, p.MaxWidth, p.AvgParallelism())
}

// ComputeProfile analyzes the DAG. It fails only on cyclic input.
func (g *DAG) ComputeProfile() (Profile, error) {
	lvl, nLevels, err := g.Levels()
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		Nodes:        g.Len(),
		Edges:        g.Edges(),
		Levels:       nLevels,
		WidthByLevel: make([]int, nLevels),
		TotalWork:    g.TotalNodeWeight(),
	}
	for _, l := range lvl {
		p.WidthByLevel[l]++
		if p.WidthByLevel[l] > p.MaxWidth {
			p.MaxWidth = p.WidthByLevel[l]
		}
	}
	p.CriticalWork, err = g.CriticalPathWeight()
	if err != nil {
		return Profile{}, err
	}
	return p, nil
}
