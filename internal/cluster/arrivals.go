package cluster

import (
	"fmt"
	"math"
	"sort"

	"numadag/internal/core"
	"numadag/internal/sim"
	"numadag/internal/xrand"
)

// Tenant describes one simulated customer: which workload specs its jobs
// draw from and the arrival process that submits them. Every tenant owns an
// independent random stream seeded core.DeriveSeed(cfg.Seed, tenantIndex),
// so adding a tenant or changing its rate never perturbs another tenant's
// arrivals — the cluster analogue of the per-replicate seed formula.
type Tenant struct {
	// Name labels the tenant in metrics and sinks (fairness is reported
	// per tenant). Must be non-empty and unique within a Config.
	Name string
	// Specs lists the workload registry specs this tenant's jobs are drawn
	// from, uniformly at random per job ("jacobi?nb=8", "forkjoin?depth=5",
	// ...). Must be non-empty.
	Specs []string
	// Process selects the arrival process: "poisson" (open-loop, constant
	// rate), "diurnal" (Poisson modulated by a sinusoidal day/night curve,
	// thinned Lewis-Shedler style) or "trace" (explicit submit times).
	Process string
	// Rate is the mean arrival rate in jobs per simulated second, for the
	// poisson and diurnal processes.
	Rate float64
	// Period and Amplitude shape the diurnal curve: instantaneous rate is
	// Rate * (1 + Amplitude*sin(2*pi*t/Period)). Amplitude must be in
	// [0, 1); Period defaults to one simulated second.
	Period    sim.Time
	Amplitude float64
	// Trace holds explicit submit times for the "trace" process, in
	// non-decreasing order. Duplicate times are legal (a same-instant
	// burst); the stream ends when the trace does.
	Trace []sim.Time
}

func (t *Tenant) validate(idx int) error {
	if t.Name == "" {
		return fmt.Errorf("cluster: tenant %d has no name", idx)
	}
	if len(t.Specs) == 0 {
		return fmt.Errorf("cluster: tenant %q has no workload specs", t.Name)
	}
	switch t.Process {
	case "poisson", "diurnal":
		if t.Rate <= 0 {
			return fmt.Errorf("cluster: tenant %q: %s process with rate %v", t.Name, t.Process, t.Rate)
		}
		if t.Process == "diurnal" {
			if t.Amplitude < 0 || t.Amplitude >= 1 {
				return fmt.Errorf("cluster: tenant %q: diurnal amplitude %v out of [0, 1)", t.Name, t.Amplitude)
			}
			if t.Period < 0 {
				return fmt.Errorf("cluster: tenant %q: negative diurnal period", t.Name)
			}
		}
	case "trace":
		for i := 1; i < len(t.Trace); i++ {
			if t.Trace[i] < t.Trace[i-1] {
				return fmt.Errorf("cluster: tenant %q: trace times decrease at index %d", t.Name, i)
			}
		}
		if len(t.Trace) > 0 && t.Trace[0] < 0 {
			return fmt.Errorf("cluster: tenant %q: negative trace time", t.Name)
		}
	default:
		return fmt.Errorf("cluster: tenant %q: unknown arrival process %q (poisson, diurnal, trace)", t.Name, t.Process)
	}
	return nil
}

// arrivalStream generates one tenant's submit times lazily. next returns
// the next submit time, or ok=false when the stream is exhausted (only the
// trace process ever exhausts).
type arrivalStream struct {
	tenant *Tenant
	rng    *xrand.Rand
	now    sim.Time // last emitted time (trace: next index)
	idx    int
}

// expDelay draws an exponential inter-arrival gap for the given rate in
// jobs/second, quantized to >= 1ns so the clock always advances between a
// tenant's own Poisson arrivals (bursts still happen across tenants and in
// traces).
func expDelay(rng *xrand.Rand, ratePerSec float64) sim.Time {
	u := rng.Float64()
	gap := -math.Log(1-u) / ratePerSec * float64(sim.Second)
	if gap < 1 {
		gap = 1
	}
	if gap > float64(math.MaxInt64/4) {
		gap = float64(math.MaxInt64 / 4)
	}
	return sim.Time(gap)
}

func (s *arrivalStream) next() (sim.Time, bool) {
	t := s.tenant
	switch t.Process {
	case "poisson":
		s.now += expDelay(s.rng, t.Rate)
		return s.now, true
	case "diurnal":
		// Lewis-Shedler thinning against the peak rate: draw candidate gaps
		// at Rate*(1+A) and accept each candidate with probability
		// rate(t)/peak. Deterministic given the tenant stream.
		period := t.Period
		if period <= 0 {
			period = sim.Second
		}
		peak := t.Rate * (1 + t.Amplitude)
		for {
			s.now += expDelay(s.rng, peak)
			phase := 2 * math.Pi * float64(s.now%period) / float64(period)
			rate := t.Rate * (1 + t.Amplitude*math.Sin(phase))
			if s.rng.Float64()*peak <= rate {
				return s.now, true
			}
		}
	case "trace":
		if s.idx >= len(t.Trace) {
			return 0, false
		}
		at := t.Trace[s.idx]
		s.idx++
		return at, true
	}
	panic("cluster: unvalidated arrival process")
}

// Arrivals generates the first n jobs of the configured tenants, merged
// into one stream ordered by (submit time, tenant index, per-tenant
// sequence) and numbered 0..n-1 in that order. The stream is a pure
// function of (tenants, seed): per-tenant randomness comes from
// core.DeriveSeed(seed, tenantIndex), and the merge is a deterministic
// k-way pick, so the same configuration always yields the identical job
// list — the foundation of cluster-mode determinism goldens.
//
// Each job's Spec is drawn uniformly from its tenant's Specs using the same
// tenant stream. Fewer than n jobs are returned only when every tenant uses
// a finite trace and the traces run dry.
func Arrivals(tenants []Tenant, seed uint64, n int) ([]Job, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative job count %d", n)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: no tenants")
	}
	for i := range tenants {
		if err := tenants[i].validate(i); err != nil {
			return nil, err
		}
		for j := 0; j < i; j++ {
			if tenants[j].Name == tenants[i].Name {
				return nil, fmt.Errorf("cluster: duplicate tenant name %q", tenants[i].Name)
			}
		}
	}
	streams := make([]arrivalStream, len(tenants))
	heads := make([]sim.Time, len(tenants))
	live := make([]bool, len(tenants))
	for i := range tenants {
		streams[i] = arrivalStream{tenant: &tenants[i], rng: xrand.New(core.DeriveSeed(seed, i))}
		heads[i], live[i] = streams[i].next()
	}
	jobs := make([]Job, 0, n)
	for len(jobs) < n {
		best := -1
		for i := range heads {
			if !live[i] {
				continue
			}
			if best < 0 || heads[i] < heads[best] {
				best = i
			}
		}
		if best < 0 {
			break // all traces exhausted
		}
		t := &tenants[best]
		spec := t.Specs[0]
		if len(t.Specs) > 1 {
			spec = t.Specs[streams[best].rng.Intn(len(t.Specs))]
		}
		jobs = append(jobs, Job{
			ID:       len(jobs),
			Tenant:   best,
			Spec:     spec,
			SubmitAt: heads[best],
			Machine:  -1,
		})
		heads[best], live[best] = streams[best].next()
	}
	// The k-way pick already yields (time, tenant) order; assert it rather
	// than trust it — FuzzArrivals leans on this invariant.
	if !sort.SliceIsSorted(jobs, func(a, b int) bool {
		if jobs[a].SubmitAt != jobs[b].SubmitAt {
			return jobs[a].SubmitAt < jobs[b].SubmitAt
		}
		return jobs[a].Tenant < jobs[b].Tenant
	}) {
		panic("cluster: arrival merge produced an unsorted stream")
	}
	return jobs, nil
}
