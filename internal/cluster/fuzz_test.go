package cluster

import (
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// FuzzArrivals throws adversarial arrival patterns at the full service
// loop: bursty same-instant trace submissions, zero-length (zero-task,
// zero-flop) jobs, and heavily skewed tenant rates. Whatever the pattern,
// the run must never stall (every job completes), never reorder the shared
// clock (the completion stream is monotone and consistent), and stay
// deterministic (a second identical run is bit-identical).
func FuzzArrivals(f *testing.F) {
	f.Add(uint64(42), 1.0, 1.0, uint8(3), uint8(2), false)
	f.Add(uint64(7), 2000.0, 1.0, uint8(8), uint8(1), true)     // same-instant burst, skewed rates
	f.Add(uint64(1), 0.5, 900.0, uint8(0), uint8(3), true)      // tenant skew the other way
	f.Add(uint64(99), 100.0, 100.0, uint8(16), uint8(4), false) // wide burst
	f.Add(uint64(3), 5000.0, 5000.0, uint8(2), uint8(2), true)  // high pressure, tiny fleet

	f.Fuzz(func(t *testing.T, seed uint64, rateA, rateB float64, burst, machines uint8, zeroJobs bool) {
		// Clamp the fuzzed inputs into the legal (but still nasty) range.
		if rateA <= 0 || rateA > 1e6 || rateA != rateA {
			rateA = 1
		}
		if rateB <= 0 || rateB > 1e6 || rateB != rateB {
			rateB = 1000
		}
		nm := int(machines%4) + 1
		trace := make([]sim.Time, int(burst%24))
		for i := range trace {
			// All trace arrivals at two instants (times non-decreasing): a
			// t=0 burst and a mid-run burst landing on in-flight jobs.
			if i >= len(trace)/2 {
				trace[i] = 20 * sim.Microsecond
			}
		}
		heavySpec := "noop?tasks=3&flops=2048"
		if zeroJobs {
			heavySpec = "noop?tasks=0"
		}
		cfg := Config{
			Machines: nm,
			Machine:  machine.TwoSocketXeon(),
			Policy:   "LAS",
			Runtime:  rt.DefaultOptions(),
			Scale:    apps.Tiny,
			Tenants: []Tenant{
				{Name: "a", Specs: []string{heavySpec, "noop?tasks=1"}, Process: "poisson", Rate: rateA},
				{Name: "b", Specs: []string{"forkjoin?depth=2&fanout=2"}, Process: "diurnal",
					Rate: rateB, Amplitude: 0.9, Period: 10 * sim.Microsecond},
				{Name: "c", Specs: []string{"noop?tasks=0"}, Process: "trace", Trace: trace},
			},
			Jobs:       30,
			Seed:       seed,
			Dispatcher: "idle",
			Audit:      true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// No stall: Run already errors when jobs are left behind; re-check
		// the count and the per-job clock invariants.
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if j.StartAt < j.SubmitAt || j.EndAt < j.StartAt {
				t.Fatalf("job %d clock reorder: submit %v start %v end %v", j.ID, j.SubmitAt, j.StartAt, j.EndAt)
			}
			if j.Machine < 0 || j.Machine >= nm {
				t.Fatalf("job %d on machine %d of %d", j.ID, j.Machine, nm)
			}
			if i > 0 && j.SubmitAt < res.Jobs[i-1].SubmitAt {
				t.Fatalf("arrival order broken at job %d", j.ID)
			}
		}
		// The occupancy timeline must be monotone in time and never go
		// negative or exceed the fleet.
		var last sim.Time
		for _, p := range res.Stats.Timeline {
			if p.At < last {
				t.Fatalf("timeline reordered: %v after %v", p.At, last)
			}
			last = p.At
			if p.Busy < 0 || p.Busy > nm || p.Queued < 0 {
				t.Fatalf("impossible occupancy: %+v with %d machines", p, nm)
			}
		}
		// Determinism: an identical second run reproduces the stream.
		res2, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletionHash() != res2.CompletionHash() {
			t.Fatalf("repeat run diverged: %x vs %x", res.CompletionHash(), res2.CompletionHash())
		}
	})
}
