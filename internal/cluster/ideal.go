package cluster

import (
	"sort"

	"numadag/internal/machine"
	"numadag/internal/sim"
)

// IdealDC is the fluid-model comparator that normalizes cluster slowdowns.
// It treats the fleet as one aggregate pool of compute capacity — no NUMA
// topology, no interconnect, no dispatch, no queueing at a single machine —
// and runs the same arrival sequence through egalitarian processor sharing:
// at any instant the k in-flight jobs each receive min(one machine's full
// compute rate, aggregateCapacity/k). A job's ideal response time is when
// its total flops drain under that schedule.
//
// The per-job cap matters: a single job cannot use more than one machine in
// the real cluster either, so an unloaded IdealDC reproduces a job's
// dedicated-machine compute lower bound, and slowdown = real/ideal isolates
// what queueing, dispatch, and NUMA contention cost on top of raw capacity.
type IdealDC struct {
	perJob   float64 // flops/ns a single job can draw (one machine)
	capacity float64 // flops/ns of the whole fleet
}

// NewIdealDC sizes the fluid model for a fleet of n identical machines.
func NewIdealDC(cfg *machine.Config, n int) *IdealDC {
	perJob := float64(cfg.TotalCores()) * cfg.CoreFlops
	return &IdealDC{perJob: perJob, capacity: perJob * float64(n)}
}

// idealJob is one job's fluid state: submit time and flops left to drain.
type idealJob struct {
	id   int
	work float64
}

// Respond computes each job's ideal response time (completion - submit)
// for the given arrival sequence, where work[i] is job i's total flops
// (from Snapshot.TotalFlops). Returns one duration per job, >= 1ns, indexed
// by job ID. Pure computation on floats and sim.Times — no engine involved.
func (d *IdealDC) Respond(jobs []Job, work []float64) []sim.Time {
	resp := make([]sim.Time, len(jobs))
	active := make([]idealJob, 0, 16)
	now := float64(0) // ns, as float to keep fluid drains exact-ish
	i := 0
	for i < len(jobs) || len(active) > 0 {
		// Per-job drain rate under egalitarian sharing with a per-job cap.
		rate := 0.0
		if k := len(active); k > 0 {
			rate = d.capacity / float64(k)
			if rate > d.perJob {
				rate = d.perJob
			}
		}
		// Next event: either the soonest fluid completion or the next arrival.
		nextArrival := -1.0
		if i < len(jobs) {
			nextArrival = float64(jobs[i].SubmitAt)
		}
		soonest := -1.0
		if rate > 0 {
			for _, j := range active {
				t := now + j.work/rate
				if soonest < 0 || t < soonest {
					soonest = t
				}
			}
		}
		var next float64
		switch {
		case soonest >= 0 && (nextArrival < 0 || soonest <= nextArrival):
			next = soonest
		case nextArrival >= 0:
			next = nextArrival
		default:
			return resp // nothing active, nothing arriving
		}
		if next < now {
			next = now
		}
		// Drain all active jobs to `next`, retiring the ones that finish.
		drained := (next - now) * rate
		keep := active[:0]
		for _, j := range active {
			j.work -= drained
			// Retire on residual work OR when the remaining drain time
			// underflows float addition at the current clock — such a job can
			// never push `next` forward, and keeping it would spin the loop.
			if j.work <= 1e-9 || (rate > 0 && next+j.work/rate <= next) {
				r := sim.Time(next) - jobs[j.id].SubmitAt
				if r < 1 {
					r = 1
				}
				resp[j.id] = r
			} else {
				keep = append(keep, j)
			}
		}
		active = keep
		now = next
		// Admit every job arriving at this instant.
		for i < len(jobs) && float64(jobs[i].SubmitAt) <= now {
			w := work[jobs[i].ID]
			if w <= 0 {
				// Zero-work job: ideal response is the 1ns floor.
				resp[jobs[i].ID] = 1
			} else {
				active = append(active, idealJob{id: jobs[i].ID, work: w})
			}
			i++
		}
		// Keep retirement order deterministic regardless of append order.
		sort.Slice(active, func(a, b int) bool { return active[a].id < active[b].id })
	}
	return resp
}
