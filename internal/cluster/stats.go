package cluster

import (
	"fmt"

	"numadag/internal/metrics"
	"numadag/internal/sim"
)

// statsEps is the relative accuracy of the streaming response/slowdown
// histograms. 1% keeps p99 honest for tail-latency plots while holding the
// sketch to a few hundred buckets across nanosecond..hour ranges.
const statsEps = 0.01

// UtilPoint is one sample of the cluster occupancy timeline, recorded at
// every job start and completion: Busy machines are running a job, Queued
// counts jobs waiting behind them.
type UtilPoint struct {
	At     sim.Time
	Busy   int
	Queued int
}

// TenantStats aggregates one tenant's jobs (or, for the cluster-wide row,
// all jobs).
type TenantStats struct {
	Name     string
	Jobs     int
	Response *metrics.Histogram // response time, ns
	Slowdown *metrics.Histogram // response / IdealDC response
}

// Stats collects cluster-run metrics: streaming response and slowdown
// distributions globally and per tenant, a machine-occupancy timeline, and
// per-machine job counts. Everything is accumulated online during the run
// and summarized after the engine drains.
type Stats struct {
	All            TenantStats
	Tenants        []TenantStats
	Timeline       []UtilPoint
	JobsPerMachine []int

	// Submitted counts jobs that have entered the system (arrival events
	// fired), whether or not they have been dispatched yet. Together with
	// All.Jobs (completed) it bounds the in-flight population — the number
	// a monitor scraper needs to see rise at submit time, not first at
	// dispatch.
	Submitted int

	machines int
	lastAt   sim.Time
	busyInt  float64 // time-weighted busy-machine integral
	busyNow  int
	queueNow int
}

func newStats(tenants []Tenant, machines int) *Stats {
	s := &Stats{
		All: TenantStats{
			Name:     "all",
			Response: metrics.NewHistogram(statsEps),
			Slowdown: metrics.NewHistogram(statsEps),
		},
		Tenants:        make([]TenantStats, len(tenants)),
		JobsPerMachine: make([]int, machines),
		machines:       machines,
	}
	for i := range tenants {
		s.Tenants[i] = TenantStats{
			Name:     tenants[i].Name,
			Response: metrics.NewHistogram(statsEps),
			Slowdown: metrics.NewHistogram(statsEps),
		}
	}
	return s
}

// sample advances the time-weighted occupancy integral to `at` and records
// a timeline point. dBusy/dQueue are the deltas this event applies.
func (s *Stats) sample(at sim.Time, dBusy, dQueue int) {
	s.busyInt += float64(at-s.lastAt) * float64(s.busyNow)
	s.lastAt = at
	s.busyNow += dBusy
	s.queueNow += dQueue
	s.Timeline = append(s.Timeline, UtilPoint{At: at, Busy: s.busyNow, Queued: s.queueNow})
}

// observe records one completed job.
func (s *Stats) observe(job *Job, response sim.Time, slowdown float64) {
	s.All.Jobs++
	s.All.Response.Add(float64(response))
	s.All.Slowdown.Add(slowdown)
	t := &s.Tenants[job.Tenant]
	t.Jobs++
	t.Response.Add(float64(response))
	t.Slowdown.Add(slowdown)
	s.JobsPerMachine[job.Machine]++
}

// MeanUtilization returns the time-weighted fraction of machines busy over
// [0, end of run].
func (s *Stats) MeanUtilization() float64 {
	if s.lastAt == 0 || s.machines == 0 {
		return 0
	}
	return s.busyInt / (float64(s.lastAt) * float64(s.machines))
}

// Fairness returns min/max of per-tenant mean slowdowns — 1.0 means every
// tenant experiences identical average service quality, values near 0 mean
// some tenant is starved relative to another. Tenants with no completed
// jobs are skipped; returns 1 when fewer than two tenants have jobs.
func (s *Stats) Fairness() float64 {
	min, max := 0.0, 0.0
	seen := 0
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Jobs == 0 {
			continue
		}
		m := t.Slowdown.Mean()
		if seen == 0 || m < min {
			min = m
		}
		if seen == 0 || m > max {
			max = m
		}
		seen++
	}
	if seen < 2 || max == 0 {
		return 1
	}
	return min / max
}

// SummaryTable renders the per-tenant tail-latency report: one row per
// tenant plus the cluster-wide "all" row, with job counts, mean and
// p50/p95/p99 slowdown versus IdealDC, and p99 response time in
// milliseconds.
func (s *Stats) SummaryTable() *metrics.Table {
	tb := metrics.NewTable("service-mode tail latency (slowdown vs IdealDC)",
		"jobs", "mean", "p50", "p95", "p99", "resp99_ms")
	row := func(t *TenantStats) {
		tb.Set(t.Name, "jobs", float64(t.Jobs))
		if t.Jobs == 0 {
			return
		}
		tb.Set(t.Name, "mean", t.Slowdown.Mean())
		tb.Set(t.Name, "p50", t.Slowdown.Quantile(0.50))
		tb.Set(t.Name, "p95", t.Slowdown.Quantile(0.95))
		tb.Set(t.Name, "p99", t.Slowdown.Quantile(0.99))
		tb.Set(t.Name, "resp99_ms", t.Response.Quantile(0.99)/float64(sim.Millisecond))
	}
	for i := range s.Tenants {
		row(&s.Tenants[i])
	}
	row(&s.All)
	return tb
}

// Summary renders a one-paragraph human-readable digest.
func (s *Stats) Summary() string {
	if s.All.Jobs == 0 {
		return "no jobs completed"
	}
	return fmt.Sprintf("%d jobs, slowdown p50 %.2f p95 %.2f p99 %.2f, util %.1f%%, fairness %.2f",
		s.All.Jobs,
		s.All.Slowdown.Quantile(0.50),
		s.All.Slowdown.Quantile(0.95),
		s.All.Slowdown.Quantile(0.99),
		100*s.MeanUtilization(),
		s.Fairness())
}
