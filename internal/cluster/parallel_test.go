package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestClusterParallelEquivalence is the service-mode half of the parallel
// flush determinism contract: the same cell run at engine parallelism 1, 2
// and 8 must produce not just equal summary triples but an identical full
// job stream — every job's machine, start, end, slowdown and per-run stats,
// compared field by field. Eight cells cover both dispatcher families, two
// seeds and two fleet sizes (a 16-machine fleet produces flush batches well
// past the parallel threshold).
func TestClusterParallelEquivalence(t *testing.T) {
	type cell struct {
		disp     string
		seed     uint64
		machines int
	}
	var cells []cell
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		for _, seed := range []uint64{1, 7} {
			for _, machines := range []int{4, 16} {
				cells = append(cells, cell{disp, seed, machines})
			}
		}
	}
	for _, c := range cells {
		mk := func(par int) Config {
			cfg := testConfig(60)
			cfg.Dispatcher = c.disp
			cfg.Seed = c.seed
			cfg.Machines = c.machines
			cfg.Parallelism = par
			return cfg
		}
		base, err := Run(mk(1))
		if err != nil {
			t.Fatalf("%s/seed%d/m%d: %v", c.disp, c.seed, c.machines, err)
		}
		for _, par := range []int{2, 8} {
			got, err := Run(mk(par))
			if err != nil {
				t.Fatalf("%s/seed%d/m%d par=%d: %v", c.disp, c.seed, c.machines, par, err)
			}
			if got.Steps != base.Steps || got.Makespan != base.Makespan || got.TotalBytes != base.TotalBytes {
				t.Errorf("%s/seed%d/m%d par=%d: aggregates differ: steps %d/%d makespan %v/%v bytes %v/%v",
					c.disp, c.seed, c.machines, par,
					got.Steps, base.Steps, got.Makespan, base.Makespan, got.TotalBytes, base.TotalBytes)
			}
			if got.CompletionHash() != base.CompletionHash() {
				t.Errorf("%s/seed%d/m%d par=%d: completion hash %x != sequential %x",
					c.disp, c.seed, c.machines, par, got.CompletionHash(), base.CompletionHash())
			}
			if !reflect.DeepEqual(got.Jobs, base.Jobs) {
				for i := range got.Jobs {
					if !reflect.DeepEqual(got.Jobs[i], base.Jobs[i]) {
						t.Errorf("%s/seed%d/m%d par=%d: job %d diverged:\n  par: %+v\n  seq: %+v",
							c.disp, c.seed, c.machines, par, i, got.Jobs[i], base.Jobs[i])
						break
					}
				}
			}
		}
	}
}

// TestFleet128Parallel runs a 128-machine fleet with the flush pool on —
// the scale the parallel engine exists for, and (under -race, where make ci
// runs it as its own step) the interleaving stress for the
// prepare/merge handoff: 128 independent components going dirty in
// overlapping instants, drained by 8 threads.
func TestFleet128Parallel(t *testing.T) {
	cfg := testConfig(200)
	cfg.Machines = 128
	cfg.Parallelism = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.All.Jobs != len(res.Jobs) {
		t.Fatalf("completed %d of %d jobs", res.Stats.All.Jobs, len(res.Jobs))
	}
	// Same fleet sequentially: bit-identical, even at this scale.
	cfg2 := testConfig(200)
	cfg2.Machines = 128
	seq, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionHash() != seq.CompletionHash() {
		t.Fatalf("128-machine parallel run hash %x != sequential %x",
			res.CompletionHash(), seq.CompletionHash())
	}
}

// submitProbe reads the monitor's snapshot from inside the observer chain.
// User observers run before the monitor for each event, so at our
// JobDispatch callback the monitor has processed this job's submit but NOT
// its dispatch — if the snapshot already counts the submission, it was
// published at submit time, which is exactly the regression this pins
// (Monitor.JobSubmit used to be a no-op, leaving /status blind to
// submitted-but-queued load until dispatch).
type submitProbe struct {
	mon        *Monitor
	submits    int
	atDispatch []int // snapshot's JobsSubmitted at each dispatch
}

func (p *submitProbe) JobSubmit(j *Job) { p.submits++ }
func (p *submitProbe) JobDispatch(j *Job, cands []int, queued int) {
	if s := p.mon.Snapshot(); s != nil {
		p.atDispatch = append(p.atDispatch, s.JobsSubmitted)
	}
}
func (p *submitProbe) JobStart(j *Job, queued int) {}
func (p *submitProbe) JobComplete(j *Job)          {}

// TestMonitorPublishesOnSubmit pins the JobSubmit bugfix from inside the
// run and over HTTP: the snapshot visible at a job's dispatch already
// counts that job's submission, and the final /status JSON reports the full
// submitted count.
func TestMonitorPublishesOnSubmit(t *testing.T) {
	cfg := testConfig(40)
	mon := NewMonitor(nil)
	cfg.Monitor = mon
	probe := &submitProbe{mon: mon}
	cfg.Observer = probe
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.atDispatch) == 0 {
		t.Fatal("probe saw no dispatches")
	}
	for i, got := range probe.atDispatch {
		// Dispatch i happens after submit i+1 was published (submits and
		// dispatches alternate within arrive), so the snapshot must already
		// count at least that many submissions — and at most the total seen.
		if got < i+1 || got > probe.submits {
			t.Fatalf("dispatch %d: snapshot counts %d submitted, want in [%d, %d] — submit not published before dispatch",
				i, got, i+1, probe.submits)
		}
	}
	snap := mon.Snapshot()
	if snap.JobsSubmitted != len(res.Jobs) {
		t.Errorf("final snapshot counts %d submitted, run had %d jobs", snap.JobsSubmitted, len(res.Jobs))
	}

	rec := httptest.NewRecorder()
	mon.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status returned %d", rec.Code)
	}
	var decoded MonitorSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if decoded.JobsSubmitted != len(res.Jobs) {
		t.Errorf("/status reports %d submitted, run had %d jobs", decoded.JobsSubmitted, len(res.Jobs))
	}
}
