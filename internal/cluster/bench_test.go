package cluster

import (
	"fmt"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
	"numadag/internal/xrand"
)

// benchConfig is a steady-pressure service scenario: four machines, three
// tenants, short DAG jobs arriving fast enough to keep queues non-trivial.
func benchConfig(jobs int) Config {
	return Config{
		Machines: 4,
		Machine:  machine.TwoSocketXeon(),
		Policy:   "LAS",
		Runtime:  rt.DefaultOptions(),
		Scale:    apps.Tiny,
		Tenants: []Tenant{
			{Name: "a", Specs: []string{"noop?tasks=4&flops=4096"}, Process: "poisson", Rate: 3000},
			{Name: "b", Specs: []string{"forkjoin?depth=2&fanout=2"}, Process: "poisson", Rate: 1500},
			{Name: "c", Specs: []string{"noop?tasks=1&flops=1024"}, Process: "diurnal",
				Rate: 2000, Amplitude: 0.5, Period: sim.Millisecond},
		},
		Jobs: jobs,
		Seed: 9,
	}
}

// BenchmarkClusterTick measures the full service loop — arrival, dispatch,
// runtime install/start, completion bookkeeping, streaming stats — as
// amortized cost per job. The sim-us/job metric tracks how much simulated
// service time each real microsecond buys.
func BenchmarkClusterTick(b *testing.B) {
	const jobs = 256
	cfg := benchConfig(jobs)
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var makespan sim.Time
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
	b.ReportMetric(float64(makespan)/1e6, "sim-ms/run")
}

// benchFleetConfig is the parallel-flush showcase scenario: `machines`
// machines and a trace tenant submitting machine-wide bursts at identical
// instants, spread one-per-machine by the idle dispatcher under the RNG-free
// DFIFO policy — so every burst puts every machine's Net in the same
// end-of-instant flush batch, the load shape the engine's worker pool
// (Config.Parallelism) exists for.
func benchFleetConfig(machines, rounds int) Config {
	burst := make([]sim.Time, 0, machines*rounds)
	for r := 0; r < rounds; r++ {
		at := sim.Time(r) * 200 * sim.Microsecond
		for i := 0; i < machines; i++ {
			burst = append(burst, at)
		}
	}
	return Config{
		Machines: machines,
		Machine:  machine.TwoSocketXeon(),
		Policy:   "DFIFO",
		Runtime:  rt.DefaultOptions(),
		Scale:    apps.Tiny,
		Tenants: []Tenant{
			{Name: "burst", Specs: []string{"forkjoin?depth=2&fanout=2"}, Process: "trace", Trace: burst},
		},
		Jobs:       machines * rounds,
		Seed:       9,
		Dispatcher: "idle",
	}
}

// BenchmarkClusterTickFleet is BenchmarkClusterTick at fleet scale (64
// machines, lockstep bursts), with a sequential row and a parallel-flush
// row. The par=8 / par=1 ns/op ratio in BENCH_sim.json is the parallel
// engine's headline number; on a single-core host the rows coincide (the
// pool can only overlap prepares when the OS has cores to run them on) —
// the determinism goldens, not this ratio, are what every host must
// reproduce.
func BenchmarkClusterTickFleet(b *testing.B) {
	const machines, rounds = 64, 6
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			jobs := machines * rounds
			cfg := benchFleetConfig(machines, rounds)
			cfg.Parallelism = par
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var makespan sim.Time
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
			b.ReportMetric(float64(makespan)/1e6, "sim-ms/run")
		})
	}
}

// BenchmarkDispatch isolates the placement decision: Pick + the paired
// load updates, on a 1024-machine fleet with a churning load vector.
func BenchmarkDispatch(b *testing.B) {
	const fleet = 1024
	for _, spec := range []string{"kchoices?d=2", "idle"} {
		b.Run(spec, func(b *testing.B) {
			d, err := NewDispatcher(spec)
			if err != nil {
				b.Fatal(err)
			}
			d.Init(fleet, xrand.New(1))
			// Ring of in-flight placements: place one job per iteration and
			// complete the oldest once 4k are in flight, so loads churn
			// without underflowing any machine.
			ring := make([]int, 4096)
			head, count := 0, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := d.Pick()
				d.Update(m, +1)
				if count == len(ring) {
					d.Update(ring[head], -1)
				} else {
					count++
				}
				ring[head] = m
				head = (head + 1) % len(ring)
			}
		})
	}
}
