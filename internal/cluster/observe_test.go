package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"numadag/internal/rt"
	"numadag/internal/trace"
)

// recObserver records the job-event stream: per-job event order and the
// dispatch candidates (copied — the sampler's slice is reused scratch).
type recObserver struct {
	submits, dispatches, starts, completes int
	order                                  map[int][]string
	candidates                             [][]int
}

func newRecObserver() *recObserver { return &recObserver{order: map[int][]string{}} }

func (o *recObserver) JobSubmit(j *Job) {
	o.submits++
	o.order[j.ID] = append(o.order[j.ID], "submit")
}
func (o *recObserver) JobDispatch(j *Job, candidates []int, queued int) {
	o.dispatches++
	o.order[j.ID] = append(o.order[j.ID], "dispatch")
	o.candidates = append(o.candidates, append([]int(nil), candidates...))
}
func (o *recObserver) JobStart(j *Job, queued int) {
	o.starts++
	o.order[j.ID] = append(o.order[j.ID], "start")
}
func (o *recObserver) JobComplete(j *Job) {
	o.completes++
	o.order[j.ID] = append(o.order[j.ID], "complete")
}

// TestObserverEventStream pins the cluster Observer contract: every job is
// seen submit -> dispatch -> start -> complete in order (zero-task jobs
// complete in the same instant they start, but never out of order), and the
// k-choices dispatcher reports its sampled candidates including the chosen
// machine.
func TestObserverEventStream(t *testing.T) {
	cfg := testConfig(80)
	obs := newRecObserver()
	cfg.Observer = obs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Stats.All.Jobs
	if obs.submits != n || obs.dispatches != n || obs.starts != n || obs.completes != n {
		t.Fatalf("event counts diverge from %d jobs: submit %d dispatch %d start %d complete %d",
			n, obs.submits, obs.dispatches, obs.starts, obs.completes)
	}
	want := []string{"submit", "dispatch", "start", "complete"}
	for id, seq := range obs.order {
		if len(seq) != len(want) {
			t.Fatalf("job %d: event sequence %v", id, seq)
		}
		for i := range want {
			if seq[i] != want[i] {
				t.Fatalf("job %d: event sequence %v, want %v", id, seq, want)
			}
		}
	}
	for _, cand := range obs.candidates {
		if len(cand) == 0 {
			t.Fatal("k-choices dispatch reported no candidates")
		}
		for _, m := range cand {
			if m < 0 || m >= cfg.Machines {
				t.Fatalf("candidate machine %d out of range", m)
			}
		}
	}
}

// TestIdleDispatcherReportsNoCandidates: IdleHeap does not sample, so the
// candidates slice is nil — observers must treat it as optional.
func TestIdleDispatcherReportsNoCandidates(t *testing.T) {
	cfg := testConfig(20)
	cfg.Dispatcher = "idle"
	obs := newRecObserver()
	cfg.Observer = obs
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, cand := range obs.candidates {
		if cand != nil {
			t.Fatalf("idle dispatcher reported candidates %v", cand)
		}
	}
}

// TestClusterReleaseVsTraceContract is the fleet-side pooling rule: an
// untraced run recycles one pooled runtime per job, a traced run (machine
// observers attached) must recycle none of them. Both runs still release
// their snapshot-prebuild proto runtimes — untraced scratch never bound to
// a traced machine — so the contract is the per-job difference, not an
// absolute zero.
func TestClusterReleaseVsTraceContract(t *testing.T) {
	before := rt.Releases()
	res, err := Run(testConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	untraced := rt.Releases() - before
	if untraced == 0 {
		t.Error("untraced cluster run did not recycle any pooled runtime")
	}

	cfg := testConfig(20)
	cfg.Trace = trace.NewTracer()
	before = rt.Releases()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	traced := rt.Releases() - before
	if want := uint64(res.Stats.All.Jobs); untraced-traced != want {
		t.Errorf("traced run released %d fewer runtimes than untraced, want exactly %d (one per job)",
			untraced-traced, want)
	}
	if cfg.Trace.Spans() == 0 {
		t.Error("cluster tracer recorded no spans")
	}
}

// TestMonitorSnapshotAndEndpoints drives a full run with a Monitor attached
// and checks the final published snapshot and both HTTP endpoints (the
// in-process equivalent of dcsim -http).
func TestMonitorSnapshotAndEndpoints(t *testing.T) {
	cfg := testConfig(40)
	cfg.Trace = trace.NewTracer()
	mon := NewMonitor(cfg.Trace)
	cfg.Monitor = mon
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := mon.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	if snap.JobsDone != res.Stats.All.Jobs {
		t.Errorf("snapshot has %d jobs done, run completed %d", snap.JobsDone, res.Stats.All.Jobs)
	}
	if snap.JobsRunning != 0 || snap.JobsQueued != 0 {
		t.Errorf("final snapshot still shows %d running, %d queued", snap.JobsRunning, snap.JobsQueued)
	}
	if len(snap.Tenants) != len(cfg.Tenants)+1 { // per-tenant digests + "all"
		t.Errorf("snapshot has %d tenant digests, want %d", len(snap.Tenants), len(cfg.Tenants)+1)
	}
	for _, ts := range snap.Tenants {
		if ts.Jobs > 0 && (ts.P50 <= 0 || ts.P99 < ts.P50) {
			t.Errorf("tenant %s: degenerate quantiles %+v", ts.Name, ts)
		}
	}

	h := mon.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status returned %d", rec.Code)
	}
	var decoded MonitorSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if decoded.JobsDone != snap.JobsDone {
		t.Errorf("/status reports %d jobs done, snapshot has %d", decoded.JobsDone, snap.JobsDone)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace returned %d", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Error("/trace is not valid JSON")
	}

	// Without a tracer, /trace 404s but /status still works.
	bare := NewMonitor(nil)
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 404 {
		t.Errorf("/trace without tracer returned %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 503 { // no run bound yet
		t.Errorf("/status before a run returned %d, want 503", rec.Code)
	}
}
