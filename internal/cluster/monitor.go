package cluster

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"numadag/internal/sim"
	"numadag/internal/trace"
)

// timelineTail bounds the utilization timeline slice a snapshot carries —
// enough to plot recent occupancy without shipping the whole run history on
// every /status poll.
const timelineTail = 64

// TenantSnapshot is one tenant's live tail-latency digest. Quantiles are
// slowdown versus the IdealDC fluid model and are zero until the tenant has
// completed at least one job.
type TenantSnapshot struct {
	Name string  `json:"name"`
	Jobs int     `json:"jobs"`
	Mean float64 `json:"mean,omitempty"`
	P50  float64 `json:"p50,omitempty"`
	P95  float64 `json:"p95,omitempty"`
	P99  float64 `json:"p99,omitempty"`
}

// MonitorSnapshot is the immutable state a Monitor publishes after every
// job event: in-flight and completed job counts, per-tenant streaming
// slowdown quantiles, and the tail of the cluster occupancy timeline.
type MonitorSnapshot struct {
	Now           sim.Time         `json:"now_ns"`
	JobsSubmitted int              `json:"jobs_submitted"`
	JobsDone      int              `json:"jobs_done"`
	JobsRunning   int              `json:"jobs_running"`
	JobsQueued    int              `json:"jobs_queued"`
	Utilization   float64          `json:"utilization"`
	Fairness      float64          `json:"fairness"`
	Tenants       []TenantSnapshot `json:"tenants"`
	Timeline      []UtilPoint      `json:"timeline_tail"`
}

// Monitor publishes live service-mode state over HTTP while a cluster run
// is in progress. The simulation goroutine rebuilds an immutable snapshot
// after every job event and stores it through an atomic pointer, so HTTP
// handlers read without locks and never block (or perturb) the simulation.
// Configure it via Config.Monitor and serve Handler() on a listener of
// your choice; /status returns the snapshot as JSON, /trace streams the
// attached tracer's Chrome trace JSON so far.
//
// A Monitor observes one Run at a time.
type Monitor struct {
	tr   *trace.Tracer
	snap atomic.Pointer[MonitorSnapshot]
	f    *fleetRun // bound at Run start; touched only on the sim goroutine
}

var _ Observer = (*Monitor)(nil)

// NewMonitor returns a monitor; tr may be nil, in which case /trace
// reports 404 and only /status is live.
func NewMonitor(tr *trace.Tracer) *Monitor { return &Monitor{tr: tr} }

// bind attaches the monitor to a starting run and publishes the initial
// (empty) snapshot.
func (mo *Monitor) bind(f *fleetRun) {
	mo.f = f
	mo.publish()
}

// Snapshot returns the most recently published snapshot, or nil before the
// run starts.
func (mo *Monitor) Snapshot() *MonitorSnapshot { return mo.snap.Load() }

// JobSubmit implements Observer. Publishing here (not first at dispatch)
// keeps /status honest about offered load: a scraper sees jobs_submitted
// rise the instant a job enters the system, even while it is still queued
// behind the dispatcher.
func (mo *Monitor) JobSubmit(j *Job) { mo.publish() }

// JobDispatch implements Observer.
func (mo *Monitor) JobDispatch(j *Job, candidates []int, queued int) { mo.publish() }

// JobStart implements Observer.
func (mo *Monitor) JobStart(j *Job, queued int) { mo.publish() }

// JobComplete implements Observer.
func (mo *Monitor) JobComplete(j *Job) { mo.publish() }

// publish rebuilds the snapshot from the run's streaming statistics. It
// runs on the simulation goroutine; everything stored is freshly built or
// plain values, so readers need no synchronization beyond the pointer load.
func (mo *Monitor) publish() {
	f := mo.f
	s := f.stats
	snap := &MonitorSnapshot{
		Now:           f.eng.Now(),
		JobsSubmitted: s.Submitted,
		JobsDone:      s.All.Jobs,
		JobsRunning:   s.busyNow,
		JobsQueued:    s.queueNow,
		Utilization:   s.MeanUtilization(),
		Fairness:      s.Fairness(),
		Tenants:       make([]TenantSnapshot, 0, len(s.Tenants)+1),
	}
	digest := func(t *TenantStats) {
		ts := TenantSnapshot{Name: t.Name, Jobs: t.Jobs}
		if t.Jobs > 0 { // quantiles of an empty histogram are NaN — not JSON
			ts.Mean = t.Slowdown.Mean()
			ts.P50 = t.Slowdown.Quantile(0.50)
			ts.P95 = t.Slowdown.Quantile(0.95)
			ts.P99 = t.Slowdown.Quantile(0.99)
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	for i := range s.Tenants {
		digest(&s.Tenants[i])
	}
	digest(&s.All)
	tail := s.Timeline
	if len(tail) > timelineTail {
		tail = tail[len(tail)-timelineTail:]
	}
	snap.Timeline = append([]UtilPoint(nil), tail...)
	mo.snap.Store(snap)
}

// Handler returns the monitor's HTTP mux: "/status" (snapshot JSON),
// "/trace" (Chrome trace JSON so far), "/" (a plain-text index).
func (mo *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", mo.handleStatus)
	mux.HandleFunc("/trace", mo.handleTrace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("numadag service-mode monitor\n  /status  live cluster state (JSON)\n  /trace   Chrome trace snapshot (load in Perfetto)\n"))
	})
	return mux
}

func (mo *Monitor) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := mo.snap.Load()
	if snap == nil {
		http.Error(w, "run not started", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

func (mo *Monitor) handleTrace(w http.ResponseWriter, r *http.Request) {
	if mo.tr == nil {
		http.Error(w, "no tracer attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	mo.tr.WriteChromeTrace(w)
}
