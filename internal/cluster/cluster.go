// Package cluster runs the simulator in online multi-tenant service mode:
// instead of one job on one machine, an open-loop arrival process submits a
// stream of DAG jobs from many tenants to a fleet of NUMA machines sharing
// one simulated clock. A dispatcher places each arriving job, every machine
// runs its queue through an unmodified scheduling policy, and streaming
// histograms report the tail-latency and fairness metrics datacenter papers
// care about — per-job slowdown against an aggregate-capacity fluid model
// (IdealDC), p50/p95/p99 response, per-tenant fairness, and a cluster
// utilization timeline.
//
// Determinism carries over from batch mode: arrivals are a pure function of
// (tenants, seed), dispatch randomness comes from a dedicated seeded
// stream, and the fleet shares ONE sim.Engine, so a fixed-seed cluster run
// is bit-identical across repeats and across snapshot-prebuild worker
// counts.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/sim"
	"numadag/internal/trace"
	"numadag/internal/workload"
	"numadag/internal/xrand"
)

// Job is one unit of the arrival stream: a tenant's workload instance with
// its service-mode timeline. Arrivals fills the identity fields; Run fills
// the rest.
type Job struct {
	ID       int
	Tenant   int
	Spec     string
	SubmitAt sim.Time
	// Machine is the fleet index the dispatcher placed the job on (-1
	// before placement).
	Machine int
	// StartAt/EndAt bracket execution; EndAt - SubmitAt is the response
	// time (queueing included).
	StartAt sim.Time
	EndAt   sim.Time
	// Seed is the per-job runtime seed, core.DeriveSeed(cfg.Seed, ID).
	Seed uint64
	// Ideal is the job's IdealDC fluid response time; Slowdown is
	// (EndAt-SubmitAt)/Ideal.
	Ideal    sim.Time
	Slowdown float64
	// Stats is the job's full single-run result from the runtime.
	Stats rt.Result
}

// Config describes one service-mode run.
type Config struct {
	// Machines is the fleet size; every machine uses the same Machine
	// config. Must be >= 1.
	Machines int
	Machine  machine.Config
	// Policy is the per-job scheduling policy registry spec; every job on
	// every machine runs it unchanged.
	Policy  string
	Runtime rt.Options
	// Scale resolves workload specs without an explicit scale parameter.
	Scale apps.Scale
	// Tenants drive the arrival processes; Jobs caps the stream length.
	Tenants []Tenant
	Jobs    int
	// Seed is the base seed: tenant streams, dispatch sampling and per-job
	// runtime seeds all derive from it.
	Seed uint64
	// Dispatcher is the placement spec ("kchoices?d=2", "idle"); empty
	// means kchoices with d=2.
	Dispatcher string
	// Procs bounds the snapshot-prebuild worker pool (<= 0 means 1). The
	// simulation proper runs on one engine goroutine (plus the flush pool
	// below), so results are bit-identical across Procs values — a property
	// the determinism test pins.
	Procs int
	// Parallelism is the engine's end-of-instant flush parallelism
	// (sim.Engine.SetParallelism): how many OS threads may run independent
	// machines' reallocation passes concurrently within one simulated
	// instant. <= 1 means sequential. Results are bit-identical at every
	// value — the parallel flush determinism contract — so this is purely a
	// wall-clock knob, and the determinism test pins it by sweeping
	// NUMADAG_PAR.
	Parallelism int
	// Audit verifies every job's schedule against the TDG semantics after
	// it completes (slower; on by default in tests).
	Audit bool
	// Observer optionally receives job lifecycle callbacks (submit,
	// dispatch, start, complete) on the simulation goroutine. Observing
	// never perturbs the run.
	Observer Observer
	// Trace optionally records the whole run — task/transfer/flow spans and
	// link counters per machine (pids are fleet indices), job spans,
	// dispatch instants and queue-depth counters — into a Chrome-trace
	// sink. Traced runs skip the runtime pool (tracer observers hold *Task
	// beyond each job).
	Trace *trace.Tracer
	// Monitor optionally publishes live snapshots of the run for the HTTP
	// monitor (see Monitor).
	Monitor *Monitor
}

// Result is a completed service-mode run.
type Result struct {
	// Jobs is the arrival stream in job-ID order with all timeline fields
	// filled.
	Jobs []Job
	// Stats holds the streaming distributions, fairness and the
	// utilization timeline.
	Stats *Stats
	// Makespan is the completion time of the last job; Steps the shared
	// engine's event count; TotalBytes the fleet-wide transferred volume.
	Makespan   sim.Time
	Steps      uint64
	TotalBytes float64
}

// CompletionHash digests the completion stream — (ID, machine, start, end)
// in the order jobs finished — into one uint64. Two runs are behaviorally
// identical iff their hashes match; the cluster determinism goldens pin it.
func (r *Result) CompletionHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	order := make([]int, 0, len(r.Jobs))
	for i := range r.Jobs {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := &r.Jobs[order[a]], &r.Jobs[order[b]]
		if ja.EndAt != jb.EndAt {
			return ja.EndAt < jb.EndAt
		}
		return ja.ID < jb.ID
	})
	for _, i := range order {
		j := &r.Jobs[i]
		put(uint64(j.ID))
		put(uint64(j.Machine))
		put(uint64(j.StartAt))
		put(uint64(j.EndAt))
	}
	return h.Sum64()
}

func (c *Config) validate() error {
	if c.Machines < 1 {
		return fmt.Errorf("cluster: need at least one machine, got %d", c.Machines)
	}
	if c.Policy == "" {
		return fmt.Errorf("cluster: no policy")
	}
	if c.Jobs < 1 {
		return fmt.Errorf("cluster: need at least one job, got %d", c.Jobs)
	}
	return nil
}

// fleetRun is the in-flight state of one Run call.
type fleetRun struct {
	cfg      *Config
	eng      *sim.Engine
	machines []*machine.Machine
	disp     Dispatcher
	sampler  CandidateSampler // disp's sampling view, nil if not implemented
	snaps    map[string]*rt.Snapshot
	jobs     []Job
	queues   [][]int // job IDs waiting per machine
	busy     []bool
	pumping  []bool
	stats    *Stats
	obs      []Observer    // trace adapter, user observer, monitor — in order
	machObs  []rt.Observer // per-machine tracer observers (nil when untraced)
	done     int
	err      error
}

// notifyDispatch/notifyStart/notifyComplete fan one job event out to the
// configured observers.
func (f *fleetRun) notifySubmit(j *Job) {
	for _, o := range f.obs {
		o.JobSubmit(j)
	}
}

func (f *fleetRun) notifyDispatch(j *Job, queued int) {
	var cands []int
	if f.sampler != nil {
		cands = f.sampler.LastCandidates()
	}
	for _, o := range f.obs {
		o.JobDispatch(j, cands, queued)
	}
}

func (f *fleetRun) notifyStart(j *Job, queued int) {
	for _, o := range f.obs {
		o.JobStart(j, queued)
	}
}

func (f *fleetRun) notifyComplete(j *Job) {
	for _, o := range f.obs {
		o.JobComplete(j)
	}
}

// prebuildSnapshots resolves every distinct workload spec in the stream and
// captures its task graph once, fanning the builds across procs workers.
// Each spec's snapshot is a pure function of (spec, scale), so the worker
// count cannot affect the simulation — only wall-clock time.
func prebuildSnapshots(jobs []Job, mc machine.Config, scale apps.Scale, procs int) (map[string]*rt.Snapshot, error) {
	specs := make([]string, 0, 8)
	seen := make(map[string]bool)
	for i := range jobs {
		if !seen[jobs[i].Spec] {
			seen[jobs[i].Spec] = true
			specs = append(specs, jobs[i].Spec)
		}
	}
	if procs < 1 {
		procs = 1
	}
	if procs > len(specs) {
		procs = len(specs)
	}
	snaps := make(map[string]*rt.Snapshot, len(specs))
	errs := make([]error, len(specs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := 0
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(specs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				snap, err := snapshotFor(specs[i], mc, scale)
				mu.Lock()
				snaps[specs[i]], errs[i] = snap, err
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return snaps, nil
}

func snapshotFor(spec string, mc machine.Config, scale apps.Scale) (*rt.Snapshot, error) {
	w, err := workload.New(spec, scale)
	if err != nil {
		return nil, err
	}
	proto, err := w.Instantiate(mc)
	if err != nil {
		return nil, fmt.Errorf("cluster: build %s: %w", spec, err)
	}
	snap, err := rt.Snap(proto)
	if err != nil {
		return nil, err
	}
	proto.Release()
	return snap, nil
}

// arrive handles one job's submission: dispatch, enqueue, and kick the
// target machine's queue.
func (f *fleetRun) arrive(id int) {
	if f.err != nil {
		return
	}
	job := &f.jobs[id]
	f.stats.Submitted++
	f.notifySubmit(job)
	m := f.disp.Pick()
	f.disp.Update(m, +1)
	job.Machine = m
	f.queues[m] = append(f.queues[m], id)
	f.stats.sample(f.eng.Now(), 0, +1)
	f.notifyDispatch(job, len(f.queues[m]))
	f.pump(m)
}

// pump starts queued jobs on machine m until it is busy or drained. The
// pumping guard flattens the recursion a synchronously-completing job (zero
// tasks) would otherwise cause: its completion callback runs inside Start,
// marks the machine free and calls pump again, which must become a no-op so
// the outer loop picks up the next job.
func (f *fleetRun) pump(m int) {
	if f.pumping[m] {
		return
	}
	f.pumping[m] = true
	for f.err == nil && !f.busy[m] && len(f.queues[m]) > 0 {
		id := f.queues[m][0]
		f.queues[m] = f.queues[m][1:]
		f.busy[m] = true
		f.stats.sample(f.eng.Now(), +1, -1)
		f.start(id, m)
	}
	f.pumping[m] = false
}

// start launches job id on machine m: fresh pooled runtime, installed
// snapshot, per-job derived seed, async Start with the completion callback
// closing the service loop.
func (f *fleetRun) start(id, m int) {
	job := &f.jobs[id]
	pol, err := policy.New(f.cfg.Policy)
	if err != nil {
		f.err = err
		return
	}
	opts := f.cfg.Runtime
	opts.Seed = job.Seed
	if opts.Observer == nil && f.machObs != nil {
		opts.Observer = f.machObs[m]
	}
	r := rt.NewRuntime(f.machines[m], pol, opts)
	f.snaps[job.Spec].Install(r)
	job.StartAt = f.eng.Now()
	// Notify before Start: a zero-task job completes synchronously inside
	// Start, and JobStart must precede its JobComplete.
	f.notifyStart(job, len(f.queues[m]))
	r.Start(func(res rt.Result) { f.finish(r, id, m, res) })
}

func (f *fleetRun) finish(r *rt.Runtime, id, m int, res rt.Result) {
	job := &f.jobs[id]
	job.EndAt = f.eng.Now()
	job.Stats = res
	if f.cfg.Audit && f.err == nil {
		if err := f.auditJob(r, job); err != nil {
			f.err = err
		}
	}
	if f.cfg.Runtime.Observer == nil && f.machObs == nil {
		// The Release-vs-Observer contract: with any observer configured —
		// the user's or the tracer's — *Task pointers outlive the job, so
		// the runtime must not be recycled into the pool.
		r.Release()
	}
	f.disp.Update(m, -1)
	f.busy[m] = false
	f.done++
	response := job.EndAt - job.SubmitAt
	if response < 1 {
		response = 1
	}
	job.Slowdown = float64(response) / float64(job.Ideal)
	f.stats.observe(job, response, job.Slowdown)
	f.stats.sample(job.EndAt, -1, 0)
	f.notifyComplete(job)
	f.pump(m)
}

func (f *fleetRun) auditJob(r *rt.Runtime, job *Job) error {
	if err := r.AuditSchedule(); err != nil {
		return fmt.Errorf("cluster: job %d (%s): %w", job.ID, job.Spec, err)
	}
	return nil
}

// Run executes one service-mode simulation and streams every job's result,
// in job-ID order, through the given sinks (the same core.Sink machinery
// batch experiments use; a job's Cell carries its tenant name as the
// Variant and its arrival index as the Index).
func Run(cfg Config, sinks ...core.Sink) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	jobs, err := Arrivals(cfg.Tenants, cfg.Seed, cfg.Jobs)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: arrival stream is empty (trace tenants exhausted)")
	}
	snaps, err := prebuildSnapshots(jobs, cfg.Machine, cfg.Scale, cfg.Procs)
	if err != nil {
		return nil, err
	}
	// Fluid-model ideal response per job, for slowdown normalization.
	work := make([]float64, len(jobs))
	for i := range jobs {
		jobs[i].Seed = core.DeriveSeed(cfg.Seed, jobs[i].ID)
		work[i] = snaps[jobs[i].Spec].TotalFlops()
	}
	ideal := NewIdealDC(&cfg.Machine, cfg.Machines).Respond(jobs, work)
	for i := range jobs {
		jobs[i].Ideal = ideal[i]
	}

	dispSpec := cfg.Dispatcher
	if dispSpec == "" {
		dispSpec = "kchoices?d=2"
	}
	disp, err := NewDispatcher(dispSpec)
	if err != nil {
		return nil, err
	}
	// The dispatcher's stream must not collide with tenant streams
	// (replicates 0..len(Tenants)-1) or job streams (0..Jobs-1), so it
	// derives from replicate -1.
	disp.Init(cfg.Machines, xrand.New(core.DeriveSeed(cfg.Seed, -1)))

	eng := sim.NewEngine()
	if cfg.Parallelism > 1 {
		eng.SetParallelism(cfg.Parallelism)
		// The engine is run-local: retire its flush workers before it is
		// abandoned, on every exit path.
		defer eng.SetParallelism(1)
	}
	f := &fleetRun{
		cfg:      &cfg,
		eng:      eng,
		machines: make([]*machine.Machine, cfg.Machines),
		disp:     disp,
		snaps:    snaps,
		jobs:     jobs,
		queues:   make([][]int, cfg.Machines),
		busy:     make([]bool, cfg.Machines),
		pumping:  make([]bool, cfg.Machines),
		stats:    newStats(cfg.Tenants, cfg.Machines),
	}
	if s, ok := disp.(CandidateSampler); ok {
		f.sampler = s
	}
	for i := range f.machines {
		f.machines[i] = machine.New(cfg.Machine, eng)
	}
	// Attach tracing after every machine exists: on the shared engine the
	// tracer's sampling flushers must run after all network flushes.
	if cfg.Trace != nil {
		f.machObs = make([]rt.Observer, cfg.Machines)
		for i, m := range f.machines {
			f.machObs[i] = cfg.Trace.AttachMachine(m, i, fmt.Sprintf("machine %d", i))
		}
		f.obs = append(f.obs, &traceObserver{tr: cfg.Trace, cfg: &cfg})
	}
	if cfg.Observer != nil {
		f.obs = append(f.obs, cfg.Observer)
	}
	if cfg.Monitor != nil {
		cfg.Monitor.bind(f)
		f.obs = append(f.obs, cfg.Monitor)
	}
	for i := range jobs {
		id := jobs[i].ID
		eng.At(jobs[i].SubmitAt, func() { f.arrive(id) })
	}
	eng.Run()
	if f.err != nil {
		return nil, f.err
	}
	if f.done != len(jobs) {
		return nil, fmt.Errorf("cluster: stalled — %d of %d jobs completed", f.done, len(jobs))
	}

	res := &Result{Jobs: jobs, Stats: f.stats, Steps: eng.Steps()}
	for i := range jobs {
		if jobs[i].EndAt > res.Makespan {
			res.Makespan = jobs[i].EndAt
		}
	}
	for _, m := range f.machines {
		res.TotalBytes += m.Net().TotalBytes
	}
	if err := emit(&cfg, res, sinks); err != nil {
		return nil, err
	}
	return res, nil
}

// emit streams every job through the sinks in job-ID order and closes them,
// mirroring the Experiment sink contract.
func emit(cfg *Config, res *Result, sinks []core.Sink) error {
	var firstErr error
	for i := range res.Jobs {
		j := &res.Jobs[i]
		cr := core.CellResult{
			Cell: core.Cell{
				Index:   j.ID,
				App:     j.Spec,
				Policy:  cfg.Policy,
				Machine: cfg.Machine.Name,
				Variant: cfg.Tenants[j.Tenant].Name,
				Seed:    j.Seed,
			},
			Config: core.Config{
				App:     j.Spec,
				Scale:   cfg.Scale,
				Policy:  cfg.Policy,
				Machine: cfg.Machine,
				Runtime: cfg.Runtime,
			},
			Stats: j.Stats,
		}
		for _, s := range sinks {
			if err := s.Emit(cr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			break
		}
	}
	for _, s := range sinks {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
