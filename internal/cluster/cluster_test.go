package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
	"numadag/internal/xrand"
)

// testTenants is a four-tenant mix covering all three arrival processes and
// heterogeneous job shapes, including zero-task jobs.
func testTenants() []Tenant {
	return []Tenant{
		{Name: "batch", Specs: []string{"forkjoin?depth=2&fanout=2", "random-layered?layers=3&width=4"},
			Process: "poisson", Rate: 2000},
		{Name: "interactive", Specs: []string{"noop?tasks=4&flops=4096", "noop?tasks=1&flops=1024"},
			Process: "diurnal", Rate: 4000, Amplitude: 0.6, Period: 200 * sim.Millisecond},
		{Name: "cron", Specs: []string{"noop?tasks=0"},
			Process: "trace", Trace: []sim.Time{0, 0, sim.Millisecond, sim.Millisecond, 50 * sim.Millisecond}},
		{Name: "science", Specs: []string{"random-layered?layers=4&width=3&fan=2"},
			Process: "poisson", Rate: 1000},
	}
}

func testConfig(jobs int) Config {
	return Config{
		Machines:   4,
		Machine:    machine.TwoSocketXeon(),
		Policy:     "LAS",
		Runtime:    rt.DefaultOptions(),
		Scale:      apps.Tiny,
		Tenants:    testTenants(),
		Jobs:       jobs,
		Seed:       42,
		Dispatcher: "kchoices?d=2",
		Audit:      true,
	}
}

// TestClusterDeterminism pins the service-mode determinism contract: a
// fixed-seed run is bit-identical across repeats and across snapshot
// prebuild worker counts, for both dispatchers.
func TestClusterDeterminism(t *testing.T) {
	for _, disp := range []string{"kchoices?d=2", "idle"} {
		cfg := testConfig(60)
		cfg.Dispatcher = disp
		cfg.Procs = 1
		base, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		for _, procs := range []int{1, 4} {
			cfg2 := testConfig(60)
			cfg2.Dispatcher = disp
			cfg2.Procs = procs
			got, err := Run(cfg2)
			if err != nil {
				t.Fatalf("%s procs=%d: %v", disp, procs, err)
			}
			if got.CompletionHash() != base.CompletionHash() {
				t.Fatalf("%s procs=%d: completion hash %x != base %x",
					disp, procs, got.CompletionHash(), base.CompletionHash())
			}
			if !reflect.DeepEqual(got.Jobs, base.Jobs) {
				t.Fatalf("%s procs=%d: job stream differs from base run", disp, procs)
			}
			if got.Steps != base.Steps || got.Makespan != base.Makespan || got.TotalBytes != base.TotalBytes {
				t.Fatalf("%s procs=%d: aggregates differ: steps %d/%d makespan %v/%v bytes %v/%v",
					disp, procs, got.Steps, base.Steps, got.Makespan, base.Makespan,
					got.TotalBytes, base.TotalBytes)
			}
		}
	}
}

// TestClusterSeedSensitivity guards against a degenerate hash: different
// seeds must produce different completion streams.
func TestClusterSeedSensitivity(t *testing.T) {
	a, err := Run(testConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(40)
	cfg.Seed = 43
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompletionHash() == b.CompletionHash() {
		t.Fatal("different seeds produced identical completion hashes")
	}
}

// TestClusterDemo is the acceptance scenario: >= 8 machines, >= 4 tenants,
// >= 500 jobs, with tail-latency slowdowns reported against IdealDC through
// the table sink and per-job results streamed through the core sink
// machinery.
func TestClusterDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("demo scenario is not short")
	}
	cfg := testConfig(500)
	cfg.Machines = 8
	cfg.Audit = false // 500 audits are slow; determinism test audits every job

	var jsonl bytes.Buffer
	res, err := Run(cfg, core.NewJSONLSink(&jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 500 {
		t.Fatalf("completed %d jobs, want 500", len(res.Jobs))
	}
	if got := strings.Count(jsonl.String(), "\n"); got != 500 {
		t.Fatalf("JSONL sink received %d records, want 500", got)
	}
	st := res.Stats
	p50, p95, p99 := st.All.Slowdown.Quantile(0.50), st.All.Slowdown.Quantile(0.95), st.All.Slowdown.Quantile(0.99)
	if p50 < 1-statsEps || p50 > p95 || p95 > p99 {
		t.Fatalf("slowdown quantiles inconsistent: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if f := st.Fairness(); f <= 0 || f > 1 {
		t.Fatalf("fairness %v out of (0, 1]", f)
	}
	if u := st.MeanUtilization(); u <= 0 || u > 1 {
		t.Fatalf("mean utilization %v out of (0, 1]", u)
	}
	total := 0
	for _, n := range st.JobsPerMachine {
		total += n
	}
	if total != 500 {
		t.Fatalf("jobs-per-machine sums to %d, want 500", total)
	}

	tb := st.SummaryTable()
	rows := tb.Rows()
	wantRows := []string{"batch", "interactive", "cron", "science", "all"}
	for _, w := range wantRows {
		found := false
		for _, r := range rows {
			if r == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("summary table missing row %q (rows: %v)", w, rows)
		}
	}
	var rendered bytes.Buffer
	tb.Write(&rendered)
	if !strings.Contains(rendered.String(), "p99") {
		t.Fatalf("rendered table missing p99 column:\n%s", rendered.String())
	}
	t.Logf("\n%s\n%s", rendered.String(), st.Summary())
}

// TestClusterResponseAccounting cross-checks the plumbing on a fully
// controlled single-machine trace: two sequential jobs must queue FIFO and
// the response times must decompose into wait + service exactly.
func TestClusterResponseAccounting(t *testing.T) {
	cfg := Config{
		Machines: 1,
		Machine:  machine.TwoSocketXeon(),
		Policy:   "LAS",
		Runtime:  rt.DefaultOptions(),
		Scale:    apps.Tiny,
		Tenants: []Tenant{{
			Name: "t", Specs: []string{"forkjoin?depth=2&fanout=2"},
			Process: "trace", Trace: []sim.Time{0, 0},
		}},
		Jobs:       2,
		Seed:       7,
		Dispatcher: "idle",
		Audit:      true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j0, j1 := &res.Jobs[0], &res.Jobs[1]
	if j0.StartAt != 0 {
		t.Fatalf("job 0 started at %v, want 0", j0.StartAt)
	}
	if j1.StartAt != j0.EndAt {
		t.Fatalf("job 1 started at %v, want job 0's end %v (FIFO on one machine)", j1.StartAt, j0.EndAt)
	}
	for _, j := range res.Jobs {
		if j.EndAt-j.StartAt != j.Stats.Makespan {
			t.Fatalf("job %d service time %v != runtime makespan %v", j.ID, j.EndAt-j.StartAt, j.Stats.Makespan)
		}
		if j.Slowdown < 1-statsEps {
			t.Fatalf("job %d slowdown %v < 1 (real run beat the fluid ideal?)", j.ID, j.Slowdown)
		}
	}
	if res.Makespan != j1.EndAt {
		t.Fatalf("makespan %v != last completion %v", res.Makespan, j1.EndAt)
	}
}

// TestDispatcherSpecs pins the spec grammar.
func TestDispatcherSpecs(t *testing.T) {
	for _, tc := range []struct{ spec, name string }{
		{"kchoices", "kchoices?d=2"},
		{"kchoices?d=5", "kchoices?d=5"},
		{"idle", "idle"},
	} {
		d, err := NewDispatcher(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if d.Name() != tc.name {
			t.Fatalf("%s: canonical name %q, want %q", tc.spec, d.Name(), tc.name)
		}
	}
	for _, bad := range []string{"", "kchoices?d=0", "kchoices?d=x", "kchoices?k=2", "idle?x=1", "rr"} {
		if _, err := NewDispatcher(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
}

// TestIdleHeapPlacement drives the indexed heap through a
// place/complete sequence and checks it always returns the least-loaded,
// lowest-index machine.
func TestIdleHeapPlacement(t *testing.T) {
	h := &IdleHeap{}
	h.Init(4, xrand.New(1))
	naiveLoad := make([]int, 4)
	naivePick := func() int {
		best := 0
		for i := 1; i < 4; i++ {
			if naiveLoad[i] < naiveLoad[best] {
				best = i
			}
		}
		return best
	}
	rng := xrand.New(99)
	live := 0
	for step := 0; step < 2000; step++ {
		if live == 0 || rng.Float64() < 0.55 {
			want := naivePick()
			got := h.Pick()
			if got != want {
				t.Fatalf("step %d: Pick()=%d, want %d (loads %v)", step, got, want, naiveLoad)
			}
			h.Update(got, +1)
			naiveLoad[got]++
			live++
		} else {
			m := rng.Intn(4)
			for naiveLoad[m] == 0 {
				m = (m + 1) % 4
			}
			h.Update(m, -1)
			naiveLoad[m]--
			live--
		}
	}
}

// TestKChoicesBeatsRandom sanity-checks the power-of-two effect: with
// loads held unequal, kchoices must prefer the less loaded of its sample.
func TestKChoicesBeatsRandom(t *testing.T) {
	k := &KChoices{D: 2}
	k.Init(8, xrand.New(3))
	// Machine 0 heavily loaded: picks should avoid it far more often than
	// the 1/8 uniform baseline.
	k.Update(0, +100)
	hit := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if k.Pick() == 0 {
			hit++
		}
	}
	// d=2 picks machine 0 only when both samples land on it: p = 1/64.
	if float64(hit)/trials > 0.05 {
		t.Fatalf("kchoices picked the overloaded machine %d/%d times", hit, trials)
	}
}

// TestArrivalsProperties pins the arrival-stream invariants directly.
func TestArrivalsProperties(t *testing.T) {
	// 600 jobs at the combined ~7000 jobs/s spans ~85ms of simulated time,
	// comfortably past the trace tenant's last entry at 50ms.
	jobs, err := Arrivals(testTenants(), 1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 600 {
		t.Fatalf("got %d jobs, want 600", len(jobs))
	}
	for i := range jobs {
		if jobs[i].ID != i {
			t.Fatalf("job %d has ID %d", i, jobs[i].ID)
		}
		if i > 0 && jobs[i].SubmitAt < jobs[i-1].SubmitAt {
			t.Fatalf("arrivals unsorted at %d", i)
		}
	}
	// Trace tenant contributes exactly its five submissions, including the
	// same-instant burst at t=0.
	cron := 0
	for i := range jobs {
		if jobs[i].Tenant == 2 {
			cron++
		}
	}
	if cron != 5 {
		t.Fatalf("trace tenant contributed %d jobs, want 5", cron)
	}
	if jobs[0].SubmitAt != 0 || jobs[1].SubmitAt != 0 {
		t.Fatalf("t=0 burst missing: first arrivals at %v, %v", jobs[0].SubmitAt, jobs[1].SubmitAt)
	}
}

func TestArrivalsTraceExhaustion(t *testing.T) {
	tenants := []Tenant{{Name: "t", Specs: []string{"noop"}, Process: "trace",
		Trace: []sim.Time{1, 2, 3}}}
	jobs, err := Arrivals(tenants, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs from a 3-entry trace, want 3", len(jobs))
	}
}

func TestArrivalsValidation(t *testing.T) {
	bad := [][]Tenant{
		nil,
		{{Name: "", Specs: []string{"noop"}, Process: "poisson", Rate: 1}},
		{{Name: "a", Specs: nil, Process: "poisson", Rate: 1}},
		{{Name: "a", Specs: []string{"noop"}, Process: "poisson", Rate: 0}},
		{{Name: "a", Specs: []string{"noop"}, Process: "diurnal", Rate: 1, Amplitude: 1.5}},
		{{Name: "a", Specs: []string{"noop"}, Process: "trace", Trace: []sim.Time{5, 4}}},
		{{Name: "a", Specs: []string{"noop"}, Process: "weibull", Rate: 1}},
		{{Name: "a", Specs: []string{"noop"}, Process: "poisson", Rate: 1},
			{Name: "a", Specs: []string{"noop"}, Process: "poisson", Rate: 1}},
	}
	for i, tenants := range bad {
		if _, err := Arrivals(tenants, 1, 5); err == nil {
			t.Fatalf("case %d: invalid tenants accepted", i)
		}
	}
}

// TestIdealDC pins the fluid model on hand-computable scenarios.
func TestIdealDC(t *testing.T) {
	mc := machine.TwoSocketXeon()
	perJob := float64(mc.TotalCores()) * mc.CoreFlops

	// The fluid drains happen in float ns, so a truncation at sim.Time
	// conversion may land 1ns short of the closed-form value.
	near := func(got, want sim.Time) bool {
		d := got - want
		return d >= -1 && d <= 1
	}

	// One job alone: response = work / perJobCap (capacity cap inactive).
	d := NewIdealDC(&mc, 4)
	jobs := []Job{{ID: 0, SubmitAt: 0}}
	resp := d.Respond(jobs, []float64{perJob * 100})
	if !near(resp[0], 100) {
		t.Fatalf("solo job: ideal response %v, want ~100", resp[0])
	}

	// Five simultaneous jobs on a 4-machine fleet: each runs at 4/5 of a
	// machine, so response = work/perJob * 5/4 = 125.
	jobs = make([]Job, 5)
	work := make([]float64, 5)
	for i := range jobs {
		jobs[i] = Job{ID: i, SubmitAt: 0}
		work[i] = perJob * 100
	}
	resp = d.Respond(jobs, work)
	for i, r := range resp {
		if !near(r, 125) {
			t.Fatalf("shared job %d: ideal response %v, want ~125", i, r)
		}
	}

	// Zero-work job: floors at 1ns.
	resp = d.Respond([]Job{{ID: 0, SubmitAt: 3}}, []float64{0})
	if resp[0] != 1 {
		t.Fatalf("zero-work ideal response %v, want 1", resp[0])
	}
}

// TestClusterValidation covers Run's config rejection paths.
func TestClusterValidation(t *testing.T) {
	// 40 jobs guarantees every poisson tenant contributes, so a bad spec on
	// tenant 0 is certain to be resolved (and rejected).
	good := testConfig(40)
	for _, mut := range []func(*Config){
		func(c *Config) { c.Machines = 0 },
		func(c *Config) { c.Policy = "" },
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.Tenants = nil },
		func(c *Config) { c.Dispatcher = "bogus" },
		func(c *Config) { c.Policy = "no-such-policy" },
		func(c *Config) { c.Tenants[0].Specs = []string{"no-such-workload"} },
	} {
		cfg := good
		cfg.Tenants = testTenants()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}
