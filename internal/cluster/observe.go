package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"numadag/internal/trace"
)

// Observer receives cluster-level job lifecycle callbacks. All callbacks
// run on the simulation goroutine, at the instant the event occurs, and
// must treat their arguments as read-only: an observer that touched
// dispatcher state or queues would perturb the run. The *Job pointers stay
// valid for the whole run (jobs live in the Result slice).
//
// Callback order per job: JobSubmit, then JobDispatch at the same instant
// (after the dispatcher placed it), JobStart when a machine picks it up
// (StartAt - SubmitAt is the queueing delay), and JobComplete after its
// statistics are folded in. A zero-task job completes synchronously, so
// JobComplete can fire within the same instant as JobStart.
type Observer interface {
	// JobSubmit fires when the job enters the system, before dispatch.
	JobSubmit(j *Job)
	// JobDispatch fires once the dispatcher has placed the job on
	// j.Machine. candidates lists the machines a sampling dispatcher
	// examined (nil for deterministic dispatchers; reused scratch — copy to
	// keep). queued is the chosen machine's queue depth including this job.
	JobDispatch(j *Job, candidates []int, queued int)
	// JobStart fires when the job begins executing; queued is the depth of
	// the queue it left behind.
	JobStart(j *Job, queued int)
	// JobComplete fires after j's timeline and statistics are final.
	JobComplete(j *Job)
}

// traceObserver adapts cluster job events onto a trace.Tracer: job spans on
// each machine's sched lane, dispatch instants with the sampled candidates,
// and per-machine queue-depth counters. Machine pids are fleet indices
// (matching AttachMachine in Run).
type traceObserver struct {
	tr  *trace.Tracer
	cfg *Config
}

var _ Observer = (*traceObserver)(nil)

func (o *traceObserver) JobSubmit(j *Job) {}

func (o *traceObserver) JobDispatch(j *Job, candidates []int, queued int) {
	var b strings.Builder
	fmt.Fprintf(&b, `{"job":%d,"tenant":%s`, j.ID, trace.QuoteString(o.cfg.Tenants[j.Tenant].Name))
	if candidates != nil {
		b.WriteString(`,"candidates":[`)
		for i, c := range candidates {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		}
		b.WriteByte(']')
	}
	fmt.Fprintf(&b, `,"queued":%d}`, queued)
	o.tr.Instant(j.Machine, "dispatch", j.SubmitAt, b.String())
	o.tr.QueueDepth(j.Machine, j.SubmitAt, queued)
}

func (o *traceObserver) JobStart(j *Job, queued int) {
	o.tr.BeginJob(j.Machine, fmt.Sprintf("job %d %s", j.ID, j.Spec), j.StartAt)
	o.tr.QueueDepth(j.Machine, j.StartAt, queued)
}

func (o *traceObserver) JobComplete(j *Job) {
	args := fmt.Sprintf(`{"job":%d,"tenant":%s,"queue_delay_ns":%d,"slowdown":%s}`,
		j.ID, trace.QuoteString(o.cfg.Tenants[j.Tenant].Name),
		int64(j.StartAt-j.SubmitAt),
		strconv.FormatFloat(j.Slowdown, 'g', -1, 64))
	o.tr.EndJob(j.Machine, j.EndAt, args)
}
