package cluster

import (
	"testing"

	"numadag/internal/xrand"
)

// TestDispatchSteadyStateAllocs pins the placement step's allocation
// contract: once Init has sized a dispatcher, Pick and Update must be
// allocation-free for both implementations — the dispatcher sits on the
// per-arrival hot path of every service-mode run.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const fleet = 256
	for _, spec := range []string{"kchoices?d=2", "idle"} {
		d, err := NewDispatcher(spec)
		if err != nil {
			t.Fatal(err)
		}
		d.Init(fleet, xrand.New(1))
		// Ring of in-flight placements: each cycle places one job and
		// completes the oldest once the ring is full, so loads churn without
		// ever going negative. Preallocated — the cycle itself must not
		// allocate.
		ring := make([]int, 64)
		head, count := 0, 0
		cycle := func() {
			m := d.Pick()
			d.Update(m, +1)
			if count == len(ring) {
				d.Update(ring[head], -1)
			} else {
				count++
			}
			ring[head] = m
			head = (head + 1) % len(ring)
		}
		if avg := testing.AllocsPerRun(1000, cycle); avg != 0 {
			t.Fatalf("%s: %.1f allocs/op in steady state, want 0", spec, avg)
		}
	}
}
