package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"numadag/internal/xrand"
)

// Dispatcher places arriving jobs on machines. Implementations must be
// deterministic given their seeded rng and the Update call sequence: the
// cluster calls Pick exactly once per arriving job, in arrival order, and
// Update(m, +1) right after each placement / Update(m, -1) when a job
// leaves machine m (both queued and running jobs count as load).
type Dispatcher interface {
	// Name returns the canonical spec string ("kchoices?d=2", "idle").
	Name() string
	// Init sizes the dispatcher for n machines and hands it its random
	// stream. Called once before the first Pick.
	Init(n int, rng *xrand.Rand)
	// Pick returns the machine index for the next arriving job.
	Pick() int
	// Update adjusts machine m's load by delta (+1 on placement, -1 on
	// job completion).
	Update(m, delta int)
}

// NewDispatcher parses a dispatcher spec. Supported:
//
//	"kchoices"       power-of-d-choices with d=2
//	"kchoices?d=K"   sample K machines uniformly, pick least loaded
//	"idle"           least-loaded machine overall via an indexed min-heap
func NewDispatcher(spec string) (Dispatcher, error) {
	name, arg, hasArg := strings.Cut(spec, "?")
	switch name {
	case "kchoices":
		d := 2
		if hasArg {
			key, val, ok := strings.Cut(arg, "=")
			if !ok || key != "d" {
				return nil, fmt.Errorf("cluster: kchoices takes only d=K, got %q", arg)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: bad kchoices d=%q", val)
			}
			d = n
		}
		return &KChoices{D: d}, nil
	case "idle":
		if hasArg {
			return nil, fmt.Errorf("cluster: idle dispatcher takes no parameters, got %q", arg)
		}
		return &IdleHeap{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatcher %q (kchoices, idle)", name)
	}
}

// CandidateSampler is implemented by dispatchers that consider a sampled
// subset of machines per decision. LastCandidates returns the machines the
// most recent Pick examined, in sampling order; the slice is reused by the
// next Pick, so observers must copy what they keep. Deterministic
// dispatchers that scan global state (IdleHeap) do not implement it.
type CandidateSampler interface {
	LastCandidates() []int
}

// KChoices is the power-of-d-choices dispatcher: sample D machines
// uniformly at random (with replacement) and place the job on the least
// loaded of the sample, breaking ties toward the lowest machine index. The
// classic result: d=2 already collapses queue-length tails compared with
// uniform random placement, at O(d) cost per decision.
type KChoices struct {
	D    int
	rng  *xrand.Rand
	load []int
	cand []int // last Pick's samples, reused scratch (CandidateSampler)
}

func (k *KChoices) Name() string {
	return fmt.Sprintf("kchoices?d=%d", k.D)
}

func (k *KChoices) Init(n int, rng *xrand.Rand) {
	k.rng = rng
	k.load = make([]int, n)
	k.cand = make([]int, 0, k.D)
}

func (k *KChoices) Pick() int {
	k.cand = k.cand[:0]
	best := k.rng.Intn(len(k.load))
	k.cand = append(k.cand, best)
	for i := 1; i < k.D; i++ {
		c := k.rng.Intn(len(k.load))
		k.cand = append(k.cand, c)
		if k.load[c] < k.load[best] || (k.load[c] == k.load[best] && c < best) {
			best = c
		}
	}
	return best
}

// LastCandidates implements CandidateSampler: the machines the last Pick
// sampled, in order (reused scratch — copy to keep).
func (k *KChoices) LastCandidates() []int { return k.cand }

func (k *KChoices) Update(m, delta int) {
	k.load[m] += delta
	if k.load[m] < 0 {
		panic("cluster: kchoices load went negative")
	}
}

// IdleHeap is the global least-loaded dispatcher: an indexed min-heap over
// (load, machine index) gives O(log n) placement onto the machine with the
// fewest jobs, preferring truly idle machines and breaking load ties toward
// the lowest index — fully deterministic, no randomness consumed.
type IdleHeap struct {
	load []int // load per machine
	heap []int // machine indices, heap-ordered by (load, index)
	pos  []int // machine index -> position in heap
}

func (h *IdleHeap) Name() string { return "idle" }

func (h *IdleHeap) Init(n int, rng *xrand.Rand) {
	_ = rng // deterministic policy; keeps the stream untouched
	h.load = make([]int, n)
	h.heap = make([]int, n)
	h.pos = make([]int, n)
	for i := 0; i < n; i++ {
		h.heap[i] = i
		h.pos[i] = i
	}
}

func (h *IdleHeap) less(a, b int) bool {
	ma, mb := h.heap[a], h.heap[b]
	if h.load[ma] != h.load[mb] {
		return h.load[ma] < h.load[mb]
	}
	return ma < mb
}

func (h *IdleHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *IdleHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IdleHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(l, least) {
			least = l
		}
		if r < n && h.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h *IdleHeap) Pick() int { return h.heap[0] }

func (h *IdleHeap) Update(m, delta int) {
	h.load[m] += delta
	if h.load[m] < 0 {
		panic("cluster: idle-heap load went negative")
	}
	i := h.pos[m]
	if delta > 0 {
		h.down(i)
	} else {
		h.up(i)
	}
}
