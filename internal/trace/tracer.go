package trace

import (
	"fmt"
	"strconv"
	"sync"

	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// Tracer merges execution events from many sources — per-machine runtimes,
// fluid networks and link samplers, and a cluster dispatcher — into one
// Chrome trace-event timeline loadable in Perfetto or chrome://tracing.
//
// The model follows the trace-event format: each attached machine is one
// "process" (pid), with one thread lane per core for task spans, a "sched"
// lane for job spans, steal markers and dispatch instants, and dynamically
// allocated lanes for transfer and flow spans (overlapping spans on one tid
// do not nest in the viewers, so concurrent transfers/flows spread across
// first-fit sub-lanes). Per-link bandwidth utilization and per-machine
// queue depth are recorded as ph=C counter series.
//
// Tracing observes and never perturbs: callbacks only copy data under the
// tracer's own mutex, never schedule events, touch simulation state, or
// consume random numbers — a run with a Tracer attached is bit-identical to
// the same run without one, and the trace bytes themselves are deterministic
// at a fixed seed. The mutex makes a single Tracer safe to share across the
// parallel cells of an Experiment (each cell a distinct pid).
//
// Note the pooling interaction: AttachMachine registers hooks on the
// machine's engine and network that cannot be detached, so a traced machine
// must not be recycled into a pool serving untraced runs (core.Runner keeps
// traced machines out of its pool for exactly this reason).
type Tracer struct {
	mu    sync.Mutex
	byPid map[int]*proc
}

// NewTracer returns an empty tracer ready for AttachMachine.
func NewTracer() *Tracer { return &Tracer{byPid: make(map[int]*proc)} }

// span is one closed ph=X event.
type span struct {
	tid  int
	key  string // dynamic-lane group key; "" for fixed core/sched lanes
	name string
	ts   sim.Time
	dur  sim.Time
	args string // preformatted JSON object, or ""
}

// counter is one ph=C sample.
type counter struct {
	name string
	ts   sim.Time
	args string // preformatted JSON object of series values
}

// instant is one ph=i marker on the sched lane.
type instant struct {
	name string
	ts   sim.Time
	args string // preformatted JSON object, or ""
}

// subLane tracks one sub-lane of a dynamic lane group: its assigned tid and
// the end time of the last span placed on it (first-fit reuse).
type subLane struct {
	tid int
	end sim.Time
}

// flowOpen is the copied-out state of an in-flight fluid flow (Flow structs
// are recycled by the network, so everything needed at close is captured at
// start).
type flowOpen struct {
	ts    sim.Time
	key   string // lane group: the last path resource ("mc0", "port1", ...)
	bytes float64
}

// proc is the per-pid event buffer. Buffers are independent, so parallel
// experiment cells writing distinct pids never interleave events; rendering
// walks pids in sorted order, keeping output deterministic.
type proc struct {
	pid     int
	name    string
	cores   int
	sockets int

	schedTid  int
	nextTid   int
	laneNames []string // indexed by tid
	subs      map[string][]subLane
	flowLanes []string // flow lane groups in first-use order (Gantt rows)

	spans    []span
	counters []counter
	instants []instant

	// Live (not yet closed) state.
	openXfer []sim.Time // [core*sockets+home] start time, -1 when idle
	flows    map[*sim.Flow]flowOpen
	jobOpen  bool
	jobName  string
	jobTs    sim.Time

	// Counter dedup state: a sample identical to the last emitted one is
	// dropped (flushes fire at every churn instant; most change nothing on
	// a given machine).
	lastMem   []float64
	lastLink  []float64
	cntInit   bool
	lastQueue int
	queueInit bool
}

func newProc(pid int, name string, cores, sockets int) *proc {
	p := &proc{
		pid:     pid,
		name:    name,
		cores:   cores,
		sockets: sockets,
		subs:    make(map[string][]subLane),
		flows:   make(map[*sim.Flow]flowOpen),
	}
	for c := 0; c < cores; c++ {
		p.laneNames = append(p.laneNames, fmt.Sprintf("core %d", c))
	}
	p.schedTid = cores
	p.laneNames = append(p.laneNames, "sched")
	p.nextTid = cores + 1
	if cores > 0 && sockets > 0 {
		p.openXfer = make([]sim.Time, cores*sockets)
		for i := range p.openXfer {
			p.openXfer[i] = -1
		}
		p.lastMem = make([]float64, sockets)
		p.lastLink = make([]float64, sockets)
	}
	return p
}

// laneFor returns the tid for a span on dynamic lane group `key` spanning
// [ts, end): the first existing sub-lane free at ts, or a fresh one. Callers
// hold the tracer mutex.
func (p *proc) laneFor(key string, ts, end sim.Time) int {
	subs := p.subs[key]
	for i := range subs {
		if subs[i].end <= ts {
			subs[i].end = end
			return subs[i].tid
		}
	}
	tid := p.nextTid
	p.nextTid++
	name := key
	if len(subs) > 0 {
		name = fmt.Sprintf("%s.%d", key, len(subs))
	}
	p.laneNames = append(p.laneNames, name)
	p.subs[key] = append(subs, subLane{tid: tid, end: end})
	return tid
}

// ensureProc returns the buffer for pid, creating a bare one (no core
// lanes) for pids that were never attached to a machine.
func (tr *Tracer) ensureProc(pid int) *proc {
	p := tr.byPid[pid]
	if p == nil {
		p = newProc(pid, fmt.Sprintf("pid %d", pid), 0, 0)
		tr.byPid[pid] = p
	}
	return p
}

// AttachMachine registers machine m as process pid (panicking on a duplicate
// pid) and returns an rt.Observer to configure on the runtime(s) executing
// over m. The observer records task spans per core, transfer spans per core
// group, and steal instants; independently of it, the tracer hooks m's fluid
// network for flow spans and registers an end-of-instant engine flusher
// sampling per-link utilization counters — so flows and counters are traced
// even when the runtime's Observer slot is taken by a user observer.
//
// Attach after the machine (and, on a shared engine, all machines) is
// constructed, so the sampling flusher runs after the network's own
// end-of-instant reallocation and reads settled rates.
func (tr *Tracer) AttachMachine(m *machine.Machine, pid int, name string) rt.Observer {
	tr.mu.Lock()
	if _, dup := tr.byPid[pid]; dup {
		tr.mu.Unlock()
		panic(fmt.Sprintf("trace: pid %d attached twice", pid))
	}
	p := newProc(pid, name, m.Cores(), m.Sockets())
	tr.byPid[pid] = p
	tr.mu.Unlock()

	obs := &machObserver{tr: tr, p: p, m: m}
	m.Net().SetFlowHooks(obs.flowStart, obs.flowEnd)
	m.Engine().AddFlusher(obs.sample)
	return obs
}

// machObserver binds one attached machine's callbacks to its proc buffer.
type machObserver struct {
	tr *Tracer
	p  *proc
	m  *machine.Machine
}

var (
	_ rt.Observer         = (*machObserver)(nil)
	_ rt.TransferObserver = (*machObserver)(nil)
	_ rt.StealObserver    = (*machObserver)(nil)
)

// TaskStart implements rt.Observer (spans are recorded at TaskEnd, when
// both endpoints are known).
func (o *machObserver) TaskStart(*rt.Task) {}

// TaskEnd implements rt.Observer: one ph=X span on the executing core's lane.
func (o *machObserver) TaskEnd(t *rt.Task) {
	o.tr.mu.Lock()
	args := ""
	if t.Stolen {
		args = `{"stolen":true}`
	}
	o.p.spans = append(o.p.spans, span{
		tid: t.Core, name: t.Label, ts: t.StartAt, dur: t.EndAt - t.StartAt, args: args,
	})
	o.tr.mu.Unlock()
}

// TransferStart implements rt.TransferObserver. A core runs one phase at a
// time and a phase launches at most one transfer per home socket, so
// (core, home) uniquely keys the open transfer.
func (o *machObserver) TransferStart(t *rt.Task, home, exec int, bytes int64) {
	o.tr.mu.Lock()
	o.p.openXfer[t.Core*o.p.sockets+home] = o.m.Engine().Now()
	o.tr.mu.Unlock()
}

// TransferEnd implements rt.TransferObserver: one ph=X span on the core's
// transfer lane group ("xfer c<core>", sub-laned on overlap).
func (o *machObserver) TransferEnd(t *rt.Task, home, exec int, bytes int64) {
	now := o.m.Engine().Now()
	o.tr.mu.Lock()
	p := o.p
	idx := t.Core*p.sockets + home
	ts := p.openXfer[idx]
	p.openXfer[idx] = -1
	key := fmt.Sprintf("xfer c%d", t.Core)
	tid := p.laneFor(key, ts, now)
	args := fmt.Sprintf(`{"home":%d,"exec":%d,"bytes":%d}`, home, exec, bytes)
	p.spans = append(p.spans, span{tid: tid, key: key, name: "xfer", ts: ts, dur: now - ts, args: args})
	o.tr.mu.Unlock()
}

// TaskStolen implements rt.StealObserver: a ph=i marker on the sched lane.
func (o *machObserver) TaskStolen(t *rt.Task, victim, thief int) {
	now := o.m.Engine().Now()
	o.tr.mu.Lock()
	o.p.instants = append(o.p.instants, instant{
		name: "steal",
		ts:   now,
		args: fmt.Sprintf(`{"task":%s,"victim":%d,"thief":%d}`, QuoteString(t.Label), victim, thief),
	})
	o.tr.mu.Unlock()
}

// flowStart copies out the flow's identity (Flow structs are recycled by
// the network after completion).
func (o *machObserver) flowStart(f *sim.Flow) {
	now := o.m.Engine().Now()
	o.tr.mu.Lock()
	path := f.Path()
	o.p.flows[f] = flowOpen{ts: now, key: path[len(path)-1].Name(), bytes: f.Volume()}
	o.tr.mu.Unlock()
}

// flowEnd closes the span on the lane group of the flow's last path
// resource — the home port for remote transfers, the memory controller for
// local ones — so each link's lane shows exactly the traffic crossing it.
func (o *machObserver) flowEnd(f *sim.Flow) {
	now := o.m.Engine().Now()
	o.tr.mu.Lock()
	p := o.p
	fo, ok := p.flows[f]
	if !ok {
		o.tr.mu.Unlock()
		return // started before the tracer attached
	}
	delete(p.flows, f)
	if _, seen := p.subs[fo.key]; !seen {
		p.flowLanes = append(p.flowLanes, fo.key)
	}
	tid := p.laneFor(fo.key, fo.ts, now)
	args := fmt.Sprintf(`{"bytes":%s}`, strconv.FormatFloat(fo.bytes, 'g', -1, 64))
	p.spans = append(p.spans, span{tid: tid, key: fo.key, name: "flow", ts: fo.ts, dur: now - fo.ts, args: args})
	o.tr.mu.Unlock()
}

// sample runs as an end-of-instant engine flusher, after the network's own
// reallocation flush: it reads the settled per-resource rates and emits
// "mem util" / "link util" counter samples, deduplicated against the last
// emitted values (flushes fire at every churn instant on the shared engine;
// most leave a given machine's links unchanged).
func (o *machObserver) sample() {
	now := o.m.Engine().Now()
	mcs, ports := o.m.Controllers(), o.m.Ports()
	o.tr.mu.Lock()
	p := o.p
	memChanged, linkChanged := !p.cntInit, !p.cntInit
	for s, r := range mcs {
		if u := resUtil(r); u != p.lastMem[s] {
			p.lastMem[s] = u
			memChanged = true
		}
	}
	for s, r := range ports {
		if u := resUtil(r); u != p.lastLink[s] {
			p.lastLink[s] = u
			linkChanged = true
		}
	}
	p.cntInit = true
	if memChanged {
		p.counters = append(p.counters, counter{name: "mem util", ts: now, args: utilArgs(mcs, p.lastMem)})
	}
	if linkChanged {
		p.counters = append(p.counters, counter{name: "link util", ts: now, args: utilArgs(ports, p.lastLink)})
	}
	o.tr.mu.Unlock()
}

// resUtil is the instantaneous utilization fraction of a resource.
func resUtil(r *sim.Resource) float64 { return r.Rate() / r.Capacity() }

// utilArgs formats one counter sample: {"mc0":0.5,"mc1":0,...}.
func utilArgs(rs []*sim.Resource, vals []float64) string {
	b := make([]byte, 0, 16*len(rs))
	b = append(b, '{')
	for s, r := range rs {
		if s > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, r.Name()...)
		b = append(b, '"', ':')
		b = strconv.AppendFloat(b, vals[s], 'g', -1, 64)
	}
	b = append(b, '}')
	return string(b)
}

// BeginJob opens a job span on pid's sched lane. Machines run one job at a
// time, so at most one job may be open per pid; a second BeginJob replaces
// the first without emitting it.
func (tr *Tracer) BeginJob(pid int, name string, ts sim.Time) {
	tr.mu.Lock()
	p := tr.ensureProc(pid)
	p.jobOpen, p.jobName, p.jobTs = true, name, ts
	tr.mu.Unlock()
}

// EndJob closes the open job span at ts with the given preformatted JSON
// args object ("" for none). A close with no open job is a no-op.
func (tr *Tracer) EndJob(pid int, ts sim.Time, argsJSON string) {
	tr.mu.Lock()
	p := tr.ensureProc(pid)
	if p.jobOpen {
		p.jobOpen = false
		p.spans = append(p.spans, span{
			tid: p.schedTid, name: p.jobName, ts: p.jobTs, dur: ts - p.jobTs, args: argsJSON,
		})
	}
	tr.mu.Unlock()
}

// Instant records a ph=i marker (process scope) on pid's sched lane, with a
// preformatted JSON args object ("" for none). The cluster dispatcher uses
// it for dispatch decisions.
func (tr *Tracer) Instant(pid int, name string, ts sim.Time, argsJSON string) {
	tr.mu.Lock()
	p := tr.ensureProc(pid)
	p.instants = append(p.instants, instant{name: name, ts: ts, args: argsJSON})
	tr.mu.Unlock()
}

// QueueDepth records pid's "queue" counter series (jobs queued on the
// machine), deduplicating repeats of the same depth.
func (tr *Tracer) QueueDepth(pid int, ts sim.Time, depth int) {
	tr.mu.Lock()
	p := tr.ensureProc(pid)
	if !p.queueInit || depth != p.lastQueue {
		p.queueInit, p.lastQueue = true, depth
		p.counters = append(p.counters, counter{
			name: "queue", ts: ts, args: fmt.Sprintf(`{"queued":%d}`, depth),
		})
	}
	tr.mu.Unlock()
}

// Spans returns the number of closed spans recorded across all pids.
func (tr *Tracer) Spans() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, p := range tr.byPid {
		n += len(p.spans)
	}
	return n
}

// QuoteString returns s as a JSON string literal, for building the
// preformatted args objects the Tracer's primitives accept.
func QuoteString(s string) string { return string(appendQuoted(nil, s)) }

// appendQuoted appends s as a JSON string literal.
func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		}
	}
	return append(b, '"')
}
