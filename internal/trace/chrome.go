package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"numadag/internal/sim"
)

// WriteChromeTrace renders everything recorded so far as a Chrome
// trace-event JSON object ({"traceEvents":[...]}), loadable in Perfetto and
// chrome://tracing. The JSON is hand-assembled with fixed key order and
// pids walked in sorted order, so output bytes are deterministic for a
// deterministic event stream — including across parallel experiment cells,
// whose buffers are per-pid. Spans still open (a mid-run snapshot) are
// simply absent; counters and closed spans up to the snapshot instant are
// complete.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	var buf []byte
	emit := func() {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
		bw.Write(buf)
		buf = buf[:0]
	}

	pids := make([]int, 0, len(tr.byPid))
	for pid := range tr.byPid {
		pids = append(pids, pid)
	}
	sort.Ints(pids)

	for _, pid := range pids {
		p := tr.byPid[pid]
		// Process and thread metadata: names plus sort indexes so the
		// viewer orders machines by pid and lanes by tid.
		buf = append(buf, `{"name":"process_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = appendQuoted(buf, p.name)
		buf = append(buf, `}}`...)
		emit()
		buf = append(buf, `{"name":"process_sort_index","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `,"args":{"sort_index":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `}}`...)
		emit()
		for tid, name := range p.laneNames {
			buf = append(buf, `{"name":"thread_name","ph":"M","pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(tid), 10)
			buf = append(buf, `,"args":{"name":`...)
			buf = appendQuoted(buf, name)
			buf = append(buf, `}}`...)
			emit()
			buf = append(buf, `{"name":"thread_sort_index","ph":"M","pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(tid), 10)
			buf = append(buf, `,"args":{"sort_index":`...)
			buf = strconv.AppendInt(buf, int64(tid), 10)
			buf = append(buf, `}}`...)
			emit()
		}
		for _, s := range p.spans {
			buf = append(buf, `{"name":`...)
			buf = appendQuoted(buf, s.name)
			buf = append(buf, `,"ph":"X","ts":`...)
			buf = appendTs(buf, s.ts)
			buf = append(buf, `,"dur":`...)
			buf = appendTs(buf, s.dur)
			buf = append(buf, `,"pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(s.tid), 10)
			if s.args != "" {
				buf = append(buf, `,"args":`...)
				buf = append(buf, s.args...)
			}
			buf = append(buf, '}')
			emit()
		}
		for _, c := range p.counters {
			buf = append(buf, `{"name":`...)
			buf = appendQuoted(buf, c.name)
			buf = append(buf, `,"ph":"C","ts":`...)
			buf = appendTs(buf, c.ts)
			buf = append(buf, `,"pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"args":`...)
			buf = append(buf, c.args...)
			buf = append(buf, '}')
			emit()
		}
		for _, in := range p.instants {
			buf = append(buf, `{"name":`...)
			buf = appendQuoted(buf, in.name)
			buf = append(buf, `,"ph":"i","s":"p","ts":`...)
			buf = appendTs(buf, in.ts)
			buf = append(buf, `,"pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(p.schedTid), 10)
			if in.args != "" {
				buf = append(buf, `,"args":`...)
				buf = append(buf, in.args...)
			}
			buf = append(buf, '}')
			emit()
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// appendTs formats a simulated time (integer nanoseconds) as trace-event
// microseconds with three decimals — exact, so output stays byte-stable.
func appendTs(b []byte, t sim.Time) []byte {
	return strconv.AppendFloat(b, float64(t)/1e3, 'f', 3, 64)
}

// WriteFile writes the Chrome trace JSON to path.
func (tr *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteGantt renders pid's timeline as a plain-text Gantt chart: one row
// per core ('#' where the core runs a task) followed by one row per
// link/controller lane ('=' where a fluid flow crosses it), `width` columns
// over [0, makespan].
func (tr *Tracer) WriteGantt(w io.Writer, pid, width int) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if width <= 0 {
		width = 80
	}
	p := tr.byPid[pid]
	if p == nil {
		return fmt.Errorf("trace: pid %d not recorded", pid)
	}
	var makespan sim.Time
	for _, s := range p.spans {
		if end := s.ts + s.dur; end > makespan {
			makespan = end
		}
	}
	if makespan == 0 {
		makespan = 1
	}
	coreRows := make([][]byte, p.cores)
	for i := range coreRows {
		coreRows[i] = []byte(strings.Repeat(".", width))
	}
	flowRows := make(map[string][]byte, len(p.flowLanes))
	for _, key := range p.flowLanes {
		flowRows[key] = []byte(strings.Repeat(".", width))
	}
	paint := func(row []byte, ts, dur sim.Time, mark byte) {
		lo := int(int64(ts) * int64(width) / int64(makespan))
		hi := int(int64(ts+dur) * int64(width) / int64(makespan))
		if hi == lo {
			hi = lo + 1
		}
		for x := lo; x < hi && x < width; x++ {
			row[x] = mark
		}
	}
	for _, s := range p.spans {
		switch {
		case s.key == "" && s.tid < p.cores:
			paint(coreRows[s.tid], s.ts, s.dur, '#')
		case s.key != "":
			if row := flowRows[s.key]; row != nil {
				paint(row, s.ts, s.dur, '=')
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "gantt pid %d (%s): %d spans over %v\n", pid, p.name, len(p.spans), makespan)
	for c, row := range coreRows {
		fmt.Fprintf(bw, "%-8s|%s|\n", fmt.Sprintf("core %d", c), row)
	}
	for _, key := range p.flowLanes {
		fmt.Fprintf(bw, "%-8s|%s|\n", key, flowRows[key])
	}
	return bw.Flush()
}
