// Package trace records task execution timelines and renders them as
// Chrome trace-event JSON (load chrome://tracing or Perfetto) or as a
// plain-text Gantt chart — the role Paraver traces play in the paper's
// workflow.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"numadag/internal/rt"
	"numadag/internal/sim"
)

// Event is one task execution span.
type Event struct {
	Label  string
	Core   int
	Socket int
	Start  sim.Time
	End    sim.Time
	Stolen bool
}

// Recorder implements rt.Observer, collecting an event per executed task.
type Recorder struct {
	events []Event
}

var _ rt.Observer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// TaskStart implements rt.Observer (span recorded on end).
func (rec *Recorder) TaskStart(*rt.Task) {}

// TaskEnd implements rt.Observer.
func (rec *Recorder) TaskEnd(t *rt.Task) {
	rec.events = append(rec.events, Event{
		Label:  t.Label,
		Core:   t.Core,
		Socket: t.Socket,
		Start:  t.StartAt,
		End:    t.EndAt,
		Stolen: t.Stolen,
	})
}

// Events returns the recorded spans in completion order.
func (rec *Recorder) Events() []Event { return rec.events }

// Len returns the number of recorded spans.
func (rec *Recorder) Len() int { return len(rec.events) }

// chromeEvent is the trace_event "complete" (ph=X) record.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the events as a Chrome trace-event JSON array.
// Sockets map to pids, cores to tids, so the UI groups lanes by socket.
func (rec *Recorder) WriteChromeTrace(w io.Writer) error {
	evts := make([]chromeEvent, 0, len(rec.events))
	for _, e := range rec.events {
		args := map[string]string{}
		if e.Stolen {
			args["stolen"] = "true"
		}
		evts = append(evts, chromeEvent{
			Name: e.Label,
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  float64(e.End-e.Start) / 1e3,
			Pid:  e.Socket,
			Tid:  e.Core,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evts)
}

// WriteGantt renders a coarse per-core text Gantt chart: one row per core,
// `width` columns spanning [0, makespan], '#' where the core is busy.
func (rec *Recorder) WriteGantt(w io.Writer, cores int, width int) error {
	if width <= 0 {
		width = 80
	}
	var makespan sim.Time
	for _, e := range rec.events {
		if e.End > makespan {
			makespan = e.End
		}
	}
	if makespan == 0 {
		makespan = 1
	}
	rows := make([][]byte, cores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range rec.events {
		if e.Core < 0 || e.Core >= cores {
			continue
		}
		lo := int(int64(e.Start) * int64(width) / int64(makespan))
		hi := int(int64(e.End) * int64(width) / int64(makespan))
		if hi == lo {
			hi = lo + 1
		}
		for x := lo; x < hi && x < width; x++ {
			rows[e.Core][x] = '#'
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "gantt: %d tasks over %v\n", len(rec.events), makespan)
	for c, row := range rows {
		fmt.Fprintf(bw, "core %2d |%s|\n", c, row)
	}
	return bw.Flush()
}
