package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

var updateTraceGolden = flag.Bool("update", false, "rewrite the trace golden files in testdata/")

// pinByLabel sends "near" tasks to socket 0 and everything else to socket 1,
// so a write-on-0 / read-on-1 chain forces cross-socket transfers (and with
// them flow spans and link-utilization counters) deterministically.
type pinByLabel struct{}

func (pinByLabel) Name() string { return "pinbylabel" }
func (pinByLabel) PickSocket(_ *rt.Runtime, t *rt.Task) int {
	if t.Label == "near" {
		return 0
	}
	return 1
}

// buildTraced runs the pinned golden scenario into a fresh Tracer: a
// two-socket machine as pid 0 with tasks, transfers, flows and utilization
// counters from the runtime, plus a hand-driven job span, dispatch instant
// and queue-depth series on the sched lane (what the cluster layer emits).
func buildTraced(t testing.TB) *Tracer {
	t.Helper()
	tr := NewTracer()
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	obs := tr.AttachMachine(m, 0, "golden scenario")
	r := rt.NewRuntime(m, pinByLabel{}, rt.Options{Seed: 1, Observer: obs})

	regs := make([]*memory.Region, 3)
	for i := range regs {
		regs[i] = r.Mem().Alloc("r", 256<<10, memory.Deferred, 0)
	}
	for layer := 0; layer < 3; layer++ {
		for i, reg := range regs {
			label := "near"
			if (layer+i)%2 == 1 {
				label = "far"
			}
			r.Submit(rt.TaskSpec{Label: label, Flops: 50_000,
				Accesses: []rt.Access{{Region: reg, Mode: rt.InOut}},
				EPSocket: rt.NoEPHint})
		}
	}
	tr.BeginJob(0, "job 0 golden", 0)
	tr.Instant(0, "dispatch", 0, `{"job":0,"queued":1}`)
	tr.QueueDepth(0, 0, 1)
	res := r.Run()
	tr.QueueDepth(0, res.Makespan, 0)
	tr.EndJob(0, res.Makespan, `{"job":0,"slowdown":1.5}`)
	return tr
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateTraceGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output diverged from golden (%d bytes vs %d); rerun with -update only if the trace format change is intended",
			path, len(got), len(want))
	}
}

// TestChromeTraceGolden pins the Chrome trace bytes for the golden scenario:
// any change to event content, key order, timestamp formatting or lane
// assignment shows up as a byte diff.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTraced(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/chrome.golden.json", buf.Bytes())
}

// TestGanttGolden pins the text renderer: core rows plus the flow/link rows
// the tracer adds over the legacy per-task view.
func TestGanttGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTraced(t).WriteGantt(&buf, 0, 72); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.Contains(out, []byte("core 0")) || !bytes.Contains(out, []byte("mc0")) {
		t.Fatalf("gantt missing core or link rows:\n%s", out)
	}
	checkGolden(t, "testdata/gantt.golden.txt", out)
}

// TestChromeTraceBytesDeterministic demands two independent runs of the
// same scenario render byte-identical traces — the per-pid buffering and
// sorted rendering contract, independent of the golden file's vintage.
func TestChromeTraceBytesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTraced(t).WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTraced(t).WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traced runs produced different trace bytes")
	}
}

// TestChromeTracePerfettoFields parses the trace with encoding/json and
// checks the fields the Perfetto / chrome://tracing importers require for
// each phase actually present — the hand-rolled writer never goes through a
// marshaller, so this guards both validity and schema.
func TestChromeTracePerfettoFields(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTraced(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]int{}
	for i, e := range top.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		name, _ := e["name"].(string)
		if name == "" {
			t.Fatalf("event %d: missing name: %v", i, e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %d (%s): missing pid: %v", i, name, e)
		}
		switch ph {
		case "X":
			for _, k := range []string{"ts", "dur", "tid"} {
				if _, ok := e[k].(float64); !ok {
					t.Fatalf("X event %d (%s): missing %s: %v", i, name, k, e)
				}
			}
		case "C":
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("C event %d (%s): missing ts: %v", i, name, e)
			}
			args, ok := e["args"].(map[string]any)
			if !ok || len(args) == 0 {
				t.Fatalf("C event %d (%s): counters need non-empty numeric args: %v", i, name, e)
			}
			for k, v := range args {
				if _, ok := v.(float64); !ok {
					t.Fatalf("C event %d (%s): series %q is not numeric: %v", i, name, k, v)
				}
			}
		case "i":
			if s, _ := e["s"].(string); s != "p" && s != "t" && s != "g" {
				t.Fatalf("i event %d (%s): bad scope %q", i, name, e["s"])
			}
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("i event %d (%s): missing ts: %v", i, name, e)
			}
		case "M":
			if _, ok := e["args"].(map[string]any); !ok {
				t.Fatalf("M event %d (%s): missing args: %v", i, name, e)
			}
		default:
			t.Fatalf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
	// The golden scenario must exercise every phase: task/transfer/flow/job
	// spans, utilization + queue counters, dispatch instants, and metadata.
	for _, ph := range []string{"X", "C", "i", "M"} {
		if phases[ph] == 0 {
			t.Errorf("scenario produced no ph=%s events", ph)
		}
	}
}

// TestTracerSpansAndGanttErrors covers the small API contracts: Spans
// counts closed spans, WriteGantt on an unknown pid errors.
func TestTracerSpansAndGanttErrors(t *testing.T) {
	tr := buildTraced(t)
	if n := tr.Spans(); n == 0 {
		t.Error("Spans() == 0 after a traced run")
	}
	if err := tr.WriteGantt(&bytes.Buffer{}, 42, 40); err == nil {
		t.Error("WriteGantt on an unattached pid should error")
	}
}
