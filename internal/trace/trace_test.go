package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

type pinZero struct{}

func (pinZero) Name() string                         { return "pin0" }
func (pinZero) PickSocket(*rt.Runtime, *rt.Task) int { return 0 }

func record(t *testing.T, n int) *Recorder {
	t.Helper()
	rec := NewRecorder()
	m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
	r := rt.NewRuntime(m, pinZero{}, rt.Options{Observer: rec})
	for i := 0; i < n; i++ {
		reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
		r.Submit(rt.TaskSpec{Label: "task", Flops: 1000,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
	}
	r.Run()
	return rec
}

func TestRecorderCapturesAllTasks(t *testing.T) {
	rec := record(t, 10)
	if rec.Len() != 10 {
		t.Fatalf("recorded %d events, want 10", rec.Len())
	}
	for _, e := range rec.Events() {
		if e.End < e.Start {
			t.Fatalf("event %v ends before it starts", e)
		}
		if e.Socket != 0 {
			t.Fatalf("event on socket %d, want 0", e.Socket)
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	rec := record(t, 5)
	var sb strings.Builder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 5 {
		t.Fatalf("trace has %d events", len(parsed))
	}
	for _, e := range parsed {
		if e["ph"] != "X" {
			t.Fatalf("event phase %v, want X", e["ph"])
		}
		if e["name"] != "task" {
			t.Fatalf("event name %v", e["name"])
		}
	}
}

func TestGanttRender(t *testing.T) {
	rec := record(t, 8)
	var sb strings.Builder
	if err := rec.WriteGantt(&sb, 16, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "core  0") {
		t.Errorf("gantt missing core rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt shows no busy time")
	}
	if lines := strings.Count(out, "\n"); lines != 17 { // header + 16 cores
		t.Errorf("gantt has %d lines, want 17", lines)
	}
}

func TestGanttEmptyRecorder(t *testing.T) {
	rec := NewRecorder()
	var sb strings.Builder
	if err := rec.WriteGantt(&sb, 4, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 tasks") {
		t.Error("empty gantt header wrong")
	}
}
