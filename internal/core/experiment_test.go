package core

import (
	"context"
	"errors"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
)

func TestExperimentCellEnumeration(t *testing.T) {
	e := &Experiment{
		Apps:     []string{"jacobi", "cg"},
		Policies: []string{"LAS", "DFIFO"},
		Scale:    apps.Tiny,
		Variants: []Variant{{Name: "a"}, {Name: "b"}},
		Seeds:    2,
	}
	cells, err := e.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*2 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Canonical order: apps x policies x machines x variants x replicates.
	first := cells[0]
	if first.App != "jacobi" || first.Policy != "LAS" || first.Variant != "a" ||
		first.Replicate != 0 || first.Index != 0 {
		t.Fatalf("first cell %+v", first)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if want := DeriveSeed(rt.DefaultOptions().Seed, c.Replicate); c.Seed != want {
			t.Fatalf("cell %+v seed, want %d", c, want)
		}
		if c.Machine != machine.BullionS16().Name {
			t.Fatalf("cell %+v machine", c)
		}
	}
	if cells[1].Replicate != 1 || cells[2].Variant != "b" {
		t.Fatalf("replicates not innermost: %+v %+v", cells[1], cells[2])
	}
}

func TestExperimentValidation(t *testing.T) {
	if _, err := (&Experiment{}).Cells(); err == nil {
		t.Error("empty experiment accepted")
	}
	if _, err := (&Experiment{Policies: []string{"LAS"}, Apps: []string{}}).Cells(); err == nil {
		t.Error("zero-length app list accepted")
	}
	base := func() *Experiment { return &Experiment{Apps: []string{"jacobi"}, Policies: []string{"LAS"}} }
	e := base()
	e.Machines = []machine.Config{}
	if _, err := e.Cells(); err == nil {
		t.Error("zero-length machine list accepted (silent zero-cell experiment)")
	}
	e = base()
	e.Variants = []Variant{}
	if _, err := e.Cells(); err == nil {
		t.Error("zero-length variant list accepted (silent zero-cell experiment)")
	}
	bad := &Experiment{Apps: []string{"jacobi"}, Policies: []string{"nope"}, Scale: apps.Tiny}
	if err := bad.Run(context.Background()); err == nil {
		t.Error("unknown policy accepted")
	}
	bad = &Experiment{Apps: []string{"nope"}, Policies: []string{"LAS"}, Scale: apps.Tiny}
	if err := bad.Run(context.Background()); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestExperimentDefaultAppsAllBenchmarks(t *testing.T) {
	e := &Experiment{Policies: []string{"LAS"}, Scale: apps.Tiny}
	cells, err := e.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(apps.Names()) {
		t.Fatalf("%d cells for nil Apps, want %d", len(cells), len(apps.Names()))
	}
}

// TestExperimentMatchesSequential pins the load-bearing determinism claim:
// the pooled experiment delivers results in canonical order, so any sink
// aggregation equals a one-worker (fully sequential) evaluation.
func TestExperimentMatchesSequential(t *testing.T) {
	grid := func(workers int) *Experiment {
		return &Experiment{
			Apps:     []string{"jacobi", "nstream"},
			Policies: []string{"LAS", "DFIFO", "RGP+LAS"},
			Scale:    apps.Tiny,
			Seeds:    2,
			Workers:  workers,
		}
	}
	collect := func(workers int) []CellResult {
		var got []CellResult
		sink := SinkFunc(func(res CellResult) error { got = append(got, res); return nil })
		if err := grid(workers).Run(context.Background(), sink); err != nil {
			t.Fatal(err)
		}
		return got
	}
	pooled, serial := collect(0), collect(1)
	if len(pooled) != len(serial) || len(pooled) != 2*3*2 {
		t.Fatalf("lengths %d vs %d", len(pooled), len(serial))
	}
	for i := range pooled {
		if pooled[i].Cell != serial[i].Cell {
			t.Fatalf("cell %d differs: %+v vs %+v", i, pooled[i].Cell, serial[i].Cell)
		}
		if pooled[i].Stats.Makespan != serial[i].Stats.Makespan {
			t.Fatalf("cell %d makespan %v vs %v", i, pooled[i].Stats.Makespan, serial[i].Stats.Makespan)
		}
	}
}

func TestExperimentSeedDerivation(t *testing.T) {
	opts := rt.DefaultOptions()
	opts.Seed = 7
	e := &Experiment{
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Runtime:  opts,
		Seeds:    3,
	}
	var seeds []uint64
	sink := SinkFunc(func(res CellResult) error {
		if res.Config.Runtime.Seed != res.Cell.Seed {
			t.Errorf("config seed %d != cell seed %d", res.Config.Runtime.Seed, res.Cell.Seed)
		}
		seeds = append(seeds, res.Cell.Seed)
		return nil
	})
	if err := e.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		if want := DeriveSeed(7, i); s != want {
			t.Errorf("replicate %d seed %d, want %d", i, s, want)
		}
	}
}

func TestExperimentVariantCannotOverrideSeed(t *testing.T) {
	e := &Experiment{
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Variants: []Variant{{Name: "rogue", Mutate: func(o *rt.Options) { o.Seed = 999 }}},
	}
	err := e.Run(context.Background(), SinkFunc(func(res CellResult) error {
		if res.Config.Runtime.Seed != DeriveSeed(rt.DefaultOptions().Seed, 0) {
			t.Errorf("variant overrode the derived seed: %d", res.Config.Runtime.Seed)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
}

// nopObserver is a minimal rt.Observer for option-plumbing tests.
type nopObserver struct{}

func (nopObserver) TaskStart(*rt.Task) {}
func (nopObserver) TaskEnd(*rt.Task)   {}

func TestExperimentObserverOnlyRuntimeKeepsDefaults(t *testing.T) {
	e := &Experiment{
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Runtime:  rt.Options{Observer: nopObserver{}},
		Workers:  1,
	}
	def := rt.DefaultOptions()
	err := e.Run(context.Background(), SinkFunc(func(res CellResult) error {
		got := res.Config.Runtime
		if got.Observer == nil {
			t.Error("observer dropped")
		}
		if got.WindowSize != def.WindowSize || got.Steal != def.Steal ||
			got.StealThreshold != def.StealThreshold ||
			got.PartitionCostPerTask != def.PartitionCostPerTask {
			t.Errorf("observer-only Runtime lost defaults: %+v", got)
		}
		if got.Seed != DeriveSeed(def.Seed, 0) {
			t.Errorf("observer-only Runtime seed %d", got.Seed)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := &Experiment{
		Apps:     apps.Names(),
		Policies: []string{"LAS", "DFIFO", "RGP+LAS"},
		Scale:    apps.Tiny,
		Seeds:    4,
		Workers:  2,
	}
	total := len(apps.Names()) * 3 * 4
	delivered := 0
	e.Progress = func(done, tot int, res CellResult) {
		delivered = done
		if tot != total {
			t.Errorf("total %d, want %d", tot, total)
		}
		cancel() // stop after the first in-order delivery
	}
	err := e.Run(ctx, SinkFunc(func(CellResult) error { return nil }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered == 0 || delivered >= total {
		t.Fatalf("delivered %d of %d cells after cancellation", delivered, total)
	}
}

func TestExperimentSinkErrorAborts(t *testing.T) {
	e := &Experiment{
		Apps:     []string{"jacobi", "nstream"},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Seeds:    4,
	}
	boom := errors.New("boom")
	calls := 0
	err := e.Run(context.Background(), SinkFunc(func(CellResult) error { calls++; return boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after erroring", calls)
	}
}

func TestExperimentProgressInOrder(t *testing.T) {
	e := &Experiment{
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS", "DFIFO"},
		Scale:    apps.Tiny,
		Seeds:    2,
	}
	last := -1
	e.Progress = func(done, total int, res CellResult) {
		if res.Cell.Index != last+1 {
			t.Errorf("progress out of order: index %d after %d", res.Cell.Index, last)
		}
		last = res.Cell.Index
		if done != last+1 || total != 4 {
			t.Errorf("done/total = %d/%d at index %d", done, total, last)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Fatalf("last index %d", last)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != 1 || DeriveSeed(1, 3) != 3001 || DeriveSeed(42, 2) != 2042 {
		t.Fatalf("DeriveSeed formula drifted: %d %d %d",
			DeriveSeed(1, 0), DeriveSeed(1, 3), DeriveSeed(42, 2))
	}
}

// TestFigure1MatchesManualExperiment pins Figure1 as a pure declaration:
// building the same experiment and table by hand yields the same cells.
func TestFigure1MatchesManualExperiment(t *testing.T) {
	opt := DefaultFigure1Options()
	opt.Scale = apps.Tiny
	opt.Seeds = 1
	opt.Apps = []string{"jacobi", "cg"}
	tb, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	table := Figure1Table(opt)
	if err := Figure1Experiment(opt).Run(context.Background(), table); err != nil {
		t.Fatal(err)
	}
	want := table.Table()
	for _, row := range want.Rows() {
		for _, col := range want.Columns {
			if tb.Get(row, col) != want.Get(row, col) {
				t.Errorf("cell (%s,%s): %v vs %v", row, col, tb.Get(row, col), want.Get(row, col))
			}
		}
	}
}
