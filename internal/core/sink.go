package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"numadag/internal/metrics"
)

// CheckpointableSink is the optional capability of a Sink that can
// serialize its aggregation progress and restore it later — the hook behind
// resumable sweeps. CheckpointState returns a deterministic snapshot of
// everything the sink has absorbed so far; RestoreState, called on a
// freshly-constructed sink with identical options before any Emit, makes it
// bit-identical to the sink the state was captured from. Sinks that stream
// records straight through (JSONL, CSV) need no checkpoint — their state is
// the bytes already written — so they deliberately do not implement this.
type CheckpointableSink interface {
	Sink
	CheckpointState() ([]byte, error)
	RestoreState([]byte) error
}

// MergeableSink is the optional capability of a Sink that can absorb
// another sink's partial aggregation — the hook behind sharded sweeps,
// where each shard feeds a disjoint subset of the grid into its own sink
// and the partials are recombined afterwards. Merging must be
// deterministic: feeding N disjoint canonical-order streams into N sinks
// and merging them yields exactly the sink one canonical stream would have
// produced. TableSink implements it (means and the geomean recombine
// exactly from per-(row,col) sums); metrics.Histogram merges the same way
// underneath cluster.Stats. A sink that is neither Checkpointable nor
// Mergeable still works everywhere a Sink is accepted — capabilities are
// discovered by type assertion, so existing third-party sinks compile and
// run unchanged.
type MergeableSink interface {
	Sink
	// MergeSink folds other (a sink of the same concrete type and options,
	// fed a disjoint cell subset) into the receiver. Called before Close on
	// both sinks.
	MergeSink(other Sink) error
}

// Norm selects how a TableSink turns per-cell mean makespans into table
// values.
type Norm int

const (
	// NormRaw reports the mean makespan itself (simulated ns).
	NormRaw Norm = iota
	// NormSpeedup reports baseline/mean — "speedup over the baseline",
	// higher is better (the Figure-1 axis).
	NormSpeedup
	// NormRatio reports mean/baseline — lower is better (the partitioner
	// ablation's "normalized to full" axis).
	NormRatio
	// NormBest reports mean divided by the row's minimum mean (the window
	// sweep's "normalized to best" axis). No baseline is involved.
	NormBest
)

// TableOptions declares the aggregation a TableSink performs.
type TableOptions struct {
	// Title becomes the rendered table's title.
	Title string
	// Row and Col map a cell to its table coordinates. Defaults: Row is
	// the app name, Col the policy spec. Replicates of the same (row, col)
	// are averaged (arithmetic mean of makespans).
	Row func(Cell) string
	Col func(Cell) string
	// Columns fixes the column order; nil means first-seen order.
	// Baseline-only columns (see Baseline) never appear either way.
	Columns []string
	// Norm selects the value transformation.
	Norm Norm
	// Baseline marks cells that feed the per-row reference instead of a
	// column of their own (e.g. the LAS runs of Figure 1). The reference
	// for a measured column is the baseline mean aggregated under the same
	// column name if one exists, otherwise the row's single baseline value.
	Baseline func(Cell) bool
	// BaselineColumn names an ordinary (kept) column as the reference —
	// the partitioner sweep's "full" column, which then reads 1.0.
	BaselineColumn string
	// Geomean appends a "geomean" row (geometric mean per column).
	Geomean bool
}

// TableSink aggregates streaming cell results into a metrics.Table:
// arithmetic-mean makespans per (row, column), then the configured
// normalization (speedup over a baseline, ratio to a reference column,
// ratio to the row's best) and an optional geometric-mean row.
type TableSink struct {
	opt  TableOptions
	rows []string
	cols []string
	seen map[[2]string]bool
	// rowAt and colAt record the smallest Cell.Index that created each row
	// and first-seen column. Within one canonical stream first-seen order
	// and ascending first-index order coincide; keeping the indices is what
	// lets MergeSink recombine per-shard partials into exactly the order
	// one unsharded stream would have produced.
	rowAt map[string]int
	colAt map[string]int
	sum   map[[2]string]float64
	n     map[[2]string]int
	bsum  map[[2]string]float64
	bn    map[[2]string]int
	tb    *metrics.Table
}

// NewTableSink creates a table aggregator.
func NewTableSink(opt TableOptions) *TableSink {
	if opt.Row == nil {
		opt.Row = func(c Cell) string { return c.App }
	}
	if opt.Col == nil {
		opt.Col = func(c Cell) string { return c.Policy }
	}
	return &TableSink{
		opt:   opt,
		seen:  make(map[[2]string]bool),
		rowAt: make(map[string]int),
		colAt: make(map[string]int),
		sum:   make(map[[2]string]float64),
		n:     make(map[[2]string]int),
		bsum:  make(map[[2]string]float64),
		bn:    make(map[[2]string]int),
	}
}

// Emit implements Sink.
func (t *TableSink) Emit(res CellResult) error {
	row, col := t.opt.Row(res.Cell), t.opt.Col(res.Cell)
	if !t.seen[[2]string{row, ""}] {
		t.seen[[2]string{row, ""}] = true
		t.rows = append(t.rows, row)
		t.rowAt[row] = res.Cell.Index
	}
	v := float64(res.Stats.Makespan)
	if t.opt.Baseline != nil && t.opt.Baseline(res.Cell) {
		t.bsum[[2]string{row, col}] += v
		t.bn[[2]string{row, col}]++
		return nil
	}
	if t.opt.Columns == nil && !t.seen[[2]string{"", col}] {
		t.seen[[2]string{"", col}] = true
		t.cols = append(t.cols, col)
		t.colAt[col] = res.Cell.Index
	}
	t.sum[[2]string{row, col}] += v
	t.n[[2]string{row, col}]++
	return nil
}

// tableEntry is one (row, col) accumulator of the checkpoint encoding.
type tableEntry struct {
	Row  string  `json:"row"`
	Col  string  `json:"col"`
	Sum  float64 `json:"sum,omitempty"`
	N    int     `json:"n,omitempty"`
	BSum float64 `json:"bsum,omitempty"`
	BN   int     `json:"bn,omitempty"`
}

// tableState is the serialized form of a TableSink's progress. Only data is
// captured — the options (including the Row/Col/Baseline funcs) are the
// constructor's job and must match on restore.
type tableState struct {
	Version int            `json:"version"`
	Rows    []string       `json:"rows"`
	Cols    []string       `json:"cols"`
	RowAt   map[string]int `json:"row_at"`
	ColAt   map[string]int `json:"col_at"`
	Entries []tableEntry   `json:"entries"`
}

// CheckpointState implements CheckpointableSink: a deterministic snapshot
// of the accumulated sums (entries sorted by row, then column).
func (t *TableSink) CheckpointState() ([]byte, error) {
	keys := make(map[[2]string]bool)
	for k := range t.sum {
		keys[k] = true
	}
	for k := range t.bsum {
		keys[k] = true
	}
	sorted := make([][2]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	st := tableState{
		Version: 1,
		Rows:    t.rows,
		Cols:    t.cols,
		RowAt:   t.rowAt,
		ColAt:   t.colAt,
	}
	for _, k := range sorted {
		st.Entries = append(st.Entries, tableEntry{
			Row: k[0], Col: k[1],
			Sum: t.sum[k], N: t.n[k],
			BSum: t.bsum[k], BN: t.bn[k],
		})
	}
	return json.Marshal(st)
}

// RestoreState implements CheckpointableSink. It must be called on a sink
// constructed with the same TableOptions, before any Emit.
func (t *TableSink) RestoreState(data []byte) error {
	if len(t.sum) != 0 || len(t.bsum) != 0 || len(t.rows) != 0 {
		return fmt.Errorf("core: TableSink.RestoreState on a non-empty sink")
	}
	var st tableState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: table checkpoint: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("core: table checkpoint version %d, want 1", st.Version)
	}
	t.rows = st.Rows
	t.cols = st.Cols
	for _, r := range st.Rows {
		t.seen[[2]string{r, ""}] = true
	}
	for _, c := range st.Cols {
		t.seen[[2]string{"", c}] = true
	}
	if st.RowAt != nil {
		t.rowAt = st.RowAt
	}
	if st.ColAt != nil {
		t.colAt = st.ColAt
	}
	for _, e := range st.Entries {
		k := [2]string{e.Row, e.Col}
		if e.N > 0 {
			t.sum[k] = e.Sum
			t.n[k] = e.N
		}
		if e.BN > 0 {
			t.bsum[k] = e.BSum
			t.bn[k] = e.BN
		}
	}
	return nil
}

// MergeSink implements MergeableSink: it folds another TableSink — same
// options, fed a disjoint subset of the same grid — into the receiver.
// Accumulator sums add exactly, and row/column order is recombined by each
// name's first cell index, so the merged table is identical to one sink
// having seen the full canonical stream.
func (t *TableSink) MergeSink(other Sink) error {
	o, ok := other.(*TableSink)
	if !ok {
		return fmt.Errorf("core: TableSink.MergeSink: cannot merge %T", other)
	}
	if o.opt.Norm != t.opt.Norm || o.opt.Title != t.opt.Title ||
		o.opt.BaselineColumn != t.opt.BaselineColumn || o.opt.Geomean != t.opt.Geomean {
		return fmt.Errorf("core: TableSink.MergeSink: option mismatch")
	}
	t.rows = mergeByFirstIndex(t.rows, o.rows, t.rowAt, o.rowAt)
	t.cols = mergeByFirstIndex(t.cols, o.cols, t.colAt, o.colAt)
	for _, r := range t.rows {
		t.seen[[2]string{r, ""}] = true
	}
	for _, c := range t.cols {
		t.seen[[2]string{"", c}] = true
	}
	for k, v := range o.sum {
		t.sum[k] += v
		t.n[k] += o.n[k]
	}
	for k, v := range o.bsum {
		t.bsum[k] += v
		t.bn[k] += o.bn[k]
	}
	return nil
}

// mergeByFirstIndex combines two first-seen-ordered name lists into the
// order one combined canonical stream would have produced: ascending by
// each name's smallest cell index (a stable sort keeps receiver-then-other
// order on ties, which only synthetic streams with duplicate indices can
// produce). at is updated in place with the combined minima.
func mergeByFirstIndex(a, b []string, at, oat map[string]int) []string {
	inA := make(map[string]bool, len(a))
	for _, s := range a {
		inA[s] = true
	}
	merged := append(make([]string, 0, len(a)+len(b)), a...)
	for _, s := range b {
		if !inA[s] {
			at[s] = oat[s]
			merged = append(merged, s)
		} else if oat[s] < at[s] {
			at[s] = oat[s]
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return at[merged[i]] < at[merged[j]] })
	return merged
}

// Close implements Sink: it builds the table.
func (t *TableSink) Close() error {
	cols := t.opt.Columns
	if cols == nil {
		cols = t.cols
	}
	// A fixed column list must cover every measured cell: silently dropping
	// a mis-mapped column would make a truncated table look complete.
	if t.opt.Columns != nil {
		known := make(map[string]bool, len(cols))
		for _, c := range cols {
			known[c] = true
		}
		for k, n := range t.n {
			if n > 0 && !known[k[1]] {
				return fmt.Errorf("core: table %q: measured cells map to column %q, not in Columns %v",
					t.opt.Title, k[1], cols)
			}
		}
	}
	tb := metrics.NewTable(t.opt.Title, cols...)
	for _, row := range t.rows {
		best := math.Inf(1)
		if t.opt.Norm == NormBest {
			for _, col := range cols {
				if n := t.n[[2]string{row, col}]; n > 0 {
					if m := t.sum[[2]string{row, col}] / float64(n); m < best {
						best = m
					}
				}
			}
		}
		for _, col := range cols {
			n := t.n[[2]string{row, col}]
			if n == 0 {
				continue
			}
			mean := t.sum[[2]string{row, col}] / float64(n)
			var v float64
			switch t.opt.Norm {
			case NormRaw:
				v = mean
			case NormSpeedup, NormRatio:
				ref, err := t.reference(row, col)
				if err != nil {
					return err
				}
				if t.opt.Norm == NormSpeedup {
					v = metrics.Speedup(ref, mean)
				} else {
					v = mean / ref
				}
			case NormBest:
				v = mean / best
			default:
				return fmt.Errorf("core: unknown Norm %d", t.opt.Norm)
			}
			tb.Set(row, col, v)
		}
	}
	if t.opt.Geomean {
		for _, col := range cols {
			tb.Set("geomean", col, metrics.GeoMean(tb.ColumnValues(col)))
		}
	}
	t.tb = tb
	return nil
}

// reference resolves the baseline mean for one measured (row, col) cell.
func (t *TableSink) reference(row, col string) (float64, error) {
	if t.opt.Baseline != nil {
		if n := t.bn[[2]string{row, col}]; n > 0 {
			return t.bsum[[2]string{row, col}] / float64(n), nil
		}
		// Fall back to the row's single baseline column, if unambiguous.
		var ref float64
		found := 0
		for k, n := range t.bn {
			if k[0] == row && n > 0 {
				ref = t.bsum[k] / float64(n)
				found++
			}
		}
		switch found {
		case 1:
			return ref, nil
		case 0:
			return 0, fmt.Errorf("core: table %q: row %q has no baseline cells", t.opt.Title, row)
		default:
			return 0, fmt.Errorf("core: table %q: row %q has %d baseline columns, none named %q",
				t.opt.Title, row, found, col)
		}
	}
	if t.opt.BaselineColumn != "" {
		if n := t.n[[2]string{row, t.opt.BaselineColumn}]; n > 0 {
			return t.sum[[2]string{row, t.opt.BaselineColumn}] / float64(n), nil
		}
		return 0, fmt.Errorf("core: table %q: row %q missing baseline column %q",
			t.opt.Title, row, t.opt.BaselineColumn)
	}
	return 0, fmt.Errorf("core: table %q: Norm needs Baseline or BaselineColumn", t.opt.Title)
}

// Table returns the aggregated table; valid after Close.
func (t *TableSink) Table() *metrics.Table { return t.tb }

// cellRecord is the flat, machine-readable form of one cell result shared
// by the JSONL and CSV sinks.
type cellRecord struct {
	Index         int     `json:"index"`
	App           string  `json:"app"`
	Policy        string  `json:"policy"`
	Machine       string  `json:"machine"`
	Variant       string  `json:"variant,omitempty"`
	Replicate     int     `json:"replicate"`
	Seed          uint64  `json:"seed"`
	MakespanNs    int64   `json:"makespan_ns"`
	Tasks         int     `json:"tasks"`
	LocalBytes    int64   `json:"local_bytes"`
	RemoteBytes   int64   `json:"remote_bytes"`
	RemoteRatio   float64 `json:"remote_ratio"`
	CutBytes      int64   `json:"cut_bytes"`
	LoadImbalance float64 `json:"load_imbalance"`
	Steals        int     `json:"steals"`
	Deferred      int     `json:"deferred"`
}

func newCellRecord(res CellResult) cellRecord {
	return cellRecord{
		Index:         res.Cell.Index,
		App:           res.Cell.App,
		Policy:        res.Cell.Policy,
		Machine:       res.Cell.Machine,
		Variant:       res.Cell.Variant,
		Replicate:     res.Cell.Replicate,
		Seed:          res.Cell.Seed,
		MakespanNs:    int64(res.Stats.Makespan),
		Tasks:         res.Stats.TasksRun,
		LocalBytes:    res.Stats.LocalBytes,
		RemoteBytes:   res.Stats.RemoteBytes,
		RemoteRatio:   res.Stats.RemoteRatio(),
		CutBytes:      res.Stats.CutBytes,
		LoadImbalance: res.Stats.LoadImbalance,
		Steals:        res.Stats.Steals,
		Deferred:      res.Stats.Deferred,
	}
}

// JSONLSink streams one JSON object per cell result — the machine-readable
// trajectory of a sweep, consumable while the experiment is still running.
//
// Every record is pushed through to the underlying writer as it lands: when
// w buffers (it implements Flush() error, like a bufio.Writer), Emit
// flushes after each line, so a crash mid-sweep loses at most the record
// being written — never a buffered tail. Resume journals are built on this
// property. For durability against machine (not just process) loss, point
// Sync at the backing file's fsync.
type JSONLSink struct {
	enc   *json.Encoder
	flush func() error
	// Sync, when non-nil, is called after every record reaches the writer
	// (e.g. (*os.File).Sync). It trades throughput for crash durability;
	// leave it nil for ordinary trajectory files.
	Sync func() error
}

// NewJSONLSink creates a JSON-lines sink over w. Buffered writers are
// flushed per record (see the type comment).
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if f, ok := w.(interface{ Flush() error }); ok {
		s.flush = f.Flush
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(res CellResult) error {
	if err := s.enc.Encode(newCellRecord(res)); err != nil {
		return err
	}
	if s.flush != nil {
		if err := s.flush(); err != nil {
			return err
		}
	}
	if s.Sync != nil {
		return s.Sync()
	}
	return nil
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if s.flush != nil {
		return s.flush()
	}
	return nil
}

// csvHeader is the CSVSink column order (matches cellRecord field order).
var csvHeader = []string{
	"index", "app", "policy", "machine", "variant", "replicate", "seed",
	"makespan_ns", "tasks", "local_bytes", "remote_bytes", "remote_ratio",
	"cut_bytes", "load_imbalance", "steals", "deferred",
}

// CSVSink streams one CSV row per cell result, writing the header first.
type CSVSink struct {
	w      *csv.Writer
	wroteH bool
}

// NewCSVSink creates a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: csv.NewWriter(w)} }

// Emit implements Sink.
func (s *CSVSink) Emit(res CellResult) error {
	if !s.wroteH {
		s.wroteH = true
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
	}
	r := newCellRecord(res)
	rec := []string{
		strconv.Itoa(r.Index), r.App, r.Policy, r.Machine, r.Variant,
		strconv.Itoa(r.Replicate), strconv.FormatUint(r.Seed, 10),
		strconv.FormatInt(r.MakespanNs, 10), strconv.Itoa(r.Tasks),
		strconv.FormatInt(r.LocalBytes, 10), strconv.FormatInt(r.RemoteBytes, 10),
		strconv.FormatFloat(r.RemoteRatio, 'f', 6, 64),
		strconv.FormatInt(r.CutBytes, 10),
		strconv.FormatFloat(r.LoadImbalance, 'f', 6, 64),
		strconv.Itoa(r.Steals), strconv.Itoa(r.Deferred),
	}
	if err := s.w.Write(rec); err != nil {
		return err
	}
	s.w.Flush() // streaming: each row is visible as soon as it lands
	return s.w.Error()
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// SinkFunc adapts a function to the Sink interface (Close is a no-op).
type SinkFunc func(CellResult) error

// Emit implements Sink.
func (f SinkFunc) Emit(res CellResult) error { return f(res) }

// Close implements Sink.
func (SinkFunc) Close() error { return nil }
