package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"numadag/internal/metrics"
)

// Norm selects how a TableSink turns per-cell mean makespans into table
// values.
type Norm int

const (
	// NormRaw reports the mean makespan itself (simulated ns).
	NormRaw Norm = iota
	// NormSpeedup reports baseline/mean — "speedup over the baseline",
	// higher is better (the Figure-1 axis).
	NormSpeedup
	// NormRatio reports mean/baseline — lower is better (the partitioner
	// ablation's "normalized to full" axis).
	NormRatio
	// NormBest reports mean divided by the row's minimum mean (the window
	// sweep's "normalized to best" axis). No baseline is involved.
	NormBest
)

// TableOptions declares the aggregation a TableSink performs.
type TableOptions struct {
	// Title becomes the rendered table's title.
	Title string
	// Row and Col map a cell to its table coordinates. Defaults: Row is
	// the app name, Col the policy spec. Replicates of the same (row, col)
	// are averaged (arithmetic mean of makespans).
	Row func(Cell) string
	Col func(Cell) string
	// Columns fixes the column order; nil means first-seen order.
	// Baseline-only columns (see Baseline) never appear either way.
	Columns []string
	// Norm selects the value transformation.
	Norm Norm
	// Baseline marks cells that feed the per-row reference instead of a
	// column of their own (e.g. the LAS runs of Figure 1). The reference
	// for a measured column is the baseline mean aggregated under the same
	// column name if one exists, otherwise the row's single baseline value.
	Baseline func(Cell) bool
	// BaselineColumn names an ordinary (kept) column as the reference —
	// the partitioner sweep's "full" column, which then reads 1.0.
	BaselineColumn string
	// Geomean appends a "geomean" row (geometric mean per column).
	Geomean bool
}

// TableSink aggregates streaming cell results into a metrics.Table:
// arithmetic-mean makespans per (row, column), then the configured
// normalization (speedup over a baseline, ratio to a reference column,
// ratio to the row's best) and an optional geometric-mean row.
type TableSink struct {
	opt  TableOptions
	rows []string
	cols []string
	seen map[[2]string]bool
	sum  map[[2]string]float64
	n    map[[2]string]int
	bsum map[[2]string]float64
	bn   map[[2]string]int
	tb   *metrics.Table
}

// NewTableSink creates a table aggregator.
func NewTableSink(opt TableOptions) *TableSink {
	if opt.Row == nil {
		opt.Row = func(c Cell) string { return c.App }
	}
	if opt.Col == nil {
		opt.Col = func(c Cell) string { return c.Policy }
	}
	return &TableSink{
		opt:  opt,
		seen: make(map[[2]string]bool),
		sum:  make(map[[2]string]float64),
		n:    make(map[[2]string]int),
		bsum: make(map[[2]string]float64),
		bn:   make(map[[2]string]int),
	}
}

// Emit implements Sink.
func (t *TableSink) Emit(res CellResult) error {
	row, col := t.opt.Row(res.Cell), t.opt.Col(res.Cell)
	if !t.seen[[2]string{row, ""}] {
		t.seen[[2]string{row, ""}] = true
		t.rows = append(t.rows, row)
	}
	v := float64(res.Stats.Makespan)
	if t.opt.Baseline != nil && t.opt.Baseline(res.Cell) {
		t.bsum[[2]string{row, col}] += v
		t.bn[[2]string{row, col}]++
		return nil
	}
	if t.opt.Columns == nil && !t.seen[[2]string{"", col}] {
		t.seen[[2]string{"", col}] = true
		t.cols = append(t.cols, col)
	}
	t.sum[[2]string{row, col}] += v
	t.n[[2]string{row, col}]++
	return nil
}

// Close implements Sink: it builds the table.
func (t *TableSink) Close() error {
	cols := t.opt.Columns
	if cols == nil {
		cols = t.cols
	}
	// A fixed column list must cover every measured cell: silently dropping
	// a mis-mapped column would make a truncated table look complete.
	if t.opt.Columns != nil {
		known := make(map[string]bool, len(cols))
		for _, c := range cols {
			known[c] = true
		}
		for k, n := range t.n {
			if n > 0 && !known[k[1]] {
				return fmt.Errorf("core: table %q: measured cells map to column %q, not in Columns %v",
					t.opt.Title, k[1], cols)
			}
		}
	}
	tb := metrics.NewTable(t.opt.Title, cols...)
	for _, row := range t.rows {
		best := math.Inf(1)
		if t.opt.Norm == NormBest {
			for _, col := range cols {
				if n := t.n[[2]string{row, col}]; n > 0 {
					if m := t.sum[[2]string{row, col}] / float64(n); m < best {
						best = m
					}
				}
			}
		}
		for _, col := range cols {
			n := t.n[[2]string{row, col}]
			if n == 0 {
				continue
			}
			mean := t.sum[[2]string{row, col}] / float64(n)
			var v float64
			switch t.opt.Norm {
			case NormRaw:
				v = mean
			case NormSpeedup, NormRatio:
				ref, err := t.reference(row, col)
				if err != nil {
					return err
				}
				if t.opt.Norm == NormSpeedup {
					v = metrics.Speedup(ref, mean)
				} else {
					v = mean / ref
				}
			case NormBest:
				v = mean / best
			default:
				return fmt.Errorf("core: unknown Norm %d", t.opt.Norm)
			}
			tb.Set(row, col, v)
		}
	}
	if t.opt.Geomean {
		for _, col := range cols {
			tb.Set("geomean", col, metrics.GeoMean(tb.ColumnValues(col)))
		}
	}
	t.tb = tb
	return nil
}

// reference resolves the baseline mean for one measured (row, col) cell.
func (t *TableSink) reference(row, col string) (float64, error) {
	if t.opt.Baseline != nil {
		if n := t.bn[[2]string{row, col}]; n > 0 {
			return t.bsum[[2]string{row, col}] / float64(n), nil
		}
		// Fall back to the row's single baseline column, if unambiguous.
		var ref float64
		found := 0
		for k, n := range t.bn {
			if k[0] == row && n > 0 {
				ref = t.bsum[k] / float64(n)
				found++
			}
		}
		switch found {
		case 1:
			return ref, nil
		case 0:
			return 0, fmt.Errorf("core: table %q: row %q has no baseline cells", t.opt.Title, row)
		default:
			return 0, fmt.Errorf("core: table %q: row %q has %d baseline columns, none named %q",
				t.opt.Title, row, found, col)
		}
	}
	if t.opt.BaselineColumn != "" {
		if n := t.n[[2]string{row, t.opt.BaselineColumn}]; n > 0 {
			return t.sum[[2]string{row, t.opt.BaselineColumn}] / float64(n), nil
		}
		return 0, fmt.Errorf("core: table %q: row %q missing baseline column %q",
			t.opt.Title, row, t.opt.BaselineColumn)
	}
	return 0, fmt.Errorf("core: table %q: Norm needs Baseline or BaselineColumn", t.opt.Title)
}

// Table returns the aggregated table; valid after Close.
func (t *TableSink) Table() *metrics.Table { return t.tb }

// cellRecord is the flat, machine-readable form of one cell result shared
// by the JSONL and CSV sinks.
type cellRecord struct {
	Index         int     `json:"index"`
	App           string  `json:"app"`
	Policy        string  `json:"policy"`
	Machine       string  `json:"machine"`
	Variant       string  `json:"variant,omitempty"`
	Replicate     int     `json:"replicate"`
	Seed          uint64  `json:"seed"`
	MakespanNs    int64   `json:"makespan_ns"`
	Tasks         int     `json:"tasks"`
	LocalBytes    int64   `json:"local_bytes"`
	RemoteBytes   int64   `json:"remote_bytes"`
	RemoteRatio   float64 `json:"remote_ratio"`
	CutBytes      int64   `json:"cut_bytes"`
	LoadImbalance float64 `json:"load_imbalance"`
	Steals        int     `json:"steals"`
	Deferred      int     `json:"deferred"`
}

func newCellRecord(res CellResult) cellRecord {
	return cellRecord{
		Index:         res.Cell.Index,
		App:           res.Cell.App,
		Policy:        res.Cell.Policy,
		Machine:       res.Cell.Machine,
		Variant:       res.Cell.Variant,
		Replicate:     res.Cell.Replicate,
		Seed:          res.Cell.Seed,
		MakespanNs:    int64(res.Stats.Makespan),
		Tasks:         res.Stats.TasksRun,
		LocalBytes:    res.Stats.LocalBytes,
		RemoteBytes:   res.Stats.RemoteBytes,
		RemoteRatio:   res.Stats.RemoteRatio(),
		CutBytes:      res.Stats.CutBytes,
		LoadImbalance: res.Stats.LoadImbalance,
		Steals:        res.Stats.Steals,
		Deferred:      res.Stats.Deferred,
	}
}

// JSONLSink streams one JSON object per cell result — the machine-readable
// trajectory of a sweep, consumable while the experiment is still running.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink creates a JSON-lines sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(res CellResult) error { return s.enc.Encode(newCellRecord(res)) }

// Close implements Sink.
func (s *JSONLSink) Close() error { return nil }

// csvHeader is the CSVSink column order (matches cellRecord field order).
var csvHeader = []string{
	"index", "app", "policy", "machine", "variant", "replicate", "seed",
	"makespan_ns", "tasks", "local_bytes", "remote_bytes", "remote_ratio",
	"cut_bytes", "load_imbalance", "steals", "deferred",
}

// CSVSink streams one CSV row per cell result, writing the header first.
type CSVSink struct {
	w      *csv.Writer
	wroteH bool
}

// NewCSVSink creates a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: csv.NewWriter(w)} }

// Emit implements Sink.
func (s *CSVSink) Emit(res CellResult) error {
	if !s.wroteH {
		s.wroteH = true
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
	}
	r := newCellRecord(res)
	rec := []string{
		strconv.Itoa(r.Index), r.App, r.Policy, r.Machine, r.Variant,
		strconv.Itoa(r.Replicate), strconv.FormatUint(r.Seed, 10),
		strconv.FormatInt(r.MakespanNs, 10), strconv.Itoa(r.Tasks),
		strconv.FormatInt(r.LocalBytes, 10), strconv.FormatInt(r.RemoteBytes, 10),
		strconv.FormatFloat(r.RemoteRatio, 'f', 6, 64),
		strconv.FormatInt(r.CutBytes, 10),
		strconv.FormatFloat(r.LoadImbalance, 'f', 6, 64),
		strconv.Itoa(r.Steals), strconv.Itoa(r.Deferred),
	}
	if err := s.w.Write(rec); err != nil {
		return err
	}
	s.w.Flush() // streaming: each row is visible as soon as it lands
	return s.w.Error()
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// SinkFunc adapts a function to the Sink interface (Close is a no-op).
type SinkFunc func(CellResult) error

// Emit implements Sink.
func (f SinkFunc) Emit(res CellResult) error { return f(res) }

// Close implements Sink.
func (SinkFunc) Close() error { return nil }
