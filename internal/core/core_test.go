package core

import (
	"math"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
)

func TestNewPolicyKnownNames(t *testing.T) {
	for _, n := range []string{"DFIFO", "LAS", "EP", "RGP+LAS", "RGP", "Random"} {
		p, err := NewPolicy(n)
		if err != nil || p == nil {
			t.Errorf("NewPolicy(%q): %v", n, err)
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSingleConfig(t *testing.T) {
	res, err := Run(DefaultConfig("jacobi", "LAS", apps.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 || res.Stats.Makespan <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(DefaultConfig("nope", "LAS", apps.Tiny)); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Run(DefaultConfig("jacobi", "nope", apps.Tiny)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEveryAppUnderEveryPolicy(t *testing.T) {
	// Exhaustive integration grid: 8 apps x 7 policies at tiny scale, with
	// the schedule audit Run performs internally. This is the suite's
	// broadest correctness net.
	for _, app := range apps.Names() {
		for _, pol := range []string{"DFIFO", "LAS", "EP", "RGP+LAS", "RGP", "Random", "OSMigrate", "HEFT"} {
			app, pol := app, pol
			t.Run(app+"/"+pol, func(t *testing.T) {
				cfg := DefaultConfig(app, pol, apps.Tiny)
				cfg.Runtime.WindowSize = 16 // force several windows even at tiny scale
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Makespan <= 0 || res.Tasks == 0 {
					t.Fatalf("degenerate run: %+v", res.Stats)
				}
			})
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig("cg", "RGP+LAS", apps.Tiny)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(cfg)
	if a.Stats.Makespan != b.Stats.Makespan {
		t.Fatalf("same config, different makespans: %v vs %v", a.Stats.Makespan, b.Stats.Makespan)
	}
}

func TestFigure1SmallShape(t *testing.T) {
	// The load-bearing reproduction check at CI-friendly scale: directional
	// claims of the paper's Figure 1 must hold. Absolute factors are checked
	// loosely; EXPERIMENTS.md records the paper-scale numbers.
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	opt := DefaultFigure1Options()
	opt.Scale = apps.Small
	opt.Seeds = 2
	tb, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 1. RGP+LAS wins on average (the headline 1.12x claim).
	rgp := tb.Get("geomean", "RGP+LAS")
	if !(rgp > 1.0) {
		t.Errorf("RGP+LAS geomean %.3f, want > 1.0", rgp)
	}
	if rgp > 2.0 {
		t.Errorf("RGP+LAS geomean %.3f implausibly high", rgp)
	}
	// 2. DFIFO loses on average, and badly on the bandwidth-bound apps.
	df := tb.Get("geomean", "DFIFO")
	if !(df < 1.0) {
		t.Errorf("DFIFO geomean %.3f, want < 1.0", df)
	}
	for _, app := range []string{"inthist", "nstream", "jacobi"} {
		if v := tb.Get(app, "DFIFO"); !(v < 0.95) {
			t.Errorf("DFIFO on %s = %.3f, want clearly < 1", app, v)
		}
	}
	// 3. EP is competitive with RGP+LAS (within a factor ~1.5 either way).
	ep := tb.Get("geomean", "EP")
	if ep/rgp > 1.6 || rgp/ep > 1.6 {
		t.Errorf("EP (%.3f) and RGP+LAS (%.3f) geomeans diverge too much", ep, rgp)
	}
	// 4. NStream is the big locality win for both EP and RGP+LAS.
	if v := tb.Get("nstream", "RGP+LAS"); !(v > 1.2) {
		t.Errorf("RGP+LAS on nstream = %.3f, want the paper's large win", v)
	}
	if v := tb.Get("nstream", "EP"); !(v > 1.1) {
		t.Errorf("EP on nstream = %.3f, want a large win", v)
	}
}

func TestFigure1RestrictedApps(t *testing.T) {
	opt := DefaultFigure1Options()
	opt.Scale = apps.Tiny
	opt.Seeds = 1
	opt.Apps = []string{"jacobi"}
	tb, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := tb.Rows()
	if len(rows) != 2 || rows[0] != "jacobi" || rows[1] != "geomean" {
		t.Fatalf("rows = %v", rows)
	}
	for _, pol := range []string{"DFIFO", "RGP+LAS", "EP"} {
		if math.IsNaN(tb.Get("jacobi", pol)) {
			t.Errorf("missing cell for %s", pol)
		}
	}
}

func TestFigure1SeedValidation(t *testing.T) {
	opt := DefaultFigure1Options()
	opt.Seeds = 0
	if _, err := Figure1(opt); err == nil {
		t.Error("zero seeds accepted")
	}
}

func TestUniformMachineShrinksPolicyGap(t *testing.T) {
	// Control experiment: on a NUMA-free machine the only thing separating
	// policies is queueing/load balance, so the spread between the best and
	// worst policy must be clearly smaller than on the bullion, where
	// locality dominates. This pins the simulator's policy gaps to NUMA
	// effects rather than scheduler artifacts.
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	spread := func(m machine.Config) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, pol := range []string{"LAS", "EP", "RGP+LAS", "DFIFO"} {
			cfg := DefaultConfig("jacobi", pol, apps.Small)
			cfg.Machine = m
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			v := float64(res.Stats.Makespan)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return hi / lo
	}
	uniform := spread(machine.Uniform(8, 4))
	bullion := spread(machine.BullionS16())
	if uniform >= bullion {
		t.Errorf("uniform spread %.3f not below bullion spread %.3f", uniform, bullion)
	}
	if uniform > 1.6 {
		t.Errorf("uniform machine separates policies too much: %.3f", uniform)
	}
}

func TestWindowSizeMatters(t *testing.T) {
	// Ablation A1 sanity: a tiny window (partition sees almost nothing)
	// must not beat a full-size window by much on a partitioning-friendly
	// app.
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	run := func(window int) float64 {
		cfg := DefaultConfig("nstream", "RGP+LAS", apps.Small)
		cfg.Runtime.WindowSize = window
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Stats.Makespan)
	}
	tiny, full := run(8), run(2048)
	if full > tiny*1.05 {
		t.Errorf("full window (%.0f) worse than tiny window (%.0f)", full, tiny)
	}
}
