package core

import (
	"testing"

	"numadag/internal/apps"
	"numadag/internal/rt"
	"numadag/internal/trace"
)

// countTasks is a minimal user observer: any non-nil Observer must keep the
// runtime out of the pool (the observer may retain *Task beyond the run).
type countTasks struct{ n int }

func (c *countTasks) TaskStart(*rt.Task) {}
func (c *countTasks) TaskEnd(*rt.Task)   { c.n++ }

// TestReleaseVsObserverContract pins the pooling rule tracing depends on:
// a plain run recycles its pooled runtime (rt.Releases advances), while a
// run with a Trace attacher or a user Observer must NOT — tracer hooks are
// undetachable and observers may hold tasks, so recycling either would leak
// one cell's instrumentation into the next cell's run.
func TestReleaseVsObserverContract(t *testing.T) {
	cfg := DefaultConfig("forkjoin?depth=3&fanout=2", "LAS", apps.Tiny)

	before := rt.Releases()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if rt.Releases() == before {
		t.Error("plain run did not recycle its pooled runtime")
	}

	traced := cfg
	traced.Trace = trace.NewTracer()
	before = rt.Releases()
	res, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Releases(); got != before {
		t.Errorf("traced run recycled %d pooled runtime(s); traced machines must bypass the pools", got-before)
	}
	if res.Tasks == 0 {
		t.Error("traced run produced no tasks")
	}

	observed := cfg
	obs := &countTasks{}
	observed.Runtime.Observer = obs
	before = rt.Releases()
	if _, err := Run(observed); err != nil {
		t.Fatal(err)
	}
	if got := rt.Releases(); got != before {
		t.Errorf("observed run recycled %d pooled runtime(s); observers may retain *Task", got-before)
	}
	if obs.n == 0 {
		t.Error("user observer saw no tasks")
	}

	// When both are configured, the user observer keeps the Observer slot
	// and the tracer still records via its machine-level hooks.
	both := cfg
	both.Trace = trace.NewTracer()
	both.TracePID = 1
	both.Runtime.Observer = &countTasks{}
	if _, err := Run(both); err != nil {
		t.Fatal(err)
	}
	if both.Trace.(*trace.Tracer).Spans() == 0 {
		t.Error("tracer recorded no spans when sharing the run with a user observer")
	}
}
