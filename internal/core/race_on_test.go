//go:build race

package core

// raceEnabled reports that this binary was built with the race detector,
// under which sync.Pool intentionally randomizes caching — pool-backed
// allocation gates would flake, so they skip themselves.
const raceEnabled = true
