package core

import (
	"sync"

	"numadag/internal/machine"
	"numadag/internal/sim"
)

// Machine/engine pooling. machine.New costs ~55 objects (engine, Net,
// resources, precomputed path tables) per run — the largest remaining
// per-run constant after the runtime pool (ROADMAP "finish the 0-alloc
// cell"). Machines for equal configs are interchangeable once Reset, so
// runWith draws them from per-config pools and returns them alongside
// r.Release.
//
// Pools are keyed by a comparable digest of the full Config — every scalar
// field verbatim plus an FNV-1a hash of the Distance matrix (the one
// non-comparable field). Two configs with equal digests build identical
// machines except under a 64-bit hash collision between distance matrices
// that agree on every other field; machine configs are a handful of presets
// plus occasional hand-built topologies, so the collision space is empty in
// practice. Computing the key allocates nothing: pool lookups stay off the
// allocs/op budget they exist to cut.

type machineKey struct {
	name           string
	sockets        int
	coresPerSocket int
	localLatency   sim.Time
	hopLatency     sim.Time
	memBandwidth   float64
	linkBandwidth  float64
	coreFlops      float64
	memParallelism float64
	distHash       uint64
}

func keyOf(cfg *machine.Config) machineKey {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	for _, row := range cfg.Distance {
		mix(uint64(len(row)))
		for _, d := range row {
			mix(uint64(d))
		}
	}
	return machineKey{
		name:           cfg.Name,
		sockets:        cfg.Sockets,
		coresPerSocket: cfg.CoresPerSocket,
		localLatency:   cfg.LocalLatency,
		hopLatency:     cfg.HopLatency,
		memBandwidth:   cfg.MemBandwidth,
		linkBandwidth:  cfg.LinkBandwidth,
		coreFlops:      cfg.CoreFlops,
		memParallelism: cfg.MemParallelism,
		distHash:       h,
	}
}

// machinePools maps machineKey -> *sync.Pool of *machine.Machine.
var machinePools sync.Map

// acquireMachine returns a reset machine for cfg, recycled when one is
// pooled and freshly constructed otherwise.
func acquireMachine(cfg machine.Config) *machine.Machine {
	key := keyOf(&cfg)
	p, ok := machinePools.Load(key)
	if !ok {
		p, _ = machinePools.LoadOrStore(key, &sync.Pool{})
	}
	if m, ok := p.(*sync.Pool).Get().(*machine.Machine); ok && m != nil {
		return m
	}
	return machine.New(cfg, sim.NewEngine())
}

// releaseMachine resets m and returns it to its config's pool. Callers must
// not touch m afterwards; anything still holding the machine (an Observer
// that captured it, a post-run utilization probe) means the run should skip
// the release and let the machine be garbage.
func releaseMachine(m *machine.Machine) {
	// A pooled machine must not park flush-worker goroutines (sync.Pool may
	// drop it at any GC, which would strand them forever); retire the pool
	// before Put. No-op for the common sequential engine. Re-acquirers that
	// want parallelism set it again — spawning n-1 goroutines is trivia next
	// to a run.
	m.Engine().SetParallelism(1)
	m.Reset()
	cfg := m.Config()
	if p, ok := machinePools.Load(keyOf(&cfg)); ok {
		p.(*sync.Pool).Put(m)
	}
}
