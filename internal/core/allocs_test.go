package core

import (
	"runtime/debug"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
)

// TestPlainCellSteadyStateAllocs pins the machine-pool contract on top of
// the runtime pool: once the per-config pools are warm, a full audited cell
// through Runner.Run — acquire machine, install cached snapshot, simulate,
// audit, release both — must not rebuild the machine (engine arena, Net,
// resources, path tables: ~55 objects) or the runtime. What remains is the
// genuinely per-run tail: policy construction, the escaping Result slices
// and a handful of audit scratch — measured 11 allocs/op for a plain LAS
// cell (44 for RGP, whose partitioner interior the ROADMAP still names
// open). The bound leaves headroom over 11 but sits far below the ~55 a
// rebuilt machine would cost again, so a pool regression trips it.
func TestPlainCellSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector")
	}
	rn := NewRunner(0)
	cfg := Config{
		App:     "jacobi",
		Scale:   apps.Tiny,
		Policy:  "LAS",
		Machine: machine.TwoSocketXeon(),
		Runtime: rt.DefaultOptions(),
	}
	cycle := func() {
		if _, err := rn.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		cycle() // warm the snapshot cache and the machine/runtime pools
	}
	// Pools are sync.Pools; disable GC so a collection mid-measure cannot
	// drop a warmed machine and charge its full reconstruction to one run.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const limit = 24
	if avg := testing.AllocsPerRun(20, cycle); avg > limit {
		t.Fatalf("plain cell allocates %.1f allocs/op in steady state, want <= %d", avg, limit)
	}
}
