package core

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/sim"
)

var update = flag.Bool("update", false, "rewrite sink golden files")

// goldenExperiment is the tiny fixed grid the sink goldens pin: 1 app x
// 2 policies x 2 seeds, sequential so the stream order is beyond doubt.
func goldenExperiment() *Experiment {
	return &Experiment{
		Name:     "golden",
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS", "DFIFO"},
		Scale:    apps.Tiny,
		Seeds:    2,
		Workers:  1,
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\ngot:\n%swant:\n%s", name, got, want)
	}
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenExperiment().Run(context.Background(), NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sink_golden.jsonl", buf.Bytes())
}

func TestCSVSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenExperiment().Run(context.Background(), NewCSVSink(&buf)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sink_golden.csv", buf.Bytes())
}

// simDur builds a sim.Time for synthetic cell results, so TableSink math
// is testable without simulation runs.
func simDur(n int64) sim.Time { return sim.Time(n) }

func TestTableSinkSpeedupWithBaselineCells(t *testing.T) {
	sink := NewTableSink(TableOptions{
		Norm:     NormSpeedup,
		Baseline: func(c Cell) bool { return c.Policy == "LAS" },
		Geomean:  true,
	})
	emit := func(app, pol string, rep int, mk int64) {
		res := CellResult{Cell: Cell{App: app, Policy: pol, Replicate: rep}}
		res.Stats.Makespan = simDur(mk)
		if err := sink.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	// app1: LAS mean 200, DFIFO mean 400 -> speedup 0.5.
	emit("app1", "LAS", 0, 100)
	emit("app1", "LAS", 1, 300)
	emit("app1", "DFIFO", 0, 400)
	emit("app1", "DFIFO", 1, 400)
	// app2: LAS 100, DFIFO 50 -> speedup 2.0.
	emit("app2", "LAS", 0, 100)
	emit("app2", "DFIFO", 0, 50)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tb := sink.Table()
	if got := tb.Get("app1", "DFIFO"); got != 0.5 {
		t.Errorf("app1 speedup %v", got)
	}
	if got := tb.Get("app2", "DFIFO"); got != 2.0 {
		t.Errorf("app2 speedup %v", got)
	}
	if got := tb.Get("geomean", "DFIFO"); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("geomean %v", got)
	}
	// The baseline never becomes a column.
	for _, c := range tb.Columns {
		if c == "LAS" {
			t.Error("baseline column leaked into the table")
		}
	}
}

func TestTableSinkRatioToColumn(t *testing.T) {
	sink := NewTableSink(TableOptions{
		Norm:           NormRatio,
		Columns:        []string{"full", "ablated"},
		BaselineColumn: "full",
	})
	for _, e := range []struct {
		pol string
		mk  int64
	}{{"full", 100}, {"ablated", 150}} {
		res := CellResult{Cell: Cell{App: "a", Policy: e.pol}}
		res.Stats.Makespan = simDur(e.mk)
		if err := sink.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tb := sink.Table()
	if tb.Get("a", "full") != 1.0 || tb.Get("a", "ablated") != 1.5 {
		t.Errorf("ratios %v %v", tb.Get("a", "full"), tb.Get("a", "ablated"))
	}
}

func TestTableSinkNormBest(t *testing.T) {
	sink := NewTableSink(TableOptions{
		Col:  func(c Cell) string { return c.Variant },
		Norm: NormBest,
	})
	for _, e := range []struct {
		v  string
		mk int64
	}{{"w=64", 300}, {"w=256", 200}, {"w=1024", 250}} {
		res := CellResult{Cell: Cell{App: "a", Variant: e.v}}
		res.Stats.Makespan = simDur(e.mk)
		if err := sink.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tb := sink.Table()
	if tb.Get("a", "w=256") != 1.0 || tb.Get("a", "w=64") != 1.5 || tb.Get("a", "w=1024") != 1.25 {
		t.Errorf("best-normalized row: %v %v %v",
			tb.Get("a", "w=64"), tb.Get("a", "w=256"), tb.Get("a", "w=1024"))
	}
}

func TestTableSinkUnknownColumnErrors(t *testing.T) {
	sink := NewTableSink(TableOptions{
		Norm:    NormRaw,
		Columns: []string{"known"},
		Col:     func(c Cell) string { return c.Variant }, // maps to "" for these cells
	})
	res := CellResult{Cell: Cell{App: "a", Policy: "LAS"}}
	res.Stats.Makespan = simDur(100)
	if err := sink.Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err == nil {
		t.Error("cell outside the fixed column list silently dropped")
	}
}

func TestTableSinkMissingBaselineErrors(t *testing.T) {
	sink := NewTableSink(TableOptions{
		Norm:     NormSpeedup,
		Baseline: func(c Cell) bool { return c.Policy == "LAS" },
	})
	res := CellResult{Cell: Cell{App: "a", Policy: "DFIFO"}}
	res.Stats.Makespan = simDur(100)
	if err := sink.Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err == nil {
		t.Error("missing baseline not reported")
	}
}
