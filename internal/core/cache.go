package core

import (
	"fmt"
	"sync"

	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

// snapshotCache memoizes built task graphs (rt.Snapshot) for one
// Experiment, keyed by (workload key, machine topology). Concurrent workers
// asking for the same key share a single build — the first caller runs it
// under the entry's once, the rest block on it — so an N-replicate sweep
// constructs each graph exactly once. The cache is bounded: beyond cap
// entries the oldest key is evicted (in-flight holders of an evicted entry
// are unaffected; they keep their reference).
type snapshotCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   []string
	hits    int
	misses  int
}

type cacheEntry struct {
	once sync.Once
	snap *rt.Snapshot
	err  error
}

func newSnapshotCache(capacity int) *snapshotCache {
	if capacity < 1 {
		capacity = 1
	}
	return &snapshotCache{cap: capacity, entries: make(map[string]*cacheEntry)}
}

// get returns the snapshot for key, building it at most once across
// concurrent callers.
func (c *snapshotCache) get(key string, build func() (*rt.Snapshot, error)) (*rt.Snapshot, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.snap, e.err = build() })
	return e.snap, e.err
}

// stats returns the hit/miss counters (test hook).
func (c *snapshotCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey identifies a built TDG: the workload key (canonical spec, scale,
// generator seed) plus the machine topology — expert placements and data
// distributions depend on the socket layout, so the same spec on a
// different machine is a different graph.
func cacheKey(w workload.Workload, mc machine.Config) string {
	return fmt.Sprintf("%s|%s/%dx%d", w.Key(), mc.Name, mc.Sockets, mc.CoresPerSocket)
}

// buildSnapshot prototypes the workload on a throwaway runtime and captures
// the result for installation into real runs.
func buildSnapshot(w workload.Workload, mc machine.Config) (*rt.Snapshot, error) {
	r, err := w.Instantiate(mc)
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", w.Spec, err)
	}
	snap, err := rt.Snap(r)
	if err != nil {
		return nil, err
	}
	// The snapshot copies task/region state and borrows only the TDG, which
	// Release does not recycle — the prototype runtime's scratch can go back
	// to the pool.
	r.Release()
	return snap, nil
}
