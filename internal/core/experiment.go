package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

// DeriveSeed is the single source of truth for replicate seeds across the
// whole evaluation: replicate r of a configuration whose base seed is b
// runs with seed b + 1000*r. Replicates are spaced 1000 apart so that
// derived partitioner seeds (which follow the runtime seed) never collide
// between replicates; every command and sweep must go through this formula
// rather than hard-coding its own.
func DeriveSeed(base uint64, replicate int) uint64 {
	return base + 1000*uint64(replicate)
}

// Variant is one runtime-option mutation axis value of an Experiment: a
// named tweak applied to the base rt.Options before a cell runs (window
// sizes, stealing toggles, partition-cost sensitivity, ...). Mutate may be
// nil for an identity variant. The cell's seed is assigned after Mutate
// runs, so variants cannot accidentally bypass DeriveSeed.
type Variant struct {
	Name   string
	Mutate func(*rt.Options)
}

// Cell identifies one run of an experiment grid: the cross product
// coordinates plus the derived seed. Index is the cell's position in the
// canonical enumeration order (apps x policies x machines x variants x
// replicates, replicates innermost); sinks receive results in exactly this
// order regardless of how the worker pool interleaves execution.
type Cell struct {
	Index     int
	App       string
	Policy    string // registry spec, e.g. "RGP+LAS?matching=random"
	Machine   string // machine config name
	Variant   string // variant name ("" when the experiment has no variants)
	Replicate int
	Seed      uint64
}

// CellResult couples a cell with the concrete Config it ran and the run's
// statistics.
type CellResult struct {
	Cell   Cell
	Config Config
	Stats  rt.Result
}

// Sink consumes a stream of cell results. Emit is called from a single
// goroutine, in canonical cell order; Close is called exactly once when the
// experiment finishes (successfully or not), so sinks can flush buffered
// output. A non-nil error from either aborts the experiment.
type Sink interface {
	Emit(CellResult) error
	Close() error
}

// Experiment declares an evaluation grid: the cross product of apps,
// policy specs, machines, runtime-option variants and replicate seeds. Run
// executes every cell through the audited core.Run path on a shared worker
// pool and streams the results, in deterministic order, to the given
// sinks. The paper's Figure 1 and all ablation sweeps are declarations of
// this type.
type Experiment struct {
	// Name labels the experiment (used in progress/diagnostic output).
	Name string
	// Apps lists workload registry specs — benchmark names ("jacobi"),
	// parameterized generators ("random-layered?layers=24&width=96",
	// "jacobi?nb=32&iters=4") or imported DAGs ("file?path=g.json"). Nil
	// means the paper's eight benchmarks.
	Apps []string
	// Policies lists policy registry specs; must be non-empty.
	Policies []string
	// Scale selects the problem size preset.
	Scale apps.Scale
	// Machines lists NUMA topologies; nil means the paper's bullion S16.
	Machines []machine.Config
	// Variants lists runtime-option mutations; nil means one identity
	// variant.
	Variants []Variant
	// Runtime is the base runtime options every cell starts from; the zero
	// value means rt.DefaultOptions(). Runtime.Seed is the base seed of
	// replicate 0 (see DeriveSeed). A non-nil Runtime.Observer is shared by
	// every cell and receives callbacks from concurrently executing runs —
	// it must be safe for concurrent use, or the experiment must set
	// Workers to 1.
	Runtime rt.Options
	// Seeds is the number of replicates per cell; 0 means 1.
	Seeds int
	// Trace, when non-nil, records every cell into the trace sink, each cell
	// attached under its canonical Index as the process id — so a grid's
	// trace holds one deterministic "process" per cell even when cells run
	// concurrently. Traced cells bypass the runtime/machine pools (see
	// Config.Trace).
	Trace TraceAttacher
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
	// TDGCache bounds the per-experiment snapshot cache that shares each
	// workload's built task graph across replicates (and across policy and
	// variant cells): 0 auto-sizes it to the grid's distinct (workload,
	// machine) pairs, a positive value caps the number of cached graphs,
	// and a negative value disables caching — every cell then rebuilds its
	// graph from the generator. Installed graphs are bit-identical to
	// rebuilt ones, so the cache never changes results; disabling it only
	// matters for workloads that declare NoCache themselves (those are
	// always rebuilt) or to bound memory on huge grids.
	TDGCache int
	// Progress, if set, is called after each in-order delivery with the
	// number of delivered cells and the grid size (the executed subset when
	// Skip is set).
	Progress func(done, total int, res CellResult)
	// Skip, if set, is consulted once per cell (on the coordinating
	// goroutine, in canonical order, before any cell runs): cells for which
	// it returns true are neither executed nor emitted, but every cell —
	// skipped or not — keeps its canonical Index, so the emitted stream is
	// the canonical subsequence of the full grid. This is the hook behind
	// sharded sweeps (shard.Spec restricts a run to its partition class)
	// and resumable ones (shard.CheckpointSink skips journaled cells and
	// replays their recorded results to downstream sinks, so those still
	// see the full in-order stream). Skip does not affect Cells, which
	// always enumerates the whole grid.
	Skip func(Cell) bool
}

// plan is one fully-resolved cell: the public coordinates plus the machine
// config and variant needed to build its Config.
type plan struct {
	cell Cell
	mach machine.Config
	vari Variant
}

func (e *Experiment) plans() ([]plan, error) {
	if len(e.Policies) == 0 {
		return nil, errors.New("core: experiment has no policies")
	}
	if e.Seeds < 0 || e.Workers < 0 {
		return nil, fmt.Errorf("core: negative Seeds/Workers")
	}
	appNames := e.Apps
	if appNames == nil {
		appNames = apps.Names()
	}
	if len(appNames) == 0 {
		return nil, errors.New("core: experiment has no apps")
	}
	machines := e.Machines
	if machines == nil {
		machines = []machine.Config{machine.BullionS16()}
	}
	if len(machines) == 0 {
		return nil, errors.New("core: experiment has no machines")
	}
	variants := e.Variants
	if variants == nil {
		variants = []Variant{{}}
	}
	if len(variants) == 0 {
		return nil, errors.New("core: experiment has no variants")
	}
	seeds := e.Seeds
	if seeds == 0 {
		seeds = 1
	}
	base := e.baseOptions()
	var ps []plan
	for _, app := range appNames {
		for _, pol := range e.Policies {
			for _, m := range machines {
				for _, v := range variants {
					for s := 0; s < seeds; s++ {
						ps = append(ps, plan{
							cell: Cell{
								Index:     len(ps),
								App:       app,
								Policy:    pol,
								Machine:   m.Name,
								Variant:   v.Name,
								Replicate: s,
								Seed:      DeriveSeed(base.Seed, s),
							},
							mach: m,
							vari: v,
						})
					}
				}
			}
		}
	}
	return ps, nil
}

func (e *Experiment) baseOptions() rt.Options {
	// Compare with the Observer masked out: interface comparison would
	// panic on uncomparable Observer implementations, and an Observer-only
	// Runtime still means "default options, plus my observer".
	masked := e.Runtime
	masked.Observer = nil
	if masked == (rt.Options{}) {
		o := rt.DefaultOptions()
		o.Observer = e.Runtime.Observer
		return o
	}
	return e.Runtime
}

// Cells enumerates the grid in canonical order without running anything.
func (e *Experiment) Cells() ([]Cell, error) {
	ps, err := e.plans()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(ps))
	for i, p := range ps {
		cells[i] = p.cell
	}
	return cells, nil
}

// runCell executes one grid cell. With the cache enabled (and the workload
// not marked NoCache), the cell installs the memoized task-graph snapshot —
// built once per (workload, machine) pair no matter how many policies,
// variants and replicates share it — instead of re-running the generator.
func runCell(cfg Config, p plan, w workload.Workload, cache *snapshotCache) (RunResult, error) {
	if cache == nil || w.NoCache {
		return runWith(cfg, &w, nil)
	}
	snap, err := cache.get(cacheKey(w, p.mach), func() (*rt.Snapshot, error) {
		return buildSnapshot(w, p.mach)
	})
	if err != nil {
		return RunResult{}, err
	}
	return runWith(cfg, nil, snap)
}

// config builds the audited-run configuration for one plan.
func (e *Experiment) config(p plan) Config {
	cfg := Config{
		App:     p.cell.App,
		Scale:   e.Scale,
		Policy:  p.cell.Policy,
		Machine: p.mach,
		Runtime: e.baseOptions(),
	}
	if p.vari.Mutate != nil {
		p.vari.Mutate(&cfg.Runtime)
	}
	cfg.Runtime.Seed = p.cell.Seed
	cfg.Trace = e.Trace
	cfg.TracePID = p.cell.Index
	return cfg
}

// Run executes the grid. Cells run concurrently on the worker pool, but
// individual runs are internally deterministic and results are delivered
// to sinks in canonical cell order, so the stream — and therefore any
// aggregation — is identical to a sequential evaluation. Every cell goes
// through Run's schedule audit; the first error (bad config, audit
// failure, sink failure or ctx cancellation) cancels the remaining cells
// and is returned after Close has been called on every sink.
func (e *Experiment) Run(ctx context.Context, sinks ...Sink) error {
	err := e.run(ctx, sinks...)
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (e *Experiment) run(ctx context.Context, sinks ...Sink) error {
	ps, err := e.plans()
	if err != nil {
		return err
	}
	if e.Skip != nil {
		// Filter skipped cells out of the work list up front, keeping
		// canonical Index values. Workloads below resolve for the kept
		// subset only, so a shard never builds graphs it will not run.
		kept := ps[:0]
		for _, p := range ps {
			if !e.Skip(p.cell) {
				kept = append(kept, p)
			}
		}
		ps = kept
	}
	// Resolve each distinct workload spec once up front: resolution may
	// touch disk (file import) and the instances are shared by every cell
	// and by the snapshot cache. A bad spec fails the whole grid here,
	// before any simulation time is spent.
	wls := make(map[string]workload.Workload)
	pairs := make(map[string]struct{})
	for _, p := range ps {
		w, ok := wls[p.cell.App]
		if !ok {
			var err error
			if w, err = workload.New(p.cell.App, e.Scale); err != nil {
				return err
			}
			wls[p.cell.App] = w
		}
		// Count distinct cells under the cache's own key scheme, so the
		// auto-sized capacity matches the number of live entries exactly.
		pairs[cacheKey(w, p.mach)] = struct{}{}
	}
	var cache *snapshotCache
	if e.TDGCache >= 0 {
		capacity := e.TDGCache
		if capacity == 0 {
			capacity = len(pairs)
		}
		cache = newSnapshotCache(capacity)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		pos int // position in ps — the delivery key (Cell.Index has gaps under Skip)
		res CellResult
		err error
	}
	results := make(chan outcome, len(ps))
	workers := e.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) {
					return
				}
				if ctx.Err() != nil {
					results <- outcome{err: ctx.Err()}
					return
				}
				cfg := e.config(ps[i])
				res, err := runCell(cfg, ps[i], wls[ps[i].cell.App], cache)
				if err != nil {
					// Any error dooms the experiment; stop claiming cells
					// instead of burning cycles until cancellation lands.
					results <- outcome{err: err}
					return
				}
				results <- outcome{pos: i, res: CellResult{Cell: ps[i].cell, Config: cfg, Stats: res.Stats}}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Reorder buffer: deliver results to sinks in canonical cell order.
	pending := make(map[int]CellResult)
	nextEmit, delivered, received := 0, 0, 0
	var firstErr error
	for received < len(ps) {
		if firstErr != nil && received >= int(min(next.Load(), int64(len(ps)))) {
			// After an error cancels the run, every claimed cell reports
			// exactly once and workers claim nothing new; once all claims
			// have reported, nothing more will ever arrive.
			break
		}
		o := <-results
		received++
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			cancel()
			continue
		}
		if firstErr != nil {
			continue
		}
		pending[o.pos] = o.res
		for {
			res, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			for _, s := range sinks {
				if err := s.Emit(res); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: sink: %w", err)
					cancel()
				}
			}
			if firstErr != nil {
				break
			}
			nextEmit++
			delivered++
			if e.Progress != nil {
				e.Progress(delivered, len(ps), res)
			}
		}
	}
	<-done
	return firstErr
}
