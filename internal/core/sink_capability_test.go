package core

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// The capability interfaces are discovered by assertion; TableSink must
// keep satisfying both.
var (
	_ CheckpointableSink = (*TableSink)(nil)
	_ MergeableSink      = (*TableSink)(nil)
)

// TestJSONLSinkFlushesEveryLine pins the crash contract: each record
// reaches the underlying writer before Emit returns, even through a
// buffered writer, so killing the process mid-stream loses at most the
// record being written — never a buffered tail. (Checkpoint journals are
// built on this property.)
func TestJSONLSinkFlushesEveryLine(t *testing.T) {
	var out bytes.Buffer
	bw := bufio.NewWriterSize(&out, 1<<20) // big enough to never self-flush
	sink := NewJSONLSink(bw)
	for i := 0; i < 3; i++ {
		res := CellResult{Cell: Cell{Index: i, App: "a", Policy: "p"}}
		res.Stats.Makespan = simDur(int64(100 * (i + 1)))
		if err := sink.Emit(res); err != nil {
			t.Fatal(err)
		}
		// Deliberately no Close: the process "dies" here.
		if got := strings.Count(out.String(), "\n"); got != i+1 {
			t.Fatalf("after emit %d: %d complete lines reached the writer, want %d", i, got, i+1)
		}
	}
}

func TestJSONLSinkSyncHook(t *testing.T) {
	var out bytes.Buffer
	sink := NewJSONLSink(&out)
	syncs := 0
	sink.Sync = func() error { syncs++; return nil }
	for i := 0; i < 2; i++ {
		if err := sink.Emit(CellResult{Cell: Cell{Index: i, App: "a"}}); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 2 {
		t.Errorf("Sync called %d times for 2 records", syncs)
	}
}

// checkpointOpts exercises baseline accumulators and the geomean row.
func checkpointOpts() TableOptions {
	return TableOptions{
		Norm:     NormSpeedup,
		Baseline: func(c Cell) bool { return c.Policy == "LAS" },
		Geomean:  true,
	}
}

// capabilityCells is a synthetic canonical stream with rows and columns
// first appearing at different indices, so splitting it across shards
// discovers them in different orders.
func capabilityCells() []CellResult {
	mk := func(idx int, app, pol string, mkspan int64) CellResult {
		res := CellResult{Cell: Cell{Index: idx, App: app, Policy: pol}}
		res.Stats.Makespan = simDur(mkspan)
		return res
	}
	return []CellResult{
		mk(0, "app1", "LAS", 100),
		mk(1, "app1", "DFIFO", 50),
		mk(2, "app2", "LAS", 300),
		mk(3, "app2", "EP", 100),
		mk(4, "app1", "EP", 200),
		mk(5, "app2", "DFIFO", 150),
		mk(6, "app3", "LAS", 80),
		mk(7, "app3", "DFIFO", 40),
		mk(8, "app3", "EP", 20),
	}
}

func renderTable(t *testing.T, s *TableSink) []byte {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTableSinkCheckpointRestore pins CheckpointState/RestoreState: a sink
// restored mid-stream and fed the rest renders identically to one that saw
// everything.
func TestTableSinkCheckpointRestore(t *testing.T) {
	cells := capabilityCells()
	whole := NewTableSink(checkpointOpts())
	first := NewTableSink(checkpointOpts())
	for _, res := range cells {
		if err := whole.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range cells[:4] {
		if err := first.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	state, err := first.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	second := NewTableSink(checkpointOpts())
	if err := second.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	for _, res := range cells[4:] {
		if err := second.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	want := renderTable(t, whole)
	got := renderTable(t, second)
	if !bytes.Equal(got, want) {
		t.Errorf("restored sink drifted:\n%s---\n%s", got, want)
	}

	// Restore guards: non-empty sink, bad version.
	dirty := NewTableSink(checkpointOpts())
	if err := dirty.Emit(cells[0]); err != nil {
		t.Fatal(err)
	}
	if err := dirty.RestoreState(state); err == nil {
		t.Error("RestoreState on a non-empty sink accepted")
	}
	if err := NewTableSink(checkpointOpts()).RestoreState([]byte(`{"version":9}`)); err == nil {
		t.Error("unknown checkpoint version accepted")
	}
}

// TestTableSinkMergeMatchesSingleStream pins MergeSink: per-shard partials
// recombine into exactly the table one sink over the full stream builds,
// including row/column order recovered from first cell indices.
func TestTableSinkMergeMatchesSingleStream(t *testing.T) {
	cells := capabilityCells()
	whole := NewTableSink(checkpointOpts())
	a := NewTableSink(checkpointOpts())
	b := NewTableSink(checkpointOpts())
	for _, res := range cells {
		if err := whole.Emit(res); err != nil {
			t.Fatal(err)
		}
		dst := a
		if res.Cell.Index%2 == 1 {
			dst = b
		}
		if err := dst.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.MergeSink(b); err != nil {
		t.Fatal(err)
	}
	want := renderTable(t, whole)
	got := renderTable(t, a)
	if !bytes.Equal(got, want) {
		t.Errorf("merged partials drifted from single stream:\n%s---\n%s", got, want)
	}
}

func TestTableSinkMergeRejectsMismatch(t *testing.T) {
	a := NewTableSink(checkpointOpts())
	if err := a.MergeSink(SinkFunc(func(CellResult) error { return nil })); err == nil {
		t.Error("merging a non-TableSink accepted")
	}
	other := NewTableSink(TableOptions{Norm: NormRaw})
	if err := a.MergeSink(other); err == nil {
		t.Error("merging mismatched options accepted")
	}
}
