// Package core orchestrates the paper's evaluation: it wires an application
// task graph, a scheduling policy and a simulated machine together, runs the
// simulation, and produces the speedup tables of Figure 1 and the ablation
// sweeps documented in DESIGN.md.
package core

import (
	"context"
	"fmt"
	"sync"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/metrics"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

// PolicyNames lists the Figure-1 configurations in the paper's legend
// order. LAS is the baseline all speedups are relative to. The full set of
// instantiable policies lives in the policy registry (policy.Names).
var PolicyNames = []string{"DFIFO", "RGP+LAS", "EP", "LAS"}

// NewPolicy instantiates a scheduling policy from a registry spec, e.g.
// "LAS" or "RGP+LAS?matching=random". It is a thin veneer over policy.New;
// custom policies registered with policy.Register are available here and
// in every Experiment by name.
func NewPolicy(spec string) (rt.Policy, error) {
	return policy.New(spec)
}

// TraceAttacher hooks a simulated machine up to a trace sink before a run —
// trace.Tracer implements it. It is an interface here so core does not
// depend on the trace package; the returned observer is installed on the
// runtime when the caller has not configured one of their own (a user
// observer wins the Observer slot; machine-level flow/counter hooks record
// either way).
type TraceAttacher interface {
	AttachMachine(m *machine.Machine, pid int, name string) rt.Observer
}

// Config describes one simulation run. App is a workload registry spec —
// a benchmark name ("jacobi"), a parameterized generator
// ("random-layered?layers=24&width=96") or an imported DAG
// ("file?path=graph.json"); Scale is the contextual problem size a spec
// without an explicit scale= parameter resolves at.
type Config struct {
	App     string
	Scale   apps.Scale
	Policy  string
	Machine machine.Config
	Runtime rt.Options
	// Trace, when non-nil, records the run into a trace sink: the machine is
	// attached under process id TracePID and the attacher's observer is
	// installed unless Runtime.Observer is already set. Traced runs bypass
	// the runtime and machine pools — tracer hooks cannot be detached, and
	// observers may hold *Task beyond the run.
	Trace    TraceAttacher
	TracePID int
	// Parallelism is the engine's end-of-instant flush parallelism
	// (sim.Engine.SetParallelism). A single-machine batch cell has one
	// flush component, so values > 1 only matter when the same knob is
	// forwarded to multi-Net scenarios (cluster.Config.Parallelism); it is
	// plumbed here so one flag can drive both modes. Results are
	// bit-identical at every value.
	Parallelism int
}

// DefaultConfig returns the evaluation settings: bullion S16 machine and
// the default runtime options.
func DefaultConfig(app, pol string, scale apps.Scale) Config {
	return Config{
		App:     app,
		Scale:   scale,
		Policy:  pol,
		Machine: machine.BullionS16(),
		Runtime: rt.DefaultOptions(),
	}
}

// RunResult couples a run's configuration with its statistics.
type RunResult struct {
	Config Config
	Stats  rt.Result
	Tasks  int
}

// Run executes one configuration. Every run is audited against the task
// graph's semantics (dependences respected, cores exclusive) before its
// statistics are trusted; an audit failure is a bug in the runtime or
// policy, surfaced as an error rather than a silently wrong data point.
func Run(cfg Config) (RunResult, error) {
	return runWith(cfg, nil, nil)
}

// runWith executes one configuration. The task graph comes from, in order
// of preference: a previously captured snapshot (the Experiment cache's hit
// path — bit-identical to rebuilding), an already-resolved workload, or
// resolving cfg.App through the workload registry.
func runWith(cfg Config, w *workload.Workload, snap *rt.Snapshot) (RunResult, error) {
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return RunResult{}, err
	}
	m := acquireMachine(cfg.Machine)
	pooled := false
	if cfg.Parallelism > 1 {
		m.Engine().SetParallelism(cfg.Parallelism)
		// Retire the flush workers on every exit path that abandons the
		// machine (error returns, traced/observed runs): an abandoned engine
		// must not park goroutines. The pooled path instead retires inside
		// releaseMachine, before the pool hands the machine to another
		// goroutine — after that point this function must not touch it.
		defer func() {
			if !pooled {
				m.Engine().SetParallelism(1)
			}
		}()
	}
	if cfg.Trace != nil {
		obs := cfg.Trace.AttachMachine(m, cfg.TracePID,
			fmt.Sprintf("%s %s seed%d", cfg.App, cfg.Policy, cfg.Runtime.Seed))
		if cfg.Runtime.Observer == nil {
			cfg.Runtime.Observer = obs
		}
	}
	r := rt.NewRuntime(m, pol, cfg.Runtime)
	if snap != nil {
		snap.Install(r)
	} else {
		if w == nil {
			resolved, err := workload.New(cfg.App, cfg.Scale)
			if err != nil {
				return RunResult{}, err
			}
			w = &resolved
		}
		if err := w.Build(r); err != nil {
			return RunResult{}, fmt.Errorf("core: build %s: %w", cfg.App, err)
		}
	}
	stats := r.Run()
	if err := r.AuditSchedule(); err != nil {
		return RunResult{}, fmt.Errorf("core: %s/%s: %w", cfg.App, cfg.Policy, err)
	}
	if cfg.Runtime.Observer == nil && cfg.Trace == nil {
		// No observer and no tracer means nothing outside this function saw
		// a *Task, a *Region or the machine: the audit has run, the Result
		// slices are per-run, and both the runtime's arenas and the
		// machine/engine pair can go back to their pools for the next cell.
		// Traced machines carry undetachable flow hooks and flushers, so
		// they never re-enter the pool.
		r.Release()
		releaseMachine(m)
		pooled = true
	}
	return RunResult{Config: cfg, Stats: stats, Tasks: stats.TasksRun}, nil
}

// Runner runs configurations through the same audited path as Run while
// memoizing resolved workloads and built task-graph snapshots across calls —
// the persistent-service counterpart of one Experiment's per-grid cache.
// Repeat runs of a (workload, machine) pair install the memoized snapshot
// (bit-identical to rebuilding) instead of re-running the generator and
// re-deriving dependences. A Runner is safe for concurrent use.
type Runner struct {
	cache *snapshotCache
	mu    sync.Mutex
	wls   map[string]workload.Workload
}

// NewRunner returns a Runner whose snapshot cache holds up to capacity
// graphs; capacity <= 0 means an unbounded-in-practice default (the cache
// evicts oldest-first beyond it).
func NewRunner(capacity int) *Runner {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Runner{
		cache: newSnapshotCache(capacity),
		wls:   make(map[string]workload.Workload),
	}
}

// Run executes one configuration, reusing cached workloads and snapshots.
// Workloads that declare NoCache are rebuilt every call, exactly as in an
// Experiment grid.
func (rn *Runner) Run(cfg Config) (RunResult, error) {
	key := fmt.Sprintf("%s@%s", cfg.App, cfg.Scale)
	rn.mu.Lock()
	w, ok := rn.wls[key]
	rn.mu.Unlock()
	if !ok {
		var err error
		if w, err = workload.New(cfg.App, cfg.Scale); err != nil {
			return RunResult{}, err
		}
		rn.mu.Lock()
		rn.wls[key] = w
		rn.mu.Unlock()
	}
	if w.NoCache {
		return runWith(cfg, &w, nil)
	}
	snap, err := rn.cache.get(cacheKey(w, cfg.Machine), func() (*rt.Snapshot, error) {
		return buildSnapshot(w, cfg.Machine)
	})
	if err != nil {
		return RunResult{}, err
	}
	return runWith(cfg, nil, snap)
}

// Figure1Options tunes the Figure-1 reproduction.
type Figure1Options struct {
	Scale   apps.Scale
	Machine machine.Config
	Runtime rt.Options
	// Seeds averages each (app, policy) cell over this many seeds (the
	// paper averages repeated executions; randomized policies like LAS
	// need it for stable numbers). Must be >= 1.
	Seeds int
	// Apps optionally restricts the benchmark list (nil = all eight).
	Apps []string
	// Trace optionally records every grid cell into a trace sink (see
	// Experiment.Trace).
	Trace TraceAttacher
}

// DefaultFigure1Options returns the paper-faithful settings.
func DefaultFigure1Options() Figure1Options {
	return Figure1Options{
		Scale:   apps.Paper,
		Machine: machine.BullionS16(),
		Runtime: rt.DefaultOptions(),
		Seeds:   3,
	}
}

// figure1Cols is the Figure-1 legend minus the LAS baseline, in legend
// order — the table's measured columns.
func figure1Cols() []string {
	var cols []string
	for _, p := range PolicyNames {
		if p != "LAS" {
			cols = append(cols, p)
		}
	}
	return cols
}

// Figure1Experiment declares the paper's Figure-1 grid: every benchmark
// under each PolicyNames configuration (LAS the baseline), replicated over
// seeds.
func Figure1Experiment(opt Figure1Options) *Experiment {
	return &Experiment{
		Name:     "figure1",
		Apps:     opt.Apps,
		Policies: append([]string{"LAS"}, figure1Cols()...),
		Scale:    opt.Scale,
		Machines: []machine.Config{opt.Machine},
		Runtime:  opt.Runtime,
		Seeds:    opt.Seeds,
		Trace:    opt.Trace,
	}
}

// Figure1Table returns the table aggregator matching Figure 1's axes:
// speedup over the LAS baseline (which feeds the reference instead of a
// column) plus the geometric-mean row.
func Figure1Table(opt Figure1Options) *TableSink {
	return NewTableSink(TableOptions{
		Title: fmt.Sprintf("Figure 1: speedup over LAS (%s, %s scale, %d seed(s))",
			opt.Machine.Name, opt.Scale, opt.Seeds),
		Columns:  figure1Cols(),
		Norm:     NormSpeedup,
		Baseline: func(c Cell) bool { return c.Policy == "LAS" },
		Geomean:  true,
	})
}

// Figure1 reproduces the paper's Figure 1: for every benchmark it runs
// DFIFO, RGP+LAS, EP and LAS on the configured machine and reports each
// policy's speedup over the LAS baseline, plus the geometric mean row.
// The returned table has one row per app (plus "geomean") and one column
// per policy.
//
// It is a thin declaration over the Experiment API: individual runs are
// independent and internally deterministic, so the grid executes on the
// shared worker pool and the table is identical to a sequential
// evaluation. Extra sinks (e.g. a JSONL trajectory) receive every cell
// result alongside the table aggregation.
func Figure1(opt Figure1Options, extra ...Sink) (*metrics.Table, error) {
	if opt.Seeds < 1 {
		return nil, fmt.Errorf("core: Seeds must be >= 1")
	}
	table := Figure1Table(opt)
	sinks := append([]Sink{table}, extra...)
	if err := Figure1Experiment(opt).Run(context.Background(), sinks...); err != nil {
		return nil, err
	}
	return table.Table(), nil
}
