// Package core orchestrates the paper's evaluation: it wires an application
// task graph, a scheduling policy and a simulated machine together, runs the
// simulation, and produces the speedup tables of Figure 1 and the ablation
// sweeps documented in DESIGN.md.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/metrics"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// PolicyNames lists the Figure-1 configurations in the paper's legend
// order. LAS is the baseline all speedups are relative to.
var PolicyNames = []string{"DFIFO", "RGP+LAS", "EP", "LAS"}

// NewPolicy instantiates a scheduling policy by name.
func NewPolicy(name string) (rt.Policy, error) {
	switch name {
	case "DFIFO":
		return policy.DFIFO{}, nil
	case "LAS":
		return policy.LAS{}, nil
	case "EP":
		return policy.EP{}, nil
	case "RGP+LAS":
		return policy.NewRGPLAS(), nil
	case "RGP":
		return policy.NewRGPRepartition(), nil
	case "Random":
		return policy.RandomSocket{}, nil
	case "OSMigrate":
		return policy.NewOSMigrate(), nil
	case "HEFT":
		return policy.NewHEFT(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", name)
	}
}

// Config describes one simulation run.
type Config struct {
	App     string
	Scale   apps.Scale
	Policy  string
	Machine machine.Config
	Runtime rt.Options
}

// DefaultConfig returns the evaluation settings: bullion S16 machine and
// the default runtime options.
func DefaultConfig(app, pol string, scale apps.Scale) Config {
	return Config{
		App:     app,
		Scale:   scale,
		Policy:  pol,
		Machine: machine.BullionS16(),
		Runtime: rt.DefaultOptions(),
	}
}

// RunResult couples a run's configuration with its statistics.
type RunResult struct {
	Config Config
	Stats  rt.Result
	Tasks  int
}

// Run executes one configuration. Every run is audited against the task
// graph's semantics (dependences respected, cores exclusive) before its
// statistics are trusted; an audit failure is a bug in the runtime or
// policy, surfaced as an error rather than a silently wrong data point.
func Run(cfg Config) (RunResult, error) {
	app, err := apps.ByName(cfg.App, cfg.Scale)
	if err != nil {
		return RunResult{}, err
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return RunResult{}, err
	}
	eng := sim.NewEngine()
	m := machine.New(cfg.Machine, eng)
	r := rt.NewRuntime(m, pol, cfg.Runtime)
	app.Build(r)
	stats := r.Run()
	if err := r.AuditSchedule(); err != nil {
		return RunResult{}, fmt.Errorf("core: %s/%s: %w", cfg.App, cfg.Policy, err)
	}
	return RunResult{Config: cfg, Stats: stats, Tasks: stats.TasksRun}, nil
}

// Figure1Options tunes the Figure-1 reproduction.
type Figure1Options struct {
	Scale   apps.Scale
	Machine machine.Config
	Runtime rt.Options
	// Seeds averages each (app, policy) cell over this many seeds (the
	// paper averages repeated executions; randomized policies like LAS
	// need it for stable numbers). Must be >= 1.
	Seeds int
	// Apps optionally restricts the benchmark list (nil = all eight).
	Apps []string
}

// DefaultFigure1Options returns the paper-faithful settings.
func DefaultFigure1Options() Figure1Options {
	return Figure1Options{
		Scale:   apps.Paper,
		Machine: machine.BullionS16(),
		Runtime: rt.DefaultOptions(),
		Seeds:   3,
	}
}

// Figure1 reproduces the paper's Figure 1: for every benchmark it runs
// DFIFO, RGP+LAS, EP and LAS on the configured machine and reports each
// policy's speedup over the LAS baseline, plus the geometric mean row.
// The returned table has one row per app (plus "geomean") and one column
// per policy.
//
// Individual simulation runs are independent and internally deterministic,
// so Figure1 executes them on a host worker pool (one worker per CPU); the
// resulting table is identical to a sequential evaluation.
func Figure1(opt Figure1Options) (*metrics.Table, error) {
	if opt.Seeds < 1 {
		return nil, fmt.Errorf("core: Seeds must be >= 1")
	}
	names := opt.Apps
	if names == nil {
		names = apps.Names()
	}
	cols := []string{"DFIFO", "RGP+LAS", "EP"}
	table := metrics.NewTable(
		fmt.Sprintf("Figure 1: speedup over LAS (%s, %s scale, %d seed(s))",
			opt.Machine.Name, opt.Scale, opt.Seeds),
		cols...)

	type job struct {
		app, pol string
		seed     uint64
	}
	var jobs []job
	for _, app := range names {
		for _, pol := range append([]string{"LAS"}, cols...) {
			for s := 0; s < opt.Seeds; s++ {
				jobs = append(jobs, job{app: app, pol: pol, seed: opt.Runtime.Seed + uint64(1000*s)})
			}
		}
	}
	makespans := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				cfg := Config{
					App:     jobs[i].app,
					Scale:   opt.Scale,
					Policy:  jobs[i].pol,
					Machine: opt.Machine,
					Runtime: opt.Runtime,
				}
				cfg.Runtime.Seed = jobs[i].seed
				res, err := Run(cfg)
				if err != nil {
					errs[i] = err
					continue
				}
				makespans[i] = float64(res.Stats.Makespan)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Aggregate: mean makespan per (app, policy).
	mean := make(map[[2]string]float64, len(names)*4)
	for i, j := range jobs {
		mean[[2]string{j.app, j.pol}] += makespans[i] / float64(opt.Seeds)
	}
	for _, app := range names {
		baseline := mean[[2]string{app, "LAS"}]
		for _, pol := range cols {
			table.Set(app, pol, metrics.Speedup(baseline, mean[[2]string{app, pol}]))
		}
	}
	for _, pol := range cols {
		table.Set("geomean", pol, metrics.GeoMean(table.ColumnValues(pol)))
	}
	return table, nil
}
