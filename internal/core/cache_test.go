package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

// countingWorkload registers a tiny unique workload whose Build invocations
// are counted, and returns its spec plus the counter.
func countingWorkload(t *testing.T, noCache bool) (string, *atomic.Int64) {
	t.Helper()
	var builds atomic.Int64
	name := fmt.Sprintf("count-%s-%v", t.Name(), noCache)
	err := workload.Register(name, "test counter", func(s workload.Spec, _ apps.Scale, _ uint64) (workload.Workload, error) {
		if err := s.Only(); err != nil {
			return workload.Workload{}, err
		}
		return workload.Workload{
			NoCache: noCache,
			Build: func(r *rt.Runtime) error {
				builds.Add(1)
				reg := r.Mem().Alloc("x", 64<<10, memory.Deferred, 0)
				prev := r.Submit(rt.TaskSpec{Label: "w", Flops: 4000,
					Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
				_ = prev
				for i := 0; i < 8; i++ {
					r.Submit(rt.TaskSpec{Label: fmt.Sprintf("r%d", i), Flops: 2000,
						Accesses: []rt.Access{{Region: reg, Mode: rt.In}}, EPSocket: rt.NoEPHint})
				}
				return nil
			},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return name, &builds
}

// TestExperimentTDGCacheBuildsOnce runs a multi-replicate, multi-policy grid
// on concurrent workers and checks the workload generator ran exactly once
// per (workload, machine) pair.
func TestExperimentTDGCacheBuildsOnce(t *testing.T) {
	spec, builds := countingWorkload(t, false)
	e := &Experiment{
		Name:     "cache-once",
		Apps:     []string{spec},
		Policies: []string{"LAS", "DFIFO"},
		Scale:    apps.Tiny,
		Machines: []machine.Config{machine.TwoSocketXeon(), machine.FourSocket()},
		Seeds:    5,
		Workers:  4,
	}
	if err := e.Run(context.Background(), SinkFunc(func(CellResult) error { return nil })); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 { // one per machine
		t.Errorf("builds = %d, want 2 (one per machine)", got)
	}
}

// TestExperimentTDGCacheDisabled checks that TDGCache < 0 and per-workload
// NoCache both fall back to building every cell.
func TestExperimentTDGCacheDisabled(t *testing.T) {
	spec, builds := countingWorkload(t, false)
	e := &Experiment{
		Apps:     []string{spec},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Machines: []machine.Config{machine.TwoSocketXeon()},
		Seeds:    4,
		Workers:  2,
		TDGCache: -1,
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 4 {
		t.Errorf("disabled cache: builds = %d, want 4", got)
	}

	nspec, nbuilds := countingWorkload(t, true)
	e2 := &Experiment{
		Apps:     []string{nspec},
		Policies: []string{"LAS"},
		Scale:    apps.Tiny,
		Machines: []machine.Config{machine.TwoSocketXeon()},
		Seeds:    3,
		Workers:  2,
	}
	if err := e2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := nbuilds.Load(); got != 3 {
		t.Errorf("NoCache workload: builds = %d, want 3", got)
	}
}

// TestExperimentCacheEquivalence pins the cache's core guarantee: a grid
// run with the cache produces cell-for-cell identical statistics to the
// same grid with the cache disabled.
func TestExperimentCacheEquivalence(t *testing.T) {
	collect := func(tdgCache int) []CellResult {
		var out []CellResult
		e := &Experiment{
			Apps:     []string{"jacobi", "random-layered?layers=5&width=8&seed=3"},
			Policies: []string{"LAS", "RGP+LAS"},
			Scale:    apps.Tiny,
			Seeds:    2,
			TDGCache: tdgCache,
		}
		err := e.Run(context.Background(), SinkFunc(func(r CellResult) error {
			out = append(out, r)
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cached, rebuilt := collect(0), collect(-1)
	if len(cached) != len(rebuilt) || len(cached) == 0 {
		t.Fatalf("cell counts: %d vs %d", len(cached), len(rebuilt))
	}
	for i := range cached {
		if !reflect.DeepEqual(cached[i].Stats, rebuilt[i].Stats) {
			t.Errorf("cell %d (%s/%s seed %d) diverged with cache:\n  cached:  %+v\n  rebuilt: %+v",
				i, cached[i].Cell.App, cached[i].Cell.Policy, cached[i].Cell.Seed,
				cached[i].Stats, rebuilt[i].Stats)
		}
	}
}

// TestSnapshotCacheSingleflight hammers one key from many goroutines and
// demands exactly one build, everyone sharing its result.
func TestSnapshotCacheSingleflight(t *testing.T) {
	c := newSnapshotCache(4)
	var builds atomic.Int64
	w, err := workload.New("forkjoin?depth=3&fanout=2", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*rt.Snapshot, error) {
		builds.Add(1)
		return buildSnapshot(w, machine.TwoSocketXeon())
	}
	var wg sync.WaitGroup
	snaps := make([]*rt.Snapshot, 16)
	for i := 0; i < len(snaps); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.get("k", build)
			if err != nil {
				t.Error(err)
			}
			snaps[i] = s
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("builds = %d, want 1", builds.Load())
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatal("goroutines received different snapshots")
		}
	}
	hits, misses := c.stats()
	if hits != 15 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 15/1", hits, misses)
	}
}

// TestSnapshotCacheBounded checks FIFO eviction at the capacity bound.
func TestSnapshotCacheBounded(t *testing.T) {
	c := newSnapshotCache(2)
	mk := func(key string) int {
		n := 0
		if _, err := c.get(key, func() (*rt.Snapshot, error) { n++; return &rt.Snapshot{}, nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	mk("a")
	mk("b")
	if n := mk("a"); n != 0 {
		t.Error("a rebuilt while cached")
	}
	mk("c") // evicts a (oldest)
	if n := mk("a"); n != 1 {
		t.Error("a not evicted at capacity")
	}
}
