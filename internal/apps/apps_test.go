package apps

import (
	"strings"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// buildOn builds an app on a fresh bullion runtime without running it.
func buildOn(t *testing.T, app App) *rt.Runtime {
	t.Helper()
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{WindowSize: 64})
	app.Build(r)
	return r
}

type dfifoStub struct{}

func (dfifoStub) Name() string                         { return "stub" }
func (dfifoStub) PickSocket(*rt.Runtime, *rt.Task) int { return rt.AnySocket }

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"cg", "gauss-seidel", "inthist", "jacobi", "nstream", "qr", "red-black", "syminv"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d apps, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", Tiny); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": Tiny, "small": Small, "paper": Paper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestAllAppsBuildAcyclicGraphs(t *testing.T) {
	for _, app := range All(Tiny) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := buildOn(t, app)
			if r.Graph().Len() == 0 {
				t.Fatal("no tasks submitted")
			}
			if err := r.Graph().Validate(); err != nil {
				t.Fatalf("TDG has a cycle: %v", err)
			}
		})
	}
}

func TestAllAppsRunToCompletion(t *testing.T) {
	for _, app := range All(Tiny) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := buildOn(t, app)
			res := r.Run()
			if res.TasksRun != r.Graph().Len() {
				t.Fatalf("ran %d of %d tasks", res.TasksRun, r.Graph().Len())
			}
			if res.Makespan <= 0 {
				t.Fatal("zero makespan")
			}
			if err := r.AuditSchedule(); err != nil {
				t.Fatalf("schedule audit: %v", err)
			}
		})
	}
}

func TestEPHintsWithinRange(t *testing.T) {
	for _, app := range All(Tiny) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := buildOn(t, app)
			sockets := r.Machine().Sockets()
			withHint := 0
			for _, task := range r.Tasks() {
				if task.EPSocket == rt.NoEPHint {
					continue
				}
				withHint++
				if task.EPSocket < 0 || task.EPSocket >= sockets {
					t.Fatalf("task %s EP socket %d out of range", task.Label, task.EPSocket)
				}
			}
			if withHint == 0 {
				t.Fatal("app provides no expert placement hints")
			}
		})
	}
}

func TestPaperScaleTaskCounts(t *testing.T) {
	// The evaluation needs thousands of tasks per app (the window size is
	// 2048); verify every app's Paper preset is big enough and not absurd.
	for _, app := range All(Paper) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := buildOn(t, app)
			n := r.Graph().Len()
			if n < 2200 {
				t.Fatalf("paper scale has only %d tasks", n)
			}
			if n > 100000 {
				t.Fatalf("paper scale has %d tasks; simulator runs would crawl", n)
			}
		})
	}
}

func TestJacobiStructure(t *testing.T) {
	p := StencilParams{NB: 4, TileBytes: 16 * kib, Iters: 3}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildJacobi(r, p)
	wantTasks := 16 + 3*16 // init + iterations
	if got := r.Graph().Len(); got != wantTasks {
		t.Fatalf("jacobi tasks = %d, want %d", got, wantTasks)
	}
	// An interior tile task must read 5 tiles and write 1.
	var interior *rt.Task
	for _, task := range r.Tasks() {
		if task.Label == "jacobi(1,1,1)" {
			interior = task
		}
	}
	if interior == nil {
		t.Fatal("interior task not found")
	}
	reads, writes := 0, 0
	for _, a := range interior.Accesses {
		if a.Mode.Reads() {
			reads++
		}
		if a.Mode.Writes() {
			writes++
		}
	}
	if reads != 5 || writes != 1 {
		t.Fatalf("interior stencil has %d reads, %d writes", reads, writes)
	}
}

func TestGaussSeidelWavefront(t *testing.T) {
	p := StencilParams{NB: 4, TileBytes: 16 * kib, Iters: 1}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildGaussSeidel(r, p)
	// In a single sweep, tile (i,j) transitively depends on (0,0); levels
	// along the diagonal must strictly increase.
	lvl, _, err := r.Graph().Levels()
	if err != nil {
		t.Fatal(err)
	}
	find := func(label string) *rt.Task {
		for _, task := range r.Tasks() {
			if task.Label == label {
				return task
			}
		}
		t.Fatalf("task %s not found", label)
		return nil
	}
	l00 := lvl[find("gs(0,0,0)").ID]
	l11 := lvl[find("gs(0,1,1)").ID]
	l33 := lvl[find("gs(0,3,3)").ID]
	if !(l00 < l11 && l11 < l33) {
		t.Fatalf("diagonal levels not increasing: %d, %d, %d", l00, l11, l33)
	}
}

func TestNStreamChunkIndependence(t *testing.T) {
	p := NStreamParams{Chunks: 4, ChunkBytes: 64 * kib, Iters: 2}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildNStream(r, p)
	// No dependency may connect different chunks: check that every edge's
	// endpoint labels agree on the chunk index (the last parenthesized
	// number).
	chunkOf := func(label string) string {
		i := strings.LastIndex(label, ",")
		if i < 0 { // init_X(j)
			i = strings.LastIndex(label, "(")
		}
		return strings.TrimRight(label[i+1:], ")")
	}
	g := r.Graph()
	for _, e := range g.EdgeList() {
		a, b := g.Label(e.From), g.Label(e.To)
		if chunkOf(a) != chunkOf(b) {
			t.Fatalf("cross-chunk dependency %s -> %s", a, b)
		}
	}
}

func TestQRTaskKinds(t *testing.T) {
	p := DenseParams{NT: 4, TileBytes: 32 * kib}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildQR(r, p)
	counts := map[string]int{}
	for _, task := range r.Tasks() {
		kind := task.Label[:strings.Index(task.Label, "(")]
		counts[kind]++
	}
	nt := p.NT
	if counts["geqrt"] != nt {
		t.Errorf("geqrt count %d, want %d", counts["geqrt"], nt)
	}
	wantTS := nt * (nt - 1) / 2
	if counts["tsqrt"] != wantTS || counts["unmqr"] != wantTS {
		t.Errorf("tsqrt/unmqr counts %d/%d, want %d", counts["tsqrt"], counts["unmqr"], wantTS)
	}
	wantTSM := 0
	for k := 0; k < nt; k++ {
		wantTSM += (nt - 1 - k) * (nt - 1 - k)
	}
	if counts["tsmqr"] != wantTSM {
		t.Errorf("tsmqr count %d, want %d", counts["tsmqr"], wantTSM)
	}
	if counts["init"] != nt*nt {
		t.Errorf("init count %d, want %d", counts["init"], nt*nt)
	}
}

func TestQRPanelOrdering(t *testing.T) {
	p := DenseParams{NT: 3, TileBytes: 32 * kib}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildQR(r, p)
	r.Run()
	byLabel := map[string]*rt.Task{}
	for _, task := range r.Tasks() {
		byLabel[task.Label] = task
	}
	// geqrt(1) must run after the trailing update tsmqr(1,1,0) completes.
	if byLabel["geqrt(1)"].StartAt < byLabel["tsmqr(1,1,0)"].EndAt {
		t.Fatal("second panel started before first trailing update finished")
	}
}

func TestSymInvThreeSweepsChain(t *testing.T) {
	p := DenseParams{NT: 3, TileBytes: 32 * kib}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildSymInv(r, p)
	r.Run()
	byLabel := map[string]*rt.Task{}
	for _, task := range r.Tasks() {
		byLabel[task.Label] = task
	}
	potrf0 := byLabel["potrf(0)"]
	trtri0 := byLabel["trtri(0)"]
	lauum0 := byLabel["lauum(0)"]
	if potrf0 == nil || trtri0 == nil || lauum0 == nil {
		t.Fatal("sweep tasks missing")
	}
	if !(potrf0.EndAt <= trtri0.StartAt+1 && trtri0.EndAt <= lauum0.StartAt+1) {
		// trtri(0) reads nothing from potrf(0) directly besides A[0][0];
		// check via the graph instead of wall-clock.
		g := r.Graph()
		lvl, _, err := g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if !(lvl[potrf0.ID] < lvl[trtri0.ID] && lvl[trtri0.ID] < lvl[lauum0.ID]) {
			t.Fatalf("sweeps not ordered: levels %d, %d, %d",
				lvl[potrf0.ID], lvl[trtri0.ID], lvl[lauum0.ID])
		}
	}
}

func TestCGReductionIsGlobalSync(t *testing.T) {
	p := CGParams{Blocks: 4, ABlockBytes: 64 * kib, VecBlockBytes: 16 * kib, Iters: 1}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildCG(r, p)
	var reduce *rt.Task
	for _, task := range r.Tasks() {
		if task.Label == "reduce1(0)" {
			reduce = task
		}
	}
	if reduce == nil {
		t.Fatal("reduce task missing")
	}
	// The reduction reads one partial per block.
	if got := r.Graph().InDegree(reduce.ID); got < p.Blocks {
		t.Fatalf("reduce1 in-degree %d, want >= %d", got, p.Blocks)
	}
}

func TestRedBlackColorPhases(t *testing.T) {
	p := StencilParams{NB: 4, TileBytes: 16 * kib, Iters: 1}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildRedBlack(r, p)
	r.Run()
	var red, black []*rt.Task
	for _, task := range r.Tasks() {
		if strings.HasPrefix(task.Label, "rb(0,0,") {
			red = append(red, task)
		}
		if strings.HasPrefix(task.Label, "rb(0,1,") {
			black = append(black, task)
		}
	}
	if len(red) != 8 || len(black) != 8 {
		t.Fatalf("phase sizes %d/%d, want 8/8", len(red), len(black))
	}
	// Every black interior tile depends on red neighbors: a black tile may
	// not start before all four of its red neighbors finished. Spot-check
	// tile (1,2) (black since 1+2 odd) against neighbor (1,1).
	byLabel := map[string]*rt.Task{}
	for _, task := range r.Tasks() {
		byLabel[task.Label] = task
	}
	b12 := byLabel["rb(0,1,1,2)"]
	r11 := byLabel["rb(0,0,1,1)"]
	if b12.StartAt < r11.EndAt {
		t.Fatal("black tile ran before its red neighbor")
	}
}

func TestIntHistWavefrontDepth(t *testing.T) {
	p := IntHistParams{NB: 4, ImgTileBytes: 32 * kib, HistBytes: 8 * kib, Frames: 1}
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
	buildIntHist(r, p)
	lvl, n, err := r.Graph().Levels()
	if err != nil {
		t.Fatal(err)
	}
	_ = lvl
	// Depth must be at least the anti-diagonal length (wavefront) plus the
	// load level: 2*NB-1 + 1.
	if n < 2*p.NB {
		t.Fatalf("wavefront depth %d, want >= %d", n, 2*p.NB)
	}
}

func TestBlockRowOwnerCoversAllSockets(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		s := blockRowOwner(i, 16, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("owner %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("block rows covered %d of 8 sockets", len(seen))
	}
	if blockRowOwner(0, 0, 8) != 0 {
		t.Fatal("degenerate nb not handled")
	}
}

func TestBlockCyclic2D(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			s := blockCyclic2D(i, j, 8)
			if s < 0 || s >= 8 {
				t.Fatalf("owner %d out of range", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("block cyclic covered %d of 8 sockets", len(seen))
	}
	pr, pc := grid2(8)
	if pr*pc != 8 || pr > pc {
		t.Fatalf("grid2(8) = %dx%d", pr, pc)
	}
	if pr2, pc2 := grid2(9); pr2 != 3 || pc2 != 3 {
		t.Fatalf("grid2(9) = %dx%d, want 3x3", pr2, pc2)
	}
}
