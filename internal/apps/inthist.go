package apps

import (
	"fmt"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// IntHistParams sizes the integral histogram benchmark.
type IntHistParams struct {
	// NB is the image tile grid dimension.
	NB int
	// ImgTileBytes is the size of one image tile (streamed input).
	ImgTileBytes int64
	// HistBytes is the size of one propagated histogram tile.
	HistBytes int64
	// Frames is the number of frames processed (scans pipelined over the
	// same histogram array).
	Frames int
}

// IntHistPreset returns per-scale default sizes.
func IntHistPreset(s Scale) IntHistParams {
	switch s {
	case Tiny:
		return IntHistParams{NB: 4, ImgTileBytes: 64 * kib, HistBytes: 16 * kib, Frames: 2}
	case Small:
		return IntHistParams{NB: 8, ImgTileBytes: 256 * kib, HistBytes: 32 * kib, Frames: 4}
	default:
		return IntHistParams{NB: 16, ImgTileBytes: 512 * kib, HistBytes: 64 * kib, Frames: 12}
	}
}

// NewIntegralHistogram builds the integral histogram benchmark with the
// cross-weave scan (Porikli's algorithm, as the OmpSs benchmark implements
// it): per frame, a horizontal pass propagates histograms left-to-right
// within every tile row (rows run in parallel), then a vertical pass
// propagates top-to-bottom within every column (columns run in parallel).
// The vertical pass runs against the row-major data distribution, which is
// what makes the benchmark NUMA-hostile — the paper's Figure 1 has DFIFO
// collapsing to 0.40 here. Expert distribution is block rows.
func NewIntegralHistogram(s Scale) App {
	p := IntHistPreset(s)
	return App{Name: "inthist", Build: func(r *rt.Runtime) { buildIntHist(r, p) }}
}

func buildIntHist(r *rt.Runtime, p IntHistParams) {
	sockets := r.Machine().Sockets()
	img := make([][]*memory.Region, p.NB)
	hist := make([][]*memory.Region, p.NB)
	for i := 0; i < p.NB; i++ {
		img[i] = make([]*memory.Region, p.NB)
		hist[i] = make([]*memory.Region, p.NB)
		for j := 0; j < p.NB; j++ {
			img[i][j] = r.Mem().Alloc(fmt.Sprintf("img[%d][%d]", i, j), p.ImgTileBytes, memory.Deferred, 0)
			hist[i][j] = r.Mem().Alloc(fmt.Sprintf("hist[%d][%d]", i, j), p.HistBytes, memory.Deferred, 0)
		}
	}
	// Load the image (first touch of the streamed input).
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("load(%d,%d)", i, j),
				Flops:    float64(p.ImgTileBytes / 8),
				Accesses: []rt.Access{{Region: img[i][j], Mode: rt.Out}},
				EPSocket: blockRowOwner(i, p.NB, sockets),
			})
		}
	}
	for f := 0; f < p.Frames; f++ {
		// Horizontal pass: row scans, parallel across rows.
		for i := 0; i < p.NB; i++ {
			for j := 0; j < p.NB; j++ {
				acc := []rt.Access{
					{Region: hist[i][j], Mode: rt.Out},
					{Region: img[i][j], Mode: rt.In},
				}
				if j > 0 {
					acc = append(acc, rt.Access{Region: hist[i][j-1], Mode: rt.In})
				}
				r.Submit(rt.TaskSpec{
					Label:    fmt.Sprintf("hscan(%d,%d,%d)", f, i, j),
					Flops:    2*float64(p.ImgTileBytes/8) + float64(p.HistBytes/8),
					Accesses: acc,
					EPSocket: blockRowOwner(i, p.NB, sockets),
				})
			}
		}
		// Vertical pass: column scans, parallel across columns; every step
		// except the first reads the histogram tile of the row above.
		for j := 0; j < p.NB; j++ {
			for i := 1; i < p.NB; i++ {
				r.Submit(rt.TaskSpec{
					Label: fmt.Sprintf("vscan(%d,%d,%d)", f, i, j),
					Flops: 2 * float64(p.HistBytes/8),
					Accesses: []rt.Access{
						{Region: hist[i][j], Mode: rt.InOut},
						{Region: hist[i-1][j], Mode: rt.In},
					},
					EPSocket: blockRowOwner(i, p.NB, sockets),
				})
			}
		}
	}
}
