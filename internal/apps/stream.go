package apps

import (
	"fmt"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// NStreamParams sizes the NStream benchmark.
type NStreamParams struct {
	// Chunks is the number of array chunks (the task granularity).
	Chunks int
	// ChunkBytes is the size of one chunk of one array.
	ChunkBytes int64
	// Iters is the number of triad sweeps.
	Iters int
}

// NStreamPreset returns per-scale default sizes.
func NStreamPreset(s Scale) NStreamParams {
	switch s {
	case Tiny:
		return NStreamParams{Chunks: 8, ChunkBytes: 64 * kib, Iters: 2}
	case Small:
		return NStreamParams{Chunks: 32, ChunkBytes: 256 * kib, Iters: 6}
	default:
		return NStreamParams{Chunks: 96, ChunkBytes: 1 * mib, Iters: 24}
	}
}

// NewNStream builds the NStream benchmark: a STREAM-triad kernel
// a[j] = b[j] + s*c[j] over chunked arrays, repeated Iters times. Chunks are
// independent of each other; iterations on the same chunk serialize through
// the write to a[j]. The kernel moves three bytes streams per flop pair, so
// it is the most bandwidth-bound app in the suite — the one where the paper
// reports the largest gains for EP and RGP+LAS (~1.75x over LAS).
//
// The locality trap it sets for the LAS baseline is the initialization:
// deferred allocation places each chunk of a, b and c wherever its (randomly
// scheduled) init task happens to run, so the three chunks a task needs
// usually end up on different sockets. The expert distribution aligns all
// three arrays block-wise; RGP's partition of the first window recovers the
// same alignment from the graph structure.
func NewNStream(s Scale) App {
	p := NStreamPreset(s)
	return App{Name: "nstream", Build: func(r *rt.Runtime) { buildNStream(r, p) }}
}

func buildNStream(r *rt.Runtime, p NStreamParams) {
	sockets := r.Machine().Sockets()
	alloc := func(name string) []*memory.Region {
		a := make([]*memory.Region, p.Chunks)
		for j := range a {
			a[j] = r.Mem().Alloc(fmt.Sprintf("%s[%d]", name, j), p.ChunkBytes, memory.Deferred, 0)
		}
		return a
	}
	a, b, c := alloc("a"), alloc("b"), alloc("c")
	for j := 0; j < p.Chunks; j++ {
		owner := blockRowOwner(j, p.Chunks, sockets)
		for _, arr := range []struct {
			name string
			regs []*memory.Region
		}{{"a", a}, {"b", b}, {"c", c}} {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("init_%s(%d)", arr.name, j),
				Flops:    float64(p.ChunkBytes / 8),
				Accesses: []rt.Access{{Region: arr.regs[j], Mode: rt.Out}},
				EPSocket: owner,
			})
		}
	}
	for it := 0; it < p.Iters; it++ {
		for j := 0; j < p.Chunks; j++ {
			r.Submit(rt.TaskSpec{
				Label: fmt.Sprintf("triad(%d,%d)", it, j),
				// Two flops per point: multiply and add.
				Flops: 2 * float64(p.ChunkBytes/8),
				Accesses: []rt.Access{
					{Region: a[j], Mode: rt.Out},
					{Region: b[j], Mode: rt.In},
					{Region: c[j], Mode: rt.In},
				},
				EPSocket: blockRowOwner(j, p.Chunks, sockets),
			})
		}
	}
}
