package apps

import (
	"fmt"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// CGParams sizes the conjugate gradient benchmark.
type CGParams struct {
	// Blocks is the number of row blocks of the banded system.
	Blocks int
	// ABlockBytes is the size of one matrix row block (the heavy stream).
	ABlockBytes int64
	// VecBlockBytes is the size of one vector block.
	VecBlockBytes int64
	// Iters is the number of CG iterations.
	Iters int
}

// CGPreset returns per-scale default sizes.
func CGPreset(s Scale) CGParams {
	switch s {
	case Tiny:
		return CGParams{Blocks: 4, ABlockBytes: 128 * kib, VecBlockBytes: 32 * kib, Iters: 2}
	case Small:
		return CGParams{Blocks: 16, ABlockBytes: 512 * kib, VecBlockBytes: 64 * kib, Iters: 4}
	default:
		return CGParams{Blocks: 64, ABlockBytes: 1 * mib, VecBlockBytes: 128 * kib, Iters: 10}
	}
}

// NewCG builds the conjugate gradient benchmark on a block-tridiagonal
// (banded) SPD system: each iteration performs a blocked SpMV (each row
// block reads its matrix block and three neighboring p blocks), two global
// dot-product reductions through small scalar regions, and the blocked
// vector updates. The reductions make CG the most synchronization-heavy app
// in the suite. Expert distribution is block rows.
func NewCG(s Scale) App {
	p := CGPreset(s)
	return App{Name: "cg", Build: func(r *rt.Runtime) { buildCG(r, p) }}
}

func buildCG(r *rt.Runtime, p CGParams) {
	sockets := r.Machine().Sockets()
	allocVec := func(name string) []*memory.Region {
		v := make([]*memory.Region, p.Blocks)
		for i := range v {
			v[i] = r.Mem().Alloc(fmt.Sprintf("%s[%d]", name, i), p.VecBlockBytes, memory.Deferred, 0)
		}
		return v
	}
	A := make([]*memory.Region, p.Blocks)
	for i := range A {
		A[i] = r.Mem().Alloc(fmt.Sprintf("A[%d]", i), p.ABlockBytes, memory.Deferred, 0)
	}
	x, rr, pp, q := allocVec("x"), allocVec("r"), allocVec("p"), allocVec("q")
	pd1, pd2 := allocVec("pd1"), allocVec("pd2")
	// Scalars travel through small regions; every block task of the next
	// phase reads them (the broadcast after the reduction).
	alpha := r.Mem().Alloc("alpha", 64, memory.Deferred, 0)
	beta := r.Mem().Alloc("beta", 64, memory.Deferred, 0)

	vecFlops := float64(p.VecBlockBytes / 8)
	spmvFlops := 2 * float64(p.ABlockBytes/8) // 2 flops per matrix entry

	for i := 0; i < p.Blocks; i++ {
		owner := blockRowOwner(i, p.Blocks, sockets)
		r.Submit(rt.TaskSpec{Label: fmt.Sprintf("init_A(%d)", i),
			Flops:    float64(p.ABlockBytes / 8),
			Accesses: []rt.Access{{Region: A[i], Mode: rt.Out}}, EPSocket: owner})
		for _, v := range []struct {
			n string
			r *memory.Region
		}{{"x", x[i]}, {"r", rr[i]}, {"p", pp[i]}} {
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("init_%s(%d)", v.n, i),
				Flops:    vecFlops,
				Accesses: []rt.Access{{Region: v.r, Mode: rt.Out}}, EPSocket: owner})
		}
	}
	for it := 0; it < p.Iters; it++ {
		// q = A p (banded: each block reads p[i-1], p[i], p[i+1]).
		for i := 0; i < p.Blocks; i++ {
			acc := []rt.Access{
				{Region: q[i], Mode: rt.Out},
				{Region: A[i], Mode: rt.In},
				{Region: pp[i], Mode: rt.In},
			}
			if i > 0 {
				acc = append(acc, rt.Access{Region: pp[i-1], Mode: rt.In})
			}
			if i+1 < p.Blocks {
				acc = append(acc, rt.Access{Region: pp[i+1], Mode: rt.In})
			}
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("spmv(%d,%d)", it, i),
				Flops: spmvFlops, Accesses: acc,
				EPSocket: blockRowOwner(i, p.Blocks, sockets)})
		}
		// alpha = rr / (p . q): block partials then one reduction.
		for i := 0; i < p.Blocks; i++ {
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("dot1(%d,%d)", it, i),
				Flops: 2 * vecFlops,
				Accesses: []rt.Access{
					{Region: pd1[i], Mode: rt.Out},
					{Region: pp[i], Mode: rt.In},
					{Region: q[i], Mode: rt.In},
				},
				EPSocket: blockRowOwner(i, p.Blocks, sockets)})
		}
		accRed := []rt.Access{{Region: alpha, Mode: rt.Out}}
		for i := 0; i < p.Blocks; i++ {
			accRed = append(accRed, rt.Access{Region: pd1[i], Mode: rt.In})
		}
		r.Submit(rt.TaskSpec{Label: fmt.Sprintf("reduce1(%d)", it),
			Flops: float64(p.Blocks), Accesses: accRed, EPSocket: 0})
		// x += alpha p ; r -= alpha q.
		for i := 0; i < p.Blocks; i++ {
			owner := blockRowOwner(i, p.Blocks, sockets)
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("axpy_x(%d,%d)", it, i),
				Flops: 2 * vecFlops,
				Accesses: []rt.Access{
					{Region: x[i], Mode: rt.InOut},
					{Region: pp[i], Mode: rt.In},
					{Region: alpha, Mode: rt.In},
				}, EPSocket: owner})
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("axpy_r(%d,%d)", it, i),
				Flops: 2 * vecFlops,
				Accesses: []rt.Access{
					{Region: rr[i], Mode: rt.InOut},
					{Region: q[i], Mode: rt.In},
					{Region: alpha, Mode: rt.In},
				}, EPSocket: owner})
		}
		// beta = (r'.r') / (r.r): partials + reduction.
		for i := 0; i < p.Blocks; i++ {
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("dot2(%d,%d)", it, i),
				Flops: 2 * vecFlops,
				Accesses: []rt.Access{
					{Region: pd2[i], Mode: rt.Out},
					{Region: rr[i], Mode: rt.In},
				},
				EPSocket: blockRowOwner(i, p.Blocks, sockets)})
		}
		accRed2 := []rt.Access{{Region: beta, Mode: rt.Out}}
		for i := 0; i < p.Blocks; i++ {
			accRed2 = append(accRed2, rt.Access{Region: pd2[i], Mode: rt.In})
		}
		r.Submit(rt.TaskSpec{Label: fmt.Sprintf("reduce2(%d)", it),
			Flops: float64(p.Blocks), Accesses: accRed2, EPSocket: 0})
		// p = r + beta p.
		for i := 0; i < p.Blocks; i++ {
			r.Submit(rt.TaskSpec{Label: fmt.Sprintf("update_p(%d,%d)", it, i),
				Flops: 2 * vecFlops,
				Accesses: []rt.Access{
					{Region: pp[i], Mode: rt.InOut},
					{Region: rr[i], Mode: rt.In},
					{Region: beta, Mode: rt.In},
				},
				EPSocket: blockRowOwner(i, p.Blocks, sockets)})
		}
	}
}
