// Package apps provides the eight task-based benchmarks of the paper's
// evaluation (Figure 1) as task-graph generators: conjugate gradient,
// Gauss-Seidel, integral histogram, Jacobi, NStream, QR factorization,
// Red-Black and symmetric matrix inversion.
//
// Each generator allocates its data as deferred regions (the runtimes under
// study all rely on first-touch/deferred allocation), submits initialization
// tasks — first-touch happens through real tasks, as in the OmpSs originals
// — and then the iteration/factorization task graph. Every task carries the
// expert programmer's placement hint (EPSocket), which only the EP policy
// reads: block-row distributions for the stencils and streams, 2D
// block-cyclic for the dense linear algebra.
//
// Task costs follow the kernels' arithmetic: streaming and stencil tasks
// move many bytes per flop (NUMA-sensitive), factorization tiles are
// compute-dense (NUMA-tolerant). Scales: Tiny for unit tests, Small for
// quick CLI runs, Paper for the Figure-1 reproduction.
package apps

import (
	"fmt"
	"sort"

	"numadag/internal/rt"
)

// Scale selects a problem-size preset.
type Scale int

const (
	// Tiny is for unit tests: a handful of tiles, 1-2 iterations.
	Tiny Scale = iota
	// Small runs in well under a second of host time.
	Small
	// Paper approximates the evaluation's task counts (thousands of tasks).
	Paper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale converts a string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("apps: unknown scale %q (tiny|small|paper)", s)
	}
}

// App is a named task-graph generator.
type App struct {
	// Name identifies the benchmark (matches the paper's Figure 1 labels).
	Name string
	// Build allocates regions and submits the benchmark's tasks.
	Build func(r *rt.Runtime)
}

// builders registers the eight benchmarks.
var builders = map[string]func(Scale) App{
	"cg":           NewCG,
	"gauss-seidel": NewGaussSeidel,
	"inthist":      NewIntegralHistogram,
	"jacobi":       NewJacobi,
	"nstream":      NewNStream,
	"qr":           NewQR,
	"red-black":    NewRedBlack,
	"syminv":       NewSymInv,
}

// Names returns the benchmark names in Figure 1's (alphabetical) order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName instantiates the named benchmark at the given scale.
func ByName(name string, s Scale) (App, error) {
	b, ok := builders[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	return b(s), nil
}

// All instantiates every benchmark at the given scale, in Names() order.
func All(s Scale) []App {
	var out []App
	for _, n := range Names() {
		a, _ := ByName(n, s)
		out = append(out, a)
	}
	return out
}

// blockRowOwner distributes nb block rows over sockets in contiguous
// blocks: rows [i*nb/s, (i+1)*nb/s) belong to socket i — the distribution an
// expert programmer writes for stencils and streams.
func blockRowOwner(row, nb, sockets int) int {
	if nb <= 0 {
		return 0
	}
	s := row * sockets / nb
	if s >= sockets {
		s = sockets - 1
	}
	return s
}

// blockCyclic2D distributes a 2D tile grid over sockets in a pr x pc
// process grid (the ScaLAPACK-style expert distribution for dense tiled
// algorithms).
func blockCyclic2D(i, j, sockets int) int {
	pr, pc := grid2(sockets)
	return (i%pr)*pc + (j % pc)
}

// grid2 factors sockets into the most square pr x pc grid.
func grid2(sockets int) (pr, pc int) {
	pr = 1
	for f := 1; f*f <= sockets; f++ {
		if sockets%f == 0 {
			pr = f
		}
	}
	return pr, sockets / pr
}

// kib and mib make sizes readable at call sites.
const (
	kib = int64(1) << 10
	mib = int64(1) << 20
)
