package apps

import (
	"fmt"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// StencilParams sizes the structured-grid benchmarks (Jacobi, Red-Black,
// Gauss-Seidel).
type StencilParams struct {
	// NB is the tile grid dimension (NB x NB tiles).
	NB int
	// TileBytes is the size of one tile.
	TileBytes int64
	// Iters is the number of sweeps.
	Iters int
}

// StencilPreset returns the per-scale default sizes.
func StencilPreset(s Scale) StencilParams {
	switch s {
	case Tiny:
		return StencilParams{NB: 4, TileBytes: 16 * kib, Iters: 2}
	case Small:
		return StencilParams{NB: 8, TileBytes: 64 * kib, Iters: 4}
	default:
		return StencilParams{NB: 16, TileBytes: 256 * kib, Iters: 12}
	}
}

// stencilFlops returns the compute work of one 5-point update over a tile:
// 4 flops per grid point (fp64 points).
func stencilFlops(tileBytes int64) float64 {
	return 4 * float64(tileBytes/8)
}

// NewJacobi builds the Jacobi benchmark: an out-of-place 5-point stencil
// ping-ponging between two tile arrays. Each task reads its tile and the
// four neighbors from the source array and overwrites its tile in the
// destination array. The expert distribution is block rows.
func NewJacobi(s Scale) App {
	p := StencilPreset(s)
	return App{Name: "jacobi", Build: func(r *rt.Runtime) { buildJacobi(r, p) }}
}

func buildJacobi(r *rt.Runtime, p StencilParams) {
	sockets := r.Machine().Sockets()
	alloc2D := func(name string) [][]*memory.Region {
		a := make([][]*memory.Region, p.NB)
		for i := range a {
			a[i] = make([]*memory.Region, p.NB)
			for j := range a[i] {
				a[i][j] = r.Mem().Alloc(fmt.Sprintf("%s[%d][%d]", name, i, j), p.TileBytes, memory.Deferred, 0)
			}
		}
		return a
	}
	src, dst := alloc2D("src"), alloc2D("dst")
	// Initialization tasks first-touch the source grid.
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("init(%d,%d)", i, j),
				Flops:    float64(p.TileBytes / 8),
				Accesses: []rt.Access{{Region: src[i][j], Mode: rt.Out}},
				EPSocket: blockRowOwner(i, p.NB, sockets),
			})
		}
	}
	for it := 0; it < p.Iters; it++ {
		for i := 0; i < p.NB; i++ {
			for j := 0; j < p.NB; j++ {
				acc := []rt.Access{{Region: dst[i][j], Mode: rt.Out}, {Region: src[i][j], Mode: rt.In}}
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ni, nj := i+d[0], j+d[1]
					if ni >= 0 && ni < p.NB && nj >= 0 && nj < p.NB {
						acc = append(acc, rt.Access{Region: src[ni][nj], Mode: rt.In})
					}
				}
				r.Submit(rt.TaskSpec{
					Label:    fmt.Sprintf("jacobi(%d,%d,%d)", it, i, j),
					Flops:    stencilFlops(p.TileBytes),
					Accesses: acc,
					EPSocket: blockRowOwner(i, p.NB, sockets),
				})
			}
		}
		src, dst = dst, src
	}
}

// NewRedBlack builds the Red-Black Gauss-Seidel benchmark: an in-place
// 5-point stencil over a single array in two half-sweeps per iteration —
// first the "red" tiles (i+j even) update reading their black neighbors,
// then the black tiles. Expert distribution is block rows.
func NewRedBlack(s Scale) App {
	p := StencilPreset(s)
	return App{Name: "red-black", Build: func(r *rt.Runtime) { buildRedBlack(r, p) }}
}

func buildRedBlack(r *rt.Runtime, p StencilParams) {
	sockets := r.Machine().Sockets()
	u := make([][]*memory.Region, p.NB)
	for i := range u {
		u[i] = make([]*memory.Region, p.NB)
		for j := range u[i] {
			u[i][j] = r.Mem().Alloc(fmt.Sprintf("u[%d][%d]", i, j), p.TileBytes, memory.Deferred, 0)
		}
	}
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("init(%d,%d)", i, j),
				Flops:    float64(p.TileBytes / 8),
				Accesses: []rt.Access{{Region: u[i][j], Mode: rt.Out}},
				EPSocket: blockRowOwner(i, p.NB, sockets),
			})
		}
	}
	for it := 0; it < p.Iters; it++ {
		for _, color := range []int{0, 1} {
			for i := 0; i < p.NB; i++ {
				for j := 0; j < p.NB; j++ {
					if (i+j)%2 != color {
						continue
					}
					acc := []rt.Access{{Region: u[i][j], Mode: rt.InOut}}
					for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
						ni, nj := i+d[0], j+d[1]
						if ni >= 0 && ni < p.NB && nj >= 0 && nj < p.NB {
							acc = append(acc, rt.Access{Region: u[ni][nj], Mode: rt.In})
						}
					}
					r.Submit(rt.TaskSpec{
						Label:    fmt.Sprintf("rb(%d,%d,%d,%d)", it, color, i, j),
						Flops:    stencilFlops(p.TileBytes),
						Accesses: acc,
						EPSocket: blockRowOwner(i, p.NB, sockets),
					})
				}
			}
		}
	}
}

// NewGaussSeidel builds the Gauss-Seidel benchmark: an in-place 5-point
// stencil swept in row-major order, so the dependence tracker derives the
// classic diagonal wavefront (each tile reads already-updated west/north
// neighbors of the same sweep and stale east/south values). Expert
// distribution is block rows.
func NewGaussSeidel(s Scale) App {
	p := StencilPreset(s)
	return App{Name: "gauss-seidel", Build: func(r *rt.Runtime) { buildGaussSeidel(r, p) }}
}

func buildGaussSeidel(r *rt.Runtime, p StencilParams) {
	sockets := r.Machine().Sockets()
	u := make([][]*memory.Region, p.NB)
	for i := range u {
		u[i] = make([]*memory.Region, p.NB)
		for j := range u[i] {
			u[i][j] = r.Mem().Alloc(fmt.Sprintf("u[%d][%d]", i, j), p.TileBytes, memory.Deferred, 0)
		}
	}
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("init(%d,%d)", i, j),
				Flops:    float64(p.TileBytes / 8),
				Accesses: []rt.Access{{Region: u[i][j], Mode: rt.Out}},
				EPSocket: blockRowOwner(i, p.NB, sockets),
			})
		}
	}
	for it := 0; it < p.Iters; it++ {
		for i := 0; i < p.NB; i++ {
			for j := 0; j < p.NB; j++ {
				acc := []rt.Access{{Region: u[i][j], Mode: rt.InOut}}
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ni, nj := i+d[0], j+d[1]
					if ni >= 0 && ni < p.NB && nj >= 0 && nj < p.NB {
						acc = append(acc, rt.Access{Region: u[ni][nj], Mode: rt.In})
					}
				}
				r.Submit(rt.TaskSpec{
					Label:    fmt.Sprintf("gs(%d,%d,%d)", it, i, j),
					Flops:    stencilFlops(p.TileBytes),
					Accesses: acc,
					EPSocket: blockRowOwner(i, p.NB, sockets),
				})
			}
		}
	}
}
