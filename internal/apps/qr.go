package apps

import (
	"fmt"
	"math"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// DenseParams sizes the dense tiled linear-algebra benchmarks (QR,
// symmetric matrix inversion).
type DenseParams struct {
	// NT is the tile grid dimension (NT x NT tiles).
	NT int
	// TileBytes is the size of one square tile.
	TileBytes int64
}

// DensePreset returns per-scale default sizes.
func DensePreset(s Scale) DenseParams {
	switch s {
	case Tiny:
		return DenseParams{NT: 4, TileBytes: 32 * kib}
	case Small:
		return DenseParams{NT: 8, TileBytes: 64 * kib}
	default:
		return DenseParams{NT: 22, TileBytes: 96 * kib}
	}
}

// tileSide returns the tile dimension n for an n x n fp64 tile.
func tileSide(tileBytes int64) float64 {
	return math.Sqrt(float64(tileBytes / 8))
}

// Tile kernel costs (classic LAPACK flop counts, n = tile side):
//
//	GEMM-class updates   2n^3
//	TRSM/TSQRT/UNMQR-class  n^3..(4/3)n^3 — approximated as n^3
//	Panel kernels (GEQRT/POTRF)  ~(2/3..4/3)n^3 — approximated as n^3
func gemmFlops(tileBytes int64) float64  { n := tileSide(tileBytes); return 2 * n * n * n }
func trsmFlops(tileBytes int64) float64  { n := tileSide(tileBytes); return n * n * n }
func panelFlops(tileBytes int64) float64 { n := tileSide(tileBytes); return n * n * n }

// NewQR builds the tiled Householder QR factorization (Buttari et al.'s
// tile algorithm, the one the OmpSs benchmark implements):
//
//	for k in 0..NT-1:
//	  GEQRT(k,k)                     panel factorization
//	  UNMQR(k,j)  for j > k          apply V(k,k) to row k
//	  TSQRT(i,k)  for i > k          fold tile (i,k) into the panel
//	  TSMQR(i,j,k) for i > k, j > k  trailing update
//
// Tiles are compute-dense (O(n^3) flops over O(n^2) bytes), so QR is the
// least NUMA-sensitive app of the suite. Expert distribution: 2D block
// cyclic owners, tasks placed on the owner of the tile they update.
func NewQR(s Scale) App {
	p := DensePreset(s)
	return App{Name: "qr", Build: func(r *rt.Runtime) { buildQR(r, p) }}
}

func buildQR(r *rt.Runtime, p DenseParams) {
	sockets := r.Machine().Sockets()
	A := make([][]*memory.Region, p.NT)
	T := make([][]*memory.Region, p.NT)
	for i := 0; i < p.NT; i++ {
		A[i] = make([]*memory.Region, p.NT)
		T[i] = make([]*memory.Region, p.NT)
		for j := 0; j < p.NT; j++ {
			A[i][j] = r.Mem().Alloc(fmt.Sprintf("A[%d][%d]", i, j), p.TileBytes, memory.Deferred, 0)
			// T factors are narrow (ib x n): a fraction of a tile.
			T[i][j] = r.Mem().Alloc(fmt.Sprintf("T[%d][%d]", i, j), p.TileBytes/8, memory.Deferred, 0)
		}
	}
	for i := 0; i < p.NT; i++ {
		for j := 0; j < p.NT; j++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("init(%d,%d)", i, j),
				Flops:    float64(p.TileBytes / 8),
				Accesses: []rt.Access{{Region: A[i][j], Mode: rt.Out}},
				EPSocket: blockCyclic2D(i, j, sockets),
			})
		}
	}
	for k := 0; k < p.NT; k++ {
		r.Submit(rt.TaskSpec{
			Label: fmt.Sprintf("geqrt(%d)", k),
			Flops: panelFlops(p.TileBytes),
			Accesses: []rt.Access{
				{Region: A[k][k], Mode: rt.InOut},
				{Region: T[k][k], Mode: rt.Out},
			},
			EPSocket: blockCyclic2D(k, k, sockets),
		})
		for j := k + 1; j < p.NT; j++ {
			r.Submit(rt.TaskSpec{
				Label: fmt.Sprintf("unmqr(%d,%d)", k, j),
				Flops: trsmFlops(p.TileBytes),
				Accesses: []rt.Access{
					{Region: A[k][j], Mode: rt.InOut},
					{Region: A[k][k], Mode: rt.In},
					{Region: T[k][k], Mode: rt.In},
				},
				EPSocket: blockCyclic2D(k, j, sockets),
			})
		}
		for i := k + 1; i < p.NT; i++ {
			r.Submit(rt.TaskSpec{
				Label: fmt.Sprintf("tsqrt(%d,%d)", i, k),
				Flops: trsmFlops(p.TileBytes),
				Accesses: []rt.Access{
					{Region: A[k][k], Mode: rt.InOut},
					{Region: A[i][k], Mode: rt.InOut},
					{Region: T[i][k], Mode: rt.Out},
				},
				EPSocket: blockCyclic2D(i, k, sockets),
			})
			for j := k + 1; j < p.NT; j++ {
				r.Submit(rt.TaskSpec{
					Label: fmt.Sprintf("tsmqr(%d,%d,%d)", i, j, k),
					Flops: gemmFlops(p.TileBytes),
					Accesses: []rt.Access{
						{Region: A[k][j], Mode: rt.InOut},
						{Region: A[i][j], Mode: rt.InOut},
						{Region: A[i][k], Mode: rt.In},
						{Region: T[i][k], Mode: rt.In},
					},
					EPSocket: blockCyclic2D(i, j, sockets),
				})
			}
		}
	}
}
