package apps

import (
	"fmt"

	"numadag/internal/rt"
)

// The WithParams constructors expose each generator with explicit problem
// sizes, for experiments beyond the three presets. They validate eagerly so
// a bad sweep configuration fails before any simulation time is spent.

// Validate checks stencil parameters.
func (p StencilParams) Validate() error {
	if p.NB < 2 || p.TileBytes <= 0 || p.Iters < 1 {
		return fmt.Errorf("apps: invalid stencil params %+v", p)
	}
	return nil
}

// Validate checks NStream parameters.
func (p NStreamParams) Validate() error {
	if p.Chunks < 1 || p.ChunkBytes <= 0 || p.Iters < 1 {
		return fmt.Errorf("apps: invalid nstream params %+v", p)
	}
	return nil
}

// Validate checks CG parameters.
func (p CGParams) Validate() error {
	if p.Blocks < 2 || p.ABlockBytes <= 0 || p.VecBlockBytes <= 0 || p.Iters < 1 {
		return fmt.Errorf("apps: invalid cg params %+v", p)
	}
	return nil
}

// Validate checks integral-histogram parameters.
func (p IntHistParams) Validate() error {
	if p.NB < 2 || p.ImgTileBytes <= 0 || p.HistBytes <= 0 || p.Frames < 1 {
		return fmt.Errorf("apps: invalid inthist params %+v", p)
	}
	return nil
}

// Validate checks dense linear-algebra parameters.
func (p DenseParams) Validate() error {
	if p.NT < 2 || p.TileBytes <= 0 {
		return fmt.Errorf("apps: invalid dense params %+v", p)
	}
	return nil
}

// NewJacobiWith builds Jacobi with explicit sizes.
func NewJacobiWith(p StencilParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "jacobi", Build: func(r *rt.Runtime) { buildJacobi(r, p) }}, nil
}

// NewRedBlackWith builds Red-Black with explicit sizes.
func NewRedBlackWith(p StencilParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "red-black", Build: func(r *rt.Runtime) { buildRedBlack(r, p) }}, nil
}

// NewGaussSeidelWith builds Gauss-Seidel with explicit sizes.
func NewGaussSeidelWith(p StencilParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "gauss-seidel", Build: func(r *rt.Runtime) { buildGaussSeidel(r, p) }}, nil
}

// NewNStreamWith builds NStream with explicit sizes.
func NewNStreamWith(p NStreamParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "nstream", Build: func(r *rt.Runtime) { buildNStream(r, p) }}, nil
}

// NewCGWith builds conjugate gradient with explicit sizes.
func NewCGWith(p CGParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "cg", Build: func(r *rt.Runtime) { buildCG(r, p) }}, nil
}

// NewIntegralHistogramWith builds the integral histogram with explicit
// sizes.
func NewIntegralHistogramWith(p IntHistParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "inthist", Build: func(r *rt.Runtime) { buildIntHist(r, p) }}, nil
}

// NewQRWith builds tiled QR with explicit sizes.
func NewQRWith(p DenseParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "qr", Build: func(r *rt.Runtime) { buildQR(r, p) }}, nil
}

// NewSymInvWith builds symmetric matrix inversion with explicit sizes.
func NewSymInvWith(p DenseParams) (App, error) {
	if err := p.Validate(); err != nil {
		return App{}, err
	}
	return App{Name: "syminv", Build: func(r *rt.Runtime) { buildSymInv(r, p) }}, nil
}
