package apps

import (
	"testing"

	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

func TestWithParamsConstructors(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (App, error)
	}{
		{"jacobi", func() (App, error) {
			return NewJacobiWith(StencilParams{NB: 3, TileBytes: 8 * kib, Iters: 1})
		}},
		{"red-black", func() (App, error) {
			return NewRedBlackWith(StencilParams{NB: 3, TileBytes: 8 * kib, Iters: 1})
		}},
		{"gauss-seidel", func() (App, error) {
			return NewGaussSeidelWith(StencilParams{NB: 3, TileBytes: 8 * kib, Iters: 1})
		}},
		{"nstream", func() (App, error) {
			return NewNStreamWith(NStreamParams{Chunks: 3, ChunkBytes: 8 * kib, Iters: 1})
		}},
		{"cg", func() (App, error) {
			return NewCGWith(CGParams{Blocks: 3, ABlockBytes: 16 * kib, VecBlockBytes: 8 * kib, Iters: 1})
		}},
		{"inthist", func() (App, error) {
			return NewIntegralHistogramWith(IntHistParams{NB: 3, ImgTileBytes: 16 * kib, HistBytes: 4 * kib, Frames: 1})
		}},
		{"qr", func() (App, error) {
			return NewQRWith(DenseParams{NT: 3, TileBytes: 8 * kib})
		}},
		{"syminv", func() (App, error) {
			return NewSymInvWith(DenseParams{NT: 3, TileBytes: 8 * kib})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			app, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			if app.Name != c.name {
				t.Fatalf("name = %q", app.Name)
			}
			m := machine.New(machine.TwoSocketXeon(), sim.NewEngine())
			r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
			app.Build(r)
			if r.Graph().Len() == 0 {
				t.Fatal("no tasks")
			}
			r.Run()
			if err := r.AuditSchedule(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWithParamsValidation(t *testing.T) {
	if _, err := NewJacobiWith(StencilParams{NB: 1, TileBytes: 1, Iters: 1}); err == nil {
		t.Error("NB=1 accepted")
	}
	if _, err := NewNStreamWith(NStreamParams{Chunks: 0, ChunkBytes: 1, Iters: 1}); err == nil {
		t.Error("0 chunks accepted")
	}
	if _, err := NewCGWith(CGParams{Blocks: 2, ABlockBytes: 0, VecBlockBytes: 1, Iters: 1}); err == nil {
		t.Error("0 matrix bytes accepted")
	}
	if _, err := NewIntegralHistogramWith(IntHistParams{NB: 2, ImgTileBytes: 1, HistBytes: 1, Frames: 0}); err == nil {
		t.Error("0 frames accepted")
	}
	if _, err := NewQRWith(DenseParams{NT: 1, TileBytes: 1}); err == nil {
		t.Error("NT=1 accepted")
	}
	if _, err := NewSymInvWith(DenseParams{NT: 2, TileBytes: 0}); err == nil {
		t.Error("0 tile bytes accepted")
	}
}

func TestScaleStringAndPresetMonotone(t *testing.T) {
	if Tiny.String() != "tiny" || Small.String() != "small" || Paper.String() != "paper" {
		t.Fatal("scale labels")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale label empty")
	}
	// Presets must grow with scale (task counts monotone).
	count := func(s Scale, name string) int {
		app, err := ByName(name, s)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(machine.BullionS16(), sim.NewEngine())
		r := rt.NewRuntime(m, dfifoStub{}, rt.Options{})
		app.Build(r)
		return r.Graph().Len()
	}
	for _, name := range Names() {
		tiny, small, paper := count(Tiny, name), count(Small, name), count(Paper, name)
		if !(tiny < small && small < paper) {
			t.Errorf("%s: task counts not monotone: %d, %d, %d", name, tiny, small, paper)
		}
	}
}
