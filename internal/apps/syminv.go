package apps

import (
	"fmt"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

// NewSymInv builds the symmetric (SPD) matrix inversion benchmark: the
// three-sweep tile algorithm (PLASMA's Cholesky inversion) over the lower
// triangle —
//
//  1. POTRF: A = L L^T        (Cholesky factorization)
//  2. TRTRI: L <- L^-1        (triangular inversion)
//  3. LAUUM: A^-1 = L^-T L^-1 (triangular matrix product)
//
// Each sweep is a panel-plus-trailing-update DAG; chaining three of them
// yields one of the deepest graphs in the suite. Expert distribution:
// 2D block cyclic, tasks on the owner of the tile they update.
func NewSymInv(s Scale) App {
	p := DensePreset(s)
	return App{Name: "syminv", Build: func(r *rt.Runtime) { buildSymInv(r, p) }}
}

func buildSymInv(r *rt.Runtime, p DenseParams) {
	sockets := r.Machine().Sockets()
	// Lower triangle of tiles.
	A := make([][]*memory.Region, p.NT)
	for i := 0; i < p.NT; i++ {
		A[i] = make([]*memory.Region, i+1)
		for j := 0; j <= i; j++ {
			A[i][j] = r.Mem().Alloc(fmt.Sprintf("A[%d][%d]", i, j), p.TileBytes, memory.Deferred, 0)
		}
	}
	submit := func(label string, flops float64, epI, epJ int, acc ...rt.Access) {
		r.Submit(rt.TaskSpec{
			Label:    label,
			Flops:    flops,
			Accesses: acc,
			EPSocket: blockCyclic2D(epI, epJ, sockets),
		})
	}
	for i := 0; i < p.NT; i++ {
		for j := 0; j <= i; j++ {
			submit(fmt.Sprintf("init(%d,%d)", i, j), float64(p.TileBytes/8), i, j,
				rt.Access{Region: A[i][j], Mode: rt.Out})
		}
	}
	// Sweep 1: POTRF.
	for k := 0; k < p.NT; k++ {
		submit(fmt.Sprintf("potrf(%d)", k), panelFlops(p.TileBytes), k, k,
			rt.Access{Region: A[k][k], Mode: rt.InOut})
		for i := k + 1; i < p.NT; i++ {
			submit(fmt.Sprintf("trsm(%d,%d)", i, k), trsmFlops(p.TileBytes), i, k,
				rt.Access{Region: A[i][k], Mode: rt.InOut},
				rt.Access{Region: A[k][k], Mode: rt.In})
		}
		for i := k + 1; i < p.NT; i++ {
			submit(fmt.Sprintf("syrk(%d,%d)", i, k), trsmFlops(p.TileBytes), i, i,
				rt.Access{Region: A[i][i], Mode: rt.InOut},
				rt.Access{Region: A[i][k], Mode: rt.In})
			for j := k + 1; j < i; j++ {
				submit(fmt.Sprintf("gemm(%d,%d,%d)", i, j, k), gemmFlops(p.TileBytes), i, j,
					rt.Access{Region: A[i][j], Mode: rt.InOut},
					rt.Access{Region: A[i][k], Mode: rt.In},
					rt.Access{Region: A[j][k], Mode: rt.In})
			}
		}
	}
	// Sweep 2: TRTRI (tile lower-triangular inversion).
	for k := 0; k < p.NT; k++ {
		for i := k + 1; i < p.NT; i++ {
			submit(fmt.Sprintf("trsm_l(%d,%d)", i, k), trsmFlops(p.TileBytes), i, k,
				rt.Access{Region: A[i][k], Mode: rt.InOut},
				rt.Access{Region: A[i][i], Mode: rt.In})
			for j := k + 1; j < i; j++ {
				submit(fmt.Sprintf("gemm_t(%d,%d,%d)", i, j, k), gemmFlops(p.TileBytes), i, k,
					rt.Access{Region: A[i][k], Mode: rt.InOut},
					rt.Access{Region: A[i][j], Mode: rt.In},
					rt.Access{Region: A[j][k], Mode: rt.In})
			}
		}
		submit(fmt.Sprintf("trtri(%d)", k), panelFlops(p.TileBytes), k, k,
			rt.Access{Region: A[k][k], Mode: rt.InOut})
	}
	// Sweep 3: LAUUM (A^-1 = L^-T L^-1 over the lower triangle).
	for k := 0; k < p.NT; k++ {
		for j := 0; j < k; j++ {
			for i := k + 1; i < p.NT; i++ {
				submit(fmt.Sprintf("gemm_u(%d,%d,%d)", i, j, k), gemmFlops(p.TileBytes), k, j,
					rt.Access{Region: A[k][j], Mode: rt.InOut},
					rt.Access{Region: A[i][k], Mode: rt.In},
					rt.Access{Region: A[i][j], Mode: rt.In})
			}
			submit(fmt.Sprintf("trmm(%d,%d)", k, j), trsmFlops(p.TileBytes), k, j,
				rt.Access{Region: A[k][j], Mode: rt.InOut},
				rt.Access{Region: A[k][k], Mode: rt.In})
		}
		submit(fmt.Sprintf("lauum(%d)", k), panelFlops(p.TileBytes), k, k,
			rt.Access{Region: A[k][k], Mode: rt.InOut})
		for i := k + 1; i < p.NT; i++ {
			submit(fmt.Sprintf("syrk_u(%d,%d)", i, k), trsmFlops(p.TileBytes), k, k,
				rt.Access{Region: A[k][k], Mode: rt.InOut},
				rt.Access{Region: A[i][k], Mode: rt.In})
		}
	}
}
