package policy

import (
	"strings"
	"testing"

	"numadag/internal/rt"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("RGP+LAS?matching=random&refine=off")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "RGP+LAS" || s.Params["matching"] != "random" || s.Params["refine"] != "off" {
		t.Fatalf("parsed %+v", s)
	}
	if got := s.String(); got != "RGP+LAS?matching=random&refine=off" {
		t.Fatalf("String() = %q", got)
	}
	if s, err := ParseSpec("LAS"); err != nil || s.Name != "LAS" || s.Params != nil {
		t.Fatalf("bare name: %+v, %v", s, err)
	}
	for _, bad := range []string{"", "?x=1", "LAS?", "LAS?novalue", "LAS?=v", "LAS?a=1&a=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestRegistryBuiltins(t *testing.T) {
	for _, n := range []string{"DFIFO", "LAS", "EP", "RGP+LAS", "RGP", "Random", "OSMigrate", "HEFT"} {
		p, err := New(n)
		if err != nil || p == nil {
			t.Errorf("New(%q): %v", n, err)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "LAS") {
		t.Errorf("error should list registered policies, got %v", err)
	}
}

// registerOnce registers ignoring "already registered" — the registry is
// process-global, so repeated in-process test runs (go test -count=2) must
// not trip over their own earlier registrations.
func registerOnce(t *testing.T, name string, f Factory) {
	t.Helper()
	if err := Register(name, f); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestRegistryDuplicateAndInvalidNames(t *testing.T) {
	f := func(Spec) (rt.Policy, error) { return LAS{}, nil }
	registerOnce(t, "dup-test", f)
	if err := Register("dup-test", f); err == nil {
		t.Error("duplicate registration accepted")
	}
	for _, bad := range []string{"", "has space", "has?query", "has=eq", "has&amp"} {
		if err := Register(bad, f); err == nil {
			t.Errorf("Register(%q) accepted", bad)
		}
	}
	if err := Register("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestRegistryCustomRegistration(t *testing.T) {
	registerOnce(t, "custom-reg-test", func(s Spec) (rt.Policy, error) {
		if err := s.Only(); err != nil {
			return nil, err
		}
		return DFIFO{}, nil
	})
	p, err := New("custom-reg-test")
	if err != nil || p.Name() != "DFIFO" {
		t.Fatalf("custom policy: %v, %v", p, err)
	}
	if _, err := New("custom-reg-test?x=1"); err == nil {
		t.Error("unexpected parameter accepted")
	}
	found := false
	for _, n := range Names() {
		if n == "custom-reg-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing custom registration", Names())
	}
}

func TestRGPSpecParameters(t *testing.T) {
	p, err := New("RGP+LAS?matching=random")
	if err != nil {
		t.Fatal(err)
	}
	rgp, ok := p.(*RGP)
	if !ok || rgp.Propagate != PropagateLAS || rgp.Tune == nil {
		t.Fatalf("RGP+LAS?matching=random built %#v", p)
	}
	if p, err := New("RGP?refine=off"); err != nil {
		t.Fatal(err)
	} else if rgp := p.(*RGP); rgp.Propagate != PropagateRepartition || rgp.Tune == nil {
		t.Fatalf("RGP?refine=off built %#v", p)
	}
	// A plain spec must not install a Tune hook (default options path).
	if p, _ := New("RGP+LAS"); p.(*RGP).Tune != nil {
		t.Error("bare RGP+LAS got a Tune hook")
	}
	for _, bad := range []string{"RGP+LAS?matching=bogus", "RGP+LAS?refine=maybe", "RGP+LAS?window=9", "LAS?matching=random"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestFactoriesReturnFreshStatefulInstances(t *testing.T) {
	a, _ := New("RGP+LAS")
	b, _ := New("RGP+LAS")
	if a.(*RGP) == b.(*RGP) {
		t.Error("RGP factory reused a stateful instance")
	}
}
