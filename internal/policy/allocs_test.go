package policy

import (
	"runtime/debug"
	"testing"

	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// prepareRT builds an un-run, windows-heavy runtime for Prepare benchmarks:
// Prepare only reads the submitted task graph, so one runtime serves every
// measured call.
func prepareRT(tb testing.TB, ws int) *rt.Runtime {
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	r := rt.NewRuntime(m, NewRGPLAS(), rt.Options{WindowSize: ws, Seed: 1})
	buildStencilLike(r, 12, 6) // 144 + 864 = 1008 tasks
	return r
}

// TestRGPPrepareSteadyStateAllocs bounds the repartition-every-window
// Prepare pass. The pooled prepare-state (subgraph scratch, symmetrized
// graph, dense anchor/fixed buffers) removes the old per-window maps and
// slices, leaving the per-call assign array, the distance matrix, and the
// multilevel partitioner's own interior allocations (coarsening levels,
// initial-bisection runs). The bound locks those in: a rebuild of the
// per-window extraction path shows up as an order-of-magnitude jump.
func TestRGPPrepareSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector")
	}
	r := prepareRT(t, 64)
	run := func() {
		pol := rgpPrepareProbe.pol
		pol.windowsCut = 0
		pol.ready = false
		pol.Prepare(r)
	}
	rgpPrepareProbe.pol = NewRGPRepartition()
	for i := 0; i < 3; i++ {
		run() // warm the prepare pool and the partitioner scratch
	}
	// The prepare state lives in a sync.Pool; disable GC so a collection
	// mid-measure cannot drop the warmed scratch.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Measured ~3.1k allocs for 16 windows (~200/window), essentially all
	// inside MapOnto. Reintroducing per-window maps or fresh subgraph/graph
	// construction adds thousands more and trips the bound.
	const limit = 3800
	if avg := testing.AllocsPerRun(10, run); avg > limit {
		t.Fatalf("RGP repartition Prepare allocates %.0f allocs/op, want <= %d", avg, limit)
	}
}

// rgpPrepareProbe keeps the measured policy out of the AllocsPerRun closure
// so the closure itself does not allocate.
var rgpPrepareProbe struct{ pol *RGP }

// BenchmarkRGPPrepare measures the window-partitioning pass on a
// windows-heavy stencil TDG: single-window RGP+LAS and the
// repartition-every-window ablation (16 windows of 64 tasks each).
func BenchmarkRGPPrepare(b *testing.B) {
	for _, mode := range []struct {
		name string
		mk   func() *RGP
	}{
		{"first-window", NewRGPLAS},
		{"repartition", NewRGPRepartition},
	} {
		b.Run(mode.name, func(b *testing.B) {
			r := prepareRT(b, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mode.mk().Prepare(r)
			}
		})
	}
}
