package policy

import (
	"testing"

	"numadag/internal/memory"
	"numadag/internal/rt"
)

func TestOSMigrateMovesHotRegions(t *testing.T) {
	p := NewOSMigrate()
	r := newRT(t, p, rt.Options{Seed: 1, Steal: false})
	// A region homed on socket 0, then a long chain of tasks reading it.
	// The cyclic placement spreads the readers; once any remote socket
	// accumulates consecutive accesses, the region migrates.
	data := r.Mem().Alloc("hot", 1<<20, memory.Home, 0)
	prev := r.Mem().Alloc("chain", 64, memory.Deferred, 0)
	for i := 0; i < 40; i++ {
		r.Submit(rt.TaskSpec{Label: "reader", Flops: 1000,
			Accesses: []rt.Access{
				{Region: data, Mode: rt.In},
				{Region: prev, Mode: rt.InOut}, // serialize the chain
			}, EPSocket: rt.NoEPHint})
	}
	r.Run()
	if p.Migrations == 0 {
		t.Fatal("no migrations despite persistent remote access")
	}
	if p.MigratedBytes == 0 {
		t.Fatal("migration accounting missing")
	}
}

func TestOSMigrateLeavesLocalRegionsAlone(t *testing.T) {
	p := NewOSMigrate()
	// Single-socket machine equivalent: pin everything local by using a
	// 2-socket machine and tasks that only touch their own outputs.
	r := newRT(t, p, rt.Options{Seed: 1, Steal: false})
	for i := 0; i < 16; i++ {
		reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
		r.Submit(rt.TaskSpec{Label: "t", Flops: 100,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
	}
	r.Run()
	if p.Migrations != 0 {
		t.Fatalf("%d migrations of freshly first-touched regions", p.Migrations)
	}
}

func TestOSMigrateReactsSlowerThanRGP(t *testing.T) {
	// The paper's core argument: reactive migration pays for remote traffic
	// before correcting it, proactive partitioning avoids it. On a stencil,
	// RGP+LAS must beat OSMigrate.
	run := func(pol rt.Policy) float64 {
		r := newRT(t, pol, rt.Options{WindowSize: 512, Seed: 1, Steal: true, StealThreshold: 2})
		buildStencilLike(r, 10, 6)
		return float64(r.Run().Makespan)
	}
	osm := run(NewOSMigrate())
	rgp := run(NewRGPLAS())
	if rgp >= osm {
		t.Fatalf("RGP+LAS (%.0f) not faster than OSMigrate (%.0f)", rgp, osm)
	}
}

func TestOSMigrateZeroValueUsable(t *testing.T) {
	// A zero-value OSMigrate (no NewOSMigrate) must not crash and must use
	// the default threshold.
	p := &OSMigrate{}
	r := newRT(t, p, rt.Options{Seed: 1})
	data := r.Mem().Alloc("d", 1<<20, memory.Home, 0)
	chain := r.Mem().Alloc("c", 64, memory.Deferred, 0)
	for i := 0; i < 20; i++ {
		r.Submit(rt.TaskSpec{Label: "t", Flops: 100,
			Accesses: []rt.Access{{Region: data, Mode: rt.In}, {Region: chain, Mode: rt.InOut}},
			EPSocket: rt.NoEPHint})
	}
	r.Run()
}
