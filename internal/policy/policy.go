// Package policy implements the four scheduling configurations of the
// paper's evaluation — DFIFO, LAS (the baseline), EP and the RGP family —
// plus ablation variants. Each policy is a small, pure decision function
// over the runtime's state; the runtime owns queues, stealing and
// execution.
package policy

import (
	"fmt"
	"sync"

	"numadag/internal/graph"
	"numadag/internal/partition"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// DFIFO is the distributed-FIFO configuration: every ready task goes to the
// next CPU in cyclic order, with no awareness of where data lives. The
// runtime realizes the cyclic order through per-core queues.
type DFIFO struct{}

// Name implements rt.Policy.
func (DFIFO) Name() string { return "DFIFO" }

// PickSocket implements rt.Policy.
func (DFIFO) PickSocket(*rt.Runtime, *rt.Task) int { return rt.AnySocket }

// LAS is the locality-aware scheduler of Drebes et al. that the paper uses
// as its baseline: at scheduling time the task's dependences are weighted by
// the bytes already allocated per socket, and the task is pushed to the
// heaviest socket ("enhanced work-pushing"). If no byte of its data is
// allocated yet, the socket is uniformly random; ties break randomly among
// the tied sockets. Allocation itself is deferred: output regions get homed
// wherever the producing task ends up running (the runtime implements that
// in its write phase).
type LAS struct{}

// Name implements rt.Policy.
func (LAS) Name() string { return "LAS" }

// PickSocket implements rt.Policy.
func (LAS) PickSocket(r *rt.Runtime, t *rt.Task) int {
	return lasPick(r, t)
}

// lasPick is LAS's socket choice, shared with the RGP propagation phase.
// It reads residency through the runtime's scratch slice — one query per
// scheduling decision, never retained.
func lasPick(r *rt.Runtime, t *rt.Task) int {
	res := r.ResidencyBytesScratch(t)
	var best int64
	for _, b := range res {
		if b > best {
			best = b
		}
	}
	if best == 0 {
		// Nothing allocated: uniformly random among all sockets.
		return r.Rand().Intn(len(res))
	}
	// Random tie-break among maximal sockets, with a single pass
	// reservoir draw for determinism.
	winner, seen := -1, 0
	for s, b := range res {
		if b == best {
			seen++
			if r.Rand().Intn(seen) == 0 {
				winner = s
			}
		}
	}
	return winner
}

// EP is the expert-programmer configuration: the schedule is hardcoded in
// the benchmark source. Apps annotate each task with its expert placement;
// tasks without a hint (not part of the expert's distribution) fall back to
// LAS so the configuration stays runnable on any app.
type EP struct{}

// Name implements rt.Policy.
func (EP) Name() string { return "EP" }

// PickSocket implements rt.Policy.
func (EP) PickSocket(r *rt.Runtime, t *rt.Task) int {
	if t.EPSocket != rt.NoEPHint {
		return t.EPSocket
	}
	return lasPick(r, t)
}

// VetoSteal implements rt.StealVeto: the expert's schedule is hardcoded in
// the benchmark source, so the runtime must not second-guess it by moving
// tasks across sockets.
func (EP) VetoSteal() bool { return true }

// RandomSocket scatters tasks uniformly at random over sockets; an ablation
// lower bound distinct from DFIFO (which at least balances perfectly).
type RandomSocket struct{}

// Name implements rt.Policy.
func (RandomSocket) Name() string { return "Random" }

// PickSocket implements rt.Policy.
func (RandomSocket) PickSocket(r *rt.Runtime, t *rt.Task) int {
	return r.Rand().Intn(r.Machine().Sockets())
}

// Propagation selects how RGP extends the initial window's partition to the
// rest of the TDG.
type Propagation int

const (
	// PropagateLAS uses locality-aware scheduling beyond the first window —
	// the paper's RGP+LAS configuration.
	PropagateLAS Propagation = iota
	// PropagateRepartition partitions every window, anchoring each window's
	// boundary tasks to the previous assignments (pure RGP ablation).
	PropagateRepartition
)

// String implements fmt.Stringer.
func (p Propagation) String() string {
	switch p {
	case PropagateLAS:
		return "las"
	case PropagateRepartition:
		return "repartition"
	default:
		return fmt.Sprintf("propagation(%d)", int(p))
	}
}

// RGP is the runtime-graph-partitioning family (§2.2): the first window of
// the TDG is partitioned with the multilevel partitioner mapped onto the
// machine's NUMA architecture; tasks of that window run on their assigned
// socket. While the partition is being computed (a simulated cost charged
// per window task), ready window tasks wait in the runtime's temporary
// queue. The rest of the graph follows the chosen Propagation.
type RGP struct {
	// Propagate selects the propagation mode (default PropagateLAS).
	Propagate Propagation
	// Opt tunes the partitioner; zero value means partition.DefaultOptions.
	Opt partition.Options
	// Tune, if set, adjusts the effective partitioner options after the
	// defaults (including the machine's socket count and the runtime seed)
	// have been resolved — the ablation hook the registry's "matching" and
	// "refine" spec parameters use.
	Tune func(*partition.Options)

	// assign[id] is the socket the window partitioning chose for task id, or
	// -1 for tasks left to the propagation policy (dense by NodeID — the
	// per-task PickSocket lookup and the anchor membership tests both hit it).
	assign     []int32
	ready      bool // simulated partition completed
	windowsCut int
}

// prepScratch is the pooled prepare-state of RGP.Prepare: the induced-
// subgraph scratch, the pooled symmetrized graph, and the dense per-window
// buffers that replace the old per-window maps and slices. One scratch
// serves all windows of a Prepare and is recycled across runs.
type prepScratch struct {
	sub   graph.SubgraphScratch
	pg    partition.Graph
	seenW []int32        // seenW[v] == w: v already anchored for window w
	all   []graph.NodeID // anchors ++ window ids, reused per window
	fixed []int32        // pinned-vertex array handed to MapOnto
}

var prepPool = sync.Pool{New: func() any { return &prepScratch{} }}

// NewRGPLAS returns the paper's RGP+LAS configuration.
func NewRGPLAS() *RGP { return &RGP{Propagate: PropagateLAS} }

// NewRGPRepartition returns the repartition-every-window ablation.
func NewRGPRepartition() *RGP { return &RGP{Propagate: PropagateRepartition} }

// Name implements rt.Policy.
func (p *RGP) Name() string {
	if p.Propagate == PropagateLAS {
		return "RGP+LAS"
	}
	return "RGP(repartition)"
}

// Prepare implements rt.Preparer: it computes the partition(s) of the
// task-dependency-graph window(s) and charges the simulated partitioning
// latency for the first window. Ready tasks of the first window defer to
// the temporary queue until that latency elapses.
func (p *RGP) Prepare(r *rt.Runtime) {
	n := r.Graph().Len()
	p.assign = make([]int32, n)
	for i := range p.assign {
		p.assign[i] = -1
	}
	nWindows := r.Windows()
	if nWindows == 0 {
		p.ready = true
		return
	}
	arch := &partition.Arch{Dist: distanceMatrix(r)}
	limit := 1
	if p.Propagate == PropagateRepartition {
		limit = nWindows
	}
	sc := prepPool.Get().(*prepScratch)
	defer prepPool.Put(sc)
	if cap(sc.seenW) < n {
		sc.seenW = make([]int32, n)
	}
	seenW := sc.seenW[:n]
	for i := range seenW {
		seenW[i] = -1
	}
	for w := 0; w < limit; w++ {
		tasks := r.WindowTasks(w)
		if len(tasks) == 0 {
			continue
		}
		// Anchor: include predecessor tasks from earlier windows as fixed
		// vertices so the new window's partition aligns with decided work.
		// p.assign doubles as the earlier-window membership test: entries are
		// only written after a window's MapOnto, so within window w it holds
		// exactly the windows before it.
		all := sc.all[:0]
		if w > 0 {
			for _, t := range tasks {
				r.Graph().Preds(t.ID, func(from graph.NodeID, _ int64) {
					if p.assign[from] >= 0 && seenW[from] != int32(w) {
						seenW[from] = int32(w)
						all = append(all, from)
					}
				})
			}
		}
		nAnchors := len(all)
		for _, t := range tasks {
			all = append(all, t.ID)
		}
		sc.all = all
		sub, back := r.Graph().InducedSubgraphInto(&sc.sub, all)
		sc.pg.LoadDAG(sub)
		opt := p.Opt
		if opt.Parts == 0 && opt.CoarsenTo == 0 {
			opt = partition.DefaultOptions(r.Machine().Sockets())
			opt.Seed = r.Options().Seed
		}
		if p.Tune != nil {
			p.Tune(&opt)
		}
		// With no anchors there is nothing to pin: nil Fixed takes the
		// partitioner's unconstrained path, which is bit-identical to an
		// all--1 array (every consumer tests fixed[v] >= 0). That keeps the
		// single-window configurations free of the per-window Fixed fill.
		opt.Fixed = nil
		if nAnchors > 0 {
			if cap(sc.fixed) < sub.Len() {
				sc.fixed = make([]int32, sub.Len())
			}
			opt.Fixed = sc.fixed[:sub.Len()]
			for i := range opt.Fixed {
				opt.Fixed[i] = -1
			}
			for i := 0; i < nAnchors; i++ {
				opt.Fixed[i] = p.assign[back[i]]
			}
		}
		part, _, err := partition.MapOnto(&sc.pg, arch, opt)
		if err != nil {
			panic(fmt.Sprintf("policy: window %d partition failed: %v", w, err))
		}
		for i, id := range back {
			if i < nAnchors {
				continue
			}
			p.assign[id] = part[i]
		}
		p.windowsCut++
	}
	// Charge the simulated SCOTCH latency for the first window; deferred
	// tasks are released when it elapses.
	cost := r.Options().PartitionCostPerTask * sim.Time(len(r.WindowTasks(0)))
	r.At(cost, func() {
		p.ready = true
		r.ReleaseDeferred()
	})
}

// PickSocket implements rt.Policy.
func (p *RGP) PickSocket(r *rt.Runtime, t *rt.Task) int {
	if s := p.assign[t.ID]; s >= 0 {
		if !p.ready {
			return rt.DeferPlacement
		}
		return int(s)
	}
	return lasPick(r, t)
}

// WindowsPartitioned reports how many windows Prepare partitioned.
func (p *RGP) WindowsPartitioned() int { return p.windowsCut }

// distanceMatrix extracts the machine's socket distance matrix.
func distanceMatrix(r *rt.Runtime) [][]int {
	n := r.Machine().Sockets()
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			d[i][j] = r.Machine().Hops(i, j)
		}
	}
	return d
}
