package policy

import (
	"testing"

	"numadag/internal/machine"
	"numadag/internal/memory"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

func newRT(t *testing.T, pol rt.Policy, opts rt.Options) *rt.Runtime {
	t.Helper()
	m := machine.New(machine.BullionS16(), sim.NewEngine())
	return rt.NewRuntime(m, pol, opts)
}

func TestDFIFOCyclesOverCores(t *testing.T) {
	r := newRT(t, DFIFO{}, rt.Options{})
	for i := 0; i < 32; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(rt.TaskSpec{Label: "t", Flops: 1e6,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
	}
	r.Run()
	cores := map[int]int{}
	for _, task := range r.Tasks() {
		cores[task.Core]++
	}
	if len(cores) != 32 {
		t.Fatalf("DFIFO used %d distinct cores for 32 tasks, want 32", len(cores))
	}
}

func TestLASFollowsData(t *testing.T) {
	r := newRT(t, LAS{}, rt.Options{Seed: 7})
	data := r.Mem().Alloc("data", 1<<20, memory.Home, 5) // pre-homed on socket 5
	out := r.Mem().Alloc("out", 64, memory.Deferred, 0)
	tk := r.Submit(rt.TaskSpec{Label: "reader", Flops: 100,
		Accesses: []rt.Access{{Region: data, Mode: rt.In}, {Region: out, Mode: rt.Out}},
		EPSocket: rt.NoEPHint})
	r.Run()
	if tk.Socket != 5 {
		t.Fatalf("LAS placed reader on socket %d, want 5 (where the data is)", tk.Socket)
	}
}

func TestLASRandomWhenUnallocated(t *testing.T) {
	// With everything deferred, placements must spread over sockets
	// (statistically) rather than collapse to one.
	seen := map[int]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		r := newRT(t, LAS{}, rt.Options{Seed: seed, Steal: false})
		reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
		tk := r.Submit(rt.TaskSpec{Label: "t", Flops: 100,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
		r.Run()
		seen[tk.Socket] = true
	}
	if len(seen) < 4 {
		t.Fatalf("LAS random placement hit only %d sockets over 16 seeds", len(seen))
	}
}

func TestLASDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		r := newRT(t, LAS{}, rt.Options{Seed: 99})
		var out []int
		regs := make([]*memory.Region, 8)
		for i := range regs {
			regs[i] = r.Mem().Alloc("x", 64<<10, memory.Deferred, 0)
		}
		for i := 0; i < 32; i++ {
			r.Submit(rt.TaskSpec{Label: "t", Flops: 1000,
				Accesses: []rt.Access{{Region: regs[i%8], Mode: rt.InOut}}, EPSocket: rt.NoEPHint})
		}
		r.Run()
		for _, task := range r.Tasks() {
			out = append(out, task.Socket)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("LAS placement differs at task %d with same seed", i)
		}
	}
}

func TestEPHonorsHints(t *testing.T) {
	r := newRT(t, EP{}, rt.Options{Steal: false})
	reg := r.Mem().Alloc("x", 4096, memory.Deferred, 0)
	tk := r.Submit(rt.TaskSpec{Label: "t", Flops: 100,
		Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: 6})
	r.Run()
	if tk.Socket != 6 {
		t.Fatalf("EP ran task on socket %d, want hinted 6", tk.Socket)
	}
}

func TestEPFallsBackToLASWithoutHint(t *testing.T) {
	r := newRT(t, EP{}, rt.Options{Steal: false})
	data := r.Mem().Alloc("data", 1<<20, memory.Home, 3)
	tk := r.Submit(rt.TaskSpec{Label: "t", Flops: 100,
		Accesses: []rt.Access{{Region: data, Mode: rt.In}}, EPSocket: rt.NoEPHint})
	r.Run()
	if tk.Socket != 3 {
		t.Fatalf("EP fallback placed task on socket %d, want 3", tk.Socket)
	}
}

func TestEPVetoesStealing(t *testing.T) {
	var _ rt.StealVeto = EP{}
	if !(EP{}).VetoSteal() {
		t.Fatal("EP must veto stealing")
	}
	// End to end: pile tasks on socket 0 with stealing enabled; no steals.
	r := newRT(t, EP{}, rt.Options{Steal: true, StealThreshold: 1})
	for i := 0; i < 64; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(rt.TaskSpec{Label: "t", Flops: 1e5,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: 0})
	}
	res := r.Run()
	if res.Steals != 0 {
		t.Fatalf("EP suffered %d steals", res.Steals)
	}
	if res.SocketTasks[0] != 64 {
		t.Fatalf("EP tasks leaked off socket 0: %v", res.SocketTasks)
	}
}

func TestRandomSocketSpreads(t *testing.T) {
	r := newRT(t, RandomSocket{}, rt.Options{Seed: 3, Steal: false})
	for i := 0; i < 64; i++ {
		reg := r.Mem().Alloc("x", 64, memory.Deferred, 0)
		r.Submit(rt.TaskSpec{Label: "t", Flops: 1000,
			Accesses: []rt.Access{{Region: reg, Mode: rt.Out}}, EPSocket: rt.NoEPHint})
	}
	res := r.Run()
	used := 0
	for _, n := range res.SocketTasks {
		if n > 0 {
			used++
		}
	}
	if used < 6 {
		t.Fatalf("random policy used only %d sockets", used)
	}
}

// buildStencilLike submits a small 2D stencil DAG.
func buildStencilLike(r *rt.Runtime, nb, iters int) {
	grid := make([][]*memory.Region, nb)
	for i := range grid {
		grid[i] = make([]*memory.Region, nb)
		for j := range grid[i] {
			grid[i][j] = r.Mem().Alloc("u", 64<<10, memory.Deferred, 0)
		}
	}
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			r.Submit(rt.TaskSpec{Label: "init", Flops: 1000,
				Accesses: []rt.Access{{Region: grid[i][j], Mode: rt.Out}}, EPSocket: rt.NoEPHint})
		}
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				acc := []rt.Access{{Region: grid[i][j], Mode: rt.InOut}}
				if i > 0 {
					acc = append(acc, rt.Access{Region: grid[i-1][j], Mode: rt.In})
				}
				if j > 0 {
					acc = append(acc, rt.Access{Region: grid[i][j-1], Mode: rt.In})
				}
				r.Submit(rt.TaskSpec{Label: "st", Flops: 30000, Accesses: acc, EPSocket: rt.NoEPHint})
			}
		}
	}
}

func TestRGPAssignsFirstWindowBySocket(t *testing.T) {
	pol := NewRGPLAS()
	r := newRT(t, pol, rt.Options{WindowSize: 64, Seed: 1, PartitionCostPerTask: 10})
	buildStencilLike(r, 8, 4)
	res := r.Run()
	if pol.WindowsPartitioned() != 1 {
		t.Fatalf("RGP+LAS partitioned %d windows, want 1", pol.WindowsPartitioned())
	}
	// The first window's tasks were deferred until the partition was ready.
	if res.Deferred == 0 {
		t.Fatal("no tasks passed through the temporary queue")
	}
	// First-window tasks must spread across several sockets (balanced
	// partition), not collapse onto one.
	used := map[int]bool{}
	for _, task := range r.Tasks()[:64] {
		used[task.Socket] = true
	}
	if len(used) < 4 {
		t.Fatalf("window 0 used only %d sockets", len(used))
	}
}

func TestRGPDeferredUntilPartitionCost(t *testing.T) {
	pol := NewRGPLAS()
	const costPer = 100
	r := newRT(t, pol, rt.Options{WindowSize: 32, Seed: 1, PartitionCostPerTask: costPer})
	buildStencilLike(r, 8, 1)
	r.Run()
	windowCost := sim.Time(costPer * 32)
	for _, task := range r.Tasks()[:32] {
		if task.StartAt < windowCost {
			t.Fatalf("window-0 task started at %v, before partition completed at %v",
				task.StartAt, windowCost)
		}
	}
}

func TestRGPRepartitionCoversAllWindows(t *testing.T) {
	pol := NewRGPRepartition()
	r := newRT(t, pol, rt.Options{WindowSize: 50, Seed: 1})
	buildStencilLike(r, 8, 3) // 64 + 192 = 256 tasks -> 6 windows
	r.Run()
	if got, want := pol.WindowsPartitioned(), r.Windows(); got != want {
		t.Fatalf("repartition covered %d of %d windows", got, want)
	}
}

func TestRGPBeatsLASOnStencil(t *testing.T) {
	// The headline claim, on a micro stencil: RGP+LAS must not lose badly
	// to LAS, and should usually win. Use a few seeds and compare means.
	mean := func(mk func() rt.Policy) float64 {
		var sum float64
		for seed := uint64(1); seed <= 3; seed++ {
			r := newRT(t, mk(), rt.Options{WindowSize: 256, Seed: seed, Steal: true, StealThreshold: 2})
			buildStencilLike(r, 10, 6)
			sum += float64(r.Run().Makespan)
		}
		return sum / 3
	}
	las := mean(func() rt.Policy { return LAS{} })
	rgp := mean(func() rt.Policy { return NewRGPLAS() })
	if rgp > las*1.1 {
		t.Fatalf("RGP+LAS (%.0f) lost to LAS (%.0f) by more than 10%%", rgp, las)
	}
}

func TestPropagationString(t *testing.T) {
	if PropagateLAS.String() != "las" || PropagateRepartition.String() != "repartition" {
		t.Fatal("propagation labels wrong")
	}
	if Propagation(9).String() == "" {
		t.Fatal("unknown propagation label empty")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, c := range []struct {
		pol  rt.Policy
		want string
	}{
		{DFIFO{}, "DFIFO"},
		{LAS{}, "LAS"},
		{EP{}, "EP"},
		{RandomSocket{}, "Random"},
		{NewRGPLAS(), "RGP+LAS"},
		{NewRGPRepartition(), "RGP(repartition)"},
	} {
		if got := c.pol.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestRGPRemoteRatioBeatsLAS(t *testing.T) {
	runWith := func(pol rt.Policy, seed uint64) rt.Result {
		r := newRT(t, pol, rt.Options{WindowSize: 512, Seed: seed})
		buildStencilLike(r, 10, 5)
		return r.Run()
	}
	lasRes := runWith(LAS{}, 1)
	rgpRes := runWith(NewRGPLAS(), 1)
	if rgpRes.RemoteRatio() >= lasRes.RemoteRatio() {
		t.Fatalf("RGP+LAS remote ratio %.3f not below LAS %.3f",
			rgpRes.RemoteRatio(), lasRes.RemoteRatio())
	}
}

func TestHEFTSchedulesAllTasks(t *testing.T) {
	pol := NewHEFT()
	r := newRT(t, pol, rt.Options{Seed: 1})
	buildStencilLike(r, 8, 3)
	res := r.Run()
	if err := r.AuditSchedule(); err != nil {
		t.Fatal(err)
	}
	if res.Steals != 0 {
		t.Fatalf("static HEFT schedule suffered %d steals", res.Steals)
	}
	// Every task must have a precomputed assignment and have run there.
	for _, tk := range r.Tasks() {
		if s, ok := pol.assign[tk.ID]; !ok || int(s) != tk.Socket {
			t.Fatalf("task %s ran on %d, assigned %d (ok=%v)", tk.Label, tk.Socket, s, ok)
		}
	}
}

func TestHEFTUsesMultipleSockets(t *testing.T) {
	pol := NewHEFT()
	r := newRT(t, pol, rt.Options{Seed: 1})
	buildStencilLike(r, 8, 2)
	res := r.Run()
	used := 0
	for _, n := range res.SocketTasks {
		if n > 0 {
			used++
		}
	}
	if used < 4 {
		t.Fatalf("HEFT used only %d sockets", used)
	}
}

func TestHEFTWithinFactorOfDynamicBaseline(t *testing.T) {
	// HEFT plans with estimated costs that ignore page placement, so on a
	// memory-bound stencil it loses to the locality-aware dynamic baseline
	// — an instructive result in itself (static full-knowledge scheduling
	// is not automatically better when memory homes follow the schedule).
	// Bound the loss so a regression that breaks HEFT's ranking or
	// assignment logic (e.g. serializing everything) still fails loudly.
	run := func(pol rt.Policy) float64 {
		r := newRT(t, pol, rt.Options{Seed: 1, Steal: true, StealThreshold: 2})
		buildStencilLike(r, 10, 5)
		return float64(r.Run().Makespan)
	}
	heft := run(NewHEFT())
	las := run(LAS{})
	if heft > las*3 {
		t.Fatalf("HEFT (%.0f) more than 3x worse than LAS (%.0f): scheduling broken", heft, las)
	}
}

func TestHEFTEmptyGraph(t *testing.T) {
	pol := NewHEFT()
	r := newRT(t, pol, rt.Options{})
	r.Run() // zero tasks: Prepare must handle n == 0
}
