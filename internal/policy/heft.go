package policy

import (
	"sort"

	"numadag/internal/graph"
	"numadag/internal/rt"
)

// HEFT is a static list-scheduling comparator: before execution it computes
// the classic Heterogeneous-Earliest-Finish-Time schedule over the *whole*
// TDG — upward ranks from estimated task and communication costs, then
// earliest-finish socket assignment in rank order. It represents the
// "offline scheduler with full knowledge" upper reference point the RGP
// family approximates with windowed knowledge; unlike the runtime policies
// it could never be deployed (the real TDG unfolds online and its costs are
// estimates).
//
// The estimates use the machine model itself: compute time from FLOPs and
// a memory term from the task's bytes at local bandwidth; edge communication
// from the dependency's bytes at interconnect-port bandwidth.
type HEFT struct {
	assign map[graph.NodeID]int32
}

// NewHEFT returns a HEFT scheduler.
func NewHEFT() *HEFT { return &HEFT{} }

// Name implements rt.Policy.
func (*HEFT) Name() string { return "HEFT" }

// VetoSteal implements rt.StealVeto: the schedule is static.
func (*HEFT) VetoSteal() bool { return true }

// Prepare implements rt.Preparer.
func (h *HEFT) Prepare(r *rt.Runtime) {
	g := r.Graph()
	m := r.Machine()
	n := g.Len()
	h.assign = make(map[graph.NodeID]int32, n)
	if n == 0 {
		return
	}
	cfg := m.Config()
	localBW := m.CoreBandwidth(0, 0)
	linkBW := cfg.LinkBandwidth

	// Estimated execution time per task (ns, socket-independent).
	w := make([]float64, n)
	for _, t := range r.Tasks() {
		bytes := float64(t.InputBytes() + t.OutputBytes())
		w[t.ID] = float64(m.ComputeTime(t.Flops)) + bytes/localBW
	}
	// Upward ranks in reverse topological order.
	order, err := g.TopoOrder()
	if err != nil {
		panic("policy: HEFT on cyclic graph: " + err.Error())
	}
	rank := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		g.Succs(id, func(to graph.NodeID, bytes int64) {
			c := float64(bytes) / linkBW
			if v := c + rank[to]; v > best {
				best = v
			}
		})
		rank[id] = w[id] + best
	}
	// Schedule in decreasing rank order (ties by ID for determinism).
	byRank := make([]graph.NodeID, n)
	copy(byRank, order)
	sort.SliceStable(byRank, func(a, b int) bool {
		if rank[byRank[a]] != rank[byRank[b]] {
			return rank[byRank[a]] > rank[byRank[b]]
		}
		return byRank[a] < byRank[b]
	})
	sockets := m.Sockets()
	coreFree := make([]float64, m.Cores()) // estimated per-core availability
	finish := make([]float64, n)
	for _, id := range byRank {
		bestSocket, bestFinish, bestCore := 0, 0.0, 0
		first := true
		for s := 0; s < sockets; s++ {
			// Data-ready time on s: predecessors' finish plus cross-socket
			// communication.
			ready := 0.0
			g.Preds(id, func(from graph.NodeID, bytes int64) {
				t := finish[from]
				if int(h.assign[from]) != s {
					t += float64(bytes) / linkBW
				}
				if t > ready {
					ready = t
				}
			})
			lo, hi := m.CoresOf(s)
			for c := lo; c < hi; c++ {
				start := ready
				if coreFree[c] > start {
					start = coreFree[c]
				}
				f := start + w[id]
				if first || f < bestFinish {
					first = false
					bestSocket, bestFinish, bestCore = s, f, c
				}
			}
		}
		h.assign[id] = int32(bestSocket)
		finish[id] = bestFinish
		coreFree[bestCore] = bestFinish
	}
}

// PickSocket implements rt.Policy.
func (h *HEFT) PickSocket(r *rt.Runtime, t *rt.Task) int {
	if s, ok := h.assign[t.ID]; ok {
		return int(s)
	}
	return lasPick(r, t)
}
