package policy

import (
	"numadag/internal/memory"
	"numadag/internal/rt"
)

// OSMigrate models the OS-level techniques the paper's introduction
// contrasts against (kMAF, Carrefour-style page migration): scheduling is
// NUMA-unaware (cyclic, like DFIFO), but the "kernel" watches accesses and
// migrates a region to a remote socket once that socket has touched it
// MigrateAfter times in a row more than its home has. Migration is charged
// to the simulation as a real transfer occupying controller and port
// bandwidth.
//
// The point of the baseline is the paper's argument that reactive
// OS approaches "take action when the application is already suffering from
// remote memory accesses" — the TDG-based policies act before the first
// access instead.
type OSMigrate struct {
	// MigrateAfter is the number of consecutive remote accesses from the
	// same socket after which a region migrates (default 2).
	MigrateAfter int

	remoteRuns map[int]*runCount // by region ID
	// MigratedBytes counts the traffic spent on migrations.
	MigratedBytes int64
	// Migrations counts migration events.
	Migrations int
}

type runCount struct {
	socket int
	count  int
}

// NewOSMigrate returns the baseline with the default threshold.
func NewOSMigrate() *OSMigrate {
	return &OSMigrate{MigrateAfter: 2, remoteRuns: make(map[int]*runCount)}
}

// Name implements rt.Policy.
func (*OSMigrate) Name() string { return "OSMigrate" }

// PickSocket implements rt.Policy: cyclic, NUMA-unaware placement.
func (*OSMigrate) PickSocket(*rt.Runtime, *rt.Task) int { return rt.AnySocket }

// TaskDone implements rt.TaskDoneHook: account remote accesses and trigger
// migrations.
func (p *OSMigrate) TaskDone(r *rt.Runtime, t *rt.Task) {
	if p.remoteRuns == nil {
		p.remoteRuns = make(map[int]*runCount)
	}
	threshold := p.MigrateAfter
	if threshold <= 0 {
		threshold = 2
	}
	for _, a := range t.Accesses {
		reg := a.Region
		home := dominantHome(reg, r.Machine().Sockets())
		if home < 0 || home == t.Socket {
			delete(p.remoteRuns, reg.ID())
			continue
		}
		rc := p.remoteRuns[reg.ID()]
		if rc == nil || rc.socket != t.Socket {
			rc = &runCount{socket: t.Socket}
			p.remoteRuns[reg.ID()] = rc
		}
		rc.count++
		if rc.count >= threshold {
			moved := reg.Migrate(t.Socket)
			if moved > 0 {
				p.MigratedBytes += moved
				p.Migrations++
				// The page copy occupies the old home's controller and
				// port: charge it as a background transfer.
				r.Machine().Transfer(home, t.Socket, moved, nil)
			}
			delete(p.remoteRuns, reg.ID())
		}
	}
}

// dominantHome returns the socket holding most of the region's bytes, or -1
// if nothing is allocated.
func dominantHome(reg *memory.Region, sockets int) int {
	best, bestB := -1, int64(0)
	for s, b := range reg.BytesOnSocket(sockets) {
		if b > bestB {
			best, bestB = s, b
		}
	}
	return best
}
