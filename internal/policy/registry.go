package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"numadag/internal/partition"
	"numadag/internal/rt"
)

// Spec is a parsed policy specification: a registered policy name plus
// optional parameters, written "name?key=value&key=value". Parameters let
// one registration cover a family of configurations — e.g. the partitioner
// ablations "RGP+LAS?matching=random" and "RGP+LAS?refine=off" — without a
// bespoke constructor per variant.
type Spec struct {
	Name   string
	Params map[string]string
}

// ParseSpec parses "name" or "name?key=value&key=value". Keys must be
// non-empty and unique; values may be empty.
func ParseSpec(s string) (Spec, error) {
	name, query, hasQuery := strings.Cut(s, "?")
	if name == "" {
		return Spec{}, fmt.Errorf("policy: empty name in spec %q", s)
	}
	spec := Spec{Name: name}
	if !hasQuery {
		return spec, nil
	}
	spec.Params = make(map[string]string)
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return Spec{}, fmt.Errorf("policy: malformed parameter %q in spec %q (want key=value)", kv, s)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("policy: duplicate parameter %q in spec %q", k, s)
		}
		spec.Params[k] = v
	}
	return spec, nil
}

// String renders the spec canonically: parameters sorted by key.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Only errors unless every parameter key is among the allowed ones; it is
// how factories reject typos ("RGP+LAS?mathcing=random") instead of
// silently running the default configuration.
func (s Spec) Only(allowed ...string) error {
	for k := range s.Params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("policy: %s does not take parameter %q (allowed: %s)",
				s.Name, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// Factory builds a policy instance from a parsed spec. A factory must
// return a fresh instance on every call: stateful policies (RGP, OSMigrate,
// HEFT) are instantiated once per run.
type Factory func(Spec) (rt.Policy, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: make(map[string]Factory)}

// Register adds a policy factory under a name. It errors on empty or
// already-registered names and on names that would not survive spec
// parsing. Registration is typically done from init or before experiments
// start; it is safe for concurrent use.
func Register(name string, f Factory) error {
	if name == "" || strings.ContainsAny(name, "?&= \t\n") {
		return fmt.Errorf("policy: invalid registry name %q", name)
	}
	if f == nil {
		return fmt.Errorf("policy: nil factory for %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register, panicking on error (init-time registration).
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// New instantiates a policy from a spec string, e.g. "LAS" or
// "RGP+LAS?matching=random". Unknown names list the registered policies.
func New(spec string) (rt.Policy, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	registry.RLock()
	f, ok := registry.factories[s.Name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			s.Name, strings.Join(Names(), ", "))
	}
	return f(s)
}

// Names returns the registered policy names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	ns := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// paramless wraps a stateless policy value as a factory that rejects
// parameters.
func paramless(p rt.Policy) Factory {
	return func(s Spec) (rt.Policy, error) {
		if err := s.Only(); err != nil {
			return nil, err
		}
		return p, nil
	}
}

// rgpFactory covers the RGP family: the propagation mode is fixed by the
// registered name, the partitioner ablations are parameters.
func rgpFactory(prop Propagation) Factory {
	return func(s Spec) (rt.Policy, error) {
		if err := s.Only("matching", "refine"); err != nil {
			return nil, err
		}
		p := &RGP{Propagate: prop}
		var tweaks []func(*partition.Options)
		if v, ok := s.Params["matching"]; ok {
			switch v {
			case "heavy":
				tweaks = append(tweaks, func(o *partition.Options) { o.Matching = partition.HeavyEdgeMatching })
			case "random":
				tweaks = append(tweaks, func(o *partition.Options) { o.Matching = partition.RandomMatching })
			default:
				return nil, fmt.Errorf("policy: %s: matching=%q (want heavy or random)", s.Name, v)
			}
		}
		if v, ok := s.Params["refine"]; ok {
			switch v {
			case "on":
				tweaks = append(tweaks, func(o *partition.Options) { o.NoRefine = false })
			case "off":
				tweaks = append(tweaks, func(o *partition.Options) { o.NoRefine = true })
			default:
				return nil, fmt.Errorf("policy: %s: refine=%q (want on or off)", s.Name, v)
			}
		}
		if len(tweaks) > 0 {
			p.Tune = func(o *partition.Options) {
				for _, t := range tweaks {
					t(o)
				}
			}
		}
		return p, nil
	}
}

func init() {
	MustRegister("DFIFO", paramless(DFIFO{}))
	MustRegister("LAS", paramless(LAS{}))
	MustRegister("EP", paramless(EP{}))
	MustRegister("Random", paramless(RandomSocket{}))
	MustRegister("RGP+LAS", rgpFactory(PropagateLAS))
	MustRegister("RGP", rgpFactory(PropagateRepartition))
	MustRegister("OSMigrate", func(s Spec) (rt.Policy, error) {
		if err := s.Only(); err != nil {
			return nil, err
		}
		return NewOSMigrate(), nil
	})
	MustRegister("HEFT", func(s Spec) (rt.Policy, error) {
		if err := s.Only(); err != nil {
			return nil, err
		}
		return NewHEFT(), nil
	})
}
