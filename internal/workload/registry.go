// Package workload is the registry of task-graph generators the evaluation
// draws its scenarios from — the benchmark-definition layer that PR 2's
// policy registry is to scheduling policies.
//
// A workload spec is a string, "name?key=value&key=value": the eight paper
// benchmarks ("jacobi", "qr?nt=32&tile=1M"), synthetic generators
// ("random-layered?layers=24&width=96&cv=0.4", "forkjoin?depth=10&fanout=4"),
// or DAGs imported from disk ("file?path=testdata/dags/diamond.json"). New
// resolves a spec to a Workload — a named, seeded TDG builder that submits
// the task graph and allocates its memory regions on an rt.Runtime. Every
// command and the core.Experiment grid accept workload specs wherever a bare
// app name used to go.
//
// Builders must be deterministic functions of (spec, scale, seed, machine
// topology) and must not read the runtime's own Rand or clock: that contract
// is what lets core.Experiment build a workload's TDG once (rt.Snap) and
// install it into every replicate of a sweep (rt.Install). A builder that
// cannot honor it sets NoCache.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"numadag/internal/apps"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// Workload is a named, seeded task-graph builder resolved from a spec.
type Workload struct {
	// Name is the registered generator name ("jacobi", "random-layered").
	Name string
	// Spec is the canonical spec string (parameters sorted, reserved
	// scale/seed parameters lifted out).
	Spec string
	// Scale is the problem-size preset the builder was resolved at.
	Scale apps.Scale
	// Seed drives the generator's own randomness (graph shape, task
	// weights). It is distinct from the runtime seed: replicates of a sweep
	// vary the runtime seed while the workload seed — and therefore the
	// task graph — stays fixed, which is what makes the TDG cacheable.
	Seed uint64
	// NoCache marks a builder that violates the determinism contract (e.g.
	// it consults the runtime's Rand); experiments then rebuild it per cell.
	NoCache bool
	// Build allocates the workload's regions from r.Mem() and submits its
	// task graph. It must be safe for concurrent use on distinct runtimes.
	Build func(r *rt.Runtime) error
}

// Key identifies the built task graph for caching: canonical spec, scale
// and generator seed. Callers combine it with the machine topology (expert
// placements and distributions depend on the socket count).
func (w Workload) Key() string {
	return fmt.Sprintf("%s@%s#%d", w.Spec, w.Scale, w.Seed)
}

// Instantiate builds the workload into a fresh throwaway runtime over the
// given machine config with a no-op policy — the path dagen and dagpart use
// to inspect or export a TDG, and core uses to prototype one for rt.Snap.
func (w Workload) Instantiate(mc machine.Config) (*rt.Runtime, error) {
	r := rt.NewRuntime(machine.New(mc, sim.NewEngine()), nopPolicy{}, rt.Options{})
	if err := w.Build(r); err != nil {
		return nil, err
	}
	return r, nil
}

type nopPolicy struct{}

func (nopPolicy) Name() string                         { return "nop" }
func (nopPolicy) PickSocket(*rt.Runtime, *rt.Task) int { return 0 }

// Factory resolves a parsed spec into a Workload. The reserved scale and
// seed parameters are already stripped from the spec and passed explicitly.
// New fills the Name/Spec/Scale/Seed metadata after the factory returns, so
// factories only need to produce Build (and NoCache when applicable).
type Factory func(s Spec, scale apps.Scale, seed uint64) (Workload, error)

type entry struct {
	doc     string
	factory Factory
}

var registry = struct {
	sync.RWMutex
	entries map[string]entry
}{entries: make(map[string]entry)}

// Register adds a workload factory under a name with a one-line doc string
// (shown by dagen -list/-describe). It errors on empty or already-registered
// names and on names that would not survive spec parsing. Registration is
// typically done from init or before experiments start; it is safe for
// concurrent use.
func Register(name, doc string, f Factory) error {
	if name == "" || strings.ContainsAny(name, "?&= \t\n") {
		return fmt.Errorf("workload: invalid registry name %q", name)
	}
	if f == nil {
		return fmt.Errorf("workload: nil factory for %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.entries[name]; dup {
		return fmt.Errorf("workload: %q already registered", name)
	}
	registry.entries[name] = entry{doc: doc, factory: f}
	return nil
}

// MustRegister is Register, panicking on error (init-time registration).
func MustRegister(name, doc string, f Factory) {
	if err := Register(name, doc, f); err != nil {
		panic(err)
	}
}

// New resolves a workload spec at the given contextual scale. The reserved
// parameters are handled here for every generator: "scale=tiny|small|paper"
// overrides scale, "seed=N" sets the generator seed (default 1).
func New(spec string, scale apps.Scale) (Workload, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return Workload{}, err
	}
	seed := uint64(1)
	if v, ok := s.Params["seed"]; ok {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return Workload{}, fmt.Errorf("workload: %s: seed=%q is not an unsigned integer", s.Name, v)
		}
		seed = n
		delete(s.Params, "seed")
	}
	if v, ok := s.Params["scale"]; ok {
		sc, err := apps.ParseScale(v)
		if err != nil {
			return Workload{}, fmt.Errorf("workload: %s: %w", s.Name, err)
		}
		scale = sc
		delete(s.Params, "scale")
	}
	registry.RLock()
	e, ok := registry.entries[s.Name]
	registry.RUnlock()
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (registered: %s)",
			s.Name, strings.Join(Names(), ", "))
	}
	w, err := e.factory(s, scale, seed)
	if err != nil {
		return Workload{}, err
	}
	w.Name = s.Name
	w.Spec = s.String()
	w.Scale = scale
	w.Seed = seed
	return w, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	ns := make([]string, 0, len(registry.entries))
	for n := range registry.entries {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Doc returns the registered one-line documentation for a workload name.
func Doc(name string) (string, error) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.entries[name]
	if !ok {
		return "", fmt.Errorf("workload: unknown workload %q", name)
	}
	return e.doc, nil
}
