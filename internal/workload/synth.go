package workload

import (
	"fmt"

	"numadag/internal/apps"
	"numadag/internal/memory"
	"numadag/internal/rt"
	"numadag/internal/xrand"
)

// Synthetic generators: parameterized task-graph families that open the
// partition -> schedule -> audit pipeline to shapes the eight paper
// benchmarks never exercise — irregular layered DAGs and deep fork-join
// reduction trees. All randomness flows through the workload seed (the
// reserved seed= parameter), never the runtime's Rand, so a generated graph
// is a pure function of its spec and stays cacheable across replicates.

// jitter scales base by a uniform factor in [1-cv, 1+cv].
func jitter(rng *xrand.Rand, base float64, cv float64) float64 {
	if cv <= 0 {
		return base
	}
	return base * (1 - cv + 2*cv*rng.Float64())
}

// synthDefaults sizes a generator by scale: a handful of tasks at tiny for
// unit tests, hundreds at small, thousands at paper.
type synthDefaults struct {
	layers, width int
	depth, fanout int
	bytes         int64
	flops         float64
}

func synthPreset(scale apps.Scale) synthDefaults {
	const kib = int64(1) << 10
	switch scale {
	case apps.Tiny:
		return synthDefaults{layers: 4, width: 6, depth: 3, fanout: 2, bytes: 16 * kib, flops: 8 * 1024}
	case apps.Small:
		return synthDefaults{layers: 12, width: 24, depth: 6, fanout: 3, bytes: 64 * kib, flops: 32 * 1024}
	default:
		return synthDefaults{layers: 32, width: 96, depth: 8, fanout: 3, bytes: 256 * kib, flops: 128 * 1024}
	}
}

// randomLayered builds an irregular layered DAG: layers x width tasks, each
// task in layer l > 0 reading the outputs of 1..2*fan-1 (mean fan) distinct
// tasks of layer l-1. Every task writes its own deferred region, so RAW
// edges carry the region's bytes exactly as the app benchmarks' do. Task
// flops are jittered by cv around the mean.
func randomLayeredFactory(s Spec, scale apps.Scale, seed uint64) (Workload, error) {
	if err := s.Only("layers", "width", "fan", "cv", "bytes", "flops"); err != nil {
		return Workload{}, err
	}
	d := synthPreset(scale)
	layers, err := s.Int("layers", d.layers)
	if err != nil {
		return Workload{}, err
	}
	width, err := s.Int("width", d.width)
	if err != nil {
		return Workload{}, err
	}
	fan, err := s.Int("fan", 3)
	if err != nil {
		return Workload{}, err
	}
	cv, err := s.Float("cv", 0.3)
	if err != nil {
		return Workload{}, err
	}
	bytes, err := s.Bytes("bytes", d.bytes)
	if err != nil {
		return Workload{}, err
	}
	flops, err := s.Float("flops", d.flops)
	if err != nil {
		return Workload{}, err
	}
	if layers < 1 || width < 1 || fan < 1 || cv < 0 || cv > 1 || bytes <= 0 || flops <= 0 {
		return Workload{}, fmt.Errorf("workload: random-layered: invalid parameters (layers=%d width=%d fan=%d cv=%g bytes=%d flops=%g)",
			layers, width, fan, cv, bytes, flops)
	}
	build := func(r *rt.Runtime) error {
		rng := xrand.New(seed)
		var prev []*memory.Region
		for l := 0; l < layers; l++ {
			cur := make([]*memory.Region, width)
			for i := 0; i < width; i++ {
				out := r.Mem().Alloc(fmt.Sprintf("d[%d][%d]", l, i), bytes, memory.Deferred, 0)
				cur[i] = out
				acc := []rt.Access{{Region: out, Mode: rt.Out}}
				if l > 0 {
					k := 1
					if fan > 1 {
						k += rng.Intn(2*fan - 1) // uniform on [1, 2*fan-1], mean fan
					}
					if k > len(prev) {
						k = len(prev)
					}
					for _, p := range rng.Perm(len(prev))[:k] {
						acc = append(acc, rt.Access{Region: prev[p], Mode: rt.In})
					}
				}
				r.Submit(rt.TaskSpec{
					Label:    fmt.Sprintf("t(%d,%d)", l, i),
					Flops:    jitter(rng, flops, cv),
					Accesses: acc,
					EPSocket: rt.NoEPHint,
				})
			}
			prev = cur
		}
		return nil
	}
	return Workload{Build: build}, nil
}

// forkJoin builds a recursive fork-join/reduction tree: a root task forks
// fanout children down to the given depth, leaves compute, and a mirror
// tree of join tasks reduces the results back up. Tasks communicate through
// per-task deferred regions; flops are jittered by cv.
func forkJoinFactory(s Spec, scale apps.Scale, seed uint64) (Workload, error) {
	if err := s.Only("depth", "fanout", "cv", "bytes", "flops"); err != nil {
		return Workload{}, err
	}
	d := synthPreset(scale)
	depth, err := s.Int("depth", d.depth)
	if err != nil {
		return Workload{}, err
	}
	fanout, err := s.Int("fanout", d.fanout)
	if err != nil {
		return Workload{}, err
	}
	cv, err := s.Float("cv", 0.25)
	if err != nil {
		return Workload{}, err
	}
	bytes, err := s.Bytes("bytes", d.bytes)
	if err != nil {
		return Workload{}, err
	}
	flops, err := s.Float("flops", d.flops)
	if err != nil {
		return Workload{}, err
	}
	if depth < 1 || fanout < 2 || cv < 0 || cv > 1 || bytes <= 0 || flops <= 0 {
		return Workload{}, fmt.Errorf("workload: forkjoin: invalid parameters (depth=%d fanout=%d cv=%g bytes=%d flops=%g)",
			depth, fanout, cv, bytes, flops)
	}
	build := func(r *rt.Runtime) error {
		rng := xrand.New(seed)
		var expand func(level int, path string, in *memory.Region) *memory.Region
		expand = func(level int, path string, in *memory.Region) *memory.Region {
			read := func() []rt.Access {
				if in == nil {
					return nil
				}
				return []rt.Access{{Region: in, Mode: rt.In}}
			}
			if level == depth {
				out := r.Mem().Alloc("leaf"+path, bytes, memory.Deferred, 0)
				r.Submit(rt.TaskSpec{
					Label:    "leaf" + path,
					Flops:    jitter(rng, flops, cv),
					Accesses: append(read(), rt.Access{Region: out, Mode: rt.Out}),
					EPSocket: rt.NoEPHint,
				})
				return out
			}
			fork := r.Mem().Alloc("fork"+path, bytes, memory.Deferred, 0)
			r.Submit(rt.TaskSpec{
				Label:    "fork" + path,
				Flops:    jitter(rng, flops/4, cv),
				Accesses: append(read(), rt.Access{Region: fork, Mode: rt.Out}),
				EPSocket: rt.NoEPHint,
			})
			joinAcc := make([]rt.Access, 0, fanout+1)
			for c := 0; c < fanout; c++ {
				child := expand(level+1, fmt.Sprintf("%s.%d", path, c), fork)
				joinAcc = append(joinAcc, rt.Access{Region: child, Mode: rt.In})
			}
			join := r.Mem().Alloc("join"+path, bytes, memory.Deferred, 0)
			r.Submit(rt.TaskSpec{
				Label:    "join" + path,
				Flops:    jitter(rng, flops/2, cv),
				Accesses: append(joinAcc, rt.Access{Region: join, Mode: rt.Out}),
				EPSocket: rt.NoEPHint,
			})
			return join
		}
		expand(0, "", nil)
		return nil
	}
	return Workload{Build: build}, nil
}

// noopFactory builds a graph of independent tasks with no memory accesses
// and (by default) zero flops — the degenerate job shape the cluster fuzz
// harness throws at arrival bursts. tasks=0 is allowed: an empty graph
// completes in zero simulated time, and the service-mode paths must survive
// it without stalling the shared clock.
func noopFactory(s Spec, scale apps.Scale, seed uint64) (Workload, error) {
	if err := s.Only("tasks", "flops"); err != nil {
		return Workload{}, err
	}
	tasks, err := s.Int("tasks", 1)
	if err != nil {
		return Workload{}, err
	}
	flops, err := s.Float("flops", 0)
	if err != nil {
		return Workload{}, err
	}
	if tasks < 0 || flops < 0 {
		return Workload{}, fmt.Errorf("workload: noop: invalid parameters (tasks=%d flops=%g)", tasks, flops)
	}
	build := func(r *rt.Runtime) error {
		for i := 0; i < tasks; i++ {
			r.Submit(rt.TaskSpec{
				Label:    fmt.Sprintf("noop%d", i),
				Flops:    flops,
				EPSocket: rt.NoEPHint,
			})
		}
		return nil
	}
	return Workload{Build: build}, nil
}

func init() {
	MustRegister("noop",
		"independent no-access tasks, zero flops by default; tasks=0 allowed [tasks, flops]",
		noopFactory)
	MustRegister("random-layered",
		"irregular layered random DAG [layers, width, fan, cv, bytes, flops, seed]",
		randomLayeredFactory)
	MustRegister("forkjoin",
		"recursive fork-join/reduction tree [depth, fanout, cv, bytes, flops, seed]",
		forkJoinFactory)
}
