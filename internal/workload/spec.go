package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is a parsed workload specification: a registered generator name plus
// optional parameters, written "name?key=value&key=value" — the same grammar
// the policy registry uses. Two parameter keys are reserved and handled by
// New for every workload: "scale" overrides the contextual problem scale
// ("jacobi?scale=paper") and "seed" sets the generator seed for stochastic
// builders ("random-layered?seed=7").
type Spec struct {
	Name   string
	Params map[string]string
}

// ParseSpec parses "name" or "name?key=value&key=value". Keys must be
// non-empty and unique; values may be empty.
func ParseSpec(s string) (Spec, error) {
	name, query, hasQuery := strings.Cut(s, "?")
	if name == "" {
		return Spec{}, fmt.Errorf("workload: empty name in spec %q", s)
	}
	spec := Spec{Name: name}
	if !hasQuery {
		return spec, nil
	}
	spec.Params = make(map[string]string)
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return Spec{}, fmt.Errorf("workload: malformed parameter %q in spec %q (want key=value)", kv, s)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("workload: duplicate parameter %q in spec %q", k, s)
		}
		spec.Params[k] = v
	}
	return spec, nil
}

// String renders the spec canonically: parameters sorted by key.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Only errors unless every parameter key is among the allowed ones — the
// typo guard ("forkjoin?fanuot=4" fails instead of silently running the
// default). The reserved keys scale and seed are stripped before factories
// see the spec, so they never need to be listed.
func (s Spec) Only(allowed ...string) error {
	for k := range s.Params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("workload: %s does not take parameter %q (allowed: %s)",
				s.Name, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// Int returns the named integer parameter, or def when absent.
func (s Spec) Int(key string, def int) (int, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("workload: %s: %s=%q is not an integer", s.Name, key, v)
	}
	return n, nil
}

// Float returns the named float parameter, or def when absent.
func (s Spec) Float(key string, def float64) (float64, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: %s: %s=%q is not a number", s.Name, key, v)
	}
	return f, nil
}

// Str returns the named string parameter, or def when absent.
func (s Spec) Str(key, def string) string {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// Bytes returns the named size parameter, or def when absent. Values are
// plain byte counts with an optional K/M/G suffix (powers of 1024):
// "tile=256K", "chunk=8M".
func (s Spec) Bytes(key string, def int64) (int64, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "K"), strings.HasSuffix(v, "k"):
		mult, v = 1<<10, v[:len(v)-1]
	case strings.HasSuffix(v, "M"), strings.HasSuffix(v, "m"):
		mult, v = 1<<20, v[:len(v)-1]
	case strings.HasSuffix(v, "G"), strings.HasSuffix(v, "g"):
		mult, v = 1<<30, v[:len(v)-1]
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: %s: %s=%q is not a size (want bytes with optional K/M/G suffix)", s.Name, key, s.Params[key])
	}
	return n * mult, nil
}
