package workload

import (
	"numadag/internal/apps"
	"numadag/internal/rt"
)

// The eight paper benchmarks, re-registered as thin wrappers over
// internal/apps. With no parameters a wrapper is exactly apps.ByName at the
// contextual scale; parameters map onto the benchmark's explicit-size
// constructor ("jacobi?nb=32&tile=1M&iters=4"), so sweeps can scan problem
// sizes without a bespoke Go program.

func fromApp(a apps.App, err error) (Workload, error) {
	if err != nil {
		return Workload{}, err
	}
	return Workload{Build: func(r *rt.Runtime) error { a.Build(r); return nil }}, nil
}

func stencilFactory(build func(apps.StencilParams) (apps.App, error)) Factory {
	return func(s Spec, scale apps.Scale, _ uint64) (Workload, error) {
		if err := s.Only("nb", "tile", "iters"); err != nil {
			return Workload{}, err
		}
		p := apps.StencilPreset(scale)
		var err error
		if p.NB, err = s.Int("nb", p.NB); err != nil {
			return Workload{}, err
		}
		if p.TileBytes, err = s.Bytes("tile", p.TileBytes); err != nil {
			return Workload{}, err
		}
		if p.Iters, err = s.Int("iters", p.Iters); err != nil {
			return Workload{}, err
		}
		return fromApp(build(p))
	}
}

func denseFactory(build func(apps.DenseParams) (apps.App, error)) Factory {
	return func(s Spec, scale apps.Scale, _ uint64) (Workload, error) {
		if err := s.Only("nt", "tile"); err != nil {
			return Workload{}, err
		}
		p := apps.DensePreset(scale)
		var err error
		if p.NT, err = s.Int("nt", p.NT); err != nil {
			return Workload{}, err
		}
		if p.TileBytes, err = s.Bytes("tile", p.TileBytes); err != nil {
			return Workload{}, err
		}
		return fromApp(build(p))
	}
}

func nstreamFactory() Factory {
	return func(s Spec, scale apps.Scale, _ uint64) (Workload, error) {
		if err := s.Only("chunks", "chunk", "iters"); err != nil {
			return Workload{}, err
		}
		p := apps.NStreamPreset(scale)
		var err error
		if p.Chunks, err = s.Int("chunks", p.Chunks); err != nil {
			return Workload{}, err
		}
		if p.ChunkBytes, err = s.Bytes("chunk", p.ChunkBytes); err != nil {
			return Workload{}, err
		}
		if p.Iters, err = s.Int("iters", p.Iters); err != nil {
			return Workload{}, err
		}
		return fromApp(apps.NewNStreamWith(p))
	}
}

func cgFactory() Factory {
	return func(s Spec, scale apps.Scale, _ uint64) (Workload, error) {
		if err := s.Only("blocks", "ablock", "vblock", "iters"); err != nil {
			return Workload{}, err
		}
		p := apps.CGPreset(scale)
		var err error
		if p.Blocks, err = s.Int("blocks", p.Blocks); err != nil {
			return Workload{}, err
		}
		if p.ABlockBytes, err = s.Bytes("ablock", p.ABlockBytes); err != nil {
			return Workload{}, err
		}
		if p.VecBlockBytes, err = s.Bytes("vblock", p.VecBlockBytes); err != nil {
			return Workload{}, err
		}
		if p.Iters, err = s.Int("iters", p.Iters); err != nil {
			return Workload{}, err
		}
		return fromApp(apps.NewCGWith(p))
	}
}

func inthistFactory() Factory {
	return func(s Spec, scale apps.Scale, _ uint64) (Workload, error) {
		if err := s.Only("nb", "imgtile", "hist", "frames"); err != nil {
			return Workload{}, err
		}
		p := apps.IntHistPreset(scale)
		var err error
		if p.NB, err = s.Int("nb", p.NB); err != nil {
			return Workload{}, err
		}
		if p.ImgTileBytes, err = s.Bytes("imgtile", p.ImgTileBytes); err != nil {
			return Workload{}, err
		}
		if p.HistBytes, err = s.Bytes("hist", p.HistBytes); err != nil {
			return Workload{}, err
		}
		if p.Frames, err = s.Int("frames", p.Frames); err != nil {
			return Workload{}, err
		}
		return fromApp(apps.NewIntegralHistogramWith(p))
	}
}

func init() {
	reg := func(name, doc string, f Factory) { MustRegister(name, doc, f) }
	reg("jacobi", "out-of-place 5-point stencil, ping-pong grids [nb, tile, iters]",
		stencilFactory(apps.NewJacobiWith))
	reg("red-black", "in-place red-black Gauss-Seidel stencil [nb, tile, iters]",
		stencilFactory(apps.NewRedBlackWith))
	reg("gauss-seidel", "in-place wavefront Gauss-Seidel stencil [nb, tile, iters]",
		stencilFactory(apps.NewGaussSeidelWith))
	reg("qr", "tiled QR factorization (2D block-cyclic expert layout) [nt, tile]",
		denseFactory(apps.NewQRWith))
	reg("syminv", "symmetric matrix inversion, three chained factorizations [nt, tile]",
		denseFactory(apps.NewSymInvWith))
	reg("nstream", "memory-bound triad stream over chunked arrays [chunks, chunk, iters]",
		nstreamFactory())
	reg("cg", "blocked conjugate gradient iteration [blocks, ablock, vblock, iters]",
		cgFactory())
	reg("inthist", "integral histogram over frame tiles [nb, imgtile, hist, frames]",
		inthistFactory())
}
