package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"numadag/internal/apps"
	"numadag/internal/graph"
	"numadag/internal/memory"
	"numadag/internal/rt"
)

// fileFactory imports a DAG serialized in cmd/dagpart's JSON format
// ({"nodes":[{"label","weight"}],"edges":[{"from","to","weight"}]}) and
// replays it as a task graph: node weights become task flops, and each edge
// becomes a dedicated deferred region of the edge's byte weight, written by
// the source task and read by the target — so the runtime's dependence
// tracker re-derives exactly the imported edges with their weights. The
// file is read and validated eagerly, at spec-resolution time; malformed
// input fails before any simulation is set up.
func fileFactory(s Spec, _ apps.Scale, _ uint64) (Workload, error) {
	if err := s.Only("path", "format"); err != nil {
		return Workload{}, err
	}
	path := s.Str("path", "")
	if path == "" {
		return Workload{}, fmt.Errorf("workload: file: missing required parameter path")
	}
	if f := s.Str("format", "json"); f != "json" {
		return Workload{}, fmt.Errorf("workload: file: unsupported format %q (only json)", f)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: file: %w", err)
	}
	var d graph.DAG
	if err := json.Unmarshal(data, &d); err != nil {
		return Workload{}, fmt.Errorf("workload: file: malformed DAG in %s: %w", path, err)
	}
	if d.Len() == 0 {
		return Workload{}, fmt.Errorf("workload: file: %s holds an empty graph", path)
	}
	order, err := d.TopoOrder()
	if err != nil {
		return Workload{}, fmt.Errorf("workload: file: %s: %w", path, err)
	}
	return Workload{Build: dagBuilder(&d, order)}, nil
}

// dagBuilder replays an in-memory DAG through Submit, in topological order
// so every producing task precedes its consumers (Submit derives RAW edges
// from the region's last writer).
func dagBuilder(d *graph.DAG, order []graph.NodeID) func(r *rt.Runtime) error {
	return func(r *rt.Runtime) error {
		// outRegions[id] holds the region task id writes for each of its
		// out-edges, keyed by successor, created when the producer submits.
		outRegions := make([]map[graph.NodeID]*memory.Region, d.Len())
		for _, id := range order {
			var acc []rt.Access
			d.Preds(id, func(from graph.NodeID, _ int64) {
				acc = append(acc, rt.Access{Region: outRegions[from][id], Mode: rt.In})
			})
			if n := d.OutDegree(id); n > 0 {
				outRegions[id] = make(map[graph.NodeID]*memory.Region, n)
				d.Succs(id, func(to graph.NodeID, w int64) {
					reg := r.Mem().Alloc(fmt.Sprintf("e%d-%d", id, to), w, memory.Deferred, 0)
					outRegions[id][to] = reg
					acc = append(acc, rt.Access{Region: reg, Mode: rt.Out})
				})
			}
			label := d.Label(id)
			if label == "" {
				label = fmt.Sprintf("n%d", id)
			}
			r.Submit(rt.TaskSpec{
				Label:    label,
				Flops:    float64(d.NodeWeight(id)),
				Accesses: acc,
				EPSocket: rt.NoEPHint,
			})
		}
		return nil
	}
}

// FromDAG wraps an in-memory DAG as a Workload, for programmatic use (the
// file generator is this plus JSON loading). The DAG must be acyclic and is
// not copied; it must not be mutated afterwards.
func FromDAG(name string, d *graph.DAG) (Workload, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return Workload{}, fmt.Errorf("workload: %w", err)
	}
	return Workload{Name: name, Spec: name, Seed: 1, Build: dagBuilder(d, order)}, nil
}

func init() {
	MustRegister("file",
		"DAG imported from a dagpart-format JSON file [path, format]",
		fileFactory)
}
