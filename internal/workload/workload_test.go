package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/graph"
	"numadag/internal/machine"
	"numadag/internal/rt"
)

// graphShape summarizes a DAG for equality checks.
type graphShape struct {
	Nodes, Edges              int
	NodeWeight, EdgeWeight    int64
	Levels                    int
	FirstLabel, LastLabel     string
	Roots, Leaves, CritWeight int64
}

func shapeOf(t *testing.T, w Workload) graphShape {
	t.Helper()
	r, err := w.Instantiate(machine.BullionS16())
	if err != nil {
		t.Fatalf("%s: %v", w.Spec, err)
	}
	d := r.Graph()
	_, lv, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := d.CriticalPathWeight()
	if err != nil {
		t.Fatal(err)
	}
	return graphShape{
		Nodes:      d.Len(),
		Edges:      d.Edges(),
		NodeWeight: d.TotalNodeWeight(),
		EdgeWeight: d.TotalEdgeWeight(),
		Levels:     lv,
		FirstLabel: d.Label(0),
		LastLabel:  d.Label(graph.NodeID(d.Len() - 1)),
		Roots:      int64(len(d.Roots())),
		Leaves:     int64(len(d.Leaves())),
		CritWeight: cp,
	}
}

func TestRegistryListsAppsAndGenerators(t *testing.T) {
	names := Names()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, n := range apps.Names() {
		if !have[n] {
			t.Errorf("app %q not registered as a workload", n)
		}
	}
	for _, n := range []string{"random-layered", "forkjoin", "file"} {
		if !have[n] {
			t.Errorf("generator %q not registered", n)
		}
		if doc, err := Doc(n); err != nil || doc == "" {
			t.Errorf("Doc(%q) = %q, %v", n, doc, err)
		}
	}
}

// TestAppWrapperMatchesByName pins the zero-parameter wrappers to the exact
// graphs apps.ByName builds — the property that keeps Figure 1 and the
// determinism goldens byte-identical after the workload migration.
func TestAppWrapperMatchesByName(t *testing.T) {
	for _, name := range apps.Names() {
		w, err := New(name, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		r, err := w.Instantiate(machine.BullionS16())
		if err != nil {
			t.Fatal(err)
		}
		app, err := apps.ByName(name, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		wrapped := Workload{Build: func(r *rt.Runtime) error { app.Build(r); return nil }}
		rr, err := wrapped.Instantiate(machine.BullionS16())
		if err != nil {
			t.Fatal(err)
		}
		if r.Graph().Len() != rr.Graph().Len() || r.Graph().Edges() != rr.Graph().Edges() ||
			r.Graph().TotalNodeWeight() != rr.Graph().TotalNodeWeight() ||
			r.Graph().TotalEdgeWeight() != rr.Graph().TotalEdgeWeight() {
			t.Errorf("%s: wrapper graph differs from apps.ByName", name)
		}
	}
}

func TestSeedAndScaleLifting(t *testing.T) {
	w, err := New("random-layered?layers=5&seed=9&scale=tiny", apps.Paper)
	if err != nil {
		t.Fatal(err)
	}
	if w.Seed != 9 || w.Scale != apps.Tiny || w.Name != "random-layered" {
		t.Fatalf("lifting failed: %+v", w)
	}
	if w.Spec != "random-layered?layers=5" {
		t.Fatalf("canonical spec %q retains reserved params", w.Spec)
	}
	if w.Key() != "random-layered?layers=5@tiny#9" {
		t.Fatalf("Key() = %q", w.Key())
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	for _, spec := range []string{
		"random-layered?layers=6&width=10&seed=4",
		"forkjoin?depth=4&fanout=2&seed=4",
	} {
		w1, err := New(spec, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := New(spec, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := shapeOf(t, w1), shapeOf(t, w2); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds differ: %+v vs %+v", spec, a, b)
		}
	}
	// A different seed must change the graph (weights at minimum).
	a, _ := New("random-layered?layers=6&width=10&seed=1", apps.Tiny)
	b, _ := New("random-layered?layers=6&width=10&seed=2", apps.Tiny)
	if reflect.DeepEqual(shapeOf(t, a), shapeOf(t, b)) {
		t.Error("random-layered: seeds 1 and 2 built identical graphs")
	}
}

func TestRandomLayeredStructure(t *testing.T) {
	w, err := New("random-layered?layers=7&width=9&fan=2&seed=3", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Instantiate(machine.BullionS16())
	if err != nil {
		t.Fatal(err)
	}
	d := r.Graph()
	if d.Len() != 7*9 {
		t.Fatalf("nodes = %d, want %d", d.Len(), 7*9)
	}
	_, lv, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv != 7 {
		t.Fatalf("levels = %d, want 7", lv)
	}
	// Every non-root layer node has at least one predecessor in the
	// previous layer, so the only roots are layer 0.
	if roots := len(d.Roots()); roots != 9 {
		t.Fatalf("roots = %d, want 9", roots)
	}
}

func TestForkJoinStructure(t *testing.T) {
	const depth, fanout = 3, 2
	w, err := New("forkjoin?depth=3&fanout=2&cv=0", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Instantiate(machine.BullionS16())
	if err != nil {
		t.Fatal(err)
	}
	d := r.Graph()
	// Internal levels hold (fanout^depth-1)/(fanout-1) fork+join pairs,
	// plus fanout^depth leaves.
	internal := (1<<depth - 1) // fanout=2
	want := 2*internal + 1<<depth
	if d.Len() != want {
		t.Fatalf("nodes = %d, want %d", d.Len(), want)
	}
	if roots := d.Roots(); len(roots) != 1 || d.Label(roots[0]) != "fork" {
		t.Fatalf("roots = %v", roots)
	}
	if leaves := d.Leaves(); len(leaves) != 1 || d.Label(leaves[0]) != "join" {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestFileImportRoundtrip(t *testing.T) {
	// Export a generated graph to JSON, import it through the file
	// workload, and demand an identical node/edge/weight structure.
	src, err := New("forkjoin?depth=3&fanout=2&seed=5", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := src.Instantiate(machine.BullionS16())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rs.Graph())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	imp, err := New("file?path="+path, apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := imp.Instantiate(machine.BullionS16())
	if err != nil {
		t.Fatal(err)
	}
	gs, gi := rs.Graph(), ri.Graph()
	if gs.Len() != gi.Len() || gs.Edges() != gi.Edges() ||
		gs.TotalNodeWeight() != gi.TotalNodeWeight() || gs.TotalEdgeWeight() != gi.TotalEdgeWeight() {
		t.Fatalf("roundtrip differs: %d/%d/%d/%d vs %d/%d/%d/%d",
			gs.Len(), gs.Edges(), gs.TotalNodeWeight(), gs.TotalEdgeWeight(),
			gi.Len(), gi.Edges(), gi.TotalNodeWeight(), gi.TotalEdgeWeight())
	}
	// Malformed content fails at resolution time.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nodes": [{"weight": -1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New("file?path="+bad, apps.Tiny); err == nil {
		t.Error("malformed file accepted")
	}
	// A cyclic graph fails validation.
	cyclic := filepath.Join(t.TempDir(), "cyclic.json")
	cy := `{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`
	if err := os.WriteFile(cyclic, []byte(cy), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New("file?path="+cyclic, apps.Tiny); err == nil {
		t.Error("cyclic file accepted")
	}
}
