package workload

import (
	"strings"
	"testing"

	"numadag/internal/apps"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("random-layered?width=96&layers=24&cv=0.4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "random-layered" || len(s.Params) != 3 || s.Params["width"] != "96" {
		t.Fatalf("parsed %+v", s)
	}
	// Canonical rendering sorts parameters.
	if got := s.String(); got != "random-layered?cv=0.4&layers=24&width=96" {
		t.Fatalf("String() = %q", got)
	}
	if p, err := ParseSpec("jacobi"); err != nil || p.Name != "jacobi" || p.Params != nil {
		t.Fatalf("bare name: %+v, %v", p, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"", "?x=1", "a?=1", "a?x", "a?x=1&x=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecParamHelpers(t *testing.T) {
	s, err := ParseSpec("x?n=12&f=0.5&sz=256K&big=2M&s=hi")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Int("n", 0); err != nil || n != 12 {
		t.Errorf("Int: %d, %v", n, err)
	}
	if n, err := s.Int("missing", 7); err != nil || n != 7 {
		t.Errorf("Int default: %d, %v", n, err)
	}
	if f, err := s.Float("f", 0); err != nil || f != 0.5 {
		t.Errorf("Float: %g, %v", f, err)
	}
	if b, err := s.Bytes("sz", 0); err != nil || b != 256<<10 {
		t.Errorf("Bytes K: %d, %v", b, err)
	}
	if b, err := s.Bytes("big", 0); err != nil || b != 2<<20 {
		t.Errorf("Bytes M: %d, %v", b, err)
	}
	if v := s.Str("s", ""); v != "hi" {
		t.Errorf("Str: %q", v)
	}
	if _, err := s.Int("s", 0); err == nil {
		t.Error("Int on non-integer accepted")
	}
	if _, err := s.Bytes("s", 0); err == nil {
		t.Error("Bytes on non-size accepted")
	}
}

// TestNewErrors mirrors the policy registry's error coverage: unknown
// names, unknown parameters, bad parameter values, and bad files all fail
// at resolution time with actionable messages.
func TestNewErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"no-such-workload", "unknown workload"},
		{"jacobi?nb=", "not an integer"},
		{"jacobi?mystery=1", "does not take parameter"},
		{"jacobi?nb=1", "invalid stencil params"}, // apps validation: NB < 2
		{"forkjoin?fanout=1", "invalid parameters"},
		{"random-layered?cv=2", "invalid parameters"},
		{"random-layered?seed=-1", "not an unsigned integer"},
		{"jacobi?scale=huge", "unknown scale"},
		{"file", "missing required parameter path"},
		{"file?path=no/such/file.json", "no such file"},
		{"file?format=dot&path=x", "unsupported format"},
	}
	for _, c := range cases {
		_, err := New(c.spec, 0)
		if err == nil {
			t.Errorf("New(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("New(%q) error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	dummy := Factory(func(Spec, apps.Scale, uint64) (Workload, error) { return Workload{}, nil })
	for _, bad := range []string{"", "a?b", "a=b", "a b"} {
		if err := Register(bad, "", dummy); err == nil {
			t.Errorf("Register(%q) accepted", bad)
		}
	}
	if err := Register("jacobi", "", dummy); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register("nilfactory", "", nil); err == nil {
		t.Error("nil factory accepted")
	}
}
