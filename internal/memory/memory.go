// Package memory models NUMA page placement for the simulated machine.
//
// Applications declare named Regions (a tile of a matrix, a chunk of a
// stream array). A region is a run of pages; each page has a home socket or
// is still unallocated. The placement policies mirror what the paper's
// runtimes rely on:
//
//   - FirstTouch: Linux's default — a page is homed on the socket of the
//     first core that writes it.
//   - Interleave: pages round-robin across sockets (numactl --interleave).
//   - Home: explicit placement on one socket (numactl --membind, or the
//     expert programmer's distribution).
//   - Deferred: the allocation is postponed until the runtime knows where
//     the producing task will run (Drebes et al.'s deferred allocation,
//     the cornerstone of LAS); the first Touch then homes all pages at once.
//
// The Manager tracks per-socket residency so schedulers can ask "where does
// this task's data live?" in O(sockets).
package memory

import (
	"fmt"
)

// DefaultPageSize is the simulated page granularity (4 KiB, as on the
// paper's Linux testbed).
const DefaultPageSize = 4096

// Placement selects how a region's pages are homed.
type Placement int

const (
	// Deferred leaves pages unallocated until first touch; the touching
	// socket becomes the home of every still-unallocated page.
	Deferred Placement = iota
	// FirstTouch behaves like Deferred in the simulator (pages are homed on
	// first touch); it exists as a distinct label because policies treat
	// "OS default" and "runtime-deferred" allocations differently in
	// statistics.
	FirstTouch
	// Interleave homes page i on socket i mod sockets at creation.
	Interleave
	// Home homes every page on a fixed socket at creation.
	Home
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case Deferred:
		return "deferred"
	case FirstTouch:
		return "first-touch"
	case Interleave:
		return "interleave"
	case Home:
		return "home"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Unallocated marks a page with no home yet.
const Unallocated = int16(-1)

// Region is a contiguous, named allocation whose pages may live on
// different sockets.
type Region struct {
	id    int
	name  string
	bytes int64
	// homes[i] is the socket of page i, or Unallocated.
	homes     []int16
	pageSize  int64
	placement Placement
	mgr       *Manager
}

// ID returns the region's dense identifier within its Manager.
func (r *Region) ID() int { return r.id }

// Name returns the diagnostic name.
func (r *Region) Name() string { return r.name }

// Bytes returns the region size.
func (r *Region) Bytes() int64 { return r.bytes }

// Pages returns the number of pages.
func (r *Region) Pages() int { return len(r.homes) }

// Placement returns the placement policy the region was created with.
func (r *Region) Placement() Placement { return r.placement }

// Allocated reports whether every page has a home.
func (r *Region) Allocated() bool {
	for _, h := range r.homes {
		if h == Unallocated {
			return false
		}
	}
	return true
}

// HomeOfPage returns the home socket of page i, or Unallocated.
func (r *Region) HomeOfPage(i int) int16 { return r.homes[i] }

// BytesOnSocket returns, per socket, the bytes of this region homed there.
// Unallocated bytes are not counted.
func (r *Region) BytesOnSocket(sockets int) []int64 {
	out := make([]int64, sockets)
	r.AddBytesOnSocket(out)
	return out
}

// AddBytesOnSocket accumulates, per socket, the bytes of this region homed
// there into out, whose length must cover every socket. It is the
// allocation-free form of BytesOnSocket for schedulers that query residency
// once per task.
func (r *Region) AddBytesOnSocket(out []int64) {
	for i, h := range r.homes {
		if h == Unallocated {
			continue
		}
		out[h] += r.pageBytes(i)
	}
}

// AllocatedBytes returns the bytes with a home.
func (r *Region) AllocatedBytes() int64 {
	var n int64
	for i, h := range r.homes {
		if h != Unallocated {
			n += r.pageBytes(i)
		}
	}
	return n
}

// pageBytes returns the size of page i (the last page may be partial, and
// the placeholder page of a zero-byte region is empty).
func (r *Region) pageBytes(i int) int64 {
	if r.bytes == 0 {
		return 0
	}
	if i == len(r.homes)-1 {
		if rem := r.bytes % r.pageSize; rem != 0 {
			return rem
		}
	}
	return r.pageSize
}

// Touch homes every still-unallocated page of the region on the given
// socket (first-touch semantics) and returns the number of bytes newly
// homed. Touching a fully allocated region is a cheap no-op.
func (r *Region) Touch(socket int) int64 {
	if socket < 0 || socket >= r.mgr.sockets {
		panic(fmt.Sprintf("memory: touch on socket %d of %d", socket, r.mgr.sockets))
	}
	var newly int64
	for i, h := range r.homes {
		if h == Unallocated {
			r.homes[i] = int16(socket)
			newly += r.pageBytes(i)
		}
	}
	return newly
}

// Migrate re-homes every page of the region to the given socket and returns
// the bytes moved (pages already there are not counted). This is the
// page-migration primitive OS-level techniques use; the paper's policies
// don't migrate, but ablations can.
func (r *Region) Migrate(socket int) int64 {
	if socket < 0 || socket >= r.mgr.sockets {
		panic(fmt.Sprintf("memory: migrate to socket %d of %d", socket, r.mgr.sockets))
	}
	var moved int64
	for i, h := range r.homes {
		if h != int16(socket) {
			if h != Unallocated {
				moved += r.pageBytes(i)
			}
			r.homes[i] = int16(socket)
		}
	}
	return moved
}

// Manager owns the regions of one simulated application run. A Manager can
// be Reset and refilled: the Region structs and their page tables are kept
// pointer-stable across resets, so a pooled runtime re-running the same
// workload shape allocates no region state after the first run.
type Manager struct {
	sockets  int
	pageSize int64
	regions  []*Region
	// pool holds every Region struct ever created, in ID order; regions is
	// always pool[:n]. Reset just truncates, and Alloc revives pool entries
	// (reusing their homes tables) before allocating fresh ones.
	pool []*Region
}

// NewManager creates a Manager for a machine with the given socket count
// and the default page size.
func NewManager(sockets int) *Manager {
	return NewManagerPageSize(sockets, DefaultPageSize)
}

// NewManagerPageSize creates a Manager with an explicit page size.
func NewManagerPageSize(sockets int, pageSize int64) *Manager {
	if sockets <= 0 {
		panic(fmt.Sprintf("memory: %d sockets", sockets))
	}
	if pageSize <= 0 {
		panic(fmt.Sprintf("memory: page size %d", pageSize))
	}
	return &Manager{sockets: sockets, pageSize: pageSize}
}

// Sockets returns the socket count the manager was created with.
func (m *Manager) Sockets() int { return m.sockets }

// PageSize returns the page granularity.
func (m *Manager) PageSize() int64 { return m.pageSize }

// Regions returns all regions in creation order. The returned slice is the
// manager's own; callers must not mutate it.
func (m *Manager) Regions() []*Region { return m.regions }

// Alloc creates a region of the given size under the placement policy.
// homeSocket is only used by Home (pass 0 otherwise). Zero-byte regions are
// legal and occupy one (empty) page so they still have an identity.
func (m *Manager) Alloc(name string, bytes int64, placement Placement, homeSocket int) *Region {
	if bytes < 0 {
		panic(fmt.Sprintf("memory: alloc %q of %d bytes", name, bytes))
	}
	nPages := int((bytes + m.pageSize - 1) / m.pageSize)
	if nPages == 0 {
		nPages = 1
	}
	id := len(m.regions)
	var r *Region
	var homes []int16
	if id < len(m.pool) {
		r = m.pool[id]
		if cap(r.homes) >= nPages {
			homes = r.homes[:nPages]
		}
	} else {
		r = &Region{}
		m.pool = append(m.pool, r)
	}
	if homes == nil {
		homes = make([]int16, nPages)
	}
	*r = Region{
		id:        id,
		name:      name,
		bytes:     bytes,
		homes:     homes,
		pageSize:  m.pageSize,
		placement: placement,
		mgr:       m,
	}
	switch placement {
	case Deferred, FirstTouch:
		for i := range r.homes {
			r.homes[i] = Unallocated
		}
	case Interleave:
		for i := range r.homes {
			r.homes[i] = int16(i % m.sockets)
		}
	case Home:
		if homeSocket < 0 || homeSocket >= m.sockets {
			panic(fmt.Sprintf("memory: home socket %d of %d", homeSocket, m.sockets))
		}
		for i := range r.homes {
			r.homes[i] = int16(homeSocket)
		}
	default:
		panic(fmt.Sprintf("memory: unknown placement %v", placement))
	}
	m.regions = m.pool[:id+1]
	return r
}

// Reset discards every region while keeping their structs and page tables
// pooled for reuse by subsequent Allocs. Region pointers handed out before
// the reset are recycled by those later Allocs and must not be retained.
func (m *Manager) Reset() {
	m.regions = m.pool[:0]
}

// TotalBytesOnSocket sums the homed bytes of every region per socket.
func (m *Manager) TotalBytesOnSocket() []int64 {
	out := make([]int64, m.sockets)
	for _, r := range m.regions {
		for i, h := range r.homes {
			if h != Unallocated {
				out[h] += r.pageBytes(i)
			}
		}
	}
	return out
}

// UnallocatedBytes returns the total bytes still without a home.
func (m *Manager) UnallocatedBytes() int64 {
	var n int64
	for _, r := range m.regions {
		n += r.bytes - r.AllocatedBytes()
	}
	return n
}
