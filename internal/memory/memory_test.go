package memory

import (
	"testing"
	"testing/quick"
)

func TestDeferredStartsUnallocated(t *testing.T) {
	m := NewManager(4)
	r := m.Alloc("a", 64<<10, Deferred, 0)
	if r.Allocated() {
		t.Fatal("deferred region born allocated")
	}
	if got := r.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes = %d, want 0", got)
	}
	if m.UnallocatedBytes() != 64<<10 {
		t.Fatalf("UnallocatedBytes = %d", m.UnallocatedBytes())
	}
}

func TestTouchHomesAllPages(t *testing.T) {
	m := NewManager(4)
	r := m.Alloc("a", 64<<10, Deferred, 0)
	newly := r.Touch(2)
	if newly != 64<<10 {
		t.Fatalf("Touch homed %d bytes, want all %d", newly, 64<<10)
	}
	if !r.Allocated() {
		t.Fatal("region not allocated after touch")
	}
	by := r.BytesOnSocket(4)
	if by[2] != 64<<10 {
		t.Fatalf("BytesOnSocket = %v", by)
	}
	// Second touch is a no-op.
	if again := r.Touch(1); again != 0 {
		t.Fatalf("second Touch homed %d bytes", again)
	}
	if r.BytesOnSocket(4)[1] != 0 {
		t.Fatal("second touch moved pages")
	}
}

func TestInterleaveSpreadsPages(t *testing.T) {
	m := NewManager(4)
	r := m.Alloc("a", 16*DefaultPageSize, Interleave, 0)
	by := r.BytesOnSocket(4)
	for s, b := range by {
		if b != 4*DefaultPageSize {
			t.Fatalf("socket %d has %d bytes, want %d (got %v)", s, b, 4*DefaultPageSize, by)
		}
	}
}

func TestHomePlacement(t *testing.T) {
	m := NewManager(8)
	r := m.Alloc("a", 10*DefaultPageSize, Home, 5)
	by := r.BytesOnSocket(8)
	if by[5] != 10*DefaultPageSize {
		t.Fatalf("home placement scattered: %v", by)
	}
	if !r.Allocated() {
		t.Fatal("home region not allocated")
	}
}

func TestPartialLastPage(t *testing.T) {
	m := NewManager(2)
	r := m.Alloc("a", DefaultPageSize+100, Home, 1)
	if r.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", r.Pages())
	}
	if got := r.BytesOnSocket(2)[1]; got != DefaultPageSize+100 {
		t.Fatalf("bytes = %d, want %d", got, DefaultPageSize+100)
	}
}

func TestZeroByteRegion(t *testing.T) {
	m := NewManager(2)
	r := m.Alloc("empty", 0, Deferred, 0)
	if r.Pages() != 1 {
		t.Fatalf("zero-byte region has %d pages, want 1", r.Pages())
	}
	if r.Touch(0) != 0 {
		t.Fatal("touching empty region reported bytes")
	}
}

func TestMigrate(t *testing.T) {
	m := NewManager(4)
	r := m.Alloc("a", 8*DefaultPageSize, Home, 0)
	moved := r.Migrate(3)
	if moved != 8*DefaultPageSize {
		t.Fatalf("Migrate moved %d bytes", moved)
	}
	if r.BytesOnSocket(4)[3] != 8*DefaultPageSize {
		t.Fatal("pages not re-homed")
	}
	if again := r.Migrate(3); again != 0 {
		t.Fatalf("idempotent migrate moved %d bytes", again)
	}
}

func TestMigrateUnallocatedPagesNotCounted(t *testing.T) {
	m := NewManager(4)
	r := m.Alloc("a", 8*DefaultPageSize, Deferred, 0)
	if moved := r.Migrate(1); moved != 0 {
		t.Fatalf("migrating unallocated pages reported %d bytes moved", moved)
	}
	if !r.Allocated() {
		t.Fatal("migrate should home pages")
	}
}

func TestTotalBytesOnSocket(t *testing.T) {
	m := NewManager(2)
	m.Alloc("a", 4*DefaultPageSize, Home, 0)
	m.Alloc("b", 6*DefaultPageSize, Home, 1)
	c := m.Alloc("c", 2*DefaultPageSize, Deferred, 0)
	c.Touch(1)
	got := m.TotalBytesOnSocket()
	if got[0] != 4*DefaultPageSize || got[1] != 8*DefaultPageSize {
		t.Fatalf("TotalBytesOnSocket = %v", got)
	}
}

func TestAllocPanics(t *testing.T) {
	m := NewManager(2)
	cases := []func(){
		func() { m.Alloc("neg", -1, Deferred, 0) },
		func() { m.Alloc("badhome", 10, Home, 2) },
		func() { m.Alloc("badhome2", 10, Home, -1) },
		func() { m.Alloc("badplacement", 10, Placement(99), 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTouchOutOfRangePanics(t *testing.T) {
	m := NewManager(2)
	r := m.Alloc("a", 10, Deferred, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("touch on socket 9 did not panic")
		}
	}()
	r.Touch(9)
}

func TestManagerConstructionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewManager(0) },
		func() { NewManagerPageSize(2, 0) },
	} {
		func() {
			defer func() { _ = recover() }()
			f()
			t.Error("invalid manager construction did not panic")
		}()
	}
}

func TestPlacementString(t *testing.T) {
	for p, want := range map[Placement]string{
		Deferred:      "deferred",
		FirstTouch:    "first-touch",
		Interleave:    "interleave",
		Home:          "home",
		Placement(42): "placement(42)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestRegionIdentity(t *testing.T) {
	m := NewManager(2)
	a := m.Alloc("a", 10, Deferred, 0)
	b := m.Alloc("b", 10, Deferred, 0)
	if a.ID() == b.ID() {
		t.Fatal("regions share an ID")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatal("names lost")
	}
	if len(m.Regions()) != 2 {
		t.Fatalf("manager tracks %d regions", len(m.Regions()))
	}
}

// Property: for any size and placement, the sum of per-socket bytes plus
// unallocated bytes equals the region size.
func TestPropertyBytesConserved(t *testing.T) {
	f := func(kb uint16, placementSel uint8, touchSocket uint8) bool {
		m := NewManager(8)
		bytes := int64(kb%512) * 129 // odd sizes, partial pages
		placements := []Placement{Deferred, FirstTouch, Interleave, Home}
		p := placements[int(placementSel)%len(placements)]
		r := m.Alloc("x", bytes, p, 3)
		if touchSocket%2 == 0 {
			r.Touch(int(touchSocket) % 8)
		}
		var homed int64
		for _, b := range r.BytesOnSocket(8) {
			homed += b
		}
		return homed == r.AllocatedBytes() && homed+(r.Bytes()-r.AllocatedBytes()) == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleave balance — no socket holds more than ceil(pages/sockets)
// pages worth of bytes.
func TestPropertyInterleaveBalanced(t *testing.T) {
	f := func(pages uint8) bool {
		m := NewManager(4)
		n := int64(pages%64) + 1
		r := m.Alloc("x", n*DefaultPageSize, Interleave, 0)
		maxPages := (n + 3) / 4
		for _, b := range r.BytesOnSocket(4) {
			if b > maxPages*DefaultPageSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResetReusesRegions(t *testing.T) {
	m := NewManager(2)
	a := m.Alloc("a", 10000, Deferred, 0)
	b := m.Alloc("b", 5000, Interleave, 0)
	a.Touch(1)
	m.Reset()
	if len(m.Regions()) != 0 {
		t.Fatalf("Regions() after Reset: %d, want 0", len(m.Regions()))
	}
	a2 := m.Alloc("a2", 8000, Deferred, 0)
	b2 := m.Alloc("b2", 5000, Home, 1)
	if a2 != a || b2 != b {
		t.Fatal("Alloc after Reset did not revive the pooled Region structs")
	}
	if a2.ID() != 0 || a2.Name() != "a2" || a2.Bytes() != 8000 || a2.Allocated() {
		t.Fatalf("revived region carries stale state: id=%d name=%q bytes=%d allocated=%v",
			a2.ID(), a2.Name(), a2.Bytes(), a2.Allocated())
	}
	for i := 0; i < b2.Pages(); i++ {
		if b2.HomeOfPage(i) != 1 {
			t.Fatalf("revived Home region: page %d homed on %d, want 1", i, b2.HomeOfPage(i))
		}
	}
	c := m.Alloc("c", 1000, Deferred, 0)
	if c == a || c == b {
		t.Fatal("third Alloc reused a live region")
	}
}

func TestAllocAfterResetSteadyStateAllocs(t *testing.T) {
	m := NewManager(2)
	build := func() {
		m.Reset()
		m.Alloc("x", 64<<10, Deferred, 0).Touch(0)
		m.Alloc("y", 32<<10, Interleave, 0)
		m.Alloc("z", 16<<10, Home, 1)
	}
	build() // warm the pool
	avg := testing.AllocsPerRun(20, build)
	if avg != 0 {
		t.Fatalf("Alloc after Reset allocates %v objects per op, want 0", avg)
	}
}

func TestAddBytesOnSocketMatchesBytesOnSocket(t *testing.T) {
	m := NewManager(3)
	r := m.Alloc("r", 10*DefaultPageSize+123, Interleave, 0)
	want := r.BytesOnSocket(3)
	got := make([]int64, 3)
	got[0] = 7 // accumulates on top of existing values
	r.AddBytesOnSocket(got)
	for s := range want {
		base := int64(0)
		if s == 0 {
			base = 7
		}
		if got[s] != want[s]+base {
			t.Fatalf("socket %d: got %d, want %d", s, got[s], want[s]+base)
		}
	}
}
