package shard_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"testing"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/shard"
	"numadag/internal/sim"
)

// testExperiment is the same tiny fixed grid the core sink goldens pin:
// 1 app x 2 policies x 2 seeds = 4 cells, sequential so stream order is
// beyond doubt.
func testExperiment() *core.Experiment {
	return &core.Experiment{
		Name:     "shard-test",
		Apps:     []string{"jacobi"},
		Policies: []string{"LAS", "DFIFO"},
		Scale:    apps.Tiny,
		Seeds:    2,
		Workers:  1,
	}
}

// runUnsharded captures the reference outputs one in-process run produces.
func runUnsharded(t *testing.T) (jsonl, csv, table []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	ts := core.NewTableSink(tableOpts())
	e := testExperiment()
	if err := e.Run(context.Background(), core.NewJSONLSink(&jb), core.NewCSVSink(&cb), ts); err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := ts.Table().Write(&tb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), tb.Bytes()
}

func tableOpts() core.TableOptions {
	return core.TableOptions{
		Norm:     core.NormSpeedup,
		Baseline: func(c core.Cell) bool { return c.Policy == "LAS" },
		Geomean:  true,
	}
}

func TestSpecParse(t *testing.T) {
	sp, err := shard.ParseSpec("1/3")
	if err != nil || sp.Index != 1 || sp.Count != 3 {
		t.Fatalf("ParseSpec(1/3) = %+v, %v", sp, err)
	}
	for _, bad := range []string{"", "3", "3/3", "-1/3", "0/0", "a/b", "1/3/4"} {
		if _, err := shard.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	// Every canonical index is owned by exactly one of n shards.
	const n = 3
	for idx := 0; idx < 20; idx++ {
		owners := 0
		for i := 0; i < n; i++ {
			if (shard.Spec{Index: i, Count: n}).Owns(idx) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("index %d owned by %d shards", idx, owners)
		}
	}
}

// TestWireRoundTrip pins the bit-exactness contract: decode(encode(res))
// reproduces Cell and Stats exactly, and re-encoding reproduces the line
// byte for byte — including awkward floats.
func TestWireRoundTrip(t *testing.T) {
	res := core.CellResult{
		Cell: core.Cell{
			Index: 7, App: "jacobi", Policy: "RGP+LAS?refine=off",
			Machine: "bullion-s16", Variant: "w=256", Replicate: 1, Seed: 0xdeadbeefcafe,
		},
	}
	res.Stats.Makespan = sim.Time(123456789)
	res.Stats.TasksRun = 4096
	res.Stats.BusyTime = []sim.Time{1, 2, 3, 1 << 40}
	res.Stats.LocalBytes = 1 << 52
	res.Stats.RemoteBytes = 3
	res.Stats.RemoteByteHops = 9
	res.Stats.Steals = 17
	res.Stats.Deferred = 2
	res.Stats.SocketTasks = []int{1024, 1024, 1024, 1024}
	res.Stats.CutBytes = 5
	res.Stats.LoadImbalance = 1.0 / 3.0
	res.Stats.MeanPortUtilization = 0.1 + 0.2 // not representable exactly
	res.Stats.MaxPortUtilization = math.Nextafter(1, 2)

	line, err := shard.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shard.Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cell, res.Cell) {
		t.Errorf("cell drifted: %+v vs %+v", got.Cell, res.Cell)
	}
	if !reflect.DeepEqual(got.Stats, res.Stats) {
		t.Errorf("stats drifted: %+v vs %+v", got.Stats, res.Stats)
	}
	line2, err := shard.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, line2) {
		t.Errorf("re-encode drifted:\n%s%s", line, line2)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	if _, err := shard.Decode([]byte(`{"v":99,"index":0}`)); err == nil {
		t.Error("unknown record version accepted")
	}
	if _, err := shard.DecodeHeader([]byte(`{"v":99,"kind":"numadag-cells"}`)); err == nil {
		t.Error("unknown header version accepted")
	}
	if _, err := shard.DecodeHeader([]byte(`{"v":1,"kind":"something-else"}`)); err == nil {
		t.Error("foreign stream kind accepted")
	}
}

// runShard computes one shard's wire stream in-process.
func runShard(t *testing.T, sp shard.Spec) []byte {
	t.Helper()
	e := testExperiment()
	h, err := shard.HeaderFor(e, sp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	e.Skip = sp.Skip
	if err := e.Run(context.Background(), shard.NewWriter(&buf, h)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardMergeByteIdentical is the tentpole acceptance test: three shards
// run independently, their streams merge back into outputs byte-identical
// to the unsharded run — JSONL, CSV and the rendered table.
func TestShardMergeByteIdentical(t *testing.T) {
	wantJSONL, wantCSV, wantTable := runUnsharded(t)

	streams := make([]shard.Stream, 3)
	total := 0
	for i := range streams {
		st, err := shard.ReadStream(runShard(t, shard.Spec{Index: i, Count: 3}))
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Results) == 0 {
			t.Fatalf("shard %d/3 is empty — the test grid no longer exercises sharding", i)
		}
		streams[i] = st
		total += len(st.Results)
	}
	if total != 4 {
		t.Fatalf("shards cover %d cells, want 4", total)
	}

	var jb, cb bytes.Buffer
	ts := core.NewTableSink(tableOpts())
	if _, err := shard.Merge(streams, core.NewJSONLSink(&jb), core.NewCSVSink(&cb), ts); err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := ts.Table().Write(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Errorf("merged JSONL differs from unsharded:\n%s---\n%s", jb.Bytes(), wantJSONL)
	}
	if !bytes.Equal(cb.Bytes(), wantCSV) {
		t.Errorf("merged CSV differs from unsharded:\n%s---\n%s", cb.Bytes(), wantCSV)
	}
	if !bytes.Equal(tb.Bytes(), wantTable) {
		t.Errorf("merged table differs from unsharded:\n%s---\n%s", tb.Bytes(), wantTable)
	}
}

func TestMergeRejectsGapsAndDuplicates(t *testing.T) {
	s0, err := shard.ReadStream(runShard(t, shard.Spec{Index: 0, Count: 2}))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := shard.ReadStream(runShard(t, shard.Spec{Index: 1, Count: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Merge([]shard.Stream{s0}); err == nil {
		t.Error("merge with a missing shard accepted")
	}
	if _, err := shard.Merge([]shard.Stream{s0, s0, s1}); err == nil {
		t.Error("merge with duplicate cells accepted")
	}
	other := s1
	other.Header.Experiment = "different"
	if _, err := shard.Merge([]shard.Stream{s0, other}); err == nil {
		t.Error("merge across grids accepted")
	}
}

// TestResumeByteIdentical pins resumability: a run interrupted after 2
// fresh cells (deterministic crash via MaxFresh) resumes to produce
// outputs byte-identical to an uninterrupted run, having re-run only the
// missing cells.
func TestResumeByteIdentical(t *testing.T) {
	wantJSONL, _, wantTable := runUnsharded(t)
	dir := t.TempDir()
	path := shard.JournalPath(dir, shard.Spec{})

	// First run: interrupted after 2 of the 4 cells.
	e := testExperiment()
	h, err := shard.HeaderFor(e, shard.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := shard.OpenJournal(path, h, false)
	if err != nil {
		t.Fatal(err)
	}
	cs := shard.NewCheckpointSink(j)
	cs.MaxFresh = 2
	e.Skip = cs.Skip
	err = e.Run(context.Background(), cs)
	if !errors.Is(err, shard.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if cs.Fresh() != 2 {
		t.Fatalf("interrupted run executed %d cells, want 2", cs.Fresh())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: only the remaining cells run; sinks see the full stream.
	e = testExperiment()
	j, err = shard.OpenJournal(path, h, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("journal resumed with %d cells, want 2", j.Len())
	}
	var jb bytes.Buffer
	ts := core.NewTableSink(tableOpts())
	cs = shard.NewCheckpointSink(j, core.NewJSONLSink(&jb), ts)
	e.Skip = cs.Skip
	if err := e.Run(context.Background(), cs); err != nil {
		t.Fatal(err)
	}
	if cs.Fresh() != 2 {
		t.Errorf("resumed run executed %d cells, want 2 (the rest replayed)", cs.Fresh())
	}
	if cs.Replayed() != 2 {
		t.Errorf("resumed run replayed %d cells, want 2", cs.Replayed())
	}
	var tb bytes.Buffer
	if err := ts.Table().Write(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Errorf("resumed JSONL differs from uninterrupted run:\n%s---\n%s", jb.Bytes(), wantJSONL)
	}
	if !bytes.Equal(tb.Bytes(), wantTable) {
		t.Errorf("resumed table differs from uninterrupted run:\n%s---\n%s", tb.Bytes(), wantTable)
	}
}

// TestJournalTornWrite pins crash-safety of the journal format itself: a
// torn final line (partial write at the kill instant) is discarded on
// resume and the cell it belonged to re-runs.
func TestJournalTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := shard.JournalPath(dir, shard.Spec{})
	e := testExperiment()
	h, err := shard.HeaderFor(e, shard.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := shard.OpenJournal(path, h, false)
	if err != nil {
		t.Fatal(err)
	}
	cs := shard.NewCheckpointSink(j)
	cs.MaxFresh = 3
	e.Skip = cs.Skip
	if err := e.Run(context.Background(), cs); !errors.Is(err, shard.ErrInterrupted) {
		t.Fatal(err)
	}
	j.Close()

	// Tear the last record mid-line, as a crash mid-write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	j, err = shard.OpenJournal(path, h, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("torn journal loaded %d cells, want 2 (the torn third discarded)", j.Len())
	}

	// And a journal from a different grid refuses to resume.
	other := testExperiment()
	other.Seeds = 3
	oh, err := shard.HeaderFor(other, shard.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.OpenJournal(path, oh, true); err == nil {
		t.Error("journal from a different grid resumed")
	}
}

// TestMergeDirMatchesMerge covers the file-system path: shard journals
// written by checkpointed shard runs, recombined by MergeDir.
func TestMergeDirMatchesMerge(t *testing.T) {
	wantJSONL, _, _ := runUnsharded(t)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sp := shard.Spec{Index: i, Count: 2}
		e := testExperiment()
		h, err := shard.HeaderFor(e, sp)
		if err != nil {
			t.Fatal(err)
		}
		j, err := shard.OpenJournal(shard.JournalPath(dir, sp), h, false)
		if err != nil {
			t.Fatal(err)
		}
		cs := shard.NewCheckpointSink(j)
		e.Skip = func(c core.Cell) bool { return sp.Skip(c) || cs.Skip(c) }
		if err := e.Run(context.Background(), cs); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var jb bytes.Buffer
	if _, err := shard.MergeDir(dir, core.NewJSONLSink(&jb)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Errorf("MergeDir output differs from unsharded run:\n%s---\n%s", jb.Bytes(), wantJSONL)
	}
}
