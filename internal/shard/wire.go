package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"numadag/internal/core"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

// WireVersion is the current cell-result wire-format version.
//
// Compatibility rule: a record's "v" field names the layout of the whole
// line. Readers accept exactly the versions they know (today: 1) and
// reject anything else instead of guessing; any field addition, removal,
// rename or semantic change bumps the version, and future readers must
// keep decoding every released version — v1 journals stay mergeable
// forever. Encoding is canonical (fixed field order, Go's shortest
// round-trip float formatting), so encode(decode(line)) reproduces the
// line byte-for-byte and a journal can be re-encoded without drift.
const WireVersion = 1

// Header is the first line of every journal/shard stream. It binds the
// records that follow to one experiment grid (name, size and a hash of the
// canonical cell enumeration) and one shard of it, so resume and merge can
// reject streams from a different grid instead of silently mixing them.
type Header struct {
	V          int    `json:"v"`
	Kind       string `json:"kind"` // always headerKind
	Experiment string `json:"experiment"`
	Total      int    `json:"total"` // full canonical grid size
	Grid       string `json:"grid"`  // GridHash of the canonical enumeration
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
}

const headerKind = "numadag-cells"

// Record is version WireVersion of the cell-result wire format: the cell's
// canonical coordinates plus the full run statistics. It is the one
// encoding shared by checkpoint journals, shard outputs and the
// coordinator protocol. Decode reconstructs the (Cell, Stats) half of a
// core.CellResult bit-exactly; the Config half is not serialized — it is a
// pure function of the experiment declaration and the cell coordinates,
// and the stream-consuming sinks read only Cell and Stats.
type Record struct {
	V         int       `json:"v"`
	Index     int       `json:"index"`
	App       string    `json:"app"`
	Policy    string    `json:"policy"`
	Machine   string    `json:"machine"`
	Variant   string    `json:"variant,omitempty"`
	Replicate int       `json:"replicate"`
	Seed      uint64    `json:"seed"`
	Stats     wireStats `json:"stats"`
}

// wireStats mirrors rt.Result field for field. Integer fields are exact by
// construction; float64 fields round-trip bit-exactly because Go's JSON
// encoder emits the shortest decimal that parses back to the same bits.
type wireStats struct {
	Makespan       sim.Time   `json:"makespan"`
	TasksRun       int        `json:"tasks_run"`
	BusyTime       []sim.Time `json:"busy_time,omitempty"`
	LocalBytes     int64      `json:"local_bytes"`
	RemoteBytes    int64      `json:"remote_bytes"`
	RemoteByteHops int64      `json:"remote_byte_hops"`
	Steals         int        `json:"steals"`
	Deferred       int        `json:"deferred"`
	SocketTasks    []int      `json:"socket_tasks,omitempty"`
	CutBytes       int64      `json:"cut_bytes"`
	LoadImbalance  float64    `json:"load_imbalance"`
	MeanPortUtil   float64    `json:"mean_port_util"`
	MaxPortUtil    float64    `json:"max_port_util"`
}

// NewRecord converts a cell result to its wire form.
func NewRecord(res core.CellResult) Record {
	st := res.Stats
	return Record{
		V:         WireVersion,
		Index:     res.Cell.Index,
		App:       res.Cell.App,
		Policy:    res.Cell.Policy,
		Machine:   res.Cell.Machine,
		Variant:   res.Cell.Variant,
		Replicate: res.Cell.Replicate,
		Seed:      res.Cell.Seed,
		Stats: wireStats{
			Makespan:       st.Makespan,
			TasksRun:       st.TasksRun,
			BusyTime:       st.BusyTime,
			LocalBytes:     st.LocalBytes,
			RemoteBytes:    st.RemoteBytes,
			RemoteByteHops: st.RemoteByteHops,
			Steals:         st.Steals,
			Deferred:       st.Deferred,
			SocketTasks:    st.SocketTasks,
			CutBytes:       st.CutBytes,
			LoadImbalance:  st.LoadImbalance,
			MeanPortUtil:   st.MeanPortUtilization,
			MaxPortUtil:    st.MaxPortUtilization,
		},
	}
}

// CellResult converts a decoded record back to a core.CellResult with the
// Cell and Stats halves populated (Config is zero — see Record).
func (r Record) CellResult() core.CellResult {
	return core.CellResult{
		Cell: core.Cell{
			Index:     r.Index,
			App:       r.App,
			Policy:    r.Policy,
			Machine:   r.Machine,
			Variant:   r.Variant,
			Replicate: r.Replicate,
			Seed:      r.Seed,
		},
		Stats: rt.Result{
			Makespan:            r.Stats.Makespan,
			TasksRun:            r.Stats.TasksRun,
			BusyTime:            r.Stats.BusyTime,
			LocalBytes:          r.Stats.LocalBytes,
			RemoteBytes:         r.Stats.RemoteBytes,
			RemoteByteHops:      r.Stats.RemoteByteHops,
			Steals:              r.Stats.Steals,
			Deferred:            r.Stats.Deferred,
			SocketTasks:         r.Stats.SocketTasks,
			CutBytes:            r.Stats.CutBytes,
			LoadImbalance:       r.Stats.LoadImbalance,
			MeanPortUtilization: r.Stats.MeanPortUtil,
			MaxPortUtilization:  r.Stats.MaxPortUtil,
		},
	}
}

// Encode renders one result as its canonical wire line (newline included).
func Encode(res core.CellResult) ([]byte, error) {
	b, err := json.Marshal(NewRecord(res))
	if err != nil {
		return nil, fmt.Errorf("shard: encode cell %d: %w", res.Cell.Index, err)
	}
	return append(b, '\n'), nil
}

// Decode parses one wire line (trailing newline optional) produced by
// Encode, rejecting unknown wire versions.
func Decode(line []byte) (core.CellResult, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return core.CellResult{}, fmt.Errorf("shard: decode record: %w", err)
	}
	if r.V != WireVersion {
		return core.CellResult{}, fmt.Errorf("shard: record wire version %d, this reader knows %d", r.V, WireVersion)
	}
	return r.CellResult(), nil
}

// EncodeHeader renders a stream header line (newline included).
func EncodeHeader(h Header) ([]byte, error) {
	h.V = WireVersion
	h.Kind = headerKind
	b, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("shard: encode header: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeHeader parses a stream's header line.
func DecodeHeader(line []byte) (Header, error) {
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Header{}, fmt.Errorf("shard: decode header: %w", err)
	}
	if h.Kind != headerKind {
		return Header{}, fmt.Errorf("shard: not a cell stream (kind %q)", h.Kind)
	}
	if h.V != WireVersion {
		return Header{}, fmt.Errorf("shard: stream wire version %d, this reader knows %d", h.V, WireVersion)
	}
	return h, nil
}

// GridHash fingerprints a canonical cell enumeration (FNV-1a over every
// cell's coordinates). Two experiment declarations produce the same hash
// exactly when they enumerate the same grid, which is what resume and
// merge require.
func GridHash(cells []core.Cell) string {
	h := fnv.New64a()
	var buf bytes.Buffer
	for _, c := range cells {
		buf.Reset()
		fmt.Fprintf(&buf, "%d\x00%s\x00%s\x00%s\x00%s\x00%d\x00%d\n",
			c.Index, c.App, c.Policy, c.Machine, c.Variant, c.Replicate, c.Seed)
		h.Write(buf.Bytes())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// HeaderFor builds the stream header binding one shard of an experiment's
// grid: it enumerates the canonical cells (validating the declaration) and
// fingerprints them.
func HeaderFor(e *core.Experiment, sp Spec) (Header, error) {
	if err := sp.Validate(); err != nil {
		return Header{}, err
	}
	cells, err := e.Cells()
	if err != nil {
		return Header{}, err
	}
	sp = sp.Norm()
	return Header{
		V:          WireVersion,
		Kind:       headerKind,
		Experiment: e.Name,
		Total:      len(cells),
		Grid:       GridHash(cells),
		ShardIndex: sp.Index,
		ShardCount: sp.Count,
	}, nil
}
