package shard

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"numadag/internal/core"
)

// fakeStream builds a minimal valid wire stream for shard sp of a count-cell
// grid named exp.
func fakeStream(t *testing.T, exp string, total int, sp Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Experiment: exp, Total: total, Grid: "feedfacefeedface", ShardIndex: sp.Index, ShardCount: sp.Count})
	for idx := 0; idx < total; idx++ {
		if !sp.Owns(idx) {
			continue
		}
		res := core.CellResult{Cell: core.Cell{Index: idx, App: "a", Policy: "p", Machine: "m"}}
		if err := w.Emit(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoordinatorLeaseReassignment pins worker-loss handling: a claimed
// shard whose worker stops heartbeating is reassigned after the lease
// expires, and the dead worker's late heartbeat is rejected.
func TestCoordinatorLeaseReassignment(t *testing.T) {
	c, err := NewCoordinator(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Injectable clock: no sleeping in this test.
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	cl0 := c.claim()
	cl1 := c.claim()
	if !cl0.Assigned || !cl1.Assigned || cl0.Shard.Index == cl1.Shard.Index {
		t.Fatalf("first two claims: %+v, %+v", cl0, cl1)
	}
	if cl := c.claim(); cl.Assigned || cl.Done {
		t.Fatalf("third claim while both live: %+v", cl)
	}
	if err := c.heartbeat(cl0.Shard.Index); err != nil {
		t.Fatal(err)
	}

	// Worker 1 goes silent past its lease; its shard is claimable again.
	now = now.Add(11 * time.Second)
	recl := c.claim()
	if !recl.Assigned {
		t.Fatal("expired shard not reassigned")
	}
	if err := c.heartbeat(recl.Shard.Index); err != nil {
		t.Fatal("new claimant's heartbeat rejected:", err)
	}

	// Both shards expired at +11s, so recl may be either; the other one is
	// also reclaimable and the original holder's heartbeat now fails.
	other := c.claim()
	if !other.Assigned || other.Shard.Index == recl.Shard.Index {
		t.Fatalf("second expired shard not reassigned: %+v", other)
	}

	// Completion: a zombie worker double-completing is idempotent.
	p0 := fakeStream(t, "x", 4, Spec{0, 2})
	p1 := fakeStream(t, "x", 4, Spec{1, 2})
	if err := c.complete(0, p0); err != nil {
		t.Fatal(err)
	}
	if err := c.complete(0, p0); err != nil {
		t.Fatal("idempotent complete rejected:", err)
	}
	if err := c.heartbeat(0); err == nil {
		t.Error("heartbeat on a completed shard accepted")
	}
	select {
	case <-c.Done():
		t.Fatal("done with a shard outstanding")
	default:
	}
	if err := c.complete(1, p1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("all shards complete but Done not closed")
	}
	if cl := c.claim(); !cl.Done {
		t.Errorf("claim after completion: %+v, want Done", cl)
	}
}

func TestCoordinatorRejectsForeignPayload(t *testing.T) {
	c, err := NewCoordinator(2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	c.Expect(Header{Experiment: "x", Total: 4, Grid: "feedfacefeedface"})
	if err := c.complete(0, []byte("not a stream\n")); err == nil {
		t.Error("garbage payload accepted")
	}
	if err := c.complete(0, fakeStream(t, "y", 4, Spec{0, 2})); err == nil {
		t.Error("payload from another experiment accepted")
	}
	if err := c.complete(0, fakeStream(t, "x", 4, Spec{1, 2})); err == nil {
		t.Error("payload for the wrong shard accepted")
	}
	if err := c.complete(0, fakeStream(t, "x", 4, Spec{0, 2})); err != nil {
		t.Error("matching payload rejected:", err)
	}
}

// TestWorkersDrainCoordinator runs the full HTTP protocol: two Work loops
// against a live coordinator, then merges the collected payloads.
func TestWorkersDrainCoordinator(t *testing.T) {
	const shards, cells = 3, 7
	c, err := NewCoordinator(shards, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	c.Expect(Header{Experiment: "x", Total: cells, Grid: "feedfacefeedface"})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func() {
			errs <- Work(context.Background(), srv.URL, func(sp Spec) ([]byte, error) {
				return fakeStream(t, "x", cells, sp), nil
			})
		}()
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status()
	if st.Completed != shards {
		t.Fatalf("status after drain: %+v", st)
	}

	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	var got []core.CellResult
	collect := core.SinkFunc(func(res core.CellResult) error {
		got = append(got, res)
		return nil
	})
	if _, err := MergeDir(dir, collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != cells {
		t.Fatalf("merged %d cells, want %d", len(got), cells)
	}
	for i, res := range got {
		if res.Cell.Index != i {
			t.Fatalf("merged cell %d has index %d", i, res.Cell.Index)
		}
	}
}
