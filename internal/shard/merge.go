package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"numadag/internal/core"
)

// Writer is a core.Sink that streams wire-format records (header first) to
// w — the in-memory/network counterpart of a Journal file, used by
// coordinator workers to build a shard payload without touching disk.
// Merge reads the same format from either source.
type Writer struct {
	w     io.Writer
	wrote bool
	h     Header
}

// NewWriter returns a wire-stream sink over w for the given header.
func NewWriter(w io.Writer, h Header) *Writer { return &Writer{w: w, h: h} }

// Emit implements core.Sink.
func (sw *Writer) Emit(res core.CellResult) error {
	if !sw.wrote {
		sw.wrote = true
		line, err := EncodeHeader(sw.h)
		if err != nil {
			return err
		}
		if _, err := sw.w.Write(line); err != nil {
			return err
		}
	}
	line, err := Encode(res)
	if err != nil {
		return err
	}
	_, err = sw.w.Write(line)
	return err
}

// Close implements core.Sink; an empty stream still gets its header.
func (sw *Writer) Close() error {
	if sw.wrote {
		return nil
	}
	sw.wrote = true
	line, err := EncodeHeader(sw.h)
	if err != nil {
		return err
	}
	_, err = sw.w.Write(line)
	return err
}

// Stream is one parsed journal/shard stream.
type Stream struct {
	Header  Header
	Results []core.CellResult // sorted by canonical index
}

// ReadStream parses a wire stream (a Journal file's or Writer's bytes). A
// torn final line — the crash artifact journals may carry — is ignored.
func ReadStream(data []byte) (Stream, error) {
	cut := bytes.LastIndexByte(data, '\n') + 1
	lines := bytes.Split(data[:cut], []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return Stream{}, fmt.Errorf("shard: empty stream")
	}
	h, err := DecodeHeader(lines[0])
	if err != nil {
		return Stream{}, err
	}
	st := Stream{Header: h}
	for i, line := range lines[1:] {
		res, err := Decode(line)
		if err != nil {
			return Stream{}, fmt.Errorf("record %d: %w", i+1, err)
		}
		st.Results = append(st.Results, res)
	}
	sort.Slice(st.Results, func(a, b int) bool {
		return st.Results[a].Cell.Index < st.Results[b].Cell.Index
	})
	return st, nil
}

// ReadStreamFile reads and parses one journal/shard file.
func ReadStreamFile(path string) (Stream, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Stream{}, err
	}
	st, err := ReadStream(data)
	if err != nil {
		return Stream{}, fmt.Errorf("shard: %s: %w", path, err)
	}
	return st, nil
}

// JournalPattern matches the shard journal files cmd/sweep writes into an
// output directory; MergeDir globs it.
const JournalPattern = "shard-*.cells.jsonl"

// JournalPath names shard sp's journal file under dir.
func JournalPath(dir string, sp Spec) string {
	sp = sp.Norm()
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.cells.jsonl", sp.Index, sp.Count))
}

// Merge recombines shard streams into the canonical cell order and emits
// the merged stream through the given sinks (closing them at the end,
// exactly as Experiment.Run would). The streams must come from the same
// grid (header experiment/total/grid fingerprint all equal) and together
// cover every canonical index exactly once; gaps (an unfinished shard) and
// duplicates are errors, not silently-wrong output. Because every sink
// sees the same records in the same order as an unsharded run, the merged
// output is byte-identical to one.
func Merge(streams []Stream, sinks ...core.Sink) (Header, error) {
	h, err := merge(streams, sinks...)
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return h, err
}

func merge(streams []Stream, sinks ...core.Sink) (Header, error) {
	if len(streams) == 0 {
		return Header{}, fmt.Errorf("shard: nothing to merge")
	}
	h := streams[0].Header
	all := make([]core.CellResult, 0, h.Total)
	for _, st := range streams {
		if st.Header.Experiment != h.Experiment || st.Header.Total != h.Total || st.Header.Grid != h.Grid {
			return Header{}, fmt.Errorf("shard: merging streams from different grids (%q total %d grid %s vs %q total %d grid %s)",
				st.Header.Experiment, st.Header.Total, st.Header.Grid, h.Experiment, h.Total, h.Grid)
		}
		all = append(all, st.Results...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Cell.Index < all[b].Cell.Index })
	var missing []string
	next := 0
	for _, res := range all {
		if res.Cell.Index == next-1 {
			return Header{}, fmt.Errorf("shard: cell %d appears in more than one stream", res.Cell.Index)
		}
		for next < res.Cell.Index {
			missing = append(missing, fmt.Sprintf("%d", next))
			next++
		}
		next = res.Cell.Index + 1
	}
	for ; next < h.Total; next++ {
		missing = append(missing, fmt.Sprintf("%d", next))
	}
	if len(missing) > 0 {
		if len(missing) > 8 {
			missing = append(missing[:8], fmt.Sprintf("... %d total", len(missing)))
		}
		return Header{}, fmt.Errorf("shard: merge incomplete: %d of %d cells missing (indices %s) — did every shard finish?",
			h.Total-len(all), h.Total, strings.Join(missing, ", "))
	}
	for _, res := range all {
		for _, s := range sinks {
			if err := s.Emit(res); err != nil {
				return Header{}, fmt.Errorf("shard: merge sink: %w", err)
			}
		}
	}
	mh := h
	mh.ShardIndex, mh.ShardCount = 0, 1
	return mh, nil
}

// MergeDir merges every shard journal (JournalPattern) found in dir.
func MergeDir(dir string, sinks ...core.Sink) (Header, error) {
	paths, err := filepath.Glob(filepath.Join(dir, JournalPattern))
	if err != nil {
		return Header{}, err
	}
	if len(paths) == 0 {
		return Header{}, fmt.Errorf("shard: no %s files in %s", JournalPattern, dir)
	}
	sort.Strings(paths)
	streams := make([]Stream, len(paths))
	for i, p := range paths {
		if streams[i], err = ReadStreamFile(p); err != nil {
			return Header{}, err
		}
	}
	return Merge(streams, sinks...)
}
