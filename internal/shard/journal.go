package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"

	"numadag/internal/core"
)

// ErrInterrupted is returned (wrapped) by Experiment.Run when a
// CheckpointSink with MaxFresh set has journaled its quota of fresh cells —
// the deterministic stand-in for a mid-sweep crash that tests and the
// cmd/sweep -maxcells hook rely on. The journal is valid and resumable at
// that point.
var ErrInterrupted = errors.New("shard: interrupted after MaxFresh fresh cells")

// Journal is a crash-safe record of completed cells: the wire Header
// followed by one Record line per cell, each line written and flushed
// individually, so the file is a valid (possibly partial) stream after a
// crash at any instant. A Journal doubles as a shard's output file — merge
// reads the same format.
type Journal struct {
	f      *os.File
	header Header
	done   map[int]core.CellResult
}

// OpenJournal creates (or, with resume, reopens) the journal at path for
// the grid and shard h describes.
//
// With resume set and an existing file: the header must match h (same
// experiment name, grid hash, total and shard), surviving records are
// loaded — they become Done cells — and a partial final line (the crash
// artifact of an interrupted write) is truncated away before appending
// resumes. Without resume an existing file is overwritten.
func OpenJournal(path string, h Header, resume bool) (*Journal, error) {
	h.V = WireVersion
	h.Kind = headerKind
	j := &Journal{header: h, done: make(map[int]core.CellResult)}
	if resume {
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume, fall through to create.
		case err != nil:
			return nil, err
		default:
			keep, err := j.load(path, data)
			if err != nil {
				return nil, err
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			if err := f.Truncate(keep); err != nil {
				f.Close()
				return nil, err
			}
			j.f = f
			return j, nil
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	line, err := EncodeHeader(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// load parses an existing journal's bytes, returning the offset of the end
// of the last complete line (everything after it is a torn write).
func (j *Journal) load(path string, data []byte) (keep int64, err error) {
	// A journal always ends every record with '\n'; anything after the last
	// newline is a torn final write and is discarded.
	cut := bytes.LastIndexByte(data, '\n') + 1
	data = data[:cut]
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return 0, fmt.Errorf("shard: %s: no intact header line; delete the file to start over", path)
	}
	got, err := DecodeHeader(data[:nl])
	if err != nil {
		return 0, fmt.Errorf("shard: %s: %w", path, err)
	}
	want := j.header
	if got.Experiment != want.Experiment || got.Grid != want.Grid || got.Total != want.Total ||
		got.ShardIndex != want.ShardIndex || got.ShardCount != want.ShardCount {
		return 0, fmt.Errorf("shard: %s: journal is for a different grid (%s shard %d/%d grid %s; this run is %s shard %d/%d grid %s) — use a fresh -out dir or drop -resume",
			path, got.Experiment, got.ShardIndex, got.ShardCount, got.Grid,
			want.Experiment, want.ShardIndex, want.ShardCount, want.Grid)
	}
	for len(data) > nl+1 {
		rest := data[nl+1:]
		end := bytes.IndexByte(rest, '\n')
		line := rest[:end]
		res, err := Decode(line)
		if err != nil {
			return 0, fmt.Errorf("shard: %s: record %d: %w", path, len(j.done)+1, err)
		}
		j.done[res.Cell.Index] = res
		nl += 1 + end
	}
	return int64(cut), nil
}

// Header returns the stream header the journal was opened with.
func (j *Journal) Header() Header { return j.header }

// Done reports whether the cell at the given canonical index is already
// journaled.
func (j *Journal) Done(index int) bool { _, ok := j.done[index]; return ok }

// Len returns the number of journaled cells.
func (j *Journal) Len() int { return len(j.done) }

// Results returns the journaled cell results sorted by canonical index.
func (j *Journal) Results() []core.CellResult {
	out := make([]core.CellResult, 0, len(j.done))
	for _, res := range j.done {
		out = append(out, res)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cell.Index < out[b].Cell.Index })
	return out
}

// Append journals one completed cell: the record line is written and
// pushed to the OS before Append returns, so a crashed process loses at
// most the cell it was mid-writing. Re-appending an already-journaled
// index is a no-op (the recorded result is authoritative — cells are
// deterministic, so a re-run produced the same bytes).
func (j *Journal) Append(res core.CellResult) error {
	if _, ok := j.done[res.Cell.Index]; ok {
		return nil
	}
	line, err := Encode(res)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	j.done[res.Cell.Index] = res
	return nil
}

// Sync forces the journal to stable storage (fsync) — crash durability
// beyond process loss; Append alone already survives the latter.
func (j *Journal) Sync() error { return j.f.Sync() }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// CheckpointSink journals every fresh cell result and replays journaled
// ones, so a resumed experiment still delivers the full canonical stream
// to its downstream sinks.
//
// Wiring: pass the CheckpointSink as the experiment's sink (the downstream
// sinks go inside it, not alongside it) and set Experiment.Skip to its
// Skip method. Skipped (journaled) cells are then interleaved from the
// journal in canonical index order between the freshly-computed ones, so
// the inner sinks cannot tell a resumed run from an uninterrupted one —
// the outputs are byte-identical.
type CheckpointSink struct {
	// MaxFresh, when positive, interrupts the run after that many fresh
	// (non-replayed) cells have been journaled: the next Emit returns
	// ErrInterrupted, aborting the experiment with a valid, resumable
	// journal — a deterministic crash for tests and drills (cmd/sweep
	// -maxcells).
	MaxFresh int

	j      *Journal
	inner  []core.Sink
	replay []core.CellResult
	ri     int // next replay entry not yet delivered
	fresh  int // fresh cells journaled this run
}

// NewCheckpointSink wraps the inner sinks behind journal j. Results
// already in the journal (from the interrupted run being resumed) will be
// replayed to the inner sinks in canonical order; the experiment must skip
// them via Skip. Close closes the inner sinks (after draining the replay
// tail) but not the journal.
func NewCheckpointSink(j *Journal, inner ...core.Sink) *CheckpointSink {
	return &CheckpointSink{j: j, inner: inner, replay: j.Results()}
}

// Skip is the Experiment.Skip hook: it skips exactly the journaled cells.
// Combine it with a shard's own Skip for sharded resumable runs (cmd/sweep
// does).
func (s *CheckpointSink) Skip(c core.Cell) bool { return s.j.Done(c.Index) }

// Fresh returns the number of cells executed (journaled) by this run, as
// opposed to replayed — the "cell-run counter" resume tests assert on.
func (s *CheckpointSink) Fresh() int { return s.fresh }

// Replayed returns the number of journaled cells delivered downstream so
// far.
func (s *CheckpointSink) Replayed() int { return s.ri }

func (s *CheckpointSink) forward(res core.CellResult) error {
	for _, snk := range s.inner {
		if err := snk.Emit(res); err != nil {
			return err
		}
	}
	return nil
}

// Emit implements core.Sink for freshly-computed results: journaled
// results with smaller indices are replayed first, then the fresh result
// is forwarded and journaled.
func (s *CheckpointSink) Emit(res core.CellResult) error {
	if s.MaxFresh > 0 && s.fresh >= s.MaxFresh {
		return ErrInterrupted
	}
	for s.ri < len(s.replay) && s.replay[s.ri].Cell.Index < res.Cell.Index {
		if err := s.forward(s.replay[s.ri]); err != nil {
			return err
		}
		s.ri++
	}
	if s.ri < len(s.replay) && s.replay[s.ri].Cell.Index == res.Cell.Index {
		// The cell was journaled but executed anyway (Skip not wired, or a
		// zombie shard worker): runs are deterministic, so the fresh result
		// equals the journaled one. Consume the replay entry and fall
		// through — the journal's Append no-ops on the duplicate.
		s.ri++
	}
	if err := s.forward(res); err != nil {
		return err
	}
	if err := s.j.Append(res); err != nil {
		return err
	}
	s.fresh++
	return nil
}

// Close drains any journaled results beyond the last fresh cell, then
// closes the inner sinks. On an interrupted run (an Emit returned an
// error) the tail is deliberately not replayed — the stream is already
// known-incomplete and the table-style sinks would otherwise aggregate a
// half grid; the journal itself is complete and resumable either way.
func (s *CheckpointSink) Close() error {
	var firstErr error
	if s.MaxFresh <= 0 || s.fresh < s.MaxFresh {
		for ; s.ri < len(s.replay); s.ri++ {
			if err := s.forward(s.replay[s.ri]); err != nil {
				firstErr = err
				break
			}
		}
	}
	for _, snk := range s.inner {
		if err := snk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
