// Package shard makes experiment grids sharded and resumable: it defines
// the versioned wire format for cell results, deterministic grid sharding,
// crash-safe checkpoint journals that let an interrupted sweep skip
// completed cells on restart, a merger that recombines per-shard streams
// into the canonical cell order, and a small HTTP coordinator/worker
// protocol for distributing shards across processes and machines.
//
// # Sharding model
//
// A Spec{Index, Count} restricts a core.Experiment to the cells whose
// canonical Index falls in its round-robin partition class (Index mod
// Count). Cell indices are never renumbered: a shard's output stream is a
// subsequence of the canonical enumeration, so the N shard streams
// partition the grid exactly and Merge can recombine them — the merged
// output is byte-identical to an unsharded run, because the merged stream
// feeds the same sinks the same records in the same order. Round-robin
// (rather than contiguous ranges) spreads each app's cells across shards,
// so shards finish in comparable time even when workloads differ wildly in
// cost.
//
// # Wire format
//
// One journal/shard stream is a JSON-lines file: a Header line, then one
// Record line per completed cell, each flushed as it lands so a crash loses
// at most a partial final line (which resume detects and truncates). See
// Record for the format's versioning and compatibility rule.
//
// # Resumability
//
// A CheckpointSink journals every completed cell. On restart, OpenJournal
// reads the surviving records, Experiment.Skip (wired to CheckpointSink's
// Skip) excludes the completed cells from execution, and the sink replays
// the journaled results interleaved in canonical order, so downstream sinks
// still observe the full stream — the resumed run's output is byte-identical
// to an uninterrupted one.
//
// # Distribution
//
// Coordinator serves shard assignments over HTTP with lease-based
// reassignment: a worker (Work) claims a shard, heartbeats while running
// it, and uploads its journal on completion; a worker that stops
// heartbeating loses its lease and the shard is handed to the next
// claimant. Cells are deterministic, so reassignment — even duplicated
// execution by a zombie worker — never changes the merged output.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"numadag/internal/core"
)

// Spec selects one shard of a grid: the cells whose canonical Index is
// congruent to Index modulo Count. The zero value (interpreted by Norm as
// 0 of 1) means "the whole grid".
type Spec struct {
	Index int
	Count int
}

// Norm returns the spec with the zero value normalized to the whole grid
// (0 of 1).
func (s Spec) Norm() Spec {
	if s.Count == 0 && s.Index == 0 {
		return Spec{0, 1}
	}
	return s
}

// Validate checks 0 <= Index < Count.
func (s Spec) Validate() error {
	s = s.Norm()
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: spec %d/%d: want 0 <= index < count", s.Index, s.Count)
	}
	return nil
}

// String renders the spec in ParseSpec's "index/count" form.
func (s Spec) String() string { return fmt.Sprintf("%d/%d", s.Norm().Index, s.Norm().Count) }

// Owns reports whether a canonical cell index belongs to this shard.
func (s Spec) Owns(index int) bool {
	s = s.Norm()
	return index%s.Count == s.Index
}

// Skip is the Experiment.Skip hook restricting a run to this shard: it
// skips every cell the shard does not own.
func (s Spec) Skip(c core.Cell) bool { return !s.Owns(c.Index) }

// ParseSpec parses "index/count" with 0 <= index < count — "-shard 0/3",
// "-shard 1/3", "-shard 2/3" are the three shards of a 3-way run.
func ParseSpec(text string) (Spec, error) {
	i, n, ok := strings.Cut(text, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: spec %q: want \"index/count\", e.g. 0/3", text)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return Spec{}, fmt.Errorf("shard: spec %q: bad index: %w", text, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Spec{}, fmt.Errorf("shard: spec %q: bad count: %w", text, err)
	}
	// Validate the literal values: the explicit "0/0" must not sneak
	// through Norm's zero-value-means-whole-grid interpretation.
	if cnt < 1 || idx < 0 || idx >= cnt {
		return Spec{}, fmt.Errorf("shard: spec %q: want 0 <= index < count", text)
	}
	return Spec{Index: idx, Count: cnt}, nil
}
