package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Claim is the coordinator's answer to a worker's claim request.
type Claim struct {
	// Shard is the assigned shard, valid when Assigned.
	Shard Spec `json:"shard"`
	// Assigned is false when no shard is currently claimable.
	Assigned bool `json:"assigned"`
	// Done is true when every shard has completed — workers exit.
	Done bool `json:"done"`
	// LeaseMS is how often (at most) the worker must heartbeat to keep the
	// claim.
	LeaseMS int64 `json:"lease_ms"`
}

// Status summarizes coordinator progress (GET /status).
type Status struct {
	Count     int `json:"count"`
	Unclaimed int `json:"unclaimed"`
	Claimed   int `json:"claimed"`
	Completed int `json:"completed"`
}

const (
	stateUnclaimed = iota
	stateClaimed
	stateDone
)

// Coordinator hands the shards of one grid to joining workers over a
// trivial HTTP work-claim protocol — the committee-of-workers shape,
// minus the consensus, which determinism makes unnecessary: any worker
// computing a shard produces identical bytes, so worker loss is handled by
// leases alone. A claim expires unless the worker heartbeats within the
// lease; expired shards go back in the pool and the next /claim gets them.
// Completed shard payloads (wire streams) accumulate in memory until
// WriteDir lands them as merge-ready journal files.
//
// Endpoints (all but /status are POST):
//
//	/claim             -> Claim JSON
//	/heartbeat?shard=i -> 204, or 409 when the lease was lost
//	/complete?shard=i  -> body is the shard's wire stream; Claim JSON
//	                      (Done reports whether the upload finished the grid)
//	/status            -> Status JSON
type Coordinator struct {
	count int
	lease time.Duration
	now   func() time.Time // injectable clock for lease tests

	mu       sync.Mutex
	expect   *Header
	state    []int
	expires  []time.Time
	payloads [][]byte
	left     int
	done     chan struct{}
}

// Expect makes the coordinator validate every completed payload's header
// against h: same experiment name, total and grid fingerprint, with the
// shard index/count matching the completed shard. Call it before serving.
func (c *Coordinator) Expect(h Header) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expect = &h
}

// NewCoordinator creates a coordinator for count shards with the given
// heartbeat lease (0 means 30s).
func NewCoordinator(count int, lease time.Duration) (*Coordinator, error) {
	if count < 1 {
		return nil, fmt.Errorf("shard: coordinator needs >= 1 shards, got %d", count)
	}
	if lease <= 0 {
		lease = 30 * time.Second
	}
	return &Coordinator{
		count:    count,
		lease:    lease,
		now:      time.Now,
		state:    make([]int, count),
		expires:  make([]time.Time, count),
		payloads: make([][]byte, count),
		left:     count,
		done:     make(chan struct{}),
	}, nil
}

// Done is closed when every shard has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Status returns a snapshot of shard progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Count: c.count}
	now := c.now()
	for i, s := range c.state {
		switch {
		case s == stateDone:
			st.Completed++
		case s == stateClaimed && c.expires[i].After(now):
			st.Claimed++
		default:
			st.Unclaimed++
		}
	}
	return st
}

// Payload returns completed shard i's wire stream (nil until complete).
func (c *Coordinator) Payload(i int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.payloads[i]
}

// WriteDir writes every completed shard's stream as its journal file under
// dir (creating it), ready for MergeDir.
func (c *Coordinator) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.payloads {
		if p == nil {
			return fmt.Errorf("shard: shard %d/%d not complete", i, c.count)
		}
		if err := os.WriteFile(JournalPath(dir, Spec{i, c.count}), p, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) claim() Claim {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left == 0 {
		return Claim{Done: true}
	}
	now := c.now()
	for i, s := range c.state {
		if s == stateUnclaimed || (s == stateClaimed && !c.expires[i].After(now)) {
			c.state[i] = stateClaimed
			c.expires[i] = now.Add(c.lease)
			return Claim{Shard: Spec{Index: i, Count: c.count}, Assigned: true, LeaseMS: c.lease.Milliseconds()}
		}
	}
	return Claim{} // everything claimed and live; poll again
}

func (c *Coordinator) heartbeat(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= c.count {
		return fmt.Errorf("shard %d out of range", i)
	}
	if c.state[i] != stateClaimed || !c.expires[i].After(c.now()) {
		return fmt.Errorf("lease on shard %d lost", i)
	}
	c.expires[i] = c.now().Add(c.lease)
	return nil
}

func (c *Coordinator) complete(i int, payload []byte) error {
	st, err := ReadStream(payload)
	if err != nil {
		return fmt.Errorf("shard %d payload: %w", i, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= c.count {
		return fmt.Errorf("shard %d out of range", i)
	}
	if w := c.expect; w != nil {
		got := st.Header
		if got.Experiment != w.Experiment || got.Total != w.Total || got.Grid != w.Grid ||
			got.ShardIndex != i || got.ShardCount != c.count {
			return fmt.Errorf("shard %d payload is for a different grid (%s shard %d/%d grid %s; coordinating %s shards of %d grid %s)",
				i, got.Experiment, got.ShardIndex, got.ShardCount, got.Grid, w.Experiment, c.count, w.Grid)
		}
	}
	if c.state[i] == stateDone {
		// A zombie worker finishing a reassigned shard: the bytes are
		// identical by determinism, keep the first copy.
		return nil
	}
	c.state[i] = stateDone
	c.payloads[i] = payload
	c.left--
	if c.left == 0 {
		close(c.done)
	}
	return nil
}

// Handler returns the coordinator's HTTP endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	shardArg := func(r *http.Request) (int, error) {
		var i int
		if _, err := fmt.Sscanf(r.URL.Query().Get("shard"), "%d", &i); err != nil {
			return 0, fmt.Errorf("bad shard parameter %q", r.URL.Query().Get("shard"))
		}
		return i, nil
	}
	mux.HandleFunc("POST /claim", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(c.claim())
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		i, err := shardArg(r)
		if err == nil {
			err = c.heartbeat(i)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		i, err := shardArg(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload, err := io.ReadAll(r.Body)
		if err == nil {
			err = c.complete(i, payload)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Tell the completing worker whether its upload finished the grid,
		// so the worker that lands the last shard exits without racing a
		// follow-up /claim against coordinator shutdown.
		select {
		case <-c.done:
			json.NewEncoder(w).Encode(Claim{Done: true})
		default:
			json.NewEncoder(w).Encode(Claim{})
		}
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(c.Status())
	})
	return mux
}

// Work joins a coordinator as a worker: it claims shards until the
// coordinator reports the grid done, heartbeating each claim while run
// computes the shard's wire stream. run must emit the complete stream
// (header + records) for exactly the given shard; Work uploads it. A lost
// heartbeat (coordinator restarted, lease expired under a stall) abandons
// the current shard — someone else will recompute it — and claims on. A
// coordinator that becomes unreachable after this worker has delivered at
// least one shard is treated as done, not an error: the coordinator exits
// as soon as the last upload lands, so a refused follow-up claim is the
// normal end of a run, and our delivered bytes are identical to any
// recomputation by determinism.
func Work(ctx context.Context, baseURL string, run func(sp Spec) ([]byte, error)) error {
	client := &http.Client{}
	post := func(path string, body io.Reader) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, body)
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	}
	delivered := 0
	for {
		resp, err := post("/claim", nil)
		if err != nil {
			if delivered > 0 {
				return nil // coordinator gone after our uploads: grid finished
			}
			return fmt.Errorf("shard: claim: %w", err)
		}
		var cl Claim
		err = json.NewDecoder(resp.Body).Decode(&cl)
		resp.Body.Close()
		if err != nil {
			if delivered > 0 {
				return nil
			}
			return fmt.Errorf("shard: claim: %w", err)
		}
		switch {
		case cl.Done:
			return nil
		case !cl.Assigned:
			// Every shard is claimed and live; poll for reassignments until
			// the coordinator reports done.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(500 * time.Millisecond):
			}
			continue
		}

		// Heartbeat in the background while the shard runs.
		hbCtx, stopHB := context.WithCancel(ctx)
		lost := make(chan struct{})
		go func() {
			interval := time.Duration(cl.LeaseMS) * time.Millisecond / 3
			if interval <= 0 {
				interval = time.Second
			}
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-time.After(interval):
				}
				resp, err := post(fmt.Sprintf("/heartbeat?shard=%d", cl.Shard.Index), nil)
				if err != nil {
					continue // transient; the lease has slack for retries
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusConflict {
					close(lost)
					return
				}
			}
		}()
		payload, err := run(cl.Shard)
		stopHB()
		if err != nil {
			return fmt.Errorf("shard: run %s: %w", cl.Shard, err)
		}
		select {
		case <-lost:
			continue // lease gone; the shard was reassigned, don't upload
		default:
		}
		resp, err = post(fmt.Sprintf("/complete?shard=%d", cl.Shard.Index), bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("shard: complete %s: %w", cl.Shard, err)
		}
		var ack Claim
		ackErr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shard: complete %s: HTTP %d", cl.Shard, resp.StatusCode)
		}
		if ackErr != nil {
			return fmt.Errorf("shard: complete %s: %w", cl.Shard, ackErr)
		}
		delivered++
		if ack.Done {
			return nil // our upload finished the grid
		}
	}
}
