package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestHistogramBinaryRoundTrip pins the checkpoint encoding: marshal then
// unmarshal reproduces the histogram exactly (count, sum, min/max bits,
// every bucket), and re-marshaling reproduces the bytes.
func TestHistogramBinaryRoundTrip(t *testing.T) {
	h := NewHistogram(0.01)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Add(rng.ExpFloat64() * 1e6)
	}
	h.Add(0) // exercise the zero bucket

	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Sum() != h.Sum() ||
		got.Min() != h.Min() || got.Max() != h.Max() ||
		got.RelativeError() != h.RelativeError() {
		t.Fatalf("summary drifted: %d/%v/%v/%v vs %d/%v/%v/%v",
			got.Count(), got.Sum(), got.Min(), got.Max(),
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Errorf("q%.2f drifted: %v vs %v", q, got.Quantile(q), h.Quantile(q))
		}
	}
	data2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-marshal drifted")
	}
}

// TestHistogramBinaryEmpty pins the awkward empty case: min is +Inf and
// max is -Inf, which JSON could not carry — the binary format must.
func TestHistogramBinaryEmpty(t *testing.T) {
	h := NewHistogram(0.01)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("empty round trip has count %d", got.Count())
	}
	// A restored empty histogram must keep absorbing values and merging.
	got.Add(3)
	if got.Min() != 3 || got.Max() != 3 {
		t.Errorf("restored histogram min/max broken: %v/%v", got.Min(), got.Max())
	}
}

// TestHistogramBinaryMerge pins the sharded-aggregation path: restore two
// partial histograms and merge them; totals must match one histogram that
// saw everything.
func TestHistogramBinaryMerge(t *testing.T) {
	whole := NewHistogram(0.01)
	a := NewHistogram(0.01)
	b := NewHistogram(0.01)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 1e3
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb Histogram
	if err := ra.UnmarshalBinary(ab); err != nil {
		t.Fatal(err)
	}
	if err := rb.UnmarshalBinary(bb); err != nil {
		t.Fatal(err)
	}
	ra.Merge(&rb)
	// Count, min, max and the bucket counts (hence quantiles) are exact;
	// Sum is a float accumulated in a different order, so it is only
	// near-identical — which is exactly why byte-identical sharded outputs
	// go through record re-streaming (shard.Merge), not state merging.
	if ra.Count() != whole.Count() || ra.Min() != whole.Min() || ra.Max() != whole.Max() {
		t.Fatal("merged restored partials drifted from the whole")
	}
	if d := math.Abs(ra.Sum() - whole.Sum()); d > 1e-6*math.Abs(whole.Sum()) {
		t.Fatalf("merged sum drifted beyond rounding: %v vs %v", ra.Sum(), whole.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		if ra.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f drifted after merge: %v vs %v", q, ra.Quantile(q), whole.Quantile(q))
		}
	}
	// Bad input is rejected, not misread.
	if err := ra.UnmarshalBinary([]byte("bogus")); err == nil {
		t.Error("garbage accepted")
	}
}
