// Package metrics provides the statistics and rendering helpers the
// evaluation harness uses: speedups, geometric means, and the ASCII
// table/bar-chart output of the Figure-1 reproduction.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Speedup returns baseline/measured (higher is better), matching the
// paper's "speedup over LAS" axis. Returns NaN when measured is zero.
func Speedup(baseline, measured float64) float64 {
	if measured == 0 {
		return math.NaN()
	}
	return baseline / measured
}

// GeoMean returns the geometric mean of positive values; zero-length input
// or any non-positive value yields NaN (a geomean over speedups must never
// silently absorb an invalid run).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table is a simple named-rows/named-columns float table with text
// rendering, used for the Figure-1 speedup matrix.
type Table struct {
	Title   string
	Columns []string
	rows    []string
	cells   map[string]map[string]float64
}

// NewTable creates a table with the given column order.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns, cells: map[string]map[string]float64{}}
}

// Set stores a cell, creating the row on first use (row order = insertion
// order).
func (t *Table) Set(row, col string, v float64) {
	if t.cells[row] == nil {
		t.cells[row] = map[string]float64{}
		t.rows = append(t.rows, row)
	}
	t.cells[row][col] = v
}

// Get returns a cell value (NaN if absent).
func (t *Table) Get(row, col string) float64 {
	if m, ok := t.cells[row]; ok {
		if v, ok := m[col]; ok {
			return v
		}
	}
	return math.NaN()
}

// Rows returns the row names in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// ColumnValues returns the column's values in row order, skipping absent
// cells.
func (t *Table) ColumnValues(col string) []float64 {
	var out []float64
	for _, r := range t.rows {
		if v, ok := t.cells[r][col]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	rowW := len("row")
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-*s", rowW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for _, c := range t.Columns {
			v := t.Get(r, c)
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%10s", "-")
			} else {
				fmt.Fprintf(&b, "%10.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteBars renders one horizontal ASCII bar chart per row, scaled so that
// value 1.0 sits at a fixed reference column — visually equivalent to
// Figure 1's speedup bars with the LAS baseline at 1.0.
func (t *Table) WriteBars(w io.Writer, width int) error {
	if width <= 0 {
		width = 40
	}
	maxV := 1.0
	for _, r := range t.rows {
		for _, c := range t.Columns {
			if v := t.Get(r, c); !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	ref := int(float64(width) / maxV) // column of the 1.0 line
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%s\n", r)
		for _, c := range t.Columns {
			v := t.Get(r, c)
			if math.IsNaN(v) {
				continue
			}
			n := int(v / maxV * float64(width))
			if n < 1 {
				n = 1
			}
			bar := strings.Repeat("#", n)
			marker := ""
			if ref > n {
				marker = strings.Repeat(" ", ref-n) + "|"
			}
			fmt.Fprintf(&b, "  %-10s %6.3f %s%s\n", c, v, bar, marker)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180 CSV with a leading "row" column —
// the machine-readable counterpart of Write for plotting pipelines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"row"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, 0, len(t.Columns)+1)
		rec = append(rec, r)
		for _, c := range t.Columns {
			v := t.Get(r, c)
			if math.IsNaN(v) {
				rec = append(rec, "")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'f', 6, 64))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SortedKeys returns a map's keys sorted (test/report helper).
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
