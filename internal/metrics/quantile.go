package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Histogram is a streaming log-bucketed histogram with a bounded relative
// error on quantile estimates — the service-mode counterpart of the exact
// Figure-1 tables, sized for millions of response-time samples at O(log
// range) memory.
//
// Values are assigned to geometric buckets: bucket i covers (gamma^(i-1),
// gamma^i], with gamma = (1+eps)/(1-eps) chosen so that reporting the
// bucket's geometric midpoint guarantees |estimate - true| <= eps * true
// for every recorded value (the DDSketch bound). Counts are integers and
// bucket indices are a pure function of the value, so two histograms fed
// the same multiset of values — in any order, through any sequence of
// Merges — are identical: quantiles are deterministic, which is what lets
// cluster-mode goldens pin p99s bit-exactly.
//
// Non-positive values land in a dedicated zero bucket (response times and
// slowdowns are non-negative; exact zeros come from zero-length jobs).
// The zero value of Histogram is not usable; create one with NewHistogram.
type Histogram struct {
	gamma    float64
	logGamma float64
	eps      float64

	// counts[i] holds bucket base+i. The slice grows at either end as
	// values arrive; base tracks the lowest represented bucket index.
	counts []uint64
	base   int

	zero  uint64 // values <= 0
	count uint64
	sum   float64
	min   float64
	max   float64
}

// NewHistogram returns a histogram whose quantile estimates carry at most
// the given relative error (e.g. 0.01 for 1%). eps must be in (0, 1).
func NewHistogram(eps float64) *Histogram {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("metrics: histogram relative error %v out of (0, 1)", eps))
	}
	gamma := (1 + eps) / (1 - eps)
	return &Histogram{
		gamma:    gamma,
		logGamma: math.Log(gamma),
		eps:      eps,
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// RelativeError returns the eps the histogram was created with.
func (h *Histogram) RelativeError() float64 { return h.eps }

// bucketIndex maps a positive value to its bucket: the smallest i with
// value <= gamma^i.
func (h *Histogram) bucketIndex(v float64) int {
	return int(math.Ceil(math.Log(v) / h.logGamma))
}

// bucketValue returns the representative (geometric midpoint) of bucket i:
// 2*gamma^i/(gamma+1), the point whose relative distance to both bucket
// edges is exactly eps.
func (h *Histogram) bucketValue(i int) float64 {
	return 2 * math.Pow(h.gamma, float64(i)) / (h.gamma + 1)
}

// Add records one value. NaN panics — a NaN response time is an upstream
// bug the histogram must not silently absorb.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records a value n times.
func (h *Histogram) AddN(v float64, n uint64) {
	if math.IsNaN(v) {
		panic("metrics: histogram Add(NaN)")
	}
	if n == 0 {
		return
	}
	h.count += n
	h.sum += v * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v <= 0 {
		h.zero += n
		return
	}
	h.bump(h.bucketIndex(v), n)
}

// bump adds n to bucket idx, growing the dense window as needed.
func (h *Histogram) bump(idx int, n uint64) {
	if len(h.counts) == 0 {
		h.counts = append(h.counts, 0)
		h.base = idx
	}
	if idx < h.base {
		grown := make([]uint64, len(h.counts)+(h.base-idx))
		copy(grown[h.base-idx:], h.counts)
		h.counts = grown
		h.base = idx
	}
	for idx >= h.base+len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx-h.base] += n
}

// Merge folds o into h. Both histograms must share the same relative
// error; merging is exact (integer bucket counts add), so the result is
// identical to having recorded both value streams into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if o.gamma != h.gamma {
		panic(fmt.Sprintf("metrics: merging histograms with different relative errors (%v vs %v)", h.eps, o.eps))
	}
	h.count += o.count
	h.sum += o.sum
	h.zero += o.zero
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		if c > 0 {
			h.bump(o.base+i, c)
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of recorded values (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded value, exactly (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest recorded value, exactly (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) with
// relative error at most eps. The estimate is clamped to [Min, Max], so
// Quantile(0) and Quantile(1) are exact. NaN when the histogram is empty
// or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return h.min
	}
	if q == 1 {
		return h.max
	}
	// rank of the selected order statistic, 0-based: the same element a
	// sorted slice would yield at index ceil(q*(n-1)).
	rank := uint64(math.Ceil(q * float64(h.count-1)))
	if rank < h.zero {
		// All zero-bucket values are <= 0; min is exact for them.
		if h.min < 0 {
			return h.min
		}
		return 0
	}
	seen := h.zero
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := h.bucketValue(h.base + i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// histogramMagic versions the Histogram binary encoding; bump it on any
// layout change (readers reject unknown versions rather than guessing).
const histogramMagic = "ndqh1\n"

// MarshalBinary implements encoding.BinaryMarshaler: a deterministic,
// bit-exact snapshot of the sketch (float fields are stored as IEEE-754
// bits, so ±Inf sentinels of an empty histogram survive; bucket counts are
// integers). Together with Merge this lets per-shard sketches be
// checkpointed, shipped and recombined into exactly the histogram one
// stream would have produced.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(histogramMagic)+7*8+len(h.counts)*8)
	buf = append(buf, histogramMagic...)
	for _, u := range []uint64{
		math.Float64bits(h.eps),
		uint64(int64(h.base)),
		h.zero,
		h.count,
		math.Float64bits(h.sum),
		math.Float64bits(h.min),
		math.Float64bits(h.max),
		uint64(len(h.counts)),
	} {
		buf = binary.LittleEndian.AppendUint64(buf, u)
	}
	for _, c := range h.counts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring a sketch
// captured by MarshalBinary. The receiver's previous contents are replaced.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	if len(data) < len(histogramMagic)+8*8 || string(data[:len(histogramMagic)]) != histogramMagic {
		return fmt.Errorf("metrics: not a histogram snapshot (or unknown version)")
	}
	data = data[len(histogramMagic):]
	word := func(i int) uint64 { return binary.LittleEndian.Uint64(data[8*i:]) }
	eps := math.Float64frombits(word(0))
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("metrics: histogram snapshot eps %v out of (0, 1)", eps)
	}
	n := int(word(7))
	if len(data) != 8*8+8*n {
		return fmt.Errorf("metrics: histogram snapshot truncated: %d buckets, %d bytes", n, len(data))
	}
	gamma := (1 + eps) / (1 - eps)
	*h = Histogram{
		gamma:    gamma,
		logGamma: math.Log(gamma),
		eps:      eps,
		base:     int(int64(word(1))),
		zero:     word(2),
		count:    word(3),
		sum:      math.Float64frombits(word(4)),
		min:      math.Float64frombits(word(5)),
		max:      math.Float64frombits(word(6)),
	}
	if n > 0 {
		h.counts = make([]uint64, n)
		for i := range h.counts {
			h.counts[i] = word(8 + i)
		}
	}
	return nil
}

// Buckets returns the number of non-empty geometric buckets (test and
// memory-accounting hook; the zero bucket is excluded).
func (h *Histogram) Buckets() int {
	n := 0
	for _, c := range h.counts {
		if c > 0 {
			n++
		}
	}
	return n
}
