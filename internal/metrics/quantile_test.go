package metrics

import (
	"math"
	"sort"
	"testing"

	"numadag/internal/xrand"
)

// exactQuantile returns the order statistic the histogram targets: the
// element a sorted slice yields at index ceil(q*(n-1)).
func exactQuantile(sorted []float64, q float64) float64 {
	return sorted[int(math.Ceil(q*float64(len(sorted)-1)))]
}

func checkQuantiles(t *testing.T, h *Histogram, values []float64, eps float64) {
	t.Helper()
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if want <= 0 {
			// Zero bucket: estimate must be exact for non-positive values
			// (clamped to min) or 0.
			if got != want && got != 0 {
				t.Errorf("q=%v: got %v, want %v (zero bucket)", q, got, want)
			}
			continue
		}
		if relErr := math.Abs(got-want) / want; relErr > eps+1e-12 {
			t.Errorf("q=%v: got %v, want %v, rel err %v > %v", q, got, want, relErr, eps)
		}
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	const eps = 0.01
	cases := map[string][]float64{
		"uniform":   nil, // filled below
		"lognormal": nil,
		"widerange": {1e-9, 1e-6, 1e-3, 1, 1e3, 1e6, 1e9, 2.5e4, 7.7e-2, 3.14},
		"constant":  {42, 42, 42, 42, 42},
		"single":    {17.5},
		"withzeros": {0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	rng := xrand.New(7)
	uni := make([]float64, 5000)
	for i := range uni {
		uni[i] = rng.Float64() * 1000
	}
	cases["uniform"] = uni
	logn := make([]float64, 5000)
	for i := range logn {
		logn[i] = math.Exp(rng.Float64()*6 - 3)
	}
	cases["lognormal"] = logn

	for name, values := range cases {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram(eps)
			for _, v := range values {
				h.Add(v)
			}
			if h.Count() != uint64(len(values)) {
				t.Fatalf("Count = %d, want %d", h.Count(), len(values))
			}
			checkQuantiles(t, h, values, eps)
		})
	}
}

func TestHistogramExactEndpoints(t *testing.T) {
	h := NewHistogram(0.05)
	values := []float64{3.7, 1.2, 99.4, 0.003, 42}
	sum := 0.0
	for _, v := range values {
		h.Add(v)
		sum += v
	}
	if got := h.Min(); got != 0.003 {
		t.Errorf("Min = %v, want 0.003", got)
	}
	if got := h.Max(); got != 99.4 {
		t.Errorf("Max = %v, want 99.4", got)
	}
	if got := h.Quantile(0); got != 0.003 {
		t.Errorf("Quantile(0) = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 99.4 {
		t.Errorf("Quantile(1) = %v, want exact max", got)
	}
	if got := h.Sum(); math.Abs(got-sum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, sum)
	}
	if got := h.Mean(); math.Abs(got-sum/5) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, sum/5)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0.01)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Error("empty Mean/Min/Max should be NaN")
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty Count/Sum should be 0")
	}
}

// TestHistogramMergeDeterminism pins the property cluster mode relies on:
// any partition of a value stream across histograms, merged in any order,
// yields bit-identical bucket state — and therefore bit-identical
// quantiles — to a single-stream histogram.
func TestHistogramMergeDeterminism(t *testing.T) {
	const eps = 0.01
	rng := xrand.New(99)
	values := make([]float64, 4000)
	for i := range values {
		switch i % 7 {
		case 0:
			values[i] = 0 // zero-length jobs
		case 1:
			values[i] = math.Exp(rng.Float64()*20 - 10) // wide dynamic range
		default:
			values[i] = 1 + rng.Float64()*100
		}
	}

	single := NewHistogram(eps)
	for _, v := range values {
		single.Add(v)
	}

	// Partition into 5 shards round-robin, merge in two different orders.
	for _, order := range [][]int{{0, 1, 2, 3, 4}, {4, 2, 0, 3, 1}} {
		shards := make([]*Histogram, 5)
		for i := range shards {
			shards[i] = NewHistogram(eps)
		}
		for i, v := range values {
			shards[i%5].Add(v)
		}
		merged := NewHistogram(eps)
		for _, s := range order {
			merged.Merge(shards[s])
		}
		if merged.Count() != single.Count() || merged.zero != single.zero {
			t.Fatalf("order %v: count/zero mismatch", order)
		}
		if merged.base != single.base || len(merged.counts) < len(single.counts) {
			// merged window may be larger if grown in a different order,
			// but every bucket count must agree.
		}
		for idx := single.base; idx < single.base+len(single.counts); idx++ {
			if got, want := bucketCount(merged, idx), bucketCount(single, idx); got != want {
				t.Fatalf("order %v: bucket %d count %d != %d", order, idx, got, want)
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			g, w := merged.Quantile(q), single.Quantile(q)
			if g != w {
				t.Fatalf("order %v: Quantile(%v) = %v, single-stream %v (must be bit-identical)", order, q, g, w)
			}
		}
	}
}

func bucketCount(h *Histogram, idx int) uint64 {
	if idx < h.base || idx >= h.base+len(h.counts) {
		return 0
	}
	return h.counts[idx-h.base]
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram(0.01)
	h.Add(5)
	h.Merge(nil)
	h.Merge(NewHistogram(0.01))
	if h.Count() != 1 || h.Quantile(0.5) == 0 {
		t.Fatal("merge of nil/empty changed state")
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different relative errors should panic")
		}
	}()
	a, b := NewHistogram(0.01), NewHistogram(0.05)
	b.Add(1)
	a.Merge(b)
}

func TestHistogramAddNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) should panic")
		}
	}()
	NewHistogram(0.01).Add(math.NaN())
}

func TestHistogramAddN(t *testing.T) {
	a := NewHistogram(0.01)
	b := NewHistogram(0.01)
	for i := 0; i < 10; i++ {
		a.Add(3.5)
	}
	b.AddN(3.5, 10)
	b.AddN(9, 0) // no-op
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Quantile(0.5) != b.Quantile(0.5) {
		t.Fatal("AddN(v, 10) differs from 10x Add(v)")
	}
}
