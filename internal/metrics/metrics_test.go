package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	if got := Speedup(100, 200); got != 0.5 {
		t.Fatalf("Speedup = %v, want 0.5", got)
	}
	if !math.IsNaN(Speedup(100, 0)) {
		t.Fatal("division by zero not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty geomean not NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("negative input not NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Fatal("zero input not NaN")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean not NaN")
	}
}

// Property: geomean lies between min and max.
func TestPropertyGeoMeanBounded(t *testing.T) {
	f := func(raw [5]uint16) bool {
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geomean of speedups is invariant under baseline scaling.
func TestPropertyGeoMeanScaleInvariance(t *testing.T) {
	f := func(raw [4]uint16, scale16 uint16) bool {
		scale := float64(scale16%100) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			x := float64(v%500) + 1
			a[i] = x
			b[i] = x * scale
		}
		return math.Abs(GeoMean(b)/GeoMean(a)-scale) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableSetGetRows(t *testing.T) {
	tb := NewTable("test", "a", "b")
	tb.Set("r1", "a", 1.5)
	tb.Set("r1", "b", 2.5)
	tb.Set("r2", "a", 3.5)
	if got := tb.Get("r1", "b"); got != 2.5 {
		t.Fatalf("Get = %v", got)
	}
	if !math.IsNaN(tb.Get("r2", "b")) {
		t.Fatal("absent cell not NaN")
	}
	if !math.IsNaN(tb.Get("zzz", "a")) {
		t.Fatal("absent row not NaN")
	}
	rows := tb.Rows()
	if len(rows) != 2 || rows[0] != "r1" || rows[1] != "r2" {
		t.Fatalf("rows = %v", rows)
	}
	vals := tb.ColumnValues("a")
	if len(vals) != 2 || vals[0] != 1.5 || vals[1] != 3.5 {
		t.Fatalf("column values = %v", vals)
	}
}

func TestTableWrite(t *testing.T) {
	tb := NewTable("title here", "x", "y")
	tb.Set("app1", "x", 1.234)
	tb.Set("app1", "y", 0.5)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"title here", "app1", "1.234", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteAbsentCellDash(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.Set("r", "x", 1)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Error("absent cell not rendered as dash")
	}
}

func TestTableWriteBars(t *testing.T) {
	tb := NewTable("bars", "p")
	tb.Set("app", "p", 2.0)
	var sb strings.Builder
	if err := tb.WriteBars(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if !strings.Contains(out, "2.000") {
		t.Error("value not rendered")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("SortedKeys = %v", ks)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Set("r1", "a", 1.5)
	tb.Set("r2", "b", 2.25)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"row,a,b", "r1,1.500000,", "r2,,2.250000"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
