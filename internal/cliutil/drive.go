package cliutil

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"numadag/internal/core"
	"numadag/internal/shard"
)

// ShardSet binds the sharded/resumable sweep flags shared by the
// experiment-grid commands, so -shard/-resume/-out and friends are defined
// once, not per command.
type ShardSet struct {
	Shard    string        // -shard i/n: run one shard of the grid
	Out      string        // -out: directory for shard journals
	Resume   bool          // -resume: skip cells already journaled under -out
	MergeF   string        // -merge dir: merge shard journals, no simulation
	Serve    string        // -serve addr: coordinate workers over HTTP
	Join     string        // -join url: work for a coordinator
	Shards   int           // -shards: grid split for -serve
	Lease    time.Duration // -lease: worker heartbeat lease for -serve
	MaxCells int           // -maxcells: stop (resumably) after N fresh cells
}

// BindShard registers the sharding flags on fs.
func BindShard(fs *flag.FlagSet) *ShardSet {
	sf := &ShardSet{}
	fs.StringVar(&sf.Shard, "shard", "", "run one shard i/n of the grid (0-based, e.g. 0/3), journaling to -out")
	fs.StringVar(&sf.Out, "out", "sweep-out", "directory for shard/checkpoint journals")
	fs.BoolVar(&sf.Resume, "resume", false, "skip cells already journaled under -out and replay them from the journal")
	fs.StringVar(&sf.MergeF, "merge", "", "merge the shard journals in this directory into the canonical outputs (no simulation)")
	fs.StringVar(&sf.Serve, "serve", "", "coordinate -shards workers on this address (e.g. :9119) and collect their journals into -out")
	fs.StringVar(&sf.Join, "join", "", "join the coordinator at this base URL (e.g. http://host:9119) and run shards it assigns")
	fs.IntVar(&sf.Shards, "shards", 0, "how many shards -serve splits the grid into")
	fs.DurationVar(&sf.Lease, "lease", 30*time.Second, "worker heartbeat lease for -serve; an expired lease reassigns the shard")
	fs.IntVar(&sf.MaxCells, "maxcells", 0, "stop after this many freshly-run cells, leaving a resumable journal (0 = no limit)")
	return sf
}

// Mode is what a ShardSet asks the command to do.
type Mode int

const (
	// ModeRun is the classic path: run the whole grid in-process, stream to
	// the sinks.
	ModeRun Mode = iota
	// ModeCheckpoint runs the whole grid behind a journal (-resume and/or
	// -maxcells): the sinks still see the full canonical stream.
	ModeCheckpoint
	// ModeShard runs one shard of the grid into its journal; outputs come
	// later, from ModeMerge.
	ModeShard
	// ModeMerge recombines shard journals into the canonical stream.
	ModeMerge
	// ModeServe coordinates joining workers; ModeJoin is one such worker.
	ModeServe
	ModeJoin
)

// FullStream reports whether the mode delivers the full canonical cell
// stream to the command's sinks (so tables and -jsonl/-csv make sense).
func (m Mode) FullStream() bool {
	return m == ModeRun || m == ModeCheckpoint || m == ModeMerge
}

// Mode validates flag combinations and names the requested mode.
func (sf *ShardSet) Mode() (Mode, error) {
	n := 0
	for _, set := range []bool{sf.Shard != "", sf.MergeF != "", sf.Serve != "", sf.Join != ""} {
		if set {
			n++
		}
	}
	if n > 1 {
		return 0, fmt.Errorf("-shard, -merge, -serve and -join are mutually exclusive")
	}
	switch {
	case sf.MergeF != "":
		if sf.Resume || sf.MaxCells > 0 {
			return 0, fmt.Errorf("-resume/-maxcells do not apply to -merge")
		}
		return ModeMerge, nil
	case sf.Serve != "":
		if sf.Shards < 1 {
			return 0, fmt.Errorf("-serve needs -shards N")
		}
		return ModeServe, nil
	case sf.Join != "":
		return ModeJoin, nil
	case sf.Shard != "":
		return ModeShard, nil
	case sf.Resume || sf.MaxCells > 0:
		return ModeCheckpoint, nil
	default:
		return ModeRun, nil
	}
}

// Drive executes experiment e under the requested mode. In full-stream
// modes every sink sees the complete canonical cell stream (and is closed);
// in ModeShard the sinks must be empty — the shard's journal under -out is
// the output. Interrupting via -maxcells surfaces as shard.ErrInterrupted
// (wrapped): the journal is valid and the run resumable, so callers should
// treat it as a clean early exit, not a failure.
func Drive(ctx context.Context, e *core.Experiment, mode Mode, sf *ShardSet, sinks ...core.Sink) error {
	switch mode {
	case ModeRun:
		return e.Run(ctx, sinks...)
	case ModeMerge:
		h, err := shard.MergeDir(sf.MergeF, sinks...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged %s: %d cells (grid %s)\n", h.Experiment, h.Total, h.Grid)
		return nil
	case ModeServe:
		return serve(e, sf)
	case ModeJoin:
		return join(ctx, e, sf)
	}

	// ModeShard / ModeCheckpoint: run behind a journal.
	sp := shard.Spec{}.Norm()
	if sf.Shard != "" {
		var err error
		if sp, err = shard.ParseSpec(sf.Shard); err != nil {
			return err
		}
	}
	h, err := shard.HeaderFor(e, sp)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(sf.Out, 0o755); err != nil {
		return err
	}
	path := shard.JournalPath(sf.Out, sp)
	j, err := shard.OpenJournal(path, h, sf.Resume)
	if err != nil {
		return err
	}
	defer j.Close()
	cs := shard.NewCheckpointSink(j, sinks...)
	cs.MaxFresh = sf.MaxCells
	e.Skip = func(c core.Cell) bool { return sp.Skip(c) || cs.Skip(c) }
	runErr := e.Run(ctx, cs)
	if err := j.Sync(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr == nil || errors.Is(runErr, shard.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "shard %s: %d cells run, %d resumed from journal -> %s\n",
			sp, cs.Fresh(), j.Len()-cs.Fresh(), path)
	}
	return runErr
}

// serve coordinates sf.Shards workers over HTTP and lands their journals
// under -out when the grid completes.
func serve(e *core.Experiment, sf *ShardSet) error {
	coord, err := shard.NewCoordinator(sf.Shards, sf.Lease)
	if err != nil {
		return err
	}
	h, err := shard.HeaderFor(e, shard.Spec{Index: 0, Count: sf.Shards})
	if err != nil {
		return err
	}
	coord.Expect(h)
	ln, err := net.Listen("tcp", sf.Serve)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "coordinating %d shards of %s (%d cells) on http://%s — workers: -join http://<host>%s\n",
		sf.Shards, h.Experiment, h.Total, ln.Addr(), sf.Serve)
	<-coord.Done()
	if err := coord.WriteDir(sf.Out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "all %d shards complete -> %s; combine with -merge %s\n", sf.Shards, sf.Out, sf.Out)
	return nil
}

// join works for a coordinator: each assigned shard runs the experiment
// with that shard's Skip and streams its wire records into the payload the
// coordinator collects.
func join(ctx context.Context, e *core.Experiment, sf *ShardSet) error {
	return shard.Work(ctx, sf.Join, func(sp shard.Spec) ([]byte, error) {
		h, err := shard.HeaderFor(e, sp)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "claimed shard %s of %s\n", sp, h.Experiment)
		var buf bytes.Buffer
		w := shard.NewWriter(&buf, h)
		e.Skip = sp.Skip
		if err := e.Run(ctx, w); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}
