// Package cliutil holds the flag surface shared by the numadag commands
// (cmd/sweep, cmd/figure1, cmd/dagen, cmd/dcsim): the apps/scale/seeds/
// machine flags and their validation, the -jsonl/-csv streaming outputs,
// the -trace sink, and — via ShardSet and Drive — the sharded/resumable
// sweep modes (-shard, -resume, -out, -merge, -serve, -join), so each
// flag's name, usage text and parsing live in exactly one place.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/trace"
)

// ScaleFlag binds -scale and returns a getter that validates the value via
// apps.ParseScale.
func ScaleFlag(fs *flag.FlagSet, def string) func() (apps.Scale, error) {
	v := fs.String("scale", def, "problem scale: tiny, small, paper")
	return func() (apps.Scale, error) { return apps.ParseScale(*v) }
}

// AppsFlag binds -apps and returns a getter for the comma-split workload
// spec list (nil when the flag is unset, so callers keep their defaults).
func AppsFlag(fs *flag.FlagSet, usage string) func() []string {
	v := fs.String("apps", "", usage)
	return func() []string {
		if *v == "" {
			return nil
		}
		return strings.Split(*v, ",")
	}
}

// SeedsFlag binds -seeds with the command's default replicate count.
func SeedsFlag(fs *flag.FlagSet, def int) *int {
	return fs.Int("seeds", def, "seeds averaged per cell")
}

// MachineFlag binds -machine and returns a getter resolving the name
// through the machine registry.
func MachineFlag(fs *flag.FlagSet, def string) func() (machine.Config, error) {
	v := fs.String("machine", def, "machine topology: bullion, 2socket, 4socket, uniform")
	return func() (machine.Config, error) { return machine.ByName(*v) }
}

// Outputs binds the streaming per-cell output flags (-jsonl and, when
// withCSV, -csv) and turns them into open sinks.
type Outputs struct {
	JSONL string
	CSV   string
	files []*os.File
}

// BindOutputs registers the output flags on fs. cmd/figure1 passes
// withCSV=false because its -csv means "the aggregated table as CSV", not
// the per-cell stream.
func BindOutputs(fs *flag.FlagSet, withCSV bool) *Outputs {
	o := &Outputs{}
	fs.StringVar(&o.JSONL, "jsonl", "", "stream per-cell results as JSON lines to this file")
	if withCSV {
		fs.StringVar(&o.CSV, "csv", "", "stream per-cell results as CSV to this file")
	}
	return o
}

// Any reports whether any streaming output was requested.
func (o *Outputs) Any() bool { return o.JSONL != "" || o.CSV != "" }

// Sinks opens the requested output files and returns their sinks. Close
// the Outputs when the run is over.
func (o *Outputs) Sinks() ([]core.Sink, error) {
	var sinks []core.Sink
	for _, out := range []struct {
		path string
		mk   func(f *os.File) core.Sink
	}{
		{o.JSONL, func(f *os.File) core.Sink { return core.NewJSONLSink(f) }},
		{o.CSV, func(f *os.File) core.Sink { return core.NewCSVSink(f) }},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			o.Close()
			return nil, err
		}
		o.files = append(o.files, f)
		sinks = append(sinks, out.mk(f))
	}
	return sinks, nil
}

// Close closes the files Sinks opened.
func (o *Outputs) Close() error {
	var firstErr error
	for _, f := range o.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	o.files = nil
	return firstErr
}

// TraceOut binds -trace: a Chrome-trace (Perfetto-loadable) recording of
// the run.
type TraceOut struct {
	Path   string
	Tracer *trace.Tracer
}

// BindTrace registers -trace on fs.
func BindTrace(fs *flag.FlagSet) *TraceOut {
	t := &TraceOut{}
	fs.StringVar(&t.Path, "trace", "", "write a Chrome trace of the run to this file (load in Perfetto)")
	return t
}

// Enable creates the tracer when -trace (or force, for callers like dcsim
// -http that imply tracing) asks for one; nil otherwise.
func (t *TraceOut) Enable(force bool) *trace.Tracer {
	if t.Path == "" && !force {
		return nil
	}
	t.Tracer = trace.NewTracer()
	return t.Tracer
}

// Attacher returns the enabled tracer as a core.TraceAttacher, or an
// untyped nil when tracing is off. Callers with interface-typed config
// fields must use this instead of assigning Enable's *trace.Tracer
// directly: a typed-nil pointer in the interface is non-nil and core
// would call methods on it.
func (t *TraceOut) Attacher() core.TraceAttacher {
	if t.Tracer == nil {
		return nil
	}
	return t.Tracer
}

// Write lands the trace on disk if a path was given.
func (t *TraceOut) Write() error {
	if t.Path == "" || t.Tracer == nil {
		return nil
	}
	return t.Tracer.WriteFile(t.Path)
}

// Fatal prints "cmd: err" and exits 1 — the commands' shared error exit.
func Fatal(cmd string, err error) {
	fmt.Fprintln(os.Stderr, cmd+":", err)
	os.Exit(1)
}
