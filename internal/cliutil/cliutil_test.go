package cliutil

import (
	"flag"
	"testing"
)

// The figure1 panic regression: Enable returns a typed-nil *trace.Tracer
// when tracing is off, and assigning that directly to an interface-typed
// config field (core.TraceAttacher) yields a non-nil interface whose
// methods core then calls. Attacher must return an untyped nil instead.
func TestTraceAttacherNilWhenDisabled(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	to := BindTrace(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tr := to.Enable(false); tr != nil {
		t.Fatalf("Enable(false) with no -trace = %v, want nil", tr)
	}
	if a := to.Attacher(); a != nil {
		t.Fatalf("disabled Attacher() = %#v, want untyped nil interface", a)
	}
	if tr := to.Enable(true); tr == nil {
		t.Fatal("Enable(true) did not create a tracer")
	}
	if a := to.Attacher(); a == nil {
		t.Fatal("enabled Attacher() = nil, want the tracer")
	}
}
