package partition

import (
	"testing"
	"testing/quick"

	"numadag/internal/graph"
	"numadag/internal/xrand"
)

// grid2D builds an n x n grid graph with unit vertex weights and edge
// weight w between 4-neighbors — the canonical partitioning benchmark with
// known good cuts.
func grid2D(n int, w int64) *Graph {
	g := NewGraph(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.SetVertexWeight(id(i, j), 1)
			if i+1 < n {
				g.AddEdge(id(i, j), id(i+1, j), w)
			}
			if j+1 < n {
				g.AddEdge(id(i, j), id(i, j+1), w)
			}
		}
	}
	return g
}

// twoClusters builds two dense cliques joined by a single light edge: any
// decent bisection must cut exactly that edge.
func twoClusters(size int) *Graph {
	g := NewGraph(2 * size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			g.SetVertexWeight(base+i, 1)
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j, 100)
			}
		}
	}
	g.AddEdge(0, size, 1) // the bridge
	return g
}

func TestBisectTwoClusters(t *testing.T) {
	g := twoClusters(12)
	part, st, err := Partition(g, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeCut != 1 {
		t.Fatalf("edge cut = %d, want 1 (the bridge)", st.EdgeCut)
	}
	// All of cluster 0 on one side, cluster 1 on the other.
	for i := 1; i < 12; i++ {
		if part[i] != part[0] {
			t.Fatalf("cluster 0 split: %v", part[:12])
		}
		if part[12+i] != part[12] {
			t.Fatalf("cluster 1 split: %v", part[12:])
		}
	}
	if part[0] == part[12] {
		t.Fatal("both clusters in one part")
	}
}

func TestGridBisectionQuality(t *testing.T) {
	// A 16x16 unit grid's optimal bisection cut is 16 edges. Accept <= 24
	// (1.5x) from the heuristic.
	g := grid2D(16, 1)
	part, st, err := Partition(g, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeCut > 24 {
		t.Fatalf("grid cut = %d, want <= 24", st.EdgeCut)
	}
	if st.Imbalance > 0.06 {
		t.Fatalf("imbalance = %v", st.Imbalance)
	}
	_ = part
}

func TestKWayBalance(t *testing.T) {
	g := grid2D(16, 1)
	for _, k := range []int{2, 4, 8} {
		part, st, err := Partition(g, DefaultOptions(k))
		if err != nil {
			t.Fatal(err)
		}
		w := PartWeights(g, part, k)
		total := g.TotalVertexWeight()
		for p, pw := range w {
			share := float64(pw) / float64(total)
			if share < 0.6/float64(k) || share > 1.5/float64(k) {
				t.Errorf("k=%d: part %d holds %.3f of weight (weights %v)", k, p, share, w)
			}
		}
		if st.EdgeCut <= 0 {
			t.Errorf("k=%d: non-positive cut %d", k, st.EdgeCut)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := grid2D(12, 3)
	opt := DefaultOptions(4)
	opt.Seed = 99
	a, _, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same seed produced different partitions at vertex %d", v)
		}
	}
}

func TestSeedChangesExplored(t *testing.T) {
	g := grid2D(12, 1)
	opt := DefaultOptions(4)
	opt.Seed = 1
	a, _, _ := Partition(g, opt)
	opt.Seed = 2
	b, _, _ := Partition(g, opt)
	diff := 0
	for v := range a {
		if a[v] != b[v] {
			diff++
		}
	}
	// Different seeds normally explore different partitions; identical output
	// would suggest the seed is ignored. (Not a strict requirement — but for
	// a 144-vertex 4-way grid the probability of collision is negligible.)
	if diff == 0 {
		t.Log("warning: different seeds produced identical partitions")
	}
}

func TestSinglePart(t *testing.T) {
	g := grid2D(4, 1)
	part, st, err := Partition(g, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 produced a non-zero part")
		}
	}
	if st.EdgeCut != 0 {
		t.Fatalf("k=1 cut = %d", st.EdgeCut)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(0)
	part, st, err := Partition(g, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 0 || st.EdgeCut != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestTinyGraphFewerVerticesThanParts(t *testing.T) {
	g := NewGraph(3)
	for v := 0; v < 3; v++ {
		g.SetVertexWeight(v, 1)
	}
	g.AddEdge(0, 1, 5)
	part, _, err := Partition(g, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p < 0 || p >= 8 {
			t.Fatalf("part %d out of range", p)
		}
	}
}

func TestFixedVerticesRespected(t *testing.T) {
	g := grid2D(8, 1)
	opt := DefaultOptions(4)
	opt.Fixed = make([]int32, g.Len())
	for i := range opt.Fixed {
		opt.Fixed[i] = -1
	}
	opt.Fixed[0] = 3
	opt.Fixed[63] = 0
	opt.Fixed[10] = 1
	part, _, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != 3 || part[63] != 0 || part[10] != 1 {
		t.Fatalf("fixed vertices moved: part[0]=%d part[63]=%d part[10]=%d",
			part[0], part[63], part[10])
	}
}

func TestTargetWeights(t *testing.T) {
	g := grid2D(16, 1)
	opt := DefaultOptions(2)
	opt.TargetWeights = []float64{0.25, 0.75}
	part, _, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 2)
	total := float64(g.TotalVertexWeight())
	share0 := float64(w[0]) / total
	if share0 < 0.15 || share0 > 0.35 {
		t.Fatalf("part 0 share = %.3f, want ~0.25", share0)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := grid2D(4, 1)
	bad := []Options{
		{Parts: 0, CoarsenTo: 32, Tries: 1},
		{Parts: 2, Imbalance: -1, CoarsenTo: 32, Tries: 1},
		{Parts: 2, CoarsenTo: 1, Tries: 1},
		{Parts: 2, CoarsenTo: 32, Tries: 0},
		{Parts: 2, CoarsenTo: 32, Tries: 1, FMPasses: -1},
		{Parts: 2, CoarsenTo: 32, Tries: 1, TargetWeights: []float64{1}},
		{Parts: 2, CoarsenTo: 32, Tries: 1, TargetWeights: []float64{0.9, 0.9}},
		{Parts: 2, CoarsenTo: 32, Tries: 1, Fixed: []int32{0}},
		{Parts: 2, CoarsenTo: 32, Tries: 1, Fixed: append(make([]int32, 15), 7)},
	}
	for i, opt := range bad {
		if _, _, err := Partition(g, opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestNoRefineWorseOrEqual(t *testing.T) {
	g := grid2D(20, 1)
	base := DefaultOptions(4)
	base.Seed = 5
	refined, stR, err := Partition(g, base)
	if err != nil {
		t.Fatal(err)
	}
	noref := base
	noref.NoRefine = true
	_, stN, err := Partition(g, noref)
	if err != nil {
		t.Fatal(err)
	}
	if stR.EdgeCut > stN.EdgeCut {
		t.Errorf("refinement worsened cut: %d (refined) vs %d (raw)", stR.EdgeCut, stN.EdgeCut)
	}
	_ = refined
}

func TestFromDAGSymmetrizes(t *testing.T) {
	d := graph.New()
	a := d.AddNode("a", 5)
	b := d.AddNode("b", 0) // zero weight must be lifted to 1
	d.AddEdge(a, b, 64)
	g := FromDAG(d)
	if g.Len() != 2 {
		t.Fatal("vertex count wrong")
	}
	if g.VertexWeight(1) != 1 {
		t.Fatalf("zero node weight not lifted: %d", g.VertexWeight(1))
	}
	found := false
	g.Neighbors(0, func(u int, w int64) {
		if u == 1 && w == 64 {
			found = true
		}
	})
	if !found {
		t.Fatal("edge not symmetrized")
	}
}

func TestCommCost(t *testing.T) {
	g := NewGraph(2)
	g.SetVertexWeight(0, 1)
	g.SetVertexWeight(1, 1)
	g.AddEdge(0, 1, 10)
	dist := [][]int{{0, 2}, {2, 0}}
	if got := CommCost(g, []int32{0, 1}, dist); got != 20 {
		t.Fatalf("CommCost = %d, want 20", got)
	}
	if got := CommCost(g, []int32{0, 0}, dist); got != 0 {
		t.Fatalf("uncut CommCost = %d, want 0", got)
	}
}

// Property: every partition maps all vertices into [0, k) and, with uniform
// targets and modest imbalance, no part exceeds 2x its fair share on random
// graphs.
func TestPropertyPartitionValid(t *testing.T) {
	f := func(seed uint64, n8 uint8, k8 uint8) bool {
		n := int(n8%50) + 10
		k := int(k8%4) + 2
		rng := xrand.New(seed)
		g := NewGraph(n)
		for v := 0; v < n; v++ {
			g.SetVertexWeight(v, int64(rng.Intn(20)+1))
		}
		for e := 0; e < 3*n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, int64(rng.Intn(100)+1))
			}
		}
		opt := DefaultOptions(k)
		opt.Seed = seed
		part, _, err := Partition(g, opt)
		if err != nil {
			return false
		}
		for _, p := range part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the edge cut reported in stats matches an independent
// recomputation.
func TestPropertyStatsCutMatches(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 40
		g := NewGraph(n)
		for v := 0; v < n; v++ {
			g.SetVertexWeight(v, 1)
		}
		for e := 0; e < 100; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, int64(rng.Intn(50)+1))
			}
		}
		opt := DefaultOptions(4)
		opt.Seed = seed
		part, st, err := Partition(g, opt)
		if err != nil {
			return false
		}
		return st.EdgeCut == EdgeCut(g, part)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartitionGrid32x32k8(b *testing.B) {
	g := grid2D(32, 64)
	opt := DefaultOptions(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		if _, _, err := Partition(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}
