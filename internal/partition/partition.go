package partition

import (
	"fmt"
	"math"

	"numadag/internal/xrand"
)

// Options tunes the multilevel partitioner. The zero value is not usable;
// start from DefaultOptions.
type Options struct {
	// Parts is the number of parts (sockets), k >= 1.
	Parts int
	// TargetWeights optionally gives each part's share of the total vertex
	// weight (must sum to ~1). Nil means uniform.
	TargetWeights []float64
	// Imbalance is the tolerated relative overweight per part (e.g. 0.05).
	Imbalance float64
	// Seed drives every random choice.
	Seed uint64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices.
	CoarsenTo int
	// Tries is the number of initial partitions attempted on the coarsest
	// graph (best cut wins).
	Tries int
	// FMPasses bounds refinement passes per level.
	FMPasses int
	// Matching selects the coarsening heuristic.
	Matching MatchingKind
	// Initial selects the coarsest-graph bisection heuristic.
	Initial InitialKind
	// NoRefine disables FM refinement (ablation).
	NoRefine bool
	// KWayRefine adds a greedy direct k-way refinement post-pass after
	// recursive bisection, recovering moves between parts that were split
	// apart early in the recursion. On by default in DefaultOptions.
	KWayRefine bool
	// Fixed optionally pins vertices: Fixed[v] in [0, Parts) forces v's
	// part; -1 leaves it free. Length must be 0 or g.Len().
	Fixed []int32
}

// DefaultOptions returns the settings used by the RGP policies: k parts,
// 5% imbalance, heavy-edge matching, greedy growing, 10 FM passes.
func DefaultOptions(parts int) Options {
	return Options{
		Parts:      parts,
		Imbalance:  0.05,
		Seed:       1,
		CoarsenTo:  64,
		Tries:      4,
		FMPasses:   10,
		Matching:   HeavyEdgeMatching,
		Initial:    GreedyGrowing,
		KWayRefine: true,
	}
}

func (o *Options) validate(n int) error {
	switch {
	case o.Parts < 1:
		return fmt.Errorf("partition: %d parts", o.Parts)
	case o.Imbalance < 0:
		return fmt.Errorf("partition: negative imbalance %v", o.Imbalance)
	case o.CoarsenTo < 2:
		return fmt.Errorf("partition: CoarsenTo %d < 2", o.CoarsenTo)
	case o.Tries < 1:
		return fmt.Errorf("partition: Tries %d < 1", o.Tries)
	case o.FMPasses < 0:
		return fmt.Errorf("partition: negative FMPasses")
	}
	if o.TargetWeights != nil {
		if len(o.TargetWeights) != o.Parts {
			return fmt.Errorf("partition: %d target weights for %d parts", len(o.TargetWeights), o.Parts)
		}
		sum := 0.0
		for _, t := range o.TargetWeights {
			if t < 0 {
				return fmt.Errorf("partition: negative target weight")
			}
			sum += t
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("partition: target weights sum to %v", sum)
		}
	}
	if o.Fixed != nil && len(o.Fixed) != n {
		return fmt.Errorf("partition: Fixed has %d entries for %d vertices", len(o.Fixed), n)
	}
	if o.Fixed != nil {
		for v, p := range o.Fixed {
			if p >= int32(o.Parts) {
				return fmt.Errorf("partition: vertex %d fixed to part %d of %d", v, p, o.Parts)
			}
		}
	}
	return nil
}

// Stats reports the quality of a produced partition.
type Stats struct {
	EdgeCut   int64
	Imbalance float64
	Levels    int // coarsening levels used on the top-level bisection
}

// Partition computes a k-way partition of g. The returned slice maps each
// vertex to its part in [0, Parts).
func Partition(g *Graph, opt Options) ([]int32, Stats, error) {
	if err := opt.validate(g.Len()); err != nil {
		return nil, Stats{}, err
	}
	rng := xrand.New(opt.Seed)
	part := make([]int32, g.Len())
	targets := opt.TargetWeights
	if targets == nil {
		targets = make([]float64, opt.Parts)
		for i := range targets {
			targets[i] = 1.0 / float64(opt.Parts)
		}
	}
	vertices := make([]int, g.Len())
	for i := range vertices {
		vertices[i] = i
	}
	rf := refinerPool.Get().(*refiner)
	defer refinerPool.Put(rf)
	levels := recursiveBisect(g, vertices, opt.Fixed, part, 0, opt.Parts, targets, &opt, rng, rf)
	if opt.KWayRefine && !opt.NoRefine {
		refineKWay(g, part, opt.Fixed, opt.Parts, opt.TargetWeights, opt.Imbalance, opt.FMPasses, rf)
	}
	st := Stats{
		EdgeCut:   EdgeCut(g, part),
		Imbalance: Imbalance(g, part, opt.Parts, opt.TargetWeights),
		Levels:    levels,
	}
	return part, st, nil
}

// recursiveBisect assigns parts [lo, hi) to the given vertex subset of g,
// writing into part. targets are absolute fractions of the *whole* graph.
// rf carries the refinement scratch shared by the entire recursion.
// Returns the number of multilevel levels used at the top split (for Stats).
func recursiveBisect(g *Graph, vertices []int, fixed []int32, part []int32, lo, hi int, targets []float64, opt *Options, rng *xrand.Rand, rf *refiner) int {
	if hi-lo == 1 {
		for _, v := range vertices {
			part[v] = int32(lo)
		}
		return 0
	}
	mid := (lo + hi) / 2
	// Side-0 target = sum of targets[lo:mid] relative to this subset's share.
	var t0, tAll float64
	for p := lo; p < hi; p++ {
		tAll += targets[p]
	}
	for p := lo; p < mid; p++ {
		t0 += targets[p]
	}
	frac := 0.5
	if tAll > 0 {
		frac = t0 / tAll
	}
	// Build the subgraph on the subset.
	sub := subgraph(g, vertices, rf)
	var subFixed []int32
	if fixed != nil {
		subFixed = make([]int32, sub.Len())
		for i, v := range vertices {
			f := fixed[v]
			switch {
			case f < 0:
				subFixed[i] = -1
			case int(f) < mid:
				subFixed[i] = 0
			default:
				subFixed[i] = 1
			}
		}
	}
	bis, levels := multilevelBisect(sub, subFixed, frac, opt, rng, rf)
	var left, right []int
	for i, v := range vertices {
		if bis[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	recursiveBisect(g, left, fixed, part, lo, mid, targets, opt, rng.Fork(), rf)
	recursiveBisect(g, right, fixed, part, mid, hi, targets, opt, rng.Fork(), rf)
	return levels
}

// subgraph extracts the induced subgraph on vertices (in order). The
// original->subset index lives in the refiner's dense scratch (epoch-
// stamped so consecutive extractions skip clearing it) instead of a
// per-call map, and the adjacency lists are cut from one slab sized by a
// counting pass, so building the level costs two allocations instead of a
// growslice cascade.
func subgraph(g *Graph, vertices []int, rf *refiner) *Graph {
	n := g.Len()
	if cap(rf.subIdx) < n {
		rf.subIdx = make([]int32, n)
		rf.subEpoch = make([]int32, n)
	}
	idx, ep := rf.subIdx[:n], rf.subEpoch[:n]
	rf.epoch++
	if rf.epoch == 0 { // stamp wrapped: old stamps could alias, clear them
		for i := range rf.subEpoch {
			rf.subEpoch[i] = 0
		}
		rf.epoch = 1
	}
	e := rf.epoch
	for i, v := range vertices {
		idx[v] = int32(i)
		ep[v] = e
	}
	sub := NewGraph(len(vertices))
	// Counting pass: exact subset degrees.
	if cap(rf.subDeg) < len(vertices) {
		rf.subDeg = make([]int32, len(vertices))
	}
	deg := rf.subDeg[:len(vertices)]
	total := 0
	for i, v := range vertices {
		d := 0
		for _, nb := range g.adj[v] {
			if ep[nb.to] == e {
				d++
			}
		}
		deg[i] = int32(d)
		total += d
	}
	// Slab the lists so the fill pass never reallocates.
	slab := make([]neighbor, total)
	off := 0
	for i := range vertices {
		sub.adj[i] = slab[off : off : off+int(deg[i])]
		off += int(deg[i])
	}
	// Fill pass: the input adjacency is deduplicated and each unordered
	// pair is visited once (v < u), so both halves append without
	// AddEdge's linear dedup scan. The append order matches what AddEdge
	// produced before, keeping every downstream tie-break identical.
	for i, v := range vertices {
		sub.nw[i] = g.nw[v]
		for _, nb := range g.adj[v] {
			if u := int(nb.to); v < u && ep[u] == e {
				sub.adj[i] = append(sub.adj[i], neighbor{to: idx[u], w: nb.w})
				sub.adj[idx[u]] = append(sub.adj[idx[u]], neighbor{to: int32(i), w: nb.w})
			}
		}
	}
	return sub
}

// multilevelBisect runs the full coarsen/initial/refine pipeline for a
// 2-way split with side-0 fraction frac. Returns the partition and the
// number of coarsening levels used.
func multilevelBisect(g *Graph, fixed []int32, frac float64, opt *Options, rng *xrand.Rand, rf *refiner) ([]int32, int) {
	if g.Len() == 0 {
		return nil, 0
	}
	// Coarsening descent.
	var levels []*level
	cur, curFixed := g, fixed
	for cur.Len() > opt.CoarsenTo {
		l := coarsen(cur, curFixed, opt.Matching, rng, rf)
		if l == nil {
			break
		}
		levels = append(levels, l)
		cur, curFixed = l.coarse, l.coarseFixed
	}
	// Initial partitioning: several tries, keep the best balanced cut.
	minW0, maxW0 := bisectEnvelope(cur.TotalVertexWeight(), frac, opt.Imbalance)
	var best []int32
	var bestCut int64 = math.MaxInt64
	var bestImb float64 = math.Inf(1)
	for try := 0; try < opt.Tries; try++ {
		p := initialBisect(cur, curFixed, frac, opt.Initial, rng, rf)
		if !opt.NoRefine {
			fmRefine(cur, p, curFixed, minW0, maxW0, opt.FMPasses, rf)
		}
		cut := EdgeCut(cur, p)
		imb := bisectImbalance(cur, p, frac)
		// Prefer feasible (within tolerance) partitions, then lower cut.
		better := false
		feasible := imb <= opt.Imbalance+1e-9
		bestFeasible := bestImb <= opt.Imbalance+1e-9
		switch {
		case best == nil:
			better = true
		case feasible && !bestFeasible:
			better = true
		case feasible == bestFeasible && cut < bestCut:
			better = true
		case feasible == bestFeasible && cut == bestCut && imb < bestImb:
			better = true
		}
		if better {
			best, bestCut, bestImb = p, cut, imb
		}
	}
	// Uncoarsening with refinement at each level.
	p := best
	for i := len(levels) - 1; i >= 0; i-- {
		l := levels[i]
		p = l.project(p)
		if !opt.NoRefine {
			lo, hi := bisectEnvelope(l.fine.TotalVertexWeight(), frac, opt.Imbalance)
			var ffixed []int32
			if i == 0 {
				ffixed = fixed
			} else {
				ffixed = levels[i-1].coarseFixed
			}
			fmRefine(l.fine, p, ffixed, lo, hi, opt.FMPasses, rf)
		}
	}
	return p, len(levels)
}

// bisectEnvelope derives side-0 weight bounds [minW0, maxW0] from the
// target fraction and the per-part relative imbalance tolerance: each side
// may exceed its own target by at most the tolerance. A slack of one unit is
// always granted so integral weights cannot make the envelope empty.
func bisectEnvelope(total int64, frac, imbalance float64) (minW0, maxW0 int64) {
	t0 := float64(total) * frac
	t1 := float64(total) * (1 - frac)
	maxW0 = int64(t0 * (1 + imbalance))
	minW0 = total - int64(t1*(1+imbalance))
	if maxW0 < int64(t0)+1 {
		maxW0 = int64(t0) + 1
	}
	if minW0 > int64(t0)-1 {
		minW0 = int64(t0) - 1
	}
	if minW0 < 0 {
		minW0 = 0
	}
	if maxW0 > total {
		maxW0 = total
	}
	return minW0, maxW0
}

// bisectImbalance measures side-0 deviation from the target fraction.
func bisectImbalance(g *Graph, part []int32, frac float64) float64 {
	total := g.TotalVertexWeight()
	if total == 0 {
		return 0
	}
	var w0 int64
	for v, p := range part {
		if p == 0 {
			w0 += g.nw[v]
		}
	}
	r0 := float64(w0)/float64(total) - frac
	r1 := (float64(total-w0) / float64(total)) - (1 - frac)
	return math.Max(math.Abs(r0), math.Abs(r1))
}
