package partition

import (
	"testing"
)

// bullionArch mirrors machine.BullionS16's distance matrix without importing
// the machine package (keeps partition dependency-free).
func bullionArch() *Arch {
	const n = 8
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			switch {
			case i == j:
			case i/2 == j/2:
				d[i][j] = 1
			default:
				d[i][j] = 2
			}
		}
	}
	return &Arch{Dist: d}
}

func TestUniformArch(t *testing.T) {
	a := NewUniformArch(4)
	if a.Sockets() != 4 {
		t.Fatal("socket count")
	}
	if err := a.validate(); err != nil {
		t.Fatal(err)
	}
	if a.Dist[0][0] != 0 || a.Dist[0][3] != 1 {
		t.Fatal("distances wrong")
	}
}

func TestArchValidation(t *testing.T) {
	bad := []*Arch{
		{Dist: [][]int{}},
		{Dist: [][]int{{0, 1}}},
		{Dist: [][]int{{1}}},
		{Dist: [][]int{{0, 1}, {2, 0}}},
		{Dist: [][]int{{0, -1}, {-1, 0}}, Capacity: nil},
		{Dist: [][]int{{0, 1}, {1, 0}}, Capacity: []float64{1}},
	}
	for i, a := range bad {
		if err := a.validate(); err == nil {
			t.Errorf("case %d: invalid arch accepted", i)
		}
	}
}

func TestMapOntoCoversAllSockets(t *testing.T) {
	g := grid2D(16, 1)
	part, st, err := MapOnto(g, bullionArch(), DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]int)
	for _, p := range part {
		seen[p]++
	}
	if len(seen) != 8 {
		t.Fatalf("mapping used %d of 8 sockets", len(seen))
	}
	if st.Imbalance > 0.5 {
		t.Fatalf("mapping imbalance %v", st.Imbalance)
	}
}

func TestMappingPrefersCheapBoundaries(t *testing.T) {
	// Build 4 clusters in a chain: C0 -heavy- C1 -light- C2 -heavy- C3.
	// On a 2-module architecture (sockets {0,1} close, {2,3} close, modules
	// far), a good mapping puts the light cut across the far boundary:
	// {C0,C1} on one module and {C2,C3} on the other.
	const cs = 8
	g := NewGraph(4 * cs)
	for c := 0; c < 4; c++ {
		for i := 0; i < cs; i++ {
			v := c*cs + i
			g.SetVertexWeight(v, 1)
			for j := i + 1; j < cs; j++ {
				g.AddEdge(v, c*cs+j, 50)
			}
		}
	}
	g.AddEdge(0*cs, 1*cs, 40) // heavy C0-C1
	g.AddEdge(1*cs, 2*cs, 1)  // light C1-C2
	g.AddEdge(2*cs, 3*cs, 40) // heavy C2-C3

	arch := &Arch{Dist: [][]int{
		{0, 1, 4, 4},
		{1, 0, 4, 4},
		{4, 4, 0, 1},
		{4, 4, 1, 0},
	}}
	opt := DefaultOptions(0)
	part, _, err := MapOnto(g, arch, opt)
	if err != nil {
		t.Fatal(err)
	}
	// C0 and C1 must land on the same module; likewise C2 and C3.
	module := func(p int32) int { return int(p) / 2 }
	if module(part[0]) != module(part[cs]) {
		t.Errorf("heavy C0-C1 cut across modules: parts %d,%d", part[0], part[cs])
	}
	if module(part[2*cs]) != module(part[3*cs]) {
		t.Errorf("heavy C2-C3 cut across modules: parts %d,%d", part[2*cs], part[3*cs])
	}
	if module(part[0]) == module(part[2*cs]) {
		t.Errorf("all clusters on one module")
	}
	// The mapping objective must beat a deliberately bad assignment.
	badPart := make([]int32, len(part))
	for v := range badPart {
		badPart[v] = int32(v % 4) // scatter
	}
	if CommCost(g, part, arch.Dist) >= CommCost(g, badPart, arch.Dist) {
		t.Errorf("mapping comm cost %d not better than scatter %d",
			CommCost(g, part, arch.Dist), CommCost(g, badPart, arch.Dist))
	}
}

func TestMapOntoWithCapacity(t *testing.T) {
	g := grid2D(12, 1)
	arch := &Arch{
		Dist:     [][]int{{0, 1}, {1, 0}},
		Capacity: []float64{3, 1},
	}
	part, _, err := MapOnto(g, arch, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 2)
	share0 := float64(w[0]) / float64(g.TotalVertexWeight())
	if share0 < 0.6 || share0 > 0.9 {
		t.Fatalf("capacity-weighted share0 = %.3f, want ~0.75", share0)
	}
}

func TestMapOntoSingleSocket(t *testing.T) {
	g := grid2D(4, 1)
	part, st, err := MapOnto(g, NewUniformArch(1), DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("single-socket mapping strayed")
		}
	}
	if st.EdgeCut != 0 {
		t.Fatal("single-socket cut non-zero")
	}
}

func TestMapOntoDeterministic(t *testing.T) {
	g := grid2D(10, 2)
	opt := DefaultOptions(0)
	opt.Seed = 7
	a, _, _ := MapOnto(g, bullionArch(), opt)
	b, _, _ := MapOnto(g, bullionArch(), opt)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("mapping not deterministic")
		}
	}
}

func TestSplitSocketsBullion(t *testing.T) {
	arch := bullionArch()
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s0, s1 := splitSockets(all, arch)
	if len(s0) != 4 || len(s1) != 4 {
		t.Fatalf("split sizes %d/%d", len(s0), len(s1))
	}
	// Each half must keep whole modules together when possible: check that
	// the split separates socket 0's module from the most distant module.
	in0 := map[int]bool{}
	for _, s := range s0 {
		in0[s] = true
	}
	if in0[0] != in0[1] {
		t.Errorf("module {0,1} split across halves: %v | %v", s0, s1)
	}
}

func TestMapOntoRespectsFixed(t *testing.T) {
	g := grid2D(8, 1)
	opt := DefaultOptions(0)
	opt.Fixed = make([]int32, g.Len())
	for i := range opt.Fixed {
		opt.Fixed[i] = -1
	}
	opt.Fixed[5] = 6
	part, _, err := MapOnto(g, bullionArch(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if part[5] != 6 {
		t.Fatalf("fixed vertex mapped to %d, want 6", part[5])
	}
}

func BenchmarkMapOntoBullion(b *testing.B) {
	g := grid2D(32, 64)
	opt := DefaultOptions(0)
	arch := bullionArch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		if _, _, err := MapOnto(g, arch, opt); err != nil {
			b.Fatal(err)
		}
	}
}
