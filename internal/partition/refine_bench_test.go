package partition

// Micro-benchmarks for the FM refinement hot path. allocs/op pins the
// zero-allocation contract: with a warmed refiner, fmRefine must not
// allocate in steady state. The /heap variants run the test-only reference
// implementation so the bucket-vs-heap delta stays visible in one run.

import (
	"fmt"
	"testing"

	"numadag/internal/xrand"
)

// benchGraph builds a connected random graph with byte-scale edge weights
// and mild degree skew — the shape the simulator's window subgraphs have.
func benchGraph(n int, seed uint64) *Graph {
	rng := xrand.New(seed)
	g := NewGraph(n)
	w := func() int64 { return int64(1+rng.Intn(8)) << 16 }
	for v := 0; v < n; v++ {
		g.SetVertexWeight(v, w())
		if v > 0 {
			g.AddEdge(v, rng.Intn(v), w()) // spanning connectivity
		}
	}
	for e := 0; e < 2*n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b, w())
		}
	}
	return g
}

func benchPart(n int, seed uint64) []int32 {
	rng := xrand.New(seed)
	part := make([]int32, n)
	for v := range part {
		part[v] = int32(rng.Intn(2))
	}
	return part
}

func BenchmarkFMRefine(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		g := benchGraph(n, 1)
		pristine := benchPart(n, 2)
		total := g.TotalVertexWeight()
		minW0, maxW0 := bisectEnvelope(total, 0.5, 0.05)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rf := &refiner{}
			part := make([]int32, n)
			copy(part, pristine)
			fmRefine(g, part, nil, minW0, maxW0, 10, rf) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(part, pristine)
				fmRefine(g, part, nil, minW0, maxW0, 10, rf)
			}
		})
		b.Run(fmt.Sprintf("heap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			part := make([]int32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(part, pristine)
				fmRefineHeap(g, part, nil, minW0, maxW0, 10, nil)
			}
		})
	}
}
