package partition

import (
	"fmt"
	"math"

	"numadag/internal/xrand"
)

// Arch describes the target architecture for static mapping: a set of
// sockets with a symmetric hop-distance matrix (and optionally non-uniform
// compute capacity per socket).
type Arch struct {
	// Dist[i][j] is the interconnect distance between sockets i and j.
	Dist [][]int
	// Capacity optionally weights sockets (nil = uniform). Mapping gives a
	// socket a share of vertex weight proportional to its capacity.
	Capacity []float64
}

// NewUniformArch returns a flat architecture of n equidistant sockets.
func NewUniformArch(n int) *Arch {
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 1
			}
		}
	}
	return &Arch{Dist: d}
}

// Sockets returns the socket count.
func (a *Arch) Sockets() int { return len(a.Dist) }

func (a *Arch) validate() error {
	n := len(a.Dist)
	if n == 0 {
		return fmt.Errorf("partition: empty architecture")
	}
	for i, row := range a.Dist {
		if len(row) != n {
			return fmt.Errorf("partition: arch row %d has %d entries", i, len(row))
		}
		if row[i] != 0 {
			return fmt.Errorf("partition: arch self-distance non-zero")
		}
		for j, d := range row {
			if d < 0 || a.Dist[j][i] != d {
				return fmt.Errorf("partition: arch distance (%d,%d) invalid", i, j)
			}
		}
	}
	if a.Capacity != nil && len(a.Capacity) != n {
		return fmt.Errorf("partition: %d capacities for %d sockets", len(a.Capacity), n)
	}
	return nil
}

// MapOnto computes a static mapping of g's vertices onto the architecture's
// sockets by dual recursive bipartitioning: the socket set is recursively
// split into the two most distant groups, and the (sub)graph is bisected
// alongside with target weights proportional to group capacity. The effect
// is that the graph's weakest cuts are assigned to the architecture's most
// expensive (most distant) boundaries — SCOTCH's static mapping strategy.
//
// opt.Parts and opt.TargetWeights are ignored (derived from arch); other
// options apply to each bisection.
func MapOnto(g *Graph, arch *Arch, opt Options) ([]int32, Stats, error) {
	if err := arch.validate(); err != nil {
		return nil, Stats{}, err
	}
	opt.Parts = arch.Sockets()
	opt.TargetWeights = nil
	if err := opt.validate(g.Len()); err != nil {
		return nil, Stats{}, err
	}
	rng := xrand.New(opt.Seed)
	part := make([]int32, g.Len())
	sockets := make([]int, arch.Sockets())
	for i := range sockets {
		sockets[i] = i
	}
	vertices := make([]int, g.Len())
	for i := range vertices {
		vertices[i] = i
	}
	rf := refinerPool.Get().(*refiner)
	defer refinerPool.Put(rf)
	drb(g, vertices, opt.Fixed, part, sockets, arch, &opt, rng, rf)
	if opt.KWayRefine && !opt.NoRefine {
		refineKWayMapped(g, part, opt.Fixed, arch, opt.Imbalance, opt.FMPasses, rf)
	}
	st := Stats{
		EdgeCut:   EdgeCut(g, part),
		Imbalance: Imbalance(g, part, arch.Sockets(), archTargets(arch)),
	}
	return part, st, nil
}

// archTargets converts capacities to normalized target weights.
func archTargets(arch *Arch) []float64 {
	n := arch.Sockets()
	t := make([]float64, n)
	if arch.Capacity == nil {
		for i := range t {
			t[i] = 1.0 / float64(n)
		}
		return t
	}
	sum := 0.0
	for _, c := range arch.Capacity {
		sum += c
	}
	for i, c := range arch.Capacity {
		t[i] = c / sum
	}
	return t
}

// drb recursively maps the vertex subset onto the socket subset. rf carries
// the refinement scratch shared by the entire recursion.
func drb(g *Graph, vertices []int, fixed []int32, part []int32, sockets []int, arch *Arch, opt *Options, rng *xrand.Rand, rf *refiner) {
	if len(sockets) == 1 {
		for _, v := range vertices {
			part[v] = int32(sockets[0])
		}
		return
	}
	s0, s1 := splitSockets(sockets, arch)
	cap0, cap1 := groupCapacity(s0, arch), groupCapacity(s1, arch)
	frac := cap0 / (cap0 + cap1)
	sub := subgraph(g, vertices, rf)
	var subFixed []int32
	if fixed != nil {
		in0 := make(map[int]bool, len(s0))
		for _, s := range s0 {
			in0[s] = true
		}
		in1 := make(map[int]bool, len(s1))
		for _, s := range s1 {
			in1[s] = true
		}
		subFixed = make([]int32, sub.Len())
		for i, v := range vertices {
			f := fixed[v]
			switch {
			case f < 0:
				subFixed[i] = -1
			case in0[int(f)]:
				subFixed[i] = 0
			case in1[int(f)]:
				subFixed[i] = 1
			default:
				subFixed[i] = -1 // fixed to a socket outside this branch
			}
		}
	}
	bis, _ := multilevelBisect(sub, subFixed, frac, opt, rng, rf)
	var left, right []int
	for i, v := range vertices {
		if bis[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	drb(g, left, fixed, part, s0, arch, opt, rng.Fork(), rf)
	drb(g, right, fixed, part, s1, arch, opt, rng.Fork(), rf)
}

// splitSockets divides a socket group into two halves so that the distance
// *between* halves is maximized (greedy 2-center growth): the recursion then
// cuts across the widest interconnect boundary first. Deterministic.
func splitSockets(sockets []int, arch *Arch) (s0, s1 []int) {
	if len(sockets) == 2 {
		return sockets[:1], sockets[1:]
	}
	// Pick the farthest pair as seeds (first such pair in index order).
	bestD := -1
	var seedA, seedB int
	for i := 0; i < len(sockets); i++ {
		for j := i + 1; j < len(sockets); j++ {
			if d := arch.Dist[sockets[i]][sockets[j]]; d > bestD {
				bestD = d
				seedA, seedB = sockets[i], sockets[j]
			}
		}
	}
	half := (len(sockets) + 1) / 2
	s0 = append(s0, seedA)
	s1 = append(s1, seedB)
	// Assign remaining sockets to the nearer seed group, balancing sizes.
	for _, s := range sockets {
		if s == seedA || s == seedB {
			continue
		}
		d0 := groupDist(s, s0, arch)
		d1 := groupDist(s, s1, arch)
		switch {
		case len(s0) >= half:
			s1 = append(s1, s)
		case len(s1) >= len(sockets)-half:
			s0 = append(s0, s)
		case d0 <= d1:
			s0 = append(s0, s)
		default:
			s1 = append(s1, s)
		}
	}
	return s0, s1
}

// groupDist is the average distance from s to the group's members.
func groupDist(s int, group []int, arch *Arch) float64 {
	if len(group) == 0 {
		return math.Inf(1)
	}
	sum := 0
	for _, t := range group {
		sum += arch.Dist[s][t]
	}
	return float64(sum) / float64(len(group))
}

// groupCapacity sums the (default 1.0) capacities of a socket group.
func groupCapacity(group []int, arch *Arch) float64 {
	if arch.Capacity == nil {
		return float64(len(group))
	}
	sum := 0.0
	for _, s := range group {
		sum += arch.Capacity[s]
	}
	return sum
}
