package partition

import (
	"testing"
	"testing/quick"

	"numadag/internal/xrand"
)

// scatter returns a deliberately bad k-way partition (seeded random
// assignment; plain round-robin on a grid whose width divides k aligns
// whole columns and leaves no single-move gains).
func scatter(n, k int) []int32 {
	rng := xrand.New(42)
	p := make([]int32, n)
	for v := range p {
		p[v] = int32(rng.Intn(k))
	}
	return p
}

func TestKWayRefineImprovesScatteredGrid(t *testing.T) {
	g := grid2D(12, 1)
	part := scatter(g.Len(), 4)
	before := EdgeCut(g, part)
	gain := refineKWay(g, part, nil, 4, nil, 0.05, 10, nil)
	after := EdgeCut(g, part)
	if gain <= 0 {
		t.Fatalf("no gain on scattered grid (cut %d)", before)
	}
	if after >= before {
		t.Fatalf("cut did not improve: %d -> %d", before, after)
	}
	if after != before-gain {
		t.Fatalf("reported gain %d inconsistent with cut delta %d", gain, before-after)
	}
}

func TestKWayRefineKeepsBalance(t *testing.T) {
	g := grid2D(12, 1)
	part := scatter(g.Len(), 4)
	refineKWay(g, part, nil, 4, nil, 0.05, 10, nil)
	if imb := Imbalance(g, part, 4, nil); imb > 0.06 {
		t.Fatalf("refinement broke balance: %v", imb)
	}
}

func TestKWayRefineRespectsFixed(t *testing.T) {
	g := grid2D(8, 1)
	part := scatter(g.Len(), 4)
	fixed := make([]int32, g.Len())
	for i := range fixed {
		fixed[i] = -1
	}
	fixed[0], part[0] = 2, 2
	fixed[10], part[10] = 3, 3
	refineKWay(g, part, fixed, 4, nil, 0.05, 10, nil)
	if part[0] != 2 || part[10] != 3 {
		t.Fatalf("fixed vertices moved: %d, %d", part[0], part[10])
	}
}

func TestKWayRefineNoOpOnOptimal(t *testing.T) {
	// Two cliques, already separated: nothing to gain.
	g := twoClusters(8)
	part := make([]int32, g.Len())
	for v := 8; v < 16; v++ {
		part[v] = 1
	}
	if gain := refineKWay(g, part, nil, 2, nil, 0.05, 5, nil); gain != 0 {
		t.Fatalf("gained %d on an optimal partition", gain)
	}
}

func TestKWayRefineTrivialCases(t *testing.T) {
	g := grid2D(4, 1)
	part := make([]int32, g.Len())
	if refineKWay(g, part, nil, 1, nil, 0.05, 3, nil) != 0 {
		t.Fatal("k=1 refined something")
	}
	empty := NewGraph(0)
	if refineKWay(empty, nil, nil, 4, nil, 0.05, 3, nil) != 0 {
		t.Fatal("empty graph refined something")
	}
}

func TestKWayMappedReducesCommCost(t *testing.T) {
	g := grid2D(10, 1)
	arch := bullionArch()
	part := scatter(g.Len(), arch.Sockets())
	before := CommCost(g, part, arch.Dist)
	gain := refineKWayMapped(g, part, nil, arch, 0.10, 10, nil)
	after := CommCost(g, part, arch.Dist)
	if gain <= 0 || after >= before {
		t.Fatalf("mapped refinement did not reduce comm cost: %d -> %d (gain %d)", before, after, gain)
	}
}

func TestDefaultOptionsEnableKWay(t *testing.T) {
	if !DefaultOptions(8).KWayRefine {
		t.Fatal("KWayRefine off by default")
	}
}

// Property: k-way refinement never increases the edge cut and never breaks
// the balance envelope it is given.
func TestPropertyKWayRefineMonotone(t *testing.T) {
	f := func(seed uint64, k8 uint8) bool {
		k := int(k8%6) + 2
		rng := xrand.New(seed)
		n := 40
		g := NewGraph(n)
		for v := 0; v < n; v++ {
			g.SetVertexWeight(v, int64(rng.Intn(5)+1))
		}
		for e := 0; e < 120; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, int64(rng.Intn(50)+1))
			}
		}
		part := make([]int32, n)
		for v := range part {
			part[v] = int32(rng.Intn(k))
		}
		before := EdgeCut(g, part)
		refineKWay(g, part, nil, k, nil, 0.30, 6, nil)
		after := EdgeCut(g, part)
		if after > before {
			return false
		}
		for _, p := range part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
