package partition

import "sync"

// refiner bundles the reusable scratch of every refinement stage — the FM
// gain-bucket, the per-pass lock/move buffers, and the k-way pass's
// connectivity arrays. One instance is created per Partition/MapOnto call
// and threaded through the whole recursion, so repeated passes, levels, and
// bisections share the same grow-only backing arrays: steady state performs
// zero allocations inside fmRefine. A refiner is single-goroutine state;
// concurrent partitioner calls each get their own.
type refiner struct {
	gb     gainBucket
	locked []bool
	moves  []fmMove
	// subgraph extraction scratch: dense original->subset index plus an
	// epoch stamp so consecutive extractions skip clearing it.
	subIdx   []int32
	subEpoch []int32
	subDeg   []int32
	epoch    int32
	// coarsening scratch.
	match []int32
	// initial-bisection scratch.
	initFree     []int
	initFront    []bool
	initGain     []int64
	initFrontier []int
	initCand     []int
	// k-way refinement scratch (refineKWay / refineKWayMapped).
	conn    []int64
	weights []int64
	maxW    []int64
	// onMove, when non-nil, observes every tentative move in commit order
	// (before rollback). Test-only: the fuzz/equivalence harness uses it to
	// compare move sequences against the reference heap refiner.
	onMove func(v int, from int32)
}

// refinerPool recycles refiner scratch across Partition/MapOnto calls: the
// RGP policies partition one window at a time, and without the pool every
// window would regrow the same buffers from zero. Scratch contents never
// influence results (pinned by TestFMRefineScratchReuseIsInert), so pooling
// cannot perturb determinism; concurrent experiment workers simply draw
// distinct instances.
var refinerPool = sync.Pool{New: func() any { return &refiner{} }}

type fmMove struct {
	v    int32
	from int32
}

// fmRefine runs Fiduccia–Mattheyses passes on a 2-way partition, in place.
//
// Each pass tentatively moves every free vertex at most once, always picking
// the highest-gain move (ties to the lowest vertex id) that keeps both sides
// within the balance envelope, then rolls back to the best prefix seen.
// Passes repeat until one fails to improve the cut. maxW0/minW0 bound side
// 0's weight (the balance envelope derived from the target fraction and
// tolerance).
//
// The candidate order comes from the gainBucket structure and is bit-
// identical to the container/heap refiner this replaced (kept as
// fmRefineHeap in refine_reference_test.go): a vertex whose best move fails
// the balance check is dropped from the queue and becomes a candidate again
// only when a neighbor's move changes its gain, exactly as the heap's
// stale-entry discipline behaved.
func fmRefine(g *Graph, part []int32, fixed []int32, minW0, maxW0 int64, maxPasses int, rf *refiner) {
	n := g.Len()
	if n == 0 {
		return
	}
	if rf == nil {
		rf = &refiner{}
	}
	if cap(rf.locked) < n {
		rf.locked = make([]bool, n)
	}
	locked := rf.locked[:n]
	var w0 int64
	for v := 0; v < n; v++ {
		if part[v] == 0 {
			w0 += g.nw[v]
		}
	}
	// The pass's gain bound: no gain can exceed the largest per-vertex sum
	// of incident edge weights. Fixed for the whole call (weights never
	// change), so the bucket geometry is computed once. The refinement
	// loops below iterate adjacency slices directly: the per-edge closure
	// call of Graph.Neighbors is measurable at this call rate.
	var maxAdj int64
	for v := 0; v < n; v++ {
		var s int64
		for _, nb := range g.adj[v] {
			s += nb.w
		}
		if s > maxAdj {
			maxAdj = s
		}
	}
	gb := &rf.gb
	for pass := 0; pass < maxPasses; pass++ {
		gb.reset(n, maxAdj)
		for v := 0; v < n; v++ {
			lk := fixed != nil && fixed[v] >= 0
			locked[v] = lk
			if !lk {
				var gain int64
				pv := part[v]
				for _, nb := range g.adj[v] {
					if part[nb.to] == pv {
						gain -= nb.w
					} else {
						gain += nb.w
					}
				}
				gb.insert(int32(v), gain)
			}
		}
		var (
			moves    = rf.moves[:0]
			cumGain  int64
			bestGain int64
			bestIdx  = -1 // prefix length-1 of best state
		)
		for {
			v32, ok := gb.extractMax()
			if !ok {
				break
			}
			v := int(v32)
			// Balance check for moving v to the other side.
			nw0 := w0
			if part[v] == 0 {
				nw0 -= g.nw[v]
			} else {
				nw0 += g.nw[v]
			}
			if nw0 < minW0 || nw0 > maxW0 {
				continue // cannot move without breaking balance; skip
			}
			// Commit tentative move.
			from := part[v]
			part[v] = 1 - from
			w0 = nw0
			locked[v] = true
			cumGain += gb.gain[v]
			moves = append(moves, fmMove{v: v32, from: from})
			if rf.onMove != nil {
				rf.onMove(v, from)
			}
			if cumGain > bestGain {
				bestGain = cumGain
				bestIdx = len(moves) - 1
			}
			// Update neighbor gains: u's gain changes by ±2w depending on
			// sides. update relinks u in O(1), or re-inserts it if a failed
			// balance check had dropped it.
			pv := part[v]
			for _, nb := range g.adj[v] {
				u := nb.to
				if locked[u] {
					continue
				}
				if part[u] == pv {
					gb.update(u, gb.gain[u]-2*nb.w)
				} else {
					gb.update(u, gb.gain[u]+2*nb.w)
				}
			}
		}
		rf.moves = moves[:0] // retain grown capacity for later passes/calls
		// Roll back past the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			m := moves[i]
			part[m.v] = m.from
			if m.from == 0 {
				w0 += g.nw[m.v]
			} else {
				w0 -= g.nw[m.v]
			}
		}
		if bestGain <= 0 {
			return // no improvement this pass
		}
	}
}
