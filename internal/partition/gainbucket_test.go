package partition

// White-box tests for the gainBucket structure itself: extraction order,
// O(1) relink behavior, cursor monotonicity, and scratch reuse. The
// refiner-level contract is covered by the heap equivalence suite.

import (
	"sort"
	"testing"

	"numadag/internal/xrand"
)

func TestGainBucketExtractOrder(t *testing.T) {
	// Gains spread over a byte-scale range plus deliberate ties: extraction
	// must yield gain-descending order, ties by ascending vertex id.
	gains := []int64{-1 << 20, 3 << 16, 0, 3 << 16, 5, -7, 0, 1 << 20, 5, -1 << 20}
	gb := &gainBucket{}
	var maxAdj int64 = 1 << 20
	gb.reset(len(gains), maxAdj)
	for v, g := range gains {
		gb.insert(int32(v), g)
	}
	type vg struct {
		v int32
		g int64
	}
	want := make([]vg, 0, len(gains))
	for v, g := range gains {
		want = append(want, vg{int32(v), g})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].g != want[j].g {
			return want[i].g > want[j].g
		}
		return want[i].v < want[j].v
	})
	for i, w := range want {
		v, ok := gb.extractMax()
		if !ok {
			t.Fatalf("structure empty after %d extractions, want %d", i, len(want))
		}
		if v != w.v || gb.gain[v] != w.g {
			t.Fatalf("extraction %d: got vertex %d gain %d, want vertex %d gain %d", i, v, gb.gain[v], w.v, w.g)
		}
	}
	if _, ok := gb.extractMax(); ok {
		t.Fatal("extraction from an empty structure succeeded")
	}
}

func TestGainBucketUpdateRelinks(t *testing.T) {
	gb := &gainBucket{}
	gb.reset(4, 100)
	gb.insert(0, 10)
	gb.insert(1, 20)
	gb.insert(2, -30)
	// Move vertex 2 to the top, push vertex 1 to the bottom.
	gb.update(2, 90)
	gb.update(1, -90)
	// Update of an absent vertex must (re)insert it — the heap refiner's
	// re-push discipline for balance-dropped candidates.
	if v, _ := gb.extractMax(); v != 2 {
		t.Fatalf("top after updates = %d, want 2", v)
	}
	gb.update(2, 50)
	order := []int32{2, 0, 1}
	for i, want := range order {
		v, ok := gb.extractMax()
		if !ok || v != want {
			t.Fatalf("extraction %d: got %d (ok=%v), want %d", i, v, ok, want)
		}
	}
}

func TestGainBucketRemoveUnlinks(t *testing.T) {
	gb := &gainBucket{}
	gb.reset(5, 10)
	for v := int32(0); v < 5; v++ {
		gb.insert(v, int64(v)) // all in nearby buckets, some shared
	}
	gb.remove(2)
	gb.remove(4) // head of its bucket
	seen := map[int32]bool{}
	for {
		v, ok := gb.extractMax()
		if !ok {
			break
		}
		seen[v] = true
	}
	if len(seen) != 3 || seen[2] || seen[4] {
		t.Fatalf("extracted %v after removing 2 and 4", seen)
	}
}

func TestGainBucketCursorDecaysMonotonically(t *testing.T) {
	gb := &gainBucket{}
	gb.reset(3, 1<<20)
	gb.insert(0, 1<<20)
	gb.insert(1, -1<<20)
	if v, _ := gb.extractMax(); v != 0 {
		t.Fatal("max not extracted first")
	}
	low := gb.cursor
	// Extraction of the bottom vertex walks the cursor down...
	if v, _ := gb.extractMax(); v != 1 {
		t.Fatal("remaining vertex not extracted")
	}
	if gb.cursor > low {
		t.Fatalf("cursor rose without an insertion: %d -> %d", low, gb.cursor)
	}
	// ...and only an insertion may raise it again.
	gb.insert(2, 1<<19)
	if v, _ := gb.extractMax(); v != 2 {
		t.Fatal("reinserted vertex not found above the decayed cursor")
	}
}

func TestGainBucketQuantizationKeepsExactOrder(t *testing.T) {
	// Force heavy quantization: a range far wider than the bucket budget
	// puts many distinct gains in one bucket; extraction must still resolve
	// the exact order from gain[].
	n := 32
	gb := &gainBucket{}
	var maxAdj int64 = 1 << 40
	gb.reset(n, maxAdj)
	if gb.nb > int(bucketCap(n)) {
		t.Fatalf("bucket array has %d entries, cap is %d", gb.nb, bucketCap(n))
	}
	rng := xrand.New(9)
	gains := make([]int64, n)
	for v := 0; v < n; v++ {
		gains[v] = int64(rng.Intn(1000)) - 500 // tiny spread => one shared bucket
		gb.insert(int32(v), gains[v])
	}
	var prevGain int64 = 1 << 41
	prevV := int32(-1)
	for i := 0; i < n; i++ {
		v, ok := gb.extractMax()
		if !ok {
			t.Fatalf("empty after %d extractions", i)
		}
		g := gains[v]
		if g > prevGain || (g == prevGain && v < prevV) {
			t.Fatalf("extraction %d out of order: (%d, %d) after (%d, %d)", i, g, v, prevGain, prevV)
		}
		prevGain, prevV = g, v
	}
}

func TestGainBucketResetReuses(t *testing.T) {
	gb := &gainBucket{}
	gb.reset(100, 1<<30)
	for v := int32(0); v < 100; v++ {
		gb.insert(v, int64(v))
	}
	head, next := &gb.head[0], &gb.next[0]
	// A smaller follow-up pass must reuse the same backing arrays and see
	// none of the previous contents.
	gb.reset(10, 1<<10)
	if &gb.head[0] != head || &gb.next[0] != next {
		t.Fatal("reset reallocated scratch that was large enough")
	}
	if gb.n != 0 {
		t.Fatalf("reset left %d live vertices", gb.n)
	}
	if _, ok := gb.extractMax(); ok {
		t.Fatal("reset structure still yields vertices")
	}
	gb.insert(3, -5)
	if v, ok := gb.extractMax(); !ok || v != 3 {
		t.Fatalf("post-reset insert/extract got (%d, %v)", v, ok)
	}
}

func TestGainBucketZeroGainRange(t *testing.T) {
	// An edgeless pass has maxAdj 0 and every gain 0: everything lands in
	// the single bucket and extraction degrades to id order.
	gb := &gainBucket{}
	gb.reset(4, 0)
	for v := int32(3); v >= 0; v-- {
		gb.insert(v, 0)
	}
	for want := int32(0); want < 4; want++ {
		if v, ok := gb.extractMax(); !ok || v != want {
			t.Fatalf("got (%d, %v), want vertex %d", v, ok, want)
		}
	}
}
