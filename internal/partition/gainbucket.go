package partition

import (
	"math/bits"
	"slices"
)

// gainBucket is an indexed Fiduccia–Mattheyses gain-bucket structure, the
// replacement for the container/heap priority queue the refiner used before.
//
// The classic FM bucket array assumes small integral gains and spends one
// bucket per gain value. Our edge weights are byte counts (tile sizes, tens
// of KiB and up), so the raw gain range of a pass can span millions of units
// over a few hundred vertices; a bucket per unit would be absurdly sparse.
// Instead, buckets quantize: gains map to buckets by a power-of-two step
// chosen per pass so the array stays at most a small multiple of the vertex
// count (bucket = (gain + off) >> shift, off = the pass's max vertex
// degree-weight bound, so the mapping is monotone in gain). Exact gains are
// kept per vertex in gain[]; quantization therefore never changes *which*
// vertex is extracted, only how many candidates share its bucket: the true
// maximum always lives in the highest non-empty bucket, and extraction
// resolves the exact (max gain, then lowest vertex id) order inside that
// one bucket. This keeps the move order — and hence every determinism
// golden — bit-identical to a max-heap keyed (gain desc, id asc).
//
// Buckets are intrusive doubly-linked lists over vertex ids (next/prev),
// with pos[] recording each vertex's bucket (-1 = absent), so insert,
// remove, and the neighbor-gain update that moves a vertex between buckets
// are all O(1) list work with no per-operation allocation and no stale
// entries. A max-gain cursor decays monotonically between insertions: it
// only moves down while scanning for the next non-empty bucket, and is
// bumped up when an insertion lands above it.
//
// Tile-sized weights produce few distinct gain values, so the top bucket is
// routinely hundreds of vertices deep and extraction cannot afford to
// rescan it every time. The structure therefore keeps a drain cache for the
// bucket currently being consumed: the first extraction sorts that bucket's
// members into exact extraction order once, later extractions pop in O(1),
// and mutations touching the cached bucket splice in or out of the sorted
// order instead of invalidating it.
//
// All slices are grow-only scratch owned by a refiner and reused across
// passes and across partitioner calls: steady state performs zero
// allocations.
type gainBucket struct {
	shift  uint    // log2 of the gain quantum one bucket spans
	off    int64   // gain offset: bucket index = (gain + off) >> shift
	nb     int     // buckets in use this pass
	head   []int32 // head[b] = first vertex of bucket b's list, -1 if empty
	next   []int32 // next[v] = successor of v in its bucket list, -1 at tail
	prev   []int32 // prev[v] = predecessor of v, -1 at head
	pos    []int32 // pos[v] = bucket holding v, -1 when absent
	gain   []int64 // gain[v] = exact current gain (valid even while absent)
	cursor int     // highest bucket that may be non-empty
	n      int     // live vertex count

	// Two-level occupancy bitmap over buckets: occ has one bit per bucket,
	// occSum one bit per occ word. Quantized gains leave most buckets empty
	// and a single neighbor update can raise the cursor thousands of
	// buckets; the bitmap turns the subsequent decay into a pair of word
	// scans instead of a bucket-by-bucket walk (the decay stays monotone —
	// it just jumps over the provably empty stretch).
	occ    []uint64
	occSum []uint64

	drainB   int32   // bucket the drain cache describes, -1 = none
	drainIds []int32 // remaining members of drainB in (gain desc, id asc) order
	drainIdx int     // next cache entry to pop
}

// bucketCap bounds the bucket array relative to the vertex count: enough
// buckets that byte-scale gains rarely collide, few enough that clearing
// and cursor decay stay proportional to the graph, not the weight range.
func bucketCap(n int) int64 {
	c := int64(4 * n)
	if c < 256 {
		c = 256
	}
	return c
}

// reset prepares the structure for a pass over n vertices whose gains are
// bounded by ±maxAdj (the pass's max vertex degree-weight). Previous
// contents are discarded; backing arrays are reused.
//
// Emptiness is self-restoring: a fully drained pass leaves every head at
// -1, every occupancy bit clear, and every pos at -1, and fmRefine always
// drains to empty. reset therefore only pays its clearing loops when the
// structure is dirty (a caller abandoned it mid-drain, e.g. on a panic
// unwinding into the refiner pool) — the steady-state cost per pass is a
// handful of field writes, independent of n and the bucket count.
func (gb *gainBucket) reset(n int, maxAdj int64) {
	gb.off = maxAdj
	gb.shift = 0
	cap := bucketCap(n)
	for (2*maxAdj)>>gb.shift >= cap {
		gb.shift++
	}
	gb.nb = int((2*maxAdj)>>gb.shift) + 1
	if len(gb.head) < gb.nb {
		gb.head = make([]int32, gb.nb)
		for b := range gb.head {
			gb.head[b] = -1
		}
	}
	if len(gb.next) < n {
		gb.next = make([]int32, n)
		gb.prev = make([]int32, n)
		gb.pos = make([]int32, n)
		gb.gain = make([]int64, n)
		for v := range gb.pos {
			gb.pos[v] = -1
		}
	}
	nw := (gb.nb + 63) / 64
	if len(gb.occ) < nw {
		gb.occ = make([]uint64, nw)
		gb.occSum = make([]uint64, (nw+63)/64)
	}
	if gb.n != 0 { // dirty: restore the empty-state invariant explicitly
		for b := range gb.head {
			gb.head[b] = -1
		}
		for w := range gb.occ {
			gb.occ[w] = 0
		}
		for s := range gb.occSum {
			gb.occSum[s] = 0
		}
		for v := range gb.pos {
			gb.pos[v] = -1
		}
	}
	gb.cursor = -1
	gb.n = 0
	gb.drainB = -1
}

func (gb *gainBucket) bucketOf(gain int64) int32 {
	return int32((gain + gb.off) >> gb.shift)
}

// before reports whether vertex a extracts before vertex c: higher exact
// gain first, ties to the lower vertex id.
func (gb *gainBucket) before(a, c int32) bool {
	if ga, gc := gb.gain[a], gb.gain[c]; ga != gc {
		return ga > gc
	}
	return a < c
}

// link pushes v onto bucket b's list. List order is irrelevant: extraction
// order comes from the scan/drain-cache paths.
func (gb *gainBucket) link(v, b int32) {
	gb.pos[v] = b
	gb.prev[v] = -1
	gb.next[v] = gb.head[b]
	if gb.head[b] != -1 {
		gb.prev[gb.head[b]] = v
	} else {
		gb.occ[b>>6] |= 1 << uint(b&63)
		gb.occSum[b>>12] |= 1 << uint((b>>6)&63)
	}
	gb.head[b] = v
}

// unlink removes v from its bucket's list.
func (gb *gainBucket) unlink(v int32) {
	b := gb.pos[v]
	if gb.prev[v] != -1 {
		gb.next[gb.prev[v]] = gb.next[v]
	} else {
		gb.head[b] = gb.next[v]
	}
	if gb.next[v] != -1 {
		gb.prev[gb.next[v]] = gb.prev[v]
	}
	if gb.head[b] == -1 {
		gb.occ[b>>6] &^= 1 << uint(b&63)
		if gb.occ[b>>6] == 0 {
			gb.occSum[b>>12] &^= 1 << uint((b>>6)&63)
		}
	}
	gb.pos[v] = -1
}

// highestOcc returns the highest non-empty bucket at or below from.
// Callers guarantee one exists (n > 0).
func (gb *gainBucket) highestOcc(from int) int {
	w := from >> 6
	if word := gb.occ[w] & (^uint64(0) >> (63 - uint(from&63))); word != 0 {
		return w<<6 + bits.Len64(word) - 1
	}
	s := w >> 6
	sword := gb.occSum[s] & (1<<uint(w&63) - 1)
	for sword == 0 {
		s--
		sword = gb.occSum[s]
	}
	w = s<<6 + bits.Len64(sword) - 1
	return w<<6 + bits.Len64(gb.occ[w]) - 1
}

// drainSearch returns where v sits (or belongs) in the remaining cached
// order, as an offset from drainIdx. Exactness of gain[] makes the order
// total, so binary search is safe.
func (gb *gainBucket) drainSearch(v int32) int {
	rem := gb.drainIds[gb.drainIdx:]
	lo, hi := 0, len(rem)
	for lo < hi {
		mid := (lo + hi) / 2
		if gb.before(rem[mid], v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// drainInsert splices v into the cached order.
func (gb *gainBucket) drainInsert(v int32) {
	at := gb.drainIdx + gb.drainSearch(v)
	gb.drainIds = slices.Insert(gb.drainIds, at, v)
}

// drainRemove splices v out of the cached order. v must be present.
func (gb *gainBucket) drainRemove(v int32) {
	at := gb.drainIdx + gb.drainSearch(v)
	gb.drainIds = slices.Delete(gb.drainIds, at, at+1)
}

// insert adds an absent vertex with the given exact gain.
func (gb *gainBucket) insert(v int32, gain int64) {
	b := gb.bucketOf(gain)
	gb.gain[v] = gain
	gb.link(v, b)
	if int(b) > gb.cursor {
		gb.cursor = int(b)
	}
	if b == gb.drainB {
		gb.drainInsert(v)
	}
	gb.n++
}

// remove unlinks a present vertex. Its gain[] entry stays valid so later
// updates can still apply deltas to it.
func (gb *gainBucket) remove(v int32) {
	if gb.pos[v] == gb.drainB {
		gb.drainRemove(v)
	}
	gb.unlink(v)
	gb.n--
}

// update sets v's exact gain, relinking it into the right bucket. An absent
// vertex is (re)inserted — this is exactly the heap refiner's behavior of
// re-pushing a vertex on every neighbor-gain change, which also revived
// vertices previously dropped by a failed balance check.
func (gb *gainBucket) update(v int32, gain int64) {
	b := gb.pos[v]
	if b == -1 {
		gb.insert(v, gain)
		return
	}
	if b == gb.bucketOf(gain) && b != gb.drainB {
		gb.gain[v] = gain // same bucket, no cached order to maintain
		return
	}
	gb.remove(v)
	gb.insert(v, gain)
}

// drainThreshold is the bucket depth above which extraction switches from
// a direct scan to the sorted drain cache. Scans of shallow buckets leave
// the cache alone, so a deep bucket's order survives the constant brief
// excursions into small buckets freshly raised above the cursor.
const drainThreshold = 32

// extractMax removes and returns the vertex with the maximum gain, ties
// broken toward the lowest vertex id — the determinism contract shared with
// the reference heap. The cursor first decays to the highest non-empty
// bucket. Shallow buckets resolve the exact order by scanning; deep buckets
// use the drain cache.
func (gb *gainBucket) extractMax() (int32, bool) {
	if gb.n == 0 {
		return -1, false
	}
	if gb.head[gb.cursor] == -1 {
		gb.cursor = gb.highestOcc(gb.cursor)
	}
	b := int32(gb.cursor)
	if b != gb.drainB {
		// Scan, bailing to the cache path once the bucket proves deep.
		best := gb.head[b]
		depth := 1
		for v := gb.next[best]; v != -1; v = gb.next[v] {
			if gb.before(v, best) {
				best = v
			}
			if depth++; depth > drainThreshold {
				best = -1
				break
			}
		}
		if best != -1 {
			gb.unlink(best)
			gb.n--
			return best, true
		}
		gb.drainIds = gb.drainIds[:0]
		for v := gb.head[b]; v != -1; v = gb.next[v] {
			gb.drainIds = append(gb.drainIds, v)
		}
		slices.SortFunc(gb.drainIds, func(a, c int32) int {
			if gb.before(a, c) {
				return -1
			}
			return 1
		})
		gb.drainB = b
		gb.drainIdx = 0
	}
	best := gb.drainIds[gb.drainIdx]
	gb.drainIdx++
	gb.unlink(best)
	gb.n--
	if gb.drainIdx == len(gb.drainIds) {
		gb.drainB = -1 // fully drained; next extraction rebuilds elsewhere
	}
	return best, true
}
