package partition

import (
	"numadag/internal/xrand"
)

// MatchingKind selects the coarsening matching heuristic.
type MatchingKind int

const (
	// HeavyEdgeMatching visits vertices in random order and matches each
	// with its unmatched neighbor of maximum edge weight — the standard
	// multilevel choice: heavy edges disappear into coarse vertices so the
	// coarse cut approximates the fine cut well.
	HeavyEdgeMatching MatchingKind = iota
	// RandomMatching matches each vertex with a uniformly random unmatched
	// neighbor. Kept as an ablation baseline.
	RandomMatching
)

// String implements fmt.Stringer.
func (m MatchingKind) String() string {
	switch m {
	case HeavyEdgeMatching:
		return "heavy-edge"
	case RandomMatching:
		return "random"
	default:
		return "unknown-matching"
	}
}

// level records one coarsening step: the coarse graph plus the fine->coarse
// vertex map needed to project partitions back.
type level struct {
	fine   *Graph
	coarse *Graph
	// cmap[fineVertex] = coarse vertex
	cmap []int32
	// fixed part per coarse vertex (-1 free), propagated from fine.
	coarseFixed []int32
}

// coarsen contracts a matching of g into a coarser graph. fixed[v] >= 0 pins
// v to a part; vertices pinned to different parts are never matched
// together (their edge cannot be hidden — it may be cut). Returns nil when
// the matching would not shrink the graph meaningfully (fewer than 10%
// contractions), signalling the driver to stop coarsening. rf supplies
// transient scratch (the match array and coarse degree bounds); the level's
// persistent state (cmap, the coarse graph) is allocated fresh.
func coarsen(g *Graph, fixed []int32, kind MatchingKind, rng *xrand.Rand, rf *refiner) *level {
	if rf == nil {
		rf = &refiner{}
	}
	n := g.Len()
	if cap(rf.match) < n {
		rf.match = make([]int32, n)
	}
	match := rf.match[:n]
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	matched := 0
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := -1
		var bestW int64 = -1
		g.Neighbors(v, func(u int, w int64) {
			if match[u] != -1 {
				return
			}
			if fixed != nil && fixed[v] >= 0 && fixed[u] >= 0 && fixed[v] != fixed[u] {
				return
			}
			switch kind {
			case HeavyEdgeMatching:
				if w > bestW {
					best, bestW = u, w
				}
			case RandomMatching:
				// Reservoir-sample a uniformly random eligible neighbor.
				bestW++
				if rng.Intn(int(bestW)+1) == 0 {
					best = u
				}
			}
		})
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
			matched++
		}
	}
	if matched < n/10 {
		return nil // diminishing returns; stop the multilevel descent
	}
	// Build coarse ids: matched pairs collapse, singletons carry over.
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = next
		if m := match[v]; m != -1 {
			cmap[m] = next
		}
		next++
	}
	coarse := NewGraph(int(next))
	var coarseFixed []int32
	if fixed != nil {
		coarseFixed = make([]int32, next)
		for i := range coarseFixed {
			coarseFixed[i] = -1
		}
	}
	for v := 0; v < n; v++ {
		cv := cmap[v]
		coarse.nw[cv] += g.nw[v]
		if fixed != nil && fixed[v] >= 0 {
			coarseFixed[cv] = fixed[v]
		}
	}
	// Pre-cap each coarse adjacency list at the sum of its members' fine
	// degrees (an upper bound on its distinct coarse neighbors) and cut all
	// lists from one slab, so AddEdge's appends below never reallocate.
	// AddEdge itself is unchanged: its in-order dedup scan is what keeps
	// coarse adjacency order — and every downstream tie-break — identical.
	if cap(rf.subDeg) < int(next) {
		rf.subDeg = make([]int32, next)
	}
	cnt := rf.subDeg[:next]
	for i := range cnt {
		cnt[i] = 0
	}
	total := 0
	for v := 0; v < n; v++ {
		cnt[cmap[v]] += int32(len(g.adj[v]))
		total += len(g.adj[v])
	}
	slab := make([]neighbor, total)
	off := 0
	for cv := range coarse.adj {
		coarse.adj[cv] = slab[off : off : off+int(cnt[cv])]
		off += int(cnt[cv])
	}
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for _, nb := range g.adj[v] {
			u := int(nb.to)
			cu := cmap[u]
			if cu != cv && v < u {
				coarse.AddEdge(int(cv), int(cu), nb.w)
			}
		}
	}
	return &level{fine: g, coarse: coarse, cmap: cmap, coarseFixed: coarseFixed}
}

// project lifts a coarse partition back to the fine graph of the level.
func (l *level) project(coarsePart []int32) []int32 {
	fine := make([]int32, l.fine.Len())
	for v := range fine {
		fine[v] = coarsePart[l.cmap[v]]
	}
	return fine
}
