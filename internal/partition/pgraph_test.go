package partition

import (
	"reflect"
	"testing"

	"numadag/internal/graph"
	"numadag/internal/xrand"
)

func randomTestDAG(r *xrand.Rand, n, extraEdges int) *graph.DAG {
	d := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		d.AddNode("", int64(r.Intn(50))) // zero weights included: exercises the lift
	}
	for i := 0; i < extraEdges; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		d.AddEdge(graph.NodeID(a), graph.NodeID(b), int64(r.Intn(3)*500)) // zero edge weights too
	}
	return d
}

// referenceFromDAG is the pre-slab FromDAG implementation (incremental
// AddEdge with linear dedup), kept as the oracle LoadDAG must match —
// including the order neighbors appear in each adjacency list, which the
// refiner's tie-breaking observes.
func referenceFromDAG(d *graph.DAG) *Graph {
	g := NewGraph(d.Len())
	for v := 0; v < d.Len(); v++ {
		w := d.NodeWeight(graph.NodeID(v))
		if w == 0 {
			w = 1
		}
		g.nw[v] = w
	}
	for _, e := range d.EdgeList() {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		g.AddEdge(int(e.From), int(e.To), w)
	}
	return g
}

func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("vertex count: want %d, got %d", want.Len(), got.Len())
	}
	if !reflect.DeepEqual(want.nw, got.nw) {
		t.Fatalf("vertex weights differ:\nwant %v\ngot  %v", want.nw, got.nw)
	}
	for v := 0; v < want.Len(); v++ {
		wa, ga := want.adj[v], got.adj[v]
		if len(wa) == 0 && len(ga) == 0 {
			continue
		}
		if !reflect.DeepEqual(wa, ga) {
			t.Fatalf("adjacency of %d differs:\nwant %v\ngot  %v", v, wa, ga)
		}
	}
}

// LoadDAG must reproduce the incremental FromDAG construction exactly, and
// keep doing so when one pooled Graph is reloaded across DAGs of varying
// size (the per-window reuse pattern RGP drives).
func TestLoadDAGMatchesReference(t *testing.T) {
	r := xrand.New(11)
	pooled := &Graph{}
	for trial := 0; trial < 150; trial++ {
		n := r.Intn(80) + 1
		d := randomTestDAG(r, n, r.Intn(5*n))
		want := referenceFromDAG(d)
		pooled.LoadDAG(d)
		requireSameGraph(t, want, pooled)
		requireSameGraph(t, want, FromDAG(d))
	}
}

// AddEdge on a loaded graph must grow the touched list out of the shared
// slab without clobbering its neighbors.
func TestLoadDAGAppendSafety(t *testing.T) {
	d := graph.NewWithCapacity(4)
	for i := 0; i < 4; i++ {
		d.AddNode("", 1)
	}
	d.AddEdge(0, 1, 10)
	d.AddEdge(2, 3, 20)
	g := &Graph{}
	g.LoadDAG(d)
	g.AddEdge(0, 3, 99)
	want := referenceFromDAG(d)
	want.AddEdge(0, 3, 99)
	requireSameGraph(t, want, g)
}

// Steady-state allocation contract for the symmetrization path, run by
// `make test-allocs`: reloading a warmed pooled Graph must not allocate.
func TestLoadDAGSteadyStateAllocs(t *testing.T) {
	r := xrand.New(5)
	d := randomTestDAG(r, 1200, 4800)
	g := &Graph{}
	g.LoadDAG(d) // warm
	avg := testing.AllocsPerRun(20, func() {
		g.LoadDAG(d)
	})
	if avg != 0 {
		t.Fatalf("LoadDAG allocates %v objects per op in steady state, want 0", avg)
	}
}
