package partition

// The container/heap FM refiner this package shipped before the gain-bucket
// structure, kept verbatim as a test-only reference implementation. The
// equivalence and fuzz harnesses replay both refiners on the same inputs
// and demand identical move sequences, which is the property that keeps the
// determinism goldens stable across partitioner rewrites.
//
// Its candidate discipline — the contract the gain-bucket must reproduce —
// is: pop entries in (gain desc, vertex id asc) order; entries whose gain
// is stale or whose vertex is locked are inert; a vertex whose move fails
// the balance check is consumed and only becomes a candidate again when a
// neighbor's move re-pushes it with a changed gain.

import (
	"container/heap"
)

// fmRefineHeap is the reference implementation. onMove, when non-nil,
// observes every tentative move in commit order (before rollback).
func fmRefineHeap(g *Graph, part []int32, fixed []int32, minW0, maxW0 int64, maxPasses int, onMove func(v int, from int32)) {
	n := g.Len()
	if n == 0 {
		return
	}
	gains := make([]int64, n)
	locked := make([]bool, n)
	var w0 int64
	for v := 0; v < n; v++ {
		if part[v] == 0 {
			w0 += g.nw[v]
		}
	}
	computeGain := func(v int) int64 {
		var ext, in int64
		g.Neighbors(v, func(u int, w int64) {
			if part[u] == part[v] {
				in += w
			} else {
				ext += w
			}
		})
		return ext - in
	}
	for pass := 0; pass < maxPasses; pass++ {
		for v := range locked {
			locked[v] = fixed != nil && fixed[v] >= 0
		}
		pq := &gainHeap{}
		for v := 0; v < n; v++ {
			if !locked[v] {
				gains[v] = computeGain(v)
				heap.Push(pq, gainEntry{v: v, gain: gains[v]})
			}
		}
		type move struct {
			v    int
			from int32
		}
		var (
			moves    []move
			cumGain  int64
			bestGain int64
			bestIdx  = -1 // prefix length-1 of best state
		)
		for pq.Len() > 0 {
			e := heap.Pop(pq).(gainEntry)
			v := e.v
			if locked[v] || e.gain != gains[v] {
				continue // stale entry
			}
			// Balance check for moving v to the other side.
			nw0 := w0
			if part[v] == 0 {
				nw0 -= g.nw[v]
			} else {
				nw0 += g.nw[v]
			}
			if nw0 < minW0 || nw0 > maxW0 {
				continue // cannot move without breaking balance; skip
			}
			// Commit tentative move.
			from := part[v]
			part[v] = 1 - from
			w0 = nw0
			locked[v] = true
			cumGain += gains[v]
			moves = append(moves, move{v: v, from: from})
			if onMove != nil {
				onMove(v, from)
			}
			if cumGain > bestGain {
				bestGain = cumGain
				bestIdx = len(moves) - 1
			}
			// Update neighbor gains.
			g.Neighbors(v, func(u int, w int64) {
				if locked[u] {
					return
				}
				// u's gain changes by ±2w depending on sides.
				if part[u] == part[v] {
					gains[u] -= 2 * w
				} else {
					gains[u] += 2 * w
				}
				heap.Push(pq, gainEntry{v: u, gain: gains[u]})
			})
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			m := moves[i]
			part[m.v] = m.from
			if m.from == 0 {
				w0 += g.nw[m.v]
			} else {
				w0 -= g.nw[m.v]
			}
		}
		if bestGain <= 0 {
			return // no improvement this pass
		}
	}
}

type gainEntry struct {
	v    int
	gain int64
}

type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain // max-heap on gain
	}
	return h[i].v < h[j].v // deterministic tiebreak
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
