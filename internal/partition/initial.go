package partition

import (
	"numadag/internal/xrand"
)

// InitialKind selects the initial bisection heuristic run on the coarsest
// graph.
type InitialKind int

const (
	// GreedyGrowing grows part 0 from a random seed vertex by repeatedly
	// absorbing the frontier vertex with the highest connectivity to the
	// grown region, until the target weight is reached (greedy graph
	// growing, as in METIS/SCOTCH initial phases).
	GreedyGrowing InitialKind = iota
	// RandomInit assigns vertices to the two sides randomly subject to the
	// weight targets. Ablation baseline.
	RandomInit
)

// String implements fmt.Stringer.
func (k InitialKind) String() string {
	switch k {
	case GreedyGrowing:
		return "greedy-growing"
	case RandomInit:
		return "random"
	default:
		return "unknown-initial"
	}
}

// initialBisect produces a 2-way partition of g with side-0 target weight
// fraction t0 (0 < t0 < 1). fixed[v] in {-1,0,1} pins vertices. The result
// always respects fixed assignments; weight targets are best-effort (the
// refinement pass enforces balance within tolerance afterwards).
// The rf scratch supplies the working arrays (the returned partition is the
// only per-call allocation).
func initialBisect(g *Graph, fixed []int32, t0 float64, kind InitialKind, rng *xrand.Rand, rf *refiner) []int32 {
	if rf == nil {
		rf = &refiner{}
	}
	n := g.Len()
	part := make([]int32, n)
	for v := range part {
		part[v] = 1
	}
	total := g.TotalVertexWeight()
	target0 := int64(float64(total) * t0)
	var w0 int64
	// Pinned vertices first.
	if cap(rf.initFree) < n {
		rf.initFree = make([]int, 0, n)
	}
	free := rf.initFree[:0]
	for v := 0; v < n; v++ {
		if fixed != nil && fixed[v] >= 0 {
			part[v] = fixed[v]
			if fixed[v] == 0 {
				w0 += g.nw[v]
			}
		} else {
			free = append(free, v)
		}
	}
	if kind == RandomInit {
		for _, v := range rng.Perm(len(free)) {
			u := free[v]
			if w0 < target0 {
				part[u] = 0
				w0 += g.nw[u]
			}
		}
		return part
	}
	// Greedy graph growing of side 0.
	if cap(rf.initFront) < n {
		rf.initFront = make([]bool, n)
		rf.initGain = make([]int64, n)
	}
	inFront, gain := rf.initFront[:n], rf.initGain[:n]
	for v := 0; v < n; v++ {
		inFront[v] = false
		gain[v] = 0 // connectivity of frontier vertices to side 0
	}
	frontier := rf.initFrontier[:0]
	addFrontier := func(v int) {
		if !inFront[v] && part[v] == 1 && (fixed == nil || fixed[v] < 0) {
			inFront[v] = true
			frontier = append(frontier, v)
		}
	}
	grow := func(v int) {
		part[v] = 0
		w0 += g.nw[v]
		g.Neighbors(v, func(u int, w int64) {
			gain[u] += w
			addFrontier(u)
		})
	}
	// Seed from pinned side-0 vertices if any, else a random free vertex.
	seeded := false
	if fixed != nil {
		for v := 0; v < n; v++ {
			if fixed[v] == 0 {
				g.Neighbors(v, func(u int, w int64) {
					gain[u] += w
					addFrontier(u)
				})
				seeded = true
			}
		}
	}
	for w0 < target0 {
		if len(frontier) == 0 {
			if !seeded {
				seeded = true
			}
			// Disconnected remainder (or no seed yet): pick the heaviest-
			// gain-less free vertex at random to restart growth.
			candidates := rf.initCand[:0]
			for _, v := range free {
				if part[v] == 1 {
					candidates = append(candidates, v)
				}
			}
			rf.initCand = candidates[:0]
			if len(candidates) == 0 {
				break
			}
			grow(candidates[rng.Intn(len(candidates))])
			continue
		}
		// Extract max-gain frontier vertex (linear scan: coarsest graphs
		// are small by construction).
		best, bestIdx := -1, -1
		var bestGain int64 = -1
		for i, v := range frontier {
			if part[v] == 0 {
				continue // already absorbed
			}
			if gain[v] > bestGain {
				best, bestIdx, bestGain = v, i, gain[v]
			}
		}
		if best == -1 {
			frontier = frontier[:0]
			continue
		}
		frontier[bestIdx] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		inFront[best] = false
		grow(best)
	}
	rf.initFrontier = frontier[:0] // retain grown capacity
	return part
}
