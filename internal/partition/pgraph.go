// Package partition implements the multilevel graph partitioner that stands
// in for SCOTCH in the paper's runtime-graph-partitioning (RGP) policies.
//
// The pipeline is the classic multilevel scheme SCOTCH and METIS share:
//
//	coarsen (heavy-edge matching)  ->  initial partition (greedy growing)
//	                               ->  uncoarsen + Fiduccia–Mattheyses refine
//
// k-way partitions are produced by recursive bisection, and mapping onto a
// NUMA architecture graph uses dual recursive bipartitioning (Pellegrini,
// SHPCC'94): the architecture's socket set is split top-down alongside the
// task graph, so the cheapest cuts land on the most distant socket groups.
//
// # Refinement and the gain-bucket structure
//
// FM refinement draws its move candidates from an indexed gain-bucket array
// (gainbucket.go) rather than a binary heap: a dense bucket array indexed
// by quantized gain (offset by the pass's max vertex degree-weight bound,
// stepped by a power of two so byte-scale edge weights don't explode the
// array), intrusive doubly-linked vertex lists per bucket with a pos index
// for O(1) remove/reinsert on neighbor-gain updates, a two-level occupancy
// bitmap, and a max-gain cursor that decays monotonically between
// insertions. Exact per-vertex gains are kept alongside, so quantization
// never changes which vertex is extracted. All refinement scratch — the
// gain-bucket, subgraph/coarsening index arrays, initial-bisection and
// k-way buffers — lives in a pooled refiner threaded through Partition and
// MapOnto, making the refinement hot path allocation-free in steady state.
//
// # Determinism contract
//
// All randomness is seeded; identical inputs and options yield identical
// partitions. More specifically, the refiner commits to the exact candidate
// order of the container/heap implementation it replaced: highest gain
// first, ties broken toward the lowest vertex id, and a vertex whose move
// fails the balance check leaves the queue until a neighbor's move changes
// its gain. Any reimplementation must preserve that order bit-for-bit — the
// determinism goldens (testdata/determinism.json at the repo root) pin it
// transitively, and the in-package harness enforces it directly: the old
// heap refiner survives as a test-only reference (refine_reference_test.go)
// that the equivalence suite and FuzzFMRefine replay against the bucket
// implementation, demanding identical move sequences and final partitions.
package partition

import (
	"fmt"

	"numadag/internal/graph"
)

// Graph is an undirected weighted graph in adjacency-list form, the
// partitioner's working representation. Vertices are 0..N-1.
type Graph struct {
	nw  []int64      // vertex weights
	adj [][]neighbor // adjacency, deduplicated, no self-loops
	// slab backs the adjacency lists carved by LoadDAG; reused across loads
	// so repeated symmetrization (one per window) stops allocating once the
	// slab has grown to the largest window seen.
	slab []neighbor
}

type neighbor struct {
	to int32
	w  int64
}

// NewGraph returns a graph with n zero-weight vertices and no edges.
func NewGraph(n int) *Graph {
	return &Graph{nw: make([]int64, n), adj: make([][]neighbor, n)}
}

// Len returns the vertex count.
func (g *Graph) Len() int { return len(g.nw) }

// SetVertexWeight assigns the vertex weight (must be non-negative).
func (g *Graph) SetVertexWeight(v int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("partition: negative vertex weight %d", w))
	}
	g.nw[v] = w
}

// VertexWeight returns the vertex weight.
func (g *Graph) VertexWeight(v int) int64 { return g.nw[v] }

// AddEdge inserts an undirected edge, accumulating weight over duplicates.
// Self-loops are ignored (they never affect a cut).
func (g *Graph) AddEdge(a, b int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("partition: negative edge weight %d", w))
	}
	if a == b {
		return
	}
	g.addHalf(a, b, w)
	g.addHalf(b, a, w)
}

func (g *Graph) addHalf(from, to int, w int64) {
	for i := range g.adj[from] {
		if g.adj[from][i].to == int32(to) {
			g.adj[from][i].w += w
			return
		}
	}
	g.adj[from] = append(g.adj[from], neighbor{to: int32(to), w: w})
}

// Degree returns the number of distinct neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for every neighbor of v.
func (g *Graph) Neighbors(v int, fn func(u int, w int64)) {
	for _, nb := range g.adj[v] {
		fn(int(nb.to), nb.w)
	}
}

// TotalVertexWeight sums all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	var s int64
	for _, w := range g.nw {
		s += w
	}
	return s
}

// TotalEdgeWeight sums each undirected edge's weight once.
func (g *Graph) TotalEdgeWeight() int64 {
	var s int64
	for v := range g.adj {
		for _, nb := range g.adj[v] {
			if int(nb.to) > v {
				s += nb.w
			}
		}
	}
	return s
}

// FromDAG symmetrizes a task dependency graph into the partitioner's
// undirected form: each directed dependency contributes its byte weight to
// the undirected edge between the two tasks, and node weights carry over.
// Zero node weights are lifted to 1 so balance constraints stay meaningful
// for degenerate inputs.
func FromDAG(d *graph.DAG) *Graph {
	g := &Graph{}
	g.LoadDAG(d)
	return g
}

// LoadDAG symmetrizes d into g, reusing g's vertex, adjacency-header and
// edge-slab backing from previous loads — the allocation-free counterpart of
// FromDAG for callers that symmetrize one window after another into a pooled
// Graph. The previous load's contents are discarded.
//
// The result is identical to FromDAG's incremental AddEdge construction:
// adjacency entries appear in the order a (From, To)-ordered edge scan would
// append them. d must be acyclic (as every runtime TDG is) — a 2-cycle would
// need the duplicate accumulation AddEdge performs and LoadDAG skips.
func (g *Graph) LoadDAG(d *graph.DAG) {
	n := d.Len()
	if cap(g.nw) < n {
		g.nw = make([]int64, n)
		g.adj = make([][]neighbor, n)
	}
	g.nw = g.nw[:n]
	g.adj = g.adj[:n]
	total := 2 * d.Edges()
	if cap(g.slab) < total {
		g.slab = make([]neighbor, total)
	}
	// Carve each vertex's list with exact capacity (its degree in the
	// symmetrized graph is out-degree + in-degree, since the DAG holds each
	// dependency once), so a later AddEdge grows out of the slab instead of
	// clobbering the next list.
	off := 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		w := d.NodeWeight(id)
		if w == 0 {
			w = 1
		}
		g.nw[v] = w
		deg := d.OutDegree(id) + d.InDegree(id)
		g.adj[v] = g.slab[off : off : off+deg]
		off += deg
	}
	// Fill in (From, To) edge order — each directed edge appends both halves,
	// exactly as FromDAG's EdgeList+AddEdge loop used to.
	for v := 0; v < n; v++ {
		from := v
		d.Succs(graph.NodeID(v), func(to graph.NodeID, w int64) {
			if w == 0 {
				w = 1
			}
			g.adj[from] = append(g.adj[from], neighbor{to: int32(to), w: w})
			g.adj[to] = append(g.adj[to], neighbor{to: int32(from), w: w})
		})
	}
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different parts.
func EdgeCut(g *Graph, part []int32) int64 {
	var cut int64
	for v := range g.adj {
		for _, nb := range g.adj[v] {
			if int(nb.to) > v && part[v] != part[nb.to] {
				cut += nb.w
			}
		}
	}
	return cut
}

// PartWeights returns the total vertex weight per part.
func PartWeights(g *Graph, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v, p := range part {
		w[p] += g.nw[v]
	}
	return w
}

// Imbalance returns max_p weight(p) / (total * target(p)) - 1; zero means
// perfectly balanced against the targets. targets nil means uniform.
func Imbalance(g *Graph, part []int32, k int, targets []float64) float64 {
	w := PartWeights(g, part, k)
	total := g.TotalVertexWeight()
	if total == 0 {
		return 0
	}
	worst := 0.0
	for p := 0; p < k; p++ {
		t := 1.0 / float64(k)
		if targets != nil {
			t = targets[p]
		}
		if t <= 0 {
			if w[p] > 0 {
				return 1e18 // weight in a zero-capacity part
			}
			continue
		}
		r := float64(w[p])/(float64(total)*t) - 1
		if r > worst {
			worst = r
		}
	}
	return worst
}

// CommCost returns the architecture-aware communication cost: the sum over
// cut edges of edgeWeight * dist(part(a), part(b)). This is the objective
// static mapping minimizes (plain edge cut treats all socket pairs alike).
func CommCost(g *Graph, part []int32, dist [][]int) int64 {
	var cost int64
	for v := range g.adj {
		for _, nb := range g.adj[v] {
			if int(nb.to) > v && part[v] != part[nb.to] {
				cost += nb.w * int64(dist[part[v]][part[nb.to]])
			}
		}
	}
	return cost
}
