package partition

// Heap-vs-bucket equivalence harness: random weighted graphs with varying
// size, degree skew, weight range and fixed-vertex sets are refined by both
// the gain-bucket fmRefine and the reference fmRefineHeap, and the two must
// produce identical move sequences and final partitions. This is the
// property that lets partitioner rewrites ship without regenerating the
// determinism goldens.

import (
	"fmt"
	"testing"

	"numadag/internal/xrand"
)

// refineCase is one randomized fmRefine input.
type refineCase struct {
	g      *Graph
	part   []int32
	fixed  []int32
	minW0  int64
	maxW0  int64
	passes int
}

// weight styles exercised by the random cases: the equivalence proof must
// hold for unit weights (dense gain collisions), byte-scale weights with a
// common factor (the simulator's tile traffic), and arbitrary weights
// (quantized buckets hold many distinct gains).
const (
	unitWeights = iota
	byteWeights
	mixedWeights
	numWeightStyles
)

// buildRefineCase derives a complete fmRefine input from a seed and shape
// knobs. Shared by the equivalence test and FuzzFMRefine so fuzzing explores
// the same space the fixed test samples.
func buildRefineCase(seed, nRaw, degRaw, style, fracPct, tolPct, fixedPct, passesRaw uint64) refineCase {
	rng := xrand.New(seed)
	n := 2 + int(nRaw%400)
	deg := 1 + int(degRaw%8)
	style %= numWeightStyles
	frac := 0.25 + float64(fracPct%51)/100 // side-0 target in [0.25, 0.75]
	tol := 0.01 + float64(tolPct%30)/100   // imbalance in [0.01, 0.30]
	fixedFrac := float64(fixedPct%40) / 100
	passes := 1 + int(passesRaw%10)

	weight := func() int64 {
		switch style {
		case unitWeights:
			return 1
		case byteWeights:
			return int64(1+rng.Intn(8)) << 16 // 64KiB..512KiB tiles
		default:
			return 1 + int64(rng.Intn(1_000_000))
		}
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetVertexWeight(v, weight())
	}
	for v := 0; v < n; v++ {
		// Degree skew: a few hub vertices draw extra edges.
		d := 1 + rng.Intn(deg)
		if rng.Intn(8) == 0 {
			d += rng.Intn(3 * deg)
		}
		for e := 0; e < d; e++ {
			u := rng.Intn(n)
			if u != v {
				g.AddEdge(v, u, weight())
			}
		}
	}
	part := make([]int32, n)
	for v := range part {
		if rng.Float64() < frac {
			part[v] = 0
		} else {
			part[v] = 1
		}
	}
	var fixed []int32
	if fixedFrac > 0 {
		fixed = make([]int32, n)
		for v := range fixed {
			if rng.Float64() < fixedFrac {
				fixed[v] = part[v]
			} else {
				fixed[v] = -1
			}
		}
	}
	minW0, maxW0 := bisectEnvelope(g.TotalVertexWeight(), frac, tol)
	return refineCase{g: g, part: part, fixed: fixed, minW0: minW0, maxW0: maxW0, passes: passes}
}

// runBothRefiners executes the bucket and heap refiners on copies of the
// case and returns (bucketPart, heapPart, bucketMoves, heapMoves).
func runBothRefiners(c refineCase) ([]int32, []int32, []fmMove, []fmMove) {
	bucketPart := append([]int32(nil), c.part...)
	heapPart := append([]int32(nil), c.part...)
	var bucketMoves, heapMoves []fmMove
	rf := &refiner{onMove: func(v int, from int32) {
		bucketMoves = append(bucketMoves, fmMove{v: int32(v), from: from})
	}}
	fmRefine(c.g, bucketPart, c.fixed, c.minW0, c.maxW0, c.passes, rf)
	fmRefineHeap(c.g, heapPart, c.fixed, c.minW0, c.maxW0, c.passes, func(v int, from int32) {
		heapMoves = append(heapMoves, fmMove{v: int32(v), from: from})
	})
	return bucketPart, heapPart, bucketMoves, heapMoves
}

func checkEquivalence(t *testing.T, c refineCase) {
	t.Helper()
	bucketPart, heapPart, bucketMoves, heapMoves := runBothRefiners(c)
	if len(bucketMoves) != len(heapMoves) {
		t.Fatalf("move sequence lengths differ: bucket %d, heap %d", len(bucketMoves), len(heapMoves))
	}
	for i := range bucketMoves {
		if bucketMoves[i] != heapMoves[i] {
			t.Fatalf("move %d differs: bucket %+v, heap %+v", i, bucketMoves[i], heapMoves[i])
		}
	}
	for v := range bucketPart {
		if bucketPart[v] != heapPart[v] {
			t.Fatalf("final partition differs at vertex %d: bucket %d, heap %d", v, bucketPart[v], heapPart[v])
		}
	}
}

// TestFMRefineMatchesHeapReference replays ~50 randomized cases spanning
// every weight style, degree skews, and fixed-vertex densities.
func TestFMRefineMatchesHeapReference(t *testing.T) {
	for i := uint64(0); i < 51; i++ {
		i := i
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			c := buildRefineCase(1000+i, 13*i, i, i, 7*i, 11*i, 5*i, i)
			checkEquivalence(t, c)
		})
	}
}

// TestFMRefineScratchReuseIsInert reruns one case through a refiner already
// warmed by larger and smaller cases: shared scratch must never leak state
// between calls.
func TestFMRefineScratchReuseIsInert(t *testing.T) {
	c := buildRefineCase(42, 120, 3, mixedWeights, 25, 10, 10, 4)
	fresh := append([]int32(nil), c.part...)
	fmRefine(c.g, fresh, c.fixed, c.minW0, c.maxW0, c.passes, nil)

	rf := &refiner{}
	for _, warm := range []refineCase{
		buildRefineCase(7, 399, 7, byteWeights, 0, 0, 20, 9),
		buildRefineCase(8, 3, 1, unitWeights, 50, 29, 0, 1),
	} {
		p := append([]int32(nil), warm.part...)
		fmRefine(warm.g, p, warm.fixed, warm.minW0, warm.maxW0, warm.passes, rf)
	}
	reused := append([]int32(nil), c.part...)
	fmRefine(c.g, reused, c.fixed, c.minW0, c.maxW0, c.passes, rf)
	for v := range fresh {
		if fresh[v] != reused[v] {
			t.Fatalf("warm scratch changed the result at vertex %d", v)
		}
	}
}
