package partition

import (
	"testing"
)

// Allocation-contract test for the FM refinement hot path, run as a
// blocking deterministic test (testing.AllocsPerRun, not a benchmark) by
// `make test-allocs` and the CI allocs gate: with a warmed refiner, a full
// fmRefine pass — gain buckets, bucket drains, boundary scans — must not
// allocate.
func TestFMRefineSteadyStateAllocs(t *testing.T) {
	const n = 2000
	g := benchGraph(n, 1)
	pristine := benchPart(n, 2)
	total := g.TotalVertexWeight()
	minW0, maxW0 := bisectEnvelope(total, 0.5, 0.05)
	rf := &refiner{}
	part := make([]int32, n)
	copy(part, pristine)
	fmRefine(g, part, nil, minW0, maxW0, 10, rf) // warm the scratch
	avg := testing.AllocsPerRun(20, func() {
		copy(part, pristine)
		fmRefine(g, part, nil, minW0, maxW0, 10, rf)
	})
	if avg != 0 {
		t.Fatalf("fmRefine allocates %v objects per op in steady state, want 0", avg)
	}
}
