package partition

// Direct k-way refinement post-passes. Recursive bisection fixes part pairs
// level by level and cannot exploit moves between parts that were split
// apart early in the recursion; a greedy k-way scan afterwards recovers
// most of that loss (the classic KL-style post-pass SCOTCH and METIS both
// apply). Like fmRefine, these passes draw their working arrays from the
// per-call refiner scratch.

// refineKWay runs greedy k-way refinement on a plain edge-cut partition:
// each pass scans vertices in index order and moves a boundary vertex to
// the part with the largest positive cut gain, provided the move keeps the
// destination inside its balance envelope. It mutates part in place and
// returns the total gain.
func refineKWay(g *Graph, part []int32, fixed []int32, k int, targets []float64, imbalance float64, passes int, rf *refiner) int64 {
	if k <= 1 || g.Len() == 0 {
		return 0
	}
	if rf == nil {
		rf = &refiner{}
	}
	maxW := partCaps(g, k, targets, imbalance, rf)
	weights := kwayWeights(g, part, k, rf)
	conn := kwayConn(k, rf)
	var totalGain int64
	for pass := 0; pass < passes; pass++ {
		passGain := kwayPass(g, part, fixed, k, weights, maxW, conn, nil)
		totalGain += passGain
		if passGain == 0 {
			break
		}
	}
	return totalGain
}

// refineKWayMapped is refineKWay with the static-mapping objective: a
// vertex's affinity to socket s is the negated distance-weighted cost of
// its edges if it lived on s, so moves reduce CommCost rather than plain
// edge cut.
func refineKWayMapped(g *Graph, part []int32, fixed []int32, arch *Arch, imbalance float64, passes int, rf *refiner) int64 {
	k := arch.Sockets()
	if k <= 1 || g.Len() == 0 {
		return 0
	}
	if rf == nil {
		rf = &refiner{}
	}
	maxW := partCaps(g, k, archTargets(arch), imbalance, rf)
	weights := kwayWeights(g, part, k, rf)
	conn := kwayConn(k, rf)
	var totalGain int64
	for pass := 0; pass < passes; pass++ {
		passGain := kwayPass(g, part, fixed, k, weights, maxW, conn, arch.Dist)
		totalGain += passGain
		if passGain == 0 {
			break
		}
	}
	return totalGain
}

// kwayWeights fills the scratch per-part weight array (like PartWeights,
// without allocating).
func kwayWeights(g *Graph, part []int32, k int, rf *refiner) []int64 {
	if cap(rf.weights) < k {
		rf.weights = make([]int64, k)
	}
	w := rf.weights[:k]
	for p := range w {
		w[p] = 0
	}
	for v, p := range part {
		w[p] += g.nw[v]
	}
	return w
}

// kwayConn returns the per-part connectivity scratch. Contents are
// unspecified: kwayPass zeroes it per vertex before use.
func kwayConn(k int, rf *refiner) []int64 {
	if cap(rf.conn) < k {
		rf.conn = make([]int64, k)
	}
	return rf.conn[:k]
}

// partCaps derives each part's maximum weight from targets and tolerance.
func partCaps(g *Graph, k int, targets []float64, imbalance float64, rf *refiner) []int64 {
	total := g.TotalVertexWeight()
	if cap(rf.maxW) < k {
		rf.maxW = make([]int64, k)
	}
	maxW := rf.maxW[:k]
	for p := 0; p < k; p++ {
		t := 1.0 / float64(k)
		if targets != nil {
			t = targets[p]
		}
		maxW[p] = int64(float64(total) * t * (1 + imbalance))
		if maxW[p] < 1 {
			maxW[p] = 1
		}
	}
	return maxW
}

// kwayPass performs one greedy scan. With dist == nil, conn[p] accumulates
// the vertex's edge weight into part p and the gain of a move home -> p is
// conn[p] - conn[home] (edge-cut objective). With dist != nil, conn[p]
// holds the negated distance-weighted cost of placing the vertex on p, and
// the same comparison minimizes CommCost.
func kwayPass(g *Graph, part []int32, fixed []int32, k int, weights, maxW []int64, conn []int64, dist [][]int) int64 {
	var passGain int64
	for v := 0; v < g.Len(); v++ {
		if fixed != nil && fixed[v] >= 0 {
			continue
		}
		home := part[v]
		for p := range conn {
			conn[p] = 0
		}
		boundary := false
		if dist == nil {
			g.Neighbors(v, func(u int, w int64) {
				conn[part[u]] += w
				if part[u] != home {
					boundary = true
				}
			})
		} else {
			g.Neighbors(v, func(u int, w int64) {
				for p := 0; p < k; p++ {
					conn[p] -= w * int64(dist[p][part[u]])
				}
				if part[u] != home {
					boundary = true
				}
			})
		}
		if !boundary {
			continue
		}
		best, bestGain := home, int64(0)
		for p := int32(0); p < int32(k); p++ {
			if p == home {
				continue
			}
			if weights[p]+g.nw[v] > maxW[p] {
				continue
			}
			if gain := conn[p] - conn[home]; gain > bestGain {
				best, bestGain = p, gain
			}
		}
		if best != home {
			part[v] = best
			weights[home] -= g.nw[v]
			weights[best] += g.nw[v]
			passGain += bestGain
		}
	}
	return passGain
}
