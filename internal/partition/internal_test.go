package partition

// White-box tests for the multilevel pipeline's stages: coarsening,
// initial bisection and FM refinement.

import (
	"testing"

	"numadag/internal/xrand"
)

func TestCoarsenPreservesTotals(t *testing.T) {
	g := grid2D(10, 3)
	rng := xrand.New(1)
	l := coarsen(g, nil, HeavyEdgeMatching, rng, nil)
	if l == nil {
		t.Fatal("coarsening refused a 100-vertex grid")
	}
	if l.coarse.Len() >= g.Len() {
		t.Fatalf("coarse graph has %d vertices, fine has %d", l.coarse.Len(), g.Len())
	}
	if got, want := l.coarse.TotalVertexWeight(), g.TotalVertexWeight(); got != want {
		t.Fatalf("vertex weight changed under coarsening: %d vs %d", got, want)
	}
	// Edge weight can only shrink (matched edges are hidden), never grow.
	if l.coarse.TotalEdgeWeight() > g.TotalEdgeWeight() {
		t.Fatal("edge weight grew under coarsening")
	}
	// cmap must be a total map into [0, coarse.Len()).
	for v, cv := range l.cmap {
		if cv < 0 || int(cv) >= l.coarse.Len() {
			t.Fatalf("cmap[%d] = %d out of range", v, cv)
		}
	}
}

func TestCoarsenHeavyEdgePrefersHeavy(t *testing.T) {
	// A path a -1- b -100- c: heavy-edge matching must contract (b,c).
	g := NewGraph(3)
	for v := 0; v < 3; v++ {
		g.SetVertexWeight(v, 1)
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 100)
	// HEM visits vertices in random order; only when vertex 0 goes first
	// does the light edge win, so (b,c) merges in ~2/3 of the orders.
	merged := 0
	const seeds = 96
	for seed := uint64(1); seed <= seeds; seed++ {
		l := coarsen(g, nil, HeavyEdgeMatching, xrand.New(seed), nil)
		if l == nil {
			continue
		}
		if l.cmap[1] == l.cmap[2] {
			merged++
		}
	}
	if merged < seeds/2 {
		t.Fatalf("heavy edge contracted only %d/%d times, want > 1/2", merged, seeds)
	}
}

func TestCoarsenRespectsFixedConflict(t *testing.T) {
	// Two vertices fixed to different parts joined by a huge edge must not
	// be matched together.
	g := NewGraph(2)
	g.SetVertexWeight(0, 1)
	g.SetVertexWeight(1, 1)
	g.AddEdge(0, 1, 1000)
	fixed := []int32{0, 1}
	for seed := uint64(1); seed <= 8; seed++ {
		l := coarsen(g, fixed, HeavyEdgeMatching, xrand.New(seed), nil)
		if l == nil {
			continue // no contraction possible: acceptable
		}
		if l.cmap[0] == l.cmap[1] {
			t.Fatal("conflicting fixed vertices merged")
		}
	}
}

func TestCoarsenStopsOnSparseMatching(t *testing.T) {
	// A star graph's center can match only one leaf: after one level the
	// matching stays tiny and coarsening must eventually give up (return
	// nil) instead of looping.
	g := NewGraph(1)
	g.SetVertexWeight(0, 1)
	// Independent vertices (no edges at all): nothing can match.
	iso := NewGraph(20)
	for v := 0; v < 20; v++ {
		iso.SetVertexWeight(v, 1)
	}
	if l := coarsen(iso, nil, HeavyEdgeMatching, xrand.New(1), nil); l != nil {
		t.Fatal("edgeless graph coarsened")
	}
}

func TestProjectRoundTrips(t *testing.T) {
	g := grid2D(8, 1)
	l := coarsen(g, nil, HeavyEdgeMatching, xrand.New(3), nil)
	if l == nil {
		t.Fatal("no coarsening")
	}
	coarsePart := make([]int32, l.coarse.Len())
	for i := range coarsePart {
		coarsePart[i] = int32(i % 2)
	}
	fine := l.project(coarsePart)
	if len(fine) != g.Len() {
		t.Fatalf("projected partition has %d entries", len(fine))
	}
	for v, p := range fine {
		if p != coarsePart[l.cmap[v]] {
			t.Fatalf("projection mismatch at %d", v)
		}
	}
}

func TestInitialBisectRespectsFraction(t *testing.T) {
	g := grid2D(10, 1)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		part := initialBisect(g, nil, frac, GreedyGrowing, xrand.New(7), nil)
		var w0 int64
		for v, p := range part {
			if p == 0 {
				w0 += g.VertexWeight(v)
			}
		}
		got := float64(w0) / float64(g.TotalVertexWeight())
		if got < frac-0.08 || got > frac+0.08 {
			t.Errorf("frac %v: side 0 got %.3f", frac, got)
		}
	}
}

func TestInitialBisectGrowsConnected(t *testing.T) {
	// On a path graph, greedy growing from any seed produces one contiguous
	// run of side-0 vertices.
	n := 40
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetVertexWeight(v, 1)
		if v+1 < n {
			g.AddEdge(v, v+1, 10)
		}
	}
	part := initialBisect(g, nil, 0.5, GreedyGrowing, xrand.New(5), nil)
	transitions := 0
	for v := 1; v < n; v++ {
		if part[v] != part[v-1] {
			transitions++
		}
	}
	if transitions > 2 {
		t.Fatalf("greedy growing produced %d runs on a path", transitions+1)
	}
}

func TestInitialBisectHonorsFixed(t *testing.T) {
	g := grid2D(6, 1)
	fixed := make([]int32, g.Len())
	for i := range fixed {
		fixed[i] = -1
	}
	fixed[0] = 0
	fixed[35] = 1
	for _, kind := range []InitialKind{GreedyGrowing, RandomInit} {
		part := initialBisect(g, fixed, 0.5, kind, xrand.New(9), nil)
		if part[0] != 0 || part[35] != 1 {
			t.Fatalf("%v ignored fixed vertices", kind)
		}
	}
}

func TestFMRefineReducesCut(t *testing.T) {
	g := grid2D(12, 1)
	rng := xrand.New(11)
	part := make([]int32, g.Len())
	for v := range part {
		part[v] = int32(rng.Intn(2))
	}
	before := EdgeCut(g, part)
	total := g.TotalVertexWeight()
	fmRefine(g, part, nil, total*45/100, total*55/100, 10, nil)
	after := EdgeCut(g, part)
	if after >= before {
		t.Fatalf("FM did not improve random bisection: %d -> %d", before, after)
	}
	var w0 int64
	for v, p := range part {
		if p == 0 {
			w0 += g.VertexWeight(v)
		}
	}
	if w0 < total*45/100 || w0 > total*55/100 {
		t.Fatalf("FM broke balance: %d of %d", w0, total)
	}
}

func TestFMRefineLocksFixed(t *testing.T) {
	g := grid2D(8, 1)
	part := make([]int32, g.Len())
	fixed := make([]int32, g.Len())
	for i := range fixed {
		fixed[i] = -1
		part[i] = int32(i % 2)
	}
	fixed[7] = 1
	part[7] = 1
	total := g.TotalVertexWeight()
	fmRefine(g, part, fixed, total*40/100, total*60/100, 8, nil)
	if part[7] != 1 {
		t.Fatal("FM moved a fixed vertex")
	}
}

func TestFMRefineEmptyGraph(t *testing.T) {
	g := NewGraph(0)
	fmRefine(g, nil, nil, 0, 0, 4, nil) // must not panic
}

func TestMatchingKindStrings(t *testing.T) {
	if HeavyEdgeMatching.String() != "heavy-edge" || RandomMatching.String() != "random" {
		t.Fatal("matching labels")
	}
	if MatchingKind(9).String() != "unknown-matching" {
		t.Fatal("unknown matching label")
	}
	if GreedyGrowing.String() != "greedy-growing" || RandomInit.String() != "random" {
		t.Fatal("initial labels")
	}
	if InitialKind(9).String() != "unknown-initial" {
		t.Fatal("unknown initial label")
	}
}

func TestRandomMatchingCoarsens(t *testing.T) {
	g := grid2D(10, 1)
	l := coarsen(g, nil, RandomMatching, xrand.New(2), nil)
	if l == nil {
		t.Fatal("random matching failed to coarsen a grid")
	}
	if l.coarse.Len() >= g.Len() {
		t.Fatal("no contraction")
	}
}
