package partition

// FuzzFMRefine drives the gain-bucket refiner over random weighted graphs
// and random balance envelopes (via buildRefineCase, shared with the fixed
// equivalence suite) and asserts the post-refine invariants:
//
//   - the cut is never worse than the input's,
//   - side 0's weight stays inside [minW0, maxW0] whenever the input was
//     feasible,
//   - fixed vertices never move,
//   - part stays within {0,1},
//
// plus full move-sequence equivalence with the reference heap refiner. The
// seed corpus in testdata/fuzz/FuzzFMRefine pins the shapes that matter
// (unit/byte/mixed weights, hub skew, dense fixed sets, tight envelopes)
// and runs as plain unit tests in normal `go test` invocations; the
// `make fuzz-smoke` target runs a short coverage-guided session on top.

import (
	"testing"
)

func FuzzFMRefine(f *testing.F) {
	f.Add(uint64(1), uint64(64), uint64(2), uint64(0), uint64(25), uint64(5), uint64(0), uint64(10))
	f.Add(uint64(2), uint64(399), uint64(7), uint64(1), uint64(0), uint64(0), uint64(30), uint64(3))
	f.Add(uint64(3), uint64(7), uint64(1), uint64(2), uint64(50), uint64(29), uint64(39), uint64(1))
	f.Fuzz(func(t *testing.T, seed, nRaw, degRaw, style, fracPct, tolPct, fixedPct, passes uint64) {
		c := buildRefineCase(seed, nRaw, degRaw, style, fracPct, tolPct, fixedPct, passes)
		n := c.g.Len()
		before := append([]int32(nil), c.part...)
		cutBefore := EdgeCut(c.g, before)
		var w0Before int64
		for v, p := range before {
			if p == 0 {
				w0Before += c.g.VertexWeight(v)
			}
		}
		feasible := w0Before >= c.minW0 && w0Before <= c.maxW0

		part := append([]int32(nil), c.part...)
		fmRefine(c.g, part, c.fixed, c.minW0, c.maxW0, c.passes, nil)

		var w0 int64
		for v := 0; v < n; v++ {
			if part[v] != 0 && part[v] != 1 {
				t.Fatalf("vertex %d assigned part %d, want 0 or 1", v, part[v])
			}
			if c.fixed != nil && c.fixed[v] >= 0 && part[v] != before[v] {
				t.Fatalf("fixed vertex %d moved from %d to %d", v, before[v], part[v])
			}
			if part[v] == 0 {
				w0 += c.g.VertexWeight(v)
			}
		}
		if cutAfter := EdgeCut(c.g, part); cutAfter > cutBefore {
			t.Fatalf("refinement worsened the cut: %d -> %d", cutBefore, cutAfter)
		}
		if feasible && (w0 < c.minW0 || w0 > c.maxW0) {
			t.Fatalf("feasible input left the balance envelope: w0 %d not in [%d, %d]", w0, c.minW0, c.maxW0)
		}
		checkEquivalence(t, c)
	})
}
